module wormsim

go 1.22
