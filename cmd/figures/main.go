// Command figures regenerates the paper's evaluation: Figures 3, 4 and 5
// (uniform, 4% hotspot and 0.4-locality traffic on a 16-ary 2-cube, six
// routing algorithms, latency and achieved throughput versus offered load)
// and the section 3.4 virtual cut-through comparison, plus the peak
// throughput summary the text reports.
//
// Examples:
//
//	figures                 # all figures, text tables
//	figures -fig 3          # Figure 3 only
//	figures -fig vct        # sec. 3.4 experiment
//	figures -peaks          # peak-throughput summary only
//	figures -csv > out.csv  # CSV for plotting
//	figures -quick          # shorter sampling (sanity pass)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormsim/internal/core"
)

func main() {
	fig := flag.String("fig", "", "figure to run: 3, 4, 5, vct (default: all)")
	peaks := flag.Bool("peaks", false, "print only the peak-throughput summary per figure")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	md := flag.Bool("md", false, "emit markdown report sections instead of tables")
	quick := flag.Bool("quick", false, "shorter warmup/sampling for a fast sanity pass")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	base := core.Config{Seed: *seed}
	if *quick {
		base.WarmupCycles, base.SampleCycles, base.GapCycles = 2000, 1000, 300
		base.MaxSamples = 5
	}

	specs := core.Figures()
	if *fig != "" {
		id := *fig
		if id == "3" || id == "4" || id == "5" {
			id = "fig" + id
		}
		spec, err := core.FigureByID(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		specs = []core.FigureSpec{spec}
	}

	for _, spec := range specs {
		start := time.Now()
		fr, err := core.RunFigure(spec, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		switch {
		case *md:
			fr.WriteMarkdown(os.Stdout)
		case *peaks:
			fmt.Printf("# %s: %s\n", spec.ID, spec.Title)
			for _, p := range fr.Peaks() {
				fmt.Printf("  %-7s peak throughput %.3f at offered %.2f\n", p.Algorithm, p.Throughput, p.AtLoad)
			}
		case *csv:
			fr.WriteCSV(os.Stdout)
		default:
			fr.WriteTable(os.Stdout)
			fmt.Printf("## peaks\n")
			for _, p := range fr.Peaks() {
				fmt.Printf("  %-7s %.3f at offered %.2f\n", p.Algorithm, p.Throughput, p.AtLoad)
			}
		}
		fmt.Fprintf(os.Stderr, "# %s done in %.1fs\n", spec.ID, time.Since(start).Seconds())
	}
}
