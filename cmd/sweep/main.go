// Command sweep runs a load sweep for one or more algorithms and emits CSV
// (or an aligned table) suitable for regenerating the paper's curves or
// exploring new configurations.
//
// Examples:
//
//	sweep -algs phop,nbc,ecube -loads 0.1:1.0:0.1
//	sweep -algs nlast,ecube -pattern transpose -loads 0.05:0.6:0.05 -format table
//	sweep -algs nbc -pattern hotspot:0.08 -cclimit 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"wormsim/internal/core"
	"wormsim/internal/routing"
)

func main() {
	cfg := core.Config{}
	algs := flag.String("algs", "phop,nhop,nbc,2pn,ecube,nlast", "comma-separated algorithms ("+strings.Join(routing.Names(), ", ")+")")
	loadSpec := flag.String("loads", "0.1:1.0:0.1", "offered loads: lo:hi:step or comma list")
	format := flag.String("format", "csv", "output format: csv, table or json")
	flag.IntVar(&cfg.K, "k", 16, "radix")
	flag.IntVar(&cfg.N, "n", 2, "dimensions")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh instead of torus")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern spec")
	flag.StringVar(&cfg.Policy, "policy", "random", "VC selection policy")
	sw := flag.String("switching", "wormhole", "switching: wormhole, vct, saf")
	flag.IntVar(&cfg.MsgLen, "flits", 16, "message length in flits")
	flag.IntVar(&cfg.BufDepth, "bufdepth", 0, "per-VC buffer depth")
	flag.IntVar(&cfg.CCLimit, "cclimit", 0, "congestion-control limit (default 2, -1 off)")
	flag.IntVar(&cfg.InjectionPorts, "ports", 0, "injection ports per node (default 2, -1 unlimited)")
	flag.IntVar(&cfg.RouteDelay, "routedelay", 0, "router pipeline cycles per header hop")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", 0, "warmup cycles")
	flag.Int64Var(&cfg.SampleCycles, "sample", 0, "cycles per sample")
	flag.IntVar(&cfg.MaxSamples, "maxsamples", 0, "max sampling periods")
	flag.Parse()
	cfg.Switching = core.Switching(*sw)
	cfg.Seed = *seed

	loads, err := core.ParseLoads(*loadSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "csv":
		fmt.Println("algorithm,pattern,switching,offered,latency,latency_bound,throughput,injection_rate,generated,dropped,delivered,samples,state")
	case "table":
		fmt.Printf("%-8s %-10s %8s %10s %10s %10s %8s\n", "alg", "pattern", "offered", "latency", "bound", "thruput", "state")
	case "json":
		// one JSON object per line (JSONL), emitted below
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown format %q (csv, table, json)\n", *format)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, alg := range strings.Split(*algs, ",") {
		alg = strings.TrimSpace(alg)
		c := cfg
		c.Algorithm = alg
		results, err := core.Sweep(c, loads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", alg, err)
			os.Exit(1)
		}
		for _, r := range results {
			state := "ok"
			switch {
			case r.Deadlocked:
				state = "deadlock"
			case !r.Converged:
				state = "max-samples"
			}
			switch *format {
			case "csv":
				fmt.Printf("%s,%s,%s,%.3f,%.2f,%.2f,%.4f,%.5f,%d,%d,%d,%d,%s\n",
					r.Algorithm, r.Pattern, r.Switching, r.OfferedLoad, r.AvgLatency, r.LatencyBound,
					r.Throughput, r.InjectionRate, r.Generated, r.Dropped, r.Delivered, r.Samples, state)
			case "json":
				r.ChannelFlits = nil // keep the records small
				if err := enc.Encode(r); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
					os.Exit(1)
				}
			default:
				fmt.Printf("%-8s %-10s %8.2f %10.1f %10.1f %10.4f %8s\n",
					r.Algorithm, r.Pattern, r.OfferedLoad, r.AvgLatency, r.LatencyBound, r.Throughput, state)
			}
		}
		peak, at := core.PeakThroughput(results)
		fmt.Fprintf(os.Stderr, "# %s peak throughput %.3f at offered %.2f\n", alg, peak, at)
	}
}
