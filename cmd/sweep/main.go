// Command sweep runs a load sweep for one or more algorithms and emits CSV
// (or an aligned table) suitable for regenerating the paper's curves or
// exploring new configurations.
//
// Examples:
//
//	sweep -algs phop,nbc,ecube -loads 0.1:1.0:0.1
//	sweep -algs nlast,ecube -pattern transpose -loads 0.05:0.6:0.05 -format table
//	sweep -algs nbc -pattern hotspot:0.08 -cclimit 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/observatory"
	"wormsim/internal/routing"
	"wormsim/internal/runstore"
	"wormsim/internal/telemetry"
)

func main() {
	cfg := core.Config{}
	algs := flag.String("algs", "phop,nhop,nbc,2pn,ecube,nlast", "comma-separated algorithms ("+strings.Join(routing.Names(), ", ")+")")
	loadSpec := flag.String("loads", "0.1:1.0:0.1", "offered loads: lo:hi:step or comma list")
	format := flag.String("format", "csv", "output format: csv, table or json")
	flag.IntVar(&cfg.K, "k", 16, "radix")
	flag.IntVar(&cfg.N, "n", 2, "dimensions")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh instead of torus")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern spec")
	flag.StringVar(&cfg.Policy, "policy", "random", "VC selection policy")
	sw := flag.String("switching", "wormhole", "switching: wormhole, vct, saf")
	flag.IntVar(&cfg.MsgLen, "flits", 16, "message length in flits")
	flag.IntVar(&cfg.BufDepth, "bufdepth", 0, "per-VC buffer depth")
	flag.IntVar(&cfg.CCLimit, "cclimit", 0, "congestion-control limit (default 2, -1 off)")
	flag.IntVar(&cfg.InjectionPorts, "ports", 0, "injection ports per node (default 2, -1 unlimited)")
	flag.IntVar(&cfg.RouteDelay, "routedelay", 0, "router pipeline cycles per header hop")
	seed := flag.Uint64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "seeds per point, run as lockstep batches with across-seed error bars (0 = one per sampling period budget); replica r uses seed + r*0x9e3779b97f4a7c15")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", 0, "warmup cycles")
	flag.Int64Var(&cfg.SampleCycles, "sample", 0, "cycles per sample")
	flag.IntVar(&cfg.MaxSamples, "maxsamples", 0, "max sampling periods")
	metrics := flag.Bool("metrics", false, "collect telemetry; prints a per-point summary on stderr (json format embeds the full summary)")
	fore := flag.Bool("forensics", false, "congestion forensics per point; prints blame attribution on stderr (json format embeds the full summary)")
	foreEvery := flag.Int64("forensics-every", 0, "forensics sampling period in cycles (default 64; implies -forensics)")
	tracePrefix := flag.String("trace", "", "write a Chrome trace per point to PREFIX-<alg>-<load>.json")
	progress := flag.Bool("progress", false, "live sweep progress with ETA on stderr")
	httpAddr := flag.String("http", "", "serve the live observatory (Prometheus /metrics, /snapshot, SSE /events, /heatmap, pprof, /api/runs) on this address, e.g. :8080")
	storeDir := flag.String("store", "", "persistent run store directory: already-recorded points skip simulation entirely; with -http the store backs the /api/runs and /api/compare endpoints")
	flag.Int64Var(&cfg.TickCycles, "tick", 0, "observatory publication period in simulated cycles (default 1000)")
	flag.Parse()
	cfg.Switching = core.Switching(*sw)
	cfg.Seed = *seed
	if *metrics || *tracePrefix != "" {
		cfg.Telemetry = &telemetry.Options{Metrics: *metrics, Trace: *tracePrefix != ""}
	}
	if *fore || *foreEvery > 0 {
		cfg.Forensics = &forensics.Options{SampleEvery: *foreEvery}
	}

	loads, err := core.ParseLoads(*loadSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	algList := strings.Split(*algs, ",")

	// The run store turns the sweep into admission control: every point
	// already recorded comes back without simulating a single cycle.
	var store *runstore.Store
	if *storeDir != "" {
		s, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
		store = s
		cfg.Cache = store
	}

	// The observatory publisher is shared across every point of the sweep:
	// the snapshot follows whichever point published last, and completed
	// points stream out as SSE "point" events.
	var pub *observatory.Publisher
	if *httpAddr != "" {
		pub = observatory.NewPublisher()
	}
	if pub != nil {
		pub.SetSweepTotal(len(algList) * len(loads))
		pp := telemetry.NewPhaseProfiler()
		pub.SetPhases(pp)
		cfg.PhaseProf = pp
		cfg.OnTick = pub.PublishTick
		var api *observatory.API
		if store != nil {
			pub.SetStore(store)
			api = observatory.NewAPI(store, pub, runtime.GOMAXPROCS(0))
			defer api.Close()
		}
		s, err := observatory.Listen(*httpAddr, pub, api)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
		fmt.Fprintf(os.Stderr, "observatory serving on http://%s/\n", s.Addr())
	}

	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(os.Stderr, "sweep", len(algList)*len(loads))
	}
	// note prints a stderr annotation, first breaking out of the progress
	// line's carriage-return rewrite cycle if one is active.
	note := func(format string, a ...any) {
		if prog != nil {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, format, a...)
	}

	if *replicas != 1 {
		if err := sweepReplicated(cfg, algList, loads, *replicas, *format); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		if store != nil {
			note("store: hits=%d misses=%d\n", store.Hits(), store.Misses())
		}
		return
	}

	switch *format {
	case "csv":
		fmt.Println("algorithm,pattern,switching,offered,latency,latency_bound,throughput,injection_rate,generated,dropped,delivered,samples,state")
	case "table":
		fmt.Printf("%-8s %-10s %8s %10s %10s %10s %8s\n", "alg", "pattern", "offered", "latency", "bound", "thruput", "state")
	case "json":
		// one JSON object per line (JSONL), emitted below
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown format %q (csv, table, json)\n", *format)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	var onDone func(i int, r core.Result)
	if prog != nil || pub != nil {
		onDone = func(i int, r core.Result) {
			if pub != nil {
				pub.PublishPoint(i, r)
			}
			if prog != nil {
				prog.Step(fmt.Sprintf("%s rho=%.2f lat=%.1f", r.Algorithm, r.OfferedLoad, r.AvgLatency))
			}
		}
	}
	for _, alg := range algList {
		alg = strings.TrimSpace(alg)
		c := cfg
		c.Algorithm = alg
		results, err := core.SweepObserved(c, loads, runtime.GOMAXPROCS(0), onDone)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", alg, err)
			os.Exit(1)
		}
		for _, r := range results {
			state := "ok"
			switch {
			case r.Deadlocked:
				state = "deadlock"
			case !r.Converged:
				state = "max-samples"
			}
			switch *format {
			case "csv":
				fmt.Printf("%s,%s,%s,%.3f,%.2f,%.2f,%.4f,%.5f,%d,%d,%d,%d,%s\n",
					r.Algorithm, r.Pattern, r.Switching, r.OfferedLoad, r.AvgLatency, r.LatencyBound,
					r.Throughput, r.InjectionRate, r.Generated, r.Dropped, r.Delivered, r.Samples, state)
			case "json":
				r.ChannelFlits = nil // keep the records small
				if err := enc.Encode(r); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
					os.Exit(1)
				}
			default:
				fmt.Printf("%-8s %-10s %8.2f %10.1f %10.1f %10.4f %8s\n",
					r.Algorithm, r.Pattern, r.OfferedLoad, r.AvgLatency, r.LatencyBound, r.Throughput, state)
			}
			if *metrics && r.Telemetry != nil {
				top := r.Telemetry.BusiestChannels(1)[0]
				note("# %s rho=%.2f: max ch util %.1f%% (ch %d), head-blocked %d, inj backlog mean %.2f, drops %d\n",
					r.Algorithm, r.OfferedLoad, 100*r.Telemetry.ChannelUtilization(top), top,
					r.Telemetry.TotalHeadBlocked(), r.Telemetry.InjQueueMean, r.Telemetry.Drops)
			}
			if cfg.Forensics != nil && r.Forensics != nil {
				f := r.Forensics
				blame := "no head-blocked worms"
				if top := f.TopRoots(1); len(top) > 0 {
					blame = fmt.Sprintf("top root ch %d carries %.1f%% of %d blamed worm-cycles (%.1f%% attributed)",
						top[0].Ch, 100*top[0].Share, f.BlockedObserved, 100*f.AttributedFraction())
				}
				note("# %s rho=%.2f: %s, %d wait-for cycles\n", r.Algorithm, r.OfferedLoad, blame, f.WaitCycles)
			}
			if *tracePrefix != "" {
				path := fmt.Sprintf("%s-%s-%.2f.json", *tracePrefix, r.Algorithm, r.OfferedLoad)
				if err := writeChromeTrace(path, r.TraceEvents); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
					os.Exit(1)
				}
			}
		}
		peak, at := core.PeakThroughput(results)
		note("# %s peak throughput %.3f at offered %.2f\n", alg, peak, at)
	}
	if store != nil {
		note("store: hits=%d misses=%d\n", store.Hits(), store.Misses())
	}
	if prog != nil {
		prog.Finish()
	}
}

// sweepReplicated runs the replicated sweep: every (algorithm, load) point
// simulated at n seeds through the batch lockstep engine
// (core.SweepReplicated), reported as mean +- across-seed spread. The
// aggregate simulation rate lands on stderr per algorithm.
func sweepReplicated(cfg core.Config, algList []string, loads []float64, n int, format string) error {
	eff := cfg
	eff.ApplyDefaults()
	if n <= 0 {
		n = eff.MaxSamples
	}
	seeds := make([]uint64, n)
	for r := range seeds {
		seeds[r] = cfg.Seed + uint64(r)*0x9e3779b97f4a7c15
	}
	switch format {
	case "csv":
		fmt.Println("algorithm,pattern,switching,offered,mean_latency,latency_spread,mean_throughput,replicas,deadlocks")
	case "table":
		fmt.Printf("%-8s %-10s %8s %12s %10s %10s %10s\n", "alg", "pattern", "offered", "mean_lat", "spread", "thruput", "deadlocks")
	case "json":
		// one JSON object per line (JSONL), emitted below
	default:
		return fmt.Errorf("unknown format %q (csv, table, json)", format)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, alg := range algList {
		alg = strings.TrimSpace(alg)
		c := cfg
		c.Algorithm = alg
		start := time.Now()
		results, err := core.SweepReplicated(c, loads, seeds, runtime.GOMAXPROCS(0))
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		var cycles int64
		for _, rr := range results {
			for _, r := range rr.Replicas {
				cycles += r.Cycles
			}
			switch format {
			case "csv":
				fmt.Printf("%s,%s,%s,%.3f,%.2f,%.2f,%.4f,%d,%d\n",
					alg, cfg.Pattern, eff.Switching, rr.OfferedLoad, rr.MeanLatency, rr.LatencySpread,
					rr.MeanThroughput, len(rr.Replicas), rr.Deadlocks)
			case "json":
				rec := rr
				rec.Replicas = nil // keep the records small
				if err := enc.Encode(rec); err != nil {
					return err
				}
			default:
				fmt.Printf("%-8s %-10s %8.2f %12.1f %10.1f %10.4f %10d\n",
					alg, cfg.Pattern, rr.OfferedLoad, rr.MeanLatency, rr.LatencySpread, rr.MeanThroughput, rr.Deadlocks)
			}
		}
		fmt.Fprintf(os.Stderr, "# %s: %d seeds x %d loads, %.3g replica-cycles/s aggregate over %v wall\n",
			alg, n, len(loads), float64(cycles)/wall.Seconds(), wall.Round(time.Millisecond))
	}
	return nil
}

// writeChromeTrace writes one point's lifecycle trace for chrome://tracing.
func writeChromeTrace(path string, evs []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteChromeTrace(f, evs); err != nil {
		return err
	}
	return f.Close()
}
