// Command wormlint runs wormsim's domain-specific static-analysis suite
// (see internal/lint): determinism of the simulation core, zero-alloc
// discipline on the engine's whole-program per-cycle call graph, atomic and
// mutex discipline, hook-escape copying, nil-guarded telemetry hooks,
// lock-copy and loop-capture hazards, scalar/batch engine parity,
// resource-conservation ledgers, slot/position index discipline, and
// error-message conventions.
//
//	wormlint ./...                      # whole repo (the CI gate)
//	wormlint ./internal/core            # one package
//	wormlint -list                      # describe the passes
//	wormlint -passes errfmt,lockscope   # run a subset
//	wormlint -fix ./...                 # apply suggested fixes in place
//	wormlint -json ./...                # findings as a JSON array
//	wormlint -sarif out.sarif ./...     # SARIF 2.1.0 for code scanning
//	wormlint -writebaseline lint.txt    # accept today's findings as debt
//	wormlint -baseline lint.txt ./...   # gate only on new findings
//	wormlint -certify-purity certs.json # purity certificates for the run
//	                                    # entry points (CI pins a golden)
//	wormlint -certify-parity certs.json # engine parity certificates
//	                                    # (CI pins a golden)
//
// The module is loaded and type-checked exactly once per invocation: the
// lint passes and both certification flags share one lint.Program, so
// combining them costs one load, not three.
//
// Findings print as "file:line: [pass] message". Exit status: 0 clean,
// 1 findings, 2 usage or load/type-check failure. Intentional uses are
// annotated in the source with `//lint:allow <pass>[,<pass>...] reason`;
// intentional engine divergences with `//lint:parity <dim>[,...] reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wormsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	passesFlag := flag.String("passes", "", "comma-separated pass names to run (default: all)")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "suppress findings listed in this baseline file")
	writeBaseline := flag.String("writebaseline", "", "write current findings to this baseline file and exit 0")
	certifyPurity := flag.String("certify-purity", "", "write purity certificates for the run entry points to this file and gate on violations")
	certifyParity := flag.String("certify-parity", "", "write scalar/batch engine parity certificates to this file and gate on divergence")
	flag.Parse()

	passes := lint.DefaultPasses()
	if *passesFlag != "" {
		var err error
		passes, err = lint.SelectPasses(*passesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
			os.Exit(2)
		}
	}

	if *list {
		for _, p := range passes {
			fmt.Printf("%-18s %s\n", p.Name(), p.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}

	// One Program serves findings and every certification below.
	prog := lint.NewProgram(pkgs)
	findings := lint.RunOn(prog, passes)

	if *fix {
		patched, err := lint.ApplyFixes(loader.Fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -fix: %v\n", err)
			os.Exit(2)
		}
		var names []string
		for name := range patched {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, patched[name], 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "wormlint: -fix: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "wormlint: fixed %s\n", relPath(name))
		}
		// Report what -fix could not resolve: reload and re-run so line
		// numbers match the patched sources.
		if len(names) > 0 {
			loader, err = lint.NewLoader(".")
			if err == nil {
				pkgs, err = loader.Load(patterns...)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "wormlint: reload after -fix: %v\n", err)
				os.Exit(2)
			}
			prog = lint.NewProgram(pkgs)
			findings = lint.RunOn(prog, passes)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = lint.WriteBaseline(f, findings, loader.ModRoot)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -writebaseline: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wormlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -baseline: %v\n", err)
			os.Exit(2)
		}
		var suppressed int
		findings, suppressed = lint.FilterBaseline(findings, base, loader.ModRoot)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "wormlint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err == nil {
			err = lint.WriteSARIF(f, findings, passes, loader.ModRoot)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -sarif: %v\n", err)
			os.Exit(2)
		}
	}

	exit := 0
	if *certifyPurity != "" {
		if certifyPurityRun(prog, loader.ModRoot, *certifyPurity) {
			exit = 1
		}
	}
	if *certifyParity != "" {
		if certifyParityRun(prog, loader.ModRoot, *certifyParity) {
			exit = 1
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonFindings(findings)); err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -json: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(f.Pos.Filename), f.Pos.Line, f.Pass, f.Msg)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wormlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		exit = 1
	}
	os.Exit(exit)
}

// jsonFinding is the -json output shape: one object per finding, with the
// position split into machine-consumable fields.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

func jsonFindings(findings []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relPath(f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Pass:    f.Pass,
			Message: f.Msg,
			Fixable: f.Fix != nil,
		})
	}
	return out
}

// certifyPurityRun runs the purity certification (see lint.CertifyPurity)
// against the shared Program and writes the certificate set to path. It
// reports whether any certificate carries violations; certification
// machinery failures exit 2 directly.
func certifyPurityRun(prog *lint.Program, modRoot, path string) bool {
	certs, err := lint.CertifyPurity(prog, lint.NewPurity(), modRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: -certify-purity: %v\n", err)
		os.Exit(2)
	}
	writeCerts(path, certs, "-certify-purity")
	violations := 0
	for _, cert := range certs.Entries {
		status := "PURE"
		if !cert.Pure {
			status = "IMPURE"
			violations += len(cert.Violations)
		}
		fmt.Fprintf(os.Stderr, "wormlint: purity: %-42s %-6s (%d reachable, %d exemption(s), %d violation(s))\n",
			cert.Entry, status, cert.ReachableFunctions, len(cert.Exemptions), len(cert.Violations))
		for _, v := range cert.Violations {
			fmt.Printf("%s:%d: [purity] %s (via %s)\n", v.File, v.Line, v.Detail, v.Witness)
		}
	}
	fmt.Fprintf(os.Stderr, "wormlint: purity certificates written to %s (%s)\n", relPath(path), certs.Signature)
	return violations > 0
}

// certifyParityRun runs the engine-parity certification (see
// lint.CertifyParity) against the shared Program and writes the certificate
// set to path. It reports whether any pair is divergent; certification
// machinery failures exit 2 directly.
func certifyParityRun(prog *lint.Program, modRoot, path string) bool {
	certs, err := lint.CertifyParity(prog, lint.NewEngineParity(), modRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: -certify-parity: %v\n", err)
		os.Exit(2)
	}
	writeCerts(path, certs, "-certify-parity")
	divergent := 0
	for _, cert := range certs.Pairs {
		audited := 0
		for _, d := range cert.Dimensions {
			if d.Status == "audited" {
				audited++
			}
		}
		if cert.Status == "divergent" {
			divergent++
		}
		fmt.Fprintf(os.Stderr, "wormlint: parity: %-20s %-9s (%d/%d dimension(s) audited)\n",
			cert.Pair, cert.Status, audited, len(cert.Dimensions))
	}
	fmt.Fprintf(os.Stderr, "wormlint: parity certificates written to %s (%s)\n", relPath(path), certs.Signature)
	return divergent > 0
}

// writeCerts marshals one certificate set to path, exiting 2 on failure.
func writeCerts(path string, certs any, flagName string) {
	data, err := json.MarshalIndent(certs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %s: %v\n", flagName, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %s: %v\n", flagName, err)
		os.Exit(2)
	}
}

// relPath renders name relative to the working directory when it is inside.
func relPath(name string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
