// Command wormlint runs wormsim's domain-specific static-analysis suite
// (see internal/lint): determinism of the simulation core, zero-alloc
// discipline on the engine's whole-program per-cycle call graph, atomic and
// mutex discipline, hook-escape copying, nil-guarded telemetry hooks,
// lock-copy and loop-capture hazards, and error-message conventions.
//
//	wormlint ./...                      # whole repo (the CI gate)
//	wormlint ./internal/core            # one package
//	wormlint -list                      # describe the passes
//	wormlint -passes errfmt,lockscope   # run a subset
//	wormlint -fix ./...                 # apply suggested fixes in place
//	wormlint -sarif out.sarif ./...     # SARIF 2.1.0 for code scanning
//	wormlint -writebaseline lint.txt    # accept today's findings as debt
//	wormlint -baseline lint.txt ./...   # gate only on new findings
//	wormlint -certify-purity certs.json # purity certificates for the run
//	                                    # entry points (CI pins a golden)
//
// Findings print as "file:line: [pass] message". Exit status: 0 clean,
// 1 findings, 2 usage or load/type-check failure. Intentional uses are
// annotated in the source with `//lint:allow <pass>[,<pass>...] reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wormsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	passesFlag := flag.String("passes", "", "comma-separated pass names to run (default: all)")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "suppress findings listed in this baseline file")
	writeBaseline := flag.String("writebaseline", "", "write current findings to this baseline file and exit 0")
	certifyPurity := flag.String("certify-purity", "", "write purity certificates for the run entry points to this file and gate on violations")
	flag.Parse()

	passes := lint.DefaultPasses()
	if *passesFlag != "" {
		var err error
		passes, err = lint.SelectPasses(*passesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
			os.Exit(2)
		}
	}

	if *list {
		for _, p := range passes {
			fmt.Printf("%-18s %s\n", p.Name(), p.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}

	if *certifyPurity != "" {
		certify(pkgs, loader.ModRoot, *certifyPurity)
		return
	}

	findings := lint.Run(pkgs, passes)

	if *fix {
		patched, err := lint.ApplyFixes(loader.Fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -fix: %v\n", err)
			os.Exit(2)
		}
		var names []string
		for name := range patched {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, patched[name], 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "wormlint: -fix: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "wormlint: fixed %s\n", relPath(name))
		}
		// Report what -fix could not resolve: reload and re-run so line
		// numbers match the patched sources.
		if len(names) > 0 {
			loader, err = lint.NewLoader(".")
			if err == nil {
				pkgs, err = loader.Load(patterns...)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "wormlint: reload after -fix: %v\n", err)
				os.Exit(2)
			}
			findings = lint.Run(pkgs, passes)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = lint.WriteBaseline(f, findings, loader.ModRoot)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -writebaseline: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wormlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -baseline: %v\n", err)
			os.Exit(2)
		}
		var suppressed int
		findings, suppressed = lint.FilterBaseline(findings, base, loader.ModRoot)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "wormlint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err == nil {
			err = lint.WriteSARIF(f, findings, passes, loader.ModRoot)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormlint: -sarif: %v\n", err)
			os.Exit(2)
		}
	}

	for _, f := range findings {
		fmt.Printf("%s:%d: [%s] %s\n", relPath(f.Pos.Filename), f.Pos.Line, f.Pass, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wormlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// certify runs the purity certification (see lint.CertifyPurity) and writes
// the certificate set to path. Exit status: 0 when every entry point is
// pure modulo annotated exemptions, 1 when any certificate carries
// violations, 2 when certification itself fails.
func certify(pkgs []*lint.Package, modRoot, path string) {
	prog := lint.NewProgram(pkgs)
	certs, err := lint.CertifyPurity(prog, lint.NewPurity(), modRoot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: -certify-purity: %v\n", err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(certs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: -certify-purity: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: -certify-purity: %v\n", err)
		os.Exit(2)
	}
	violations := 0
	for _, cert := range certs.Entries {
		status := "PURE"
		if !cert.Pure {
			status = "IMPURE"
			violations += len(cert.Violations)
		}
		fmt.Fprintf(os.Stderr, "wormlint: purity: %-42s %-6s (%d reachable, %d exemption(s), %d violation(s))\n",
			cert.Entry, status, cert.ReachableFunctions, len(cert.Exemptions), len(cert.Violations))
		for _, v := range cert.Violations {
			fmt.Printf("%s:%d: [purity] %s (via %s)\n", v.File, v.Line, v.Detail, v.Witness)
		}
	}
	fmt.Fprintf(os.Stderr, "wormlint: purity certificates written to %s (%s)\n", relPath(path), certs.Signature)
	if violations > 0 {
		os.Exit(1)
	}
}

// relPath renders name relative to the working directory when it is inside.
func relPath(name string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
