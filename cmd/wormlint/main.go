// Command wormlint runs wormsim's domain-specific static-analysis suite
// (see internal/lint): determinism of the simulation core, zero-alloc
// discipline on the engine's per-cycle call graph, nil-guarded telemetry
// hooks, lock-copy and loop-capture hazards, and error-message conventions.
//
//	wormlint ./...              # whole repo (the CI gate)
//	wormlint ./internal/core    # one package
//	wormlint -list              # describe the passes
//
// Findings print as "file:line: [pass] message". Exit status: 0 clean,
// 1 findings, 2 usage or load/type-check failure. Intentional uses are
// annotated in the source with `//lint:allow <pass> reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wormsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	flag.Parse()

	if *list {
		for _, p := range lint.DefaultPasses() {
			fmt.Printf("%-16s %s\n", p.Name(), p.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.DefaultPasses())
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, f.Pos.Line, f.Pass, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wormlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
