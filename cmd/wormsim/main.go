// Command wormsim runs a single simulation point and prints a detailed
// report: configuration, latency with its 95% error bound, achieved
// normalized throughput, message accounting, per-hop-class latencies and
// the virtual-channel load balance.
//
// Examples:
//
//	wormsim -alg phop -load 0.7
//	wormsim -alg nbc -pattern hotspot:0.04:255 -load 0.5 -seed 7
//	wormsim -alg 2pn -switching vct -load 0.6
//	wormsim -alg ecube -k 8 -mesh -pattern transpose -load 0.3
//	wormsim -alg nbc -load 0.6 -http :8080 -linger 10m   # live observatory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"wormsim/internal/analysis"
	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/observatory"
	"wormsim/internal/routing"
	"wormsim/internal/runstore"
	"wormsim/internal/stats"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/viz"
)

func main() {
	cfg := core.Config{}
	flag.IntVar(&cfg.K, "k", 16, "radix (nodes per dimension)")
	flag.IntVar(&cfg.N, "n", 2, "dimensions")
	flag.BoolVar(&cfg.Mesh, "mesh", false, "mesh instead of torus")
	flag.StringVar(&cfg.Algorithm, "alg", "ecube", "routing algorithm: "+strings.Join(routing.Names(), ", "))
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern spec (uniform | hotspot[:frac[:node]] | local[:radius] | transpose | bitrev | complement)")
	flag.StringVar(&cfg.Policy, "policy", "random", "output VC selection policy: random, first, leastcongested")
	sw := flag.String("switching", "wormhole", "switching technique: wormhole, vct, saf")
	flag.Float64Var(&cfg.OfferedLoad, "load", 0.4, "offered channel utilization (fraction of capacity)")
	flag.Float64Var(&cfg.InjectionRate, "rate", 0, "per-node injection rate (overrides -load if set)")
	flag.IntVar(&cfg.MsgLen, "flits", 16, "message length in flits")
	flag.IntVar(&cfg.BufDepth, "bufdepth", 0, "per-VC flit buffer depth (default 4; vct forces message length)")
	flag.IntVar(&cfg.CCLimit, "cclimit", 0, "congestion-control per-class limit (default 2, -1 disables)")
	flag.IntVar(&cfg.InjectionPorts, "ports", 0, "concurrent injection ports per node (default 2, -1 unlimited)")
	flag.IntVar(&cfg.RouteDelay, "routedelay", 0, "router pipeline cycles per header hop")
	seed := flag.Uint64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "simulate this many seeds of the point in one lockstep batch (0 = one per sampling period budget); replica r uses seed + r*0x9e3779b97f4a7c15")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", 0, "warmup cycles (default 5000)")
	flag.Int64Var(&cfg.SampleCycles, "sample", 0, "cycles per sampling period (default 2000)")
	flag.IntVar(&cfg.MaxSamples, "maxsamples", 0, "maximum sampling periods (default 12)")
	verbose := flag.Bool("v", false, "print per-hop-class latencies and VC load balance")
	metrics := flag.Bool("metrics", false, "collect and print telemetry: per-channel utilization, head-blocked cycles, VC occupancy")
	fore := flag.Bool("forensics", false, "congestion forensics: sampled wait-for graphs, root-cause blame attribution and per-worm latency anatomy")
	foreEvery := flag.Int64("forensics-every", 0, "forensics sampling period in cycles (default 64; 1 samples every cycle; implies -forensics)")
	blameOut := flag.String("blameout", "", "write the forensics summary to PREFIX.json and the blame heatmap to PREFIX.svg (implies -forensics)")
	tracePath := flag.String("trace", "", "write a worm lifecycle trace to this file (Chrome trace_event JSON for chrome://tracing)")
	traceFormat := flag.String("traceformat", "chrome", "trace file format: chrome or jsonl")
	traceSample := flag.Int64("tracesample", 1, "trace every Nth worm")
	progress := flag.Bool("progress", false, "live per-sample progress with ETA on stderr")
	httpAddr := flag.String("http", "", "serve the live observatory (Prometheus /metrics, /snapshot, SSE /events, /heatmap, pprof, /api/runs) on this address, e.g. :8080")
	storeDir := flag.String("store", "", "persistent run store directory: cached points skip simulation entirely; with -http the store backs the /api/runs and /api/compare endpoints")
	flag.Int64Var(&cfg.TickCycles, "tick", 0, "observatory publication period in simulated cycles (default 1000)")
	linger := flag.Duration("linger", 0, "keep the observatory server up this long after the run (e.g. 10m)")
	phaseprof := flag.Bool("phaseprof", false, "profile engine wall time per pipeline phase and print the report")
	configPath := flag.String("config", "", "JSON config file (explicit flags still override)")
	saveConfig := flag.String("saveconfig", "", "write the effective config to this JSON file and exit")
	flag.Parse()
	cfg.Switching = core.Switching(*sw)
	cfg.Seed = *seed

	if *configPath != "" {
		loaded, err := core.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
			os.Exit(1)
		}
		// Explicitly passed flags win over the file; everything else comes
		// from the file.
		flagged := cfg
		cfg = loaded
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k":
				cfg.K = flagged.K
			case "n":
				cfg.N = flagged.N
			case "mesh":
				cfg.Mesh = flagged.Mesh
			case "alg":
				cfg.Algorithm = flagged.Algorithm
			case "pattern":
				cfg.Pattern = flagged.Pattern
			case "policy":
				cfg.Policy = flagged.Policy
			case "switching":
				cfg.Switching = flagged.Switching
			case "load":
				cfg.OfferedLoad = flagged.OfferedLoad
			case "rate":
				cfg.InjectionRate = flagged.InjectionRate
			case "flits":
				cfg.MsgLen = flagged.MsgLen
			case "bufdepth":
				cfg.BufDepth = flagged.BufDepth
			case "cclimit":
				cfg.CCLimit = flagged.CCLimit
			case "ports":
				cfg.InjectionPorts = flagged.InjectionPorts
			case "routedelay":
				cfg.RouteDelay = flagged.RouteDelay
			case "seed":
				cfg.Seed = flagged.Seed
			case "warmup":
				cfg.WarmupCycles = flagged.WarmupCycles
			case "sample":
				cfg.SampleCycles = flagged.SampleCycles
			case "maxsamples":
				cfg.MaxSamples = flagged.MaxSamples
			}
		})
		if cfg.OfferedLoad == 0 && cfg.InjectionRate == 0 {
			cfg.OfferedLoad = flagged.OfferedLoad // the -load default
		}
	}
	// Telemetry flags augment whatever the config file requested.
	if *metrics || *tracePath != "" {
		opts := telemetry.Options{}
		if cfg.Telemetry != nil {
			opts = *cfg.Telemetry
		}
		opts.Metrics = opts.Metrics || *metrics
		opts.Trace = opts.Trace || *tracePath != ""
		if *traceSample > 1 {
			opts.SampleEvery = *traceSample
		}
		cfg.Telemetry = &opts
	}
	// Forensics flags likewise augment the config file's request.
	if *fore || *foreEvery > 0 || *blameOut != "" {
		opts := forensics.Options{}
		if cfg.Forensics != nil {
			opts = *cfg.Forensics
		}
		if *foreEvery > 0 {
			opts.SampleEvery = *foreEvery
		}
		cfg.Forensics = &opts
	}
	if *saveConfig != "" {
		if err := cfg.Save(*saveConfig); err != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *saveConfig)
		return
	}
	// The run store: content-addressed persistence for every completed
	// point. Attached to the config it short-circuits repeat runs; attached
	// to the observatory it backs the /api/runs and /api/compare surface.
	var store *runstore.Store
	if *storeDir != "" {
		s, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
			os.Exit(1)
		}
		defer s.Close()
		store = s
		cfg.Cache = store
	}
	// The observatory: a publisher fed by the engine's tick hook, served
	// over HTTP. The phase profiler rides along whenever either is wanted.
	var pub *observatory.Publisher
	var obsrv *observatory.Server
	if *httpAddr != "" {
		pub = observatory.NewPublisher()
	}
	if pub != nil {
		var api *observatory.API
		if store != nil {
			pub.SetStore(store)
			api = observatory.NewAPI(store, pub, runtime.GOMAXPROCS(0))
			defer api.Close()
		}
		s, err := observatory.Listen(*httpAddr, pub, api)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
			os.Exit(1)
		}
		obsrv = s
		fmt.Fprintf(os.Stderr, "observatory serving on http://%s/\n", s.Addr())
	}
	var pp *telemetry.PhaseProfiler
	if *phaseprof || pub != nil {
		pp = telemetry.NewPhaseProfiler()
		cfg.PhaseProf = pp
	}
	if pub != nil {
		pub.SetPhases(pp)
		cfg.OnTick = pub.PublishTick
	}

	var prog *telemetry.Progress
	if *progress {
		eff := cfg
		eff.ApplyDefaults()
		prog = telemetry.NewProgress(os.Stderr, "sample", eff.MaxSamples)
		cfg.OnSample = func(ev core.SampleEvent) {
			prog.Step(fmt.Sprintf("lat=%.1f+-%.1f", ev.Mean, ev.Bound))
		}
	}

	if *replicas != 1 {
		code := runReplicated(cfg, *replicas, prog)
		if obsrv != nil {
			obsrv.Close()
		}
		os.Exit(code)
	}

	res, hit, err := core.RunCached(cfg)
	if prog != nil {
		prog.Finish()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
		if !res.Deadlocked {
			os.Exit(1)
		}
	}
	if hit {
		fmt.Fprintf(os.Stderr, "result served from run store %s (cache hit %s, zero cycles simulated)\n",
			store.Path(), cfg.Hash()[:12])
	}
	if store != nil {
		// Printed eagerly: the deadlock exit below bypasses defers.
		fmt.Fprintf(os.Stderr, "store: hits=%d misses=%d\n", store.Hits(), store.Misses())
	}

	fmt.Printf("network      : %d-ary %d-cube", cfg.K, cfg.N)
	if cfg.Mesh {
		fmt.Printf(" (mesh)")
	}
	fmt.Println()
	fmt.Printf("algorithm    : %s (%s switching, policy %s)\n", res.Algorithm, res.Switching, cfg.Policy)
	fmt.Printf("pattern      : %s (mean distance %.3f hops)\n", res.Pattern, res.MeanDistance)
	fmt.Printf("offered load : %.3f of capacity (%.5f msgs/node/cycle)\n", res.OfferedLoad, res.InjectionRate)
	fmt.Printf("latency      : %.1f +- %.1f cycles (95%%); p50 %.0f, p95 %.0f, p99 %.0f, max %.0f\n",
		res.AvgLatency, res.LatencyBound, res.LatencyP50, res.LatencyP95, res.LatencyP99, res.LatencyMax)
	fmt.Printf("throughput   : %.4f of capacity\n", res.Throughput)
	fmt.Printf("messages     : %d generated, %d admitted, %d dropped, %d delivered\n",
		res.Generated, res.Admitted, res.Dropped, res.Delivered)
	fmt.Printf("samples      : %d (converged: %v, deadlocked: %v)\n", res.Samples, res.Converged, res.Deadlocked)

	if *verbose {
		fmt.Println("\nhop class latencies (cycles):")
		for d, l := range res.HopClassLatency {
			if l >= 0 && d > 0 {
				fmt.Printf("  %2d hops: %8.1f\n", d, l)
			}
		}
		if len(res.VCFlitShare) > 0 {
			fmt.Println("virtual-channel load balance (share of flit transfers):")
			for v, s := range res.VCFlitShare {
				fmt.Printf("  vc%-2d: %6.2f%% %s\n", v, 100*s, strings.Repeat("#", int(s*120)))
			}
		}
		if len(res.ChannelFlits) > 0 {
			g := cfg.Grid()
			fmt.Printf("physical-channel load balance: %v\n", analysis.ChannelBalance(g, res.ChannelFlits))
			if g.N() == 2 {
				fmt.Println("per-node traffic heatmap (outgoing flits; darker = busier):")
				fmt.Print(viz.ChannelHeatmap(g, res.ChannelFlits))
			}
		}
	}
	if *metrics || (cfg.Telemetry != nil && cfg.Telemetry.Metrics) {
		if res.Telemetry == nil {
			fmt.Fprintln(os.Stderr, "wormsim: -metrics: no telemetry collected (saf switching has no flit-level channels)")
		} else {
			printTelemetry(cfg.Grid(), res.Telemetry)
		}
	}
	if cfg.Forensics != nil {
		if res.Forensics == nil {
			fmt.Fprintln(os.Stderr, "wormsim: -forensics: nothing collected (saf switching has no virtual channels)")
		} else {
			printForensics(cfg.Grid(), res.Forensics)
		}
	}
	if *blameOut != "" && res.Forensics != nil {
		if werr := writeBlame(*blameOut, cfg, res.Forensics); werr != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote blame summary to %s.json and heatmap to %s.svg\n", *blameOut, *blameOut)
	}
	if *tracePath != "" {
		if werr := writeTrace(*tracePath, *traceFormat, res.TraceEvents); werr != nil {
			fmt.Fprintf(os.Stderr, "wormsim: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%s format)\n", len(res.TraceEvents), *tracePath, *traceFormat)
	}
	if *phaseprof && pp != nil {
		fmt.Printf("\n%s", pp.Snapshot())
	}
	if obsrv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "observatory lingering %v on http://%s/ (interrupt to exit)\n", *linger, obsrv.Addr())
			time.Sleep(*linger)
		}
		obsrv.Close()
	}
	if res.Deadlocked {
		os.Exit(2)
	}
}

// runReplicated simulates n seeds of the point in one lockstep batch
// (core.RunReplicas) and prints per-replica results plus the aggregate:
// mean latency with its across-seed spread, mean throughput, and the
// aggregate simulation rate the batch achieved. n == 0 picks one replica
// per sampling period budget (the convergence rule's MaxSamples), the width
// at which the batch replaces the longest possible scalar run. Returns the
// process exit code.
func runReplicated(cfg core.Config, n int, prog *telemetry.Progress) int {
	eff := cfg
	eff.ApplyDefaults()
	if n <= 0 {
		n = eff.MaxSamples
	}
	seeds := make([]uint64, n)
	for r := range seeds {
		seeds[r] = cfg.Seed + uint64(r)*0x9e3779b97f4a7c15
	}
	start := time.Now()
	results, err := core.RunReplicas(cfg, seeds)
	wall := time.Since(start)
	if prog != nil {
		prog.Finish()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsim: %v\n", err)
		return 1
	}
	fmt.Printf("network      : %d-ary %d-cube", cfg.K, cfg.N)
	if cfg.Mesh {
		fmt.Printf(" (mesh)")
	}
	fmt.Println()
	fmt.Printf("algorithm    : %s (%s switching, policy %s)\n", results[0].Algorithm, results[0].Switching, cfg.Policy)
	fmt.Printf("pattern      : %s (mean distance %.3f hops)\n", results[0].Pattern, results[0].MeanDistance)
	fmt.Printf("offered load : %.3f of capacity (%.5f msgs/node/cycle)\n", results[0].OfferedLoad, results[0].InjectionRate)
	fmt.Printf("replicas     : %d seeds in one lockstep batch\n", n)
	var lat, thr stats.Welford
	var cycles int64
	deadlocks := 0
	for r, res := range results {
		fmt.Printf("  seed %-#18x: %s\n", seeds[r], res.String())
		cycles += res.Cycles
		if res.Deadlocked {
			deadlocks++
			continue
		}
		lat.Add(res.AvgLatency)
		thr.Add(res.Throughput)
	}
	fmt.Printf("aggregate    : latency %.1f +- %.1f cycles (across-seed spread); throughput %.4f; deadlocks %d/%d\n",
		lat.Mean(), lat.StdDev(), thr.Mean(), deadlocks, n)
	rate := float64(cycles) / wall.Seconds()
	fmt.Printf("rate         : %.3g replica-cycles/s aggregate (%.3g cycles/s per replica) over %v wall\n",
		rate, rate/float64(n), wall.Round(time.Millisecond))
	if deadlocks > 0 {
		return 2
	}
	return 0
}

// printTelemetry renders the metrics registry: the busiest physical channels
// with their endpoints (the view that makes a hotspot's saturating channels
// obvious), head-blocked cycles per routing class, the per-class
// virtual-channel occupancy gauges and the injection backlog.
func printTelemetry(g *topology.Grid, s *telemetry.Summary) {
	fmt.Printf("\ntelemetry (%d cycles observed):\n", s.Cycles)
	fmt.Println("  busiest physical channels (busy cycles / observed cycles):")
	for _, ch := range s.BusiestChannels(10) {
		up, dim, dir := g.ChannelInfo(ch)
		down := "edge"
		if d := g.Neighbor(up, dim, dir); d >= 0 {
			down = nodeName(g, d)
		}
		fmt.Printf("    ch %4d  %s d%d%v -> %-8s %6.1f%%\n",
			ch, nodeName(g, up), dim, dir, down, 100*s.ChannelUtilization(ch))
	}
	if hb := s.TotalHeadBlocked(); hb > 0 {
		fmt.Printf("  head-blocked cycles by routing class: %v (total %d)\n", s.HeadBlockedByClass, hb)
	}
	for i := range s.VCOccupancyMean {
		fmt.Printf("  vc occupancy class %d: mean %.1f, max %.0f\n", i, s.VCOccupancyMean[i], s.VCOccupancyMax[i])
	}
	fmt.Printf("  injection backlog: mean %.2f, max %.0f messages\n", s.InjQueueMean, s.InjQueueMax)
	fmt.Printf("  congestion drops: %d\n", s.Drops)
	if s.TraceEvents > 0 || s.TraceEvicted > 0 {
		fmt.Printf("  trace: %d events retained, %d evicted\n", s.TraceEvents, s.TraceEvicted)
	}
}

// printForensics renders the blame and latency-anatomy report, then labels
// the top root channels with their topology endpoints (the view that turns
// "ch 217" into "the channel feeding the hot node").
func printForensics(g *topology.Grid, f *forensics.Summary) {
	fmt.Printf("\n%s", f.RenderString())
	roots := f.TopRoots(4)
	if len(roots) == 0 {
		return
	}
	fmt.Println("  top roots on the topology:")
	for _, r := range roots {
		up, dim, dir := g.ChannelInfo(r.Ch)
		down := "edge"
		if d := g.Neighbor(up, dim, dir); d >= 0 {
			down = nodeName(g, d)
		}
		fmt.Printf("    ch %4d  %s d%d%v -> %-8s %5.1f%% of blame\n",
			r.Ch, nodeName(g, up), dim, dir, down, 100*r.Share)
	}
}

// writeBlame exports the forensics summary as prefix.json plus the blame
// heatmap as prefix.svg — the same artifacts the observatory's /blame and
// /blame.svg serve live, in a form CI can archive.
func writeBlame(prefix string, cfg core.Config, f *forensics.Summary) error {
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(prefix+".json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	top := f.TopRoots(4)
	rootChs := make([]int, len(top))
	for i, r := range top {
		rootChs[i] = r.Ch
	}
	title := fmt.Sprintf("%s %s rho=%.2f — blame (every %d)",
		cfg.Algorithm, cfg.Pattern, cfg.OfferedLoad, f.SampleEvery)
	svg := viz.BlameSVG(cfg.Grid(), f.BlameByChannel, rootChs, title)
	return os.WriteFile(prefix+".svg", []byte(svg), 0o644)
}

// nodeName renders a node as its coordinate tuple, e.g. "(3,3)".
func nodeName(g *topology.Grid, id int) string {
	c := g.Coords(id, make([]int, g.N()))
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = strconv.Itoa(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// writeTrace exports the lifecycle trace in the requested format.
func writeTrace(path, format string, evs []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "chrome":
		err = telemetry.WriteChromeTrace(f, evs)
	case "jsonl":
		err = telemetry.WriteJSONL(f, evs)
	default:
		err = fmt.Errorf("unknown trace format %q (want chrome or jsonl)", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
