// Command bench is the benchmark-regression harness: it runs the suite of
// engine and figure-point benchmarks in process, writes a schema-versioned
// BENCH_<n>.json artifact, and compares against the previous artifact.
//
// Examples:
//
//	bench                      # full suite, BENCH_<n+1>.json, diff vs latest
//	bench -short               # reduced suite for CI smoke runs
//	bench -against BENCH_1.json -threshold 0.05 -failon time
//	bench -short -failon allocs          # the blocking CI gate
//	bench -o /tmp/now.json -against none # measure only, no comparison
//
// The comparison is advisory by default (exit 0 even on regression); pass
// -failon time|allocs|flithops|all to turn the selected regression classes
// into exit 1 for blocking CI gates. Allocation counts are reproducible
// where wall time is hardware-noisy, so CI blocks on allocs and stays
// advisory on time; -failon all additionally gates on flit-hops/sec (the
// engine's real work rate) falling more than -threshold below the baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormsim/internal/bench"
)

func main() {
	short := flag.Bool("short", false, "run the reduced suite (8x8 networks, short methodology)")
	dir := flag.String("dir", ".", "directory for BENCH_<n>.json artifacts")
	out := flag.String("o", "", "output artifact path (default: next BENCH_<n>.json in -dir)")
	against := flag.String("against", "", "previous artifact to compare with (default: latest BENCH_<n>.json in -dir; \"none\" disables)")
	threshold := flag.Float64("threshold", 0.10, "tolerated fractional slowdown before flagging a regression")
	failonFlag := flag.String("failon", "none", "regression class that exits nonzero: none, time, allocs, flithops or all")
	quiet := flag.Bool("q", false, "suppress per-benchmark progress lines")
	flag.Parse()

	failon, err := bench.ParseFailOn(*failonFlag)
	if err != nil {
		fatal(err)
	}

	logf := func(format string, args ...any) { fmt.Printf(format, args...) }
	if *quiet {
		logf = nil
	}

	// Resolve the comparison target before running, so a bad -against fails
	// fast.
	prevPath := *against
	if prevPath == "" {
		p, _, err := bench.Latest(*dir)
		if err != nil {
			fatal(err)
		}
		prevPath = p // may stay "": first run has nothing to compare with
	} else if prevPath == "none" {
		prevPath = ""
	}
	var prev *bench.Artifact
	if prevPath != "" {
		a, err := bench.ReadArtifact(prevPath)
		if err != nil {
			fatal(err)
		}
		prev = &a
	}

	art := bench.Run(*short, logf)
	art.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	outPath := *out
	if outPath == "" {
		p, err := bench.NextPath(*dir)
		if err != nil {
			fatal(err)
		}
		outPath = p
	}
	if err := bench.WriteArtifact(outPath, art); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, short=%v)\n", outPath, len(art.Benchmarks), art.Short)

	if prev == nil {
		fmt.Println("no previous artifact to compare against")
		return
	}
	deltas, err := bench.Compare(*prev, art, *threshold)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ncomparison against %s (threshold %.0f%%):\n%s", prevPath, *threshold*100, bench.FormatDeltas(deltas))
	if adv := bench.Regressions(deltas, bench.FailAll); len(adv) > 0 {
		fmt.Printf("%d regression(s) flagged\n", len(adv))
	}
	if blocking := bench.Regressions(deltas, failon); len(blocking) > 0 {
		fmt.Printf("%d blocking (-failon %s)\n", len(blocking), failon)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
