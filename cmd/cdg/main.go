// Command cdg runs the channel-dependency-graph analyzer: it enumerates
// every routing state of an algorithm on an exact small topology instance
// and reports whether the dependency graph is acyclic (the Dally–Seitz
// deadlock-freedom criterion) or prints a concrete cycle witness.
//
// Examples:
//
//	cdg                        # all algorithms on a 4-ary 2-cube torus
//	cdg -alg nlast -k 6        # one algorithm, 6-ary torus
//	cdg -alg 2pnsrc -witness   # show the cycle that wedges the source tag
//	cdg -alg 2pn -mesh         # Dally's mesh scheme
//
// Note that for fully adaptive algorithms a cycle here does NOT prove a
// deadlock can occur (adaptive routing may escape; Duato's theory applies);
// an acyclic result IS a proof of deadlock freedom for the analyzed
// instance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wormsim/internal/cdg"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

func main() {
	algName := flag.String("alg", "", "algorithm to analyze (default: all); one of "+strings.Join(routing.Names(), ", "))
	k := flag.Int("k", 4, "radix (keep small: the analysis is exact)")
	n := flag.Int("n", 2, "dimensions")
	mesh := flag.Bool("mesh", false, "mesh instead of torus")
	witness := flag.Bool("witness", false, "print the cycle witness if one exists")
	flag.Parse()

	var g *topology.Grid
	if *mesh {
		g = topology.NewMesh(*k, *n)
	} else {
		g = topology.NewTorus(*k, *n)
	}

	names := routing.Names()
	if *algName != "" {
		names = []string{*algName}
	}
	exit := 0
	for _, name := range names {
		alg, err := routing.Get(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
			os.Exit(1)
		}
		if err := alg.Compatible(g); err != nil {
			fmt.Printf("%-8s on %s: skipped (%v)\n", name, g, err)
			continue
		}
		res, err := cdg.Analyze(g, alg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Acyclic() {
			exit = 2
			if *witness {
				fmt.Println("  " + res.DescribeCycle(g))
			}
		}
	}
	os.Exit(exit)
}
