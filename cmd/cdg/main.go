// Command cdg runs the channel-dependency-graph analyzer: it enumerates
// every routing state of an algorithm on an exact small topology instance
// and reports whether the dependency graph is acyclic (the Dally–Seitz
// deadlock-freedom criterion) or prints a concrete cycle witness.
//
// Examples:
//
//	cdg                        # all algorithms on a 4-ary 2-cube torus
//	cdg -alg nlast -k 6        # one algorithm, 6-ary torus
//	cdg -alg 2pnsrc -witness   # show the cycle that wedges the source tag
//	cdg -alg 2pn -mesh         # Dally's mesh scheme
//	cdg -certify               # full certification matrix -> cdg_certificates.json
//
// In -certify mode the exhaustive analyzer runs over every registered
// algorithm × the full mesh/torus radix/dimension matrix, writes a
// machine-readable certificate file, and exits non-zero if any cell
// contradicts its registered expectation (the CI deadlock-freedom gate).
//
// Note that for fully adaptive algorithms a cycle here does NOT prove a
// deadlock can occur (adaptive routing may escape; Duato's theory applies);
// an acyclic result IS a proof of deadlock freedom for the analyzed
// instance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wormsim/internal/cdg"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

func main() {
	algName := flag.String("alg", "", "algorithm to analyze (default: all); one of "+strings.Join(routing.Names(), ", "))
	k := flag.Int("k", 4, "radix (keep small: the analysis is exact)")
	n := flag.Int("n", 2, "dimensions")
	mesh := flag.Bool("mesh", false, "mesh instead of torus")
	witness := flag.Bool("witness", false, "print the cycle witness if one exists")
	certify := flag.Bool("certify", false, "run the full certification matrix and write -o")
	out := flag.String("o", "cdg_certificates.json", "certificate output path for -certify")
	flag.Parse()

	if *certify {
		os.Exit(runCertify(*out))
	}

	var g *topology.Grid
	if *mesh {
		g = topology.NewMesh(*k, *n)
	} else {
		g = topology.NewTorus(*k, *n)
	}

	names := routing.Names()
	if *algName != "" {
		names = []string{*algName}
	}
	exit := 0
	for _, name := range names {
		alg, err := routing.Get(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
			os.Exit(1)
		}
		if err := alg.Compatible(g); err != nil {
			fmt.Printf("%-8s on %s: skipped (%v)\n", name, g, err)
			continue
		}
		res, err := cdg.Analyze(g, alg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Acyclic() {
			exit = 2
			if *witness {
				fmt.Println("  " + res.DescribeCycle(g))
			}
		}
	}
	os.Exit(exit)
}

// runCertify executes the certification gate: analyze every registered
// algorithm on the full matrix, write the certificate file, and report 0
// only if every verdict matches its registered expectation.
func runCertify(path string) int {
	cert, err := cdg.Certify(nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdg: %v\n", err)
		return 1
	}
	werr := cert.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "cdg: write %s: %v\n", path, werr)
		return 1
	}
	fmt.Printf("cdg: %d certificates -> %s: %d Dally-Seitz + %d Duato-escape certified, %d known-cyclic, %d skipped\n",
		len(cert.Certificates), path, cert.DallySeitz, cert.DuatoEscape, cert.KnownCyclic, cert.Skipped)
	if !cert.AllOK {
		for _, f := range cert.Failures {
			fmt.Fprintf(os.Stderr, "cdg: FAIL %s\n", f)
		}
		return 2
	}
	return 0
}
