// Package wormsim's root benchmarks regenerate every figure of the paper's
// evaluation (DESIGN.md experiment index) plus the ablations:
//
//	BenchmarkFig3Uniform  — Figure 3: uniform traffic, six algorithms
//	BenchmarkFig4Hotspot  — Figure 4: 4% hotspot at node (15,15)
//	BenchmarkFig5Local    — Figure 5: local traffic, 0.4 locality (7x7 box)
//	BenchmarkVCT          — sec. 3.4: virtual cut-through, 2pn vs nbc vs ecube
//	BenchmarkAblation*    — A-VC, A-SEL, A-CC of DESIGN.md
//	BenchmarkTranspose    — X-TRANS: Glass & Ni's transpose claim
//	BenchmarkEngine       — raw simulator speed (cycles/op at fixed load)
//
// Each benchmark iteration runs a full converged simulation at one offered
// load, so the interesting outputs are the custom metrics, not ns/op:
// "latency_cycles" is the converged average message latency and
// "throughput" the achieved channel utilization. Benchmarks use shortened
// warmup/sampling windows; run cmd/figures for publication-length sweeps.
package wormsim

import (
	"fmt"
	"testing"

	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// benchBase is the shared quick methodology for benchmarks.
func benchBase() core.Config {
	return core.Config{
		Seed:         1,
		WarmupCycles: 2000,
		SampleCycles: 1000,
		GapCycles:    300,
		MaxSamples:   4,
	}
}

// benchLoads is the reduced offered-load axis exercised per algorithm: one
// point below saturation, one near the hop schemes' knee, one deep in
// saturation.
var benchLoads = []float64{0.3, 0.6, 0.9}

// runPoint runs one simulation point inside a benchmark and reports its
// metrics.
func runPoint(b *testing.B, cfg core.Config) core.Result {
	b.Helper()
	res, err := core.Run(cfg)
	if err != nil && !res.Deadlocked {
		b.Fatalf("%s at rho=%.2f: %v", cfg.Algorithm, cfg.OfferedLoad, err)
	}
	return res
}

// benchFigure runs one sub-benchmark per (algorithm, load) of the spec.
func benchFigure(b *testing.B, id string) {
	spec, err := core.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range spec.Algorithms {
		for _, load := range benchLoads {
			b.Run(fmt.Sprintf("%s/rho=%.1f", alg, load), func(b *testing.B) {
				var res core.Result
				for i := 0; i < b.N; i++ {
					cfg := benchBase()
					cfg.Algorithm = alg
					cfg.Pattern = spec.Pattern
					cfg.Switching = spec.Switching
					cfg.OfferedLoad = load
					res = runPoint(b, cfg)
				}
				b.ReportMetric(res.AvgLatency, "latency_cycles")
				b.ReportMetric(res.Throughput, "throughput")
			})
		}
	}
}

// BenchmarkFig3Uniform regenerates Figure 3 (uniform traffic).
func BenchmarkFig3Uniform(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig4Hotspot regenerates Figure 4 (4% hotspot traffic).
func BenchmarkFig4Hotspot(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5Local regenerates Figure 5 (local traffic, locality 0.4).
func BenchmarkFig5Local(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkVCT regenerates the sec. 3.4 virtual cut-through comparison.
func BenchmarkVCT(b *testing.B) { benchFigure(b, "vct") }

// BenchmarkAblationEcubeVCs is experiment A-VC: e-cube throughput as
// virtual channels are added (1, 2 and 4 dateline lane pairs), uniform
// traffic at a saturating load — Dally's virtual-channel result.
func BenchmarkAblationEcubeVCs(b *testing.B) {
	for _, alg := range []string{"ecube", "ecube2x", "ecube4x"} {
		b.Run(alg, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchBase()
				cfg.Algorithm = alg
				cfg.OfferedLoad = 0.6
				res = runPoint(b, cfg)
			}
			b.ReportMetric(res.AvgLatency, "latency_cycles")
			b.ReportMetric(res.Throughput, "throughput")
		})
	}
}

// BenchmarkAblationSelection is experiment A-SEL: the output virtual-channel
// selection policy under nbc at a saturating load.
func BenchmarkAblationSelection(b *testing.B) {
	for _, policy := range []string{"random", "first", "leastcongested"} {
		b.Run(policy, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchBase()
				cfg.Algorithm = "nbc"
				cfg.Policy = policy
				cfg.OfferedLoad = 0.8
				res = runPoint(b, cfg)
			}
			b.ReportMetric(res.AvgLatency, "latency_cycles")
			b.ReportMetric(res.Throughput, "throughput")
		})
	}
}

// BenchmarkAblationCongestion is experiment A-CC: the input-buffer-limit
// sweep for e-cube and phop beyond saturation, showing that the limit is
// what keeps post-saturation throughput from collapsing.
func BenchmarkAblationCongestion(b *testing.B) {
	for _, alg := range []string{"ecube", "phop"} {
		for _, limit := range []int{-1, 1, 2, 4, 8} {
			name := fmt.Sprintf("%s/limit=%d", alg, limit)
			if limit < 0 {
				name = fmt.Sprintf("%s/limit=off", alg)
			}
			b.Run(name, func(b *testing.B) {
				var res core.Result
				for i := 0; i < b.N; i++ {
					cfg := benchBase()
					cfg.Algorithm = alg
					cfg.CCLimit = limit
					cfg.OfferedLoad = 0.7
					res = runPoint(b, cfg)
				}
				b.ReportMetric(res.AvgLatency, "latency_cycles")
				b.ReportMetric(res.Throughput, "throughput")
			})
		}
	}
}

// BenchmarkAblationRouterDelay is experiment A-RTD: the paper's hardware
// argument — "the complexity of the routing algorithm and, hence, the
// hardware cost increase with the increase in adaptivity" — quantified:
// give the adaptive nbc router a pipeline penalty per header hop and see
// how many delay cycles its throughput advantage over a zero-delay e-cube
// survives.
func BenchmarkAblationRouterDelay(b *testing.B) {
	for _, rd := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("nbc/delay=%d", rd), func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchBase()
				cfg.Algorithm = "nbc"
				cfg.RouteDelay = rd
				cfg.OfferedLoad = 0.6
				res = runPoint(b, cfg)
			}
			b.ReportMetric(res.AvgLatency, "latency_cycles")
			b.ReportMetric(res.Throughput, "throughput")
		})
	}
	b.Run("ecube/delay=0", func(b *testing.B) {
		var res core.Result
		for i := 0; i < b.N; i++ {
			cfg := benchBase()
			cfg.Algorithm = "ecube"
			cfg.OfferedLoad = 0.6
			res = runPoint(b, cfg)
		}
		b.ReportMetric(res.AvgLatency, "latency_cycles")
		b.ReportMetric(res.Throughput, "throughput")
	})
}

// BenchmarkTranspose is experiment X-TRANS: matrix-transpose traffic, the
// nonuniform pattern for which Glass & Ni report turn-model algorithms
// beating e-cube.
func BenchmarkTranspose(b *testing.B) {
	for _, alg := range []string{"nlast", "ecube", "nbc"} {
		b.Run(alg, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				cfg := benchBase()
				cfg.Algorithm = alg
				cfg.Pattern = "transpose"
				cfg.OfferedLoad = 0.4
				res = runPoint(b, cfg)
			}
			b.ReportMetric(res.AvgLatency, "latency_cycles")
			b.ReportMetric(res.Throughput, "throughput")
		})
	}
}

// BenchmarkAblationMsgLen sweeps the message length (the paper fixes 16
// flits and notes 16/20/24 are common in the literature): longer worms
// amortize header overheads but hold channel chains longer when blocked.
func BenchmarkAblationMsgLen(b *testing.B) {
	for _, alg := range []string{"nbc", "ecube"} {
		for _, ml := range []int{4, 8, 16, 24, 32} {
			b.Run(fmt.Sprintf("%s/flits=%d", alg, ml), func(b *testing.B) {
				var res core.Result
				for i := 0; i < b.N; i++ {
					cfg := benchBase()
					cfg.Algorithm = alg
					cfg.MsgLen = ml
					cfg.OfferedLoad = 0.5
					res = runPoint(b, cfg)
				}
				b.ReportMetric(res.AvgLatency, "latency_cycles")
				b.ReportMetric(res.Throughput, "throughput")
			})
		}
	}
}

// BenchmarkTelemetryOverhead measures the per-cycle cost of the telemetry
// hooks on a 16x16 torus at a moderate uniform load: "off" is the disabled
// path (nil collector — one predictable branch per hook, the configuration
// every plain run uses, documented to stay within 5% of the pre-telemetry
// engine), "metrics" adds the counter/gauge updates and "trace" the full
// lifecycle ring buffer.
func BenchmarkTelemetryOverhead(b *testing.B) {
	variants := []struct {
		name string
		opts *telemetry.Options
	}{
		{"off", nil},
		{"metrics", &telemetry.Options{Metrics: true}},
		{"trace", &telemetry.Options{Metrics: true, Trace: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			g := topology.NewTorus(16, 2)
			alg, err := routing.Get("nbc")
			if err != nil {
				b.Fatal(err)
			}
			var tel *telemetry.Collector
			if v.opts != nil {
				tel = telemetry.New(*v.opts, g.ChannelSlots(), alg.NumVCs(g))
			}
			wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
			n, err := network.New(network.Config{
				Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
				Telemetry: tel,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
			moves := n.Total().FlitMoves
			b.ReportMetric(float64(moves)/float64(b.N), "flits/cycle")
		})
	}
}

// BenchmarkForensicsOverhead measures the per-cycle cost of congestion
// forensics on a 16x16 torus at a load heavy enough that worms block: "off"
// is the disabled path (nil analyzer — one predictable branch per hook),
// "sampled" the default 1-in-64 wait-for sampling (documented to stay within
// 5% of off), and "every" the exact every-cycle attribution the acceptance
// tests use.
func BenchmarkForensicsOverhead(b *testing.B) {
	variants := []struct {
		name        string
		sampleEvery int64
	}{
		{"off", 0},
		{"sampled", forensics.DefaultSampleEvery},
		{"every", 1},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			g := topology.NewTorus(16, 2)
			alg, err := routing.Get("nbc")
			if err != nil {
				b.Fatal(err)
			}
			var fore *forensics.Analyzer
			if v.sampleEvery > 0 {
				fore = forensics.New(forensics.Options{SampleEvery: v.sampleEvery}, g.ChannelSlots())
			}
			wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 1)
			n, err := network.New(network.Config{
				Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
				Forensics: fore,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
			moves := n.Total().FlitMoves
			b.ReportMetric(float64(moves)/float64(b.N), "flits/cycle")
		})
	}
}

// BenchmarkEngine measures raw simulator speed: cycles per second of the
// flit-level engine at a moderate uniform load, per algorithm (more virtual
// channels mean more state to scan).
func BenchmarkEngine(b *testing.B) {
	for _, algName := range []string{"ecube", "2pn", "nbc", "phop"} {
		b.Run(algName, func(b *testing.B) {
			g := topology.NewTorus(16, 2)
			alg, err := routing.Get(algName)
			if err != nil {
				b.Fatal(err)
			}
			wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
			n, err := network.New(network.Config{
				Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
			moves := n.Total().FlitMoves
			b.ReportMetric(float64(moves)/float64(b.N), "flits/cycle")
		})
	}
}
