// Vctcompare: the paper's section 3.4 side experiment. Under wormhole
// switching a blocked worm holds a chain of channels, so picking a path
// that turns out congested is expensive — this is the paper's explanation
// for the fully adaptive 2pn scheme losing to the hop schemes. Under
// virtual cut-through the same blocked packet parks entirely in one node's
// buffer and frees its channels, and 2pn recovers. The example runs both
// switching techniques at the same offered loads.
//
// Run with: go run ./examples/vctcompare
package main

import (
	"fmt"
	"log"

	"wormsim/internal/core"
)

func main() {
	algs := []string{"2pn", "nbc", "ecube"}
	for _, sw := range []core.Switching{core.Wormhole, core.CutThrough} {
		fmt.Printf("== %s switching, uniform traffic ==\n", sw)
		fmt.Printf("%-8s", "offered")
		for _, alg := range algs {
			fmt.Printf(" %8s-thr", alg)
		}
		fmt.Println()
		for _, load := range []float64{0.3, 0.5, 0.7, 0.9} {
			fmt.Printf("%-8.2f", load)
			for _, alg := range algs {
				res, err := core.Run(core.Config{
					Algorithm:   alg,
					Switching:   sw,
					OfferedLoad: load,
					Seed:        3,
				})
				if err != nil {
					log.Fatalf("vctcompare: %s/%s at %.2f: %v", alg, sw, load, err)
				}
				fmt.Printf(" %12.3f", res.Throughput)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Cut-through lifts 2pn toward the hop schemes while e-cube gains far")
	fmt.Println("less: holding channel chains while blocked is what punishes adaptive")
	fmt.Println("wormhole routing without priority information.")
}
