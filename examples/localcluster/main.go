// Localcluster: the paper's section 3.3 scenario — every node talks only to
// its 7x7 neighbourhood (locality factor 0.4 on a 16-ary 2-cube), the
// pattern of a stencil or nearest-neighbour-dominated computation. Local
// traffic is the one workload where the cheap fully adaptive 2pn scheme
// beats e-cube, and where nbc's virtual-channel load balancing shines; the
// example shows both, and then varies the locality radius.
//
// Run with: go run ./examples/localcluster
package main

import (
	"fmt"
	"log"

	"wormsim/internal/core"
)

func run(alg, pattern string, load float64) core.Result {
	res, err := core.Run(core.Config{
		Algorithm:   alg,
		Pattern:     pattern,
		OfferedLoad: load,
		Seed:        21,
	})
	if err != nil {
		log.Fatalf("localcluster: %s %s at %.2f: %v", alg, pattern, load, err)
	}
	return res
}

func main() {
	fmt.Println("== local traffic (7x7 box): 2pn overtakes e-cube ==")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "offered", "2pn lat", "2pn thr", "ecube lat", "ecube thr")
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8} {
		a := run("2pn", "local:3", load)
		e := run("ecube", "local:3", load)
		fmt.Printf("%-8.2f %10.1f %10.3f %10.1f %10.3f\n", load, a.AvgLatency, a.Throughput, e.AvgLatency, e.Throughput)
	}

	fmt.Println("\n== locality radius sweep at offered 0.6 (nbc) ==")
	fmt.Printf("%-8s %12s %12s %12s\n", "radius", "mean hops", "latency", "throughput")
	for _, r := range []int{1, 2, 3, 5, 7} {
		res := run("nbc", fmt.Sprintf("local:%d", r), 0.6)
		fmt.Printf("%-8d %12.2f %12.1f %12.3f\n", r, res.MeanDistance, res.AvgLatency, res.Throughput)
	}
	fmt.Println("\nTighter locality means shorter worms' journeys: latency falls and the")
	fmt.Println("same offered utilization is reached with more messages in flight.")
}
