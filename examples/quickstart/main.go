// Quickstart: simulate the paper's headline comparison in a few lines —
// four wormhole routing algorithms on a 16-ary 2-cube under uniform traffic
// at a moderate offered load, printing latency and achieved throughput.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wormsim/internal/core"
)

func main() {
	fmt.Println("16x16 torus, 16-flit worms, uniform traffic, offered load 0.5")
	fmt.Printf("%-8s %14s %12s\n", "alg", "latency(cyc)", "throughput")
	for _, alg := range []string{"phop", "nbc", "ecube", "nlast"} {
		res, err := core.Run(core.Config{
			Algorithm:   alg,
			Pattern:     "uniform",
			OfferedLoad: 0.5,
			Seed:        1,
		})
		if err != nil {
			log.Fatalf("quickstart: %s: %v", alg, err)
		}
		fmt.Printf("%-8s %8.1f +- %-4.1f %9.3f\n", alg, res.AvgLatency, res.LatencyBound, res.Throughput)
	}
	fmt.Println("\nThe fully adaptive hop schemes (phop, nbc) sustain roughly twice the")
	fmt.Println("throughput of dimension-order e-cube, and the partially adaptive")
	fmt.Println("north-last trails e-cube — the paper's central result.")
}
