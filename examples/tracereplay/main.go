// Tracereplay: the paper's section 4 plans to evaluate routing algorithms
// on communication traces from real parallel programs. This example builds
// such a trace — the all-to-all personalized exchange of a parallel matrix
// transpose, issued in k-1 phases — replays it through two routing
// algorithms, and reports the makespan (cycle the last message arrives)
// instead of steady-state statistics.
//
// It also demonstrates the textual trace format accepted by
// traffic.ReadTrace ("cycle src dst" per line).
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"strings"

	"wormsim/internal/message"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// buildTransposeTrace schedules, for every node (i,j) off the diagonal, one
// message to (j,i), with phases staggered phaseGap cycles apart by |i-j| so
// the exchange resembles a skewed all-to-all.
func buildTransposeTrace(g *topology.Grid, phaseGap int64) (cycles []int64, arrs []traffic.Arrival) {
	k := g.K()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			src := g.ID([]int{j, i}) // coordinate order: (x=j, y=i)
			dst := g.ID([]int{i, j})
			phase := i - j
			if phase < 0 {
				phase = -phase
			}
			cycles = append(cycles, int64(phase-1)*phaseGap)
			arrs = append(arrs, traffic.Arrival{Src: src, Dst: dst})
		}
	}
	return cycles, arrs
}

func replay(algName string, g *topology.Grid, cycles []int64, arrs []traffic.Arrival) {
	alg, err := routing.Get(algName)
	if err != nil {
		log.Fatalf("tracereplay: %v", err)
	}
	wl := traffic.NewTrace(g, "transpose-trace", cycles, arrs)
	var worst, sum int64
	var count int64
	n, err := network.New(network.Config{
		Grid:      g,
		Algorithm: alg,
		Workload:  wl,
		MsgLen:    16,
		Seed:      11,
		OnDeliver: func(m *message.Message) {
			lat := m.Latency()
			sum += lat
			count++
			if m.DeliverTime > worst {
				worst = m.DeliverTime
			}
		},
	})
	if err != nil {
		log.Fatalf("tracereplay: %v", err)
	}
	if err := n.Run(wl.LastCycle() + 1); err != nil {
		log.Fatalf("tracereplay: %v", err)
	}
	if err := n.Drain(200000); err != nil {
		log.Fatalf("tracereplay: %v", err)
	}
	fmt.Printf("%-8s makespan %6d cycles, mean latency %7.1f, %d messages\n",
		algName, worst, float64(sum)/float64(count), count)
}

func main() {
	g := topology.NewTorus(16, 2)
	cycles, arrs := buildTransposeTrace(g, 24)
	fmt.Printf("replaying a %d-message staggered matrix-transpose trace on %v\n\n", len(arrs), g)
	for _, alg := range []string{"ecube", "nlast", "nbc"} {
		replay(alg, g, cycles, arrs)
	}

	// The same trace can live in a file; show the textual round trip.
	var b strings.Builder
	fmt.Fprintln(&b, "# cycle src dst")
	for i := range arrs {
		fmt.Fprintf(&b, "%d %d %d\n", cycles[i], arrs[i].Src, arrs[i].Dst)
	}
	parsed, err := traffic.ReadTrace(g, "from-file", strings.NewReader(b.String()))
	if err != nil {
		log.Fatalf("tracereplay: %v", err)
	}
	fmt.Printf("\ntrace round-tripped through the text format: %d events, mean distance %.2f hops\n",
		parsed.Len(), parsed.MeanDistance())
}
