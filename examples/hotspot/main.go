// Hotspot: reproduce the paper's section 3.2 scenario — a single node
// (15,15) receives 4% of all traffic on top of the uniform background,
// modelling a lock or critical section homed on one processor. The example
// sweeps offered load for e-cube and the nbc hop scheme and shows how the
// hotspot drags e-cube into early saturation while nbc keeps delivering,
// then raises the hotspot fraction to show graceful degradation.
//
// Run with: go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"wormsim/internal/core"
)

func main() {
	fmt.Println("== 4% hotspot at node (15,15), e-cube vs nbc ==")
	fmt.Printf("%-8s", "offered")
	for _, alg := range []string{"ecube", "nbc"} {
		fmt.Printf("  %8s lat  %8s thr", alg, alg)
	}
	fmt.Println()
	for _, load := range []float64{0.2, 0.3, 0.4, 0.6} {
		fmt.Printf("%-8.2f", load)
		for _, alg := range []string{"ecube", "nbc"} {
			res, err := core.Run(core.Config{
				Algorithm:   alg,
				Pattern:     "hotspot:0.04:255",
				OfferedLoad: load,
				Seed:        7,
			})
			if err != nil {
				log.Fatalf("hotspot: %s at %.2f: %v", alg, load, err)
			}
			fmt.Printf("  %12.1f  %12.3f", res.AvgLatency, res.Throughput)
		}
		fmt.Println()
	}

	fmt.Println("\n== hotspot fraction sweep at offered load 0.4 (nbc) ==")
	fmt.Printf("%-10s %12s %12s %10s\n", "hotspot%", "latency", "throughput", "dropped")
	for _, frac := range []float64{0, 0.02, 0.04, 0.08, 0.16} {
		res, err := core.Run(core.Config{
			Algorithm:   "nbc",
			Pattern:     fmt.Sprintf("hotspot:%g:255", frac),
			OfferedLoad: 0.4,
			Seed:        7,
		})
		if err != nil {
			log.Fatalf("hotspot: frac %.2f: %v", frac, err)
		}
		fmt.Printf("%-10.0f %12.1f %12.3f %10d\n", frac*100, res.AvgLatency, res.Throughput, res.Dropped)
	}
}
