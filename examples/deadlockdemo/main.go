// Deadlockdemo: everything this repository knows about wormhole deadlock in
// one run.
//
//  1. Static analysis: the channel-dependency graphs of the paper's
//     algorithms on a 4-ary 2-cube — the provably safe ones verify acyclic,
//     and the literal source-tag reading of the paper's eq. (1) ("2pnsrc")
//     yields a concrete cycle witness.
//  2. Dynamics: replaying a known-bad configuration shows 2pnsrc wedging
//     under load (the watchdog reports the stuck worms), while the per-hop
//     variant survives the same workload and drains cleanly.
//
// Run with: go run ./examples/deadlockdemo
package main

import (
	"fmt"
	"log"

	"wormsim/internal/cdg"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func main() {
	fmt.Println("== static analysis: channel-dependency graphs on a 4-ary 2-cube ==")
	g := topology.NewTorus(4, 2)
	for _, name := range []string{"ecube", "nlast", "phop", "nhop", "nbc", "2pnsrc"} {
		alg, err := routing.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cdg.Analyze(g, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", res)
		if !res.Acyclic() {
			fmt.Println("    witness:", res.DescribeCycle(g))
		}
	}

	fmt.Println("\n== dynamics: saturating uniform load on an 8-ary 2-cube ==")
	for _, name := range []string{"2pn", "2pnsrc"} {
		big := topology.NewTorus(8, 2)
		alg, _ := routing.Get(name)
		wl := traffic.NewBernoulli(big, traffic.NewUniform(big), 0.05, 1)
		n, err := network.New(network.Config{
			Grid: big, Algorithm: alg, Workload: wl, MsgLen: 16,
			CCLimit: 2, Seed: 1, WatchdogCycles: 30000,
		})
		if err != nil {
			log.Fatal(err)
		}
		err = n.Run(15000)
		if err == nil {
			quiet := traffic.NewBernoulli(big, traffic.NewUniform(big), 0, 1)
			*wl = *quiet
			err = n.Drain(200000)
		}
		if err != nil {
			fmt.Printf("  %-7s WEDGED: %d messages stuck after %d flit transfers\n",
				name, n.InFlight(), n.Total().FlitMoves)
		} else {
			fmt.Printf("  %-7s survived and drained: %d messages delivered\n",
				name, n.Total().Delivered)
		}
	}
	fmt.Println("\nA dependency cycle is necessary but not sufficient for deadlock:")
	fmt.Println("the per-hop tag also has cycles on tori, yet adaptivity lets its")
	fmt.Println("worms escape; the source-fixed tag leaves no escape and locks up.")
}
