// Dimensions: the paper's section 4 announces "further simulations of these
// routing algorithms for multidimensional tori and meshes". This example
// runs that study: the same node budget (~4096) arranged as a 64-ary
// 2-cube, a 16-ary 3-cube and an 8-ary 4-cube, comparing e-cube with the
// nbc hop scheme at a fixed offered load, plus a torus-vs-mesh comparison
// at 16^2.
//
// Higher dimensionality shortens paths (nk/4 mean distance) and multiplies
// channels, so the same offered fraction of capacity carries more absolute
// traffic while latency drops; the hop schemes' advantage persists across
// all shapes.
//
// Run with: go run ./examples/dimensions
package main

import (
	"fmt"
	"log"

	"wormsim/internal/core"
)

func run(cfg core.Config) core.Result {
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatalf("dimensions: %v", err)
	}
	return res
}

func main() {
	quick := core.Config{
		OfferedLoad:  0.5,
		Seed:         9,
		WarmupCycles: 3000,
		SampleCycles: 1500,
		MaxSamples:   6,
	}

	fmt.Println("== same offered load (0.5) across torus shapes, ~4k nodes ==")
	fmt.Printf("%-14s %10s %12s %12s %12s\n", "shape", "mean hops", "ecube thr", "nbc thr", "nbc lat")
	for _, shape := range []struct{ k, n int }{{64, 2}, {16, 3}, {8, 4}} {
		cfg := quick
		cfg.K, cfg.N = shape.k, shape.n
		cfg.Algorithm = "ecube"
		e := run(cfg)
		cfg.Algorithm = "nbc"
		b := run(cfg)
		fmt.Printf("%2d-ary %d-cube %10.2f %12.3f %12.3f %12.1f\n",
			shape.k, shape.n, b.MeanDistance, e.Throughput, b.Throughput, b.AvgLatency)
	}

	fmt.Println("\n== torus vs mesh at 16^2, offered 0.4 ==")
	fmt.Printf("%-8s %12s %12s\n", "alg", "torus thr", "mesh thr")
	for _, alg := range []string{"ecube", "nlast", "nbc"} {
		cfg := quick
		cfg.K, cfg.N = 16, 2
		cfg.OfferedLoad = 0.4
		cfg.Algorithm = alg
		torus := run(cfg)
		cfg.Mesh = true
		mesh := run(cfg)
		fmt.Printf("%-8s %12.3f %12.3f\n", alg, torus.Throughput, mesh.Throughput)
	}
	fmt.Println("\nNormalized mesh throughput divides by fewer channels (boundary links")
	fmt.Println("are absent), so ecube and nbc land close to their torus figures at this")
	fmt.Println("load, while nlast — whose turn restriction concentrates traffic along")
	fmt.Println("particular rows — loses the wraparound relief and degrades hardest.")
}
