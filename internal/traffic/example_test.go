package traffic_test

import (
	"fmt"

	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Example reproduces the paper's hotspot arithmetic: with 4% hotspot
// traffic on a 16-ary 2-cube, a message is directed to the hot node with
// probability 0.0438 and to any other node with probability 0.0038.
func Example() {
	g := topology.NewTorus(16, 2)
	h := traffic.NewHotspot(g, 255, 0.04)
	fmt.Printf("P(hot)=%.4f P(other)=%.4f\n", h.DestProb(0, 255), h.DestProb(0, 17))
	// Output:
	// P(hot)=0.0438 P(other)=0.0038
}

func ExampleNewBernoulli() {
	g := topology.NewTorus(16, 2)
	wl := traffic.NewBernoulli(g, traffic.NewLocal(g, 3), 0.01, 1)
	fmt.Printf("%s: mean distance %.1f hops\n", wl.Name(), wl.MeanDistance())
	w := wl.HopClassWeights()
	fmt.Printf("hop-class weights 1..6: %.4f %.4f %.4f %.4f %.4f %.4f\n",
		w[1], w[2], w[3], w[4], w[5], w[6])
	// Output:
	// local(r=3)@0.01/node/cycle: mean distance 3.5 hops
	// hop-class weights 1..6: 0.0833 0.1667 0.2500 0.2500 0.1667 0.0833
}

func ExampleParse() {
	g := topology.NewTorus(16, 2)
	for _, spec := range []string{"uniform", "hotspot:0.08:100", "local:2", "tornado"} {
		p, err := traffic.Parse(g, spec)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Println(p.Name())
	}
	// Output:
	// uniform
	// hotspot(100,8.0%)
	// local(r=2)
	// tornado
}
