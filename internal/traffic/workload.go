package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// Arrival is a message generation event: a message from Src to Dst appeared
// this cycle.
type Arrival struct {
	Src int
	Dst int
}

// Workload produces arrivals cycle by cycle.
type Workload interface {
	// Name identifies the workload for reports.
	Name() string
	// Arrivals appends this cycle's generation events to dst. Cycles must be
	// queried in nondecreasing order.
	Arrivals(cycle int64, dst []Arrival) []Arrival
	// Reseed switches to fresh random streams. The paper's methodology
	// starts new streams for destination selection and interarrival times
	// after every sampling period.
	Reseed(seed uint64)
	// MeanDistance returns the exact mean minimal distance of generated
	// messages (8.031 for uniform traffic on a 16-ary 2-cube).
	MeanDistance() float64
	// HopClassWeights returns the probability that a generated message
	// needs exactly m hops, indexed by m from 0 to the network diameter
	// (weight 0 at index 0). These are the stratum weights of the paper's
	// convergence criterion.
	HopClassWeights() []float64
}

// Bernoulli is the paper's arrival process: each node independently
// generates a message with probability Rate every cycle, which makes the
// interarrival times geometrically distributed.
type Bernoulli struct {
	g       *topology.Grid
	pattern Pattern
	rate    float64
	// thr is rate as a precomputed Uint53 cutoff: per-node trials compare a
	// raw draw against it instead of converting to float every cycle. The
	// outcomes are exactly those of Bernoulli(rate) on the same stream (see
	// rng.BernoulliThreshold).
	thr uint64
	// Separate sequences for interarrival times and destination selection,
	// as in the paper.
	arr *rng.Stream
	dst *rng.Stream

	meanDist  float64
	hopWeight []float64
}

// NewBernoulli returns a Bernoulli workload over pattern with per-node
// per-cycle generation probability rate, seeded with seed.
func NewBernoulli(g *topology.Grid, pattern Pattern, rate float64, seed uint64) *Bernoulli {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("traffic: rate %g out of [0,1]", rate))
	}
	b := &Bernoulli{g: g, pattern: pattern, rate: rate, thr: rng.BernoulliThreshold(rate)}
	b.Reseed(seed)
	b.meanDist, b.hopWeight = distanceStats(g, pattern)
	return b
}

// Name combines the pattern name and the rate.
func (b *Bernoulli) Name() string {
	return fmt.Sprintf("%s@%.4g/node/cycle", b.pattern.Name(), b.rate)
}

// Rate returns the per-node generation probability.
func (b *Bernoulli) Rate() float64 { return b.rate }

// Pattern returns the destination pattern.
func (b *Bernoulli) Pattern() Pattern { return b.pattern }

// Arrivals draws one Bernoulli trial per node. The trial loop mirrors
// rng.Stream.Bernoulli exactly — rate endpoints consume no draws, interior
// rates one Uint64 per node — but compares raw 53-bit draws against the
// precomputed cutoff, which is the engine's single hottest loop.
func (b *Bernoulli) Arrivals(_ int64, dst []Arrival) []Arrival {
	if b.rate <= 0 {
		return dst
	}
	nodes := b.g.Nodes()
	arr, thr := b.arr, b.thr
	for src := 0; src < nodes; src++ {
		if b.rate < 1 && arr.Uint53() >= thr {
			continue
		}
		d := b.pattern.Dest(src, b.dst)
		if d >= 0 {
			dst = append(dst, Arrival{Src: src, Dst: d})
		}
	}
	return dst
}

// Reseed replaces both random streams.
func (b *Bernoulli) Reseed(seed uint64) {
	b.arr = rng.NewStream(seed, 0x1a77)
	b.dst = rng.NewStream(seed, 0xde57)
}

// Replicate returns a workload identical to one built by NewBernoulli with
// the same grid, pattern and rate but seeded with seed, sharing the
// precomputed distance statistics (distanceStats enumerates O(nodes^2)
// pairs — the dominant construction cost, identical across replicas of one
// config, so a replica fleet pays it once).
func (b *Bernoulli) Replicate(seed uint64) *Bernoulli {
	nb := *b
	nb.Reseed(seed)
	return &nb
}

// ArrivalsBatch draws one cycle of arrivals for a fleet of replica
// workloads of the same grid, pattern and rate, appending replica i's
// events to out[i]. Every replica's streams consume draws in exactly the
// order its own Arrivals call would — the batch is a pure reordering across
// independent streams — but the Bernoulli trials issue node-major with the
// replicas' draws interleaved (rng.BernoulliHitsGrid), so the per-stream
// PCG latency chain that bounds the scalar loop overlaps R ways and only
// the hits come back. scratch is the hit buffer, returned (possibly grown)
// for reuse.
func ArrivalsBatch(ws []*Bernoulli, scratch []uint64, streams []*rng.Stream, out [][]Arrival) []uint64 {
	if len(ws) == 0 {
		return scratch
	}
	if len(ws) == 1 {
		// A lone survivor pays the plain loop: one stream has no ILP to win
		// and the grid detour would only add buffer traffic.
		out[0] = ws[0].Arrivals(0, out[0])
		return scratch
	}
	b0 := ws[0]
	if b0.rate <= 0 {
		return scratch
	}
	nodes := b0.g.Nodes()
	thr := b0.thr
	if b0.rate >= 1 {
		// Saturated generation consumes no arrival draws; fall back per
		// replica (interior rates are the only hot case).
		for r, b := range ws {
			out[r] = b.Arrivals(0, out[r])
		}
		return scratch
	}
	w := len(ws)
	for r, b := range ws {
		streams[r] = b.arr
	}
	scratch = rng.BernoulliHitsGrid(streams[:w], nodes, thr, scratch[:0])
	for _, h := range scratch {
		src, r := int(h>>32), int(h&0xffffffff)
		b := ws[r]
		if d := b.pattern.Dest(src, b.dst); d >= 0 {
			out[r] = append(out[r], Arrival{Src: src, Dst: d})
		}
	}
	return scratch
}

// MeanDistance returns the pattern's exact mean distance.
func (b *Bernoulli) MeanDistance() float64 { return b.meanDist }

// HopClassWeights returns the pattern's hop-class distribution.
func (b *Bernoulli) HopClassWeights() []float64 {
	w := make([]float64, len(b.hopWeight))
	copy(w, b.hopWeight)
	return w
}

// distanceStats enumerates the destination distribution exactly.
func distanceStats(g *topology.Grid, p Pattern) (mean float64, weights []float64) {
	weights = make([]float64, g.Diameter()+1)
	total := 0.0
	sum := 0.0
	for src := 0; src < g.Nodes(); src++ {
		for dst := 0; dst < g.Nodes(); dst++ {
			pr := p.DestProb(src, dst)
			if pr == 0 {
				continue
			}
			d := g.Distance(src, dst)
			weights[d] += pr
			sum += pr * float64(d)
			total += pr
		}
	}
	if total == 0 {
		return 0, weights
	}
	for i := range weights {
		weights[i] /= total
	}
	return sum / total, weights
}

// GenerationRate returns the probability that a generation attempt at a
// uniformly chosen node actually produces a message (1 for the paper's
// three patterns; below 1 for permutations with fixed points, whose idle
// nodes dilute offered load).
func GenerationRate(g *topology.Grid, p Pattern) float64 {
	total := 0.0
	for src := 0; src < g.Nodes(); src++ {
		for dst := 0; dst < g.Nodes(); dst++ {
			total += p.DestProb(src, dst)
		}
	}
	return total / float64(g.Nodes())
}

// Trace replays a fixed list of arrivals — the paper's planned trace-driven
// evaluation (sec. 4). Events need not be pre-sorted.
type Trace struct {
	g      *topology.Grid
	name   string
	events []traceEvent
	next   int
}

type traceEvent struct {
	Cycle int64
	Arrival
}

// NewTrace returns a trace workload from explicit events.
func NewTrace(g *topology.Grid, name string, cycles []int64, arrivals []Arrival) *Trace {
	if len(cycles) != len(arrivals) {
		panic("traffic: trace cycles and arrivals length mismatch")
	}
	t := &Trace{g: g, name: name, events: make([]traceEvent, len(cycles))}
	for i := range cycles {
		if arrivals[i].Src < 0 || arrivals[i].Src >= g.Nodes() || arrivals[i].Dst < 0 || arrivals[i].Dst >= g.Nodes() {
			panic(fmt.Sprintf("traffic: trace event %d out of range: %+v", i, arrivals[i]))
		}
		if arrivals[i].Src == arrivals[i].Dst {
			panic(fmt.Sprintf("traffic: trace event %d sends to itself: %+v", i, arrivals[i]))
		}
		t.events[i] = traceEvent{Cycle: cycles[i], Arrival: arrivals[i]}
	}
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].Cycle < t.events[j].Cycle })
	return t
}

// ReadTrace parses a whitespace-separated "cycle src dst" trace, one event
// per line; blank lines and lines starting with '#' are ignored.
func ReadTrace(g *topology.Grid, name string, r io.Reader) (*Trace, error) {
	var cycles []int64
	var arrivals []Arrival
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var cycle int64
		var src, dst int
		if _, err := fmt.Sscan(text, &cycle, &src, &dst); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line, err)
		}
		cycles = append(cycles, cycle)
		arrivals = append(arrivals, Arrival{Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(g, name, cycles, arrivals), nil
}

// Name returns the trace's name.
func (t *Trace) Name() string { return t.name }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.events) }

// LastCycle returns the cycle of the final event, or -1 for an empty trace.
func (t *Trace) LastCycle() int64 {
	if len(t.events) == 0 {
		return -1
	}
	return t.events[len(t.events)-1].Cycle
}

// Arrivals returns the events scheduled for the cycle.
func (t *Trace) Arrivals(cycle int64, dst []Arrival) []Arrival {
	for t.next < len(t.events) && t.events[t.next].Cycle <= cycle {
		dst = append(dst, t.events[t.next].Arrival)
		t.next++
	}
	return dst
}

// Reseed rewinds the trace (traces are deterministic; reseeding restarts
// replay so repeated samples see the same workload).
func (t *Trace) Reseed(uint64) { t.next = 0 }

// MeanDistance returns the mean distance over the trace's events.
func (t *Trace) MeanDistance() float64 {
	if len(t.events) == 0 {
		return 0
	}
	sum := 0
	for _, e := range t.events {
		sum += t.g.Distance(e.Src, e.Dst)
	}
	return float64(sum) / float64(len(t.events))
}

// HopClassWeights returns the empirical hop-class distribution of the trace.
func (t *Trace) HopClassWeights() []float64 {
	w := make([]float64, t.g.Diameter()+1)
	if len(t.events) == 0 {
		return w
	}
	for _, e := range t.events {
		w[t.g.Distance(e.Src, e.Dst)]++
	}
	for i := range w {
		w[i] /= float64(len(t.events))
	}
	return w
}
