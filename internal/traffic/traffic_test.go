package traffic

import (
	"math"
	"strings"
	"testing"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// checkDestProbSums verifies that DestProb over all destinations sums to
// the pattern's per-source generation probability (1 for non-permutations).
func checkDestProbSums(t *testing.T, g *topology.Grid, p Pattern, want func(src int) float64) {
	t.Helper()
	for src := 0; src < g.Nodes(); src++ {
		sum := 0.0
		for dst := 0; dst < g.Nodes(); dst++ {
			pr := p.DestProb(src, dst)
			if pr < 0 || pr > 1 {
				t.Fatalf("%s: DestProb(%d,%d) = %v out of range", p.Name(), src, dst, pr)
			}
			if dst == src && pr != 0 {
				t.Fatalf("%s: self-traffic probability %v at %d", p.Name(), pr, src)
			}
			sum += pr
		}
		if w := want(src); math.Abs(sum-w) > 1e-9 {
			t.Fatalf("%s: probabilities from %d sum to %v, want %v", p.Name(), src, sum, w)
		}
	}
}

// checkDestMatchesProb draws many destinations and compares the empirical
// distribution against DestProb for a few sources.
func checkDestMatchesProb(t *testing.T, g *topology.Grid, p Pattern, sources []int) {
	t.Helper()
	r := rng.New(77)
	const draws = 60000
	for _, src := range sources {
		counts := make([]int, g.Nodes())
		made := 0
		for i := 0; i < draws; i++ {
			d := p.Dest(src, r)
			if d < 0 {
				continue
			}
			if d == src {
				t.Fatalf("%s: Dest returned the source", p.Name())
			}
			counts[d]++
			made++
		}
		for dst, c := range counts {
			want := p.DestProb(src, dst) * float64(made)
			got := float64(c)
			tol := 5*math.Sqrt(want+1) + 1
			if math.Abs(got-want) > tol {
				t.Errorf("%s: src %d dst %d: %v draws, want about %v", p.Name(), src, dst, got, want)
			}
		}
	}
}

func TestUniform(t *testing.T) {
	g := topology.NewTorus(16, 2)
	u := NewUniform(g)
	checkDestProbSums(t, g, u, func(int) float64 { return 1 })
	checkDestMatchesProb(t, g, u, []int{0, 100, 255})
	if u.Name() != "uniform" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestHotspotPaperNumbers(t *testing.T) {
	// Paper sec. 3: with 4% hotspot traffic on 16^2, a message goes to the
	// hot node with probability 0.0438 and to any other node with 0.0038.
	g := topology.NewTorus(16, 2)
	h := NewHotspot(g, 255, 0.04)
	pHot := h.DestProb(0, 255)
	if math.Abs(pHot-0.0438) > 0.0001 {
		t.Errorf("P(hot) = %.5f, want 0.0438", pHot)
	}
	pOther := h.DestProb(0, 17)
	if math.Abs(pOther-0.0038) > 0.0001 {
		t.Errorf("P(other) = %.5f, want 0.0038", pOther)
	}
	// Ratio about 11.5x, as the paper says.
	if ratio := pHot / pOther; math.Abs(ratio-11.6) > 0.3 {
		t.Errorf("hot/other ratio = %.2f, want about 11.5", ratio)
	}
	checkDestProbSums(t, g, h, func(int) float64 { return 1 })
	checkDestMatchesProb(t, g, h, []int{0, 255})
}

func TestHotspotValidation(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for _, f := range []func(){
		func() { NewHotspot(g, -1, 0.04) },
		func() { NewHotspot(g, 256, 0.04) },
		func() { NewHotspot(g, 0, -0.1) },
		func() { NewHotspot(g, 0, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid hotspot construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLocalPaperWeights(t *testing.T) {
	// Paper footnote 3: for the 7x7 local pattern the hop classes are
	// 1..6 with weights 0.0833, 0.1667, 0.25, 0.25, 0.1667, 0.0833.
	g := topology.NewTorus(16, 2)
	l := NewLocal(g, 3)
	wl := NewBernoulli(g, l, 0, 1)
	w := wl.HopClassWeights()
	want := []float64{0, 0.0833, 0.1667, 0.25, 0.25, 0.1667, 0.0833}
	for i, ww := range want {
		if math.Abs(w[i]-ww) > 0.0001 {
			t.Errorf("hop class %d weight = %.4f, want %.4f", i, w[i], ww)
		}
	}
	for i := len(want); i < len(w); i++ {
		if w[i] != 0 {
			t.Errorf("hop class %d weight = %v, want 0", i, w[i])
		}
	}
	// Mean distance 3.5.
	if md := wl.MeanDistance(); math.Abs(md-3.5) > 1e-9 {
		t.Errorf("local mean distance = %v, want 3.5", md)
	}
	checkDestProbSums(t, g, l, func(int) float64 { return 1 })
	checkDestMatchesProb(t, g, l, []int{0, 136})
}

func TestLocalMesh(t *testing.T) {
	g := topology.NewMesh(8, 2)
	l := NewLocal(g, 2)
	checkDestProbSums(t, g, l, func(int) float64 { return 1 })
	checkDestMatchesProb(t, g, l, []int{0, 27})
	// A corner node's box is clipped to 3x3 - 1 = 8 destinations.
	if pr := l.DestProb(0, g.ID([]int{1, 1})); math.Abs(pr-1.0/8) > 1e-12 {
		t.Errorf("corner box probability = %v, want 1/8", pr)
	}
}

func TestLocalValidation(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for _, f := range []func(){
		func() { NewLocal(g, 0) },
		func() { NewLocal(g, 8) }, // 2*8 >= 16
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid local construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTranspose(t *testing.T) {
	g := topology.NewTorus(16, 2)
	tr := NewTranspose(g)
	// (3,5) -> (5,3): coordinates are (x=3, y=5) reversed.
	src := g.ID([]int{3, 5})
	want := g.ID([]int{5, 3})
	if got := tr.Dest(src, rng.New(1)); got != want {
		t.Errorf("transpose dest = %d, want %d", got, want)
	}
	// Diagonal nodes generate nothing.
	if got := tr.Dest(g.ID([]int{4, 4}), rng.New(1)); got != -1 {
		t.Errorf("diagonal transpose dest = %d, want -1", got)
	}
	checkDestProbSums(t, g, tr, func(src int) float64 {
		if g.Coord(src, 0) == g.Coord(src, 1) {
			return 0
		}
		return 1
	})
	// Generation rate: 16 diagonal nodes idle of 256.
	if gr := GenerationRate(g, tr); math.Abs(gr-240.0/256) > 1e-12 {
		t.Errorf("transpose generation rate = %v, want 240/256", gr)
	}
}

func TestBitReversal(t *testing.T) {
	g := topology.NewTorus(16, 2)
	b := NewBitReversal(g)
	// Node 1 (binary 00000001) -> 128 (10000000).
	if got := b.Dest(1, rng.New(1)); got != 128 {
		t.Errorf("bitrev(1) = %d, want 128", got)
	}
	// Palindromic id maps to itself -> no message.
	if got := b.Dest(0, rng.New(1)); got != -1 {
		t.Errorf("bitrev(0) = %d, want -1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bit reversal on non-power-of-two did not panic")
		}
	}()
	NewBitReversal(topology.NewTorus(6, 2))
}

func TestComplement(t *testing.T) {
	g := topology.NewTorus(16, 2)
	c := NewComplement(g)
	src := g.ID([]int{3, 5})
	want := g.ID([]int{11, 13})
	if got := c.Dest(src, rng.New(1)); got != want {
		t.Errorf("complement dest = %d, want %d", got, want)
	}
	// Every message travels the full diameter.
	wl := NewBernoulli(g, c, 0, 1)
	if md := wl.MeanDistance(); md != float64(g.Diameter()) {
		t.Errorf("complement mean distance = %v, want %d", md, g.Diameter())
	}
	// Mesh complement mirrors.
	m := topology.NewMesh(4, 2)
	cm := NewComplement(m)
	if got := cm.Dest(m.ID([]int{0, 1}), rng.New(1)); got != m.ID([]int{3, 2}) {
		t.Errorf("mesh complement = %d", got)
	}
}

func TestParse(t *testing.T) {
	g := topology.NewTorus(16, 2)
	cases := map[string]string{
		"uniform":          "uniform",
		"hotspot":          "hotspot(255,4.0%)",
		"hotspot:0.08":     "hotspot(255,8.0%)",
		"hotspot:0.08:100": "hotspot(100,8.0%)",
		"local":            "local(r=3)",
		"local:2":          "local(r=2)",
		"transpose":        "transpose",
		"bitrev":           "bitrev",
		"complement":       "complement",
	}
	for spec, wantName := range cases {
		p, err := Parse(g, spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Name() != wantName {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, p.Name(), wantName)
		}
	}
	for _, bad := range []string{"nope", "hotspot:x", "hotspot:0.04:y", "local:z"} {
		if _, err := Parse(g, bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestUniformMeanDistanceMatchesTopology(t *testing.T) {
	g := topology.NewTorus(16, 2)
	wl := NewBernoulli(g, NewUniform(g), 0.01, 1)
	if md, want := wl.MeanDistance(), g.MeanUniformDistance(); math.Abs(md-want) > 1e-9 {
		t.Errorf("uniform workload mean distance %v, topology says %v", md, want)
	}
	w := wl.HopClassWeights()
	// Paper footnote 3: hop class 1 has weight 4/255 = 0.0157, class 16 has
	// 1/255 = 0.0039.
	if math.Abs(w[1]-0.0157) > 0.0001 {
		t.Errorf("hop class 1 weight %.4f, want 0.0157", w[1])
	}
	if math.Abs(w[16]-0.0039) > 0.0001 {
		t.Errorf("hop class 16 weight %.4f, want 0.0039", w[16])
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestBernoulliArrivalRate(t *testing.T) {
	g := topology.NewTorus(16, 2)
	const rate = 0.02
	wl := NewBernoulli(g, NewUniform(g), rate, 9)
	var arrivals []Arrival
	total := 0
	const cycles = 5000
	for c := int64(0); c < cycles; c++ {
		arrivals = wl.Arrivals(c, arrivals[:0])
		for _, a := range arrivals {
			if a.Src == a.Dst {
				t.Fatal("self-directed arrival")
			}
		}
		total += len(arrivals)
	}
	want := rate * float64(g.Nodes()) * cycles
	if math.Abs(float64(total)-want) > 5*math.Sqrt(want) {
		t.Errorf("arrivals = %d, want about %.0f", total, want)
	}
}

func TestBernoulliReseedChangesDraw(t *testing.T) {
	g := topology.NewTorus(16, 2)
	a := NewBernoulli(g, NewUniform(g), 0.05, 1)
	b := NewBernoulli(g, NewUniform(g), 0.05, 1)
	var bufA, bufB []Arrival
	bufA = a.Arrivals(0, bufA)
	bufB = b.Arrivals(0, bufB)
	if len(bufA) != len(bufB) {
		t.Fatal("same seed should give identical arrivals")
	}
	b.Reseed(999)
	bufA = a.Arrivals(1, bufA[:0])
	bufB = b.Arrivals(1, bufB[:0])
	same := len(bufA) == len(bufB)
	if same {
		for i := range bufA {
			if bufA[i] != bufB[i] {
				same = false
				break
			}
		}
	}
	if same && len(bufA) > 0 {
		t.Error("reseed did not change the arrival stream")
	}
}

func TestBernoulliRateValidation(t *testing.T) {
	g := topology.NewTorus(16, 2)
	defer func() {
		if recover() == nil {
			t.Error("rate > 1 did not panic")
		}
	}()
	NewBernoulli(g, NewUniform(g), 1.5, 1)
}

func TestGenerationRateUniform(t *testing.T) {
	g := topology.NewTorus(16, 2)
	if gr := GenerationRate(g, NewUniform(g)); math.Abs(gr-1) > 1e-9 {
		t.Errorf("uniform generation rate = %v, want 1", gr)
	}
}

func TestTraceOrderingAndReplay(t *testing.T) {
	g := topology.NewTorus(16, 2)
	tr := NewTrace(g, "t", []int64{5, 1, 5, 2}, []Arrival{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	if tr.Len() != 4 || tr.LastCycle() != 5 {
		t.Fatalf("trace len %d last %d", tr.Len(), tr.LastCycle())
	}
	var buf []Arrival
	buf = tr.Arrivals(0, buf[:0])
	if len(buf) != 0 {
		t.Fatal("no arrivals expected at cycle 0")
	}
	buf = tr.Arrivals(2, buf[:0])
	if len(buf) != 2 || buf[0] != (Arrival{2, 3}) || buf[1] != (Arrival{6, 7}) {
		t.Fatalf("cycle <=2 arrivals = %v", buf)
	}
	buf = tr.Arrivals(5, buf[:0])
	if len(buf) != 2 {
		t.Fatalf("cycle 5 arrivals = %v", buf)
	}
	// Reseed rewinds.
	tr.Reseed(0)
	buf = tr.Arrivals(10, buf[:0])
	if len(buf) != 4 {
		t.Fatalf("after rewind, all 4 events: got %v", buf)
	}
}

func TestTraceValidation(t *testing.T) {
	g := topology.NewTorus(4, 2)
	for _, tc := range []struct {
		cycles []int64
		arrs   []Arrival
	}{
		{[]int64{0}, []Arrival{{0, 99}}}, // out of range
		{[]int64{0}, []Arrival{{3, 3}}},  // self loop
		{[]int64{0, 1}, []Arrival{{0, 1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid trace %v did not panic", tc.arrs)
				}
			}()
			NewTrace(g, "bad", tc.cycles, tc.arrs)
		}()
	}
}

func TestReadTrace(t *testing.T) {
	g := topology.NewTorus(16, 2)
	text := "# comment\n\n0 1 2\n3 4 5\n7 250 10\n"
	tr, err := ReadTrace(g, "file", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.LastCycle() != 7 {
		t.Fatalf("parsed %d events, last %d", tr.Len(), tr.LastCycle())
	}
	if md := tr.MeanDistance(); md <= 0 {
		t.Errorf("trace mean distance = %v", md)
	}
	w := tr.HopClassWeights()
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("trace weights sum to %v", sum)
	}
	if _, err := ReadTrace(g, "bad", strings.NewReader("0 zz 2\n")); err == nil {
		t.Error("malformed trace line parsed")
	}
}

func TestEmptyTrace(t *testing.T) {
	g := topology.NewTorus(16, 2)
	tr := NewTrace(g, "empty", nil, nil)
	if tr.LastCycle() != -1 || tr.MeanDistance() != 0 {
		t.Error("empty trace statistics wrong")
	}
}
