package traffic

import (
	"testing"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

func TestTornado(t *testing.T) {
	g := topology.NewTorus(16, 2)
	tor := NewTornado(g)
	// (0,0) -> (7,7): 7 hops plus in each dimension.
	if got, want := tor.Dest(0, rng.New(1)), g.ID([]int{7, 7}); got != want {
		t.Errorf("tornado(0) = %d, want %d", got, want)
	}
	// The pattern is a rotation: every node generates traffic.
	for src := 0; src < g.Nodes(); src++ {
		if tor.Dest(src, rng.New(1)) < 0 {
			t.Fatalf("tornado fixed point at %d", src)
		}
	}
	checkDestProbSums(t, g, tor, func(int) float64 { return 1 })
	// Every message travels the same distance: 7 per dimension = 14.
	wl := NewBernoulli(g, tor, 0, 1)
	if md := wl.MeanDistance(); md != 14 {
		t.Errorf("tornado mean distance = %v, want 14", md)
	}
	// Tornado concentrates load in the Plus directions: all minimal offsets
	// are positive.
	for src := 0; src < g.Nodes(); src += 17 {
		dst := tor.Dest(src, rng.New(1))
		for dim := 0; dim < 2; dim++ {
			if g.Offset(src, dst, dim) != 7 {
				t.Fatalf("tornado offset in dim %d is %d, want +7", dim, g.Offset(src, dst, dim))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("tornado on a mesh did not panic")
		}
	}()
	NewTornado(topology.NewMesh(16, 2))
}

func TestShuffle(t *testing.T) {
	g := topology.NewTorus(16, 2) // 256 nodes = 2^8
	s := NewShuffle(g)
	// 0b00000001 -> 0b00000010.
	if got := s.Dest(1, rng.New(1)); got != 2 {
		t.Errorf("shuffle(1) = %d, want 2", got)
	}
	// Top bit wraps: 0b10000000 -> 0b00000001.
	if got := s.Dest(128, rng.New(1)); got != 1 {
		t.Errorf("shuffle(128) = %d, want 1", got)
	}
	// Fixed points: all-zeros and all-ones.
	if got := s.Dest(0, rng.New(1)); got != -1 {
		t.Errorf("shuffle(0) = %d, want -1", got)
	}
	if got := s.Dest(255, rng.New(1)); got != -1 {
		t.Errorf("shuffle(255) = %d, want -1", got)
	}
	checkDestProbSums(t, g, s, func(src int) float64 {
		if src == 0 || src == 255 {
			return 0
		}
		return 1
	})
	// Shuffle is a bijection away from fixed points: every non-fixed node
	// is someone's destination exactly once.
	seen := map[int]int{}
	for src := 0; src < g.Nodes(); src++ {
		if d := s.Dest(src, rng.New(1)); d >= 0 {
			seen[d]++
		}
	}
	for d, c := range seen {
		if c != 1 {
			t.Fatalf("destination %d hit %d times", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("shuffle on a non-power-of-two grid did not panic")
		}
	}()
	NewShuffle(topology.NewTorus(6, 2))
}

func TestParsePermutations(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for spec, want := range map[string]string{"tornado": "tornado", "shuffle": "shuffle"} {
		p, err := Parse(g, spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Name() != want {
			t.Errorf("Parse(%q).Name() = %q", spec, p.Name())
		}
	}
}

// TestTornadoStressesRouting: an end-to-end sanity check that the tornado
// pattern flows through the workload machinery (its weights put all mass in
// one hop class).
func TestTornadoHopClass(t *testing.T) {
	g := topology.NewTorus(8, 2)
	wl := NewBernoulli(g, NewTornado(g), 0.01, 1)
	w := wl.HopClassWeights()
	for d, x := range w {
		if d == 6 { // 3+3 hops on an 8-ary 2-cube
			if x != 1 {
				t.Errorf("hop class 6 weight %v, want 1", x)
			}
		} else if x != 0 {
			t.Errorf("hop class %d weight %v, want 0", d, x)
		}
	}
}
