// Package traffic generates the workloads of the paper's evaluation:
// uniform, hotspot and local traffic patterns with geometrically distributed
// message interarrival times, plus the matrix-transpose, bit-reversal,
// complement and trace-driven extensions the paper mentions (sec. 3.4 cites
// Glass & Ni's transpose results; sec. 4 plans trace-driven evaluation).
//
// A Pattern chooses destinations; a Workload combines a pattern with an
// arrival process and feeds the simulator. Patterns also expose their exact
// destination distribution so mean distance and the hop-class stratum
// weights used by the convergence machinery can be computed in closed form.
package traffic

import (
	"fmt"
	"strconv"
	"strings"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// Pattern selects a destination for a message generated at a source node.
type Pattern interface {
	// Name returns a short identifier, e.g. "uniform" or "hotspot(255,4%)".
	Name() string
	// Dest returns the destination for a message from src, or -1 if this
	// source generates no message under the pattern (e.g. a diagonal node
	// under matrix transpose).
	Dest(src int, r *rng.Stream) int
	// DestProb returns P(destination = dst | message generated at src). The
	// probabilities over dst sum to at most 1; a deficit means the source
	// generates fewer messages (only transpose-like permutations do this).
	DestProb(src, dst int) float64
}

// Uniform sends each message to a destination chosen uniformly among all
// other nodes — the paper's "random" pattern, representative of hashed data
// distribution in massively parallel computations.
type Uniform struct{ g *topology.Grid }

// NewUniform returns the uniform pattern on g.
func NewUniform(g *topology.Grid) *Uniform { return &Uniform{g: g} }

// Name returns "uniform".
func (u *Uniform) Name() string { return "uniform" }

// Dest draws uniformly among the other nodes.
func (u *Uniform) Dest(src int, r *rng.Stream) int {
	d := r.Intn(u.g.Nodes() - 1)
	if d >= src {
		d++
	}
	return d
}

// DestProb returns 1/(N-1) for dst != src.
func (u *Uniform) DestProb(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return 1 / float64(u.g.Nodes()-1)
}

// Hotspot layers single-node hotspot traffic over the uniform pattern: with
// probability Frac a new message is directed to the hot node, otherwise
// uniformly to any other node. With Frac = 0.04 on a 16-ary 2-cube this
// reproduces the paper's numbers: the hot node receives each message with
// probability 0.0438 and every other node with 0.0038, i.e. about 11.5x the
// average traffic. Messages the hot node would address to itself fall back
// to the uniform component.
type Hotspot struct {
	g    *topology.Grid
	Hot  int
	Frac float64
}

// NewHotspot returns the hotspot pattern with the given hot node and
// hotspot fraction.
func NewHotspot(g *topology.Grid, hot int, frac float64) *Hotspot {
	if hot < 0 || hot >= g.Nodes() {
		panic(fmt.Sprintf("traffic: hotspot node %d out of range", hot))
	}
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("traffic: hotspot fraction %g out of range [0,1)", frac))
	}
	return &Hotspot{g: g, Hot: hot, Frac: frac}
}

// Name returns e.g. "hotspot(255,4.0%)".
func (h *Hotspot) Name() string {
	return fmt.Sprintf("hotspot(%d,%.1f%%)", h.Hot, h.Frac*100)
}

// Dest draws the hot node with probability Frac, else uniform-other.
func (h *Hotspot) Dest(src int, r *rng.Stream) int {
	if r.Bernoulli(h.Frac) && h.Hot != src {
		return h.Hot
	}
	d := r.Intn(h.g.Nodes() - 1)
	if d >= src {
		d++
	}
	return d
}

// DestProb combines the hotspot and uniform components.
func (h *Hotspot) DestProb(src, dst int) float64 {
	if src == dst {
		return 0
	}
	n1 := float64(h.g.Nodes() - 1)
	if src == h.Hot {
		return 1 / n1
	}
	p := (1 - h.Frac) / n1
	if dst == h.Hot {
		p += h.Frac
	}
	return p
}

// Local sends each message uniformly into the (2R+1)^n box centred on the
// source (excluding the source itself). With R = 3 on a 16-ary 2-cube this
// is the paper's 7x7 local pattern with locality factor 0.4 and mean
// distance 3.5.
type Local struct {
	g      *topology.Grid
	Radius int
}

// NewLocal returns the local pattern with the given box radius. On a torus
// the radius must be less than k/2 so the box is unambiguous.
func NewLocal(g *topology.Grid, radius int) *Local {
	if radius < 1 {
		panic("traffic: local radius must be >= 1")
	}
	if g.Wrap() && 2*radius >= g.K() {
		panic(fmt.Sprintf("traffic: local radius %d too large for radix %d torus", radius, g.K()))
	}
	return &Local{g: g, Radius: radius}
}

// Name returns e.g. "local(r=3)".
func (l *Local) Name() string { return fmt.Sprintf("local(r=%d)", l.Radius) }

// Dest draws a uniform nonzero offset vector within the box, rejecting
// offsets that fall outside a mesh boundary.
func (l *Local) Dest(src int, r *rng.Stream) int {
	g := l.g
	coords := make([]int, g.N())
	for {
		zero := true
		ok := true
		for dim := 0; dim < g.N(); dim++ {
			off := r.Intn(2*l.Radius+1) - l.Radius
			if off != 0 {
				zero = false
			}
			c := g.Coord(src, dim) + off
			if g.Wrap() {
				c = ((c % g.K()) + g.K()) % g.K()
			} else if c < 0 || c >= g.K() {
				ok = false
				break
			}
			coords[dim] = c
		}
		if ok && !zero {
			return g.ID(coords)
		}
	}
}

// inBox reports whether dst lies in the box around src, i.e. every
// per-dimension minimal offset has magnitude <= R.
func (l *Local) inBox(src, dst int) bool {
	for dim := 0; dim < l.g.N(); dim++ {
		off := l.g.Offset(src, dst, dim)
		if off < -l.Radius || off > l.Radius {
			return false
		}
	}
	return true
}

// DestProb returns 1/(box size - 1) for box members.
func (l *Local) DestProb(src, dst int) float64 {
	if src == dst || !l.inBox(src, dst) {
		return 0
	}
	if l.g.Wrap() {
		size := 1
		for i := 0; i < l.g.N(); i++ {
			size *= 2*l.Radius + 1
		}
		return 1 / float64(size-1)
	}
	// Mesh: count the clipped box.
	size := 1
	for dim := 0; dim < l.g.N(); dim++ {
		c := l.g.Coord(src, dim)
		lo := max(0, c-l.Radius)
		hi := min(l.g.K()-1, c+l.Radius)
		size *= hi - lo + 1
	}
	return 1 / float64(size-1)
}

// Transpose is the matrix-transpose permutation: the destination's
// coordinate vector is the source's reversed ((i,j) -> (j,i) in two
// dimensions). Nodes on the diagonal generate no traffic. Glass & Ni report
// the turn-model algorithms beating e-cube on this pattern; experiment
// X-TRANS revisits that claim.
type Transpose struct{ g *topology.Grid }

// NewTranspose returns the transpose pattern.
func NewTranspose(g *topology.Grid) *Transpose { return &Transpose{g: g} }

// Name returns "transpose".
func (t *Transpose) Name() string { return "transpose" }

// dest computes the deterministic destination.
func (t *Transpose) dest(src int) int {
	g := t.g
	coords := make([]int, g.N())
	g.Coords(src, coords)
	for i, j := 0, g.N()-1; i < j; i, j = i+1, j-1 {
		coords[i], coords[j] = coords[j], coords[i]
	}
	return g.ID(coords)
}

// Dest returns the transpose of src, or -1 on the diagonal.
func (t *Transpose) Dest(src int, _ *rng.Stream) int {
	d := t.dest(src)
	if d == src {
		return -1
	}
	return d
}

// DestProb is 1 for the transpose destination, 0 otherwise.
func (t *Transpose) DestProb(src, dst int) float64 {
	if dst != src && t.dest(src) == dst {
		return 1
	}
	return 0
}

// BitReversal is the bit-reversal permutation on node ids (the node count
// must be a power of two).
type BitReversal struct {
	g    *topology.Grid
	bits int
}

// NewBitReversal returns the bit-reversal pattern; it panics unless the node
// count is a power of two.
func NewBitReversal(g *topology.Grid) *BitReversal {
	n := g.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		panic(fmt.Sprintf("traffic: bit reversal needs a power-of-two node count, have %d", n))
	}
	return &BitReversal{g: g, bits: bits}
}

// Name returns "bitrev".
func (b *BitReversal) Name() string { return "bitrev" }

func (b *BitReversal) dest(src int) int {
	d := 0
	for i := 0; i < b.bits; i++ {
		d = d<<1 | (src>>i)&1
	}
	return d
}

// Dest returns the bit-reversed id, or -1 for palindromic ids.
func (b *BitReversal) Dest(src int, _ *rng.Stream) int {
	d := b.dest(src)
	if d == src {
		return -1
	}
	return d
}

// DestProb is 1 for the reversed id, 0 otherwise.
func (b *BitReversal) DestProb(src, dst int) float64 {
	if dst != src && b.dest(src) == dst {
		return 1
	}
	return 0
}

// Complement sends each message to the node diametrically opposite the
// source (coordinates shifted by k/2 on a torus, mirrored on a mesh) —
// every message travels the full diameter, the adversarial long-haul
// pattern.
type Complement struct{ g *topology.Grid }

// NewComplement returns the complement pattern.
func NewComplement(g *topology.Grid) *Complement { return &Complement{g: g} }

// Name returns "complement".
func (c *Complement) Name() string { return "complement" }

func (c *Complement) dest(src int) int {
	g := c.g
	coords := make([]int, g.N())
	g.Coords(src, coords)
	for i := range coords {
		if g.Wrap() {
			coords[i] = (coords[i] + g.K()/2) % g.K()
		} else {
			coords[i] = g.K() - 1 - coords[i]
		}
	}
	return g.ID(coords)
}

// Dest returns the complement node, or -1 if it equals the source.
func (c *Complement) Dest(src int, _ *rng.Stream) int {
	d := c.dest(src)
	if d == src {
		return -1
	}
	return d
}

// DestProb is 1 for the complement node, 0 otherwise.
func (c *Complement) DestProb(src, dst int) float64 {
	if dst != src && c.dest(src) == dst {
		return 1
	}
	return 0
}

// Parse builds a pattern on g from a CLI-style spec:
//
//	uniform | hotspot[:frac[:node]] | local[:radius] | transpose |
//	bitrev | complement | tornado | shuffle
//
// Defaults follow the paper: hotspot fraction 0.04 at the corner node,
// local radius 3.
func Parse(g *topology.Grid, spec string) (Pattern, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "uniform":
		return NewUniform(g), nil
	case "hotspot":
		frac := 0.04
		hot := g.Nodes() - 1
		if len(parts) > 1 && parts[1] != "" {
			f, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: bad hotspot fraction %q: %w", parts[1], err)
			}
			frac = f
		}
		if len(parts) > 2 {
			n, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("traffic: bad hotspot node %q: %w", parts[2], err)
			}
			hot = n
		}
		return NewHotspot(g, hot, frac), nil
	case "local":
		radius := 3
		if len(parts) > 1 && parts[1] != "" {
			rv, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("traffic: bad local radius %q: %w", parts[1], err)
			}
			radius = rv
		}
		return NewLocal(g, radius), nil
	case "transpose":
		return NewTranspose(g), nil
	case "bitrev":
		return NewBitReversal(g), nil
	case "complement":
		return NewComplement(g), nil
	case "tornado":
		return NewTornado(g), nil
	case "shuffle":
		return NewShuffle(g), nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", spec)
}
