package traffic

import (
	"math"
	"testing"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// TestDistanceStatsMatchMonteCarlo cross-validates the exact hop-class
// weights and mean distance (computed by enumeration of DestProb) against
// a large Monte Carlo sample of Dest draws, for every random pattern.
func TestDistanceStatsMatchMonteCarlo(t *testing.T) {
	g := topology.NewTorus(16, 2)
	patterns := []Pattern{
		NewUniform(g),
		NewHotspot(g, 255, 0.04),
		NewHotspot(g, 119, 0.16),
		NewLocal(g, 3),
		NewLocal(g, 5),
	}
	r := rng.New(123)
	const draws = 120000
	for _, p := range patterns {
		wl := NewBernoulli(g, p, 0, 1)
		exactMean := wl.MeanDistance()
		exactWeights := wl.HopClassWeights()

		counts := make([]float64, g.Diameter()+1)
		sum := 0.0
		made := 0
		for i := 0; i < draws; i++ {
			src := r.Intn(g.Nodes())
			dst := p.Dest(src, r)
			if dst < 0 {
				continue
			}
			d := g.Distance(src, dst)
			counts[d]++
			sum += float64(d)
			made++
		}
		mcMean := sum / float64(made)
		if math.Abs(mcMean-exactMean) > 0.05 {
			t.Errorf("%s: Monte Carlo mean %.3f vs exact %.3f", p.Name(), mcMean, exactMean)
		}
		for d := range counts {
			mc := counts[d] / float64(made)
			if math.Abs(mc-exactWeights[d]) > 5*math.Sqrt(exactWeights[d]/draws)+0.002 {
				t.Errorf("%s: hop class %d Monte Carlo %.4f vs exact %.4f", p.Name(), d, mc, exactWeights[d])
			}
		}
	}
}

// TestHotspotMeanDistanceAboveUniform: the hotspot component pulls the mean
// toward the hot node's average distance; with the hot node in the corner
// the overall mean stays close to uniform but the hot-node hop classes
// inflate.
func TestHotspotReceiveShare(t *testing.T) {
	g := topology.NewTorus(16, 2)
	h := NewHotspot(g, 255, 0.04)
	r := rng.New(7)
	const draws = 100000
	hot := 0
	for i := 0; i < draws; i++ {
		src := r.Intn(g.Nodes())
		if h.Dest(src, r) == 255 {
			hot++
		}
	}
	got := float64(hot) / draws
	// Expected: average over sources of P(dst=hot|src). For src != hot it
	// is 0.0438; the hot node itself contributes 0.
	want := 0.0438 * 255 / 256
	if math.Abs(got-want) > 0.002 {
		t.Errorf("hot node receives %.4f of traffic, want about %.4f", got, want)
	}
}

// TestLocalNeverLeavesBox: property over many draws.
func TestLocalNeverLeavesBox(t *testing.T) {
	g := topology.NewTorus(16, 2)
	l := NewLocal(g, 3)
	r := rng.New(11)
	for i := 0; i < 20000; i++ {
		src := r.Intn(g.Nodes())
		dst := l.Dest(src, r)
		for dim := 0; dim < 2; dim++ {
			off := g.Offset(src, dst, dim)
			if off < -3 || off > 3 {
				t.Fatalf("local dest %d is offset %d from %d in dim %d", dst, off, src, dim)
			}
		}
	}
}
