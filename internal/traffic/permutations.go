package traffic

import (
	"fmt"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// Additional deterministic permutation patterns from the standard
// interconnection-network evaluation suite, beyond the paper's three
// workloads: tornado (the adversary for minimal routing on rings) and the
// perfect shuffle (butterfly-style long-haul pattern). Both plug into the
// same Workload machinery as the paper's patterns.

// Tornado sends each message floor((k-1)/2) hops in the Plus direction of
// every dimension — almost half-way around each ring, the classic
// adversarial pattern that concentrates all traffic in one rotational
// direction and defeats any load balancing that relies on destination
// symmetry.
type Tornado struct{ g *topology.Grid }

// NewTornado returns the tornado pattern; it requires a torus (the pattern
// is rotational).
func NewTornado(g *topology.Grid) *Tornado {
	if !g.Wrap() {
		panic("traffic: tornado needs a torus")
	}
	return &Tornado{g: g}
}

// Name returns "tornado".
func (t *Tornado) Name() string { return "tornado" }

func (t *Tornado) dest(src int) int {
	g := t.g
	hop := (g.K() - 1) / 2
	coords := make([]int, g.N())
	g.Coords(src, coords)
	for i := range coords {
		coords[i] = (coords[i] + hop) % g.K()
	}
	return g.ID(coords)
}

// Dest returns the tornado destination, or -1 if it equals the source
// (radix 2).
func (t *Tornado) Dest(src int, _ *rng.Stream) int {
	d := t.dest(src)
	if d == src {
		return -1
	}
	return d
}

// DestProb is 1 for the tornado destination.
func (t *Tornado) DestProb(src, dst int) float64 {
	if dst != src && t.dest(src) == dst {
		return 1
	}
	return 0
}

// Shuffle is the perfect-shuffle permutation on node ids (rotate the id's
// bits left by one); the node count must be a power of two.
type Shuffle struct {
	g    *topology.Grid
	bits int
}

// NewShuffle returns the perfect-shuffle pattern; it panics unless the node
// count is a power of two.
func NewShuffle(g *topology.Grid) *Shuffle {
	n := g.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		panic(fmt.Sprintf("traffic: shuffle needs a power-of-two node count, have %d", n))
	}
	return &Shuffle{g: g, bits: bits}
}

// Name returns "shuffle".
func (s *Shuffle) Name() string { return "shuffle" }

func (s *Shuffle) dest(src int) int {
	top := src >> (s.bits - 1) & 1
	return (src<<1 | top) & (1<<s.bits - 1)
}

// Dest returns the shuffled id, or -1 for fixed points (all-zero and
// all-one ids).
func (s *Shuffle) Dest(src int, _ *rng.Stream) int {
	d := s.dest(src)
	if d == src {
		return -1
	}
	return d
}

// DestProb is 1 for the shuffled id.
func (s *Shuffle) DestProb(src, dst int) float64 {
	if dst != src && s.dest(src) == dst {
		return 1
	}
	return 0
}
