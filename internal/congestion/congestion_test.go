package congestion

import "testing"

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if !l.Admit(0, 0) {
			t.Fatal("nil limiter refused a message")
		}
	}
	l.Release(0, 0) // must not panic
	if l.Limit() != 0 || l.Accepted() != 0 || l.Dropped() != 0 || l.Resident(0, 0) != 0 {
		t.Error("nil limiter statistics should be zero")
	}
	l.ResetCounters()
	if NewLimiter(4, 0) != nil {
		t.Error("limit 0 should return a nil limiter")
	}
}

func TestAdmitUpToLimit(t *testing.T) {
	l := NewLimiter(4, 2)
	if l.Limit() != 2 {
		t.Fatalf("Limit = %d", l.Limit())
	}
	if !l.Admit(1, 5) || !l.Admit(1, 5) {
		t.Fatal("first two admits should pass")
	}
	if l.Admit(1, 5) {
		t.Fatal("third admit should be refused")
	}
	if l.Resident(1, 5) != 2 {
		t.Fatalf("resident = %d", l.Resident(1, 5))
	}
	// Other classes and nodes are unaffected.
	if !l.Admit(1, 6) || !l.Admit(2, 5) {
		t.Fatal("independent class/node refused")
	}
	if l.Accepted() != 4 || l.Dropped() != 1 {
		t.Fatalf("accepted %d dropped %d", l.Accepted(), l.Dropped())
	}
}

func TestReleaseReopens(t *testing.T) {
	l := NewLimiter(2, 1)
	if !l.Admit(0, 3) {
		t.Fatal("admit failed")
	}
	if l.Admit(0, 3) {
		t.Fatal("limit 1 should refuse the second")
	}
	l.Release(0, 3)
	if !l.Admit(0, 3) {
		t.Fatal("release should reopen the slot")
	}
}

func TestReleaseWithoutAdmitPanics(t *testing.T) {
	l := NewLimiter(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced release did not panic")
		}
	}()
	l.Release(0, 0)
}

func TestResetCounters(t *testing.T) {
	l := NewLimiter(1, 1)
	l.Admit(0, 0)
	l.Admit(0, 0)
	l.ResetCounters()
	if l.Accepted() != 0 || l.Dropped() != 0 {
		t.Error("counters not reset")
	}
	// Residency survives the counter reset.
	if l.Resident(0, 0) != 1 {
		t.Error("residency lost on counter reset")
	}
}
