// Package congestion implements the paper's injection-side congestion
// control, modelled on Lam & Reiser's input-buffer-limit scheme for
// store-and-forward networks: a node may hold at most Limit unsent messages
// of each message class; arrivals beyond the limit are discarded. This is
// what keeps the paper's latency curves bounded beyond saturation while
// achieved throughput continues to rise.
package congestion

// Limiter tracks per-node, per-class counts of messages resident at their
// source (accepted but with tail not yet injected). A nil *Limiter disables
// congestion control (everything is admitted).
//
// Counts live in one flat slice indexed node*classCap+class — message
// classes are small consecutive integers (virtual-channel numbers or hop
// counts), so a dense table beats a per-node map on the engine's admit
// path. The class capacity doubles on demand for the rare algorithm whose
// classes exceed the initial headroom.
type Limiter struct {
	limit    int
	nodes    int
	classCap int
	counts   []int32
	accepted int64
	dropped  int64
	// droppedBy localizes discards per source node, the observable that
	// shows hotspot backpressure reaching the edge of the network.
	droppedBy []int64
}

// NewLimiter returns a limiter for nodes sources with the given per-class
// limit. A limit <= 0 returns nil: no congestion control.
func NewLimiter(nodes, limit int) *Limiter {
	if limit <= 0 {
		return nil
	}
	const initialClassCap = 8
	return &Limiter{
		limit: limit, nodes: nodes, classCap: initialClassCap,
		counts:    make([]int32, nodes*initialClassCap),
		droppedBy: make([]int64, nodes),
	}
}

// growClasses widens the per-node class table to hold class.
func (l *Limiter) growClasses(class int) {
	newCap := l.classCap * 2
	for newCap <= class {
		newCap *= 2
	}
	counts := make([]int32, l.nodes*newCap)
	for node := 0; node < l.nodes; node++ {
		copy(counts[node*newCap:], l.counts[node*l.classCap:(node+1)*l.classCap])
	}
	l.classCap = newCap
	l.counts = counts
}

// Limit returns the per-class limit (0 for a nil limiter).
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	return l.limit
}

// Admit reports whether a new message of class at node may enter, and if so
// records it. A nil limiter admits everything.
func (l *Limiter) Admit(node, class int) bool {
	if l == nil {
		return true
	}
	if class >= l.classCap {
		l.growClasses(class)
	}
	idx := node*l.classCap + class
	if int(l.counts[idx]) >= l.limit {
		l.dropped++
		l.droppedBy[node]++
		return false
	}
	l.counts[idx]++
	l.accepted++
	return true
}

// Release records that a previously admitted message of class has fully left
// node (its tail flit entered the network).
func (l *Limiter) Release(node, class int) {
	if l == nil {
		return
	}
	idx := node*l.classCap + class
	if l.counts[idx] <= 0 {
		panic("congestion: release without matching admit")
	}
	l.counts[idx]--
}

// Resident returns the number of admitted-but-unsent messages of class at
// node.
func (l *Limiter) Resident(node, class int) int {
	if l == nil || class >= l.classCap {
		return 0
	}
	return int(l.counts[node*l.classCap+class])
}

// Accepted returns the total number of admitted messages.
func (l *Limiter) Accepted() int64 {
	if l == nil {
		return 0
	}
	return l.accepted
}

// Dropped returns the total number of discarded arrivals.
func (l *Limiter) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// DroppedByNode returns per-source-node discard counts (nil for a nil
// limiter). The returned slice is a copy.
func (l *Limiter) DroppedByNode() []int64 {
	if l == nil {
		return nil
	}
	return append([]int64(nil), l.droppedBy...)
}

// ResetCounters zeroes the accepted/dropped statistics (kept across
// sampling periods only if the caller wants cumulative numbers).
func (l *Limiter) ResetCounters() {
	if l == nil {
		return
	}
	l.accepted, l.dropped = 0, 0
	for i := range l.droppedBy {
		l.droppedBy[i] = 0
	}
}
