// Package congestion implements the paper's injection-side congestion
// control, modelled on Lam & Reiser's input-buffer-limit scheme for
// store-and-forward networks: a node may hold at most Limit unsent messages
// of each message class; arrivals beyond the limit are discarded. This is
// what keeps the paper's latency curves bounded beyond saturation while
// achieved throughput continues to rise.
package congestion

// Limiter tracks per-node, per-class counts of messages resident at their
// source (accepted but with tail not yet injected). A nil *Limiter disables
// congestion control (everything is admitted).
type Limiter struct {
	limit    int
	counts   []map[int]int
	accepted int64
	dropped  int64
	// droppedBy localizes discards per source node, the observable that
	// shows hotspot backpressure reaching the edge of the network.
	droppedBy []int64
}

// NewLimiter returns a limiter for nodes sources with the given per-class
// limit. A limit <= 0 returns nil: no congestion control.
func NewLimiter(nodes, limit int) *Limiter {
	if limit <= 0 {
		return nil
	}
	l := &Limiter{limit: limit, counts: make([]map[int]int, nodes), droppedBy: make([]int64, nodes)}
	for i := range l.counts {
		l.counts[i] = make(map[int]int)
	}
	return l
}

// Limit returns the per-class limit (0 for a nil limiter).
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	return l.limit
}

// Admit reports whether a new message of class at node may enter, and if so
// records it. A nil limiter admits everything.
func (l *Limiter) Admit(node, class int) bool {
	if l == nil {
		return true
	}
	if l.counts[node][class] >= l.limit {
		l.dropped++
		l.droppedBy[node]++
		return false
	}
	l.counts[node][class]++
	l.accepted++
	return true
}

// Release records that a previously admitted message of class has fully left
// node (its tail flit entered the network).
func (l *Limiter) Release(node, class int) {
	if l == nil {
		return
	}
	c := l.counts[node][class]
	if c <= 0 {
		panic("congestion: release without matching admit")
	}
	l.counts[node][class] = c - 1
}

// Resident returns the number of admitted-but-unsent messages of class at
// node.
func (l *Limiter) Resident(node, class int) int {
	if l == nil {
		return 0
	}
	return l.counts[node][class]
}

// Accepted returns the total number of admitted messages.
func (l *Limiter) Accepted() int64 {
	if l == nil {
		return 0
	}
	return l.accepted
}

// Dropped returns the total number of discarded arrivals.
func (l *Limiter) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// DroppedByNode returns per-source-node discard counts (nil for a nil
// limiter). The returned slice is a copy.
func (l *Limiter) DroppedByNode() []int64 {
	if l == nil {
		return nil
	}
	return append([]int64(nil), l.droppedBy...)
}

// ResetCounters zeroes the accepted/dropped statistics (kept across
// sampling periods only if the caller wants cumulative numbers).
func (l *Limiter) ResetCounters() {
	if l == nil {
		return
	}
	l.accepted, l.dropped = 0, 0
	for i := range l.droppedBy {
		l.droppedBy[i] = 0
	}
}
