package analysis

import (
	"math"
	"strings"
	"testing"

	"wormsim/internal/core"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func TestBalanceUniformLoads(t *testing.T) {
	lb := Balance([]int64{10, 10, 10, 10})
	if lb.CV != 0 || lb.Gini != 0 {
		t.Errorf("uniform loads: cv=%v gini=%v, want 0", lb.CV, lb.Gini)
	}
	if lb.MaxOverMean != 1 || lb.Mean != 10 || lb.Min != 10 || lb.Max != 10 {
		t.Errorf("uniform loads summary wrong: %+v", lb)
	}
	if lb.N != 4 {
		t.Errorf("N = %d", lb.N)
	}
}

func TestBalanceSkewedLoads(t *testing.T) {
	lb := Balance([]int64{0, 0, 0, 100})
	if lb.Gini < 0.7 {
		t.Errorf("one-carrier gini = %v, want close to 0.75", lb.Gini)
	}
	if lb.MaxOverMean != 4 {
		t.Errorf("max/mean = %v, want 4", lb.MaxOverMean)
	}
	if math.Abs(lb.Gini-0.75) > 1e-9 {
		t.Errorf("gini = %v, want exactly 0.75 for this distribution", lb.Gini)
	}
}

func TestBalanceEdgeCases(t *testing.T) {
	if lb := Balance(nil); lb.N != 0 {
		t.Error("empty input should be zero value")
	}
	lb := Balance([]int64{0, 0})
	if lb.Gini != 0 || lb.CV != 0 || lb.Mean != 0 {
		t.Errorf("all-zero input: %+v", lb)
	}
	if s := Balance([]int64{1, 2, 3}).String(); !strings.Contains(s, "gini=") {
		t.Errorf("String() = %q", s)
	}
}

func TestGiniScaleInvariance(t *testing.T) {
	a := Balance([]int64{1, 2, 3, 4})
	b := Balance([]int64{10, 20, 30, 40})
	if math.Abs(a.Gini-b.Gini) > 1e-12 {
		t.Errorf("gini not scale invariant: %v vs %v", a.Gini, b.Gini)
	}
}

// TestChannelBalanceNlastSkew reproduces the paper's sec. 3.4 claim: the
// north-last algorithm skews even uniform traffic across physical channels,
// compared against fully adaptive nbc on the same workload.
func TestChannelBalanceNlastSkew(t *testing.T) {
	run := func(algName string) LoadBalance {
		g := topology.NewTorus(8, 2)
		alg, err := routing.Get(algName)
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 3)
		n, err := network.New(network.Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(6000); err != nil {
			t.Fatal(err)
		}
		return ChannelBalance(g, n.ChannelFlitCounts())
	}
	nlast := run("nlast")
	nbc := run("nbc")
	if nlast.CV <= nbc.CV {
		t.Errorf("nlast channel CV %.3f should exceed nbc %.3f (the paper's skew claim)", nlast.CV, nbc.CV)
	}
	if nbc.N != topology.NewTorus(8, 2).NumChannels() {
		t.Errorf("balance over %d channels, want %d", nbc.N, topology.NewTorus(8, 2).NumChannels())
	}
}

func TestChannelBalanceExcludesMeshBoundary(t *testing.T) {
	g := topology.NewMesh(4, 2)
	counts := make([]int64, g.ChannelSlots())
	lb := ChannelBalance(g, counts)
	if lb.N != g.NumChannels() {
		t.Errorf("mesh balance over %d carriers, want %d", lb.N, g.NumChannels())
	}
}

func mkResults(loads, thr, lat []float64) []core.Result {
	rs := make([]core.Result, len(loads))
	for i := range loads {
		rs[i] = core.Result{OfferedLoad: loads[i], Throughput: thr[i], AvgLatency: lat[i]}
	}
	return rs
}

func TestSaturationPoint(t *testing.T) {
	rs := mkResults(
		[]float64{0.1, 0.2, 0.3, 0.4},
		[]float64{0.1, 0.2, 0.25, 0.26},
		[]float64{20, 25, 80, 200},
	)
	if got := SaturationPoint(rs, 0.02); got != 0.3 {
		t.Errorf("saturation at %v, want 0.3", got)
	}
	if got := SaturationPoint(rs[:2], 0.02); got != 0 {
		t.Errorf("unsaturated series reported %v", got)
	}
}

func TestCrossover(t *testing.T) {
	a := mkResults([]float64{0.1, 0.2, 0.3}, []float64{0.1, 0.18, 0.28}, []float64{20, 30, 40})
	b := mkResults([]float64{0.1, 0.2, 0.3}, []float64{0.1, 0.2, 0.22}, []float64{20, 30, 40})
	load, ok := Crossover(a, b)
	if !ok || load != 0.3 {
		t.Errorf("crossover = %v,%v, want 0.3,true", load, ok)
	}
	if _, ok := Crossover(b, b); ok {
		t.Error("identical series cannot cross")
	}
	misaligned := mkResults([]float64{0.15}, []float64{0.1}, []float64{20})
	if _, ok := Crossover(a, misaligned); ok {
		t.Error("misaligned series should not report a crossover")
	}
}

func TestLatencyAtThroughput(t *testing.T) {
	rs := mkResults(
		[]float64{0.1, 0.2, 0.3},
		[]float64{0.1, 0.2, 0.3},
		[]float64{20, 40, 80},
	)
	lat, ok := LatencyAtThroughput(rs, 0.25)
	if !ok || math.Abs(lat-60) > 1e-9 {
		t.Errorf("interpolated latency %v,%v, want 60", lat, ok)
	}
	lat, ok = LatencyAtThroughput(rs, 0.05)
	if !ok || lat != 20 {
		t.Errorf("below-first throughput: %v,%v", lat, ok)
	}
	if _, ok := LatencyAtThroughput(rs, 0.9); ok {
		t.Error("unreachable throughput reported a latency")
	}
}

func TestWriteComparison(t *testing.T) {
	series := map[string][]core.Result{
		"fast": mkResults([]float64{0.1, 0.3}, []float64{0.1, 0.3}, []float64{20, 30}),
		"slow": mkResults([]float64{0.1, 0.3}, []float64{0.1, 0.15}, []float64{25, 90}),
	}
	var b strings.Builder
	WriteComparison(&b, series, 0.12)
	out := b.String()
	for _, want := range []string{"fast", "slow", "peak", "lat@0.12"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}
