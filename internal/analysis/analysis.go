// Package analysis derives the secondary observations the paper's
// discussion rests on from raw simulation output: physical-channel load
// balance (sec. 3.4 blames north-last for "skewing even uniform traffic"),
// virtual-channel class balance (the imbalance bonus cards exist to fix),
// saturation points, and curve crossovers (where 2pn overtakes e-cube under
// local traffic).
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"

	"wormsim/internal/core"
	"wormsim/internal/topology"
)

// LoadBalance summarizes how evenly a set of non-negative loads (per
// physical channel or per virtual-channel class) is spread.
type LoadBalance struct {
	// N is the number of carriers considered (zero-capacity slots are
	// excluded by the caller).
	N int
	// Mean, Min and Max of the loads.
	Mean float64
	Min  float64
	Max  float64
	// CV is the coefficient of variation (stddev / mean); 0 is perfectly
	// even.
	CV float64
	// Gini is the Gini coefficient in [0, 1); 0 is perfectly even, values
	// near 1 mean a few carriers take all the traffic.
	Gini float64
	// MaxOverMean is the hot-carrier factor: how much busier the busiest
	// carrier is than the average (the paper's "11.5 times more traffic"
	// style of statement).
	MaxOverMean float64
}

// Balance computes load-balance statistics over loads. It returns a zero
// value for an empty or all-zero input.
func Balance(loads []int64) LoadBalance {
	if len(loads) == 0 {
		return LoadBalance{}
	}
	lb := LoadBalance{N: len(loads), Min: math.MaxFloat64}
	sum := 0.0
	for _, x := range loads {
		v := float64(x)
		sum += v
		if v < lb.Min {
			lb.Min = v
		}
		if v > lb.Max {
			lb.Max = v
		}
	}
	lb.Mean = sum / float64(len(loads))
	if sum == 0 {
		lb.Min = 0
		return LoadBalance{N: len(loads)}
	}
	varsum := 0.0
	for _, x := range loads {
		d := float64(x) - lb.Mean
		varsum += d * d
	}
	lb.CV = math.Sqrt(varsum/float64(len(loads))) / lb.Mean
	lb.Gini = gini(loads)
	lb.MaxOverMean = lb.Max / lb.Mean
	return lb
}

// gini computes the Gini coefficient of non-negative values.
func gini(loads []int64) float64 {
	sorted := append([]int64(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	var cum, weighted float64
	for i, x := range sorted {
		v := float64(x)
		cum += v
		weighted += v * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - (n+1)*cum) / (n * cum)
}

// ChannelBalance computes load balance over the grid's existing physical
// channels, given the dense per-slot flit counts from
// network.ChannelFlitCounts (mesh boundary slots are excluded).
func ChannelBalance(g *topology.Grid, counts []int64) LoadBalance {
	existing := make([]int64, 0, g.NumChannels())
	for ch, c := range counts {
		id, dim, dir := g.ChannelInfo(ch)
		if g.HasChannel(id, dim, dir) {
			existing = append(existing, c)
		}
	}
	return Balance(existing)
}

// String renders the balance summary on one line.
func (lb LoadBalance) String() string {
	return fmt.Sprintf("n=%d mean=%.1f max/mean=%.2f cv=%.3f gini=%.3f",
		lb.N, lb.Mean, lb.MaxOverMean, lb.CV, lb.Gini)
}

// SaturationPoint returns the offered load at which a swept series
// saturates: the first point whose achieved throughput falls short of the
// offered load by more than tolerance (absolute), or 0 if it never does
// within the sweep. Results must be in increasing offered-load order.
func SaturationPoint(results []core.Result, tolerance float64) float64 {
	for _, r := range results {
		if r.OfferedLoad-r.Throughput > tolerance {
			return r.OfferedLoad
		}
	}
	return 0
}

// Crossover returns the first offered load at which series a achieves
// strictly higher throughput than series b, and whether such a point
// exists. Both series must cover the same offered loads in order.
func Crossover(a, b []core.Result) (float64, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].OfferedLoad != b[i].OfferedLoad {
			return 0, false
		}
		if a[i].Throughput > b[i].Throughput {
			return a[i].OfferedLoad, true
		}
	}
	return 0, false
}

// LatencyAtThroughput interpolates the average latency a series pays to
// achieve the given throughput (the paper's "lower message latency for a
// given throughput" comparison between nhop and nbc). It reports false if
// the series never reaches it.
func LatencyAtThroughput(results []core.Result, throughput float64) (float64, bool) {
	for i, r := range results {
		if r.Throughput < throughput {
			continue
		}
		if i == 0 || results[i-1].Throughput >= r.Throughput {
			return r.AvgLatency, true
		}
		prev := results[i-1]
		frac := (throughput - prev.Throughput) / (r.Throughput - prev.Throughput)
		return prev.AvgLatency + frac*(r.AvgLatency-prev.AvgLatency), true
	}
	return 0, false
}

// WriteComparison renders a compact multi-series comparison: peak
// throughput, saturation point and latency at a common reference
// throughput.
func WriteComparison(w io.Writer, series map[string][]core.Result, refThroughput float64) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-10s %10s %10s %16s\n", "series", "peak", "saturates", fmt.Sprintf("lat@%.2f", refThroughput))
	for _, name := range names {
		rs := series[name]
		peak, _ := core.PeakThroughput(rs)
		sat := SaturationPoint(rs, 0.02)
		latStr := "-"
		if lat, ok := LatencyAtThroughput(rs, refThroughput); ok {
			latStr = fmt.Sprintf("%.1f", lat)
		}
		satStr := "-"
		if sat > 0 {
			satStr = fmt.Sprintf("%.2f", sat)
		}
		fmt.Fprintf(w, "%-10s %10.3f %10s %16s\n", name, peak, satStr, latStr)
	}
}
