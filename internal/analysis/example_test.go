package analysis_test

import (
	"fmt"

	"wormsim/internal/analysis"
	"wormsim/internal/core"
)

func ExampleBalance() {
	even := analysis.Balance([]int64{100, 100, 100, 100})
	skewed := analysis.Balance([]int64{10, 20, 70, 300})
	fmt.Printf("even:   gini %.3f max/mean %.2f\n", even.Gini, even.MaxOverMean)
	fmt.Printf("skewed: gini %.3f max/mean %.2f\n", skewed.Gini, skewed.MaxOverMean)
	// Output:
	// even:   gini 0.000 max/mean 1.00
	// skewed: gini 0.575 max/mean 3.00
}

func ExampleSaturationPoint() {
	results := []core.Result{
		{OfferedLoad: 0.2, Throughput: 0.20},
		{OfferedLoad: 0.4, Throughput: 0.39},
		{OfferedLoad: 0.6, Throughput: 0.45},
	}
	fmt.Println(analysis.SaturationPoint(results, 0.02))
	// Output:
	// 0.6
}

func ExampleCrossover() {
	adaptive := []core.Result{
		{OfferedLoad: 0.2, Throughput: 0.20},
		{OfferedLoad: 0.4, Throughput: 0.38},
	}
	dor := []core.Result{
		{OfferedLoad: 0.2, Throughput: 0.20},
		{OfferedLoad: 0.4, Throughput: 0.31},
	}
	load, ok := analysis.Crossover(adaptive, dor)
	fmt.Println(load, ok)
	// Output:
	// 0.4 true
}
