package message

import (
	"reflect"
	"testing"

	"wormsim/internal/topology"
)

// TestPoolGetMatchesNew: a recycled message must be field-for-field equal to
// a freshly constructed one, including after its previous life mutated every
// routing field.
func TestPoolGetMatchesNew(t *testing.T) {
	g := topology.NewTorus(8, 2)
	p := NewPool()
	m := p.Get(g, 1, 3, 42, 16, 100, nil)
	// Dirty every mutable field as a worm's life would.
	m.Advance(g, 0, topology.Minus, 3, g.Parity(3))
	m.NegHops = 5
	m.BonusStart = 2
	m.TagForced = 0x3
	m.TagFree = 0x1
	m.Class = 7
	m.DeliverTime = 900
	p.Put(m)

	got := p.Get(g, 2, 10, 60, 16, 200, nil)
	want := New(g, 2, 10, 60, 16, 200, nil)
	if got != m {
		t.Fatalf("pool did not recycle: got %p, put %p", got, m)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recycled message %+v\n differs from fresh %+v", got, want)
	}
	if gets, reuses := p.Stats(); gets != 2 || reuses != 1 {
		t.Errorf("stats gets=%d reuses=%d, want 2, 1", gets, reuses)
	}
}

// TestPoolTieBreakDraws: reset must consume exactly the draws New does, so a
// shared RNG stream stays in sync across recycling.
func TestPoolTieBreakDraws(t *testing.T) {
	g := topology.NewTorus(8, 2) // even k: half-ring ties exist
	src, dst := g.ID([]int{0, 0}), g.ID([]int{4, 4})
	countNew, countPool := 0, 0
	fresh := New(g, 1, src, dst, 16, 0, func(int) bool { countNew++; return countNew%2 == 0 })
	p := NewPool()
	p.Put(p.Get(g, 0, 1, 2, 16, 0, nil))
	recycled := p.Get(g, 1, src, dst, 16, 0, func(int) bool { countPool++; return countPool%2 == 0 })
	if countNew != countPool {
		t.Errorf("tieBreak draws: New made %d, pooled reset made %d", countNew, countPool)
	}
	if !reflect.DeepEqual(fresh, recycled) {
		t.Errorf("tied-route messages differ: %+v vs %+v", fresh, recycled)
	}
}

// TestPoolDimensionalityMismatch: a pool shared across grids of different n
// must not hand out wrongly sized Remaining/Crossed slices.
func TestPoolDimensionalityMismatch(t *testing.T) {
	g2 := topology.NewTorus(4, 2)
	g3 := topology.NewTorus(4, 3)
	p := NewPool()
	p.Put(p.Get(g2, 1, 0, 3, 8, 0, nil))
	m := p.Get(g3, 2, 0, 3, 8, 0, nil)
	if len(m.Remaining) != 3 || len(m.Crossed) != 3 {
		t.Fatalf("message for 3-cube has %d-dim state", len(m.Remaining))
	}
	if p.Len() != 0 {
		t.Errorf("mismatched message left in pool (len %d)", p.Len())
	}
}

// TestPoolPutNil: recycling nil is a no-op, not a panic or a poisoned slot.
func TestPoolPutNil(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	if p.Len() != 0 {
		t.Errorf("nil Put grew the pool to %d", p.Len())
	}
}
