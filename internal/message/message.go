// Package message defines the unit of communication: a fixed-length worm of
// flits with the per-message routing state the paper's algorithms need
// (remaining offsets, hop counts, negative-hop counts, dateline flags,
// bonus-card start class).
package message

import (
	"fmt"

	"wormsim/internal/topology"
)

// Message is one worm (or packet, under store-and-forward / virtual
// cut-through switching). Fields are updated by the routing algorithm as the
// header advances; flit occupancy is tracked by the network simulator.
type Message struct {
	ID  int64
	Src int
	Dst int
	// Len is the message length in flits.
	Len int

	// GenTime is the cycle the message was generated at the source,
	// DeliverTime the cycle its tail flit was consumed at the destination
	// (-1 while in flight). Latency is the difference, eq. (2) of the paper.
	GenTime     int64
	DeliverTime int64

	// Remaining holds the signed number of hops still to take per dimension
	// along the minimal path chosen at injection (+ means Plus direction).
	// It is decremented toward zero as the header advances.
	Remaining []int

	// HopsTotal is the minimal distance from Src to Dst; HopsTaken counts
	// header hops completed so far.
	HopsTotal int
	HopsTaken int

	// NegHops counts negative hops taken (hops out of an odd-parity node),
	// the virtual-channel class driver of the nhop scheme.
	NegHops int

	// BonusStart is the virtual-channel class the nbc scheme chose for the
	// first hop (0 for all other algorithms); the nbc class for any later
	// hop is BonusStart + NegHops.
	BonusStart int

	// Crossed marks, per dimension, whether the header has crossed that
	// ring's dateline (used by the e-cube and north-last VC assignment).
	Crossed []bool

	// TagForced and TagFree hold the source-computed 2pn tag (forced bits
	// and free-bit mask) for the source-tag 2pn variant.
	TagForced int
	TagFree   int

	// Class is the congestion-control message class assigned at generation
	// (sec. 3 of the paper: VC-number based for hop schemes and 2pn,
	// intended-first-VC based for e-cube and north-last).
	Class int

	// FirstAlloc is the cycle the header first acquired a first-hop virtual
	// channel (GenTime until then), and HeadStalls counts cycles the header
	// bid for an output virtual channel at an intermediate node and lost —
	// the raw inputs of the forensics latency anatomy. Maintained by the
	// network engine; never read by routing, so they cannot affect results.
	FirstAlloc int64
	HeadStalls int32
}

// New creates a message from src to dst with the given length, resolving
// half-ring direction ties with tieBreak (called once per tied dimension;
// return true for Plus). The caller provides gen time and id.
func New(g *topology.Grid, id int64, src, dst, length int, genTime int64, tieBreak func(dim int) bool) *Message {
	m := &Message{
		Remaining: make([]int, g.N()),
		Crossed:   make([]bool, g.N()),
	}
	m.reset(g, id, src, dst, length, genTime, tieBreak)
	return m
}

// reset reinitializes m in place for a fresh (src, dst) pair, consuming the
// same tieBreak draws as New. Remaining and Crossed must already have length
// g.N(); every other field is overwritten, so a recycled message carries no
// state from its previous life.
func (m *Message) reset(g *topology.Grid, id int64, src, dst, length int, genTime int64, tieBreak func(dim int) bool) {
	m.ID = id
	m.Src = src
	m.Dst = dst
	m.Len = length
	m.GenTime = genTime
	m.DeliverTime = -1
	m.FirstAlloc = genTime
	m.HeadStalls = 0
	m.HopsTotal = 0
	m.HopsTaken = 0
	m.NegHops = 0
	m.BonusStart = 0
	m.TagForced = 0
	m.TagFree = 0
	m.Class = 0
	for i := 0; i < g.N(); i++ {
		off := g.Offset(src, dst, i)
		if g.TieInDim(src, dst, i) && tieBreak != nil && !tieBreak(i) {
			off = -off
		}
		m.Remaining[i] = off
		m.Crossed[i] = false
		if off < 0 {
			m.HopsTotal -= off
		} else {
			m.HopsTotal += off
		}
	}
}

// Arrived reports whether all dimensions are corrected.
func (m *Message) Arrived() bool { return m.HopsTaken == m.HopsTotal }

// HopsLeft returns the number of hops still to take.
func (m *Message) HopsLeft() int { return m.HopsTotal - m.HopsTaken }

// DirInDim returns the travel direction in dim and whether any hops remain
// in that dimension.
func (m *Message) DirInDim(dim int) (topology.Dir, bool) {
	r := m.Remaining[dim]
	switch {
	case r > 0:
		return topology.Plus, true
	case r < 0:
		return topology.Minus, true
	default:
		return topology.Plus, false
	}
}

// NegHopsNeeded returns the number of negative hops a minimal route from the
// current position will take, given the parity of the current node: on a
// bipartite grid parities strictly alternate along any path, so a route of L
// hops starting at an odd node takes ceil(L/2) negative hops and one
// starting at an even node takes floor(L/2).
func (m *Message) NegHopsNeeded(curParity int) int {
	l := m.HopsLeft()
	if curParity == 1 {
		return (l + 1) / 2
	}
	return l / 2
}

// Advance records a header hop in (dim, dir) from a node with the given
// coordinate in dim and parity: updates remaining offsets, hop and
// negative-hop counters and dateline flags. It panics if the hop is not
// minimal (remaining must be nonzero in the hop's direction).
func (m *Message) Advance(g *topology.Grid, dim int, dir topology.Dir, fromCoord, fromParity int) {
	r := m.Remaining[dim]
	if dir == topology.Plus {
		if r <= 0 {
			panic(fmt.Sprintf("message %d: non-minimal + hop in dim %d (remaining %d)", m.ID, dim, r))
		}
		m.Remaining[dim] = r - 1
	} else {
		if r >= 0 {
			panic(fmt.Sprintf("message %d: non-minimal - hop in dim %d (remaining %d)", m.ID, dim, r))
		}
		m.Remaining[dim] = r + 1
	}
	m.HopsTaken++
	if fromParity == 1 {
		m.NegHops++
	}
	if g.CrossesDateline(fromCoord, dir) {
		m.Crossed[dim] = true
	}
}

// Latency returns the measured latency in cycles, or -1 if not yet
// delivered.
func (m *Message) Latency() int64 {
	if m.DeliverTime < 0 {
		return -1
	}
	return m.DeliverTime - m.GenTime
}

// String identifies the message for diagnostics.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d %d->%d len %d hops %d/%d", m.ID, m.Src, m.Dst, m.Len, m.HopsTaken, m.HopsTotal)
}
