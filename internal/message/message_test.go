package message

import (
	"testing"
	"testing/quick"

	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

func node(g *topology.Grid, x, y int) int { return g.ID([]int{x, y}) }

func TestNewBasics(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 7, node(g, 4, 4), node(g, 2, 2), 16, 100, nil)
	if m.ID != 7 || m.Len != 16 || m.GenTime != 100 {
		t.Fatalf("basic fields wrong: %+v", m)
	}
	if m.HopsTotal != 4 {
		t.Fatalf("(4,4)->(2,2) needs %d hops, want 4", m.HopsTotal)
	}
	if m.Remaining[0] != -2 || m.Remaining[1] != -2 {
		t.Fatalf("remaining = %v, want [-2 -2]", m.Remaining)
	}
	if m.Arrived() {
		t.Fatal("fresh message claims arrived")
	}
	if m.Latency() != -1 {
		t.Fatal("undelivered message has a latency")
	}
	if m.DeliverTime != -1 {
		t.Fatal("DeliverTime should start at -1")
	}
}

func TestHopsTotalEqualsDistance(t *testing.T) {
	g := topology.NewTorus(16, 2)
	f := func(a, b uint16) bool {
		s := int(a) % g.Nodes()
		d := int(b) % g.Nodes()
		if s == d {
			return true
		}
		m := New(g, 0, s, d, 16, 0, nil)
		return m.HopsTotal == g.Distance(s, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTieBreak(t *testing.T) {
	g := topology.NewTorus(16, 2)
	src := node(g, 0, 0)
	dst := node(g, 8, 0) // exactly half the ring in dim 0
	plus := New(g, 0, src, dst, 16, 0, func(int) bool { return true })
	if plus.Remaining[0] != 8 {
		t.Errorf("tie broken to Plus should give +8, got %d", plus.Remaining[0])
	}
	minus := New(g, 0, src, dst, 16, 0, func(int) bool { return false })
	if minus.Remaining[0] != -8 {
		t.Errorf("tie broken to Minus should give -8, got %d", minus.Remaining[0])
	}
	if plus.HopsTotal != 8 || minus.HopsTotal != 8 {
		t.Error("both tie resolutions are 8 hops")
	}
	// Without a tie there is no callback influence.
	far := New(g, 0, src, node(g, 3, 0), 16, 0, func(int) bool { return false })
	if far.Remaining[0] != 3 {
		t.Errorf("0->3 should be +3 regardless of tie break, got %d", far.Remaining[0])
	}
}

func TestDirInDim(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 0, node(g, 0, 5), node(g, 3, 2), 16, 0, nil)
	dir, ok := m.DirInDim(0)
	if !ok || dir != topology.Plus {
		t.Errorf("dim0 should be Plus: %v %v", dir, ok)
	}
	dir, ok = m.DirInDim(1)
	if !ok || dir != topology.Minus {
		t.Errorf("dim1 should be Minus: %v %v", dir, ok)
	}
	done := New(g, 0, node(g, 0, 0), node(g, 1, 0), 16, 0, nil)
	if _, ok := done.DirInDim(1); ok {
		t.Error("dim1 is already corrected")
	}
}

func TestAdvanceWalk(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Walk (4,4) -> (3,4) -> (3,3) -> (2,3) -> (2,2), the paper's Figure 2
	// path, checking counters along the way.
	m := New(g, 0, node(g, 4, 4), node(g, 2, 2), 16, 0, nil)
	path := []struct {
		fromX, fromY int
		dim          int
	}{
		{4, 4, 0}, {3, 4, 1}, {3, 3, 0}, {2, 3, 1},
	}
	wantNeg := []int{0, 0, 1, 1} // negative hops BEFORE each hop
	for i, hop := range path {
		from := node(g, hop.fromX, hop.fromY)
		if m.NegHops != wantNeg[i] {
			t.Fatalf("hop %d: NegHops = %d, want %d", i, m.NegHops, wantNeg[i])
		}
		m.Advance(g, hop.dim, topology.Minus, g.Coord(from, hop.dim), g.Parity(from))
	}
	if !m.Arrived() {
		t.Fatal("message should have arrived")
	}
	if m.HopsTaken != 4 || m.HopsLeft() != 0 {
		t.Fatalf("hops taken %d", m.HopsTaken)
	}
	if m.NegHops != 2 {
		t.Fatalf("final NegHops = %d, want 2", m.NegHops)
	}
}

func TestAdvancePanicsOnNonMinimal(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 0, node(g, 0, 0), node(g, 3, 0), 16, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-minimal hop did not panic")
		}
	}()
	m.Advance(g, 0, topology.Minus, 0, 0) // needs Plus, not Minus
}

func TestAdvancePanicsOnCorrectedDim(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 0, node(g, 0, 0), node(g, 3, 0), 16, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("hop in corrected dimension did not panic")
		}
	}()
	m.Advance(g, 1, topology.Plus, 0, 0)
}

func TestAdvanceDateline(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 0, node(g, 14, 0), node(g, 2, 0), 16, 0, nil) // wraps +x
	if m.Remaining[0] != 4 {
		t.Fatalf("14->2 should be +4, got %d", m.Remaining[0])
	}
	coords := []int{14, 15, 0, 1}
	// The hop out of col 15 is the crossing; Crossed flips as it is taken
	// (the crossing hop itself is still classed "before the dateline" by
	// e-cube, which reads Crossed before advancing).
	wantCrossed := []bool{false, true, true, true}
	for i, c := range coords {
		from := node(g, c, 0)
		m.Advance(g, 0, topology.Plus, g.Coord(from, 0), g.Parity(from))
		if m.Crossed[0] != wantCrossed[i] {
			t.Fatalf("after hop from col %d: Crossed = %v, want %v", c, m.Crossed[0], wantCrossed[i])
		}
	}
	if !m.Arrived() {
		t.Fatal("should have arrived at (2,0)")
	}
}

func TestNegHopsNeeded(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// 4 hops starting from an even node: hops alternate even->odd->even...,
	// negative hops (out of odd nodes) = 2 of the 4.
	m := New(g, 0, node(g, 4, 4), node(g, 2, 2), 16, 0, nil)
	if got := m.NegHopsNeeded(g.Parity(m.Src)); got != 2 {
		t.Errorf("even start, 4 hops: %d negative, want 2", got)
	}
	// Odd start, 3 hops: odd->even->odd->even: negative on hops 1 and 3.
	m2 := New(g, 0, node(g, 1, 0), node(g, 4, 0), 16, 0, nil)
	if got := m2.NegHopsNeeded(g.Parity(m2.Src)); got != 2 {
		t.Errorf("odd start, 3 hops: %d negative, want 2", got)
	}
	// Even start, 3 hops: negative on hop 2 only.
	m3 := New(g, 0, node(g, 0, 0), node(g, 3, 0), 16, 0, nil)
	if got := m3.NegHopsNeeded(g.Parity(m3.Src)); got != 1 {
		t.Errorf("even start, 3 hops: %d negative, want 1", got)
	}
}

func TestNegHopsNeededMatchesWalk(t *testing.T) {
	// Property: walking any minimal path accumulates exactly NegHopsNeeded
	// negative hops (independent of the adaptive choices taken).
	g := topology.NewTorus(16, 2)
	r := rng.New(5)
	for trial := 0; trial < 500; trial++ {
		s := r.Intn(g.Nodes())
		d := r.Intn(g.Nodes())
		if s == d {
			continue
		}
		m := New(g, 0, s, d, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
		want := m.NegHopsNeeded(g.Parity(s))
		cur := s
		for !m.Arrived() {
			// Pick a random uncorrected dimension.
			var dims []int
			for dim := 0; dim < g.N(); dim++ {
				if _, ok := m.DirInDim(dim); ok {
					dims = append(dims, dim)
				}
			}
			dim := dims[r.Intn(len(dims))]
			dir, _ := m.DirInDim(dim)
			m.Advance(g, dim, dir, g.Coord(cur, dim), g.Parity(cur))
			cur = g.Neighbor(cur, dim, dir)
		}
		if cur != d {
			t.Fatalf("walk ended at %d, want %d", cur, d)
		}
		if m.NegHops != want {
			t.Fatalf("%d->%d: took %d negative hops, NegHopsNeeded said %d", s, d, m.NegHops, want)
		}
	}
}

func TestLatency(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 0, 0, 1, 16, 1000, nil)
	m.DeliverTime = 1023
	if m.Latency() != 23 {
		t.Errorf("latency = %d, want 23", m.Latency())
	}
}

func TestString(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := New(g, 9, 0, 5, 16, 0, nil)
	if got := m.String(); got != "msg 9 0->5 len 16 hops 0/5" {
		t.Errorf("String = %q", got)
	}
}
