package message

import "wormsim/internal/topology"

// Pool is a deterministic free list of Messages for the steady-state engine
// hot path: the network recycles a worm's Message at delivery (and at
// congestion drop), so after warmup the inject phase allocates nothing.
//
// Determinism: the free list is LIFO and touched only by the owning engine's
// goroutine, so which physical Message backs a logical worm is a pure
// function of the run's event order — and since Get fully reinitializes
// every field (via the same code path New uses, consuming identical tieBreak
// draws), recycled worms are indistinguishable from fresh ones. Results and
// traces of a run are therefore bit-identical with or without recycling,
// which TestPooledRunsAreBitIdentical pins.
//
// Contract for callers holding *Message pointers (OnDeliver hooks, trace
// tooling): the pointer stays valid and its fields untouched until the pool
// hands the same Message out again, so copy what you need inside the
// callback rather than retaining the pointer across cycles.
type Pool struct {
	free []*Message
	// gets/reuses count lifetime traffic for diagnostics and tests.
	gets   int64
	reuses int64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a fully initialized message, recycling a previously Put one
// when the grid's dimensionality matches (a pool shared across runs on
// different-n grids falls back to allocating).
func (p *Pool) Get(g *topology.Grid, id int64, src, dst, length int, genTime int64, tieBreak func(dim int) bool) *Message {
	p.gets++
	for n := len(p.free); n > 0; n = len(p.free) {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		if len(m.Remaining) != g.N() {
			continue // wrong dimensionality; drop it and keep looking
		}
		p.reuses++
		m.reset(g, id, src, dst, length, genTime, tieBreak)
		return m
	}
	return New(g, id, src, dst, length, genTime, tieBreak)
}

// Put recycles m. The caller must guarantee no live reference uses m after
// the next Get may return it. Put does not clear fields — a delivered
// message's latency stays readable until reuse — and ignores nil.
func (p *Pool) Put(m *Message) {
	if m == nil {
		return
	}
	p.free = append(p.free, m)
}

// Stats reports lifetime Get calls and how many were served by recycling.
func (p *Pool) Stats() (gets, reuses int64) { return p.gets, p.reuses }

// Len returns the current free-list depth.
func (p *Pool) Len() int { return len(p.free) }
