package routing

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// NorthLast is Glass & Ni's partially adaptive turn-model algorithm. In the
// paper's formulation for two-dimensional networks: if the destination index
// is less than the source index in dimension 1 (the message must travel
// "north", taken here as the Minus direction of the highest dimension), the
// message corrects dimension 0 completely first and then takes its north
// hops with no adaptivity; otherwise it is routed fully adaptively among the
// minimal directions. The two prohibited turns are north-to-east and
// north-to-west.
//
// North-last is inherently two-dimensional: the turn-model proof relies on
// every dimension but "north" being totally ordered by the restriction, and
// with three or more dimensions the mutually unrestricted dimensions form
// rectangle cycles (the cdg analyzer exhibits one on a 4-ary 3-cube), so
// Compatible rejects n != 2. Use NegativeFirst for higher dimensions.
//
// Virtual channels on a torus: the paper leaves the nlast channel
// discipline unspecified. Per-dimension dateline classes (as used for
// e-cube) are NOT sufficient here: because southbound messages may turn
// freely between dimensions, "spiral" channel cycles exist that wrap both
// rings while every participating message crosses at most one dateline, so
// a cycle can close entirely within class 0. Instead the class of a hop is
// the number of wraparound (dateline) crossings the message has completed
// in any dimension. A minimal route crosses at most one wraparound per
// dimension, so n+1 classes suffice. Any deadlock cycle would have to stay
// within one class (classes only increase along a route, and a wraparound
// channel's holder in class c requests class c+1 next), and a single-class
// cycle contains no wraparound channel, reducing it to a mesh cycle that
// the turn restriction forbids. Deadlock freedom is additionally checked
// empirically by the drain stress tests.
type NorthLast struct{ noAlloc }

// Name returns "nlast".
func (NorthLast) Name() string { return "nlast" }

// FullyAdaptive returns false: north-bound messages lose all adaptivity.
func (NorthLast) FullyAdaptive() bool { return false }

// NumVCs returns n+1 on a torus (wrap-count classes) and 1 on a mesh.
func (NorthLast) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return g.N() + 1
	}
	return 1
}

// Compatible requires a two-dimensional grid (see the type comment).
func (NorthLast) Compatible(g *topology.Grid) error {
	if g.N() != 2 {
		return fmt.Errorf("routing: nlast is a two-dimensional turn-model algorithm, %v has n=%d (use negfirst)", g, g.N())
	}
	return nil
}

// Init assigns the congestion class from the first virtual channel the
// message intends to use: its first candidate's (dim, dir) pair.
func (NorthLast) Init(g *topology.Grid, m *message.Message) {
	var buf [8]Candidate
	cands := NorthLast{}.Candidates(g, m, m.Src, buf[:0])
	m.Class = cands[0].Dim<<1 | int(cands[0].Dir)
}

// wrapCount returns the number of dateline crossings completed so far.
func wrapCount(m *message.Message) int {
	c := 0
	for _, crossed := range m.Crossed {
		if crossed {
			c++
		}
	}
	return c
}

// Candidates returns the admissible hops under the north-last restriction.
func (NorthLast) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	last := g.N() - 1
	goingNorth := m.Remaining[last] < 0
	vc := 0
	if g.Wrap() {
		vc = wrapCount(m)
	}
	start := len(dst)
	for dim := 0; dim < g.N(); dim++ {
		dir, ok := m.DirInDim(dim)
		if !ok {
			continue
		}
		if goingNorth && dim == last && m.HopsLeft() != -m.Remaining[last] {
			// North hops are deferred until every other dimension is
			// corrected.
			continue
		}
		dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: vc})
	}
	if len(dst) == start {
		panic(fmt.Sprintf("routing: nlast produced no candidates for %v", m))
	}
	return dst
}
