// Package routing implements the six deadlock-free wormhole routing
// algorithms compared by the paper: the non-adaptive e-cube, the partially
// adaptive north-last (Glass & Ni's turn model), the fully adaptive
// two-power-n scheme, and the three fully adaptive hop schemes (positive
// hop, negative hop, negative hop with bonus cards) derived from
// store-and-forward buffer-reservation algorithms.
//
// An Algorithm answers one question: given a message's routing state at a
// node, which (dimension, direction, virtual-channel class) triples may the
// header use for its next hop? All algorithms here are minimal: every
// candidate moves the message closer to its destination, so livelock is
// impossible by construction. Deadlock freedom comes from the virtual
// channel discipline each algorithm encodes in its candidate classes.
package routing

import (
	"fmt"
	"sort"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// Candidate is one admissible next hop: the physical channel (Dim, Dir) out
// of the current node and the virtual-channel class VC on it.
type Candidate struct {
	Dim int
	Dir topology.Dir
	VC  int
}

// String renders a candidate like "d1+ vc3".
func (c Candidate) String() string {
	return fmt.Sprintf("d%d%s vc%d", c.Dim, c.Dir, c.VC)
}

// Algorithm is a minimal deadlock-free wormhole routing algorithm.
//
// Implementations are stateless; all per-message state lives in the Message
// (remaining offsets, hop counters, dateline flags, bonus start), which the
// network updates via Message.Advance and Allocated.
type Algorithm interface {
	// Name returns the paper's short name: ecube, nlast, 2pn, phop, nhop,
	// nbc.
	Name() string
	// FullyAdaptive reports whether the algorithm admits every minimal path.
	FullyAdaptive() bool
	// NumVCs returns the number of virtual channels required per physical
	// channel on g.
	NumVCs(g *topology.Grid) int
	// Compatible returns nil if the algorithm is defined on g, or an error
	// explaining why not (e.g. negative-hop schemes need a bipartite grid).
	Compatible(g *topology.Grid) error
	// Init assigns the message's congestion-control class (sec. 3 of the
	// paper) and any algorithm-specific initial state.
	Init(g *topology.Grid, m *message.Message)
	// Candidates appends the admissible next hops for m at node to dst and
	// returns the extended slice. It must not be called for an arrived
	// message.
	Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate
	// Allocated notifies the algorithm that the header of m at node won the
	// output virtual channel c (used by nbc to latch the bonus-card class
	// chosen on the first hop).
	Allocated(g *topology.Grid, m *message.Message, node int, c Candidate)
}

// noAlloc provides the common empty Allocated hook.
type noAlloc struct{}

func (noAlloc) Allocated(*topology.Grid, *message.Message, int, Candidate) {}

// uncorrectedDims appends one (dim, dir) per dimension the message still has
// hops in, in increasing dimension order.
func uncorrectedDims(g *topology.Grid, m *message.Message, dst []Candidate) []Candidate {
	for dim := 0; dim < g.N(); dim++ {
		if dir, ok := m.DirInDim(dim); ok {
			dst = append(dst, Candidate{Dim: dim, Dir: dir})
		}
	}
	return dst
}

// registry of algorithms by name.
var registry = map[string]Algorithm{}

func register(a Algorithm) {
	if _, dup := registry[a.Name()]; dup {
		panic("routing: duplicate algorithm " + a.Name())
	}
	registry[a.Name()] = a
}

func init() {
	register(ECube{})
	register(NorthLast{})
	register(TwoPowerN{})
	register(PositiveHop{})
	register(NegativeHop{})
	register(BonusCards{})
}

// Get returns the algorithm registered under name.
func Get(name string) (Algorithm, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("routing: unknown algorithm %q (have %v)", name, Names())
	}
	return a, nil
}

// Names lists the registered algorithm names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry { //lint:allow simdeterminism,purity (collected then sorted)
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the six algorithms in the paper's presentation order.
func All() []Algorithm {
	return []Algorithm{PositiveHop{}, NegativeHop{}, BonusCards{}, TwoPowerN{}, ECube{}, NorthLast{}}
}

// SelectionPolicy picks one of several free output virtual channels for an
// adaptive header. scores[i] is a congestion estimate for cands[i] (lower is
// less congested); both slices are nonempty and equally long.
type SelectionPolicy interface {
	Name() string
	Select(cands []Candidate, scores []int, r *rng.Stream) int
}

// RandomPolicy picks uniformly among the free candidates. This is the
// default: it is unbiased and, combined with the wider candidate sets of the
// adaptive algorithms, realizes their adaptivity without modelling extra
// router lookahead.
type RandomPolicy struct{}

// Name returns "random".
func (RandomPolicy) Name() string { return "random" }

// Select picks a uniform index.
func (RandomPolicy) Select(cands []Candidate, _ []int, r *rng.Stream) int {
	return r.Intn(len(cands))
}

// FirstFreePolicy always picks the first free candidate in algorithm order,
// modelling the cheapest possible selection hardware.
type FirstFreePolicy struct{}

// Name returns "first".
func (FirstFreePolicy) Name() string { return "first" }

// Select picks index 0.
func (FirstFreePolicy) Select([]Candidate, []int, *rng.Stream) int { return 0 }

// LeastCongestedPolicy picks the candidate with the lowest congestion score,
// breaking ties uniformly at random. The paper argues nbc's bonus cards pay
// off because the wider first-hop class choice lets a message pick the least
// congested virtual channel.
type LeastCongestedPolicy struct{}

// Name returns "leastcongested".
func (LeastCongestedPolicy) Name() string { return "leastcongested" }

// Select picks the min-score candidate, random among ties.
func (LeastCongestedPolicy) Select(cands []Candidate, scores []int, r *rng.Stream) int {
	best := scores[0]
	n := 1
	pick := 0
	for i := 1; i < len(cands); i++ {
		switch {
		case scores[i] < best:
			best, pick, n = scores[i], i, 1
		case scores[i] == best:
			// Reservoir-sample among ties.
			n++
			if r.Intn(n) == 0 {
				pick = i
			}
		}
	}
	return pick
}

// GetPolicy returns the selection policy registered under name.
func GetPolicy(name string) (SelectionPolicy, error) {
	switch name {
	case "random", "":
		return RandomPolicy{}, nil
	case "first":
		return FirstFreePolicy{}, nil
	case "leastcongested":
		return LeastCongestedPolicy{}, nil
	}
	return nil, fmt.Errorf("routing: unknown selection policy %q", name)
}
