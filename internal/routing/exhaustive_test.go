package routing

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// TestExhaustiveAllPairsCandidates validates, for every registered
// algorithm on a 6-ary 2-cube and a 5-ary 2-cube mesh, the candidate sets
// over ALL source/destination pairs and all states along random admissible
// walks:
//
//   - at least one candidate at every non-arrived state (no routing dead
//     ends);
//   - every candidate minimal, existing, and within the VC class bound;
//   - non-adaptive algorithms offer exactly one physical hop;
//   - fully adaptive algorithms offer every uncorrected dimension.
func TestExhaustiveAllPairsCandidates(t *testing.T) {
	grids := []*topology.Grid{topology.NewTorus(6, 2), topology.NewMesh(5, 2)}
	for _, g := range grids {
		for _, name := range Names() {
			a, _ := Get(name)
			if a.Compatible(g) != nil {
				continue
			}
			numVC := a.NumVCs(g)
			r := rng.New(uint64(g.Nodes()))
			for src := 0; src < g.Nodes(); src++ {
				for dst := 0; dst < g.Nodes(); dst++ {
					if src == dst {
						continue
					}
					m := message.New(g, 0, src, dst, 4, 0, func(int) bool { return r.Bernoulli(0.5) })
					a.Init(g, m)
					cur := src
					var cands []Candidate
					for !m.Arrived() {
						cands = a.Candidates(g, m, cur, cands[:0])
						if len(cands) == 0 {
							t.Fatalf("%s on %v: dead end for %v at %d", name, g, m, cur)
						}
						physical := map[[2]int]bool{}
						dims := map[int]bool{}
						for _, c := range cands {
							if c.VC < 0 || c.VC >= numVC {
								t.Fatalf("%s on %v: class %d out of [0,%d)", name, g, c.VC, numVC)
							}
							if dir, ok := m.DirInDim(c.Dim); !ok || dir != c.Dir {
								t.Fatalf("%s on %v: non-minimal candidate %v for %v at %d", name, g, c, m, cur)
							}
							if !g.HasChannel(cur, c.Dim, c.Dir) {
								t.Fatalf("%s on %v: missing channel for %v at %d", name, g, c, cur)
							}
							physical[[2]int{c.Dim, int(c.Dir)}] = true
							dims[c.Dim] = true
						}
						uncorrected := 0
						for dim := 0; dim < g.N(); dim++ {
							if m.Remaining[dim] != 0 {
								uncorrected++
							}
						}
						switch {
						case name == "ecube" || name == "ecube2x" || name == "ecube4x":
							if len(physical) != 1 {
								t.Fatalf("%s: %d physical hops offered, want 1", name, len(physical))
							}
						case a.FullyAdaptive():
							if len(dims) != uncorrected {
								t.Fatalf("%s on %v: offers %d dims, want %d for %v at %d",
									name, g, len(dims), uncorrected, m, cur)
							}
						}
						c := cands[r.Intn(len(cands))]
						a.Allocated(g, m, cur, c)
						m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
						cur = g.Neighbor(cur, c.Dim, c.Dir)
					}
					if cur != dst {
						t.Fatalf("%s on %v: %d->%d ended at %d", name, g, src, dst, cur)
					}
				}
			}
		}
	}
}

// TestECubePathIsCanonical: for every pair, e-cube's walk visits exactly
// the dimension-ordered sequence of nodes.
func TestECubePathIsCanonical(t *testing.T) {
	g := topology.NewTorus(8, 2)
	for src := 0; src < g.Nodes(); src += 3 {
		for dst := 0; dst < g.Nodes(); dst += 5 {
			if src == dst {
				continue
			}
			m := message.New(g, 0, src, dst, 4, 0, func(int) bool { return true })
			ECube{}.Init(g, m)
			cur := src
			var cands []Candidate
			dim0Done := false
			for !m.Arrived() {
				cands = ECube{}.Candidates(g, m, cur, cands[:0])
				c := cands[0]
				if c.Dim == 0 && dim0Done {
					t.Fatalf("ecube revisited dim 0 after leaving it (%d->%d)", src, dst)
				}
				if c.Dim == 1 {
					dim0Done = true
				}
				m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
				cur = g.Neighbor(cur, c.Dim, c.Dir)
			}
		}
	}
}

// TestHopSchemeClassCeilings: along every walk the top class stays within
// the scheme's bound (phop: diameter; nhop/nbc: max negative hops), and
// the bound is attained by a diameter walk.
func TestHopSchemeClassCeilings(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(99)
	// Diameter pair: (0,0) -> (8,8).
	src := 0
	dst := g.ID([]int{8, 8})
	maxSeen := map[string]int{}
	for trial := 0; trial < 100; trial++ {
		for _, name := range []string{"phop", "nhop", "nbc"} {
			a, _ := Get(name)
			classes := randomWalk(t, g, a, src, dst, r)
			for _, c := range classes {
				if c > maxSeen[name] {
					maxSeen[name] = c
				}
			}
		}
	}
	if maxSeen["phop"] != 15 { // classes 0..15 used for a 16-hop walk
		t.Errorf("phop max class on a diameter walk = %d, want 15", maxSeen["phop"])
	}
	if maxSeen["nhop"] != 7 { // 8 negative hops -> classes 0..7 used for hops
		t.Errorf("nhop max class = %d, want 7", maxSeen["nhop"])
	}
	if maxSeen["nbc"] > 8 {
		t.Errorf("nbc max class = %d, exceeds 8", maxSeen["nbc"])
	}
}
