package routing

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// ECubeLanes is dimension-order routing with L independent virtual-channel
// "lanes": each lane is its own Dally–Seitz dateline pair, and a header may
// take any free lane of the single physical channel e-cube prescribes.
// Routing stays non-adaptive (one physical path); only the virtual-channel
// choice widens. This is the experiment the paper's conclusion points to —
// "Dally shows that additional virtual channels improve the performance of
// e-cube for uniform traffic" — packaged as the A-VC ablation: plain ecube
// is ECubeLanes with one lane.
//
// Deadlock freedom: lanes do not interact (a message stays in its lane once
// the first hop picked it... in fact the lane may change per dimension; the
// dependency graph is the disjoint union of L copies of the single-lane
// graph per dimension, each acyclic under the dateline rule).
type ECubeLanes struct {
	noAlloc
	// Lanes is the number of dateline pairs per physical channel.
	Lanes int
}

func init() {
	register(ECubeLanes{Lanes: 2})
	register(ECubeLanes{Lanes: 4})
}

// Name returns e.g. "ecube2x" for two lanes.
func (e ECubeLanes) Name() string { return fmt.Sprintf("ecube%dx", e.Lanes) }

// FullyAdaptive returns false: the physical path is unique.
func (ECubeLanes) FullyAdaptive() bool { return false }

// NumVCs returns 2*Lanes on a torus and Lanes on a mesh.
func (e ECubeLanes) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return 2 * e.Lanes
	}
	return e.Lanes
}

// Compatible requires at least one lane.
func (e ECubeLanes) Compatible(*topology.Grid) error {
	if e.Lanes < 1 {
		return fmt.Errorf("routing: ecube lanes must be >= 1, have %d", e.Lanes)
	}
	return nil
}

// Init assigns the congestion class from the first-hop channel, as for
// plain e-cube.
func (ECubeLanes) Init(g *topology.Grid, m *message.Message) {
	ECube{}.Init(g, m)
}

// Candidates offers the e-cube hop on every lane's dateline class.
func (e ECubeLanes) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	for dim := 0; dim < g.N(); dim++ {
		dir, ok := m.DirInDim(dim)
		if !ok {
			continue
		}
		if !g.Wrap() {
			for lane := 0; lane < e.Lanes; lane++ {
				dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: lane})
			}
			return dst
		}
		cross := 0
		if m.Crossed[dim] {
			cross = 1
		}
		for lane := 0; lane < e.Lanes; lane++ {
			dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: 2*lane + cross})
		}
		return dst
	}
	panic(fmt.Sprintf("routing: ecube-lanes candidates for arrived %v", m))
}
