package routing

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

func TestWestFirstRestriction(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Needs West (-x) and South (+y): West must come first, alone.
	m := message.New(g, 0, node(g, 5, 5), node(g, 2, 7), 16, 0, nil)
	WestFirst{}.Init(g, m)
	var cands []Candidate
	cands = WestFirst{}.Candidates(g, m, node(g, 5, 5), cands)
	if len(cands) != 1 || cands[0].Dim != 0 || cands[0].Dir != topology.Minus {
		t.Fatalf("west-bound message should go west only, got %v", cands)
	}
	// Eastbound message is fully adaptive.
	m2 := message.New(g, 0, node(g, 5, 5), node(g, 8, 2), 16, 0, nil)
	cands = WestFirst{}.Candidates(g, m2, node(g, 5, 5), cands[:0])
	if len(cands) != 2 {
		t.Fatalf("east-bound message should have 2 candidates, got %v", cands)
	}
	for _, c := range cands {
		if c.Dim == 0 && c.Dir == topology.Minus {
			t.Fatalf("east-bound message offered a west hop: %v", cands)
		}
	}
}

func TestNegativeFirstRestriction(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Needs -x and +y: the negative hop comes first.
	m := message.New(g, 0, node(g, 5, 5), node(g, 2, 7), 16, 0, nil)
	NegativeFirst{}.Init(g, m)
	var cands []Candidate
	cands = NegativeFirst{}.Candidates(g, m, node(g, 5, 5), cands)
	if len(cands) != 1 || cands[0].Dir != topology.Minus {
		t.Fatalf("want the single negative hop first, got %v", cands)
	}
	// Needs -x and -y: adaptive among both negatives.
	m2 := message.New(g, 0, node(g, 5, 5), node(g, 3, 2), 16, 0, nil)
	cands = NegativeFirst{}.Candidates(g, m2, node(g, 5, 5), cands[:0])
	if len(cands) != 2 {
		t.Fatalf("two negative dims should both be offered, got %v", cands)
	}
	// All-positive message: adaptive among positives.
	m3 := message.New(g, 0, node(g, 5, 5), node(g, 7, 8), 16, 0, nil)
	cands = NegativeFirst{}.Candidates(g, m3, node(g, 5, 5), cands[:0])
	if len(cands) != 2 {
		t.Fatalf("two positive dims should both be offered, got %v", cands)
	}
	for _, c := range cands {
		if c.Dir != topology.Plus {
			t.Fatalf("positive phase offered a negative hop: %v", cands)
		}
	}
}

// TestTurnModelWalksComplete: both algorithms complete random minimal
// walks with classes bounded by n+1 and non-decreasing (wrap count).
func TestTurnModelWalksComplete(t *testing.T) {
	for _, topo := range []*topology.Grid{topology.NewTorus(16, 2), topology.NewMesh(8, 2), topology.NewTorus(6, 3)} {
		r := rng.New(29)
		for _, name := range []string{"wfirst", "negfirst"} {
			a, _ := Get(name)
			if a.Compatible(topo) != nil {
				continue // wfirst is two-dimensional
			}
			for trial := 0; trial < 200; trial++ {
				src := r.Intn(topo.Nodes())
				dst := r.Intn(topo.Nodes())
				if src == dst {
					continue
				}
				classes := randomWalk(t, topo, a, src, dst, r)
				for i := 1; i < len(classes); i++ {
					if classes[i] < classes[i-1] {
						t.Fatalf("%s on %v: class sequence %v decreased", name, topo, classes)
					}
				}
				if max := topo.N(); topo.Wrap() {
					for _, c := range classes {
						if c > max {
							t.Fatalf("%s: class %d beyond wrap count bound %d", name, c, max)
						}
					}
				}
			}
		}
	}
}

// TestNegativeFirstOrdering: once a positive hop is taken, no negative hop
// follows (the prohibited turn).
func TestNegativeFirstOrdering(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(31)
	for trial := 0; trial < 300; trial++ {
		src := r.Intn(g.Nodes())
		dst := r.Intn(g.Nodes())
		if src == dst {
			continue
		}
		m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
		NegativeFirst{}.Init(g, m)
		cur := src
		var cands []Candidate
		seenPositive := false
		for !m.Arrived() {
			cands = NegativeFirst{}.Candidates(g, m, cur, cands[:0])
			c := cands[r.Intn(len(cands))]
			if c.Dir == topology.Plus {
				seenPositive = true
			} else if seenPositive {
				t.Fatalf("negative hop after a positive one")
			}
			m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			cur = g.Neighbor(cur, c.Dim, c.Dir)
		}
	}
}
