package routing

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

func TestECubeLanesNumVCs(t *testing.T) {
	torus := topology.NewTorus(16, 2)
	mesh := topology.NewMesh(16, 2)
	if got := (ECubeLanes{Lanes: 2}).NumVCs(torus); got != 4 {
		t.Errorf("2-lane torus VCs = %d, want 4", got)
	}
	if got := (ECubeLanes{Lanes: 4}).NumVCs(torus); got != 8 {
		t.Errorf("4-lane torus VCs = %d, want 8", got)
	}
	if got := (ECubeLanes{Lanes: 2}).NumVCs(mesh); got != 2 {
		t.Errorf("2-lane mesh VCs = %d, want 2", got)
	}
	if (ECubeLanes{Lanes: 0}).Compatible(torus) == nil {
		t.Error("0 lanes accepted")
	}
	if (ECubeLanes{Lanes: 2}).Name() != "ecube2x" {
		t.Errorf("name %q", ECubeLanes{Lanes: 2}.Name())
	}
}

func TestECubeLanesSamePhysicalPathAsECube(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(23)
	e := ECubeLanes{Lanes: 2}
	for trial := 0; trial < 200; trial++ {
		src := r.Intn(g.Nodes())
		dst := r.Intn(g.Nodes())
		if src == dst {
			continue
		}
		tie := r.Bernoulli(0.5)
		m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return tie })
		ref := message.New(g, 0, src, dst, 16, 0, func(int) bool { return tie })
		cur := src
		var cands, refCands []Candidate
		for !m.Arrived() {
			cands = e.Candidates(g, m, cur, cands[:0])
			refCands = ECube{}.Candidates(g, ref, cur, refCands[:0])
			if len(cands) != 2 {
				t.Fatalf("2 lanes should give 2 candidates, got %v", cands)
			}
			// Every lane candidate matches e-cube's single physical hop.
			for _, c := range cands {
				if c.Dim != refCands[0].Dim || c.Dir != refCands[0].Dir {
					t.Fatalf("lane candidate %v leaves the e-cube path %v", c, refCands[0])
				}
			}
			// Lane classes: {2l + cross}.
			cross := 0
			if m.Crossed[cands[0].Dim] {
				cross = 1
			}
			if cands[0].VC != cross || cands[1].VC != 2+cross {
				t.Fatalf("lane classes %v, want {%d,%d}", cands, cross, 2+cross)
			}
			c := cands[r.Intn(len(cands))]
			m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			ref.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			cur = g.Neighbor(cur, c.Dim, c.Dir)
		}
		if cur != dst {
			t.Fatalf("walk ended at %d", cur)
		}
	}
}
