package routing_test

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

// Example walks the paper's Figure 2 message — (4,4) to (2,2) in a 6-ary
// 2-cube — under the negative-hop scheme and prints the virtual-channel
// class offered at each node of the chosen path.
func Example() {
	g := topology.NewTorus(6, 2)
	alg, _ := routing.Get("nhop")
	m := message.New(g, 0, g.ID([]int{4, 4}), g.ID([]int{2, 2}), 16, 0, nil)
	alg.Init(g, m)

	path := [][2]int{{4, 4}, {3, 4}, {3, 3}, {2, 3}}
	for _, at := range path {
		node := g.ID(at[:])
		cands := alg.Candidates(g, m, node, nil)
		// All candidates share one class under nhop; take the first that
		// matches the next step of Figure 2's path.
		c := cands[0]
		fmt.Printf("at (%d,%d): class c%d\n", at[0], at[1], c.VC)
		// Advance along dimension 0 first, then 1, alternating as in the
		// figure: pick whichever candidate matches the walked path.
		var dim int
		if at[0] != 2 && (at[1] == 4 && at[0] == 4 || at[1] == 3 && at[0] == 3) {
			dim = 0
		} else {
			dim = 1
		}
		for _, cc := range cands {
			if cc.Dim == dim {
				c = cc
			}
		}
		m.Advance(g, c.Dim, c.Dir, g.Coord(node, c.Dim), g.Parity(node))
	}
	// Output:
	// at (4,4): class c0
	// at (3,4): class c0
	// at (3,3): class c1
	// at (2,3): class c1
}

func ExampleGet() {
	alg, _ := routing.Get("phop")
	g := topology.NewTorus(16, 2)
	fmt.Println(alg.Name(), "needs", alg.NumVCs(g), "virtual channels; fully adaptive:", alg.FullyAdaptive())
	// Output:
	// phop needs 17 virtual channels; fully adaptive: true
}

func ExampleNames() {
	fmt.Println(routing.Names())
	// Output:
	// [2pn 2pnsrc ecube ecube2x ecube4x nbc negfirst nhop nlast phop wfirst]
}
