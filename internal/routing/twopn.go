package routing

import (
	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// TwoPowerN is the fully adaptive "2pn" scheme of the paper (sec. 2.2),
// derived from the work of Dally, Felperin et al. and Linder & Harden: each
// physical channel carries 2^n virtual channels, one per n-bit tag. The tag
// of a message is recomputed at every node from eq. (1):
//
//	t_i = 1 if x_i < d_i,  0 if x_i > d_i,  0 or 1 (free) if x_i = d_i
//
// where x is the *current* node and d the destination. Recomputing from the
// current node is what makes the scheme deadlock-free on tori: a header that
// crosses a wraparound link flips its bit in that dimension, so no tag class
// contains a complete ring cycle. Corrected dimensions leave their bit free,
// so a message may choose any tag consistent with the fixed bits; each
// admissible (dimension, direction) pair is offered on every consistent tag.
//
// For a 16-ary 2-cube this costs only four virtual channels per physical
// channel — the cheapest fully adaptive algorithm in the study, and the one
// the paper shows losing to plain e-cube under uniform and hotspot traffic.
type TwoPowerN struct{ noAlloc }

// Name returns "2pn".
func (TwoPowerN) Name() string { return "2pn" }

// FullyAdaptive returns true.
func (TwoPowerN) FullyAdaptive() bool { return true }

// NumVCs returns 2^n on a torus and 2^(n-1) on a mesh (the paper: "2^n
// (respectively, 2^(n-1)) virtual channels per physical channel of a k-ary
// n-cube (respectively, mesh)"): on a mesh, dimension 0 needs no tag bit —
// with the other dimensions' directions pinned by their bits, dimension-0
// channels cannot close a cycle (Dally's mesh result).
func (TwoPowerN) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return 1 << g.N()
	}
	return 1 << (g.N() - 1)
}

// Compatible always returns nil.
func (TwoPowerN) Compatible(*topology.Grid) error { return nil }

// tagBits returns the forced tag bits at node and a mask of the free
// (corrected, equal-coordinate) bit positions. On a torus every dimension
// contributes a bit; on a mesh dimension 0 is skipped and dimension i maps
// to bit i-1.
func tagBits(g *topology.Grid, m *message.Message, node int) (forced, freeMask int) {
	lo := 0
	if !g.Wrap() {
		lo = 1
	}
	for dim := lo; dim < g.N(); dim++ {
		x := g.Coord(node, dim)
		d := g.Coord(m.Dst, dim)
		switch {
		case x < d:
			forced |= 1 << (dim - lo)
		case x == d:
			freeMask |= 1 << (dim - lo)
		}
	}
	return forced, freeMask
}

// Init assigns the congestion class from the virtual-channel number the
// message can use: its source tag with free bits zero.
func (TwoPowerN) Init(g *topology.Grid, m *message.Message) {
	forced, _ := tagBits(g, m, m.Src)
	m.Class = forced
}

// Candidates offers every uncorrected dimension on every tag consistent
// with eq. (1) at the current node.
func (TwoPowerN) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	forced, freeMask := tagBits(g, m, node)
	// Enumerate the subsets of freeMask; each yields one consistent tag.
	sub := 0
	for {
		tag := forced | sub
		for dim := 0; dim < g.N(); dim++ {
			if dir, ok := m.DirInDim(dim); ok {
				dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: tag})
			}
		}
		if sub == freeMask {
			break
		}
		sub = (sub - freeMask) & freeMask
	}
	return dst
}
