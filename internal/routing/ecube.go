package routing

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// ECube is the well-known non-adaptive dimension-order routing algorithm: a
// message fully corrects dimension 0, then dimension 1, and so on. On a
// torus each ring is made deadlock-free with the Dally–Seitz dateline
// discipline: two virtual-channel classes per physical channel, class 0
// until the header crosses the ring's wraparound link, class 1 after. On a
// mesh a single class suffices.
type ECube struct{ noAlloc }

// Name returns "ecube".
func (ECube) Name() string { return "ecube" }

// FullyAdaptive returns false: e-cube admits exactly one path.
func (ECube) FullyAdaptive() bool { return false }

// NumVCs returns 2 on a torus (dateline classes) and 1 on a mesh.
func (ECube) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return 2
	}
	return 1
}

// Compatible always returns nil: e-cube works on any grid.
func (ECube) Compatible(*topology.Grid) error { return nil }

// Init assigns the congestion class from the single virtual channel the
// message will use first: its first-hop (dim, dir) pair (class 0 on that
// channel, since no dateline has been crossed at the source).
func (ECube) Init(g *topology.Grid, m *message.Message) {
	for dim := 0; dim < g.N(); dim++ {
		if dir, ok := m.DirInDim(dim); ok {
			m.Class = dim<<1 | int(dir)
			return
		}
	}
}

// Candidates returns the single admissible hop: the lowest uncorrected
// dimension, in its minimal direction, on the dateline class.
func (ECube) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	for dim := 0; dim < g.N(); dim++ {
		dir, ok := m.DirInDim(dim)
		if !ok {
			continue
		}
		vc := 0
		if g.Wrap() && m.Crossed[dim] {
			vc = 1
		}
		return append(dst, Candidate{Dim: dim, Dir: dir, VC: vc})
	}
	panic(fmt.Sprintf("routing: ecube candidates for arrived %v", m))
}
