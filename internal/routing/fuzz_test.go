package routing

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

// fuzzGrids is a fixed palette of small grids; the fuzzer selects one by
// index so every interesting shape (torus/mesh, even/odd radix, 1-3
// dimensions) is reachable from a compact input.
var fuzzGrids = []*topology.Grid{
	topology.NewTorus(4, 2),
	topology.NewTorus(6, 2),
	topology.NewTorus(5, 2),
	topology.NewMesh(4, 2),
	topology.NewMesh(5, 2),
	topology.NewTorus(4, 3),
	topology.NewMesh(3, 3),
	topology.NewTorus(8, 1),
}

// FuzzRouteStep drives one message along a random admissible walk under a
// fuzzer-chosen algorithm, grid and pair, asserting the core routing
// contract at every step: candidates are nonempty (no dead ends), minimal,
// on existing channels and within the virtual-channel bound, and the walk
// terminates at the destination in exactly the minimal hop count.
func FuzzRouteStep(f *testing.F) {
	names := Names()
	f.Add(uint8(0), uint8(0), uint16(0), uint16(5), uint64(1))
	f.Add(uint8(3), uint8(1), uint16(7), uint16(20), uint64(42))
	f.Add(uint8(5), uint8(4), uint16(1), uint16(23), uint64(7))
	f.Add(uint8(9), uint8(7), uint16(0), uint16(4), uint64(99))
	f.Fuzz(func(t *testing.T, algRaw, gridRaw uint8, srcRaw, dstRaw uint16, seed uint64) {
		name := names[int(algRaw)%len(names)]
		g := fuzzGrids[int(gridRaw)%len(fuzzGrids)]
		a, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Compatible(g) != nil {
			t.Skip("algorithm not defined on this grid")
		}
		src := int(srcRaw) % g.Nodes()
		dst := int(dstRaw) % g.Nodes()
		if src == dst {
			t.Skip("no routing for src == dst")
		}
		numVC := a.NumVCs(g)
		r := rng.New(seed)
		m := message.New(g, 0, src, dst, 4, 0, func(int) bool { return r.Bernoulli(0.5) })
		a.Init(g, m)
		cur := src
		var cands []Candidate
		for steps := 0; !m.Arrived(); steps++ {
			if steps > m.HopsTotal {
				t.Fatalf("%s on %v: %v exceeded minimal hop count at %d", name, g, m, cur)
			}
			cands = a.Candidates(g, m, cur, cands[:0])
			if len(cands) == 0 {
				t.Fatalf("%s on %v: dead end for %v at %d", name, g, m, cur)
			}
			for _, c := range cands {
				if c.VC < 0 || c.VC >= numVC {
					t.Fatalf("%s on %v: candidate %v class out of [0,%d)", name, g, c, numVC)
				}
				if dir, ok := m.DirInDim(c.Dim); !ok || dir != c.Dir {
					t.Fatalf("%s on %v: non-minimal candidate %v for %v at %d", name, g, c, m, cur)
				}
				if !g.HasChannel(cur, c.Dim, c.Dir) {
					t.Fatalf("%s on %v: candidate %v uses missing channel at %d", name, g, c, cur)
				}
			}
			c := cands[r.Intn(len(cands))]
			a.Allocated(g, m, cur, c)
			m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			cur = g.Neighbor(cur, c.Dim, c.Dir)
		}
		if cur != dst {
			t.Fatalf("%s on %v: walk %d->%d ended at %d", name, g, src, dst, cur)
		}
	})
}
