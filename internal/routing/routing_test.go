package routing

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/topology"
)

func node(g *topology.Grid, x, y int) int { return g.ID([]int{x, y}) }

func TestRegistry(t *testing.T) {
	for _, name := range []string{"ecube", "nlast", "2pn", "2pnsrc", "phop", "nhop", "nbc"} {
		a, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("Get(bogus) succeeded")
	}
	names := Names()
	if len(names) != 11 {
		t.Errorf("Names() = %v, want 11 algorithms (6 paper + 2pnsrc + ecube2x/4x + wfirst/negfirst)", names)
	}
	if len(All()) != 6 {
		t.Errorf("All() should list the paper's six algorithms, got %d", len(All()))
	}
}

func TestNumVCsMatchesPaper(t *testing.T) {
	torus := topology.NewTorus(16, 2)
	mesh := topology.NewMesh(16, 2)
	cases := []struct {
		alg        string
		torus, msh int
	}{
		{"phop", 17, 31}, // n*floor(k/2)+1 = 17 (paper); mesh diameter 30 + 1
		{"nhop", 9, 16},  // ceil(16/2)+1 = 9 (paper); mesh ceil(30/2)+1 = 16
		{"nbc", 9, 16},
		{"2pn", 4, 2}, // 2^n torus, 2^(n-1) mesh (paper sec 2.2)
		{"2pnsrc", 4, 2},
		{"ecube", 2, 1},
		{"nlast", 3, 1},
	}
	for _, tc := range cases {
		a, _ := Get(tc.alg)
		if got := a.NumVCs(torus); got != tc.torus {
			t.Errorf("%s on 16^2 torus: %d VCs, want %d", tc.alg, got, tc.torus)
		}
		if got := a.NumVCs(mesh); got != tc.msh {
			t.Errorf("%s on 16^2 mesh: %d VCs, want %d", tc.alg, got, tc.msh)
		}
	}
}

func TestCompatibility(t *testing.T) {
	odd := topology.NewTorus(5, 2)
	for _, name := range []string{"nhop", "nbc"} {
		a, _ := Get(name)
		if err := a.Compatible(odd); err == nil {
			t.Errorf("%s should reject an odd-radix torus", name)
		}
		if err := a.Compatible(topology.NewMesh(5, 2)); err != nil {
			t.Errorf("%s should accept a mesh: %v", name, err)
		}
	}
	for _, name := range []string{"ecube", "nlast", "2pn", "phop"} {
		a, _ := Get(name)
		if err := a.Compatible(odd); err != nil {
			t.Errorf("%s should accept an odd torus: %v", name, err)
		}
	}
	// The 2-D turn-model algorithms reject other dimensionalities (the cdg
	// analyzer exhibits rectangle cycles among the unrestricted dimensions
	// at n >= 3).
	threeD := topology.NewTorus(4, 3)
	oneD := topology.NewTorus(8, 1)
	for _, name := range []string{"nlast", "wfirst"} {
		a, _ := Get(name)
		if err := a.Compatible(threeD); err == nil {
			t.Errorf("%s should reject a 3-D grid", name)
		}
		if err := a.Compatible(oneD); err == nil {
			t.Errorf("%s should reject a 1-D grid", name)
		}
	}
	if err := (NegativeFirst{}).Compatible(threeD); err != nil {
		t.Errorf("negfirst should accept 3-D grids: %v", err)
	}
}

func TestFullyAdaptiveFlags(t *testing.T) {
	want := map[string]bool{
		"ecube": false, "nlast": false,
		"2pn": true, "2pnsrc": true, "phop": true, "nhop": true, "nbc": true,
	}
	for name, fa := range want {
		a, _ := Get(name)
		if a.FullyAdaptive() != fa {
			t.Errorf("%s.FullyAdaptive() = %v, want %v", name, a.FullyAdaptive(), fa)
		}
	}
}

// walkPath drives m along the given coordinate path, returning the VC class
// the algorithm offers for each hop (requiring all candidates of the hop's
// chosen (dim,dir) to agree unless pick is provided).
func walkPath(t *testing.T, g *topology.Grid, a Algorithm, m *message.Message, path [][2]int) []int {
	t.Helper()
	var classes []int
	for i := 0; i+1 < len(path); i++ {
		from := node(g, path[i][0], path[i][1])
		to := node(g, path[i+1][0], path[i+1][1])
		var cands []Candidate
		cands = a.Candidates(g, m, from, cands)
		// Find the candidate matching the desired hop.
		var dim = -1
		var dir topology.Dir
		for d := 0; d < g.N(); d++ {
			for _, dd := range []topology.Dir{topology.Plus, topology.Minus} {
				if g.Neighbor(from, d, dd) == to {
					dim, dir = d, dd
				}
			}
		}
		if dim < 0 {
			t.Fatalf("path step %d: %v and %v not adjacent", i, path[i], path[i+1])
		}
		found := -1
		for _, c := range cands {
			if c.Dim == dim && c.Dir == dir {
				found = c.VC
				break
			}
		}
		if found < 0 {
			t.Fatalf("path step %d: hop d%d%v not among candidates %v", i, dim, dir, cands)
		}
		a.Allocated(g, m, from, Candidate{Dim: dim, Dir: dir, VC: found})
		classes = append(classes, found)
		m.Advance(g, dim, dir, g.Coord(from, dim), g.Parity(from))
	}
	return classes
}

// TestFigure2NegativeHop reproduces the paper's Figure 2 worked example: in
// a 6-ary 2-cube, a message from (4,4) to (2,2) following the path
// (4,4)->(3,4)->(3,3)->(2,3)->(2,2) reserves classes c0, c0, c1, c1.
func TestFigure2NegativeHop(t *testing.T) {
	g := topology.NewTorus(6, 2)
	m := message.New(g, 0, node(g, 4, 4), node(g, 2, 2), 16, 0, nil)
	NegativeHop{}.Init(g, m)
	classes := walkPath(t, g, NegativeHop{}, m, [][2]int{{4, 4}, {3, 4}, {3, 3}, {2, 3}, {2, 2}})
	want := []int{0, 0, 1, 1}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("nhop classes = %v, want %v (paper Figure 2)", classes, want)
		}
	}
}

// TestFigure2PositiveHop reproduces the paper's phop example on the same
// path: classes c0, c1, c2, c3.
func TestFigure2PositiveHop(t *testing.T) {
	g := topology.NewTorus(6, 2)
	m := message.New(g, 0, node(g, 4, 4), node(g, 2, 2), 16, 0, nil)
	PositiveHop{}.Init(g, m)
	classes := walkPath(t, g, PositiveHop{}, m, [][2]int{{4, 4}, {3, 4}, {3, 3}, {2, 3}, {2, 2}})
	want := []int{0, 1, 2, 3}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("phop classes = %v, want %v (paper sec. 2.1)", classes, want)
		}
	}
}

// randomWalk drives a message over a random admissible path, returning the
// chosen classes. It checks candidates are minimal and within VC bounds.
func randomWalk(t *testing.T, g *topology.Grid, a Algorithm, src, dst int, r *rng.Stream) []int {
	t.Helper()
	m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
	a.Init(g, m)
	cur := src
	var classes []int
	var cands []Candidate
	numVC := a.NumVCs(g)
	for !m.Arrived() {
		cands = a.Candidates(g, m, cur, cands[:0])
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates for %v at %d", a.Name(), m, cur)
		}
		for _, c := range cands {
			if c.VC < 0 || c.VC >= numVC {
				t.Fatalf("%s: candidate class %d out of [0,%d)", a.Name(), c.VC, numVC)
			}
			if dir, ok := m.DirInDim(c.Dim); !ok || dir != c.Dir {
				t.Fatalf("%s: non-minimal candidate %v for %v", a.Name(), c, m)
			}
			if !g.HasChannel(cur, c.Dim, c.Dir) {
				t.Fatalf("%s: candidate %v uses a missing channel", a.Name(), c)
			}
		}
		c := cands[r.Intn(len(cands))]
		a.Allocated(g, m, cur, c)
		classes = append(classes, c.VC)
		m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
		cur = g.Neighbor(cur, c.Dim, c.Dir)
	}
	if cur != dst {
		t.Fatalf("%s: walk from %d ended at %d, want %d", a.Name(), src, cur, dst)
	}
	if m.HopsTaken != m.HopsTotal {
		t.Fatalf("%s: took %d hops, minimal is %d", a.Name(), m.HopsTaken, m.HopsTotal)
	}
	return classes
}

// TestRankMonotonicity checks the Lemma 1 precondition on every algorithm's
// class sequence along random walks: phop strictly increasing; nhop/nbc and
// nlast (wrap count) non-decreasing; ecube non-decreasing per dimension
// (witnessed by its global sequence within each dimension's run).
func TestRankMonotonicity(t *testing.T) {
	for _, topo := range []*topology.Grid{topology.NewTorus(16, 2), topology.NewMesh(8, 2), topology.NewTorus(4, 3)} {
		r := rng.New(7)
		for _, name := range []string{"phop", "nhop", "nbc", "nlast"} {
			a, _ := Get(name)
			if a.Compatible(topo) != nil {
				continue
			}
			for trial := 0; trial < 300; trial++ {
				src := r.Intn(topo.Nodes())
				dst := r.Intn(topo.Nodes())
				if src == dst {
					continue
				}
				classes := randomWalk(t, topo, a, src, dst, r)
				for i := 1; i < len(classes); i++ {
					switch name {
					case "phop":
						if classes[i] != classes[i-1]+1 {
							t.Fatalf("%s on %v: classes %v not strictly increasing by 1", name, topo, classes)
						}
					default:
						if classes[i] < classes[i-1] {
							t.Fatalf("%s on %v: classes %v decreased", name, topo, classes)
						}
					}
				}
			}
		}
	}
}

// TestNhopClassEqualsNegHops: the class of each hop equals the number of
// negative hops taken before it.
func TestNhopClassEqualsNegHops(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		src := r.Intn(g.Nodes())
		dst := r.Intn(g.Nodes())
		if src == dst {
			continue
		}
		m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
		NegativeHop{}.Init(g, m)
		cur := src
		var cands []Candidate
		for !m.Arrived() {
			cands = NegativeHop{}.Candidates(g, m, cur, cands[:0])
			for _, c := range cands {
				if c.VC != m.NegHops {
					t.Fatalf("nhop candidate class %d != NegHops %d", c.VC, m.NegHops)
				}
			}
			c := cands[r.Intn(len(cands))]
			m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			cur = g.Neighbor(cur, c.Dim, c.Dir)
		}
	}
}

// TestNbcBonusFormula checks the paper's bonus-card formula and that the
// top class used never exceeds the scheme's class count.
func TestNbcBonusFormula(t *testing.T) {
	g := topology.NewTorus(16, 2)
	b := BonusCards{}
	// A diametrically opposite pair needs the full 8 negative hops -> 0
	// bonus cards.
	m := message.New(g, 0, node(g, 0, 0), node(g, 8, 8), 16, 0, func(int) bool { return true })
	if got := b.Bonus(g, m); got != 0 {
		t.Errorf("diameter message bonus = %d, want 0", got)
	}
	// A single-hop message from an even node takes 0 negative hops -> 8.
	m2 := message.New(g, 0, node(g, 0, 0), node(g, 1, 0), 16, 0, nil)
	if got := b.Bonus(g, m2); got != 8 {
		t.Errorf("1-hop even-source bonus = %d, want 8", got)
	}
	// A single-hop message from an odd node takes 1 negative hop -> 7.
	m3 := message.New(g, 0, node(g, 1, 0), node(g, 2, 0), 16, 0, nil)
	if got := b.Bonus(g, m3); got != 7 {
		t.Errorf("1-hop odd-source bonus = %d, want 7", got)
	}
}

// TestNbcClassBound: along any path the class stays within [0, maxNeg] and
// equals BonusStart + NegHops after the first hop.
func TestNbcClassBound(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(11)
	maxClass := g.MaxNegativeHops()
	for trial := 0; trial < 300; trial++ {
		src := r.Intn(g.Nodes())
		dst := r.Intn(g.Nodes())
		if src == dst {
			continue
		}
		classes := randomWalk(t, g, BonusCards{}, src, dst, r)
		for _, c := range classes {
			if c < 0 || c > maxClass {
				t.Fatalf("nbc class %d out of [0,%d]: %v", c, maxClass, classes)
			}
		}
	}
}

// TestNbcFirstHopSpread: the first hop of a short message offers every
// class up to the bonus count.
func TestNbcFirstHopSpread(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := message.New(g, 0, node(g, 0, 0), node(g, 1, 0), 16, 0, nil)
	b := BonusCards{}
	b.Init(g, m)
	var cands []Candidate
	cands = b.Candidates(g, m, m.Src, cands)
	seen := map[int]bool{}
	for _, c := range cands {
		seen[c.VC] = true
	}
	for vc := 0; vc <= 8; vc++ {
		if !seen[vc] {
			t.Errorf("first hop missing class %d (bonus should allow 0..8)", vc)
		}
	}
	// And Allocated latches the start class.
	b.Allocated(g, m, m.Src, Candidate{Dim: 0, Dir: topology.Plus, VC: 5})
	if m.BonusStart != 5 {
		t.Errorf("BonusStart = %d, want 5", m.BonusStart)
	}
}

func TestECubeSinglePathDimensionOrder(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		src := r.Intn(g.Nodes())
		dst := r.Intn(g.Nodes())
		if src == dst {
			continue
		}
		m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
		ECube{}.Init(g, m)
		cur := src
		var cands []Candidate
		lastDim := -1
		for !m.Arrived() {
			cands = ECube{}.Candidates(g, m, cur, cands[:0])
			if len(cands) != 1 {
				t.Fatalf("ecube offered %d candidates, want exactly 1", len(cands))
			}
			c := cands[0]
			if c.Dim < lastDim {
				t.Fatalf("ecube went back to dimension %d after %d", c.Dim, lastDim)
			}
			lastDim = c.Dim
			m.Advance(g, c.Dim, c.Dir, g.Coord(cur, c.Dim), g.Parity(cur))
			cur = g.Neighbor(cur, c.Dim, c.Dir)
		}
		if cur != dst {
			t.Fatalf("ecube walk ended at %d, want %d", cur, dst)
		}
	}
}

func TestECubeDatelineClasses(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Message wrapping in x: vc0 until the dateline, vc1 after.
	m := message.New(g, 0, node(g, 14, 0), node(g, 2, 0), 16, 0, nil)
	ECube{}.Init(g, m)
	classes := walkPath(t, g, ECube{}, m, [][2]int{{14, 0}, {15, 0}, {0, 0}, {1, 0}, {2, 0}})
	want := []int{0, 0, 1, 1}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("ecube dateline classes = %v, want %v", classes, want)
		}
	}
	// On a mesh everything is class 0.
	mesh := topology.NewMesh(16, 2)
	mm := message.New(mesh, 0, mesh.ID([]int{0, 0}), mesh.ID([]int{3, 0}), 16, 0, nil)
	var cands []Candidate
	cands = ECube{}.Candidates(mesh, mm, mm.Src, cands)
	if cands[0].VC != 0 {
		t.Errorf("mesh ecube class = %d, want 0", cands[0].VC)
	}
}

// TestNorthLastRestriction checks the defining property: a message that
// must travel north (Minus in the highest dimension) has no dimension-1
// candidates until every other dimension is corrected, and once heading
// north it continues north only — while south-bound messages are fully
// adaptive.
func TestNorthLastRestriction(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Paper example (sec 2.3): (3,3) -> (1,1) in a 10^2 grid with (0,0) the
	// upper-left node: the path must correct dimension 0 first. Here: needs
	// -2 in both dims; north = Minus in dim 1.
	m := message.New(g, 0, node(g, 3, 3), node(g, 1, 1), 16, 0, nil)
	NorthLast{}.Init(g, m)
	var cands []Candidate
	cands = NorthLast{}.Candidates(g, m, node(g, 3, 3), cands)
	for _, c := range cands {
		if c.Dim == 1 {
			t.Fatalf("north-bound message offered a dim-1 hop before dim 0 corrected: %v", cands)
		}
	}
	// After correcting dim 0, only north remains.
	m2 := message.New(g, 0, node(g, 1, 3), node(g, 1, 1), 16, 0, nil)
	cands = NorthLast{}.Candidates(g, m2, node(g, 1, 3), cands[:0])
	if len(cands) != 1 || cands[0].Dim != 1 || cands[0].Dir != topology.Minus {
		t.Fatalf("corrected message should go north only, got %v", cands)
	}
	// South-bound messages are adaptive in both dims.
	m3 := message.New(g, 0, node(g, 3, 3), node(g, 5, 5), 16, 0, nil)
	cands = NorthLast{}.Candidates(g, m3, node(g, 3, 3), cands[:0])
	if len(cands) != 2 {
		t.Fatalf("south-bound message should have 2 candidates, got %v", cands)
	}
}

// TestNorthLastWrapClasses: classes count dateline crossings across all
// dimensions.
func TestNorthLastWrapClasses(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// (15,15) -> (1,1): +2 in both dims, crossing both datelines.
	m := message.New(g, 0, node(g, 15, 15), node(g, 1, 1), 16, 0, nil)
	NorthLast{}.Init(g, m)
	classes := walkPath(t, g, NorthLast{}, m, [][2]int{{15, 15}, {0, 15}, {0, 0}, {1, 0}, {1, 1}})
	want := []int{0, 1, 2, 2}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("nlast wrap classes = %v, want %v", classes, want)
		}
	}
}

// TestTwoPowerNTagMatchesEquationOne checks eq. (1) at the current node,
// including the free bits of corrected dimensions.
func TestTwoPowerNTagMatchesEquationOne(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// Both dims uncorrected, x: 2<5 -> bit0=1; y: 9>4 -> bit1=0. Tag = 01.
	m := message.New(g, 0, node(g, 2, 9), node(g, 5, 4), 16, 0, nil)
	var cands []Candidate
	cands = TwoPowerN{}.Candidates(g, m, node(g, 2, 9), cands)
	if len(cands) != 2 {
		t.Fatalf("two uncorrected dims: want 2 candidates, got %v", cands)
	}
	for _, c := range cands {
		if c.VC != 1 {
			t.Fatalf("tag should be 0b01 = 1, got %v", cands)
		}
	}
	// One corrected dim: free bit doubles the tag set.
	m2 := message.New(g, 0, node(g, 2, 4), node(g, 5, 4), 16, 0, nil)
	cands = TwoPowerN{}.Candidates(g, m2, node(g, 2, 4), cands[:0])
	if len(cands) != 2 {
		t.Fatalf("corrected dim should offer the free bit: got %v", cands)
	}
	seen := map[int]bool{}
	for _, c := range cands {
		if c.Dim != 0 {
			t.Fatalf("only dim 0 should be offered, got %v", cands)
		}
		seen[c.VC] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("want tags {1,3} (bit0 forced 1, bit1 free), got %v", cands)
	}
}

// TestTwoPowerNTagFlipsAtWrap: crossing a wraparound link flips the bit
// (the property that breaks ring cycles).
func TestTwoPowerNTagFlipsAtWrap(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := message.New(g, 0, node(g, 14, 9), node(g, 2, 9), 16, 0, nil) // wraps +x
	var cands []Candidate
	// At col 14: 14 > 2 -> bit0 = 0.
	cands = TwoPowerN{}.Candidates(g, m, node(g, 14, 9), cands)
	forced := cands[0].VC & 1
	if forced != 0 {
		t.Fatalf("before wrap: bit0 = %d, want 0", forced)
	}
	m.Advance(g, 0, topology.Plus, 14, g.Parity(node(g, 14, 9)))
	m.Advance(g, 0, topology.Plus, 15, g.Parity(node(g, 15, 9)))
	// Now at col 0: 0 < 2 -> bit0 = 1.
	cands = TwoPowerN{}.Candidates(g, m, node(g, 0, 9), cands[:0])
	if cands[0].VC&1 != 1 {
		t.Fatalf("after wrap: bit0 = %d, want 1", cands[0].VC&1)
	}
}

// TestTwoPowerNSourceTagFixed: the source variant keeps its tag for the
// whole journey.
func TestTwoPowerNSourceTagFixed(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := message.New(g, 0, node(g, 14, 9), node(g, 2, 9), 16, 0, nil)
	TwoPowerNSource{}.Init(g, m)
	if m.TagForced&1 != 0 { // 14 > 2 at the source
		t.Fatalf("source tag bit0 = %d, want 0", m.TagForced&1)
	}
	m.Advance(g, 0, topology.Plus, 14, 0)
	m.Advance(g, 0, topology.Plus, 15, 1)
	var cands []Candidate
	cands = TwoPowerNSource{}.Candidates(g, m, node(g, 0, 9), cands)
	for _, c := range cands {
		if c.VC&1 != 0 {
			t.Fatalf("source-tag variant changed its tag after the wrap: %v", cands)
		}
	}
}

// TestFullAdaptivityReachesAllMinimalNeighbours: fully adaptive algorithms
// must offer every uncorrected dimension at every step.
func TestFullAdaptivityReachesAllMinimalNeighbours(t *testing.T) {
	g := topology.NewTorus(16, 2)
	r := rng.New(17)
	for _, name := range []string{"phop", "nhop", "nbc", "2pn", "2pnsrc"} {
		a, _ := Get(name)
		for trial := 0; trial < 200; trial++ {
			src := r.Intn(g.Nodes())
			dst := r.Intn(g.Nodes())
			if src == dst {
				continue
			}
			m := message.New(g, 0, src, dst, 16, 0, func(int) bool { return r.Bernoulli(0.5) })
			a.Init(g, m)
			var cands []Candidate
			cands = a.Candidates(g, m, src, cands)
			dims := map[int]bool{}
			for _, c := range cands {
				dims[c.Dim] = true
			}
			want := 0
			for dim := 0; dim < g.N(); dim++ {
				if m.Remaining[dim] != 0 {
					want++
				}
			}
			if len(dims) != want {
				t.Fatalf("%s offers dims %v, want all %d uncorrected", name, dims, want)
			}
		}
	}
}

func TestCongestionClasses(t *testing.T) {
	g := topology.NewTorus(16, 2)
	// phop/nhop: single class 0.
	for _, name := range []string{"phop", "nhop"} {
		a, _ := Get(name)
		m := message.New(g, 0, node(g, 0, 0), node(g, 5, 5), 16, 0, nil)
		a.Init(g, m)
		if m.Class != 0 {
			t.Errorf("%s class = %d, want 0", name, m.Class)
		}
	}
	// nbc: class = bonus count.
	m := message.New(g, 0, node(g, 0, 0), node(g, 1, 0), 16, 0, nil)
	BonusCards{}.Init(g, m)
	if m.Class != 8 {
		t.Errorf("nbc class = %d, want 8 (its bonus)", m.Class)
	}
	// 2pn: class = forced tag.
	m2 := message.New(g, 0, node(g, 2, 9), node(g, 5, 4), 16, 0, nil)
	TwoPowerN{}.Init(g, m2)
	if m2.Class != 1 {
		t.Errorf("2pn class = %d, want 1", m2.Class)
	}
	// ecube: first-hop (dim,dir).
	m3 := message.New(g, 0, node(g, 3, 3), node(g, 1, 1), 16, 0, nil)
	ECube{}.Init(g, m3)
	if m3.Class != 0<<1|int(topology.Minus) {
		t.Errorf("ecube class = %d, want dim0/minus", m3.Class)
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Dim: 1, Dir: topology.Plus, VC: 3}
	if c.String() != "d1+ vc3" {
		t.Errorf("Candidate.String() = %q", c.String())
	}
}

func TestPolicies(t *testing.T) {
	r := rng.New(19)
	cands := []Candidate{{VC: 0}, {VC: 1}, {VC: 2}}
	scores := []int{5, 1, 5}

	if got := (FirstFreePolicy{}).Select(cands, scores, r); got != 0 {
		t.Errorf("first policy picked %d", got)
	}
	if got := (LeastCongestedPolicy{}).Select(cands, scores, r); got != 1 {
		t.Errorf("least-congested picked %d, want 1", got)
	}
	// Random covers all indices eventually.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[(RandomPolicy{}).Select(cands, scores, r)] = true
	}
	if len(seen) != 3 {
		t.Errorf("random policy only hit %v", seen)
	}
	// Least-congested breaks ties over both minima.
	tie := []int{2, 7, 2}
	seen = map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[(LeastCongestedPolicy{}).Select(cands, tie, r)] = true
	}
	if !seen[0] || !seen[2] || seen[1] {
		t.Errorf("tie break hit %v, want {0,2}", seen)
	}
}

func TestGetPolicy(t *testing.T) {
	for _, name := range []string{"random", "first", "leastcongested", ""} {
		if _, err := GetPolicy(name); err != nil {
			t.Errorf("GetPolicy(%q): %v", name, err)
		}
	}
	if _, err := GetPolicy("nope"); err == nil {
		t.Error("GetPolicy(nope) succeeded")
	}
}
