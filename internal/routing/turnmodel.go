package routing

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// This file holds the other members of Glass & Ni's turn-model family the
// paper references (sec. 2.3 notes north-last is "a member of many
// partially-adaptive algorithms proposed by Glass and Ni"): west-first and
// negative-first. They are extensions beyond the paper's six algorithms,
// useful for the X-TRANS experiment and for comparing turn restrictions.
// On tori both use the same wrap-count virtual-channel classes as
// NorthLast, for the same reason (see that type's comment).

// WestFirst routes all West hops (Minus in dimension 0) first and
// non-adaptively; afterwards the message is fully adaptive among the
// remaining minimal directions, none of which is West. The prohibited
// turns are the ones into West. Like north-last it is inherently
// two-dimensional (with n >= 3 the unrestricted dimensions form rectangle
// cycles — the cdg analyzer exhibits one), so Compatible rejects n != 2;
// NegativeFirst is the n-dimensional member of the family.
type WestFirst struct{ noAlloc }

func init() {
	register(WestFirst{})
	register(NegativeFirst{})
}

// Name returns "wfirst".
func (WestFirst) Name() string { return "wfirst" }

// FullyAdaptive returns false.
func (WestFirst) FullyAdaptive() bool { return false }

// NumVCs returns n+1 on a torus (wrap-count classes) and 1 on a mesh.
func (WestFirst) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return g.N() + 1
	}
	return 1
}

// Compatible requires a two-dimensional grid (see the type comment).
func (WestFirst) Compatible(g *topology.Grid) error {
	if g.N() != 2 {
		return fmt.Errorf("routing: wfirst is a two-dimensional turn-model algorithm, %v has n=%d (use negfirst)", g, g.N())
	}
	return nil
}

// Init assigns the congestion class from the first candidate's channel.
func (WestFirst) Init(g *topology.Grid, m *message.Message) {
	var buf [8]Candidate
	cands := WestFirst{}.Candidates(g, m, m.Src, buf[:0])
	m.Class = cands[0].Dim<<1 | int(cands[0].Dir)
}

// Candidates returns the single West hop while any West hops remain, then
// every uncorrected dimension.
func (WestFirst) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	vc := 0
	if g.Wrap() {
		vc = wrapCount(m)
	}
	if m.Remaining[0] < 0 {
		return append(dst, Candidate{Dim: 0, Dir: topology.Minus, VC: vc})
	}
	start := len(dst)
	for dim := 0; dim < g.N(); dim++ {
		if dir, ok := m.DirInDim(dim); ok {
			dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: vc})
		}
	}
	if len(dst) == start {
		panic(fmt.Sprintf("routing: wfirst produced no candidates for %v", m))
	}
	return dst
}

// NegativeFirst routes all Minus-direction hops before any Plus-direction
// hop: while negative hops remain the message is adaptive among the
// negative dimensions only, afterwards among the positive ones. The
// prohibited turns are the ones from a positive to a negative direction.
type NegativeFirst struct{ noAlloc }

// Name returns "negfirst".
func (NegativeFirst) Name() string { return "negfirst" }

// FullyAdaptive returns false.
func (NegativeFirst) FullyAdaptive() bool { return false }

// NumVCs returns n+1 on a torus and 1 on a mesh.
func (NegativeFirst) NumVCs(g *topology.Grid) int {
	if g.Wrap() {
		return g.N() + 1
	}
	return 1
}

// Compatible always returns nil.
func (NegativeFirst) Compatible(*topology.Grid) error { return nil }

// Init assigns the congestion class from the first candidate's channel.
func (NegativeFirst) Init(g *topology.Grid, m *message.Message) {
	var buf [8]Candidate
	cands := NegativeFirst{}.Candidates(g, m, m.Src, buf[:0])
	m.Class = cands[0].Dim<<1 | int(cands[0].Dir)
}

// Candidates returns the negative-direction dimensions while any remain,
// then the positive ones.
func (NegativeFirst) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	vc := 0
	if g.Wrap() {
		vc = wrapCount(m)
	}
	start := len(dst)
	for dim := 0; dim < g.N(); dim++ {
		if m.Remaining[dim] < 0 {
			dst = append(dst, Candidate{Dim: dim, Dir: topology.Minus, VC: vc})
		}
	}
	if len(dst) > start {
		return dst
	}
	for dim := 0; dim < g.N(); dim++ {
		if m.Remaining[dim] > 0 {
			dst = append(dst, Candidate{Dim: dim, Dir: topology.Plus, VC: vc})
		}
	}
	if len(dst) == start {
		panic(fmt.Sprintf("routing: negfirst produced no candidates for %v", m))
	}
	return dst
}
