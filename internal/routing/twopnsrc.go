package routing

import (
	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// TwoPowerNSource is the literal reading of the paper's eq. (1): the n-bit
// tag is computed once at the source from s and d and kept for the whole
// journey (free bits where s_i = d_i).
//
// WARNING: on a torus this discipline is NOT deadlock-free. All messages
// travelling around a ring in one direction can share a single tag class,
// so the channel-dependency graph contains ring cycles that no class switch
// breaks, and the network wedges under moderate load. The variant exists to
// test the reproduction hypothesis that the paper's anomalous 2pn result —
// a fully adaptive algorithm losing to plain e-cube under wormhole
// switching but matching nbc under virtual cut-through — is what a
// source-fixed tag produces: wormhole worms lock up in those cycles, while
// cut-through packets park in buffers and rarely complete one. Use
// TwoPowerN (per-hop tag) for the sound algorithm. On meshes both variants
// are deadlock-free.
type TwoPowerNSource struct{ noAlloc }

func init() { register(TwoPowerNSource{}) }

// Name returns "2pnsrc".
func (TwoPowerNSource) Name() string { return "2pnsrc" }

// FullyAdaptive returns true.
func (TwoPowerNSource) FullyAdaptive() bool { return true }

// NumVCs returns 2^n on a torus and 2^(n-1) on a mesh, as for TwoPowerN.
func (TwoPowerNSource) NumVCs(g *topology.Grid) int { return TwoPowerN{}.NumVCs(g) }

// Compatible always returns nil (see the type comment for the torus
// caveat; the simulator's watchdog reports the resulting deadlocks).
func (TwoPowerNSource) Compatible(*topology.Grid) error { return nil }

// Init computes and stores the source tag and uses its forced bits as the
// congestion class.
func (TwoPowerNSource) Init(g *topology.Grid, m *message.Message) {
	m.TagForced, m.TagFree = tagBits(g, m, m.Src)
	m.Class = m.TagForced
}

// Candidates offers every uncorrected dimension on every tag consistent
// with the source-computed bits.
func (TwoPowerNSource) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	sub := 0
	for {
		tag := m.TagForced | sub
		for dim := 0; dim < g.N(); dim++ {
			if dir, ok := m.DirInDim(dim); ok {
				dst = append(dst, Candidate{Dim: dim, Dir: dir, VC: tag})
			}
		}
		if sub == m.TagFree {
			break
		}
		sub = (sub - m.TagFree) & m.TagFree
	}
	return dst
}
