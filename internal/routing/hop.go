package routing

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/topology"
)

// The three hop schemes are fully adaptive wormhole algorithms derived from
// Gopal's store-and-forward buffer-reservation algorithms via the paper's
// Lemma 1: if the store-and-forward scheme is deadlock-free and the buffer
// classes a message occupies have monotonically increasing ranks, giving
// each buffer class its own virtual-channel class yields a deadlock-free
// wormhole algorithm. Hop schemes route any minimal path and use the hop
// counters as priority information, which sec. 3.4 identifies as the reason
// they outperform the purely local 2pn scheme under wormhole switching.

// PositiveHop is the "phop" scheme: a message that has taken i hops reserves
// a virtual channel of class i, so diameter+1 classes are needed (17 for a
// 16-ary 2-cube). Classes strictly increase along a route, satisfying
// Lemma 1 directly.
type PositiveHop struct{ noAlloc }

// Name returns "phop".
func (PositiveHop) Name() string { return "phop" }

// FullyAdaptive returns true.
func (PositiveHop) FullyAdaptive() bool { return true }

// NumVCs returns diameter+1: n*floor(k/2)+1 on a torus.
func (PositiveHop) NumVCs(g *topology.Grid) int { return g.Diameter() + 1 }

// Compatible always returns nil.
func (PositiveHop) Compatible(*topology.Grid) error { return nil }

// Init assigns congestion class 0: every message injects on class 0, the
// virtual-channel number it can use (sec. 3, congestion control).
func (PositiveHop) Init(g *topology.Grid, m *message.Message) { m.Class = 0 }

// Candidates offers every uncorrected dimension on class HopsTaken.
func (PositiveHop) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	start := len(dst)
	dst = uncorrectedDims(g, m, dst)
	for i := start; i < len(dst); i++ {
		dst[i].VC = m.HopsTaken
	}
	return dst
}

// NegativeHop is the "nhop" scheme. Nodes are 2-coloured by coordinate
// parity; a hop out of an odd node is negative. A message that has taken i
// negative hops reserves a virtual channel of class i, so
// ceil(diameter/2)+1 classes are needed (9 for a 16-ary 2-cube). Ranks are
// non-decreasing and the underlying store-and-forward scheme (Gopal) is
// deadlock-free, so Lemma 1 applies.
type NegativeHop struct{ noAlloc }

// Name returns "nhop".
func (NegativeHop) Name() string { return "nhop" }

// FullyAdaptive returns true.
func (NegativeHop) FullyAdaptive() bool { return true }

// NumVCs returns ceil(diameter/2)+1.
func (NegativeHop) NumVCs(g *topology.Grid) int { return g.MaxNegativeHops() + 1 }

// Compatible requires a bipartite grid (even k on a torus); the paper notes
// odd-k designs exist but are involved and leaves them out, as do we.
func (NegativeHop) Compatible(g *topology.Grid) error {
	if !g.Bipartite() {
		return fmt.Errorf("routing: nhop needs a bipartite grid, %v is not (odd-k torus)", g)
	}
	return nil
}

// Init assigns congestion class 0.
func (NegativeHop) Init(g *topology.Grid, m *message.Message) { m.Class = 0 }

// Candidates offers every uncorrected dimension on class NegHops.
func (NegativeHop) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	start := len(dst)
	dst = uncorrectedDims(g, m, dst)
	for i := start; i < len(dst); i++ {
		dst[i].VC = m.NegHops
	}
	return dst
}

// BonusCards is the "nbc" scheme: negative hop with bonus cards. At the
// source a message receives
//
//	b = MaxNegativeHops(grid) − negative hops its route will take
//
// bonus cards and may start on any class 0..b; afterwards it follows the
// nhop discipline relative to its start class (class = start + negative hops
// taken). The wider first-hop choice balances load across virtual-channel
// classes, which the nhop/phop schemes utilize very unevenly (all messages
// start on class 0, only diametrically opposite pairs ever reach the top
// class).
type BonusCards struct{}

// Name returns "nbc".
func (BonusCards) Name() string { return "nbc" }

// FullyAdaptive returns true.
func (BonusCards) FullyAdaptive() bool { return true }

// NumVCs returns ceil(diameter/2)+1, as for nhop.
func (BonusCards) NumVCs(g *topology.Grid) int { return g.MaxNegativeHops() + 1 }

// Compatible requires a bipartite grid, as for nhop.
func (BonusCards) Compatible(g *topology.Grid) error {
	if !g.Bipartite() {
		return fmt.Errorf("routing: nbc needs a bipartite grid, %v is not (odd-k torus)", g)
	}
	return nil
}

// Bonus returns the number of bonus cards m receives at its source.
func (BonusCards) Bonus(g *topology.Grid, m *message.Message) int {
	return g.MaxNegativeHops() - m.NegHopsNeeded(g.Parity(m.Src))
}

// Init assigns the congestion class from the virtual-channel numbers the
// message can use, i.e. its bonus-card count.
func (b BonusCards) Init(g *topology.Grid, m *message.Message) { m.Class = b.Bonus(g, m) }

// Candidates offers, on the first hop, every uncorrected dimension on every
// class 0..bonus; afterwards the nhop rule shifted by the latched start
// class.
func (b BonusCards) Candidates(g *topology.Grid, m *message.Message, node int, dst []Candidate) []Candidate {
	if m.HopsTaken == 0 {
		bonus := b.Bonus(g, m)
		for vc := 0; vc <= bonus; vc++ {
			start := len(dst)
			dst = uncorrectedDims(g, m, dst)
			for i := start; i < len(dst); i++ {
				dst[i].VC = vc
			}
		}
		return dst
	}
	start := len(dst)
	dst = uncorrectedDims(g, m, dst)
	for i := start; i < len(dst); i++ {
		dst[i].VC = m.BonusStart + m.NegHops
	}
	return dst
}

// Allocated latches the class chosen for the first hop as the message's
// start class.
func (BonusCards) Allocated(g *topology.Grid, m *message.Message, node int, c Candidate) {
	if m.HopsTaken == 0 {
		m.BonusStart = c.VC
	}
}
