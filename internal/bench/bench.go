// Package bench is the benchmark-regression harness behind cmd/bench: it
// runs a fixed suite of engine and end-to-end simulation benchmarks in
// process, records the measurements in a schema-versioned JSON artifact
// (BENCH_<n>.json), and compares a new artifact against a previous one with
// a configurable regression threshold.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Schema identifies the artifact layout; bump it on breaking changes so
// Compare can refuse to diff across layouts.
const Schema = "wormsim-bench/1"

// Measurement is one benchmark's result.
type Measurement struct {
	// Name identifies the spec ("engine/nbc", "point/fig3/nbc/rho=0.6").
	Name string
	// NsPerOp is wall time per operation: one engine cycle for engine specs,
	// one full converged simulation for point specs.
	NsPerOp float64
	// AllocsPerOp and BytesPerOp are the allocator costs per operation.
	AllocsPerOp float64
	BytesPerOp  float64
	// CyclesPerSec is simulated cycles per wall second.
	CyclesPerSec float64
	// FlitHopsPerSec is flit transfers (channel hops) per wall second — the
	// simulator's useful-work rate.
	FlitHopsPerSec float64
	// PhaseShares is the engine phase profile (fraction of engine time per
	// pipeline stage) when the spec runs with a phase profiler attached.
	PhaseShares map[string]float64 `json:",omitempty"`
}

// Artifact is one harness run, serialized as BENCH_<n>.json.
type Artifact struct {
	// Schema is always the package's Schema constant.
	Schema string
	// CreatedAt is an RFC 3339 timestamp, stamped by cmd/bench.
	CreatedAt string `json:",omitempty"`
	// Environment the numbers were taken in.
	GoVersion  string
	GOOS       string
	GOARCH     string
	GOMAXPROCS int
	// NumCPU is the host's logical CPU count — the ceiling on what the
	// sweep/scale specs can demonstrate.
	NumCPU int `json:",omitempty"`
	// Short marks the reduced suite (-short): smaller networks, shorter
	// methodology. Compare refuses to diff short against full artifacts.
	Short      bool
	Benchmarks []Measurement
}

// Spec is one benchmark the suite runs.
type Spec struct {
	Name string
	// Run performs the measurement.
	Run func() Measurement
}

// engineSpec measures raw engine speed: ns per cycle of a k-ary 2-cube
// torus at a light uniform load (the BenchmarkEngine configuration), with a
// phase profiler attached for the per-stage breakdown.
func engineSpec(alg string, k int) Spec {
	name := fmt.Sprintf("engine/%s", alg)
	return Spec{Name: name, Run: func() Measurement {
		pp := telemetry.NewPhaseProfiler()
		var flitsPerCycle float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			g := topology.NewTorus(k, 2)
			a, err := routing.Get(alg)
			if err != nil {
				b.Fatal(err)
			}
			wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
			n, err := network.New(network.Config{
				Grid: g, Algorithm: a, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
				Phases: pp,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
			flitsPerCycle = float64(n.Total().FlitMoves) / float64(b.N)
		})
		m := fromResult(name, r)
		m.CyclesPerSec = perSec(1, m.NsPerOp)
		m.FlitHopsPerSec = perSec(flitsPerCycle, m.NsPerOp)
		m.PhaseShares = shares(pp)
		return m
	}}
}

// pointSpec measures one end-to-end simulation point (the Fig*/ablation
// suite member), timed as a single converged run.
func pointSpec(name string, cfg core.Config) Spec {
	return Spec{Name: name, Run: func() Measurement {
		pp := telemetry.NewPhaseProfiler()
		cfg.PhaseProf = pp
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := core.Run(cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil && !res.Deadlocked {
			panic(fmt.Sprintf("bench %s: %v", name, err))
		}
		ns := float64(elapsed.Nanoseconds())
		var flitMoves int64
		for _, c := range res.ChannelFlits {
			flitMoves += c
		}
		return Measurement{
			Name:           name,
			NsPerOp:        ns,
			AllocsPerOp:    float64(ms1.Mallocs - ms0.Mallocs),
			BytesPerOp:     float64(ms1.TotalAlloc - ms0.TotalAlloc),
			CyclesPerSec:   perSec(float64(res.Cycles), ns),
			FlitHopsPerSec: perSec(float64(flitMoves), ns),
			PhaseShares:    shares(pp),
		}
	}}
}

// forensicsSpec measures the engine cost of congestion forensics at one
// sampling period: ns per cycle of an nbc torus pushed hard enough that
// worms actually block (so the wait-for sampler has real work), with
// sampleEvery 0 meaning no analyzer attached at all — the in-family baseline
// the off : sampled : every comparison reads against. The <5% budget applies
// to forensics/sampled relative to forensics/off.
func forensicsSpec(variant string, k int, sampleEvery int64) Spec {
	name := "forensics/" + variant
	return Spec{Name: name, Run: func() Measurement {
		var flitsPerCycle float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			g := topology.NewTorus(k, 2)
			a, err := routing.Get("nbc")
			if err != nil {
				b.Fatal(err)
			}
			wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 1)
			cfg := network.Config{
				Grid: g, Algorithm: a, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
			}
			if sampleEvery > 0 {
				cfg.Forensics = forensics.New(forensics.Options{SampleEvery: sampleEvery}, g.ChannelSlots())
			}
			n, err := network.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n.Step(); err != nil {
					b.Fatal(err)
				}
			}
			flitsPerCycle = float64(n.Total().FlitMoves) / float64(b.N)
		})
		m := fromResult(name, r)
		m.CyclesPerSec = perSec(1, m.NsPerOp)
		m.FlitHopsPerSec = perSec(flitsPerCycle, m.NsPerOp)
		return m
	}}
}

// replicasSpec measures the batch lockstep engine: ns per fused Step of R
// replicas of one nbc k-ary 2-cube config at a light uniform load (rate
// 0.003, about the rho=0.1 figure point — the regime replication studies
// live in, where convergence needs many seeds). Variant "scalar" (reps 0)
// is the one-engine baseline the family reads against. CyclesPerSec counts
// replica-cycles per wall second, so the replicas/r16 : replicas/scalar
// ratio is the batch engine's aggregate speedup over 16 sequential scalar
// runs; the allocs/op gate applies to the whole family (zero in steady
// state, batch and scalar alike).
func replicasSpec(variant string, k, reps int) Spec {
	name := "replicas/" + variant
	return Spec{Name: name, Run: func() Measurement {
		var flitsPerCycle float64
		width := reps
		if width < 1 {
			width = 1
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			g := topology.NewTorus(k, 2)
			a, err := routing.Get("nbc")
			if err != nil {
				b.Fatal(err)
			}
			base := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.003, 1)
			if reps == 0 {
				n, err := network.New(network.Config{
					Grid: g, Algorithm: a, Workload: base, MsgLen: 16, CCLimit: 2, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := n.Step(); err != nil {
						b.Fatal(err)
					}
				}
				flitsPerCycle = float64(n.Total().FlitMoves) / float64(b.N)
				return
			}
			wls := make([]traffic.Workload, reps)
			seeds := make([]uint64, reps)
			for i := range wls {
				seeds[i] = uint64(i) + 1
				wls[i] = base.Replicate(seeds[i])
			}
			bn, err := network.NewBatch(network.BatchConfig{
				Grid: g, Algorithm: a, Workloads: wls, Seeds: seeds, MsgLen: 16, CCLimit: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if faults := bn.Step(); faults != nil {
					b.Fatalf("watchdog fault: %v", faults[0].Err)
				}
			}
			var moves int64
			for rep := 0; rep < reps; rep++ {
				moves += bn.Total(rep).FlitMoves
			}
			flitsPerCycle = float64(moves) / float64(b.N)
		})
		m := fromResult(name, r)
		m.CyclesPerSec = perSec(float64(width), m.NsPerOp)
		m.FlitHopsPerSec = perSec(flitsPerCycle, m.NsPerOp)
		return m
	}}
}

// sweepScaleSpec measures the work-stealing run scheduler: wall time of one
// fixed multi-load sweep at the given worker count, with GOMAXPROCS pinned
// to four for the duration so the 1-worker and 4-worker entries are
// comparable. The ratio sweep/scale/workers=1 : sweep/scale/workers=4 is
// the scheduler's parallel speedup; on a host with four or more cores it
// should exceed 1.8x (on fewer cores the OS timeshares the workers and the
// ratio degrades toward 1.0 — check the artifact's NumCPU field).
func sweepScaleSpec(short bool, workers int) Spec {
	name := fmt.Sprintf("sweep/scale/workers=%d", workers)
	return Spec{Name: name, Run: func() Measurement {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
		cfg := pointBase(short)
		cfg.Algorithm = "nbc"
		cfg.Pattern = "uniform"
		cfg.Switching = core.Wormhole
		loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		results, err := core.SweepN(cfg, loads, workers)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			panic(fmt.Sprintf("bench %s: %v", name, err))
		}
		ns := float64(elapsed.Nanoseconds())
		var cycles int64
		for _, r := range results {
			cycles += r.Cycles
		}
		return Measurement{
			Name:         name,
			NsPerOp:      ns,
			AllocsPerOp:  float64(ms1.Mallocs - ms0.Mallocs),
			BytesPerOp:   float64(ms1.TotalAlloc - ms0.TotalAlloc),
			CyclesPerSec: perSec(float64(cycles), ns),
		}
	}}
}

func fromResult(name string, r testing.BenchmarkResult) Measurement {
	return Measurement{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// perSec converts "units per op" at ns/op into units per wall second.
func perSec(unitsPerOp, nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return unitsPerOp * 1e9 / nsPerOp
}

func shares(pp *telemetry.PhaseProfiler) map[string]float64 {
	if pp == nil {
		return nil
	}
	s := pp.Snapshot()
	if s.Total() == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.Phases))
	for _, p := range s.Phases {
		out[p.Phase] = p.Share
	}
	return out
}

// pointBase is the quick methodology shared by point specs (the root
// benchmarks' benchBase), further reduced under -short.
func pointBase(short bool) core.Config {
	cfg := core.Config{
		Seed: 1, WarmupCycles: 2000, SampleCycles: 1000, GapCycles: 300, MaxSamples: 4,
	}
	if short {
		cfg.K = 8
		cfg.WarmupCycles, cfg.SampleCycles, cfg.GapCycles = 500, 300, 100
		cfg.MaxSamples = 2
	}
	return cfg
}

// Specs returns the suite: per-algorithm engine speed plus representative
// points of the paper's figure and ablation experiments.
func Specs(short bool) []Spec {
	k := 16
	if short {
		k = 8
	}
	specs := []Spec{
		engineSpec("ecube", k),
		engineSpec("2pn", k),
		engineSpec("nbc", k),
		engineSpec("phop", k),
	}
	point := func(name, alg, pattern string, sw core.Switching, load float64) {
		cfg := pointBase(short)
		cfg.Algorithm = alg
		cfg.Pattern = pattern
		cfg.Switching = sw
		cfg.OfferedLoad = load
		specs = append(specs, pointSpec(name, cfg))
	}
	point("point/fig3/nbc/rho=0.6", "nbc", "uniform", core.Wormhole, 0.6)
	point("point/fig3/ecube/rho=0.6", "ecube", "uniform", core.Wormhole, 0.6)
	point("point/fig4/nbc/rho=0.3", "nbc", "hotspot", core.Wormhole, 0.3)
	point("point/vct/2pn/rho=0.6", "2pn", "uniform", core.CutThrough, 0.6)
	specs = append(specs,
		forensicsSpec("off", k, 0),
		forensicsSpec("sampled", k, forensics.DefaultSampleEvery),
		forensicsSpec("every", k, 1),
	)
	specs = append(specs,
		replicasSpec("scalar", k, 0),
		replicasSpec("r1", k, 1),
		replicasSpec("r4", k, 4),
		replicasSpec("r16", k, 16),
	)
	specs = append(specs, sweepScaleSpec(short, 1), sweepScaleSpec(short, 4))
	return specs
}

// Run executes the suite and assembles the artifact (CreatedAt left to the
// caller). logf, when non-nil, receives one progress line per spec.
func Run(short bool, logf func(format string, args ...any)) Artifact {
	a := Artifact{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      short,
	}
	for _, s := range Specs(short) {
		m := s.Run()
		if logf != nil {
			logf("%-28s %12.0f ns/op %14.0f cycles/s %14.0f flit-hops/s\n",
				m.Name, m.NsPerOp, m.CyclesPerSec, m.FlitHopsPerSec)
		}
		a.Benchmarks = append(a.Benchmarks, m)
	}
	return a
}
