package bench

import (
	"flag"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleArtifact() Artifact {
	return Artifact{
		Schema: Schema, CreatedAt: "2026-08-05T00:00:00Z",
		GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8,
		Short: true,
		Benchmarks: []Measurement{
			{Name: "engine/nbc", NsPerOp: 1000, AllocsPerOp: 2, BytesPerOp: 64,
				CyclesPerSec: 1e6, FlitHopsPerSec: 2e6,
				PhaseShares: map[string]float64{"inject": 0.1, "route": 0.4, "eject": 0.1, "transfer": 0.3, "watchdog": 0.1}},
			{Name: "point/fig3/nbc/rho=0.6", NsPerOp: 5e8, CyclesPerSec: 2e4, FlitHopsPerSec: 9e4},
		},
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	want := sampleArtifact()
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := WriteArtifact(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip drifted:\nwrote %+v\nread  %+v", want, got)
	}
}

func TestReadArtifactRejectsWrongSchema(t *testing.T) {
	a := sampleArtifact()
	a.Schema = "wormsim-bench/0"
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := WriteArtifact(path, a); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted (err=%v)", err)
	}
}

func TestLatestAndNextPath(t *testing.T) {
	dir := t.TempDir()
	if p, n, err := Latest(dir); err != nil || p != "" || n != 0 {
		t.Fatalf("empty dir: %q %d %v", p, n, err)
	}
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_1.json" {
		t.Fatalf("first artifact path %q (%v)", next, err)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := WriteArtifact(filepath.Join(dir, name), sampleArtifact()); err != nil {
			t.Fatal(err)
		}
	}
	p, n, err := Latest(dir)
	if err != nil || filepath.Base(p) != "BENCH_10.json" || n != 10 {
		t.Fatalf("latest: %q %d %v", p, n, err)
	}
	if next, _ := NextPath(dir); filepath.Base(next) != "BENCH_11.json" {
		t.Errorf("next path %q", next)
	}
}

func TestCompare(t *testing.T) {
	old := sampleArtifact()
	cur := sampleArtifact()
	cur.Benchmarks[0].NsPerOp = 1200 // 20% slower: beyond a 10% threshold
	cur.Benchmarks[1].NsPerOp = 4e8  // faster
	cur.Benchmarks = append(cur.Benchmarks, Measurement{Name: "engine/new", NsPerOp: 1})

	deltas, err := Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2 entries (the new benchmark has no baseline)", deltas)
	}
	if !deltas[0].Regressed || deltas[0].Ratio != 1.2 {
		t.Errorf("engine/nbc delta: %+v", deltas[0])
	}
	if deltas[1].Regressed {
		t.Errorf("speedup flagged as regression: %+v", deltas[1])
	}
	if got := Regressions(deltas, FailTime); len(got) != 1 || got[0].Name != "engine/nbc" {
		t.Errorf("time regressions: %+v", got)
	}
	if got := Regressions(deltas, FailAllocs); len(got) != 0 {
		t.Errorf("alloc regressions flagged without an allocs rise: %+v", got)
	}
	if got := Regressions(deltas, FailNone); len(got) != 0 {
		t.Errorf("advisory mode reported regressions: %+v", got)
	}
	table := FormatDeltas(deltas)
	if !strings.Contains(table, "TIME-REGRESSION") || !strings.Contains(table, "engine/nbc") {
		t.Errorf("table:\n%s", table)
	}

	// Allocation gate: a first steady-state allocation (0 -> 1) blocks even
	// though the absolute rise is tiny, while whole-run MemStats jitter
	// (under the fractional threshold) stays quiet.
	old = sampleArtifact()
	old.Benchmarks[0].AllocsPerOp = 0
	old.Benchmarks[1].AllocsPerOp = 50000
	cur = sampleArtifact()
	cur.Benchmarks[0].AllocsPerOp = 1
	cur.Benchmarks[1].AllocsPerOp = 51000 // 2% jitter: under the 10% threshold
	deltas, err = Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	got := Regressions(deltas, FailAllocs)
	if len(got) != 1 || got[0].Name != "engine/nbc" || !got[0].AllocsRegressed {
		t.Errorf("alloc regressions: %+v", got)
	}
	if table := FormatDeltas(deltas); !strings.Contains(table, "ALLOC-REGRESSION") {
		t.Errorf("table missing alloc flag:\n%s", table)
	}
	if got := Regressions(deltas, FailAll); len(got) != 1 {
		t.Errorf("all-mode regressions: %+v", got)
	}

	// Flit-hops gate: a drop in the engine's real work rate beyond the
	// threshold blocks under -failon flithops and -failon all, a rise or
	// jitter does not, and benchmarks without flit traffic are exempt.
	old = sampleArtifact()
	cur = sampleArtifact()
	cur.Benchmarks[0].FlitHopsPerSec = old.Benchmarks[0].FlitHopsPerSec * 0.8  // 20% slower at real work
	cur.Benchmarks[1].FlitHopsPerSec = old.Benchmarks[1].FlitHopsPerSec * 1.05 // improvement
	deltas, err = Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	got = Regressions(deltas, FailFlitHops)
	if len(got) != 1 || got[0].Name != "engine/nbc" || !got[0].FlitHopsRegressed {
		t.Errorf("flit-hops regressions: %+v", got)
	}
	if got := Regressions(deltas, FailAll); len(got) != 1 || got[0].Name != "engine/nbc" {
		t.Errorf("all-mode must include the flit-hops class: %+v", got)
	}
	if got := Regressions(deltas, FailAllocs); len(got) != 0 {
		t.Errorf("flit-hops drop misfiled under allocs: %+v", got)
	}
	if table := FormatDeltas(deltas); !strings.Contains(table, "FLITHOPS-REGRESSION") {
		t.Errorf("table missing flit-hops flag:\n%s", table)
	}
	old.Benchmarks[0].FlitHopsPerSec = 0 // e.g. the saf engine: no flit channels
	cur.Benchmarks[0].FlitHopsPerSec = 0
	deltas, err = Compare(old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(deltas, FailFlitHops); len(got) != 0 {
		t.Errorf("zero-rate benchmark flagged: %+v", got)
	}

	// Guard rails: mismatched schema or suite size refuse to compare.
	bad := sampleArtifact()
	bad.Short = false
	if _, err := Compare(old, bad, 0.1); err == nil {
		t.Error("short-vs-full comparison accepted")
	}
	bad = sampleArtifact()
	bad.Schema = "other/1"
	if _, err := Compare(old, bad, 0.1); err == nil {
		t.Error("cross-schema comparison accepted")
	}
}

func TestParseFailOn(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FailOn
		ok   bool
	}{
		{"", FailNone, true},
		{"none", FailNone, true},
		{"time", FailTime, true},
		{"allocs", FailAllocs, true},
		{"flithops", FailFlitHops, true},
		{"all", FailAll, true},
		{"bogus", FailNone, false},
	} {
		got, err := ParseFailOn(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseFailOn(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// TestSuiteSmoke runs the cheapest spec once and sanity-checks the
// measurement. Capping benchtime keeps testing.Benchmark to a single
// iteration batch.
// TestReplicasSpecSmoke runs the batch-engine family member at width 4 and
// checks the measurement is sane: positive rates, and the aggregate
// replica-cycle rate accounting (CyclesPerSec = width / NsPerOp). The
// zero-alloc steady-state gate itself lives with the engine
// (network.TestBatchSteadyStateZeroAlloc); the speedup acceptance ratio is
// read off the committed artifact, not asserted on shared hardware.
func TestReplicasSpecSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark iteration")
	}
	if err := flag.Set("test.benchtime", "100x"); err != nil {
		t.Fatal(err)
	}
	specs := Specs(true)
	var spec *Spec
	for i := range specs {
		if specs[i].Name == "replicas/r4" {
			spec = &specs[i]
		}
	}
	if spec == nil {
		t.Fatalf("suite lost its replicas specs: %+v", specs)
	}
	m := spec.Run()
	if m.NsPerOp <= 0 || m.CyclesPerSec <= 0 {
		t.Errorf("degenerate measurement: %+v", m)
	}
	if got, want := m.CyclesPerSec, perSec(4, m.NsPerOp); got != want {
		t.Errorf("replica-cycle accounting: CyclesPerSec %g, want %g", got, want)
	}
}

func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark iteration")
	}
	if err := flag.Set("test.benchtime", "100x"); err != nil {
		t.Fatal(err)
	}
	specs := Specs(true)
	var engine *Spec
	for i := range specs {
		if specs[i].Name == "engine/ecube" {
			engine = &specs[i]
		}
	}
	if engine == nil {
		t.Fatalf("suite lost its engine specs: %+v", specs)
	}
	m := engine.Run()
	if m.NsPerOp <= 0 || m.CyclesPerSec <= 0 {
		t.Errorf("degenerate measurement: %+v", m)
	}
	if len(m.PhaseShares) != 5 {
		t.Errorf("phase shares: %+v", m.PhaseShares)
	}
	sum := 0.0
	for _, s := range m.PhaseShares {
		sum += s
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("phase shares sum to %g", sum)
	}
}
