package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// artifactRe matches harness artifacts: BENCH_<n>.json.
var artifactRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// WriteArtifact writes a as indented JSON.
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact reads and schema-checks an artifact.
func ReadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != Schema {
		return a, fmt.Errorf("%s: schema %q, this harness speaks %q", path, a.Schema, Schema)
	}
	return a, nil
}

// Latest returns the highest-numbered BENCH_<n>.json in dir ("" when none
// exists).
func Latest(dir string) (path string, n int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		m := artifactRe.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		if v, _ := strconv.Atoi(m[1]); v >= n {
			n = v
			path = filepath.Join(dir, name)
		}
	}
	return path, n, nil
}

// NextPath returns where the next artifact in dir should go (BENCH_<n+1>,
// starting at BENCH_1).
func NextPath(dir string) (string, error) {
	_, n, err := Latest(dir)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n+1)), nil
}

// Delta is one benchmark's old-versus-new comparison.
type Delta struct {
	Name       string
	OldNsPerOp float64
	NewNsPerOp float64
	// Ratio is new over old wall time (1.0 = unchanged, >1 slower).
	Ratio float64
	// Regressed marks time ratios beyond the comparison threshold. Wall
	// time is hardware-noisy, so CI treats this as advisory.
	Regressed bool
	// Allocator cost comparison. Allocations per op are near-deterministic
	// (the engine's steady state is exactly zero), so AllocsRegressed is a
	// blocking signal where time is not.
	OldAllocsPerOp  float64
	NewAllocsPerOp  float64
	AllocsRegressed bool
	// Simulation-throughput comparison: flit-hops/sec is the engine's real
	// work rate (flit transfers per wall second), so a drop means the
	// simulator got slower at its actual job even if ns/op noise hides it.
	// Higher is better: FlitHopsRegressed flags a fall beyond the threshold.
	OldFlitHopsPerSec float64
	NewFlitHopsPerSec float64
	FlitHopsRegressed bool
}

// Compare diffs two artifacts benchmark-by-benchmark. threshold is the
// tolerated fractional slowdown (0.1 = flag anything >10% slower); an
// allocs/op regression needs both the fractional threshold and an absolute
// rise of half an allocation per op, so a first steady-state allocation
// (0 -> 1) trips it but whole-run MemStats jitter does not.
// Benchmarks present in only one artifact are skipped. Artifacts from
// different suite sizes (Short flag) or schemas do not compare.
func Compare(old, cur Artifact, threshold float64) ([]Delta, error) {
	if old.Schema != cur.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: %q vs %q", old.Schema, cur.Schema)
	}
	if old.Short != cur.Short {
		return nil, fmt.Errorf("bench: cannot compare short=%v against short=%v suites", cur.Short, old.Short)
	}
	prev := make(map[string]Measurement, len(old.Benchmarks))
	for _, m := range old.Benchmarks {
		prev[m.Name] = m
	}
	var out []Delta
	for _, m := range cur.Benchmarks {
		o, ok := prev[m.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:              m.Name,
			OldNsPerOp:        o.NsPerOp,
			NewNsPerOp:        m.NsPerOp,
			Ratio:             m.NsPerOp / o.NsPerOp,
			OldAllocsPerOp:    o.AllocsPerOp,
			NewAllocsPerOp:    m.AllocsPerOp,
			OldFlitHopsPerSec: o.FlitHopsPerSec,
			NewFlitHopsPerSec: m.FlitHopsPerSec,
		}
		d.Regressed = d.Ratio > 1+threshold
		rise := m.AllocsPerOp - o.AllocsPerOp
		d.AllocsRegressed = rise > 0.5 && m.AllocsPerOp > o.AllocsPerOp*(1+threshold)
		// A throughput rate regresses downward; benchmarks without flit
		// traffic (o == 0, e.g. the saf engine) are exempt.
		d.FlitHopsRegressed = o.FlitHopsPerSec > 0 && m.FlitHopsPerSec < o.FlitHopsPerSec*(1-threshold)
		out = append(out, d)
	}
	return out, nil
}

// FailOn selects which regression classes Regressions reports (and so which
// ones cmd/bench -failon turns into a nonzero exit).
type FailOn string

const (
	// FailNone reports nothing: the comparison is purely advisory.
	FailNone FailOn = "none"
	// FailTime reports wall-time regressions.
	FailTime FailOn = "time"
	// FailAllocs reports allocs/op regressions — the blocking CI gate,
	// because allocation counts are reproducible where wall time is not.
	FailAllocs FailOn = "allocs"
	// FailFlitHops reports flit-hops/sec regressions: the simulator doing
	// its real work (flit transfers) slower than the baseline.
	FailFlitHops FailOn = "flithops"
	// FailAll reports every class: time, allocs and flit-hops/sec.
	FailAll FailOn = "all"
)

// ParseFailOn validates a -failon flag value ("" means none).
func ParseFailOn(s string) (FailOn, error) {
	switch f := FailOn(s); f {
	case "", FailNone:
		return FailNone, nil
	case FailTime, FailAllocs, FailFlitHops, FailAll:
		return f, nil
	}
	return FailNone, fmt.Errorf("bench: -failon %q: want none, time, allocs, flithops or all", s)
}

// Regressions filters deltas down to the ones flagged in the selected
// classes.
func Regressions(deltas []Delta, mode FailOn) []Delta {
	var out []Delta
	for _, d := range deltas {
		time := d.Regressed && (mode == FailTime || mode == FailAll)
		allocs := d.AllocsRegressed && (mode == FailAllocs || mode == FailAll)
		flithops := d.FlitHopsRegressed && (mode == FailFlitHops || mode == FailAll)
		if time || allocs || flithops {
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders a comparison table.
func FormatDeltas(deltas []Delta) string {
	if len(deltas) == 0 {
		return "no comparable benchmarks\n"
	}
	out := fmt.Sprintf("%-28s %14s %14s %8s %12s %12s %14s %14s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs", "old flit-hop/s", "new flit-hop/s")
	for _, d := range deltas {
		flag := ""
		if d.Regressed {
			flag += "  TIME-REGRESSION"
		}
		if d.AllocsRegressed {
			flag += "  ALLOC-REGRESSION"
		}
		if d.FlitHopsRegressed {
			flag += "  FLITHOPS-REGRESSION"
		}
		out += fmt.Sprintf("%-28s %14.0f %14.0f %7.2fx %12.0f %12.0f %14.0f %14.0f%s\n",
			d.Name, d.OldNsPerOp, d.NewNsPerOp, d.Ratio, d.OldAllocsPerOp, d.NewAllocsPerOp,
			d.OldFlitHopsPerSec, d.NewFlitHopsPerSec, flag)
	}
	return out
}
