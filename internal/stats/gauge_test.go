package stats

import (
	"math"
	"testing"
)

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 || g.Min() != 0 || g.Max() != 0 || g.Count() != 0 {
		t.Errorf("zero gauge not zero: %s", g.String())
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		g.Observe(v)
	}
	if g.Count() != 5 {
		t.Errorf("Count = %d, want 5", g.Count())
	}
	if got, want := g.Mean(), 14.0/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if g.Min() != 1 || g.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want 1/5", g.Min(), g.Max())
	}
	g.Reset()
	g.Observe(-2)
	if g.Min() != -2 || g.Max() != -2 {
		t.Errorf("after reset, Min/Max = %g/%g, want -2/-2", g.Min(), g.Max())
	}
}
