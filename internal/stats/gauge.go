package stats

import "fmt"

// Gauge summarizes an instantaneous level sampled over time (virtual-channel
// occupancy, injection-queue depth): a Welford accumulator over the samples
// plus the exact extremes, so a report can state both the average level and
// the worst excursion.
type Gauge struct {
	w        Welford
	min, max float64
}

// Observe records one sample of the level.
func (g *Gauge) Observe(v float64) {
	if g.w.Count() == 0 || v < g.min {
		g.min = v
	}
	if g.w.Count() == 0 || v > g.max {
		g.max = v
	}
	g.w.Add(v)
}

// Count returns the number of samples.
func (g *Gauge) Count() int64 { return g.w.Count() }

// Mean returns the time-average level (0 with no samples).
func (g *Gauge) Mean() float64 { return g.w.Mean() }

// StdDev returns the sample standard deviation of the level.
func (g *Gauge) StdDev() float64 { return g.w.StdDev() }

// Min returns the smallest observed level (0 with no samples).
func (g *Gauge) Min() float64 { return g.min }

// Max returns the largest observed level (0 with no samples).
func (g *Gauge) Max() float64 { return g.max }

// Reset clears the gauge.
func (g *Gauge) Reset() { *g = Gauge{} }

// String renders a compact summary.
func (g *Gauge) String() string {
	return fmt.Sprintf("mean=%.2f min=%.0f max=%.0f n=%d", g.Mean(), g.min, g.max, g.w.Count())
}
