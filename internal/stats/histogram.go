package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a streaming histogram for non-negative integer-valued
// observations (latencies in cycles) with geometrically growing bucket
// widths, so both the unloaded 20-cycle regime and the deep-saturation
// thousand-cycle regime resolve well without knowing the range up front.
type Histogram struct {
	// buckets[i] counts observations with value in [bound(i), bound(i+1)).
	buckets []int64
	count   int64
	sum     float64
	max     float64
}

// histBase is the resolution knob: bucket i covers
// [histBase*growth^i, histBase*growth^(i+1)).
const (
	histBase   = 8.0
	histGrowth = 1.25
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v < histBase {
		return 0
	}
	return 1 + int(math.Log(v/histBase)/math.Log(histGrowth))
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) float64 {
	if i == 0 {
		return 0
	}
	return histBase * math.Pow(histGrowth, float64(i-1))
}

// Add records one observation; negative values are clamped to zero.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of the observations (tracked outside the
// buckets).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. With no observations it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var cum int64
	for i, c := range h.buckets {
		if float64(cum+c) >= target && c > 0 {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String renders a compact summary with the conventional tail quantiles.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.0f",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Render draws the nonempty buckets as text bars, widest bucket scaled to
// width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak int64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(&b, "%8.0f-%8.0f %8d %s\n", bucketLow(i), bucketLow(i+1), c, strings.Repeat("#", bar))
	}
	return b.String()
}

// CumBucket is one cumulative histogram bucket in Prometheus exposition
// form: Count observations had a value <= UpperBound.
type CumBucket struct {
	UpperBound float64
	Count      int64
}

// Cumulative returns the histogram's buckets in cumulative Prometheus form,
// one entry per allocated bucket (the last entry's Count equals Count()).
// Empty histograms return nil.
func (h *Histogram) Cumulative() []CumBucket {
	if len(h.buckets) == 0 {
		return nil
	}
	out := make([]CumBucket, 0, len(h.buckets))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		out = append(out, CumBucket{UpperBound: bucketLow(i + 1), Count: cum})
	}
	return out
}

// Quantiles computes several quantiles at once, more cheaply than repeated
// Quantile calls on large histograms; qs need not be sorted.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qs[order[a]] < qs[order[b]] })
	for _, idx := range order {
		out[idx] = h.Quantile(qs[idx])
	}
	return out
}
