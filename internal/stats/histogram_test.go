package stats

import (
	"math"
	"sort"
	"strings"
	"testing"

	"wormsim/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should be all zeros")
	}
	for _, v := range []float64{10, 20, 30, 40} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Errorf("count %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Errorf("mean %v, want exact 25", h.Mean())
	}
	if h.Max() != 40 {
		t.Errorf("max %v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Error("negative observation should clamp to 0")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against exact order statistics of a large random sample: the
	// geometric buckets guarantee ~25% relative resolution.
	r := rng.New(7)
	var h Histogram
	values := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := float64(16 + r.Intn(985)) // latencies 16..1000
		h.Add(v)
		values = append(values, v)
	}
	sort.Float64s(values)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)-1))]
		got := h.Quantile(q)
		if math.Abs(got-exact) > 0.15*exact+histBase {
			t.Errorf("q=%.2f: histogram %v, exact %v", q, got, exact)
		}
	}
	// Quantiles are monotone in q.
	qs := h.Quantiles(0.99, 0.5, 0.1)
	if !(qs[2] <= qs[1] && qs[1] <= qs[0]) {
		t.Errorf("quantiles not monotone: %v", qs)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Add(100)
	if h.Quantile(-1) < 0 {
		t.Error("q<0 should clamp")
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("q>1 should clamp: %v vs %v", got, h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	r := rng.New(9)
	for i := 0; i < 5000; i++ {
		v := float64(r.Intn(500))
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Error("merge lost observations")
	}
	if a.Quantile(0.5) != all.Quantile(0.5) {
		t.Errorf("merged median %v, want %v", a.Quantile(0.5), all.Quantile(0.5))
	}
}

func TestHistogramResetAndRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if !strings.Contains(h.String(), "p95=") {
		t.Errorf("String = %q", h.String())
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset failed")
	}
	if h.Render(10) != "(empty)\n" {
		t.Errorf("empty render = %q", h.Render(10))
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it.
	r := rng.New(11)
	for i := 0; i < 5000; i++ {
		v := r.Float64() * 10000
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketLow(idx+1)
		if v < lo || v >= hi {
			// Floating rounding at the exact boundary may place the value
			// one bucket off; accept the neighbour.
			if !(v >= bucketLow(idx+1) && v < bucketLow(idx+2)) &&
				!(idx > 0 && v >= bucketLow(idx-1) && v < lo) {
				t.Fatalf("value %v in bucket %d [%v,%v)", v, idx, lo, hi)
			}
		}
	}
}
