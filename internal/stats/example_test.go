package stats_test

import (
	"fmt"

	"wormsim/internal/stats"
)

// Example shows the stratified population-mean estimator the paper uses
// for its convergence criterion: hop classes are strata with weights from
// the traffic pattern, so a biased sample (here: far messages oversampled)
// still estimates the population latency correctly.
func Example() {
	// Two hop classes: 75% of messages are near (latency ~20), 25% far
	// (latency ~40); the sample contains 10 near but 1000 far observations.
	s := stats.NewStratified([]float64{0.75, 0.25})
	for i := 0; i < 10; i++ {
		s.Add(0, 20)
	}
	for i := 0; i < 1000; i++ {
		s.Add(1, 40)
	}
	naive := (10.0*20 + 1000*40) / 1010
	fmt.Printf("naive mean: %.1f\n", naive)
	fmt.Printf("stratified mean: %.1f\n", s.Mean())
	// Output:
	// naive mean: 39.8
	// stratified mean: 25.0
}

func ExampleWelford() {
	var w stats.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("mean %.1f stddev %.2f\n", w.Mean(), w.StdDev())
	// Output:
	// mean 5.0 stddev 2.14
}

func ExampleHistogram() {
	var h stats.Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	fmt.Printf("mean %.1f max %.0f\n", h.Mean(), h.Max())
	// Output:
	// mean 50.5 max 100
}

func ExampleConvergence() {
	c := stats.NewConvergence()
	tight := stats.NewStratified([]float64{1})
	for i := 0; i < 100; i++ {
		tight.Add(0, 42)
	}
	for _, sampleMean := range []float64{42, 42, 42} {
		c.Record(sampleMean)
	}
	fmt.Println("samples:", c.Samples(), "done:", c.Done(tight))
	// Output:
	// samples: 3 done: true
}
