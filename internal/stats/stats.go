// Package stats implements the paper's statistics and convergence
// machinery: Welford accumulators, the stratified population-mean estimator
// over hop classes (Scheaffer et al., as cited by the paper), 95% confidence
// intervals taken as +-2 sigma, and the two-criterion convergence check that
// terminates a simulation once both the stratified bound and the
// across-sample bound fall within 5% of their means.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a running mean and variance in one pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN incorporates an observation with integer weight times.
func (w *Welford) AddN(x float64, times int64) {
	for i := int64(0); i < times; i++ {
		w.Add(x)
	}
}

// Merge folds other into w (parallel-variance combination).
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.n = n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Stratified estimates a population mean by stratified sampling: the
// population (messages) is partitioned into strata (hop classes) with known
// weights (the probability a generated message belongs to the class, from
// the traffic pattern), and each stratum's mean and variance are estimated
// from its own observations.
type Stratified struct {
	weights []float64
	strata  []Welford
}

// NewStratified returns an estimator with the given stratum weights. The
// weights need not sum to one; they are renormalized over the strata that
// received observations when estimating.
func NewStratified(weights []float64) *Stratified {
	w := make([]float64, len(weights))
	copy(w, weights)
	return &Stratified{weights: w, strata: make([]Welford, len(weights))}
}

// Add records an observation in stratum i.
func (s *Stratified) Add(i int, x float64) {
	if i < 0 || i >= len(s.strata) {
		panic(fmt.Sprintf("stats: stratum %d out of range [0,%d)", i, len(s.strata)))
	}
	s.strata[i].Add(x)
}

// Count returns the total number of observations.
func (s *Stratified) Count() int64 {
	var n int64
	for i := range s.strata {
		n += s.strata[i].Count()
	}
	return n
}

// StratumMean returns the mean of stratum i.
func (s *Stratified) StratumMean(i int) float64 { return s.strata[i].Mean() }

// StratumCount returns the observation count of stratum i.
func (s *Stratified) StratumCount(i int) int64 { return s.strata[i].Count() }

// Mean returns the stratified estimate of the population mean: sum of
// weight_i * mean_i over observed strata, renormalized by the total observed
// weight (strata with positive weight but no observations yet are excluded,
// which matters only early in a sample).
func (s *Stratified) Mean() float64 {
	sum, wsum := 0.0, 0.0
	for i := range s.strata {
		if s.strata[i].Count() == 0 || s.weights[i] == 0 {
			continue
		}
		sum += s.weights[i] * s.strata[i].Mean()
		wsum += s.weights[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Variance returns the variance of the stratified mean estimator:
// sum of weight_i^2 * s_i^2 / n_i over observed strata (with the same
// renormalization as Mean).
func (s *Stratified) Variance() float64 {
	sum, wsum := 0.0, 0.0
	for i := range s.strata {
		n := s.strata[i].Count()
		if n == 0 || s.weights[i] == 0 {
			continue
		}
		wsum += s.weights[i]
		if n < 2 {
			continue
		}
		sum += s.weights[i] * s.weights[i] * s.strata[i].Variance() / float64(n)
	}
	if wsum == 0 {
		return 0
	}
	return sum / (wsum * wsum)
}

// ErrorBound returns the paper's bound on the error of estimation: two
// standard deviations of the estimator (a 95% confidence half-width).
func (s *Stratified) ErrorBound() float64 { return 2 * math.Sqrt(s.Variance()) }

// Reset clears all strata but keeps the weights.
func (s *Stratified) Reset() {
	for i := range s.strata {
		s.strata[i].Reset()
	}
}

// Converged reports whether the relative error bound is within tol of the
// mean (and there is at least one observation).
func (s *Stratified) Converged(tol float64) bool {
	m := s.Mean()
	if s.Count() == 0 || m == 0 {
		return false
	}
	return s.ErrorBound() <= tol*math.Abs(m)
}

// Convergence runs the paper's two-criterion stopping rule over sampling
// periods: terminate once (a) the stratified latency bound of the latest
// sample and (b) the across-sample bound over the latest sample means are
// both within Tolerance of their respective means, subject to MinSamples
// and MaxSamples.
type Convergence struct {
	// MinSamples and MaxSamples bound the number of sampling periods
	// (paper: at least 3, at most 10-15).
	MinSamples int
	MaxSamples int
	// Tolerance is the relative error bound (paper: 5%).
	Tolerance float64

	sampleMeans []float64
}

// NewConvergence returns the paper's defaults: 3..12 samples, 5% bounds.
func NewConvergence() *Convergence {
	return &Convergence{MinSamples: 3, MaxSamples: 12, Tolerance: 0.05}
}

// Record adds a completed sample's mean latency.
func (c *Convergence) Record(sampleMean float64) {
	c.sampleMeans = append(c.sampleMeans, sampleMean)
}

// Samples returns the number of recorded samples.
func (c *Convergence) Samples() int { return len(c.sampleMeans) }

// AcrossSampleBound returns the across-sample error bound (2 * stderr of the
// sample means) and their mean, over the latest three or more samples.
func (c *Convergence) AcrossSampleBound() (bound, mean float64) {
	n := len(c.sampleMeans)
	if n < 2 {
		return math.Inf(1), 0
	}
	// Use the latest three or more samples, per the paper.
	window := c.sampleMeans
	if n > 3 {
		window = c.sampleMeans[n-3:]
	}
	var w Welford
	for _, m := range window {
		w.Add(m)
	}
	return 2 * w.StdErr(), w.Mean()
}

// Done reports whether the stopping rule is satisfied, given the latest
// sample's stratified estimator.
func (c *Convergence) Done(latest *Stratified) bool {
	n := len(c.sampleMeans)
	if n >= c.MaxSamples {
		return true
	}
	if n < c.MinSamples {
		return false
	}
	if !latest.Converged(c.Tolerance) {
		return false
	}
	bound, mean := c.AcrossSampleBound()
	return mean != 0 && bound <= c.Tolerance*math.Abs(mean)
}

// Reset clears the recorded samples.
func (c *Convergence) Reset() { c.sampleMeans = nil }
