package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wormsim/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstDirect(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range data {
		w.Add(x)
	}
	mean := 0.0
	for _, x := range data {
		mean += x
	}
	mean /= float64(len(data))
	varr := 0.0
	for _, x := range data {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(data) - 1)
	if !almost(w.Mean(), mean, 1e-12) {
		t.Errorf("mean %v, want %v", w.Mean(), mean)
	}
	if !almost(w.Variance(), varr, 1e-12) {
		t.Errorf("variance %v, want %v", w.Variance(), varr)
	}
	if !almost(w.StdErr(), math.Sqrt(varr/float64(len(data))), 1e-12) {
		t.Errorf("stderr %v", w.StdErr())
	}
	if w.Count() != int64(len(data)) {
		t.Errorf("count %d", w.Count())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Error("single observation: mean 5, variance 0")
	}
	w.Reset()
	if w.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Error("AddN disagrees with repeated Add")
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(5)
	f := func(na, nb uint8) bool {
		var all, a, b Welford
		for i := 0; i < int(na%40); i++ {
			x := r.Float64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb%40)+1; i++ {
			x := r.Float64() * 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedExactPopulation(t *testing.T) {
	// Two strata with known weights and constant values: the estimate is
	// the weighted mean with zero variance.
	s := NewStratified([]float64{0, 0.25, 0.75})
	for i := 0; i < 10; i++ {
		s.Add(1, 10)
		s.Add(2, 20)
	}
	if !almost(s.Mean(), 0.25*10+0.75*20, 1e-12) {
		t.Errorf("stratified mean = %v, want 17.5", s.Mean())
	}
	if s.Variance() != 0 {
		t.Errorf("variance = %v, want 0", s.Variance())
	}
	if s.ErrorBound() != 0 {
		t.Errorf("bound = %v", s.ErrorBound())
	}
	if s.Count() != 20 || s.StratumCount(1) != 10 || s.StratumMean(2) != 20 {
		t.Error("stratum accounting wrong")
	}
}

func TestStratifiedRenormalizesUnobserved(t *testing.T) {
	s := NewStratified([]float64{0.5, 0.5})
	s.Add(0, 10)
	// Stratum 1 unobserved: the estimate falls back to stratum 0 alone.
	if !almost(s.Mean(), 10, 1e-12) {
		t.Errorf("mean with one observed stratum = %v, want 10", s.Mean())
	}
}

func TestStratifiedVarianceFormula(t *testing.T) {
	s := NewStratified([]float64{0.4, 0.6})
	vals0 := []float64{1, 3}
	vals1 := []float64{10, 14}
	for _, v := range vals0 {
		s.Add(0, v)
	}
	for _, v := range vals1 {
		s.Add(1, v)
	}
	// s0^2 = 2, s1^2 = 8, var = 0.16*2/2 + 0.36*8/2 = 0.16 + 1.44 = 1.6.
	if !almost(s.Variance(), 1.6, 1e-12) {
		t.Errorf("variance = %v, want 1.6", s.Variance())
	}
	if !almost(s.ErrorBound(), 2*math.Sqrt(1.6), 1e-12) {
		t.Errorf("bound = %v", s.ErrorBound())
	}
}

func TestStratifiedConverged(t *testing.T) {
	s := NewStratified([]float64{1})
	if s.Converged(0.05) {
		t.Error("empty estimator claims convergence")
	}
	for i := 0; i < 100; i++ {
		s.Add(0, 100) // constant: zero variance
	}
	if !s.Converged(0.05) {
		t.Error("constant data should converge")
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestStratifiedAddPanics(t *testing.T) {
	s := NewStratified([]float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stratum did not panic")
		}
	}()
	s.Add(5, 1)
}

func TestStratifiedUnbiasedOnSyntheticPopulation(t *testing.T) {
	// Strata with different means sampled at different rates: the
	// stratified estimator must recover the weighted population mean, which
	// naive averaging would miss.
	r := rng.New(9)
	weights := []float64{0.7, 0.2, 0.1}
	means := []float64{10, 50, 200}
	truth := 0.0
	for i := range weights {
		truth += weights[i] * means[i]
	}
	s := NewStratified(weights)
	counts := []int{100, 1000, 5000} // deliberately inverted sampling rates
	for i := range weights {
		for j := 0; j < counts[i]; j++ {
			s.Add(i, means[i]+(r.Float64()-0.5)*4)
		}
	}
	if math.Abs(s.Mean()-truth) > 1 {
		t.Errorf("stratified mean %v, want about %v", s.Mean(), truth)
	}
	// Verify the 2-sigma bound is honest for this easy case.
	if s.ErrorBound() > truth*0.05 && !s.Converged(0.05) {
		t.Log("bound loose but consistent")
	}
}

func TestConvergenceStoppingRule(t *testing.T) {
	c := NewConvergence()
	if c.MinSamples != 3 || c.MaxSamples != 12 || c.Tolerance != 0.05 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
	tight := NewStratified([]float64{1})
	for i := 0; i < 50; i++ {
		tight.Add(0, 100)
	}
	// Fewer than MinSamples: never done.
	c.Record(100)
	if c.Done(tight) {
		t.Error("done after 1 sample")
	}
	c.Record(100)
	if c.Done(tight) {
		t.Error("done after 2 samples")
	}
	c.Record(100)
	if !c.Done(tight) {
		t.Error("3 identical samples with a tight estimator should stop")
	}
	if c.Samples() != 3 {
		t.Errorf("samples = %d", c.Samples())
	}
}

func TestConvergenceRejectsScatter(t *testing.T) {
	c := NewConvergence()
	tight := NewStratified([]float64{1})
	for i := 0; i < 50; i++ {
		tight.Add(0, 100)
	}
	// Widely scattered sample means keep it running even though the latest
	// stratified bound is tight.
	c.Record(50)
	c.Record(150)
	c.Record(100)
	if c.Done(tight) {
		t.Error("scattered samples should not converge")
	}
}

func TestConvergenceMaxSamplesForcesStop(t *testing.T) {
	c := &Convergence{MinSamples: 3, MaxSamples: 5, Tolerance: 0.05}
	loose := NewStratified([]float64{1})
	loose.Add(0, 1)
	loose.Add(0, 100)
	for i := 0; i < 5; i++ {
		c.Record(float64(i * 50))
	}
	if !c.Done(loose) {
		t.Error("MaxSamples must force termination")
	}
}

func TestConvergenceWindow(t *testing.T) {
	c := NewConvergence()
	// Early noisy samples must not prevent convergence once the latest
	// three agree (the paper uses the latest three or more samples).
	c.Record(10)
	c.Record(500)
	c.Record(100)
	c.Record(100)
	c.Record(100)
	bound, mean := c.AcrossSampleBound()
	if !almost(mean, 100, 1e-9) {
		t.Errorf("windowed mean = %v, want 100", mean)
	}
	if bound != 0 {
		t.Errorf("windowed bound = %v, want 0", bound)
	}
	c.Reset()
	if c.Samples() != 0 {
		t.Error("reset failed")
	}
	if b, _ := c.AcrossSampleBound(); !math.IsInf(b, 1) {
		t.Error("bound with <2 samples should be +Inf")
	}
}
