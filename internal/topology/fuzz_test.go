package topology

import "testing"

// FuzzMinimalOffsets cross-checks the coordinate arithmetic that every
// routing algorithm builds on: id/coordinate round-trips, minimality of
// per-dimension offsets, consistency of Distance with Offset, and the
// invariant that following any nonzero offset one hop brings the
// destination exactly one hop closer.
func FuzzMinimalOffsets(f *testing.F) {
	f.Add(uint8(4), uint8(2), true, uint16(0), uint16(5))
	f.Add(uint8(4), uint8(2), false, uint16(3), uint16(12))
	f.Add(uint8(16), uint8(2), true, uint16(0), uint16(136)) // (0,0)->(8,8) half-ring tie
	f.Add(uint8(2), uint8(1), true, uint16(0), uint16(1))
	f.Add(uint8(5), uint8(3), false, uint16(7), uint16(99))
	f.Fuzz(func(t *testing.T, kRaw, nRaw uint8, wrap bool, srcRaw, dstRaw uint16) {
		k := 2 + int(kRaw)%15 // 2..16
		n := 1 + int(nRaw)%3  // 1..3
		var g *Grid
		if wrap {
			g = NewTorus(k, n)
		} else {
			g = NewMesh(k, n)
		}
		src := int(srcRaw) % g.Nodes()
		dst := int(dstRaw) % g.Nodes()

		coords := g.Coords(src, make([]int, n))
		if id := g.ID(coords); id != src {
			t.Fatalf("%v: ID(Coords(%d)) = %d", g, src, id)
		}
		for dim := 0; dim < n; dim++ {
			if c := g.Coord(src, dim); c != coords[dim] {
				t.Fatalf("%v: Coord(%d,%d) = %d, Coords gave %d", g, src, dim, c, coords[dim])
			}
		}

		sum := 0
		for dim := 0; dim < n; dim++ {
			off := g.Offset(src, dst, dim)
			abs := off
			if abs < 0 {
				abs = -abs
			}
			max := k - 1
			if wrap {
				max = k / 2
			}
			if abs > max {
				t.Fatalf("%v: |Offset(%d,%d,%d)| = %d exceeds minimal bound %d", g, src, dst, dim, abs, max)
			}
			if g.TieInDim(src, dst, dim) {
				if !wrap || k%2 != 0 || abs != k/2 {
					t.Fatalf("%v: TieInDim(%d,%d,%d) but offset %d (k=%d, wrap=%v)", g, src, dst, dim, off, k, wrap)
				}
				if off != k/2 {
					t.Fatalf("%v: half-ring tie not normalized to +k/2, got %d", g, off)
				}
			}
			sum += abs
		}
		d := g.Distance(src, dst)
		if d != sum {
			t.Fatalf("%v: Distance(%d,%d) = %d, sum of |offsets| = %d", g, src, dst, d, sum)
		}
		if d > g.Diameter() {
			t.Fatalf("%v: Distance(%d,%d) = %d exceeds diameter %d", g, src, dst, d, g.Diameter())
		}
		if src == dst && d != 0 {
			t.Fatalf("%v: Distance(%d,%d) = %d, want 0", g, src, dst, d)
		}

		// Every nonzero offset direction is a productive first hop.
		for dim := 0; dim < n; dim++ {
			off := g.Offset(src, dst, dim)
			if off == 0 {
				continue
			}
			dir := Plus
			if off < 0 {
				dir = Minus
			}
			nb := g.Neighbor(src, dim, dir)
			if nb < 0 {
				t.Fatalf("%v: minimal hop %d%s from %d has no channel", g, dim, dir, src)
			}
			if nd := g.Distance(nb, dst); nd != d-1 {
				t.Fatalf("%v: hop %d%s from %d toward %d: distance %d -> %d, want %d",
					g, dim, dir, src, dst, d, nd, d-1)
			}
		}
	})
}
