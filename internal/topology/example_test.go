package topology_test

import (
	"fmt"

	"wormsim/internal/topology"
)

func Example() {
	g := topology.NewTorus(16, 2)
	fmt.Println(g)
	fmt.Println("nodes:", g.Nodes(), "channels:", g.NumChannels(), "diameter:", g.Diameter())
	fmt.Printf("mean distance: %.3f\n", g.MeanUniformDistance())
	// Output:
	// 16-ary 2-cube (torus)
	// nodes: 256 channels: 1024 diameter: 16
	// mean distance: 8.031
}

func ExampleGrid_Offset() {
	g := topology.NewTorus(16, 2)
	src := g.ID([]int{14, 4})
	dst := g.ID([]int{2, 2})
	// Minimal travel wraps in dimension 0: +4 hops; dimension 1 needs -2.
	fmt.Println(g.Offset(src, dst, 0), g.Offset(src, dst, 1))
	fmt.Println("distance:", g.Distance(src, dst))
	// Output:
	// 4 -2
	// distance: 6
}

func ExampleGrid_Neighbor() {
	g := topology.NewTorus(4, 2)
	n := g.ID([]int{3, 0})
	fmt.Println(g.Neighbor(n, 0, topology.Plus)) // wraps to (0,0)
	mesh := topology.NewMesh(4, 2)
	fmt.Println(mesh.Neighbor(n, 0, topology.Plus)) // boundary
	// Output:
	// 0
	// -1
}

func ExampleGrid_MinimalPaths() {
	g := topology.NewTorus(16, 2)
	src := g.ID([]int{4, 4})
	dst := g.ID([]int{2, 2}) // the paper's Figure 2 pair
	fmt.Println(g.MinimalPaths(src, dst))
	// Output:
	// 6
}
