package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 2}, {0, 1}, {4, 0}, {16, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newGrid(%d,%d) did not panic", tc.k, tc.n)
				}
			}()
			NewTorus(tc.k, tc.n)
		}()
	}
}

func TestNodesAndString(t *testing.T) {
	g := NewTorus(16, 2)
	if g.Nodes() != 256 {
		t.Fatalf("16^2 torus has %d nodes, want 256", g.Nodes())
	}
	if g.String() != "16-ary 2-cube (torus)" {
		t.Errorf("String = %q", g.String())
	}
	m := NewMesh(4, 3)
	if m.Nodes() != 64 {
		t.Fatalf("4^3 mesh has %d nodes, want 64", m.Nodes())
	}
	if m.String() != "4-ary 3-cube (mesh)" {
		t.Errorf("String = %q", m.String())
	}
}

func TestCoordRoundTrip(t *testing.T) {
	for _, g := range []*Grid{NewTorus(16, 2), NewMesh(5, 3), NewTorus(3, 4)} {
		coords := make([]int, g.N())
		for id := 0; id < g.Nodes(); id++ {
			g.Coords(id, coords)
			if back := g.ID(coords); back != id {
				t.Fatalf("%v: ID(Coords(%d)) = %d", g, id, back)
			}
			for dim := 0; dim < g.N(); dim++ {
				if g.Coord(id, dim) != coords[dim] {
					t.Fatalf("%v: Coord(%d,%d) = %d, want %d", g, id, dim, g.Coord(id, dim), coords[dim])
				}
			}
		}
	}
}

func TestIDPanicsOnBadCoord(t *testing.T) {
	g := NewTorus(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("ID with out-of-range coordinate did not panic")
		}
	}()
	g.ID([]int{4, 0})
}

func TestNeighborTorus(t *testing.T) {
	g := NewTorus(16, 2)
	// (0,0) has wrap neighbours.
	n00 := g.ID([]int{0, 0})
	if got := g.Neighbor(n00, 0, Minus); got != g.ID([]int{15, 0}) {
		t.Errorf("(0,0) -x neighbour = %d, want (15,0)", got)
	}
	if got := g.Neighbor(n00, 1, Minus); got != g.ID([]int{0, 15}) {
		t.Errorf("(0,0) -y neighbour = %d, want (0,15)", got)
	}
	if got := g.Neighbor(g.ID([]int{15, 3}), 0, Plus); got != g.ID([]int{0, 3}) {
		t.Errorf("(15,3) +x neighbour = %d, want (0,3)", got)
	}
}

func TestNeighborMeshBoundary(t *testing.T) {
	g := NewMesh(4, 2)
	if got := g.Neighbor(g.ID([]int{0, 2}), 0, Minus); got != -1 {
		t.Errorf("mesh west edge neighbour = %d, want -1", got)
	}
	if got := g.Neighbor(g.ID([]int{3, 2}), 0, Plus); got != -1 {
		t.Errorf("mesh east edge neighbour = %d, want -1", got)
	}
	if got := g.Neighbor(g.ID([]int{1, 1}), 1, Plus); got != g.ID([]int{1, 2}) {
		t.Errorf("mesh interior neighbour = %d", got)
	}
}

func TestNeighborInvolution(t *testing.T) {
	// Going dir then the opposite direction returns to the start.
	for _, g := range []*Grid{NewTorus(8, 2), NewMesh(5, 2), NewTorus(4, 3)} {
		for id := 0; id < g.Nodes(); id++ {
			for dim := 0; dim < g.N(); dim++ {
				for _, dir := range []Dir{Plus, Minus} {
					nb := g.Neighbor(id, dim, dir)
					if nb < 0 {
						continue
					}
					if back := g.Neighbor(nb, dim, dir.Opposite()); back != id {
						t.Fatalf("%v: %d -%v-> %d -%v-> %d", g, id, dir, nb, dir.Opposite(), back)
					}
				}
			}
		}
	}
}

func TestDirString(t *testing.T) {
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Errorf("Dir strings: %q %q", Plus, Minus)
	}
	if Plus.Opposite() != Minus || Minus.Opposite() != Plus {
		t.Error("Opposite broken")
	}
}

func TestOffsetMinimality(t *testing.T) {
	g := NewTorus(16, 2)
	for _, tc := range []struct {
		s, d, dim, want int
	}{
		{0, 0, 0, 0},
		{0, 3, 0, 3},
		{0, 12, 0, -4}, // wrap is shorter
		{14, 2, 0, 4},  // wrap forward
		{0, 8, 0, 8},   // exact half: normalized to +8
		{8, 0, 0, 8},   // exact half from the other side
		{5, 5, 0, 0},
		{3, 1, 0, -2},
	} {
		s := g.ID([]int{tc.s, 0})
		d := g.ID([]int{tc.d, 0})
		if got := g.Offset(s, d, tc.dim); got != tc.want {
			t.Errorf("Offset(%d,%d) = %d, want %d", tc.s, tc.d, got, tc.want)
		}
	}
}

func TestOffsetOddRadix(t *testing.T) {
	g := NewTorus(5, 1)
	for _, tc := range []struct{ s, d, want int }{
		{0, 2, 2}, {0, 3, -2}, {4, 1, 2}, {1, 4, -2}, {2, 2, 0},
	} {
		if got := g.Offset(tc.s, tc.d, 0); got != tc.want {
			t.Errorf("5-ring Offset(%d,%d) = %d, want %d", tc.s, tc.d, got, tc.want)
		}
	}
}

func TestOffsetMagnitudeIsMinimal(t *testing.T) {
	// |Offset| must equal the true ring distance in each dimension.
	for _, g := range []*Grid{NewTorus(16, 2), NewTorus(7, 2), NewMesh(6, 2)} {
		f := func(a, b uint16) bool {
			s := int(a) % g.Nodes()
			d := int(b) % g.Nodes()
			for dim := 0; dim < g.N(); dim++ {
				off := g.Offset(s, d, dim)
				sc, dc := g.Coord(s, dim), g.Coord(d, dim)
				diff := dc - sc
				if diff < 0 {
					diff = -diff
				}
				want := diff
				if g.Wrap() && g.K()-diff < want {
					want = g.K() - diff
				}
				if off < 0 {
					off = -off
				}
				if off != want {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestTieInDim(t *testing.T) {
	g := NewTorus(16, 2)
	if !g.TieInDim(g.ID([]int{0, 0}), g.ID([]int{8, 0}), 0) {
		t.Error("0 -> 8 in a 16-ring should be a tie")
	}
	if g.TieInDim(g.ID([]int{0, 0}), g.ID([]int{7, 0}), 0) {
		t.Error("0 -> 7 should not be a tie")
	}
	odd := NewTorus(5, 1)
	if odd.TieInDim(0, 2, 0) {
		t.Error("odd radix never ties")
	}
	mesh := NewMesh(16, 2)
	if mesh.TieInDim(0, 8, 0) {
		t.Error("mesh never ties")
	}
}

func TestDistanceProperties(t *testing.T) {
	g := NewTorus(16, 2)
	f := func(a, b uint16) bool {
		s := int(a) % g.Nodes()
		d := int(b) % g.Nodes()
		ds := g.Distance(s, d)
		switch {
		case ds < 0 || ds > g.Diameter():
			return false
		case (ds == 0) != (s == d):
			return false
		case g.Distance(d, s) != ds: // symmetric on a torus
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	g := NewTorus(8, 2)
	f := func(a, b, c uint16) bool {
		x, y, z := int(a)%g.Nodes(), int(b)%g.Nodes(), int(c)%g.Nodes()
		return g.Distance(x, z) <= g.Distance(x, y)+g.Distance(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	if got := NewTorus(16, 2).Diameter(); got != 16 {
		t.Errorf("16^2 torus diameter = %d, want 16", got)
	}
	if got := NewMesh(16, 2).Diameter(); got != 30 {
		t.Errorf("16^2 mesh diameter = %d, want 30", got)
	}
	if got := NewTorus(5, 3).Diameter(); got != 6 {
		t.Errorf("5^3 torus diameter = %d, want 6", got)
	}
}

func TestDiameterIsAchieved(t *testing.T) {
	for _, g := range []*Grid{NewTorus(8, 2), NewMesh(4, 2), NewTorus(5, 2)} {
		maxd := 0
		for d := 0; d < g.Nodes(); d++ {
			if dist := g.Distance(0, d); dist > maxd {
				maxd = dist
			}
		}
		if maxd != g.Diameter() {
			t.Errorf("%v: max distance from 0 is %d, Diameter says %d", g, maxd, g.Diameter())
		}
	}
}

func TestMaxNegativeHops(t *testing.T) {
	if got := NewTorus(16, 2).MaxNegativeHops(); got != 8 {
		t.Errorf("16^2 torus max negative hops = %d, want 8 (paper: 9 buffer classes)", got)
	}
	if got := NewMesh(4, 2).MaxNegativeHops(); got != 3 {
		t.Errorf("4^2 mesh max negative hops = %d, want 3", got)
	}
}

func TestParityBipartite(t *testing.T) {
	// On a bipartite grid every link joins opposite parities.
	for _, g := range []*Grid{NewTorus(16, 2), NewMesh(5, 2), NewTorus(4, 3)} {
		if !g.Bipartite() {
			t.Fatalf("%v should be bipartite", g)
		}
		for id := 0; id < g.Nodes(); id++ {
			for dim := 0; dim < g.N(); dim++ {
				nb := g.Neighbor(id, dim, Plus)
				if nb < 0 {
					continue
				}
				if g.Parity(id) == g.Parity(nb) {
					t.Fatalf("%v: nodes %d and %d adjacent with equal parity", g, id, nb)
				}
			}
		}
	}
}

func TestOddTorusNotBipartite(t *testing.T) {
	g := NewTorus(5, 2)
	if g.Bipartite() {
		t.Error("5-ary torus claims to be bipartite")
	}
	// And indeed the wrap link joins equal parities.
	a := g.ID([]int{4, 0})
	b := g.Neighbor(a, 0, Plus) // wraps to (0,0)
	if g.Parity(a) != g.Parity(b) {
		t.Error("expected a parity violation across the odd wrap link")
	}
}

func TestChannelIndexRoundTrip(t *testing.T) {
	for _, g := range []*Grid{NewTorus(16, 2), NewMesh(4, 3)} {
		seen := make(map[int]bool)
		for id := 0; id < g.Nodes(); id++ {
			for dim := 0; dim < g.N(); dim++ {
				for _, dir := range []Dir{Plus, Minus} {
					ch := g.ChannelIndex(id, dim, dir)
					if ch < 0 || ch >= g.ChannelSlots() {
						t.Fatalf("channel index %d out of range", ch)
					}
					if seen[ch] {
						t.Fatalf("duplicate channel index %d", ch)
					}
					seen[ch] = true
					gid, gdim, gdir := g.ChannelInfo(ch)
					if gid != id || gdim != dim || gdir != dir {
						t.Fatalf("ChannelInfo(%d) = (%d,%d,%v), want (%d,%d,%v)", ch, gid, gdim, gdir, id, dim, dir)
					}
				}
			}
		}
		if len(seen) != g.ChannelSlots() {
			t.Fatalf("%v: %d slots seen, want %d", g, len(seen), g.ChannelSlots())
		}
	}
}

func TestNumChannels(t *testing.T) {
	if got := NewTorus(16, 2).NumChannels(); got != 1024 {
		t.Errorf("16^2 torus channels = %d, want 1024", got)
	}
	// 4x4 mesh: per dimension 3 links per line * 4 lines * 2 directions = 24.
	if got := NewMesh(4, 2).NumChannels(); got != 48 {
		t.Errorf("4^2 mesh channels = %d, want 48", got)
	}
	// NumChannels must agree with HasChannel enumeration.
	for _, g := range []*Grid{NewTorus(6, 2), NewMesh(5, 3)} {
		count := 0
		for id := 0; id < g.Nodes(); id++ {
			for dim := 0; dim < g.N(); dim++ {
				for _, dir := range []Dir{Plus, Minus} {
					if g.HasChannel(id, dim, dir) {
						count++
					}
				}
			}
		}
		if count != g.NumChannels() {
			t.Errorf("%v: enumerated %d channels, NumChannels says %d", g, count, g.NumChannels())
		}
	}
}

func TestCrossesDateline(t *testing.T) {
	g := NewTorus(16, 2)
	if !g.CrossesDateline(15, Plus) {
		t.Error("hop 15 -> 0 (+) should cross the dateline")
	}
	if g.CrossesDateline(14, Plus) {
		t.Error("hop 14 -> 15 (+) should not cross")
	}
	if !g.CrossesDateline(0, Minus) {
		t.Error("hop 0 -> 15 (-) should cross the dateline")
	}
	if g.CrossesDateline(1, Minus) {
		t.Error("hop 1 -> 0 (-) should not cross")
	}
	if NewMesh(16, 2).CrossesDateline(15, Plus) {
		t.Error("meshes have no datelines")
	}
}

func TestMeanUniformDistance(t *testing.T) {
	// The paper's "average diameter" of the 16-ary 2-cube is 8.03.
	got := NewTorus(16, 2).MeanUniformDistance()
	if math.Abs(got-8.031) > 0.001 {
		t.Errorf("16^2 torus mean distance = %.4f, want 8.031", got)
	}
	// Small cases by hand: 4-ring distances from 0: 1,2,1 -> mean 4/3.
	got = NewTorus(4, 1).MeanUniformDistance()
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("4-ring mean distance = %v, want 4/3", got)
	}
	// 2x2 mesh: distances 1,1,2 from a corner, symmetric: mean = 4/3.
	got = NewMesh(2, 2).MeanUniformDistance()
	if math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("2^2 mesh mean distance = %v, want 4/3", got)
	}
}

func TestMeanUniformDistanceMatchesEnumeration(t *testing.T) {
	g := NewTorus(6, 2)
	total, pairs := 0, 0
	for s := 0; s < g.Nodes(); s++ {
		for d := 0; d < g.Nodes(); d++ {
			if s == d {
				continue
			}
			total += g.Distance(s, d)
			pairs++
		}
	}
	want := float64(total) / float64(pairs)
	if got := g.MeanUniformDistance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean distance %v, enumeration %v", got, want)
	}
}

func BenchmarkDistance(b *testing.B) {
	g := NewTorus(16, 2)
	for i := 0; i < b.N; i++ {
		g.Distance(i%256, (i*37)%256)
	}
}

func BenchmarkNeighbor(b *testing.B) {
	g := NewTorus(16, 2)
	for i := 0; i < b.N; i++ {
		g.Neighbor(i%256, i&1, Dir(i>>1&1))
	}
}
