package topology

import (
	"math/big"
	"testing"
)

func TestMinimalPathsSmallCases(t *testing.T) {
	g := NewTorus(16, 2)
	cases := []struct {
		src, dst [2]int
		want     int64
	}{
		{[2]int{0, 0}, [2]int{1, 0}, 1},   // straight line
		{[2]int{0, 0}, [2]int{3, 0}, 1},   // still one path in one dim
		{[2]int{0, 0}, [2]int{1, 1}, 2},   // L-shape: 2 orders
		{[2]int{0, 0}, [2]int{2, 1}, 3},   // C(3,1)
		{[2]int{0, 0}, [2]int{2, 2}, 6},   // C(4,2)
		{[2]int{0, 0}, [2]int{3, 2}, 10},  // C(5,2)
		{[2]int{4, 4}, [2]int{2, 2}, 6},   // the Figure 2 pair
		{[2]int{14, 0}, [2]int{2, 3}, 35}, // wrap + C(7,3)
	}
	for _, tc := range cases {
		src := g.ID(tc.src[:])
		dst := g.ID(tc.dst[:])
		if got := g.MinimalPaths(src, dst); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("MinimalPaths(%v,%v) = %v, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestMinimalPathsSelf(t *testing.T) {
	g := NewTorus(16, 2)
	if got := g.MinimalPaths(5, 5); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("self path count = %v, want 1 (the empty path)", got)
	}
}

func TestMinimalPathsHalfRingTies(t *testing.T) {
	g := NewTorus(16, 2)
	// 8 hops in one dimension, tie: 2 paths (clockwise/counterclockwise).
	if got := g.MinimalPaths(g.ID([]int{0, 0}), g.ID([]int{8, 0})); got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("half-ring path count = %v, want 2", got)
	}
	// Diametrically opposite: ties in both dims: 4 * C(16,8).
	want := new(big.Int).Mul(big.NewInt(4), big.NewInt(12870))
	if got := g.MinimalPaths(g.ID([]int{0, 0}), g.ID([]int{8, 8})); got.Cmp(want) != 0 {
		t.Errorf("diameter path count = %v, want %v", got, want)
	}
}

func TestMinimalPathsMatchesEnumeration(t *testing.T) {
	// Exhaustive DFS count on a small torus versus the closed form.
	g := NewTorus(6, 2)
	var countPaths func(cur, dst int) int
	countPaths = func(cur, dst int) int {
		if cur == dst {
			return 1
		}
		total := 0
		for dim := 0; dim < g.N(); dim++ {
			off := g.Offset(cur, dst, dim)
			if off > 0 {
				total += countPaths(g.Neighbor(cur, dim, Plus), dst)
			} else if off < 0 {
				total += countPaths(g.Neighbor(cur, dim, Minus), dst)
			}
			// Half-ring ties on the 6-torus (offset 3) are normalized to
			// +3 by Offset, so the enumeration explores one direction; the
			// closed form doubles per tie. Skip tie pairs here.
		}
		return total
	}
	for src := 0; src < g.Nodes(); src += 5 {
		for dst := 0; dst < g.Nodes(); dst += 3 {
			tie := false
			for dim := 0; dim < g.N(); dim++ {
				if g.TieInDim(src, dst, dim) {
					tie = true
				}
			}
			if tie || src == dst {
				continue
			}
			want := int64(countPaths(src, dst))
			if got := g.MinimalPaths(src, dst); got.Cmp(big.NewInt(want)) != 0 {
				t.Fatalf("MinimalPaths(%d,%d) = %v, enumeration %d", src, dst, got, want)
			}
		}
	}
}

func TestMinimalPathsMesh(t *testing.T) {
	g := NewMesh(16, 2)
	// Corner to corner: C(30,15) orders.
	got := g.MinimalPaths(g.ID([]int{0, 0}), g.ID([]int{15, 15}))
	want := new(big.Int).Binomial(30, 15)
	if got.Cmp(want) != 0 {
		t.Errorf("mesh corner-to-corner = %v, want %v", got, want)
	}
}
