package topology

import "math/big"

// MinimalPaths returns the number of distinct minimal paths from src to
// dst: the multinomial coefficient (sum of per-dimension hop counts)! /
// product of per-dimension hop counts!. On an even-radix torus a dimension
// exactly half the ring away contributes in both directions, doubling the
// count per such dimension. The result quantifies how much physical
// adaptivity a fully adaptive algorithm actually has for a given pair —
// e-cube always uses exactly one of these paths.
func (g *Grid) MinimalPaths(src, dst int) *big.Int {
	total := 0
	count := big.NewInt(1)
	for dim := 0; dim < g.n; dim++ {
		off := g.Offset(src, dst, dim)
		if off < 0 {
			off = -off
		}
		if g.TieInDim(src, dst, dim) {
			count.Lsh(count, 1) // either way around the ring is minimal
		}
		total += off
	}
	num := new(big.Int).MulRange(1, int64(total)) // total!
	for dim := 0; dim < g.n; dim++ {
		off := g.Offset(src, dst, dim)
		if off < 0 {
			off = -off
		}
		num.Div(num, new(big.Int).MulRange(1, int64(off)))
	}
	return count.Mul(count, num)
}
