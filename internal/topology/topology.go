// Package topology models k-ary n-cube (torus) and mesh interconnection
// networks as used by the paper: an n-dimensional grid with k nodes per
// dimension, adjacent nodes connected by two unidirectional links (one per
// direction). Nodes are identified both by a dense integer id and by an
// n-tuple of per-dimension coordinates.
package topology

import "fmt"

// Dir is a direction of travel along one dimension.
type Dir int

const (
	// Plus is the direction of increasing coordinate (wrapping k-1 -> 0 on a
	// torus).
	Plus Dir = 0
	// Minus is the direction of decreasing coordinate (wrapping 0 -> k-1 on
	// a torus).
	Minus Dir = 1
)

// String returns "+" or "-".
func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir { return 1 - d }

// Grid is a k-ary n-cube (Wrap true) or an n-dimensional k-wide mesh
// (Wrap false). The zero value is not usable; construct with NewTorus or
// NewMesh.
type Grid struct {
	k     int
	n     int
	wrap  bool
	nodes int
	// stride[i] = k^i, used for id <-> coordinate conversion.
	stride []int
	// coordTab[id*n+dim] caches Coord(id, dim) and parityTab[id] caches the
	// coordinate-sum parity: the engine's injection path (message offset
	// decomposition, the hop schemes' parity classification) calls these for
	// every generated message, and the div/mod chains they replace dominate
	// that cost. O(nodes*n) words, built once at construction.
	coordTab  []int32
	parityTab []int8
}

// NewTorus returns a k-ary n-cube. It panics if k < 2 or n < 1.
func NewTorus(k, n int) *Grid { return newGrid(k, n, true) }

// NewMesh returns an n-dimensional mesh with k nodes per dimension. It
// panics if k < 2 or n < 1.
func NewMesh(k, n int) *Grid { return newGrid(k, n, false) }

func newGrid(k, n int, wrap bool) *Grid {
	if k < 2 {
		panic(fmt.Sprintf("topology: radix k = %d must be >= 2", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: dimension n = %d must be >= 1", n))
	}
	g := &Grid{k: k, n: n, wrap: wrap, stride: make([]int, n)}
	g.nodes = 1
	for i := 0; i < n; i++ {
		g.stride[i] = g.nodes
		g.nodes *= k
	}
	g.coordTab = make([]int32, g.nodes*n)
	g.parityTab = make([]int8, g.nodes)
	for id := 0; id < g.nodes; id++ {
		p := 0
		for dim := 0; dim < n; dim++ {
			c := id / g.stride[dim] % k
			g.coordTab[id*n+dim] = int32(c)
			p += c
		}
		g.parityTab[id] = int8(p & 1)
	}
	return g
}

// K returns the radix (nodes per dimension).
func (g *Grid) K() int { return g.k }

// N returns the number of dimensions.
func (g *Grid) N() int { return g.n }

// Wrap reports whether the grid has wraparound links (torus).
func (g *Grid) Wrap() bool { return g.wrap }

// Nodes returns the total number of nodes, k^n.
func (g *Grid) Nodes() int { return g.nodes }

// String describes the grid, e.g. "16-ary 2-cube (torus)".
func (g *Grid) String() string {
	kind := "mesh"
	if g.wrap {
		kind = "torus"
	}
	return fmt.Sprintf("%d-ary %d-cube (%s)", g.k, g.n, kind)
}

// Coord returns coordinate i of node id.
func (g *Grid) Coord(id, dim int) int {
	return int(g.coordTab[id*g.n+dim])
}

// Coords fills dst (which must have length >= n) with the coordinates of
// node id and returns it, least significant dimension first.
func (g *Grid) Coords(id int, dst []int) []int {
	for i := 0; i < g.n; i++ {
		dst[i] = id % g.k
		id /= g.k
	}
	return dst[:g.n]
}

// ID returns the node id for the given coordinates.
func (g *Grid) ID(coords []int) int {
	id := 0
	for i := g.n - 1; i >= 0; i-- {
		c := coords[i]
		if c < 0 || c >= g.k {
			panic(fmt.Sprintf("topology: coordinate %d out of range [0,%d)", c, g.k))
		}
		id = id*g.k + c
	}
	return id
}

// Parity returns the sum of the node's coordinates modulo 2. Nodes with
// parity 1 are the "odd" nodes of the paper's negative-hop scheme.
func (g *Grid) Parity(id int) int {
	return int(g.parityTab[id])
}

// Neighbor returns the node adjacent to id in dimension dim, direction dir,
// or -1 if the link does not exist (mesh boundary).
func (g *Grid) Neighbor(id, dim int, dir Dir) int {
	c := g.Coord(id, dim)
	var nc int
	if dir == Plus {
		nc = c + 1
		if nc == g.k {
			if !g.wrap {
				return -1
			}
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			if !g.wrap {
				return -1
			}
			nc = g.k - 1
		}
	}
	return id + (nc-c)*g.stride[dim]
}

// NumChannels returns the number of unidirectional physical channels in the
// network: 2n per node on a torus, fewer on a mesh (boundary links absent).
func (g *Grid) NumChannels() int {
	if g.wrap {
		return 2 * g.n * g.nodes
	}
	// Each dimension contributes (k-1) bidirectional link positions per line
	// of k nodes; lines per dimension = nodes/k; two unidirectional channels
	// per link.
	return 2 * g.n * (g.k - 1) * (g.nodes / g.k)
}

// ChannelSlots returns the size of a dense channel index space: one slot per
// (node, dim, dir). On a mesh some slots are invalid (boundary); use
// HasChannel to test.
func (g *Grid) ChannelSlots() int { return g.nodes * 2 * g.n }

// ChannelIndex returns the dense index of the outgoing channel from node id
// in (dim, dir).
func (g *Grid) ChannelIndex(id, dim int, dir Dir) int {
	return (id*g.n+dim)*2 + int(dir)
}

// ChannelInfo decodes a dense channel index into (node, dim, dir).
func (g *Grid) ChannelInfo(ch int) (id, dim int, dir Dir) {
	dir = Dir(ch & 1)
	ch >>= 1
	return ch / g.n, ch % g.n, dir
}

// HasChannel reports whether the outgoing channel from id in (dim, dir)
// exists.
func (g *Grid) HasChannel(id, dim int, dir Dir) bool {
	return g.Neighbor(id, dim, dir) >= 0
}

// Offset returns the signed per-dimension hop count from src to dst along a
// minimal path: positive means travel in Plus direction. On a torus the
// shorter way around the ring is chosen; an exact half-ring tie (offset
// k/2 for even k) is reported as +k/2, but TieInDim can be used to detect it
// so that callers may break the tie adaptively.
func (g *Grid) Offset(src, dst, dim int) int {
	sc := g.Coord(src, dim)
	dc := g.Coord(dst, dim)
	diff := dc - sc
	if !g.wrap {
		return diff
	}
	if diff > g.k/2 {
		diff -= g.k
	} else if diff < -g.k/2 {
		diff += g.k
	} else if diff == g.k/2 || (g.k%2 == 0 && diff == -g.k/2) {
		// Normalize the even-k half-ring case to +k/2.
		diff = g.k / 2
	}
	return diff
}

// TieInDim reports whether src and dst are exactly half a ring apart in dim,
// in which case both directions are minimal.
func (g *Grid) TieInDim(src, dst, dim int) bool {
	if !g.wrap || g.k%2 != 0 {
		return false
	}
	sc := g.Coord(src, dim)
	dc := g.Coord(dst, dim)
	diff := dc - sc
	if diff < 0 {
		diff += g.k
	}
	return diff == g.k/2
}

// Distance returns the minimal hop count from src to dst.
func (g *Grid) Distance(src, dst int) int {
	d := 0
	for i := 0; i < g.n; i++ {
		off := g.Offset(src, dst, i)
		if off < 0 {
			off = -off
		}
		d += off
	}
	return d
}

// Diameter returns the network diameter: n*floor(k/2) for a torus,
// n*(k-1) for a mesh.
func (g *Grid) Diameter() int {
	if g.wrap {
		return g.n * (g.k / 2)
	}
	return g.n * (g.k - 1)
}

// MaxNegativeHops returns the maximum number of negative hops any minimal
// route can take under the 2-colouring of the paper's negative-hop scheme:
// ceil(diameter/2). The grid is bipartite (even k for a torus; any mesh), so
// hops strictly alternate colour and at most every other hop is negative.
func (g *Grid) MaxNegativeHops() int {
	return (g.Diameter() + 1) / 2
}

// Bipartite reports whether the grid is 2-colourable by coordinate parity:
// true for meshes and for tori with even k. The paper's negative-hop
// schemes are defined only on bipartite grids.
func (g *Grid) Bipartite() bool {
	return !g.wrap || g.k%2 == 0
}

// CrossesDateline reports whether a hop from a node whose coordinate in dim
// is c, travelling dir, crosses the ring's dateline. The dateline is placed
// on the wraparound links: k-1 -> 0 for Plus, 0 -> k-1 for Minus. Dateline
// crossings drive the Dally–Seitz virtual-channel switch that makes
// dimension-order (and north-last) routing deadlock-free on rings.
func (g *Grid) CrossesDateline(c int, dir Dir) bool {
	if !g.wrap {
		return false
	}
	if dir == Plus {
		return c == g.k-1
	}
	return c == 0
}

// MeanUniformDistance returns the exact mean minimal distance over all
// ordered pairs src != dst, e.g. 8.031 for a 16-ary 2-cube (the paper's
// "average diameter" of 8.03).
func (g *Grid) MeanUniformDistance() float64 {
	// Distance distribution is translation invariant on a torus but not on a
	// mesh; enumerate src=0 only when wrap, else all pairs.
	total := 0
	pairs := 0
	if g.wrap {
		for dst := 1; dst < g.nodes; dst++ {
			total += g.Distance(0, dst)
		}
		pairs = g.nodes - 1
	} else {
		for src := 0; src < g.nodes; src++ {
			for dst := 0; dst < g.nodes; dst++ {
				if src == dst {
					continue
				}
				total += g.Distance(src, dst)
				pairs++
			}
		}
	}
	return float64(total) / float64(pairs)
}
