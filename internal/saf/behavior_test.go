package saf

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// TestChannelSerialization: two packets crossing the same link serialize —
// the second waits a full transmission time behind the first.
func TestChannelSerialization(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("phop")
	// Both packets need the +x channel out of (0,0).
	wl := traffic.NewTrace(g, "pair",
		[]int64{0, 0},
		[]traffic.Arrival{
			{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{1, 0})},
			{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{1, 0})},
		})
	var lats []int64
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, BuffersPerClass: 2, Seed: 1,
		OnDeliver: func(m *message.Message) { lats = append(lats, m.Latency()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10000); err != nil {
		t.Fatal(err)
	}
	if len(lats) != 2 {
		t.Fatalf("delivered %d", len(lats))
	}
	if lats[0] != 16 {
		t.Errorf("first packet latency %d, want 16", lats[0])
	}
	if lats[1] != 32 {
		t.Errorf("second packet latency %d, want 32 (one transmission behind)", lats[1])
	}
}

// TestBufferScarcitySerializes: with one buffer per class, a packet cannot
// advance until the predecessor vacates the class buffer ahead, which
// spreads a convoy out.
func TestBufferScarcitySerializes(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("phop")
	mk := func(bufs int) int64 {
		// A convoy of 4 packets down the same 4-hop row.
		var cycles []int64
		var arrs []traffic.Arrival
		for i := 0; i < 4; i++ {
			cycles = append(cycles, 0)
			arrs = append(arrs, traffic.Arrival{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{4, 0})})
		}
		wl := traffic.NewTrace(g, "convoy", cycles, arrs)
		var last int64
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, BuffersPerClass: bufs, Seed: 1,
			OnDeliver: func(m *message.Message) {
				if m.DeliverTime > last {
					last = m.DeliverTime
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(100000); err != nil {
			t.Fatal(err)
		}
		return last
	}
	scarce := mk(1)
	plentiful := mk(4)
	if plentiful > scarce {
		t.Errorf("more buffers should not slow the convoy: %d vs %d", plentiful, scarce)
	}
	// The channel is the hard bottleneck: 4 packets x 16 flits over the
	// first link = 64 cycles minimum before the last packet's final hop.
	if scarce < 64+16*3 {
		t.Errorf("convoy makespan %d implausibly fast", scarce)
	}
}

// TestNbcStartClassChoice: under store-and-forward, nbc still spreads
// launches across buffer classes (the bonus cards apply to the source
// buffer choice).
func TestNbcStartClassChoice(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("nbc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 5)
	seen := map[int]bool{}
	n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		for _, p := range n.waiting {
			if p.msg.HopsTaken == 0 {
				seen[p.class] = true
			}
		}
	}
	if len(seen) < 3 {
		t.Errorf("nbc launches used only classes %v; expected a bonus-card spread", seen)
	}
}

// TestSafDeterminism: identical seeds give identical histories.
func TestSafDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("nhop")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 7)
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 7})
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		_, _, _, del := n.Counts()
		return n.FlitMoves(), del
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", f1, d1, f2, d2)
	}
}

// TestSafHigherLoadMoreFlits: sanity that load scales the work.
func TestSafHigherLoadMoreFlits(t *testing.T) {
	run := func(rate float64) int64 {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("phop")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, 7)
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 7})
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		return n.FlitMoves()
	}
	if lo, hi := run(0.002), run(0.008); hi <= lo {
		t.Errorf("4x the load moved %d <= %d flits", hi, lo)
	}
}
