// Package saf is the store-and-forward substrate the paper's hop schemes
// are derived from (sec. 2.1): a packet-level simulator in which whole
// messages hop between per-node buffers partitioned into ranked classes
// (Gopal's buffer-reservation technique). It exists to validate the
// saf -> wormhole derivation of Lemma 1 — the buffer classes a message
// occupies must have monotonically increasing ranks — and to contrast
// packet and wormhole switching as sec. 3.4 does.
//
// A message occupies exactly one buffer; to advance it reserves a free
// buffer of the required class at the next node and a free outgoing
// physical channel, then transmits for MsgLen cycles (one flit per cycle)
// holding both buffers; on completion the upstream buffer and channel are
// released. Delivery consumes the packet immediately.
package saf

import (
	"fmt"

	"wormsim/internal/congestion"
	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Config describes one store-and-forward simulation.
type Config struct {
	Grid      *topology.Grid
	Algorithm routing.Algorithm
	Policy    routing.SelectionPolicy
	Workload  traffic.Workload
	// MsgLen is the packet length in flits; a hop's transmission occupies
	// the channel for MsgLen cycles.
	MsgLen int
	// BuffersPerClass is the number of buffers of each class at every node
	// (default 1, the scarcest configuration).
	BuffersPerClass int
	// CCLimit enables the injection-side congestion control as in the
	// wormhole simulator (0 disables).
	CCLimit        int
	Seed           uint64
	WatchdogCycles int64
	OnDeliver      func(*message.Message)
}

// packet is a message plus its store-and-forward position.
type packet struct {
	msg *message.Message
	// node is where the packet (or its receiving buffer) is; class is the
	// buffer class it occupies there.
	node  int
	class int
	// arriving is nonzero while the packet is being transmitted into node;
	// it is the cycle the transmission completes. The upstream buffer
	// (prevNode/prevClass) and channel (prevCh) are held until then.
	arriving  int64
	prevNode  int
	prevClass int
	// leavingSource marks the in-progress hop as the packet's first, so the
	// congestion slot is released when it completes.
	leavingSource bool
}

// Network is a running store-and-forward simulation.
type Network struct {
	cfg     Config
	g       *topology.Grid
	alg     routing.Algorithm
	policy  routing.SelectionPolicy
	wl      traffic.Workload
	classes int
	limiter *congestion.Limiter
	rt      *rng.Stream

	now        int64
	nextMsgID  int64
	inFlight   int
	lastMotion int64

	// free[node*classes+class] counts free buffers.
	free []int
	// chBusyUntil[ch] is the cycle the channel becomes free.
	chBusyUntil []int64
	// waiting packets are settled in a buffer and trying to advance, FIFO.
	waiting []*packet
	// moving packets are mid-transmission.
	moving []*packet
	// queue holds admitted messages waiting for a source buffer.
	queue [][]*message.Message

	arrivals   []traffic.Arrival
	cands      []routing.Candidate
	cands2     []routing.Candidate
	freeCands  []routing.Candidate
	freeScores []int

	// Window counters.
	cycles    int64
	flitMoves int64
	generated int64
	admitted  int64
	dropped   int64
	delivered int64
}

// New validates cfg and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Grid == nil || cfg.Algorithm == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("saf: Grid, Algorithm and Workload are required")
	}
	switch cfg.Algorithm.(type) {
	case routing.PositiveHop, routing.NegativeHop, routing.BonusCards:
		// Gopal's hop schemes: buffer ranks increase strictly along every
		// route, which is what makes buffer reservation deadlock-free.
	default:
		// Channel-oriented disciplines (dateline or tag classes) are NOT
		// safe under store-and-forward: node buffers are shared by both
		// directions and all dimensions, so two head-on packets can each
		// hold the single buffer the other needs. Only the wormhole engine
		// runs those algorithms.
		return nil, fmt.Errorf("saf: algorithm %s has no deadlock-free buffer-reservation form; use phop, nhop or nbc", cfg.Algorithm.Name())
	}
	if err := cfg.Algorithm.Compatible(cfg.Grid); err != nil {
		return nil, err
	}
	if cfg.MsgLen <= 0 {
		cfg.MsgLen = 16
	}
	if cfg.BuffersPerClass <= 0 {
		cfg.BuffersPerClass = 1
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 50000
	}
	if cfg.Policy == nil {
		cfg.Policy = routing.RandomPolicy{}
	}
	g := cfg.Grid
	n := &Network{
		cfg:     cfg,
		g:       g,
		alg:     cfg.Algorithm,
		policy:  cfg.Policy,
		wl:      cfg.Workload,
		classes: cfg.Algorithm.NumVCs(g),
		limiter: congestion.NewLimiter(g.Nodes(), cfg.CCLimit),
		rt:      rng.NewStream(cfg.Seed, 0x5af5),
	}
	n.free = make([]int, g.Nodes()*n.classes)
	for i := range n.free {
		n.free[i] = cfg.BuffersPerClass
	}
	n.chBusyUntil = make([]int64, g.ChannelSlots())
	n.queue = make([][]*message.Message, g.Nodes())
	return n, nil
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Grid returns the topology.
func (n *Network) Grid() *topology.Grid { return n.g }

// FlitMoves returns the cumulative flit transfers across physical channels.
func (n *Network) FlitMoves() int64 { return n.flitMoves }

// InFlight returns admitted-but-undelivered messages.
func (n *Network) InFlight() int { return n.inFlight }

// Utilization returns flit moves per cycle per channel for the whole run.
func (n *Network) Utilization() float64 {
	if n.cycles == 0 {
		return 0
	}
	return float64(n.flitMoves) / (float64(n.cycles) * float64(n.g.NumChannels()))
}

// Counts returns generated/admitted/dropped/delivered totals.
func (n *Network) Counts() (generated, admitted, dropped, delivered int64) {
	return n.generated, n.admitted, n.dropped, n.delivered
}

// Step advances one cycle.
func (n *Network) Step() error {
	n.completeTransmissions()
	n.inject()
	n.launch()
	n.advance()
	n.now++
	n.cycles++
	if n.cfg.WatchdogCycles > 0 && n.inFlight > 0 && n.now-n.lastMotion > n.cfg.WatchdogCycles {
		return fmt.Errorf("saf: no progress for %d cycles with %d packets in flight (possible deadlock)",
			n.now-n.lastMotion, n.inFlight)
	}
	return nil
}

// Run advances the given number of cycles.
func (n *Network) Run(cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Drain runs until empty or maxCycles pass.
func (n *Network) Drain(maxCycles int64) error {
	for i := int64(0); i < maxCycles; i++ {
		if n.inFlight == 0 {
			return nil
		}
		if err := n.Step(); err != nil {
			return err
		}
	}
	if n.inFlight > 0 {
		return fmt.Errorf("saf: %d packets still in flight after %d drain cycles", n.inFlight, maxCycles)
	}
	return nil
}

// completeTransmissions settles packets whose hop transmission finished:
// release the upstream buffer and either deliver or join the waiting list.
func (n *Network) completeTransmissions() {
	kept := n.moving[:0]
	for _, p := range n.moving {
		if p.arriving > n.now {
			kept = append(kept, p)
			continue
		}
		n.lastMotion = n.now
		n.free[p.prevNode*n.classes+p.prevClass]++
		if p.leavingSource {
			// The packet has fully left its source: release the congestion
			// slot.
			n.limiter.Release(p.msg.Src, p.msg.Class)
			p.leavingSource = false
		}
		if p.node == p.msg.Dst {
			// Consume instantly; the delivery buffer was never reserved
			// (the destination's consumption queue is outside the network).
			p.msg.DeliverTime = n.now
			n.inFlight--
			n.delivered++
			if n.cfg.OnDeliver != nil {
				n.cfg.OnDeliver(p.msg)
			}
			continue
		}
		p.arriving = 0
		n.waiting = append(n.waiting, p)
	}
	n.moving = kept
}

// inject admits new arrivals into the per-source queues.
func (n *Network) inject() {
	n.arrivals = n.wl.Arrivals(n.now, n.arrivals[:0])
	for _, a := range n.arrivals {
		n.generated++
		m := message.New(n.g, n.nextMsgID, a.Src, a.Dst, n.cfg.MsgLen, n.now, func(int) bool { return n.rt.Bernoulli(0.5) })
		n.nextMsgID++
		n.alg.Init(n.g, m)
		if !n.limiter.Admit(a.Src, m.Class) {
			n.dropped++
			continue
		}
		n.admitted++
		n.inFlight++
		n.queue[a.Src] = append(n.queue[a.Src], m)
	}
}

// launch moves queued messages into source buffers. The source buffer class
// is whatever the algorithm's first-hop candidates specify (class 0 for
// phop/nhop, any class up to the bonus for nbc, the dateline class for
// e-cube) — a queued message launches as soon as one such buffer is free.
func (n *Network) launch() {
	for src := range n.queue {
		q := n.queue[src]
		kept := q[:0]
		for _, m := range q {
			if p := n.tryLaunch(src, m); p != nil {
				n.waiting = append(n.waiting, p)
				n.lastMotion = n.now
			} else {
				kept = append(kept, m)
			}
		}
		n.queue[src] = kept
	}
}

// tryLaunch reserves a source buffer for m, returning the settled packet or
// nil.
func (n *Network) tryLaunch(src int, m *message.Message) *packet {
	n.cands = n.alg.Candidates(n.g, m, src, n.cands[:0])
	n.freeCands = n.freeCands[:0]
	n.freeScores = n.freeScores[:0]
	seen := make(map[int]bool, 4)
	for _, c := range n.cands {
		if seen[c.VC] || n.free[src*n.classes+c.VC] == 0 {
			continue
		}
		seen[c.VC] = true
		n.freeCands = append(n.freeCands, c)
		n.freeScores = append(n.freeScores, -n.free[src*n.classes+c.VC])
	}
	if len(n.freeCands) == 0 {
		return nil
	}
	pick := n.freeCands[n.policy.Select(n.freeCands, n.freeScores, n.rt)]
	n.alg.Allocated(n.g, m, src, pick)
	n.free[src*n.classes+pick.VC]--
	return &packet{msg: m, node: src, class: pick.VC}
}

// advance lets settled packets reserve their next hop, FIFO over the waiting
// list (the paper's starvation-avoidance rule).
func (n *Network) advance() {
	kept := n.waiting[:0]
	for _, p := range n.waiting {
		if n.tryHop(p) {
			n.lastMotion = n.now
		} else {
			kept = append(kept, p)
		}
	}
	n.waiting = kept
}

// tryHop reserves the next channel and downstream buffer for p and starts
// the transmission. The downstream buffer class is read off the algorithm's
// candidates at the downstream node after a trial advance of the routing
// state (the saf <-> wormhole correspondence: the class used for a hop from
// x is the class of the buffer occupied at x).
func (n *Network) tryHop(p *packet) bool {
	m := p.msg
	n.cands = n.alg.Candidates(n.g, m, p.node, n.cands[:0])
	n.freeCands = n.freeCands[:0]
	n.freeScores = n.freeScores[:0]
	for _, c := range n.cands {
		if c.VC != p.class {
			// Lemma 1's correspondence: the hop out of this node must use
			// the class of the buffer held here. (Only nbc's first hop
			// offers several classes, and that choice was made at launch.)
			continue
		}
		ch := n.g.ChannelIndex(p.node, c.Dim, c.Dir)
		if !n.g.HasChannel(p.node, c.Dim, c.Dir) || n.chBusyUntil[ch] > n.now {
			continue
		}
		next := n.g.Neighbor(p.node, c.Dim, c.Dir)
		nextClass := n.nextClass(p, c)
		if next != m.Dst && n.free[next*n.classes+nextClass] == 0 {
			continue
		}
		n.freeCands = append(n.freeCands, c)
		n.freeScores = append(n.freeScores, 0)
	}
	if len(n.freeCands) == 0 {
		return false
	}
	c := n.freeCands[n.policy.Select(n.freeCands, n.freeScores, n.rt)]
	ch := n.g.ChannelIndex(p.node, c.Dim, c.Dir)
	next := n.g.Neighbor(p.node, c.Dim, c.Dir)
	nextClass := n.nextClass(p, c)
	// Reserve: channel for MsgLen cycles, downstream buffer (unless this is
	// the delivery hop, where the packet is consumed on arrival but we model
	// the receiving buffer as reserved during transmission).
	n.chBusyUntil[ch] = n.now + int64(n.cfg.MsgLen)
	if next != m.Dst {
		n.free[next*n.classes+nextClass]--
	}
	n.flitMoves += int64(n.cfg.MsgLen)
	m.Advance(n.g, c.Dim, c.Dir, n.g.Coord(p.node, c.Dim), n.g.Parity(p.node))
	p.prevNode, p.prevClass = p.node, p.class
	p.leavingSource = m.HopsTaken == 1
	p.node, p.class = next, nextClass
	p.arriving = n.now + int64(n.cfg.MsgLen)
	n.moving = append(n.moving, p)
	return true
}

// nextClass computes the buffer class the packet will occupy after taking
// candidate c: the class its next hop would use, which by the saf/wormhole
// correspondence is the arrival buffer's class. It is computed exactly by a
// trial advance of the routing state followed by a restore, so every
// algorithm's own Candidates logic defines it. For algorithms that offer
// several classes at the next node (2pn's corrected-dimension free bits),
// the first candidate's class is used.
func (n *Network) nextClass(p *packet, c routing.Candidate) int {
	m := p.msg
	next := n.g.Neighbor(p.node, c.Dim, c.Dir)
	if next == m.Dst {
		return 0 // consumed on arrival; no buffer class needed
	}
	prevRem := m.Remaining[c.Dim]
	prevHops := m.HopsTaken
	prevNeg := m.NegHops
	prevCross := m.Crossed[c.Dim]
	m.Advance(n.g, c.Dim, c.Dir, n.g.Coord(p.node, c.Dim), n.g.Parity(p.node))
	n.cands2 = n.alg.Candidates(n.g, m, next, n.cands2[:0])
	class := n.cands2[0].VC
	m.Remaining[c.Dim] = prevRem
	m.HopsTaken = prevHops
	m.NegHops = prevNeg
	m.Crossed[c.Dim] = prevCross
	return class
}
