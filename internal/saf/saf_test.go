package saf

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func oneShot(t *testing.T, g *topology.Grid, algName string, src, dst, msgLen int) *message.Message {
	t.Helper()
	alg, err := routing.Get(algName)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewTrace(g, "one", []int64{0}, []traffic.Arrival{{Src: src, Dst: dst}})
	var delivered *message.Message
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: msgLen, Seed: 1,
		OnDeliver: func(m *message.Message) { delivered = m },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(100000); err != nil {
		t.Fatalf("%s: %v", algName, err)
	}
	if delivered == nil {
		t.Fatalf("%s: message not delivered", algName)
	}
	return delivered
}

// TestUnloadedLatencyIsHopsTimesLength: store-and-forward latency without
// queueing is d * ml cycles — the whole packet is retransmitted at every
// hop, the contrast with wormhole's d + ml - 1 that motivates wormhole
// switching in the first place.
func TestUnloadedLatencyIsHopsTimesLength(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for _, algName := range []string{"phop", "nhop", "nbc"} {
		for _, tc := range []struct {
			src, dst [2]int
		}{
			{[2]int{0, 0}, [2]int{3, 0}},
			{[2]int{4, 4}, [2]int{2, 2}},
			{[2]int{14, 1}, [2]int{2, 1}},
		} {
			src := g.ID(tc.src[:])
			dst := g.ID(tc.dst[:])
			m := oneShot(t, g, algName, src, dst, 16)
			want := int64(g.Distance(src, dst) * 16)
			if m.Latency() != want {
				t.Errorf("%s %v->%v: latency %d, want %d", algName, tc.src, tc.dst, m.Latency(), want)
			}
		}
	}
}

func TestSafSlowerThanWormholeUnloaded(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := oneShot(t, g, "phop", 0, g.ID([]int{5, 3}), 16)
	// 8 hops: saf 128 cycles vs wormhole 8+15 = 23.
	if m.Latency() != 128 {
		t.Errorf("saf latency %d, want 128", m.Latency())
	}
}

func TestConservationAfterDrain(t *testing.T) {
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"phop", "nhop", "nbc"} {
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.005, 5)
		var hopFlits int64
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 5,
			OnDeliver: func(m *message.Message) { hopFlits += int64(m.HopsTotal) * int64(m.Len) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(3000); err != nil {
			t.Fatalf("%s: %v", algName, err)
		}
		quiet := traffic.NewBernoulli(g, traffic.NewUniform(g), 0, 5)
		*wl = *quiet
		if err := n.Drain(200000); err != nil {
			t.Fatalf("%s drain: %v", algName, err)
		}
		if n.FlitMoves() != hopFlits {
			t.Errorf("%s: %d flit moves, deliveries account for %d", algName, n.FlitMoves(), hopFlits)
		}
		gen, adm, drop, del := n.Counts()
		if adm != del {
			t.Errorf("%s: admitted %d != delivered %d", algName, adm, del)
		}
		if gen != adm+drop {
			t.Errorf("%s: generated %d != admitted %d + dropped %d", algName, gen, adm, drop)
		}
	}
}

// TestDeadlockFreedomUnderStress: the hop schemes must survive a
// saturating store-and-forward load with single buffers per class — the
// regime Gopal's buffer-reservation proof covers.
func TestDeadlockFreedomUnderStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"phop", "nhop", "nbc"} {
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 7)
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16,
			BuffersPerClass: 1, CCLimit: 2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(8000); err != nil {
			t.Fatalf("%s: %v", algName, err)
		}
		quiet := traffic.NewBernoulli(g, traffic.NewUniform(g), 0, 7)
		*wl = *quiet
		if err := n.Drain(300000); err != nil {
			t.Fatalf("%s failed to drain: %v", algName, err)
		}
	}
}

func TestUtilizationPositive(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("phop")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 3)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 3})
	if n.Utilization() != 0 {
		t.Error("utilization before running should be 0")
	}
	if err := n.Run(2000); err != nil {
		t.Fatal(err)
	}
	u := n.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v", u)
	}
	if n.Grid() != g {
		t.Error("Grid accessor broken")
	}
}

func TestCongestionControl(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("phop")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.08, 9)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 1, Seed: 9})
	if err := n.Run(4000); err != nil {
		t.Fatal(err)
	}
	_, _, dropped, _ := n.Counts()
	if dropped == 0 {
		t.Error("saturating saf load with CC limit 1 should drop")
	}
}

func TestBuffersPerClassRelievePressure(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nhop")
	run := func(bufs int) int64 {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 11)
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, BuffersPerClass: bufs, Seed: 11})
		if err := n.Run(5000); err != nil {
			t.Fatal(err)
		}
		return n.FlitMoves()
	}
	if one, four := run(1), run(4); four < one {
		t.Errorf("more buffers moved fewer flits: %d vs %d", one, four)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty saf config accepted")
	}
	odd := topology.NewTorus(5, 2)
	nh, _ := routing.Get("nhop")
	wl := traffic.NewBernoulli(odd, traffic.NewUniform(odd), 0.01, 1)
	if _, err := New(Config{Grid: odd, Algorithm: nh, Workload: wl}); err == nil {
		t.Error("nhop on odd torus accepted")
	}
}

// TestNextClassMatchesArrivalCandidates: the buffer class reserved at the
// next node must be exactly the class the algorithm quotes once the packet
// is there (the Lemma 1 correspondence), across random walks.
func TestNextClassMatchesArrivalCandidates(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for _, algName := range []string{"phop", "nhop", "nbc"} {
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.002, 13)
		var checked int
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 4, Seed: 13})
		// Run and, at every completed hop, verify the settled packet's class
		// is among the candidate classes at its node.
		for i := 0; i < 3000; i++ {
			if err := n.Step(); err != nil {
				t.Fatalf("%s: %v", algName, err)
			}
			for _, p := range n.waiting {
				var cands []routing.Candidate
				cands = alg.Candidates(g, p.msg, p.node, cands)
				ok := false
				for _, c := range cands {
					if c.VC == p.class {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("%s: packet %v at %d holds class %d, candidates %v",
						algName, p.msg, p.node, p.class, cands)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: nothing checked", algName)
		}
	}
}
