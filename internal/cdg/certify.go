package cdg

import (
	"encoding/json"
	"fmt"
	"io"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

// Schema identifies the certificate file format. Bump it when the
// Certificate fields change incompatibly.
const Schema = "wormsim/cdg-certificates/v1"

// Certification methods: how a cell was proven deadlock-free.
const (
	// MethodDallySeitz: the plain channel-dependency graph is acyclic, the
	// strongest criterion (applies to any routing discipline).
	MethodDallySeitz = "dally-seitz"
	// MethodDuatoEscape: the plain CDG is cyclic but the lowest-class
	// escape subfunction is acyclic; by Duato's theory the fully adaptive
	// algorithm is deadlock-free because a blocked header always has its
	// escape candidate among its choices.
	MethodDuatoEscape = "duato-escape"
	// MethodNone: no proof available — the cell is deadlock-free only if
	// its registered expectation says so (there are none such; unproven
	// cells must be registered known-cyclic or certification fails).
	MethodNone = "none"
)

// Instance is one topology point of the certification matrix.
type Instance struct {
	K    int  `json:"k"`
	N    int  `json:"n"`
	Wrap bool `json:"wrap"`
}

// Grid materializes the instance.
func (i Instance) Grid() *topology.Grid {
	if i.Wrap {
		return topology.NewTorus(i.K, i.N)
	}
	return topology.NewMesh(i.K, i.N)
}

// String renders the instance compactly, e.g. "4x4x4 torus".
func (i Instance) String() string {
	s := ""
	for d := 0; d < i.N; d++ {
		if d > 0 {
			s += "x"
		}
		s += fmt.Sprint(i.K)
	}
	if i.Wrap {
		return s + " torus"
	}
	return s + " mesh"
}

// Matrix is the certification matrix: every topology shape the simulator's
// experiments use, mesh and torus, small enough for the exact analysis.
// All radices are even so the negative-hop schemes are defined everywhere.
func Matrix() []Instance {
	return []Instance{
		{K: 4, N: 2, Wrap: false},
		{K: 4, N: 2, Wrap: true},
		{K: 8, N: 2, Wrap: false},
		{K: 8, N: 2, Wrap: true},
		{K: 4, N: 3, Wrap: false},
		{K: 4, N: 3, Wrap: true},
	}
}

// KnownCyclic reports the registered expectation that no deadlock-freedom
// proof exists for an algorithm on a mesh or torus — any other unproven
// cell fails certification.
//
// Two torus cases are registered, both documented negative findings of this
// reproduction (see the cdg package tests and DESIGN.md):
//
//   - 2pnsrc: the literal source-computed eq. (1) tag. Messages circling a
//     ring in one direction can share a tag class, so ring cycles survive
//     every class switch; the simulator genuinely deadlocks on it.
//   - 2pn: the per-hop tag. Both its full candidate set and its pinned-tag
//     escape subfunction have dependency cycles on tori, so neither the
//     Dally–Seitz nor the Duato-escape argument applies. A cycle is
//     necessary but not sufficient for deadlock, and drain stress has
//     never wedged this variant, but the certificate records the honest
//     verdict: unproven on tori.
func KnownCyclic(alg string, wrap bool) bool {
	return wrap && (alg == "2pn" || alg == "2pnsrc")
}

// escape restricts a fully adaptive algorithm to the lowest virtual-channel
// class offered per physical hop — the escape routing subfunction whose
// acyclicity certifies the full algorithm by Duato's theory. For the 2pn
// family this pins the tag's free bits to zero, Dally's 2^(n-1)-channel
// mesh scheme.
type escape struct{ routing.Algorithm }

func (e escape) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	all := e.Algorithm.Candidates(g, m, node, nil)
	for dim := 0; dim < g.N(); dim++ {
		for dir := topology.Plus; dir <= topology.Minus; dir++ {
			best := -1
			for _, c := range all {
				if c.Dim == dim && c.Dir == dir && (best < 0 || c.VC < best) {
					best = c.VC
				}
			}
			if best >= 0 {
				dst = append(dst, routing.Candidate{Dim: dim, Dir: dir, VC: best})
			}
		}
	}
	return dst
}

// Certificate records the analysis of one (algorithm, instance) cell.
type Certificate struct {
	Algorithm string `json:"algorithm"`
	Instance  string `json:"instance"`
	Grid      string `json:"grid"`
	// VCs and Edges size the plain channel-dependency graph (zero when
	// skipped); Acyclic is its verdict.
	VCs     int  `json:"vcs"`
	Edges   int  `json:"edges"`
	Acyclic bool `json:"acyclic"`
	// EscapeEdges and EscapeAcyclic report the escape-subfunction analysis,
	// run only when the plain CDG is cyclic and the algorithm is fully
	// adaptive.
	EscapeEdges   int  `json:"escape_edges,omitempty"`
	EscapeAcyclic bool `json:"escape_acyclic,omitempty"`
	// Method is how the cell was certified (dally-seitz, duato-escape) or
	// "none" when no proof applies.
	Method string `json:"method,omitempty"`
	// Certified reports a machine-checked deadlock-freedom proof; OK that
	// the outcome matches the registered expectation (KnownCyclic cells are
	// expected uncertified).
	Certified bool `json:"certified"`
	OK        bool `json:"ok"`
	// Skipped holds the incompatibility reason when the algorithm is not
	// defined on the instance (e.g. north-last beyond two dimensions).
	Skipped string `json:"skipped,omitempty"`
	// Witness is the plain-CDG cycle, one virtual channel per entry, for
	// uncertified cells.
	Witness []string `json:"witness,omitempty"`
}

// Certification is the full gate output, written to cdg_certificates.json.
type Certification struct {
	Schema       string        `json:"schema"`
	Algorithms   []string      `json:"algorithms"`
	Instances    []string      `json:"instances"`
	Certificates []Certificate `json:"certificates"`
	// Counts over cells: proven by plain Dally–Seitz, proven by Duato
	// escape, registered known-cyclic, and skipped-incompatible.
	DallySeitz  int `json:"dally_seitz"`
	DuatoEscape int `json:"duato_escape"`
	KnownCyclic int `json:"known_cyclic"`
	Skipped     int `json:"skipped"`
	// Failures lists every cell whose outcome contradicts its registered
	// expectation; AllOK reports that there are none.
	Failures []string `json:"failures,omitempty"`
	AllOK    bool     `json:"all_ok"`
}

// Certify runs the exhaustive analyzer over algs (nil means every
// registered algorithm) on the full Matrix and returns the certification.
// The output is deterministic — algorithms in sorted registry order,
// instances in Matrix order, witness cycles from the sorted DFS — so it can
// be locked by a golden file.
func Certify(algs []string) (*Certification, error) {
	if algs == nil {
		algs = routing.Names()
	}
	c := &Certification{Schema: Schema, Algorithms: algs, AllOK: true}
	for _, inst := range Matrix() {
		c.Instances = append(c.Instances, inst.String())
	}
	for _, name := range algs {
		alg, err := routing.Get(name)
		if err != nil {
			return nil, err
		}
		for _, inst := range Matrix() {
			cert, err := certifyCell(alg, inst)
			if err != nil {
				return nil, fmt.Errorf("cdg: certify %s on %s: %w", name, inst, err)
			}
			switch {
			case cert.Skipped != "":
				c.Skipped++
			case cert.Method == MethodDallySeitz:
				c.DallySeitz++
			case cert.Method == MethodDuatoEscape:
				c.DuatoEscape++
			case cert.OK:
				c.KnownCyclic++
			}
			if !cert.OK {
				c.AllOK = false
				c.Failures = append(c.Failures,
					fmt.Sprintf("%s on %s: certified=%v (method %s), expected %s",
						name, inst, cert.Certified, cert.Method, expectation(name, inst.Wrap)))
			}
			c.Certificates = append(c.Certificates, cert)
		}
	}
	return c, nil
}

// certifyCell analyzes one (algorithm, instance) cell.
func certifyCell(alg routing.Algorithm, inst Instance) (Certificate, error) {
	g := inst.Grid()
	cert := Certificate{
		Algorithm: alg.Name(),
		Instance:  inst.String(),
		Grid:      g.String(),
	}
	if err := alg.Compatible(g); err != nil {
		cert.Skipped = err.Error()
		cert.OK = true
		return cert, nil
	}
	res, err := Analyze(g, alg)
	if err != nil {
		return cert, err
	}
	cert.VCs = res.VCs
	cert.Edges = res.Edges
	cert.Acyclic = res.Acyclic()
	switch {
	case cert.Acyclic:
		cert.Method = MethodDallySeitz
		cert.Certified = true
	case alg.FullyAdaptive():
		esc, err := Analyze(g, escape{alg})
		if err != nil {
			return cert, err
		}
		cert.EscapeEdges = esc.Edges
		cert.EscapeAcyclic = esc.Acyclic()
		if cert.EscapeAcyclic {
			cert.Method = MethodDuatoEscape
			cert.Certified = true
		} else {
			cert.Method = MethodNone
		}
	default:
		cert.Method = MethodNone
	}
	if !cert.Certified {
		for _, v := range res.Cycle {
			cert.Witness = append(cert.Witness, v.Describe(g))
		}
	}
	cert.OK = cert.Certified != KnownCyclic(alg.Name(), inst.Wrap)
	return cert, nil
}

func expectation(alg string, wrap bool) string {
	if KnownCyclic(alg, wrap) {
		return "known-cyclic"
	}
	return "certified"
}

// WriteJSON writes the certification as indented JSON, the
// cdg_certificates.json format consumed by CI and the golden-file test.
func (c *Certification) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
