package cdg

import (
	"strings"
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

// TestPaperAlgorithmsAcyclic is the formal deadlock-freedom check: the
// non-adaptive, partially adaptive and hop-scheme algorithms must have an
// acyclic plain channel-dependency graph (the strongest, Dally–Seitz
// criterion) on exact small instances of the topologies the simulator runs
// them on. The fully adaptive 2pn is covered separately: adaptive routing
// can be deadlock-free with a cyclic plain CDG (Duato), and
// TestTwoPowerNEscapeAcyclic checks its escape subfunction instead.
func TestPaperAlgorithmsAcyclic(t *testing.T) {
	grids := []*topology.Grid{
		topology.NewTorus(4, 2),
		topology.NewTorus(6, 2),
		topology.NewMesh(4, 2),
		topology.NewMesh(5, 2),
		topology.NewTorus(4, 3),
	}
	algs := []string{"ecube", "nlast", "phop", "nhop", "nbc", "ecube2x", "wfirst", "negfirst"}
	for _, g := range grids {
		for _, name := range algs {
			alg, err := routing.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if alg.Compatible(g) != nil {
				continue // nhop/nbc on odd grids; nlast/wfirst beyond 2-D
			}
			res, err := Analyze(g, alg)
			if err != nil {
				t.Fatalf("%s on %v: %v", name, g, err)
			}
			if !res.Acyclic() {
				t.Errorf("%s on %v has a dependency cycle:\n  %s", name, g, res.DescribeCycle(g))
			}
			if res.Edges == 0 {
				t.Errorf("%s on %v produced no dependency edges", name, g)
			}
		}
	}
}

// pinnedTwoPowerN restricts 2pn to the single tag whose free bits are zero:
// one virtual channel per admissible physical hop, the escape subfunction
// of the adaptive scheme. Per Duato's theory, a connected routing
// subfunction with acyclic dependencies makes the enclosing adaptive
// algorithm deadlock-free: a blocked 2pn header always has its pinned-tag
// candidate among its choices.
type pinnedTwoPowerN struct{ routing.TwoPowerN }

func (pinnedTwoPowerN) Name() string { return "2pn-pinned" }

func (p pinnedTwoPowerN) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	all := p.TwoPowerN.Candidates(g, m, node, nil)
	// Keep, per (dim, dir), the minimum tag = forced bits with free bits 0.
	best := map[[2]int]routing.Candidate{}
	for _, c := range all {
		key := [2]int{c.Dim, int(c.Dir)}
		if cur, ok := best[key]; !ok || c.VC < cur.VC {
			best[key] = c
		}
	}
	for _, c := range all {
		key := [2]int{c.Dim, int(c.Dir)}
		if best[key] == c {
			dst = append(dst, c)
		}
	}
	return dst
}

// TestTwoPowerNMeshEscapeAcyclic: on a MESH, the pinned-tag subfunction of
// 2pn is acyclic — this is Dally's 2^(n-1)-channel mesh result, formally
// verified, and by Duato's theory it covers the full adaptive mesh scheme.
func TestTwoPowerNMeshEscapeAcyclic(t *testing.T) {
	for _, g := range []*topology.Grid{
		topology.NewMesh(4, 2),
		topology.NewMesh(5, 2),
	} {
		res, err := Analyze(g, pinnedTwoPowerN{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Acyclic() {
			t.Errorf("pinned 2pn on %v has a cycle:\n  %s", g, res.DescribeCycle(g))
		}
	}
}

// TestTwoPowerNTorusCDGCyclic documents a negative finding of this
// reproduction: on TORI, both readings of eq. (1) — per-hop and
// source-fixed tags, full candidate sets or pinned free bits — have
// channel-dependency cycles, so the paper's claimed 2^n-channel torus
// scheme admits no simple Dally–Seitz or pinned-escape proof. The two
// variants nonetheless behave very differently in practice: 45-config
// drain stress never wedges the per-hop variant (a CDG cycle is necessary
// but not sufficient for deadlock), while the source-tag variant genuinely
// deadlocks (see network.TestSourceTag2pnCanDeadlock).
func TestTwoPowerNTorusCDGCyclic(t *testing.T) {
	g := topology.NewTorus(4, 2)
	for name, alg := range map[string]routing.Algorithm{
		"2pn":           routing.TwoPowerN{},
		"2pn-pinned":    pinnedTwoPowerN{},
		"2pnsrc-pinned": pinnedSourceTag{},
	} {
		res, err := Analyze(g, alg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Acyclic() {
			t.Errorf("%s on a torus unexpectedly acyclic — update the docs if the scheme changed", name)
		}
	}
}

// TestSourceTag2pnCyclicOnTorus is the reproduction hypothesis of
// EXPERIMENTS.md made formal: the literal source-computed eq. (1) tag has
// dependency cycles on a torus (ring cycles within one tag class)...
func TestSourceTag2pnCyclicOnTorus(t *testing.T) {
	g := topology.NewTorus(4, 2)
	alg, _ := routing.Get("2pnsrc")
	res, err := Analyze(g, alg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acyclic() {
		t.Fatal("2pnsrc on a torus should have a dependency cycle")
	}
	if len(res.Cycle) < 3 {
		t.Errorf("suspiciously short cycle: %v", res.Cycle)
	}
}

// pinnedSourceTag pins the source-fixed tag's free bits, the strongest
// subfunction available to 2pnsrc.
type pinnedSourceTag struct{ routing.TwoPowerNSource }

func (pinnedSourceTag) Name() string { return "2pnsrc-pinned" }

func (p pinnedSourceTag) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	all := p.TwoPowerNSource.Candidates(g, m, node, nil)
	best := map[[2]int]routing.Candidate{}
	for _, c := range all {
		key := [2]int{c.Dim, int(c.Dir)}
		if cur, ok := best[key]; !ok || c.VC < cur.VC {
			best[key] = c
		}
	}
	for _, c := range all {
		key := [2]int{c.Dim, int(c.Dir)}
		if best[key] == c {
			dst = append(dst, c)
		}
	}
	return dst
}

// TestSourceTagMeshContrast: on a mesh both variants' pinned subfunctions
// coincide with Dally's scheme and verify acyclic; the torus is where they
// diverge behaviourally (see TestTwoPowerNTorusCDGCyclic).
func TestSourceTagMeshContrast(t *testing.T) {
	g := topology.NewMesh(4, 2)
	src, err := Analyze(g, pinnedSourceTag{})
	if err != nil {
		t.Fatal(err)
	}
	if !src.Acyclic() {
		t.Errorf("pinned source tag on a mesh should be acyclic:\n  %s", src.DescribeCycle(g))
	}
}

// naiveDOR is dimension-order routing with a single virtual channel — the
// textbook non-example that deadlocks on any ring.
type naiveDOR struct{}

func (naiveDOR) Name() string                                                       { return "naive-dor" }
func (naiveDOR) FullyAdaptive() bool                                                { return false }
func (naiveDOR) NumVCs(*topology.Grid) int                                          { return 1 }
func (naiveDOR) Compatible(*topology.Grid) error                                    { return nil }
func (naiveDOR) Init(*topology.Grid, *message.Message)                              {}
func (naiveDOR) Allocated(*topology.Grid, *message.Message, int, routing.Candidate) {}
func (naiveDOR) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	for dim := 0; dim < g.N(); dim++ {
		if dir, ok := m.DirInDim(dim); ok {
			return append(dst, routing.Candidate{Dim: dim, Dir: dir, VC: 0})
		}
	}
	panic("arrived")
}

// TestNaiveDORCyclicOnTorusAcyclicOnMesh: the analyzer reproduces the
// textbook facts that motivated virtual channels in the first place.
func TestNaiveDORCyclicOnTorusAcyclicOnMesh(t *testing.T) {
	torus, err := Analyze(topology.NewTorus(4, 2), naiveDOR{})
	if err != nil {
		t.Fatal(err)
	}
	if torus.Acyclic() {
		t.Error("single-VC dimension-order routing on a torus must be cyclic")
	}
	mesh, err := Analyze(topology.NewMesh(4, 2), naiveDOR{})
	if err != nil {
		t.Fatal(err)
	}
	if !mesh.Acyclic() {
		t.Errorf("dimension-order routing on a mesh must be acyclic, found:\n  %s",
			mesh.DescribeCycle(topology.NewMesh(4, 2)))
	}
}

// naiveAdaptive is minimal fully adaptive routing with one virtual channel:
// cyclic even on a mesh (the rectangle/turn cycles the turn model removes).
type naiveAdaptive struct{ naiveDOR }

func (naiveAdaptive) Name() string { return "naive-adaptive" }
func (naiveAdaptive) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	for dim := 0; dim < g.N(); dim++ {
		if dir, ok := m.DirInDim(dim); ok {
			dst = append(dst, routing.Candidate{Dim: dim, Dir: dir, VC: 0})
		}
	}
	return dst
}

func TestNaiveAdaptiveCyclicEvenOnMesh(t *testing.T) {
	res, err := Analyze(topology.NewMesh(4, 2), naiveAdaptive{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acyclic() {
		t.Error("unrestricted adaptive routing with one VC should be cyclic on a mesh")
	}
}

// TestNLastDatelineOverlayCyclic demonstrates the bug DESIGN.md documents:
// north-last over per-dimension dateline classes (instead of wrap-count
// classes) has spiral cycles on a torus. This is the discipline the
// simulator originally wedged on.
type nlastDateline struct{ naiveDOR }

func (nlastDateline) Name() string              { return "nlast-dateline" }
func (nlastDateline) NumVCs(*topology.Grid) int { return 2 }
func (nlastDateline) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	last := g.N() - 1
	goingNorth := m.Remaining[last] < 0
	for dim := 0; dim < g.N(); dim++ {
		dir, ok := m.DirInDim(dim)
		if !ok {
			continue
		}
		if goingNorth && dim == last && m.HopsLeft() != -m.Remaining[last] {
			continue
		}
		vc := 0
		if m.Crossed[dim] {
			vc = 1
		}
		dst = append(dst, routing.Candidate{Dim: dim, Dir: dir, VC: vc})
	}
	return dst
}

func TestNLastDatelineOverlayCyclic(t *testing.T) {
	res, err := Analyze(topology.NewTorus(4, 2), nlastDateline{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acyclic() {
		t.Error("per-dimension dateline north-last should be cyclic on a torus (the spiral bug)")
	}
}

func TestResultRendering(t *testing.T) {
	g := topology.NewTorus(4, 2)
	alg, _ := routing.Get("phop")
	res, err := Analyze(g, alg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "ACYCLIC") {
		t.Errorf("String = %q", res.String())
	}
	if res.DescribeCycle(g) != "(acyclic)" {
		t.Errorf("DescribeCycle = %q", res.DescribeCycle(g))
	}
	bad, _ := Analyze(g, naiveDOR{})
	if !strings.Contains(bad.String(), "CYCLE") {
		t.Errorf("String = %q", bad.String())
	}
	if !strings.Contains(bad.DescribeCycle(g), "->") {
		t.Errorf("cycle description = %q", bad.DescribeCycle(g))
	}
}

func TestAnalyzeRejectsIncompatible(t *testing.T) {
	alg, _ := routing.Get("nhop")
	if _, err := Analyze(topology.NewTorus(5, 2), alg); err == nil {
		t.Error("nhop on an odd torus should be rejected")
	}
}

// TestVCDescribe covers the VC pretty-printer.
func TestVCDescribe(t *testing.T) {
	g := topology.NewTorus(4, 2)
	v := VC{Channel: g.ChannelIndex(5, 1, topology.Minus), Class: 3}
	if got := v.Describe(g); got != "n5 d1- vc3" {
		t.Errorf("Describe = %q", got)
	}
}
