// Package cdg builds and analyzes channel-dependency graphs, the formal
// tool behind every deadlock-freedom claim in the paper (Dally & Seitz): a
// wormhole routing algorithm is deadlock-free if the graph whose vertices
// are virtual channels and whose edges connect each virtual channel a
// message can hold to the virtual channels it may request next is acyclic.
//
// Analyze enumerates, for every source/destination pair, every reachable
// routing state (including direction tie-breaks and nbc's bonus-card
// choices) on an exact small instance of the topology, collects the
// dependency edges, and searches for a cycle. An acyclic result is a proof
// for that instance; a cycle is a concrete counterexample witness. The test
// suite runs this over all the paper's algorithms — and demonstrates that
// the literal source-computed 2pn tag (2pnsrc) is cyclic on tori, the
// reproduction hypothesis of EXPERIMENTS.md.
package cdg

import (
	"fmt"
	"sort"
	"strings"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
)

// VC identifies a virtual channel: a physical channel slot and a class.
type VC struct {
	Channel int
	Class   int
}

// Describe renders a VC with its channel's endpoints.
func (v VC) Describe(g *topology.Grid) string {
	id, dim, dir := g.ChannelInfo(v.Channel)
	return fmt.Sprintf("n%d d%d%s vc%d", id, dim, dir, v.Class)
}

// Result reports one analysis.
type Result struct {
	// Algorithm and Grid identify the instance.
	Algorithm string
	Grid      string
	// VCs and Edges count the dependency graph.
	VCs   int
	Edges int
	// Cycle holds one witness cycle (a sequence of VCs each depending on
	// the next, last depending on first), or nil if the graph is acyclic.
	Cycle []VC
}

// Acyclic reports whether no cycle was found, i.e. the instance is
// deadlock-free by the Dally–Seitz criterion.
func (r Result) Acyclic() bool { return len(r.Cycle) == 0 }

// String summarizes the result.
func (r Result) String() string {
	state := "ACYCLIC (deadlock-free)"
	if !r.Acyclic() {
		state = fmt.Sprintf("CYCLE of length %d", len(r.Cycle))
	}
	return fmt.Sprintf("%s on %s: %d VCs, %d dependency edges: %s", r.Algorithm, r.Grid, r.VCs, r.Edges, state)
}

// DescribeCycle renders the witness cycle, if any.
func (r Result) DescribeCycle(g *topology.Grid) string {
	if r.Acyclic() {
		return "(acyclic)"
	}
	parts := make([]string, 0, len(r.Cycle)+1)
	for _, v := range r.Cycle {
		parts = append(parts, v.Describe(g))
	}
	parts = append(parts, r.Cycle[0].Describe(g))
	return strings.Join(parts, " -> ")
}

// state is a memoization key for the reachable-state walk of one
// source/destination pair: the current node, the virtual channel the
// header arrived on (-1 at the source) and the nbc start class (-1 until
// latched). The rest of the message state (remaining offsets, hop and
// negative-hop counts, dateline flags, tags) is a function of these plus
// the pair's initial offsets, so it need not appear in the key.
type state struct {
	node  int
	inVC  int32
	bonus int32
}

// Analyze builds the dependency graph of alg on g and searches it for a
// cycle. The grid should be small (the walk is exact); 4- to 8-ary 2-cubes
// analyze in well under a second.
func Analyze(g *topology.Grid, alg routing.Algorithm) (Result, error) {
	if err := alg.Compatible(g); err != nil {
		return Result{}, err
	}
	numVCs := alg.NumVCs(g)
	vcID := func(ch, class int) int32 { return int32(ch*numVCs + class) }

	adj := make(map[int32]map[int32]bool)
	addEdge := func(from, to int32) {
		m, ok := adj[from]
		if !ok {
			m = make(map[int32]bool)
			adj[from] = m
		}
		m[to] = true
	}

	var walk func(m *message.Message, node int, inVC int32, visited map[state]bool)
	walk = func(m *message.Message, node int, inVC int32, visited map[state]bool) {
		if m.Arrived() {
			return
		}
		key := state{node: node, inVC: inVC, bonus: int32(m.BonusStart)}
		if m.HopsTaken == 0 {
			key.bonus = -1
		}
		if visited[key] {
			return
		}
		visited[key] = true
		var cands []routing.Candidate
		cands = alg.Candidates(g, m, node, cands)
		for _, c := range cands {
			if !g.HasChannel(node, c.Dim, c.Dir) {
				continue
			}
			ch := g.ChannelIndex(node, c.Dim, c.Dir)
			out := vcID(ch, c.VC)
			if inVC >= 0 {
				addEdge(inVC, out)
			}
			// Branch: clone the message, apply the allocation and hop.
			next := cloneMessage(m)
			alg.Allocated(g, next, node, c)
			next.Advance(g, c.Dim, c.Dir, g.Coord(node, c.Dim), g.Parity(node))
			walk(next, g.Neighbor(node, c.Dim, c.Dir), out, visited)
		}
	}

	ties := make([]int, 0, g.N())
	for src := 0; src < g.Nodes(); src++ {
		for dst := 0; dst < g.Nodes(); dst++ {
			if src == dst {
				continue
			}
			// Enumerate every resolution of half-ring direction ties.
			ties = ties[:0]
			for dim := 0; dim < g.N(); dim++ {
				if g.TieInDim(src, dst, dim) {
					ties = append(ties, dim)
				}
			}
			for mask := 0; mask < 1<<len(ties); mask++ {
				choice := make(map[int]bool, len(ties))
				for i, dim := range ties {
					choice[dim] = mask>>i&1 == 1
				}
				m := message.New(g, 0, src, dst, 1, 0, func(dim int) bool { return choice[dim] })
				alg.Init(g, m)
				walk(m, src, -1, make(map[state]bool))
			}
		}
	}

	res := Result{
		Algorithm: alg.Name(),
		Grid:      g.String(),
		VCs:       g.ChannelSlots() * numVCs,
	}
	for _, out := range adj { //lint:allow simdeterminism (order-independent sum)
		res.Edges += len(out)
	}
	res.Cycle = findCycle(adj, numVCs)
	return res, nil
}

// cloneMessage deep-copies the routing-relevant state.
func cloneMessage(m *message.Message) *message.Message {
	c := *m
	c.Remaining = append([]int(nil), m.Remaining...)
	c.Crossed = append([]bool(nil), m.Crossed...)
	return &c
}

// findCycle runs a colored DFS over the dependency graph in sorted vertex
// and successor order — the traversal must be deterministic so that the
// witness cycle is stable across runs (the certification gate golden-files
// it) — and returns one cycle as VCs, or nil.
func findCycle(adj map[int32]map[int32]bool, numVCs int) []VC {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	verts := make([]int32, 0, len(adj))
	succ := make(map[int32][]int32, len(adj))
	for u, out := range adj { //lint:allow simdeterminism (collected then sorted)
		verts = append(verts, u)
		vs := make([]int32, 0, len(out))
		for v := range out { //lint:allow simdeterminism (collected then sorted)
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		succ[u] = vs
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })

	color := make(map[int32]int, len(adj))
	parent := make(map[int32]int32)

	var cycleFrom, cycleTo int32 = -1, -1
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		color[u] = gray
		for _, v := range succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleFrom, cycleTo = u, v
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range verts {
		if color[u] == white {
			if dfs(u) {
				break
			}
		}
	}
	if cycleFrom < 0 {
		return nil
	}
	// Reconstruct: cycleTo ... cycleFrom via parents.
	var rev []int32
	for v := cycleFrom; ; v = parent[v] {
		rev = append(rev, v)
		if v == cycleTo {
			break
		}
	}
	cycle := make([]VC, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		id := rev[i]
		cycle = append(cycle, VC{Channel: int(id) / numVCs, Class: int(id) % numVCs})
	}
	return cycle
}
