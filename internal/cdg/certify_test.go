package cdg

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestCertifyGolden locks the full certification output: every registered
// algorithm on the full matrix, byte-for-byte. Any change to an algorithm,
// the analyzer, or the matrix that alters a verdict, an edge count or a
// witness shows up as a diff here; run `go test ./internal/cdg -run
// Golden -update` to re-bless after reviewing it.
func TestCertifyGolden(t *testing.T) {
	cert, err := Certify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.AllOK {
		t.Errorf("certification failures: %v", cert.Failures)
	}
	var buf bytes.Buffer
	if err := cert.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "cdg_certificates.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("certificates differ from %s (rerun with -update after reviewing);\ngot:\n%s", golden, diffHint(buf.Bytes(), want))
	}
}

// diffHint returns the first differing line to keep failures readable.
func diffHint(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d: got %q, want %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(gl), len(wl))
}

// TestCertifyExpectations spot-checks the registered expectations against
// the analyzer: the six paper algorithms are certified on every compatible
// cell except the 2pn family on tori, and the 2pnsrc torus witness is a
// genuine ring cycle (length >= 3).
func TestCertifyExpectations(t *testing.T) {
	cert, err := Certify([]string{"ecube", "nlast", "2pn", "2pnsrc", "phop", "nhop", "nbc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cert.Certificates {
		if c.Skipped != "" {
			continue
		}
		wantCertified := !KnownCyclic(c.Algorithm, isTorus(c.Instance))
		if c.Certified != wantCertified {
			t.Errorf("%s on %s: certified=%v, want %v", c.Algorithm, c.Instance, c.Certified, wantCertified)
		}
		if !c.Certified && len(c.Witness) < 3 {
			t.Errorf("%s on %s: uncertified but witness suspiciously short: %v", c.Algorithm, c.Instance, c.Witness)
		}
		if c.Certified && len(c.Witness) != 0 {
			t.Errorf("%s on %s: certified cell carries a witness %v", c.Algorithm, c.Instance, c.Witness)
		}
	}
}

func isTorus(instance string) bool {
	return len(instance) > 5 && instance[len(instance)-5:] == "torus"
}

// TestCertifyUnknownAlgorithm: a bogus name is a hard error, not a skip.
func TestCertifyUnknownAlgorithm(t *testing.T) {
	if _, err := Certify([]string{"nosuch"}); err == nil {
		t.Error("Certify with an unknown algorithm should fail")
	}
}

// TestEscapeSubfunctionStillRoutes: the escape restriction must stay
// connected — one candidate per admissible physical hop, never empty before
// arrival — or the Duato argument would be vacuous.
func TestEscapeSubfunctionStillRoutes(t *testing.T) {
	for _, algName := range []string{"2pn", "2pnsrc"} {
		base, err := Certify([]string{algName})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range base.Certificates {
			if c.Method == MethodDuatoEscape && c.EscapeEdges == 0 {
				t.Errorf("%s on %s: escape subfunction produced no dependency edges", c.Algorithm, c.Instance)
			}
		}
	}
}
