package rng

import "testing"

// TestStreamIndependenceChiSquared runs a chi-squared test of joint
// uniformity over paired draws from two streams with the same seed but
// different stream ids — the exact configuration the paper's methodology
// uses for its per-period destination and interarrival streams. If the
// streams were correlated, the joint distribution of (a, b) 3-bit samples
// would deviate from uniform over the 64 cells. The seed is fixed, so the
// statistic is deterministic: this is a regression test on the generator,
// not a flaky statistical gate.
func TestStreamIndependenceChiSquared(t *testing.T) {
	const (
		bits  = 3
		cells = 1 << (2 * bits) // 64 joint cells, df = 63
		n     = 64000
		// Critical value of chi-squared with 63 degrees of freedom at
		// p = 0.001; a correlated pair blows far past this.
		critical = 109.96
	)
	pairs := [][2]uint64{{1, 2}, {0, 1}, {12345, 54321}}
	for _, ids := range pairs {
		a := NewStream(2026, ids[0])
		b := NewStream(2026, ids[1])
		var counts [cells]int
		for i := 0; i < n; i++ {
			x := a.Uint32() >> (32 - bits)
			y := b.Uint32() >> (32 - bits)
			counts[x<<bits|y]++
		}
		expected := float64(n) / cells
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if chi2 > critical {
			t.Errorf("streams %d and %d: chi-squared = %.2f over %d cells, exceeds %.2f (p=0.001)",
				ids[0], ids[1], chi2, cells, critical)
		}
	}
}

// TestReseedReproducibility locks in the property the sampling-period
// methodology rests on: re-creating a stream from the same (seed, id) at any
// point reproduces the identical sequence, and advancing one stream never
// perturbs another.
func TestReseedReproducibility(t *testing.T) {
	first := make([]uint32, 256)
	s := NewStream(7, 3)
	for i := range first {
		first[i] = s.Uint32()
	}

	// Burn an unrelated stream in between; it must not matter.
	other := NewStream(7, 4)
	for i := 0; i < 1000; i++ {
		other.Uint32()
	}

	r := NewStream(7, 3)
	for i := range first {
		if got := r.Uint32(); got != first[i] {
			t.Fatalf("re-seeded stream diverged at draw %d: %d != %d", i, got, first[i])
		}
	}

	// Interleaving draws across streams must not change either sequence.
	x := NewStream(7, 3)
	y := NewStream(7, 4)
	yRef := NewStream(7, 4)
	for i := 0; i < 256; i++ {
		if got := x.Uint32(); got != first[i] {
			t.Fatalf("interleaved stream diverged at draw %d", i)
		}
		if y.Uint32() != yRef.Uint32() {
			t.Fatalf("sibling stream perturbed at draw %d", i)
		}
	}
}
