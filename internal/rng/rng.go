// Package rng provides small, fast, deterministic pseudo-random number
// streams for the simulator.
//
// The paper's methodology requires several independent random sequences per
// simulation (destination selection, interarrival times, adaptive-choice tie
// breaking) and fresh streams at the start of every sampling period. PCG-32
// (O'Neill, 2014) gives 2^63 independent streams from one seed with a tiny
// state, which fits that requirement without any external dependency.
package rng

import "math/bits"

// Stream is a single PCG-32 pseudo-random stream. The zero value is not
// usable; create streams with New or NewStream.
type Stream struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// pcgInvMultiplier is pcgMultiplier's multiplicative inverse mod 2^64
// (pinned by a unit test), which lets cold paths walk the state recurrence
// backwards instead of carrying history through hot loops.
const pcgInvMultiplier = 13877824140714322085

// New returns a stream seeded with seed on the default stream id 0.
func New(seed uint64) *Stream { return NewStream(seed, 0) }

// NewStream returns a stream seeded with seed on stream id stream. Streams
// with different ids are statistically independent even for equal seeds.
func NewStream(seed, stream uint64) *Stream {
	s := &Stream{inc: stream<<1 | 1}
	s.state = s.inc + seed
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// pcgOutput is the PCG-32 output permutation (xorshift high bits, random
// rotation) applied to a pre-advance state.
func pcgOutput(old uint64) uint32 {
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	return pcgOutput(old)
}

// Uint64 returns the next 64 uniformly distributed bits: the same two
// Uint32 draws (high word first) with the intermediate state store elided.
func (s *Stream) Uint64() uint64 {
	s1 := s.state
	s2 := s1*pcgMultiplier + s.inc
	s.state = s2*pcgMultiplier + s.inc
	return uint64(pcgOutput(s1))<<32 | uint64(pcgOutput(s2))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := s.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint53()) / (1 << 53)
}

// Uint53 returns the next 53 uniformly distributed bits — the integer
// Float64 is built from, exposed so hot loops can compare against a
// precomputed BernoulliThreshold without the int-to-float conversion.
func (s *Stream) Uint53() uint64 {
	return s.Uint64() >> 11
}

// BernoulliHitsGrid advances every stream through rounds sequential Uint53
// draws against the cutoff thr and appends the hits — draws strictly below
// thr — to hits, packed round<<32|stream in round-major, stream-minor
// order. Each stream consumes draws in exactly the order its own
// "Uint53() < thr" trials would, so the grid is a pure reordering of
// independent scalar Bernoulli sequences — but because the streams' PCG
// multiply chains are independent, the interleaved loop pipelines in the
// CPU where a single stream's serial state recurrence cannot. Fusing the
// cutoff into the grid also skips most of the output work: a Uint53 needs
// two PCG output permutations, and the high word alone decides the trial
// unless it lands exactly on thr's high word (for the light rates the
// engine simulates, a sub-percent case). This is the batch engine's
// arrival-draw primitive: R replicas' Bernoulli trials per node issue as
// R-way instruction-level parallelism and return only the arrivals.
func BernoulliHitsGrid(streams []*Stream, rounds int, thr uint64, hits []uint64) []uint64 {
	if len(streams) <= gridWidth {
		return bernoulliHitsDense(streams, rounds, thr, hits)
	}
	// Widths beyond the dense kernel's state buffers pay the pointer-walking
	// loop; emission order (round-major) forbids column chunking here.
	hiThr := thr >> 21
	for round := 0; round < rounds; round++ {
		tag := uint64(round) << 32
		for i, s := range streams {
			s1 := s.state
			s2 := s1*pcgMultiplier + s.inc
			s.state = s2*pcgMultiplier + s.inc
			h1 := uint64(pcgOutput(s1))
			if h1 <= hiThr {
				if draw := (h1<<32 | uint64(pcgOutput(s2))) >> 11; draw < thr {
					hits = append(hits, tag|uint64(i))
				}
			}
		}
	}
	return hits
}

// gridWidth bounds the stack-resident state copies in bernoulliHitsDense.
// 64 streams x 8 bytes keeps both buffers inside a kilobyte of stack while
// covering any realistic batch width in one stripe.
const gridWidth = 64

// bernoulliHitsDense is the hot kernel: the PCG states are hoisted into
// dense stack buffers for the duration, so the inner loop is pure
// register/L1 arithmetic with no pointer-chased loads or stores of Stream
// fields on the critical path — which is what lets the independent multiply
// chains actually retire back to back.
func bernoulliHitsDense(streams []*Stream, rounds int, thr uint64, hits []uint64) []uint64 {
	var stBuf, incBuf [gridWidth]uint64
	k := len(streams)
	st, inc := stBuf[:k], incBuf[:k]
	for i, s := range streams {
		st[i], inc[i] = s.state, s.inc
	}
	// A draw is (h1<<32|h2)>>11 = h1<<21 | h2>>11, so with thr split at bit
	// 21: h1 above thr's high word can never hit, h1 at or below it is a
	// candidate. The trial loop only marks candidates in a bitmask — no
	// appends, no tags, nothing but the recurrence and one predictable
	// compare lives in it — and the candidate pass reconstructs the two
	// pre-advance states from the updated one via the inverse multiplier.
	hiThr := thr >> 21
	// Rounds go in pairs: each stream's state loads and stores amortize over
	// two draws (four state advances), and the two candidate masks keep the
	// emission round-major. The inverse-multiplier reconstruction just walks
	// further back — four advances for a first-round candidate.
	round := 0
	for ; round+2 <= rounds; round += 2 {
		var cand0, cand1 uint64
		for i := range st {
			ic := inc[i]
			s1 := st[i]
			s2 := s1*pcgMultiplier + ic
			s3 := s2*pcgMultiplier + ic
			s4 := s3*pcgMultiplier + ic
			st[i] = s4*pcgMultiplier + ic
			if uint64(pcgOutput(s1)) <= hiThr {
				cand0 |= 1 << uint(i)
			}
			if uint64(pcgOutput(s3)) <= hiThr {
				cand1 |= 1 << uint(i)
			}
		}
		for ; cand0 != 0; cand0 &= cand0 - 1 {
			i := bits.TrailingZeros64(cand0)
			s4 := (st[i] - inc[i]) * pcgInvMultiplier
			s3 := (s4 - inc[i]) * pcgInvMultiplier
			s2 := (s3 - inc[i]) * pcgInvMultiplier
			s1 := (s2 - inc[i]) * pcgInvMultiplier
			draw := (uint64(pcgOutput(s1))<<32 | uint64(pcgOutput(s2))) >> 11
			if draw < thr {
				hits = append(hits, uint64(round)<<32|uint64(i))
			}
		}
		for ; cand1 != 0; cand1 &= cand1 - 1 {
			i := bits.TrailingZeros64(cand1)
			s4 := (st[i] - inc[i]) * pcgInvMultiplier
			s3 := (s4 - inc[i]) * pcgInvMultiplier
			draw := (uint64(pcgOutput(s3))<<32 | uint64(pcgOutput(s4))) >> 11
			if draw < thr {
				hits = append(hits, uint64(round+1)<<32|uint64(i))
			}
		}
	}
	if round < rounds {
		var cand uint64
		for i := range st {
			s1 := st[i]
			s2 := s1*pcgMultiplier + inc[i]
			st[i] = s2*pcgMultiplier + inc[i]
			if uint64(pcgOutput(s1)) <= hiThr {
				cand |= 1 << uint(i)
			}
		}
		for ; cand != 0; cand &= cand - 1 {
			i := bits.TrailingZeros64(cand)
			s2 := (st[i] - inc[i]) * pcgInvMultiplier
			s1 := (s2 - inc[i]) * pcgInvMultiplier
			draw := (uint64(pcgOutput(s1))<<32 | uint64(pcgOutput(s2))) >> 11
			if draw < thr {
				hits = append(hits, uint64(round)<<32|uint64(i))
			}
		}
	}
	for i, s := range streams {
		s.state = st[i]
	}
	return hits
}

// BernoulliThreshold converts a probability into the Uint53 cutoff that
// makes "Uint53() < threshold" equivalent to "Float64() < p": with
// k = Uint53(), Float64() is exactly k/2^53, so k/2^53 < p iff
// k < ceil(p*2^53) (p*2^53 is exact for p in (0, 1) — a power-of-two scale
// only shifts the exponent). Probabilities at or below 0 and at or above 1
// map to the always-false and always-true cutoffs.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	t := p * (1 << 53)
	k := uint64(t)
	if float64(k) < t {
		k++
	}
	return k
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Uint53() < BernoulliThreshold(p)
}

// Geometric returns a sample from the geometric distribution on {1, 2, ...}
// with success probability p: P(X = t) = p(1-p)^(t-1). This is the
// distribution of interarrival times of a Bernoulli(p) process, the
// "geometrically distributed message interarrival times" of the paper.
// It panics if p <= 0 or p > 1.
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	// Inversion would need math.Log; counting trials is exact, branch-free of
	// float edge cases, and fast for the small means used here (p >= ~0.003).
	t := 1
	for !s.Bernoulli(p) {
		t++
	}
	return t
}

// Perm returns a uniform random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new independent stream derived from this one. Successive
// Split calls yield distinct streams; the parent advances so that a later
// Split gives a different child.
func (s *Stream) Split() *Stream {
	return NewStream(s.Uint64(), s.Uint64())
}
