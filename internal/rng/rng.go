// Package rng provides small, fast, deterministic pseudo-random number
// streams for the simulator.
//
// The paper's methodology requires several independent random sequences per
// simulation (destination selection, interarrival times, adaptive-choice tie
// breaking) and fresh streams at the start of every sampling period. PCG-32
// (O'Neill, 2014) gives 2^63 independent streams from one seed with a tiny
// state, which fits that requirement without any external dependency.
package rng

// Stream is a single PCG-32 pseudo-random stream. The zero value is not
// usable; create streams with New or NewStream.
type Stream struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// New returns a stream seeded with seed on the default stream id 0.
func New(seed uint64) *Stream { return NewStream(seed, 0) }

// NewStream returns a stream seeded with seed on stream id stream. Streams
// with different ids are statistically independent even for equal seeds.
func NewStream(seed, stream uint64) *Stream {
	s := &Stream{inc: stream<<1 | 1}
	s.state = s.inc + seed
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// pcgOutput is the PCG-32 output permutation (xorshift high bits, random
// rotation) applied to a pre-advance state.
func pcgOutput(old uint64) uint32 {
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	return pcgOutput(old)
}

// Uint64 returns the next 64 uniformly distributed bits: the same two
// Uint32 draws (high word first) with the intermediate state store elided.
func (s *Stream) Uint64() uint64 {
	s1 := s.state
	s2 := s1*pcgMultiplier + s.inc
	s.state = s2*pcgMultiplier + s.inc
	return uint64(pcgOutput(s1))<<32 | uint64(pcgOutput(s2))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := s.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint53()) / (1 << 53)
}

// Uint53 returns the next 53 uniformly distributed bits — the integer
// Float64 is built from, exposed so hot loops can compare against a
// precomputed BernoulliThreshold without the int-to-float conversion.
func (s *Stream) Uint53() uint64 {
	return s.Uint64() >> 11
}

// BernoulliThreshold converts a probability into the Uint53 cutoff that
// makes "Uint53() < threshold" equivalent to "Float64() < p": with
// k = Uint53(), Float64() is exactly k/2^53, so k/2^53 < p iff
// k < ceil(p*2^53) (p*2^53 is exact for p in (0, 1) — a power-of-two scale
// only shifts the exponent). Probabilities at or below 0 and at or above 1
// map to the always-false and always-true cutoffs.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	t := p * (1 << 53)
	k := uint64(t)
	if float64(k) < t {
		k++
	}
	return k
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Uint53() < BernoulliThreshold(p)
}

// Geometric returns a sample from the geometric distribution on {1, 2, ...}
// with success probability p: P(X = t) = p(1-p)^(t-1). This is the
// distribution of interarrival times of a Bernoulli(p) process, the
// "geometrically distributed message interarrival times" of the paper.
// It panics if p <= 0 or p > 1.
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	// Inversion would need math.Log; counting trials is exact, branch-free of
	// float edge cases, and fast for the small means used here (p >= ~0.003).
	t := 1
	for !s.Bernoulli(p) {
		t++
	}
	return t
}

// Perm returns a uniform random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new independent stream derived from this one. Successive
// Split calls yield distinct streams; the parent advances so that a later
// Split gives a different child.
func (s *Stream) Split() *Stream {
	return NewStream(s.Uint64(), s.Uint64())
}
