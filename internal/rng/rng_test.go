package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("streams with equal seed/id diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(42, 1)
	b := NewStream(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("streams 1 and 2 collide on %d of 1000 draws", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := NewStream(1, 0)
	b := NewStream(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("seeds 1 and 2 collide on %d of 1000 draws", same)
	}
}

func TestUint32Uniformity(t *testing.T) {
	s := New(99)
	const draws = 200000
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[s.Uint32()>>28]++
	}
	want := float64(draws) / 16
	for b, got := range buckets {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", b, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, got := range counts {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d: got %d, want about %.0f", v, got, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	s := New(17)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9} {
		hits := 0
		const draws = 100000
		for i := 0; i < draws; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %.4f", p, got)
		}
	}
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if s.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(23)
	for _, p := range []float64{0.5, 0.1, 0.02} {
		sum := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			v := s.Geometric(p)
			if v < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", p, v)
			}
			sum += v
		}
		got := float64(sum) / draws
		want := 1 / p
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("Geometric(%v) mean %.2f, want about %.2f", p, got, want)
		}
	}
	if v := s.Geometric(1); v != 1 {
		t.Errorf("Geometric(1) = %d, want 1", v)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	f := func(n uint8) bool {
		size := int(n%50) + 1
		p := s.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(37)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, got := range counts {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d: got %d, want about %.0f", v, got, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(41)
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	seen := make([]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(43)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("split streams collide on %d of 1000 draws", same)
	}
}

func TestUint64CombinesTwoDraws(t *testing.T) {
	a := New(47)
	b := New(47)
	hi := uint64(b.Uint32())
	lo := uint64(b.Uint32())
	if got, want := a.Uint64(), hi<<32|lo; got != want {
		t.Errorf("Uint64 = %#x, want %#x", got, want)
	}
}

func BenchmarkUint32(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint32()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Intn(17)
	}
}

// TestUint64MatchesPairedUint32: the unrolled Uint64 must produce exactly
// the high<<32|low composition of two Uint32 draws, so streams mixing the
// two call styles keep their historical sequences.
func TestUint64MatchesPairedUint32(t *testing.T) {
	a := NewStream(99, 7)
	b := NewStream(99, 7)
	for i := 0; i < 1000; i++ {
		want := uint64(b.Uint32())<<32 | uint64(b.Uint32())
		if got := a.Uint64(); got != want {
			t.Fatalf("draw %d: Uint64 %#x, paired Uint32 %#x", i, got, want)
		}
	}
}

// TestBernoulliThresholdMatchesFloat64: the integer cutoff must agree with
// the float comparison it replaces on every draw, including probabilities
// that are not exactly representable and the degenerate endpoints.
func TestBernoulliThresholdMatchesFloat64(t *testing.T) {
	probs := []float64{0, 1, -0.5, 1.5, 0.5, 0.25, 0.1, 0.3, 1e-9, 0.9999999,
		1.0 / (1 << 53), 3.0 / (1 << 53), 0.0025, 0.7311}
	for _, p := range probs {
		thr := BernoulliThreshold(p)
		a := NewStream(5, 3)
		for i := 0; i < 5000; i++ {
			k := a.Uint53()
			intAnswer := k < thr
			floatAnswer := float64(k)/(1<<53) < p
			if intAnswer != floatAnswer {
				t.Fatalf("p=%g draw %d (k=%d): integer %v, float %v", p, i, k, intAnswer, floatAnswer)
			}
		}
	}
}

// TestBernoulliDrawCount: probabilities strictly inside (0, 1) consume one
// Uint64; the endpoints consume nothing (the historical shortcut paths).
func TestBernoulliDrawCount(t *testing.T) {
	s := NewStream(1, 1)
	ref := NewStream(1, 1)
	s.Bernoulli(0)
	s.Bernoulli(1)
	if got, want := s.Uint32(), ref.Uint32(); got != want {
		t.Fatalf("endpoint Bernoulli consumed draws: %#x vs %#x", got, want)
	}
	ref.Uint64()
	s.Bernoulli(0.5)
	if got, want := s.Uint32(), ref.Uint32(); got != want {
		t.Fatalf("interior Bernoulli consumed != 1 Uint64: %#x vs %#x", got, want)
	}
}
