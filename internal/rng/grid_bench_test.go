package rng

import "testing"

// TestPCGInverseMultiplier pins the precomputed modular inverse the grid's
// candidate pass uses to walk the state recurrence backwards.
func TestPCGInverseMultiplier(t *testing.T) {
	m, inv := uint64(pcgMultiplier), uint64(pcgInvMultiplier)
	if p := m * inv; p != 1 {
		t.Fatalf("pcgMultiplier*pcgInvMultiplier = %d mod 2^64, want 1", p)
	}
}

// TestBernoulliHitsGridMatchesSerial pins the grid to the scalar sequence:
// the hits come back round-major with each stream's draws consumed in
// exactly the order its own Uint53 trials would, for thresholds on both
// sides of the high-word shortcut. Width 70 also exercises the
// pointer-walking fallback above gridWidth.
func TestBernoulliHitsGridMatchesSerial(t *testing.T) {
	for _, w := range []int{1, 16, 70} {
		// A high rate so the test sees plenty of hits, including high-word
		// boundary cases over enough rounds.
		for _, thr := range []uint64{0, BernoulliThreshold(0.35), 1 << 53} {
			grid := make([]*Stream, w)
			serial := make([]*Stream, w)
			for i := range grid {
				grid[i] = NewStream(uint64(i)*0x9e3779b97f4a7c15, 0x1a77)
				serial[i] = NewStream(uint64(i)*0x9e3779b97f4a7c15, 0x1a77)
			}
			// Odd so the round-pair kernel's peeled final round runs too.
			const rounds = 201
			hits := BernoulliHitsGrid(grid, rounds, thr, nil)
			var want []uint64
			for round := 0; round < rounds; round++ {
				for i, s := range serial {
					if s.Uint53() < thr {
						want = append(want, uint64(round)<<32|uint64(i))
					}
				}
			}
			if len(hits) != len(want) {
				t.Fatalf("w=%d thr=%#x: %d hits, want %d", w, thr, len(hits), len(want))
			}
			for i := range hits {
				if hits[i] != want[i] {
					t.Fatalf("w=%d thr=%#x: hit[%d] = %#x, want %#x", w, thr, i, hits[i], want[i])
				}
			}
			for i := range grid {
				if grid[i].state != serial[i].state {
					t.Fatalf("w=%d thr=%#x: stream %d state diverged", w, thr, i)
				}
			}
		}
	}
}

// BenchmarkBernoulliHitsGrid measures the batch engine's arrival-draw
// primitive at its hot shape: 16 replica streams x 64 nodes of Bernoulli
// trials per cycle at a light rate. The per-draw figure is the serial-chain
// ILP win to watch.
func BenchmarkBernoulliHitsGrid(b *testing.B) {
	const w, rounds = 16, 64
	streams := make([]*Stream, w)
	for i := range streams {
		streams[i] = NewStream(uint64(i+1), 0x1a77)
	}
	thr := BernoulliThreshold(0.003)
	hits := make([]uint64, 0, w*rounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits = BernoulliHitsGrid(streams, rounds, thr, hits[:0])
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*w*rounds), "ns/draw")
}

// BenchmarkUint53Serial is the scalar baseline: the same number of draws
// from one stream's serial recurrence.
func BenchmarkUint53Serial(b *testing.B) {
	s := NewStream(1, 0x1a77)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 1024; k++ {
			sink += s.Uint53()
		}
	}
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1024), "ns/draw")
}
