package viz

import (
	"fmt"
	"strings"

	"wormsim/internal/topology"
)

// blueRamp is a single-hue sequential scale, light to dark, for magnitude
// encoding in the SVG heatmap. Idle cells take the lightest step so the grid
// geometry stays visible; the busiest node takes the darkest.
var blueRamp = []string{
	"#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
	"#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
}

const (
	svgSurface   = "#fcfcfb"
	svgInk       = "#0b0b0b"
	svgMutedInk  = "#52514e"
	svgCell      = 26 // px per heatmap cell
	svgGap       = 2  // surface gap between cells
	svgPad       = 16 // outer padding
	svgTitleRoom = 24 // vertical room for the title line
	svgLegendH   = 34 // vertical room for the legend strip
)

// rampColor maps v in [0, max] onto blueRamp.
func rampColor(v, max float64) string {
	if max <= 0 || v <= 0 {
		return blueRamp[0]
	}
	idx := int(v / max * float64(len(blueRamp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(blueRamp) {
		idx = len(blueRamp) - 1
	}
	return blueRamp[idx]
}

// HeatmapSVG renders the same per-node traffic aggregation as ChannelHeatmap
// as a standalone SVG document: one cell per node of a 2-D grid, filled from
// a sequential blue ramp scaled to the busiest node, with a hover tooltip
// (SVG <title>) per cell and a min/max legend. Output is a pure function of
// the inputs, so identical runs produce byte-identical documents.
func HeatmapSVG(g *topology.Grid, counts []int64, title string) string {
	var b strings.Builder
	if len(counts) == 0 {
		// A run that has not moved a flit yet (or an engine without
		// flit-level channels) publishes no counts; render a valid
		// placeholder instead of an empty grid pretending to be data.
		w, h := 360, 48
		fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
		fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
		fmt.Fprintf(&b, `<text x="%d" y="28" font-family="system-ui,sans-serif" font-size="13" fill="%s">no channel data yet</text>`+"\n", svgPad, svgMutedInk)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if g.N() != 2 {
		w, h := 360, 48
		fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
		fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
		fmt.Fprintf(&b, `<text x="%d" y="28" font-family="system-ui,sans-serif" font-size="13" fill="%s">heatmap needs a 2-D grid, have %d dims</text>`+"\n", svgPad, svgMutedInk, g.N())
		b.WriteString("</svg>\n")
		return b.String()
	}

	k := g.K()
	perNode := NodeTraffic(g, counts)
	max := 0.0
	for _, v := range perNode {
		if v > max {
			max = v
		}
	}

	gridSpan := k*svgCell + (k-1)*svgGap
	w := gridSpan + 2*svgPad
	if w < 320 {
		w = 320
	}
	h := svgTitleRoom + gridSpan + svgLegendH + 2*svgPad

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="system-ui,sans-serif" font-size="13" font-weight="600" fill="%s">%s</text>`+"\n",
		svgPad, svgPad+12, svgInk, escapeXML(title))

	top := svgPad + svgTitleRoom
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			v := perNode[g.ID([]int{x, y})]
			cx := svgPad + x*(svgCell+svgGap)
			cy := top + y*(svgCell+svgGap)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="3" fill="%s"><title>node (%d,%d): %.0f flits</title></rect>`+"\n",
				cx, cy, svgCell, svgCell, rampColor(v, max), x, y, v)
		}
	}

	// Legend: the full ramp as a strip with min/max annotations.
	ly := top + gridSpan + 14
	sw := 14
	for i, c := range blueRamp {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="10" fill="%s"/>`+"\n", svgPad+i*sw, ly, sw, c)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="system-ui,sans-serif" font-size="11" fill="%s">0</text>`+"\n", svgPad, ly+22, svgMutedInk)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" font-family="system-ui,sans-serif" font-size="11" fill="%s">%.0f flits (busiest node)</text>`+"\n",
		svgPad+len(blueRamp)*sw+140, ly+22, svgMutedInk, max)
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
