package viz

import (
	"strings"
	"testing"

	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func TestShadeBounds(t *testing.T) {
	if shade(0, 10) != ' ' {
		t.Errorf("zero load should render blank, got %q", shade(0, 10))
	}
	if shade(10, 10) != '@' {
		t.Errorf("max load should render '@', got %q", shade(10, 10))
	}
	if shade(5, 0) != ' ' {
		t.Errorf("zero max should render blank, got %q", shade(5, 0))
	}
	if shade(20, 10) != '@' {
		t.Errorf("overflow should clamp, got %q", shade(20, 10))
	}
}

func TestNodeTraffic(t *testing.T) {
	g := topology.NewTorus(4, 2)
	counts := make([]int64, g.ChannelSlots())
	// Put 3 flits on each outgoing channel of node 5.
	for dim := 0; dim < 2; dim++ {
		for _, dir := range []topology.Dir{topology.Plus, topology.Minus} {
			counts[g.ChannelIndex(5, dim, dir)] = 3
		}
	}
	per := NodeTraffic(g, counts)
	if per[5] != 12 {
		t.Errorf("node 5 traffic = %v, want 12", per[5])
	}
	for id, v := range per {
		if id != 5 && v != 0 {
			t.Errorf("node %d traffic = %v, want 0", id, v)
		}
	}
}

func TestChannelHeatmapShape(t *testing.T) {
	g := topology.NewTorus(8, 2)
	counts := make([]int64, g.ChannelSlots())
	counts[g.ChannelIndex(0, 0, topology.Plus)] = 100
	out := ChannelHeatmap(g, counts)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("heatmap has %d rows, want 8", len(lines))
	}
	for _, l := range lines {
		if len(l) != 16 { // double width
			t.Fatalf("row %q has width %d, want 16", l, len(l))
		}
	}
	// Busiest node is (0,0): top-left cell must be the darkest glyph.
	if lines[0][0] != '@' {
		t.Errorf("top-left = %q, want '@'", lines[0][0])
	}
	// Everything else idle.
	if strings.Count(out, "@") != 2 {
		t.Errorf("exactly one double-width hot cell expected:\n%s", out)
	}
}

func TestChannelHeatmapRejectsNon2D(t *testing.T) {
	g := topology.NewTorus(4, 3)
	out := ChannelHeatmap(g, make([]int64, g.ChannelSlots()))
	if !strings.Contains(out, "2-D") {
		t.Errorf("expected a dimension notice, got %q", out)
	}
}

// TestHeatmapShowsHotspotTree: run a hotspot workload and confirm the hot
// node's area renders as the busiest region.
func TestHeatmapShowsHotspotTree(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nbc")
	hot := g.ID([]int{4, 4})
	wl := traffic.NewBernoulli(g, traffic.NewHotspot(g, hot, 0.3), 0.02, 5)
	n, err := network.New(network.Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5000); err != nil {
		t.Fatal(err)
	}
	per := NodeTraffic(g, n.ChannelFlitCounts())
	// The hot node's four neighbours funnel the hotspot traffic; the
	// busiest node in the network must be adjacent to (or be) the hot node.
	busiest := 0
	for id, v := range per {
		if v > per[busiest] {
			busiest = id
		}
	}
	if g.Distance(busiest, hot) > 1 {
		t.Errorf("busiest node %d is %d hops from the hotspot", busiest, g.Distance(busiest, hot))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	if !strings.HasSuffix(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar should span full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar should span half width: %q", lines[0])
	}
	// Zero width falls back to the default, zero values render no bars.
	out = BarChart([]string{"x"}, []float64{0}, 0)
	if strings.Contains(out, "#") {
		t.Errorf("zero value rendered a bar: %q", out)
	}
}

func TestHeatmapSVG(t *testing.T) {
	g := topology.NewTorus(4, 2)
	counts := make([]int64, g.ChannelSlots())
	counts[g.ChannelIndex(5, 0, topology.Plus)] = 200
	counts[g.ChannelIndex(5, 1, topology.Minus)] = 50
	svg := HeatmapSVG(g, counts, `load 0.5 <"hot">`)
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not a standalone SVG document:\n%.120s", svg)
	}
	// 16 node cells + 13 legend swatches + 1 background rect.
	if got := strings.Count(svg, "<rect "); got != 16+13+1 {
		t.Errorf("rect count = %d, want 30", got)
	}
	if !strings.Contains(svg, "<title>node (1,1): 250 flits</title>") {
		t.Errorf("missing tooltip for busiest node:\n%s", svg)
	}
	// Busiest node takes the darkest ramp step; idle nodes the lightest.
	if !strings.Contains(svg, "#0d366b") || !strings.Contains(svg, "#cde2fb") {
		t.Error("ramp extremes not used")
	}
	if !strings.Contains(svg, "load 0.5 &lt;&quot;hot&quot;&gt;") {
		t.Error("title not XML-escaped")
	}
	if svg != HeatmapSVG(g, counts, `load 0.5 <"hot">`) {
		t.Error("output not deterministic")
	}
}

func TestHeatmapSVGNon2D(t *testing.T) {
	g := topology.NewTorus(4, 3)
	svg := HeatmapSVG(g, make([]int64, g.ChannelSlots()), "t")
	if !strings.Contains(svg, "needs a 2-D grid") {
		t.Errorf("expected placeholder for 3-D grid:\n%s", svg)
	}
}
