package viz

import (
	"strings"
	"testing"

	"wormsim/internal/topology"
)

func testSeries() []CurveSeries {
	return []CurveSeries{
		{
			Name:       "nbc",
			Loads:      []float64{0.2, 0.4, 0.6, 0.8},
			Latency:    []float64{24.1, 31.9, 55.4, 140.2},
			Throughput: []float64{0.19, 0.38, 0.52, 0.49},
			Deadlocked: []bool{false, false, false, false},
		},
		{
			Name:       "ecube",
			Loads:      []float64{0.2, 0.4, 0.6, 0.8},
			Latency:    []float64{25.0, 35.2, 88.7, 121.3},
			Throughput: []float64{0.19, 0.37, 0.44, 0.31},
			Deadlocked: []bool{false, false, false, true},
		},
	}
}

func TestSaturationIndex(t *testing.T) {
	s := testSeries()
	if got := s[0].SaturationIndex(); got != 2 {
		t.Errorf("nbc saturation index %d, want 2 (peak throughput)", got)
	}
	// ecube's last point deadlocked; its throughput must not win.
	if got := s[1].SaturationIndex(); got != 2 {
		t.Errorf("ecube saturation index %d, want 2", got)
	}
	if got := (CurveSeries{}).SaturationIndex(); got != -1 {
		t.Errorf("empty series saturation index %d, want -1", got)
	}
	all := CurveSeries{Throughput: []float64{0.1, 0.2}, Deadlocked: []bool{true, true}}
	if got := all.SaturationIndex(); got != -1 {
		t.Errorf("all-deadlocked saturation index %d, want -1", got)
	}
}

func TestCompareSVG(t *testing.T) {
	svg := CompareSVG("nbc vs ecube", testSeries())
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		"nbc vs ecube",     // title
		"<polyline",        // the curves
		"stroke-dasharray", // saturation rings
		"deadlock",         // the deadlocked point's tooltip
		"offered load",
		"latency (cycles)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("CompareSVG output missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("want one polyline per series, have %d", strings.Count(svg, "<polyline"))
	}
	// Deterministic: same inputs, same bytes.
	if again := CompareSVG("nbc vs ecube", testSeries()); again != svg {
		t.Error("CompareSVG is not a pure function of its inputs")
	}
}

func TestCompareSVGEmpty(t *testing.T) {
	for _, series := range [][]CurveSeries{nil, {{Name: "nbc"}, {Name: "ecube"}}} {
		svg := CompareSVG("empty", series)
		if !strings.Contains(svg, "no comparable points yet") || !strings.Contains(svg, "</svg>") {
			t.Errorf("empty comparison not a valid placeholder: %.160q", svg)
		}
	}
}

// TestHeatmapSVGEmptyCounts: a zero-cycle run (no channel data yet) must
// yield a valid placeholder document, not a grid of fabricated zeros.
func TestHeatmapSVGEmptyCounts(t *testing.T) {
	g := topology.NewTorus(4, 2)
	svg := HeatmapSVG(g, nil, "t")
	if !strings.Contains(svg, "no channel data yet") || !strings.Contains(svg, "</svg>") {
		t.Errorf("empty-counts heatmap: %.160q", svg)
	}
	// All-zero counts are real data (an idle network): render the grid.
	svg = HeatmapSVG(g, make([]int64, g.ChannelSlots()), "idle")
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "0 flits") {
		t.Errorf("all-zero heatmap should render the idle grid: %.160q", svg)
	}
}
