package viz

import (
	"strings"
	"testing"

	"wormsim/internal/topology"
)

func TestBlameSVG(t *testing.T) {
	g := topology.NewTorus(4, 2)
	blame := make([]int64, g.ChannelSlots())
	blame[5] = 40
	blame[9] = 10
	out := BlameSVG(g, blame, []int{5}, `nbc "hotspot" <run>`)
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("not a standalone SVG document:\n%.120s", out)
	}
	if got := strings.Count(out, "<rect "); got != 1+16+len(redRamp) {
		t.Errorf("rect count %d, want background + 16 cells + %d legend steps", got, len(redRamp))
	}
	if got := strings.Count(out, "tree root"); got != 1 {
		t.Errorf("ringed root cells %d, want exactly 1", got)
	}
	if !strings.Contains(out, `stroke="#0b0b0b"`) {
		t.Error("root cell missing ring stroke")
	}
	if !strings.Contains(out, "blamed worm-cycles") {
		t.Error("tooltips missing blame units")
	}
	if strings.Contains(out, "<run>") || !strings.Contains(out, "&lt;run&gt;") {
		t.Error("title not XML-escaped")
	}
	// Pure function: identical inputs render byte-identical documents.
	if out != BlameSVG(g, blame, []int{5}, `nbc "hotspot" <run>`) {
		t.Error("output not deterministic")
	}
}

func TestBlameSVGEmpty(t *testing.T) {
	g := topology.NewTorus(4, 2)
	out := BlameSVG(g, make([]int64, g.ChannelSlots()), nil, "t")
	if !strings.Contains(out, "no blame recorded yet") {
		t.Errorf("empty blame vector: %.120q", out)
	}
}

func TestBlameSVGNeedsTwoDims(t *testing.T) {
	g := topology.NewTorus(4, 3)
	blame := make([]int64, g.ChannelSlots())
	blame[0] = 1
	if out := BlameSVG(g, blame, nil, "t"); !strings.Contains(out, "needs a 2-D grid") {
		t.Errorf("3-D grid: %.120q", out)
	}
}

func TestBlameSVGIgnoresBogusRoots(t *testing.T) {
	g := topology.NewTorus(4, 2)
	blame := make([]int64, g.ChannelSlots())
	blame[3] = 5
	out := BlameSVG(g, blame, []int{-1, g.ChannelSlots() + 7}, "t")
	if strings.Contains(out, "tree root") {
		t.Error("out-of-range root channels must not ring any cell")
	}
}
