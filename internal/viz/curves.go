package viz

import (
	"fmt"
	"strings"
)

// CurveSeries is one algorithm's measured curve over offered load: the
// latency and throughput at each load, plus which points deadlocked. Slices
// are parallel; Loads must be ascending for a sensible polyline.
type CurveSeries struct {
	Name       string
	Loads      []float64
	Latency    []float64
	Throughput []float64
	Deadlocked []bool
}

// SaturationIndex returns the index of the series' peak-throughput point —
// the operating point the paper calls saturation, beyond which added load
// only adds latency — or -1 for an empty series. Deadlocked points never
// win: their throughput describes a collapsed network.
func (s CurveSeries) SaturationIndex() int {
	best, at := -1.0, -1
	for i, thr := range s.Throughput {
		if i < len(s.Deadlocked) && s.Deadlocked[i] {
			continue
		}
		if thr > best {
			best, at = thr, i
		}
	}
	return at
}

// seriesPalette colors overlay curves; series beyond its length wrap around.
var seriesPalette = []string{"#2a78d6", "#d97706", "#059669", "#dc2626", "#7c3aed", "#52514e"}

const (
	curveW     = 560 // total canvas width
	curveH     = 360 // total canvas height
	curvePadL  = 56  // room for the latency axis labels
	curvePadR  = 20
	curvePadT  = 40 // room for title + legend
	curvePadB  = 40 // room for the load axis labels
	curveTicks = 4
)

// CompareSVG overlays the latency-vs-offered-load curves of several series
// on one plot: one polyline and point markers per series, a hollow ring on
// each series' saturation point (peak throughput), crosses on deadlocked
// points, shared axes scaled to the data, and a legend. Output is a pure
// function of the inputs, so identical stores produce byte-identical
// documents — the golden test pins one.
func CompareSVG(title string, series []CurveSeries) string {
	var b strings.Builder
	maxLoad, maxLat := 0.0, 0.0
	points := 0
	for _, s := range series {
		for i, l := range s.Loads {
			points++
			if l > maxLoad {
				maxLoad = l
			}
			if i < len(s.Latency) && s.Latency[i] > maxLat {
				maxLat = s.Latency[i]
			}
		}
	}
	if points == 0 {
		w, h := 360, 48
		fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
		fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
		fmt.Fprintf(&b, `<text x="%d" y="28" font-family="system-ui,sans-serif" font-size="13" fill="%s">no comparable points yet</text>`+"\n", svgPad, svgMutedInk)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if maxLoad <= 0 {
		maxLoad = 1
	}
	if maxLat <= 0 {
		maxLat = 1
	}

	plotW := float64(curveW - curvePadL - curvePadR)
	plotH := float64(curveH - curvePadT - curvePadB)
	// x and y map data coordinates onto the plot rectangle (y grows upward).
	x := func(load float64) float64 { return float64(curvePadL) + load/maxLoad*plotW }
	y := func(lat float64) float64 { return float64(curvePadT) + plotH - lat/maxLat*plotH }

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`+"\n", curveW, curveH, curveW, curveH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", curveW, curveH, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="system-ui,sans-serif" font-size="13" font-weight="600" fill="%s">%s</text>`+"\n",
		curvePadL, svgInk, escapeXML(title))

	// Gridlines and axis labels.
	for i := 0; i <= curveTicks; i++ {
		f := float64(i) / curveTicks
		gx, gy := x(f*maxLoad), y(f*maxLat)
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#e4e2de" stroke-width="1"/>`+"\n",
			coord(gx), curvePadT, coord(gx), curveH-curvePadB)
		fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#e4e2de" stroke-width="1"/>`+"\n",
			curvePadL, coord(gy), curveW-curvePadR, coord(gy))
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" font-family="system-ui,sans-serif" font-size="11" fill="%s">%.2f</text>`+"\n",
			coord(gx), curveH-curvePadB+16, svgMutedInk, f*maxLoad)
		fmt.Fprintf(&b, `<text x="%d" y="%s" text-anchor="end" font-family="system-ui,sans-serif" font-size="11" fill="%s">%.0f</text>`+"\n",
			curvePadL-6, coord(gy+4), svgMutedInk, f*maxLat)
	}
	fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" font-family="system-ui,sans-serif" font-size="11" fill="%s">offered load (fraction of capacity)</text>`+"\n",
		coord(float64(curvePadL)+plotW/2), curveH-8, svgMutedInk)
	fmt.Fprintf(&b, `<text x="14" y="%s" text-anchor="middle" font-family="system-ui,sans-serif" font-size="11" fill="%s" transform="rotate(-90 14 %s)">latency (cycles)</text>`+"\n",
		coord(float64(curvePadT)+plotH/2), svgMutedInk, coord(float64(curvePadT)+plotH/2))

	for si, s := range series {
		color := seriesPalette[si%len(seriesPalette)]
		if len(s.Loads) > 1 {
			var pts []string
			for i, l := range s.Loads {
				if i >= len(s.Latency) {
					break
				}
				pts = append(pts, coord(x(l))+","+coord(y(s.Latency[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), color)
		}
		sat := s.SaturationIndex()
		for i, l := range s.Loads {
			if i >= len(s.Latency) {
				break
			}
			px, py := x(l), y(s.Latency[i])
			if i < len(s.Deadlocked) && s.Deadlocked[i] {
				// Deadlocked point: a cross, not part of the usable curve.
				fmt.Fprintf(&b, `<path d="M%s %s l6 6 m0 -6 l-6 6" stroke="%s" stroke-width="2" fill="none"><title>%s rho=%.2f: deadlock</title></path>`+"\n",
					coord(px-3), coord(py-3), color, escapeXML(s.Name), l)
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"><title>%s rho=%.2f: %.1f cycles, thr %.3f</title></circle>`+"\n",
				coord(px), coord(py), color, escapeXML(s.Name), l, s.Latency[i], thrAt(s, i))
			if i == sat {
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="7" fill="none" stroke="%s" stroke-width="1.5" stroke-dasharray="2 2"><title>%s saturation: peak throughput %.3f at rho=%.2f</title></circle>`+"\n",
					coord(px), coord(py), color, escapeXML(s.Name), thrAt(s, i), l)
			}
		}
		// Legend swatch + name, one row per series.
		ly := 16 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", curveW-160, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="system-ui,sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
			curveW-144, ly+9, svgInk, escapeXML(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// thrAt is Throughput[i] tolerant of a short slice.
func thrAt(s CurveSeries, i int) float64 {
	if i < len(s.Throughput) {
		return s.Throughput[i]
	}
	return 0
}

// coord formats a pixel coordinate with one decimal — enough for crisp SVG,
// and a stable representation for the golden files.
func coord(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%.1f", v), ".0")
}
