// Package viz renders small text visualizations of simulation output:
// per-node traffic heatmaps for two-dimensional networks (which make the
// hotspot tree and north-last's skew visible at a glance) and horizontal
// bar charts for per-class distributions.
package viz

import (
	"fmt"
	"strings"

	"wormsim/internal/topology"
)

// shades orders glyphs from idle to busiest.
var shades = []byte(" .:-=+*#%@")

// shade maps v in [0, max] to a glyph.
func shade(v, max float64) byte {
	if max <= 0 {
		return shades[0]
	}
	idx := int(v / max * float64(len(shades)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// ChannelHeatmap renders a 2-D grid where each cell aggregates the flit
// traffic on a node's outgoing physical channels, shaded relative to the
// busiest node. counts is the dense per-channel-slot vector from
// network.ChannelFlitCounts or core.Result.ChannelFlits. Rows are printed
// with dimension 1 increasing downward and dimension 0 across.
func ChannelHeatmap(g *topology.Grid, counts []int64) string {
	if g.N() != 2 {
		return fmt.Sprintf("(heatmap needs a 2-D grid, have %d dims)\n", g.N())
	}
	perNode := NodeTraffic(g, counts)
	max := 0.0
	for _, v := range perNode {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for y := 0; y < g.K(); y++ {
		for x := 0; x < g.K(); x++ {
			v := perNode[g.ID([]int{x, y})]
			b.WriteByte(shade(v, max))
			b.WriteByte(shade(v, max)) // double width for square aspect
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NodeTraffic sums each node's outgoing channel flit counts.
func NodeTraffic(g *topology.Grid, counts []int64) []float64 {
	perNode := make([]float64, g.Nodes())
	for ch, c := range counts {
		if ch >= g.ChannelSlots() {
			break
		}
		id, dim, dir := g.ChannelInfo(ch)
		if g.HasChannel(id, dim, dir) {
			perNode[id] += float64(c)
		}
	}
	return perNode
}

// BarChart renders labeled horizontal bars scaled to width characters for
// the largest value.
func BarChart(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %10.3f %s\n", labelWidth, label, v, strings.Repeat("#", bar))
	}
	return b.String()
}
