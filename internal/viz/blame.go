package viz

import (
	"fmt"
	"strings"

	"wormsim/internal/topology"
)

// redRamp is a single-hue sequential scale, light to dark, for blame-mass
// encoding. It is deliberately a different hue from the traffic heatmap's
// blueRamp so the two maps cannot be mistaken for each other side by side.
var redRamp = []string{
	"#fbe3dc", "#f9d3c8", "#f6c2b3", "#f3b09e", "#f09d89", "#eb8873",
	"#e5735f", "#dc5e4c", "#cd503e", "#ba4434", "#a5392b", "#8e2e22", "#76241a",
}

// rampAt maps v in [0, max] onto ramp (lightest step for zero, darkest for
// the maximum).
func rampAt(ramp []string, v, max float64) string {
	if max <= 0 || v <= 0 {
		return ramp[0]
	}
	idx := int(v / max * float64(len(ramp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

// svgNotice renders a small valid SVG document carrying only a message, for
// states where a real map would be a lie (no data yet, wrong dimensionality).
func svgNotice(msg string) string {
	w, h := 360, 48
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="28" font-family="system-ui,sans-serif" font-size="13" fill="%s">%s</text>`+"\n", svgPad, svgMutedInk, escapeXML(msg))
	b.WriteString("</svg>\n")
	return b.String()
}

// BlameSVG renders congestion-blame mass as a 2-D node grid: each cell sums
// the blame attributed to the channels feeding that node (a channel's blame
// lands on its downstream endpoint, where the contended buffers live), filled
// from a sequential red ramp scaled to the most-blamed node. Nodes fed by a
// rootChs entry — the top congestion-tree roots — get a ring stroke so the
// roots stand out even when several neighbours carry similar mass. blame is
// the dense per-channel-slot vector from forensics.Summary.BlameByChannel.
// Output is a pure function of the inputs, so identical runs produce
// byte-identical documents.
func BlameSVG(g *topology.Grid, blame []int64, rootChs []int, title string) string {
	var total int64
	for _, v := range blame {
		total += v
	}
	if total == 0 {
		return svgNotice("no blame recorded yet")
	}
	if g.N() != 2 {
		return svgNotice(fmt.Sprintf("blame map needs a 2-D grid, have %d dims", g.N()))
	}

	k := g.K()
	perNode := make([]float64, g.Nodes())
	for ch, v := range blame {
		if ch >= g.ChannelSlots() {
			break
		}
		if v == 0 {
			continue
		}
		up, dim, dir := g.ChannelInfo(ch)
		if g.HasChannel(up, dim, dir) {
			perNode[g.Neighbor(up, dim, dir)] += float64(v)
		}
	}
	ringed := make([]bool, g.Nodes())
	for _, ch := range rootChs {
		if ch < 0 || ch >= g.ChannelSlots() {
			continue
		}
		up, dim, dir := g.ChannelInfo(ch)
		if g.HasChannel(up, dim, dir) {
			ringed[g.Neighbor(up, dim, dir)] = true
		}
	}
	max := 0.0
	for _, v := range perNode {
		if v > max {
			max = v
		}
	}

	gridSpan := k*svgCell + (k-1)*svgGap
	w := gridSpan + 2*svgPad
	if w < 320 {
		w = 320
	}
	h := svgTitleRoom + gridSpan + svgLegendH + 2*svgPad

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="system-ui,sans-serif" font-size="13" font-weight="600" fill="%s">%s</text>`+"\n",
		svgPad, svgPad+12, svgInk, escapeXML(title))

	top := svgPad + svgTitleRoom
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			id := g.ID([]int{x, y})
			v := perNode[id]
			cx := svgPad + x*(svgCell+svgGap)
			cy := top + y*(svgCell+svgGap)
			ring, note := "", ""
			if ringed[id] {
				ring = fmt.Sprintf(` stroke="%s" stroke-width="2"`, svgInk)
				note = " (tree root)"
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="3" fill="%s"%s><title>node (%d,%d): %.0f blamed worm-cycles%s</title></rect>`+"\n",
				cx, cy, svgCell, svgCell, rampAt(redRamp, v, max), ring, x, y, v, note)
		}
	}

	ly := top + gridSpan + 14
	sw := 14
	for i, c := range redRamp {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="10" fill="%s"/>`+"\n", svgPad+i*sw, ly, sw, c)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="system-ui,sans-serif" font-size="11" fill="%s">0</text>`+"\n", svgPad, ly+22, svgMutedInk)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" font-family="system-ui,sans-serif" font-size="11" fill="%s">%.0f worm-cycles (most blamed node)</text>`+"\n",
		svgPad+len(redRamp)*sw+160, ly+22, svgMutedInk, max)
	b.WriteString("</svg>\n")
	return b.String()
}
