package network

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// checkInvariants scans the whole simulator state for structural
// violations. It runs inside the package so it can reach private state.
func checkInvariants(t *testing.T, n *Network) {
	t.Helper()
	// Every vc slot: counts consistent, buffers within depth.
	ownersByCh := make([]int32, len(n.owners))
	for ch := 0; ch < n.g.ChannelSlots(); ch++ {
		for class := 0; class < n.numVCs; class++ {
			id := int32(ch*n.numVCs + class)
			if n.vcMsg[id] == nil {
				if n.vcFlits[id] != 0 {
					t.Fatalf("free vc %d/%d holds %d flits", ch, class, n.vcFlits[id])
				}
				continue
			}
			ownersByCh[ch]++
			if n.vcFlits[id] < 0 || int(n.vcFlits[id]) > n.cfg.BufDepth {
				t.Fatalf("vc %d/%d flit count %d out of [0,%d]", ch, class, n.vcFlits[id], n.cfg.BufDepth)
			}
			if n.vcRecvd[id]-n.vcSent[id] != n.vcFlits[id] {
				t.Fatalf("vc %d/%d recvd %d - sent %d != flits %d", ch, class, n.vcRecvd[id], n.vcSent[id], n.vcFlits[id])
			}
			if int(n.vcRecvd[id]) > n.vcMsg[id].Len {
				t.Fatalf("vc %d/%d received %d flits of a %d-flit worm", ch, class, n.vcRecvd[id], n.vcMsg[id].Len)
			}
			ai := n.vcAIdx[id]
			if ai < 0 || int(ai) >= len(n.active) || n.active[ai] != id {
				t.Fatalf("vc %d/%d active index broken", ch, class)
			}
		}
	}
	// Owner counters agree with actual ownership.
	for ch, want := range ownersByCh {
		if n.owners[ch] != want {
			t.Fatalf("channel %d owner count %d, actual %d", ch, n.owners[ch], want)
		}
	}
	// The channel tables agree with the grid's per-call answers.
	for ch := 0; ch < n.g.ChannelSlots(); ch++ {
		up, dim, dir := n.g.ChannelInfo(ch)
		if int(n.tbl.up[ch]) != up || int(n.tbl.dim[ch]) != dim || topology.Dir(n.tbl.dir[ch]) != dir {
			t.Fatalf("channel %d table decodes (%d,%d,%d), grid says (%d,%d,%d)",
				ch, n.tbl.up[ch], n.tbl.dim[ch], n.tbl.dir[ch], up, dim, dir)
		}
		if int(n.tbl.down[ch]) != n.g.Neighbor(up, dim, dir) {
			t.Fatalf("channel %d down table %d, grid says %d", ch, n.tbl.down[ch], n.g.Neighbor(up, dim, dir))
		}
	}
	// Active list has no strays.
	for i, id := range n.active {
		if n.vcMsg[id] == nil {
			t.Fatalf("active[%d] has no message", i)
		}
		if int(n.vcAIdx[id]) != i {
			t.Fatalf("active[%d] claims index %d", i, n.vcAIdx[id])
		}
	}
	// Injection free list holds only dead injection slots.
	for _, id := range n.injFree {
		if id < n.chanVCs {
			t.Fatalf("channel vc %d on the injection free list", id)
		}
		if n.vcMsg[id] != nil {
			t.Fatalf("free injection slot %d still holds a message", id)
		}
	}
	// Injection-port counters never exceed the cap.
	if n.cfg.InjectionPorts > 0 {
		for node, c := range n.injecting {
			if c < 0 || int(c) > n.cfg.InjectionPorts {
				t.Fatalf("node %d injecting %d (cap %d)", node, c, n.cfg.InjectionPorts)
			}
		}
	}
}

// TestStateInvariantsUnderLoad steps loaded networks and validates the full
// state every cycle, for a representative algorithm mix.
func TestStateInvariantsUnderLoad(t *testing.T) {
	for _, algName := range []string{"ecube", "nlast", "2pn", "nbc", "phop"} {
		g := topology.NewTorus(6, 2)
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.04, 3)
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8,
			CCLimit: 2, InjectionPorts: 2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1500; i++ {
			if err := n.Step(); err != nil {
				t.Fatalf("%s: %v", algName, err)
			}
			checkInvariants(t, n)
		}
	}
}

// TestStateInvariantsOnMesh repeats the scan on a mesh, where boundary
// channel slots must stay untouched.
func TestStateInvariantsOnMesh(t *testing.T) {
	g := topology.NewMesh(5, 2)
	alg, _ := routing.Get("nlast")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.04, 9)
	n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, CCLimit: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, n)
		// Boundary slots never owned.
		for ch := 0; ch < g.ChannelSlots(); ch++ {
			id, dim, dir := g.ChannelInfo(ch)
			if g.HasChannel(id, dim, dir) {
				continue
			}
			for class := 0; class < n.numVCs; class++ {
				if n.vcMsg[ch*n.numVCs+class] != nil {
					t.Fatalf("boundary channel %d owned", ch)
				}
			}
		}
	}
}

// TestArbitrationFairness: two saturating streams share the same physical
// channels on different virtual channels; the rotating arbiter must give
// each a comparable share of deliveries.
func TestArbitrationFairness(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("phop")
	// Two sources on row 0 continuously send worms through the shared +x
	// channels of that row; phop gives them distinct VC classes at each
	// shared link (their hop counts differ by one), so they time-multiplex
	// the physical channels rather than queue behind one another.
	var cycles []int64
	var arrs []traffic.Arrival
	src0 := g.ID([]int{0, 0})
	src1 := g.ID([]int{1, 0})
	dst := g.ID([]int{7, 0})
	for i := 0; i < 60; i++ {
		cycles = append(cycles, int64(i*36), int64(i*36))
		arrs = append(arrs,
			traffic.Arrival{Src: src0, Dst: dst},
			traffic.Arrival{Src: src1, Dst: dst})
	}
	wl := traffic.NewTrace(g, "pair", cycles, arrs)
	counts := map[int]int{}
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1,
		OnDeliver: func(m *message.Message) { counts[m.Src]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(wl.LastCycle() + 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(50000); err != nil {
		t.Fatal(err)
	}
	if counts[src0] != 60 || counts[src1] != 60 {
		t.Fatalf("deliveries per source: %v, want 60 each", counts)
	}
	// Fairness shows up as comparable mean latency for the two streams
	// rather than one stream monopolizing the channel; re-run measuring it.
	var sum [2]int64
	wl.Reseed(0)
	n2, _ := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1,
		OnDeliver: func(m *message.Message) {
			if m.Src == src0 {
				sum[0] += m.Latency()
			} else {
				sum[1] += m.Latency()
			}
		},
	})
	if err := n2.Run(wl.LastCycle() + 1); err != nil {
		t.Fatal(err)
	}
	if err := n2.Drain(50000); err != nil {
		t.Fatal(err)
	}
	mean0 := float64(sum[0]) / 60
	mean1 := float64(sum[1]) / 60
	ratio := mean0 / mean1
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("stream latencies %0.1f vs %0.1f: arbiter looks unfair", mean0, mean1)
	}
}
