package network

import (
	"testing"

	"wormsim/internal/routing"
)

// FuzzScalarBatchEquivalence is the dynamic counterpart of wormlint's
// engineparity certificates: the static pass proves the scalar and batch
// engines read the same config, touch the same canonical state and draw the
// same RNG streams; this target proves the runtime consequence — replica r of
// a batch run is bit-identical to a scalar run with the same seed — across
// fuzzer-chosen topologies, algorithms, rates, run lengths and replica
// counts. The seed corpus passes in-tree with `go test`; nightly CI lets the
// fuzzer explore for five minutes.
func FuzzScalarBatchEquivalence(f *testing.F) {
	f.Add(uint64(11), uint8(0), uint8(0), uint16(200), uint8(20), uint8(2))
	f.Add(uint64(7), uint8(1), uint8(1), uint16(128), uint8(35), uint8(0))
	f.Add(uint64(23), uint8(4), uint8(2), uint16(96), uint8(10), uint8(1))
	f.Add(uint64(0xdeadbeef), uint8(3), uint8(3), uint16(64), uint8(50), uint8(2))
	f.Add(uint64(1), uint8(5), uint8(4), uint16(300), uint8(5), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, shape, algPick uint8, cycles uint16, ratePct uint8, replicas uint8) {
		gc := batchGrids[int(shape)%len(batchGrids)]
		g := batchGrid(gc.k, gc.n, gc.mesh)
		names := routing.Names()
		alg, err := routing.Get(names[int(algPick)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		if alg.Compatible(g) != nil {
			t.Skip("algorithm/topology pair not supported")
		}
		// Clamp to cheap-but-interesting runs: enough cycles to cross the
		// mid-run reseed and drain some worms, load low enough to finish.
		runCycles := 64 + int64(cycles%448)
		rate := 0.005 + float64(ratePct%60)/1000.0
		seeds := make([]uint64, 1+int(replicas%3))
		for r := range seeds {
			seeds[r] = seed + uint64(r)*0x9e3779b97f4a7c15
		}
		got := batchFingerprints(t, g, alg, rate, seeds, runCycles)
		for r, s := range seeds {
			if want := scalarFingerprint(t, g, alg, rate, s, runCycles); got[r] != want {
				t.Errorf("replica %d (seed %d, %s, %s, rate %.3f, %d cycles) diverged from the scalar engine",
					r, s, gc.name, alg.Name(), rate, runCycles)
			}
		}
	})
}
