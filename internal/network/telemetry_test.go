package network

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// telNet builds an 8x8 torus with a collector attached.
func telNet(t *testing.T, opts telemetry.Options, rate float64) (*Network, *telemetry.Collector) {
	t.Helper()
	g := topology.NewTorus(8, 2)
	alg, err := routing.Get("nbc")
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, 7)
	tel := telemetry.New(opts, g.ChannelSlots(), alg.NumVCs(g))
	n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, CCLimit: 2, Seed: 7, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return n, tel
}

// TestTelemetryMetricsConsistency cross-checks the collector against the
// engine's own counters after a loaded run.
func TestTelemetryMetricsConsistency(t *testing.T) {
	n, tel := telNet(t, telemetry.Options{Metrics: true, Trace: true}, 0.05)
	if err := n.Run(2000); err != nil {
		t.Fatal(err)
	}
	s := tel.Summary()
	if s.Cycles != n.Now() {
		t.Errorf("telemetry cycles %d != network cycles %d", s.Cycles, n.Now())
	}
	total := n.Total()
	if s.Drops != total.Dropped {
		t.Errorf("telemetry drops %d != counter drops %d", s.Drops, total.Dropped)
	}
	var busy int64
	for ch, b := range s.ChannelBusy {
		busy += b
		if got := n.ChannelFlitCounts()[ch]; got != b {
			t.Fatalf("channel %d: busy %d != flit count %d", ch, b, got)
		}
	}
	if busy != total.FlitMoves {
		t.Errorf("busy cycles %d != flit moves %d", busy, total.FlitMoves)
	}
	if s.TotalHeadBlocked() == 0 {
		t.Error("no head-blocked cycles recorded at a contended load")
	}
	if s.InjQueueMax == 0 {
		t.Error("injection queue gauge never observed a waiting message")
	}

	// Lifecycle accounting: every admitted worm has an inject event, every
	// delivered one a deliver event (SampleEvery=1, ring big enough).
	counts := map[telemetry.EventType]int64{}
	lastCycle := map[int64]int64{}
	hops := map[int64]int{}
	for _, e := range tel.Events() {
		counts[e.Type]++
		if prev, ok := lastCycle[e.Msg]; ok && e.Cycle < prev {
			t.Fatalf("msg %d: event cycle %d before %d", e.Msg, e.Cycle, prev)
		}
		lastCycle[e.Msg] = e.Cycle
		if e.Type == telemetry.EvHop {
			hops[e.Msg]++
		}
	}
	if counts[telemetry.EvInject] != total.Admitted {
		t.Errorf("inject events %d != admitted %d", counts[telemetry.EvInject], total.Admitted)
	}
	if counts[telemetry.EvDrop] != total.Dropped {
		t.Errorf("drop events %d != dropped %d", counts[telemetry.EvDrop], total.Dropped)
	}
	if counts[telemetry.EvDeliver] != total.Delivered {
		t.Errorf("deliver events %d != delivered %d", counts[telemetry.EvDeliver], total.Delivered)
	}
	if counts[telemetry.EvVCAlloc] == 0 || counts[telemetry.EvHop] == 0 {
		t.Errorf("missing alloc/hop events: %v", counts)
	}
}

// TestTelemetryDoesNotPerturb: attaching a collector must not change the
// simulated history (no RNG draws, no scheduling effects).
func TestTelemetryDoesNotPerturb(t *testing.T) {
	run := func(attach bool) Counters {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("nbc")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.04, 11)
		cfg := Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 11}
		if attach {
			cfg.Telemetry = telemetry.New(telemetry.Options{Trace: true}, g.ChannelSlots(), alg.NumVCs(g))
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(2500); err != nil {
			t.Fatal(err)
		}
		c := n.Total()
		c.FlitMovesByClass = nil
		return c
	}
	with, without := run(true), run(false)
	if !reflect.DeepEqual(with, without) {
		t.Errorf("telemetry perturbed the run:\nwith    %+v\nwithout %+v", with, without)
	}
}

// TestTelemetryDimsValidated: a collector sized for the wrong network is
// rejected at construction.
func TestTelemetryDimsValidated(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nbc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
	tel := telemetry.New(telemetry.Options{}, 3, 1)
	if _, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, Telemetry: tel}); err == nil {
		t.Fatal("mis-sized collector accepted")
	}
}

// TestWatchdogAttachesTrace: when tracing is on, the deadlock report carries
// the flight recorder's last events and kill markers.
func TestWatchdogAttachesTrace(t *testing.T) {
	g := topology.NewTorus(8, 1)
	var cycles []int64
	var arrs []traffic.Arrival
	for src := 0; src < 8; src++ {
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: (src + 2) % 8})
	}
	wl := traffic.NewTrace(g, "cycle", cycles, arrs)
	tel := telemetry.New(telemetry.Options{Trace: true}, g.ChannelSlots(), 1)
	n, err := New(Config{
		Grid: g, Algorithm: cyclicAlg{}, Workload: wl, MsgLen: 16,
		BufDepth: 1, Seed: 1, WatchdogCycles: 200, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	err = n.Drain(5000)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected a DeadlockError, got %v", err)
	}
	if len(dl.Trace) == 0 {
		t.Fatal("deadlock error carries no trace events")
	}
	if !strings.Contains(dl.Detail, "last trace events:") {
		t.Errorf("detail missing trace section:\n%s", dl.Detail)
	}
	kills := 0
	for _, e := range dl.Trace {
		if e.Type == telemetry.EvKill {
			kills++
		}
	}
	if kills == 0 {
		t.Errorf("no watchdog-kill events in trace: %v", dl.Trace)
	}
}

// TestWormStatesModel checks the canonical in-flight model: sorted by ID,
// injection slot leading, buffers upstream to downstream, flits conserved.
func TestWormStatesModel(t *testing.T) {
	n, _ := telNet(t, telemetry.Options{}, 0.05)
	if err := n.Run(300); err != nil {
		t.Fatal(err)
	}
	states := n.WormStates()
	if len(states) == 0 {
		t.Fatal("no in-flight worms after a loaded run")
	}
	for i := 1; i < len(states); i++ {
		if states[i-1].ID >= states[i].ID {
			t.Fatalf("states not sorted by ID: %d before %d", states[i-1].ID, states[i].ID)
		}
	}
	for _, w := range states {
		for i, h := range w.Holding {
			if h.Ch == -1 && i != 0 {
				t.Errorf("msg %d: injection slot not first: %v", w.ID, w.Holding)
			}
		}
		if w.Len < w.BufferedFlits() {
			t.Errorf("msg %d: %d flits buffered exceeds length %d", w.ID, w.BufferedFlits(), w.Len)
		}
	}
	// Snapshot is a pure rendering of the same model: calling it twice gives
	// identical text.
	if a, b := n.Snapshot(), n.Snapshot(); a != b {
		t.Errorf("snapshot not deterministic:\n%s\nvs\n%s", a, b)
	}
}
