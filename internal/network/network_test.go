package network

import (
	"errors"
	"math"
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// singleMessage builds a network that injects exactly one message at cycle
// 0 and returns it plus a collector for the delivery.
func singleMessage(t *testing.T, g *topology.Grid, algName string, src, dst int, msgLen int) *message.Message {
	t.Helper()
	alg, err := routing.Get(algName)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewTrace(g, "one", []int64{0}, []traffic.Arrival{{Src: src, Dst: dst}})
	var delivered *message.Message
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: msgLen, Seed: 1,
		OnDeliver: func(m *message.Message) { delivered = m },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step once so the cycle-0 injection happens before Drain's empty check.
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(10000); err != nil {
		t.Fatalf("%s: %v", algName, err)
	}
	if delivered == nil {
		t.Fatalf("%s: message not delivered", algName)
	}
	return delivered
}

// TestUnloadedLatencyMatchesEquationTwo: with no contention the latency is
// w + (ml + d - 1) * ft with w = 0 and ft = 1 — eq. (2) of the paper — for
// every algorithm.
func TestUnloadedLatencyMatchesEquationTwo(t *testing.T) {
	g := topology.NewTorus(16, 2)
	cases := []struct {
		src, dst [2]int
	}{
		{[2]int{0, 0}, [2]int{3, 0}},  // 3 hops one dim
		{[2]int{4, 4}, [2]int{2, 2}},  // 4 hops two dims
		{[2]int{14, 1}, [2]int{2, 1}}, // wraps the dateline
		{[2]int{0, 0}, [2]int{8, 8}},  // full diameter
		{[2]int{5, 5}, [2]int{6, 5}},  // single hop
	}
	for _, algName := range []string{"ecube", "nlast", "2pn", "2pnsrc", "phop", "nhop", "nbc"} {
		for _, tc := range cases {
			src := g.ID(tc.src[:])
			dst := g.ID(tc.dst[:])
			m := singleMessage(t, g, algName, src, dst, 16)
			want := int64(g.Distance(src, dst) + 16 - 1)
			if m.Latency() != want {
				t.Errorf("%s %v->%v: latency %d, want %d", algName, tc.src, tc.dst, m.Latency(), want)
			}
		}
	}
}

func TestUnloadedLatencyOnMesh(t *testing.T) {
	g := topology.NewMesh(8, 2)
	for _, algName := range []string{"ecube", "nlast", "2pn", "phop", "nhop", "nbc"} {
		src := g.ID([]int{0, 7})
		dst := g.ID([]int{7, 0})
		m := singleMessage(t, g, algName, src, dst, 16)
		want := int64(14 + 16 - 1)
		if m.Latency() != want {
			t.Errorf("%s on mesh: latency %d, want %d", algName, m.Latency(), want)
		}
	}
}

func TestShortMessage(t *testing.T) {
	g := topology.NewTorus(16, 2)
	m := singleMessage(t, g, "ecube", 0, g.ID([]int{2, 3}), 1)
	if m.Latency() != 5 { // 5 hops, 1 flit
		t.Errorf("1-flit latency %d, want 5", m.Latency())
	}
}

// TestFlitConservation: after a drain, the total flit transfers equal the
// sum over delivered messages of hops * length.
func TestFlitConservation(t *testing.T) {
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"ecube", "phop", "nbc", "2pn", "nlast"} {
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 3)
		var hopFlits int64
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 3,
			OnDeliver: func(m *message.Message) { hopFlits += int64(m.HopsTotal) * int64(m.Len) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(2000); err != nil {
			t.Fatalf("%s: %v", algName, err)
		}
		quiet := traffic.NewBernoulli(g, traffic.NewUniform(g), 0, 3)
		*wl = *quiet
		if err := n.Drain(50000); err != nil {
			t.Fatalf("%s drain: %v", algName, err)
		}
		tot := n.Total()
		if tot.FlitMoves != hopFlits {
			t.Errorf("%s: %d flit moves, deliveries account for %d", algName, tot.FlitMoves, hopFlits)
		}
		if tot.Delivered != tot.Admitted {
			t.Errorf("%s: admitted %d != delivered %d after drain", algName, tot.Admitted, tot.Delivered)
		}
		if n.InFlight() != 0 {
			t.Errorf("%s: %d still in flight", algName, n.InFlight())
		}
		var byClass int64
		for _, c := range tot.FlitMovesByClass {
			byClass += c
		}
		if byClass != tot.FlitMoves {
			t.Errorf("%s: per-class flits %d != total %d", algName, byClass, tot.FlitMoves)
		}
	}
}

// TestDeadlockFreedomUnderStress: every paper algorithm must survive a
// saturating load and then drain completely. This is the empirical check
// backing each algorithm's deadlock-freedom argument.
func TestDeadlockFreedomUnderStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"ecube", "nlast", "2pn", "phop", "nhop", "nbc", "ecube2x", "wfirst", "negfirst"} {
		for _, patName := range []string{"uniform", "complement"} {
			pat, err := traffic.Parse(g, patName)
			if err != nil {
				t.Fatal(err)
			}
			alg, _ := routing.Get(algName)
			wl := traffic.NewBernoulli(g, pat, 0.05, 11) // far beyond saturation
			n, err := New(Config{
				Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Run(10000); err != nil {
				t.Fatalf("%s/%s: %v", algName, patName, err)
			}
			quiet := traffic.NewBernoulli(g, pat, 0, 11)
			*wl = *quiet
			if err := n.Drain(100000); err != nil {
				t.Fatalf("%s/%s failed to drain: %v", algName, patName, err)
			}
		}
	}
}

// TestSourceTag2pnCanDeadlock pins the empirical half of the EXPERIMENTS.md
// D1 hypothesis: the literal source-computed eq. (1) tag genuinely
// deadlocks under load on a torus — this exact configuration wedges and
// fails to drain (found by a 45-configuration stress sweep; deterministic
// given the seed). The per-hop variant passes the same sweep, see
// TestDeadlockFreedomUnderStress.
func TestSourceTag2pnCanDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("2pnsrc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.05, 1)
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
		WatchdogCycles: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = n.Run(15000)
	if err == nil {
		quiet := traffic.NewBernoulli(g, traffic.NewUniform(g), 0, 1)
		*wl = *quiet
		err = n.Drain(200000)
	}
	if err == nil {
		t.Error("expected the source-tag 2pn to wedge in this configuration; " +
			"if engine changes altered the schedule, find a new witness via a seed sweep")
	}
}

// cyclicAlg is a deliberately deadlocking algorithm: one virtual channel,
// always travel Plus in dimension 0. On a ring with concurrent worms the
// channel-dependency cycle closes and nothing can move.
type cyclicAlg struct{}

func (cyclicAlg) Name() string                                                       { return "cyclic" }
func (cyclicAlg) FullyAdaptive() bool                                                { return false }
func (cyclicAlg) NumVCs(*topology.Grid) int                                          { return 1 }
func (cyclicAlg) Compatible(*topology.Grid) error                                    { return nil }
func (cyclicAlg) Init(*topology.Grid, *message.Message)                              {}
func (cyclicAlg) Allocated(*topology.Grid, *message.Message, int, routing.Candidate) {}
func (cyclicAlg) Candidates(g *topology.Grid, m *message.Message, node int, dst []routing.Candidate) []routing.Candidate {
	return append(dst, routing.Candidate{Dim: 0, Dir: topology.Plus, VC: 0})
}

// TestWatchdogDetectsDeadlock: four worms chasing each other around a
// 4-ring with one virtual channel must wedge, and the watchdog must say so.
func TestWatchdogDetectsDeadlock(t *testing.T) {
	g := topology.NewTorus(8, 1)
	// Every node sends two hops ahead (+ direction, below the half-ring tie
	// so the direction is forced); worms are long enough to span their two
	// channels and block each other all around the ring.
	var cycles []int64
	var arrs []traffic.Arrival
	for src := 0; src < 8; src++ {
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: (src + 2) % 8})
	}
	wl := traffic.NewTrace(g, "cycle", cycles, arrs)
	n, err := New(Config{
		Grid: g, Algorithm: cyclicAlg{}, Workload: wl, MsgLen: 16,
		BufDepth: 1, Seed: 1, WatchdogCycles: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	err = n.Drain(5000)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected a DeadlockError, got %v", err)
	}
	if dl.InFlight == 0 {
		t.Error("deadlock error reports no messages in flight")
	}
	if dl.Error() == "" || dl.Detail == "" {
		t.Error("deadlock diagnostics empty")
	}
}

// TestDeterminism: identical configurations produce identical histories.
func TestDeterminism(t *testing.T) {
	run := func() Counters {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("nbc")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 42)
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		return n.Total()
	}
	a, b := run(), run()
	if a.FlitMoves != b.FlitMoves || a.Delivered != b.Delivered || a.Generated != b.Generated || a.Dropped != b.Dropped {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesHistory(t *testing.T) {
	run := func(seed uint64) Counters {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("nbc")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seed)
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: seed})
		if err := n.Run(2000); err != nil {
			t.Fatal(err)
		}
		return n.Total()
	}
	if a, b := run(1), run(2); a.FlitMoves == b.FlitMoves && a.Generated == b.Generated && a.Delivered == b.Delivered {
		t.Error("different seeds gave identical histories (suspicious)")
	}
}

func TestCongestionControlDropsAndBounds(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("ecube")
	mk := func(limit int) Counters {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.08, 5)
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: limit, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(4000); err != nil {
			t.Fatal(err)
		}
		return n.Total()
	}
	withCC := mk(1)
	if withCC.Dropped == 0 {
		t.Error("saturating load with CC limit 1 should drop messages")
	}
	if withCC.Admitted+withCC.Dropped != withCC.Generated {
		t.Error("admitted + dropped != generated")
	}
	noCC := mk(0)
	if noCC.Dropped != 0 {
		t.Error("without CC nothing should be dropped")
	}
}

func TestInjectionPortsThrottle(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("phop")
	run := func(ports int) int64 {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.06, 9)
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, InjectionPorts: ports, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(4000); err != nil {
			t.Fatal(err)
		}
		return n.Total().FlitMoves
	}
	one, four := run(1), run(4)
	if one >= four {
		t.Errorf("1 injection port moved %d flits, 4 ports moved %d; expected a throttle", one, four)
	}
}

func TestUtilizationBounded(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nbc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.08, 13)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 13})
	if err := n.Run(4000); err != nil {
		t.Fatal(err)
	}
	u := n.Total().Utilization(g.NumChannels())
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
	var zero Counters
	if zero.Utilization(10) != 0 {
		t.Error("empty counters should have zero utilization")
	}
}

func TestWindowReset(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("ecube")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 1)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1})
	if err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if n.Window().Cycles != 1000 {
		t.Errorf("window cycles %d", n.Window().Cycles)
	}
	n.ResetWindow()
	if w := n.Window(); w.Cycles != 0 || w.FlitMoves != 0 || w.Generated != 0 {
		t.Errorf("window not reset: %+v", w)
	}
	if n.Total().Cycles != 1000 {
		t.Error("total must survive window reset")
	}
	if err := n.Run(500); err != nil {
		t.Fatal(err)
	}
	if n.Window().Cycles != 500 || n.Total().Cycles != 1500 {
		t.Error("window/total accounting wrong after reset")
	}
}

func TestVCTBlockedWormParks(t *testing.T) {
	// Under VCT (BufDepth >= MsgLen) a blocked worm frees its upstream
	// channels: with wormhole it cannot. Verify via per-class occupancy on
	// a long line: a victim worm is blocked behind a standing worm.
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("phop")
	count := func(bufDepth int) int {
		// Two messages on the same row: a long-haul one injected first and
		// a follower that must share channels.
		wl := traffic.NewTrace(g, "pair",
			[]int64{0, 0, 0, 0, 0, 0},
			[]traffic.Arrival{
				{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{7, 0})},
				{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{7, 0})},
				{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{7, 0})},
				{Src: g.ID([]int{1, 0}), Dst: g.ID([]int{7, 0})},
				{Src: g.ID([]int{2, 0}), Dst: g.ID([]int{7, 0})},
				{Src: g.ID([]int{3, 0}), Dst: g.ID([]int{7, 0})},
			})
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, BufDepth: bufDepth, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		integral := 0
		for i := 0; i < 200; i++ {
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
			for _, c := range n.OccupiedVCsByClass() {
				integral += c
			}
		}
		return integral
	}
	wormhole := count(2)
	vct := count(16)
	if wormhole <= vct {
		t.Errorf("wormhole worms should hold channel-cycles longer than VCT: %d vs %d", wormhole, vct)
	}
}

func TestConfigValidation(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("ecube")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, BufDepth: -1}); err == nil {
		t.Error("negative BufDepth accepted")
	}
	nh, _ := routing.Get("nhop")
	odd := topology.NewTorus(5, 2)
	wlOdd := traffic.NewBernoulli(odd, traffic.NewUniform(odd), 0.01, 1)
	if _, err := New(Config{Grid: odd, Algorithm: nh, Workload: wlOdd}); err == nil {
		t.Error("nhop on an odd torus accepted")
	}
}

func TestReseedKeepsRunning(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nbc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 1)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1})
	if err := n.Run(500); err != nil {
		t.Fatal(err)
	}
	n.Reseed(777)
	if err := n.Run(500); err != nil {
		t.Fatal(err)
	}
	if n.Total().Delivered == 0 {
		t.Error("nothing delivered across a reseed")
	}
}

// TestLoadedLatencyExceedsUnloaded: queueing delay must appear at load.
func TestLoadedLatencyExceedsUnloaded(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("ecube")
	meanLat := func(rate float64) float64 {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, 17)
		var sum, count float64
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 17,
			OnDeliver: func(m *message.Message) { sum += float64(m.Latency()); count++ }})
		if err := n.Run(5000); err != nil {
			t.Fatal(err)
		}
		if count == 0 {
			t.Fatal("no deliveries")
		}
		return sum / count
	}
	low := meanLat(0.001)
	high := meanLat(0.03)
	if high <= low {
		t.Errorf("latency at load (%.1f) not above unloaded (%.1f)", high, low)
	}
	// Unloaded mean must be close to mean distance + 15.
	wantLow := topology.NewTorus(8, 2).MeanUniformDistance() + 15
	if math.Abs(low-wantLow) > 2 {
		t.Errorf("unloaded mean latency %.2f, want about %.2f", low, wantLow)
	}
}

func TestOccupiedVCsByClassLength(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("phop")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1})
	if got := len(n.OccupiedVCsByClass()); got != 17 {
		t.Errorf("occupancy vector length %d, want 17", got)
	}
	if n.NumVCs() != 17 {
		t.Errorf("NumVCs = %d", n.NumVCs())
	}
}
