package network

import (
	"errors"
	"strings"
	"testing"

	"wormsim/internal/forensics"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// TestForensicsSteadyStateZeroAlloc: the zero-alloc steady-state guarantee
// holds with an every-cycle forensics analyzer attached — wait-for capture,
// blame resolution and latency anatomy all run out of preallocated scratch.
func TestForensicsSteadyStateZeroAlloc(t *testing.T) {
	for _, algName := range []string{"ecube", "nbc"} {
		g := topology.NewTorus(8, 2)
		alg, err := routing.Get(algName)
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 7)
		fore := forensics.New(forensics.Options{SampleEvery: 1}, g.ChannelSlots())
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 7,
			Forensics: fore,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		if fore.Summary().BlockedObserved == 0 {
			t.Fatalf("%s: warmup saw no blocking; the test exercises nothing", algName)
		}
		avg := testing.AllocsPerRun(2000, func() {
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: %.3f allocs per steady-state cycle with forensics, want 0", algName, avg)
		}
	}
}

// TestWatchdogBlameLeadsDiagnostics: with forensics attached, a genuine
// channel-dependency deadlock must surface the blame root and the wait-for
// cycle witness as the first lines of the DeadlockError — causality before
// the raw stuck-worm dump.
func TestWatchdogBlameLeadsDiagnostics(t *testing.T) {
	g := topology.NewTorus(8, 1)
	var cycles []int64
	var arrs []traffic.Arrival
	for src := 0; src < 8; src++ {
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: (src + 2) % 8})
	}
	wl := traffic.NewTrace(g, "cycle", cycles, arrs)
	fore := forensics.New(forensics.Options{SampleEvery: 1}, g.ChannelSlots())
	n, err := New(Config{
		Grid: g, Algorithm: cyclicAlg{}, Workload: wl, MsgLen: 16,
		BufDepth: 1, Seed: 1, WatchdogCycles: 200,
		Forensics: fore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	err = n.Drain(5000)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected a DeadlockError, got %v", err)
	}
	if dl.Blame == "" {
		t.Fatal("forensics attached but DeadlockError.Blame empty")
	}
	if !strings.HasPrefix(dl.Detail, dl.Blame) {
		t.Error("blame report is not the first diagnostic line of Detail")
	}
	if !strings.Contains(dl.Blame, "wait-for cycle") {
		t.Errorf("a true channel-dependency deadlock must yield a cycle witness:\n%s", dl.Blame)
	}
	if s := fore.Summary(); s.WaitCycles == 0 || len(s.LastWaitCycle) == 0 {
		t.Errorf("summary carries no wait-for cycle: %+v", s)
	}
}
