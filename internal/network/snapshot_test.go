package network

import (
	"strings"
	"testing"

	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func TestSnapshot(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("nbc")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 3)
	n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Snapshot(); !strings.Contains(got, "0 worms in flight") {
		t.Errorf("empty snapshot = %q", got)
	}
	if err := n.Run(50); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if !strings.Contains(snap, "worms in flight") || !strings.Contains(snap, "holds") {
		t.Errorf("loaded snapshot missing structure:\n%s", snap)
	}
	if n.InFlight() > 0 && !strings.Contains(snap, "msg ") {
		t.Errorf("snapshot lists no worms despite %d in flight:\n%s", n.InFlight(), snap)
	}
}
