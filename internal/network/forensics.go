package network

import (
	"wormsim/internal/message"
)

// foreBlocked feeds the forensics analyzer after a failed route() for the
// header in vc slot id: it maintains the message's allocation-stall counter
// and, on sampled cycles, captures one wait-for edge — the first admissible
// candidate channel in routing order (necessarily busy: route fails only
// when every admissible candidate's target virtual channel is occupied) and
// the head slot of the worm holding it. route() has just left the candidate
// list in n.cands.
func (n *Network) foreBlocked(id int32, m *message.Message) {
	if n.fore == nil {
		return
	}
	if n.vcCh[id] != -1 {
		m.HeadStalls++
	}
	if !n.foreSampling {
		return
	}
	node := int(n.vcNode[id])
	var width int32
	first := int32(-1)
	var firstVC int16
	for _, c := range n.cands {
		ch := int32((node*n.nDims+c.Dim)*2 + int(c.Dir))
		if n.tbl.down[ch] < 0 {
			continue
		}
		width++
		if first < 0 {
			first, firstVC = ch, int16(c.VC)
		}
	}
	if first < 0 {
		n.fore.BlockedUnattributable()
		return
	}
	t := first*int32(n.numVCs) + int32(firstVC)
	holder := n.vcMsg[t]
	holderHead := int32(-1)
	holderID := int64(-1)
	if holder != nil && holder != m {
		holderHead = n.headSlotOf(t)
		holderID = holder.ID
	}
	n.fore.Blocked(id, m.ID, m.Class, first, firstVC, width, holderHead, holderID)
	if n.tel != nil {
		n.tel.Block(n.now, m.ID, node, int(first), int(firstVC), holderID)
	}
}

// headSlotOf walks a worm's channel chain downstream from one of its owned
// vc slots to the slot holding (or about to receive) its header: allocation
// happens at routing time, so following vcOut through slots owned by the
// same message terminates at an unrouted slot (the head buffer) or at an
// ejecting one. It returns -1 when the worm is draining at its destination
// — that worm is making progress, so a wait on it roots the congestion tree
// at the waited-for channel. The walk is bounded by the worm's path length.
func (n *Network) headSlotOf(t int32) int32 {
	m := n.vcMsg[t]
	for {
		out := n.vcOut[t]
		if out.ch == outNone {
			return t
		}
		if out.ch == outEject {
			return -1
		}
		next := out.ch*int32(n.numVCs) + int32(out.vc)
		if n.vcMsg[next] != m {
			return t // defensive: never happens while the chain is intact
		}
		t = next
	}
}
