package network

import "wormsim/internal/topology"

// chanTable holds per-physical-channel lookup tables, precomputed once per
// New. Every entry is a pure function of the grid (topology.ChannelInfo,
// Neighbor, ChannelIndex, Coord and Parity composed over the dense channel
// index space), so replacing the per-call Grid methods on the cycle path
// with these flat reads cannot change routing decisions, RNG draw order or
// results — it only removes div/mod chains and a per-dimension parity loop
// from every flit transfer.
type chanTable struct {
	// up and down are the channel's endpoint nodes; down is -1 for mesh
	// boundary slots (the channel does not exist, see Grid.HasChannel).
	up   []int32
	down []int32
	// dim and dir decode the channel's direction of travel.
	dim []int8
	dir []int8
	// rev is the dense index of the opposite channel of the same physical
	// link (down -> up), or -1 on boundary slots; it drives the half-duplex
	// reverse-conflict arbitration.
	rev []int32
	// coord is the upstream node's coordinate in the channel's dimension and
	// parity its coordinate-sum parity — the two inputs of Message.Advance.
	coord  []int16
	parity []int8
}

// buildChanTable precomputes the tables for g.
func buildChanTable(g *topology.Grid) chanTable {
	slots := g.ChannelSlots()
	t := chanTable{
		up:     make([]int32, slots),
		down:   make([]int32, slots),
		dim:    make([]int8, slots),
		dir:    make([]int8, slots),
		rev:    make([]int32, slots),
		coord:  make([]int16, slots),
		parity: make([]int8, slots),
	}
	for ch := 0; ch < slots; ch++ {
		up, dim, dir := g.ChannelInfo(ch)
		down := g.Neighbor(up, dim, dir)
		t.up[ch] = int32(up)
		t.down[ch] = int32(down)
		t.dim[ch] = int8(dim)
		t.dir[ch] = int8(dir)
		if down >= 0 {
			t.rev[ch] = int32(g.ChannelIndex(down, dim, dir.Opposite()))
		} else {
			t.rev[ch] = -1
		}
		t.coord[ch] = int16(g.Coord(up, dim))
		t.parity[ch] = int8(g.Parity(up))
	}
	return t
}
