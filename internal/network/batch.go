package network

import (
	"fmt"

	"wormsim/internal/congestion"
	"wormsim/internal/forensics"
	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// BatchConfig describes a batch of independent replicas of one simulated
// network: identical topology, algorithm and engine knobs, one workload and
// seed per replica. See NewBatch.
type BatchConfig struct {
	// Grid is the topology, shared by every replica (required).
	Grid *topology.Grid
	// Algorithm is the wormhole routing algorithm (required).
	Algorithm routing.Algorithm
	// Policy selects among free candidate output virtual channels; nil means
	// routing.RandomPolicy.
	Policy routing.SelectionPolicy
	// Workloads[r] generates replica r's arrivals (required, one per
	// replica). The workloads must be replicas of one process — same grid,
	// pattern and rate, differing only in seed (traffic.Bernoulli.Replicate);
	// Bernoulli workloads then draw their arrival trials through one
	// interleaved sweep per cycle (traffic.ArrivalsBatch).
	Workloads []traffic.Workload
	// Seeds[r] drives replica r's routing stream and tie-breaking, exactly
	// as Config.Seed does for a scalar network.
	Seeds []uint64

	// The engine knobs below have the same meaning and defaults as the
	// corresponding Config fields.
	MsgLen         int
	BufDepth       int
	CCLimit        int
	InjectionPorts int
	RouteDelay     int
	HalfDuplex     bool
	WatchdogCycles int64

	// Observer designates the replica (default 0) whose Telemetry and
	// Forensics hooks fire; the other replicas run bare. One observed
	// replica keeps the batch's steady state allocation-free while
	// preserving the scalar engine's observability contract — an attached
	// collector or analyzer never alters results, so the observer stays
	// bit-identical to its scalar run either way.
	Observer int
	// Telemetry, sized for this network, receives the observer replica's
	// per-cycle metrics and sampled lifecycle events (see Config.Telemetry).
	Telemetry *telemetry.Collector
	// Phases attributes wall time to the batch step's pipeline stages,
	// aggregated across replicas (see Config.Phases).
	Phases *telemetry.PhaseProfiler
	// Forensics receives the observer replica's sampled wait-for captures
	// and latency anatomy (see Config.Forensics).
	Forensics *forensics.Analyzer
	// OnDeliver and OnHeaderHop fire for every replica, with the replica
	// index prepended to the scalar signature. The *message.Message is
	// engine-owned and valid only for the duration of the callback.
	OnDeliver   func(replica int, m *message.Message)
	OnHeaderHop func(replica int, m *message.Message, node int, dim int, dir topology.Dir)
}

// ReplicaFault reports that one replica's deadlock watchdog fired during a
// Step. The replica keeps its terminal state until Deactivate is called; the
// other replicas are unaffected.
type ReplicaFault struct {
	Replica int
	Err     *DeadlockError
}

// vcHot packs the per-slot state the cycle path reads and writes together —
// output allocation, router-pipeline readiness, the holding node and the
// three flit counters — into one 32-byte record. The scalar engine's
// vcRouted flag is folded away: a header is routed iff out.ch != outNone
// (route sets both in one place), which the scalar layout keeps as a
// separate bool only because its arrays predate the packed record. The zero
// value is NOT an unrouted header — outRoute's zero ch is a real channel —
// so every slot activation must write out.ch = outNone explicitly.
type vcHot struct {
	out   outRoute
	ready int64
	flits int32
	recvd int32
	sent  int32
	node  int32
}

// batchReplica is one replica's private state: everything a scalar Network
// keeps, laid out by ACTIVE POSITION rather than by slot id. The slot-id
// space is mostly idle (a light-load replica occupies a few dozen of
// hundreds of channel VCs), so id-indexed arrays scatter the live records
// across a region far larger than the live set; here position i of the
// active list owns record hotA[i] and message msgA[i], records move with
// the list's swap-remove discipline, and aIdx maps a slot id back to its
// position (-1 when idle). The whole per-cycle working set is then a dense
// prefix proportional to the replica's actual load — the property that
// keeps a 16-wide batch cache-resident where 16 id-indexed copies would
// evict each other.
type batchReplica struct {
	idx     int
	wl      traffic.Workload
	bern    *traffic.Bernoulli
	rt      *rng.Stream
	limiter *congestion.Limiter
	pool    *message.Pool
	tieFn   func(int) bool
	// tel and fore are non-nil only on the observer replica.
	tel  *telemetry.Collector
	fore *forensics.Analyzer

	now        int64
	lastMotion int64
	nextMsgID  int64
	inFlight   int

	// active[i] is the slot id at position i; hotA[i] and msgA[i] are that
	// slot's record and message. aIdx inverts active; occ mirrors it as a
	// bitmap over slot ids (bit set iff the slot holds a message), giving
	// the route candidate scan a footprint of a few words instead of a
	// pointer array.
	active []int32
	hotA   []vcHot
	msgA   []*message.Message
	aIdx   []int32
	occ    []uint64

	// headerIDs lists the slot ids holding an arrived, unrouted header —
	// the only slots the allocation phase can act on. The scalar engine
	// rediscovers them by scanning the whole active list from a rotating
	// start; the batch engine visits exactly these ids in the same rotated
	// position order, a shortcut kept batch-only so the scalar hot path
	// stays the reference transcription.
	headerIDs []int32

	injFree  []int32
	nextSlot int32

	rr             []uint32
	owners         []int32
	injecting      []int32
	flitsByChannel []int64

	arrivals []traffic.Arrival
	window   Counters
	base     Counters
}

// tieBreak resolves half-ring direction ties at injection, bound once as a
// method value so the inject path never allocates a closure.
func (rep *batchReplica) tieBreak(int) bool { return rep.rt.Bernoulli(0.5) }

// setActive records slot id live at the next position with record h and
// message m.
func (rep *batchReplica) setActive(id int32, h vcHot, m *message.Message) {
	rep.aIdx[id] = int32(len(rep.active))
	rep.active = append(rep.active, id)
	rep.hotA = append(rep.hotA, h)
	rep.msgA = append(rep.msgA, m)
	rep.occ[id>>6] |= 1 << (uint(id) & 63)
}

// clearActive swap-removes slot id: the last position's slot moves into its
// place, record and message included.
func (rep *batchReplica) clearActive(id int32) {
	last := len(rep.active) - 1
	i := rep.aIdx[id]
	moved := rep.active[last]
	rep.active[i] = moved
	rep.hotA[i] = rep.hotA[last]
	rep.msgA[i] = rep.msgA[last]
	rep.aIdx[moved] = i
	rep.active = rep.active[:last]
	rep.hotA = rep.hotA[:last]
	rep.msgA = rep.msgA[:last]
	rep.aIdx[id] = -1
	rep.occ[id>>6] &^= 1 << (uint(id) & 63)
}

// dropHeaderID removes id from the arrived-unrouted-header list (order is
// irrelevant — the allocation phase sorts by position).
func (rep *batchReplica) dropHeaderID(id int32) {
	for i, h := range rep.headerIDs {
		if h == id {
			last := len(rep.headerIDs) - 1
			rep.headerIDs[i] = rep.headerIDs[last]
			rep.headerIDs = rep.headerIDs[:last]
			return
		}
	}
}

// BatchNetwork runs R independent replicas of one network config in
// lockstep: one Step advances every live replica by one cycle through a
// fused inject/route/transfer sweep. The replicas share the precomputed
// topology and channel tables, while each replica's mutable state is dense
// in its active-slot count (see batchReplica), so the whole batch's working
// set is proportional to the simulated load, not to R times the channel
// count — the batch stays cache-resident where R scalar engines would
// thrash.
//
// Every replica is bit-identical to a scalar Network built from the same
// config and seed: the per-replica control flow reproduces the scalar
// cycle's decisions exactly (same iteration orders, same RNG draw order,
// same arbitration), only the memory layout, the arrival-draw batching and
// the allocation phase's header shortlist differ — each a pure reordering
// or exact shortcut of the scalar scan. A replica that finishes (converged,
// or faulted) leaves the live set via Deactivate's dense swap-remove, so
// surviving replicas don't pay for it.
type BatchNetwork struct {
	cfg    BatchConfig
	g      *topology.Grid
	alg    routing.Algorithm
	policy routing.SelectionPolicy
	numVCs int
	nDims  int
	msgLen int32

	bufDepth   int32
	ports      int
	routeDelay int
	halfDuplex bool
	watchdog   int64

	prof *telemetry.PhaseTimer
	fore *forensics.Analyzer
	// foreSampling caches StartCycle's verdict for the observer's current
	// cycle, exactly as the scalar engine does.
	foreSampling bool

	onDeliver   func(int, *message.Message)
	onHeaderHop func(int, *message.Message, int, int, topology.Dir)

	tbl chanTable

	// chanVCs slots [0, chanVCs) are the channel virtual channels, in
	// (channel, class) order: slot id = ch*numVCs + class, so a channel
	// slot's channel and class are id/numVCs and id%numVCs. Ids at or above
	// chanVCs are injection slots (the scalar engine's vcCh[id] == -1
	// test). numSlots is the current id-space size, shared across replicas.
	chanVCs  int32
	numSlots int

	reps []batchReplica
	// live lists the replica indices still running; liveIdx[r] is r's
	// position in it, -1 once deactivated (dense swap-remove, mirroring the
	// active-list discipline inside each replica).
	live    []int32
	liveIdx []int32

	// Shared scratch, reused across replicas and cycles: each phase runs
	// replica-by-replica, so one set of buffers serves all of them.
	allBern    bool
	batchWs    []*traffic.Bernoulli
	batchOut   [][]traffic.Arrival
	arrStreams []*rng.Stream
	arrScratch []uint64
	cands      []routing.Candidate
	freeCands  []routing.Candidate
	freeScores []int
	hdrOrd     []int64
	moves      []int32
	moveChs    []int32
	chSlot     []int32
	reqs       [][]int32
	touched    []int32
	reqGen     uint32
	chReqGen   []uint32
	revGen     uint32
	chMoverGen []uint32
	chDropGen  []uint32
	wormRefs   []wormRef
	wormSort   wormRefSort
}

// NewBatch validates cfg and builds the batch network with every replica
// live.
func NewBatch(cfg BatchConfig) (*BatchNetwork, error) {
	if cfg.Grid == nil || cfg.Algorithm == nil {
		return nil, fmt.Errorf("network: Grid and Algorithm are required")
	}
	if len(cfg.Workloads) == 0 || len(cfg.Workloads) != len(cfg.Seeds) {
		return nil, fmt.Errorf("network: need equal, nonzero Workloads (%d) and Seeds (%d)", len(cfg.Workloads), len(cfg.Seeds))
	}
	for r, wl := range cfg.Workloads {
		if wl == nil {
			return nil, fmt.Errorf("network: Workloads[%d] is nil", r)
		}
	}
	if err := cfg.Algorithm.Compatible(cfg.Grid); err != nil {
		return nil, err
	}
	if cfg.MsgLen <= 0 {
		cfg.MsgLen = 16
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 2
	}
	if cfg.BufDepth < 1 {
		return nil, fmt.Errorf("network: BufDepth %d must be >= 1", cfg.BufDepth)
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 20000
	}
	if cfg.Policy == nil {
		cfg.Policy = routing.RandomPolicy{}
	}
	if cfg.Observer < 0 || cfg.Observer >= len(cfg.Seeds) {
		return nil, fmt.Errorf("network: Observer %d out of range [0,%d)", cfg.Observer, len(cfg.Seeds))
	}
	g := cfg.Grid
	R := len(cfg.Seeds)
	b := &BatchNetwork{
		cfg:         cfg,
		g:           g,
		alg:         cfg.Algorithm,
		policy:      cfg.Policy,
		numVCs:      cfg.Algorithm.NumVCs(g),
		nDims:       g.N(),
		msgLen:      int32(cfg.MsgLen),
		bufDepth:    int32(cfg.BufDepth),
		ports:       cfg.InjectionPorts,
		routeDelay:  cfg.RouteDelay,
		halfDuplex:  cfg.HalfDuplex,
		watchdog:    cfg.WatchdogCycles,
		prof:        cfg.Phases.Timer(),
		fore:        cfg.Forensics,
		onDeliver:   cfg.OnDeliver,
		onHeaderHop: cfg.OnHeaderHop,
	}
	slots := g.ChannelSlots()
	if cfg.Telemetry != nil {
		if chs, classes := cfg.Telemetry.Dims(); chs != slots || classes != b.numVCs {
			return nil, fmt.Errorf("network: telemetry collector sized for %d channels / %d classes, need %d / %d",
				chs, classes, slots, b.numVCs)
		}
	}
	if b.fore != nil {
		if chs := b.fore.Channels(); chs != slots {
			return nil, fmt.Errorf("network: forensics analyzer sized for %d channels, need %d", chs, slots)
		}
	}
	b.tbl = buildChanTable(g)
	b.chanVCs = int32(slots * b.numVCs)
	b.numSlots = int(b.chanVCs)
	b.reps = make([]batchReplica, R)
	b.live = make([]int32, R)
	b.liveIdx = make([]int32, R)
	for r := 0; r < R; r++ {
		rep := &b.reps[r]
		rep.idx = r
		rep.wl = cfg.Workloads[r]
		rep.bern, _ = cfg.Workloads[r].(*traffic.Bernoulli)
		rep.rt = rng.NewStream(cfg.Seeds[r], 0x90f7)
		rep.limiter = congestion.NewLimiter(g.Nodes(), cfg.CCLimit)
		rep.pool = message.NewPool()
		rep.tieFn = rep.tieBreak
		rep.nextSlot = b.chanVCs
		rep.aIdx = make([]int32, b.numSlots)
		for i := range rep.aIdx {
			rep.aIdx[i] = -1
		}
		rep.occ = make([]uint64, (b.numSlots+63)/64)
		rep.rr = make([]uint32, slots)
		rep.owners = make([]int32, slots)
		rep.injecting = make([]int32, g.Nodes())
		rep.flitsByChannel = make([]int64, slots)
		rep.window.FlitMovesByClass = make([]int64, b.numVCs)
		rep.base.FlitMovesByClass = make([]int64, b.numVCs)
		b.live[r] = int32(r)
		b.liveIdx[r] = int32(r)
	}
	b.reps[cfg.Observer].tel = cfg.Telemetry
	b.reps[cfg.Observer].fore = cfg.Forensics
	b.allBern = true
	for _, rep := range b.reps {
		if rep.bern == nil {
			b.allBern = false
			break
		}
	}
	b.batchWs = make([]*traffic.Bernoulli, 0, R)
	b.batchOut = make([][]traffic.Arrival, 0, R)
	b.arrStreams = make([]*rng.Stream, R)
	b.reqs = make([][]int32, slots)
	b.chSlot = make([]int32, slots)
	b.chReqGen = make([]uint32, slots)
	b.chMoverGen = make([]uint32, slots)
	b.chDropGen = make([]uint32, slots)
	return b, nil
}

// Grid returns the shared topology.
func (b *BatchNetwork) Grid() *topology.Grid { return b.g }

// NumVCs returns the virtual channels per physical channel in use.
func (b *BatchNetwork) NumVCs() int { return b.numVCs }

// Replicas returns R, the batch width at construction.
func (b *BatchNetwork) Replicas() int { return len(b.reps) }

// Live returns how many replicas are still stepping.
func (b *BatchNetwork) Live() int { return len(b.live) }

// IsLive reports whether replica r has not been deactivated.
func (b *BatchNetwork) IsLive(r int) bool { return b.liveIdx[r] >= 0 }

// Deactivate removes replica r from the live set: it stops stepping (its
// state freezes at its current cycle) and the survivors stop paying for it.
// Deactivating an already-dead replica is a no-op.
func (b *BatchNetwork) Deactivate(r int) {
	i := b.liveIdx[r]
	if i < 0 {
		return
	}
	last := len(b.live) - 1
	moved := b.live[last]
	b.live[i] = moved
	b.liveIdx[moved] = i
	b.live = b.live[:last]
	b.liveIdx[r] = -1
}

// Now returns replica r's current cycle.
func (b *BatchNetwork) Now(r int) int64 { return b.reps[r].now }

// InFlight returns replica r's admitted-but-undelivered message count.
func (b *BatchNetwork) InFlight(r int) int { return b.reps[r].inFlight }

// Window returns replica r's counters since its last ResetWindow.
func (b *BatchNetwork) Window(r int) Counters {
	rep := &b.reps[r]
	w := rep.window
	w.FlitMovesByClass = append([]int64(nil), rep.window.FlitMovesByClass...)
	return w
}

// Total returns replica r's lifetime counters (closed windows plus live).
func (b *BatchNetwork) Total(r int) Counters {
	rep := &b.reps[r]
	t := rep.base
	t.Cycles += rep.window.Cycles
	t.FlitMoves += rep.window.FlitMoves
	t.Generated += rep.window.Generated
	t.Admitted += rep.window.Admitted
	t.Dropped += rep.window.Dropped
	t.Delivered += rep.window.Delivered
	t.FlitMovesByClass = append([]int64(nil), rep.base.FlitMovesByClass...)
	for i, v := range rep.window.FlitMovesByClass {
		t.FlitMovesByClass[i] += v
	}
	return t
}

// ResetWindow folds replica r's window counters into its lifetime base and
// zeroes them.
func (b *BatchNetwork) ResetWindow(r int) {
	rep := &b.reps[r]
	rep.base.Cycles += rep.window.Cycles
	rep.base.FlitMoves += rep.window.FlitMoves
	rep.base.Generated += rep.window.Generated
	rep.base.Admitted += rep.window.Admitted
	rep.base.Dropped += rep.window.Dropped
	rep.base.Delivered += rep.window.Delivered
	for i, v := range rep.window.FlitMovesByClass {
		rep.base.FlitMovesByClass[i] += v
		rep.window.FlitMovesByClass[i] = 0
	}
	byClass := rep.window.FlitMovesByClass
	rep.window = Counters{FlitMovesByClass: byClass}
}

// Reseed hands replica r fresh random streams, exactly as Network.Reseed
// does at a sampling-period boundary.
func (b *BatchNetwork) Reseed(r int, seed uint64) {
	rep := &b.reps[r]
	rep.wl.Reseed(seed)
	rep.rt = rng.NewStream(seed, 0x90f7)
}

// ChannelFlitCounts returns replica r's lifetime flit transfers per physical
// channel slot.
func (b *BatchNetwork) ChannelFlitCounts(r int) []int64 {
	return append([]int64(nil), b.reps[r].flitsByChannel...)
}

// EffectiveChannels returns the channel count to normalize utilization by
// (shared across replicas).
func (b *BatchNetwork) EffectiveChannels() int {
	if b.halfDuplex {
		return b.g.NumChannels() / 2
	}
	return b.g.NumChannels()
}
