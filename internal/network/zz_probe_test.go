package network

import (
	"fmt"
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

type oneShot struct{ sent bool }

func (o *oneShot) Arrivals(cycle int64, buf []traffic.Arrival) []traffic.Arrival {
	if o.sent {
		return buf[:0]
	}
	o.sent = true
	return append(buf[:0], traffic.Arrival{Src: 0, Dst: 3})
}
func (o *oneShot) Reseed(uint64)                {}
func (o *oneShot) HopClassWeights() []float64   { return []float64{1} }

func TestHeadNodeDuringDrain(t *testing.T) {
	g, err := topology.NewGrid([]int{4}, false)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := routing.New("nbc", g)
	if err != nil {
		// try another name
		t.Skip("alg nbc unavailable:", err)
	}
	n, err := New(Config{Grid: g, Algorithm: alg, Policy: routing.DefaultPolicy(), Workload: &oneShot{}, MsgLen: 8, BufDepth: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = message.Message{}
	for i := 0; i < 40; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		ws := n.WormStates()
		if len(ws) == 0 {
			continue
		}
		w := ws[0]
		fmt.Printf("cycle %d: head=%d routed=%v holds=%d flits=%d\n", i, w.HeadNode, w.Routed, w.HeldVCs(), w.BufferedFlits())
	}
}
