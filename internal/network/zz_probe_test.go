package network

import (
	"testing"

	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// oneShot injects a single 0→3 message on the first cycle and then goes
// quiet, so the probe below watches exactly one worm from injection to
// drain.
type oneShot struct{ sent bool }

func (o *oneShot) Name() string { return "oneshot" }

func (o *oneShot) Arrivals(cycle int64, buf []traffic.Arrival) []traffic.Arrival {
	if o.sent {
		return buf[:0]
	}
	o.sent = true
	return append(buf[:0], traffic.Arrival{Src: 0, Dst: 3})
}

func (o *oneShot) Reseed(uint64)              {}
func (o *oneShot) MeanDistance() float64      { return 3 }
func (o *oneShot) HopClassWeights() []float64 { return []float64{0, 0, 0, 1} }

// TestWormStateProbeDuringTransit drives one worm down a 4-node line and
// checks the WormStates snapshot stays coherent every cycle: the head sits
// on a real node, hop progress is monotone and bounded, and a routed worm
// holds at least one virtual channel. The worm must fully drain well within
// the cycle budget.
func TestWormStateProbeDuringTransit(t *testing.T) {
	g := topology.NewMesh(4, 1)
	alg, err := routing.Get("ecube")
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Grid:      g,
		Algorithm: alg,
		Policy:    routing.RandomPolicy{},
		Workload:  &oneShot{},
		MsgLen:    8,
		BufDepth:  1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen, drained := false, false
	lastHops := 0
	for i := 0; i < 80; i++ {
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		ws := n.WormStates()
		if len(ws) == 0 {
			if seen {
				drained = true
				break
			}
			continue
		}
		if len(ws) != 1 {
			t.Fatalf("cycle %d: %d worms in flight, want 1", i, len(ws))
		}
		seen = true
		w := ws[0]
		t.Logf("cycle %d: head=%d hops=%d/%d routed=%v holds=%d flits=%d",
			i, w.HeadNode, w.HopsTaken, w.HopsTotal, w.Routed, w.HeldVCs(), w.BufferedFlits())
		if w.Src != 0 || w.Dst != 3 || w.Len != 8 {
			t.Fatalf("cycle %d: worm is %d→%d len %d, want 0→3 len 8", i, w.Src, w.Dst, w.Len)
		}
		if w.HeadNode < 0 || w.HeadNode >= g.Nodes() {
			t.Fatalf("cycle %d: head node %d outside grid", i, w.HeadNode)
		}
		if w.HopsTotal != 3 {
			t.Fatalf("cycle %d: HopsTotal = %d, want 3", i, w.HopsTotal)
		}
		if w.HopsTaken < lastHops || w.HopsTaken > w.HopsTotal {
			t.Fatalf("cycle %d: HopsTaken = %d (previously %d), want monotone in [0,%d]",
				i, w.HopsTaken, lastHops, w.HopsTotal)
		}
		lastHops = w.HopsTaken
		if w.Routed && w.HopsTaken > 0 && w.HeldVCs() == 0 {
			t.Fatalf("cycle %d: routed worm past injection holds no virtual channel", i)
		}
	}
	if !seen {
		t.Fatal("worm never appeared in WormStates")
	}
	if !drained {
		t.Fatal("worm did not drain within 80 cycles")
	}
}
