package network

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// TestHalfDuplexSharesOneLink: two opposing single-hop messages over the
// same link serialize under half-duplex but stream concurrently with
// unidirectional channel pairs.
func TestHalfDuplexSharesOneLink(t *testing.T) {
	g := topology.NewTorus(16, 2)
	run := func(half bool) int64 {
		alg, _ := routing.Get("ecube")
		wl := traffic.NewTrace(g, "oppose", []int64{0, 0}, []traffic.Arrival{
			{Src: g.ID([]int{0, 0}), Dst: g.ID([]int{1, 0})},
			{Src: g.ID([]int{1, 0}), Dst: g.ID([]int{0, 0})},
		})
		var last int64
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, HalfDuplex: half, Seed: 1,
			OnDeliver: func(m *message.Message) {
				if m.DeliverTime > last {
					last = m.DeliverTime
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(5000); err != nil {
			t.Fatal(err)
		}
		return last
	}
	full := run(false)
	half := run(true)
	if full != 16 { // both single-hop worms finish together: 1 + 16 - 1
		t.Errorf("full-duplex makespan %d, want 16", full)
	}
	// Half-duplex: 32 flits share one link at 1 flit/cycle; perfect
	// alternation finishes near cycle 32.
	if half < 30 {
		t.Errorf("half-duplex makespan %d, want about 32", half)
	}
}

// TestHalfDuplexFairAlternation: neither direction starves; both opposing
// messages complete and their latencies are within 2x of each other.
func TestHalfDuplexFairAlternation(t *testing.T) {
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get("ecube")
	wl := traffic.NewTrace(g, "oppose", []int64{0, 0}, []traffic.Arrival{
		{Src: g.ID([]int{4, 4}), Dst: g.ID([]int{7, 4})},
		{Src: g.ID([]int{7, 4}), Dst: g.ID([]int{4, 4})},
	})
	var lats []int64
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, HalfDuplex: true, Seed: 1,
		OnDeliver: func(m *message.Message) { lats = append(lats, m.Latency()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(5000); err != nil {
		t.Fatal(err)
	}
	if len(lats) != 2 {
		t.Fatalf("delivered %d", len(lats))
	}
	lo, hi := lats[0], lats[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 2*lo {
		t.Errorf("half-duplex starved one direction: latencies %v", lats)
	}
}

// TestHalfDuplexFootnoteFive reproduces the direction of the paper's
// footnote 5: normalized by its halved channel count, a half-duplex
// e-cube mesh achieves HIGHER normalized throughput than the
// two-unidirectional-channel model of the paper ("the use of two
// unidirectional channels ... results in lower throughputs").
func TestHalfDuplexFootnoteFive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := topology.NewMesh(8, 2)
	run := func(half bool) float64 {
		alg, _ := routing.Get("ecube")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 7)
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16,
			CCLimit: 1, HalfDuplex: half, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(6000); err != nil {
			t.Fatal(err)
		}
		return n.Total().Utilization(n.EffectiveChannels())
	}
	uni := run(false)
	halfDuplex := run(true)
	if halfDuplex <= uni {
		t.Errorf("normalized half-duplex utilization %.3f should exceed unidirectional %.3f (footnote 5)",
			halfDuplex, uni)
	}
}

// TestEffectiveChannels covers the normalization helper.
func TestEffectiveChannels(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("ecube")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
	full, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 1})
	if full.EffectiveChannels() != 256 {
		t.Errorf("full duplex channels %d, want 256", full.EffectiveChannels())
	}
	wl2 := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
	half, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl2, MsgLen: 16, HalfDuplex: true, Seed: 1})
	if half.EffectiveChannels() != 128 {
		t.Errorf("half duplex channels %d, want 128", half.EffectiveChannels())
	}
}
