package network

import (
	"fmt"
	"strings"
)

// Snapshot renders a human-readable dump of the current network state: one
// line per in-flight worm with its position, held virtual channels and
// buffered flits. It is a thin rendering of WormStates — the same in-flight
// model behind the deadlock watchdog's report — so every consumer of
// "what is in the network right now" agrees, and the listing is
// deterministic (worms sorted by ID, buffers upstream to downstream) even
// when one message occupies many virtual channels.
func (n *Network) Snapshot() string {
	states := n.WormStates()
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d worms in flight, %d VC buffers live\n", n.now, n.inFlight, len(n.active))
	for _, w := range states {
		fmt.Fprintf(&b, "  %v head at %s\n", w, nodeName(n.g, w.HeadNode))
	}
	return b.String()
}
