package network

import (
	"fmt"
	"sort"
	"strings"

	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
)

// wormRef ties one live vc id to its worm for rendering: sorting refs by
// (message ID, injection-slot-first, lifetime received flits descending,
// owning channel) groups each worm's buffers contiguously in the canonical
// upstream-to-downstream order without building a per-call map.
type wormRef struct {
	id    int64
	vc    int32
	ch    int32
	recvd int32
}

// wormRefSort is a persistent sort.Interface over the worm-ref scratch, so
// rendering in the watchdog path sorts without allocating a closure.
type wormRefSort struct{ refs []wormRef }

func (w *wormRefSort) Len() int      { return len(w.refs) }
func (w *wormRefSort) Swap(i, j int) { w.refs[i], w.refs[j] = w.refs[j], w.refs[i] }
func (w *wormRefSort) Less(i, j int) bool {
	a, b := w.refs[i], w.refs[j]
	if a.id != b.id {
		return a.id < b.id
	}
	// Injection slot first, then upstream to downstream: lifetime
	// received-flit counts are non-increasing along a worm's channel chain
	// (a buffer cannot receive more than its upstream forwarded), with the
	// channel index as a deterministic tie-break.
	if (a.ch == -1) != (b.ch == -1) {
		return a.ch == -1
	}
	if a.recvd != b.recvd {
		return a.recvd > b.recvd
	}
	return a.ch < b.ch
}

// WormStates returns the canonical in-flight state: one telemetry.WormState
// per live worm, sorted by message ID, with each worm's held buffers ordered
// injection slot first and then upstream to downstream. Snapshot, the
// deadlock report and external tooling all render from this single model, so
// a worm whose *message.Message is shared across several virtual channels
// appears exactly once, deterministically.
func (n *Network) WormStates() []telemetry.WormState {
	refs := n.wormRefs[:0]
	for _, id := range n.active {
		m := n.vcMsg[id]
		if m == nil {
			continue
		}
		refs = append(refs, wormRef{id: m.ID, vc: id, ch: n.vcCh[id], recvd: n.vcRecvd[id]})
	}
	n.wormRefs = refs
	n.wormSort.refs = refs
	sort.Sort(&n.wormSort)
	states := make([]telemetry.WormState, 0, n.inFlight)
	for i := 0; i < len(refs); {
		j := i
		for j < len(refs) && refs[j].id == refs[i].id {
			j++
		}
		m := n.vcMsg[refs[i].vc]
		w := telemetry.WormState{
			ID: m.ID, Src: m.Src, Dst: m.Dst, Len: m.Len,
			HopsTaken: m.HopsTaken, HopsTotal: m.HopsTotal,
			Holding: make([]telemetry.VCHold, j-i),
		}
		for k := i; k < j; k++ {
			id := refs[k].vc
			w.Holding[k-i] = telemetry.VCHold{
				Ch: int(n.vcCh[id]), Class: int(n.vcClass[id]),
				Node: int(n.vcNode[id]), Flits: int(n.vcFlits[id]),
			}
			// The header sits in the buffer that has forwarded nothing yet:
			// the injection slot before the first hop, or the deepest buffer
			// that has received at least one flit.
			if n.vcSent[id] == 0 && (n.vcRecvd[id] > 0 || n.vcCh[id] == -1) {
				w.Routed = n.vcRouted[id]
				w.HeadNode = int(n.vcNode[id])
			}
		}
		states = append(states, w)
		i = j
	}
	return states
}

// Snapshot renders a human-readable dump of the current network state: one
// line per in-flight worm with its position, held virtual channels and
// buffered flits. It is a thin rendering of WormStates — the same in-flight
// model behind the deadlock watchdog's report — so every consumer of
// "what is in the network right now" agrees, and the listing is
// deterministic (worms sorted by ID, buffers upstream to downstream) even
// when one message occupies many virtual channels.
func (n *Network) Snapshot() string {
	states := n.WormStates()
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d worms in flight, %d VC buffers live\n", n.now, n.inFlight, len(n.active))
	for _, w := range states {
		fmt.Fprintf(&b, "  %v head at %s\n", w, nodeName(n.g, w.HeadNode))
	}
	return b.String()
}

// describeStuck renders up to limit stuck worms for deadlock diagnostics.
func (n *Network) describeStuck(limit int) string {
	states := n.WormStates()
	var b strings.Builder
	for i, w := range states {
		if i >= limit {
			fmt.Fprintf(&b, "  ... and %d more\n", len(states)-limit)
			break
		}
		fmt.Fprintf(&b, "  %v head at %s\n", w, nodeName(n.g, w.HeadNode))
	}
	return b.String()
}

// nodeName renders a node id with coordinates for diagnostics.
func nodeName(g *topology.Grid, node int) string {
	if node < 0 {
		return "edge"
	}
	coords := make([]int, g.N())
	return fmt.Sprintf("%d%v", node, g.Coords(node, coords))
}
