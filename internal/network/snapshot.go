package network

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot renders a human-readable dump of the current network state: one
// line per in-flight worm with its position, stretch and progress. It is a
// debugging aid (the deadlock watchdog uses a truncated form).
func (n *Network) Snapshot() string {
	type wormView struct {
		id      int64
		desc    string
		holding int
		flits   int
	}
	worms := map[int64]*wormView{}
	for _, s := range n.active {
		if s.msg == nil {
			continue
		}
		w, ok := worms[s.msg.ID]
		if !ok {
			w = &wormView{id: s.msg.ID, desc: s.msg.String()}
			worms[s.msg.ID] = w
		}
		if s.ch >= 0 {
			w.holding++
		}
		w.flits += s.flits
	}
	views := make([]*wormView, 0, len(worms))
	for _, w := range worms {
		views = append(views, w)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].id < views[j].id })
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: %d worms in flight, %d VC buffers live\n", n.now, n.inFlight, len(n.active))
	for _, w := range views {
		fmt.Fprintf(&b, "  %s: holds %d VCs, %d flits buffered in-network\n", w.desc, w.holding, w.flits)
	}
	return b.String()
}
