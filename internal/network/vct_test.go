package network

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// runUniform drives a uniform workload and returns achieved utilization.
func runUniform(t *testing.T, algName string, bufDepth int, rate float64, cycles int64) float64 {
	t.Helper()
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get(algName)
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, 21)
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16,
		BufDepth: bufDepth, CCLimit: 2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(cycles); err != nil {
		t.Fatal(err)
	}
	return n.Total().Utilization(g.NumChannels())
}

// TestVCTLiftsSaturationThroughput: cut-through buffers (depth = message
// length) raise saturation throughput over wormhole buffers for every
// algorithm, most for the VC-poor ones.
func TestVCTLiftsSaturationThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, algName := range []string{"ecube", "2pn", "nbc"} {
		wh := runUniform(t, algName, 4, 0.05, 6000)
		vct := runUniform(t, algName, 16, 0.05, 6000)
		if vct < wh {
			t.Errorf("%s: vct %.3f below wormhole %.3f at saturation", algName, vct, wh)
		}
	}
}

// TestVCTUnloadedLatencyUnchanged: with no contention, cut-through and
// wormhole deliver at the same pipeline latency (eq. 2): deep buffers only
// matter when blocking occurs.
func TestVCTUnloadedLatencyUnchanged(t *testing.T) {
	g := topology.NewTorus(16, 2)
	for _, bufDepth := range []int{4, 16, 64} {
		alg, _ := routing.Get("nbc")
		wl := traffic.NewTrace(g, "one", []int64{0},
			[]traffic.Arrival{{Src: 0, Dst: g.ID([]int{5, 4})}})
		var lat int64
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, BufDepth: bufDepth, Seed: 1,
			OnDeliver: func(m *message.Message) { lat = m.Latency() }})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Step(); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(10000); err != nil {
			t.Fatal(err)
		}
		if lat != 9+16-1 {
			t.Errorf("bufDepth %d: unloaded latency %d, want 24", bufDepth, lat)
		}
	}
}

// TestBufferDepthMonotone: throughput is non-decreasing in buffer depth at
// a fixed load (more slack never hurts in this engine).
func TestBufferDepthMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	prev := 0.0
	for i, depth := range []int{2, 4, 8, 16} {
		u := runUniform(t, "ecube", depth, 0.04, 5000)
		if i > 0 && u < prev*0.97 { // allow small stochastic slack
			t.Errorf("depth %d throughput %.3f dropped below previous %.3f", depth, u, prev)
		}
		prev = u
	}
}

// TestWatchdogDisabled: a negative watchdog setting never fires, even on a
// wedged network (the run just keeps stepping).
func TestWatchdogDisabled(t *testing.T) {
	g := topology.NewTorus(8, 1)
	var cycles []int64
	var arrs []traffic.Arrival
	for src := 0; src < 8; src++ {
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: (src + 2) % 8})
	}
	wl := traffic.NewTrace(g, "cycle", cycles, arrs)
	n, err := New(Config{
		Grid: g, Algorithm: cyclicAlg{}, Workload: wl, MsgLen: 16,
		BufDepth: 1, Seed: 1, WatchdogCycles: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(5000); err != nil {
		t.Fatalf("disabled watchdog still fired: %v", err)
	}
	if n.InFlight() == 0 {
		t.Fatal("expected the cyclic workload to wedge")
	}
}

// TestCountersWindowVsTotal: window counters partition the totals across
// resets.
func TestCountersWindowVsTotal(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, _ := routing.Get("phop")
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 31)
	n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, Seed: 31})
	var sumFlits, sumGen int64
	for i := 0; i < 4; i++ {
		if err := n.Run(500); err != nil {
			t.Fatal(err)
		}
		w := n.Window()
		sumFlits += w.FlitMoves
		sumGen += w.Generated
		n.ResetWindow()
	}
	tot := n.Total()
	if sumFlits != tot.FlitMoves || sumGen != tot.Generated {
		t.Errorf("windows sum to %d/%d, totals %d/%d", sumFlits, sumGen, tot.FlitMoves, tot.Generated)
	}
}
