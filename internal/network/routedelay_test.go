package network

import (
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// runOneWithDelay measures the unloaded latency of a single message under
// the given router pipeline delay.
func runOneWithDelay(t *testing.T, algName string, rd int, src, dst [2]int) int64 {
	t.Helper()
	g := topology.NewTorus(16, 2)
	alg, _ := routing.Get(algName)
	wl := traffic.NewTrace(g, "one", []int64{0},
		[]traffic.Arrival{{Src: g.ID(src[:]), Dst: g.ID(dst[:])}})
	var lat int64 = -1
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, RouteDelay: rd, Seed: 1,
		OnDeliver: func(m *message.Message) { lat = m.Latency() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(20000); err != nil {
		t.Fatal(err)
	}
	if lat < 0 {
		t.Fatal("message not delivered")
	}
	return lat
}

// TestRouteDelayUnloadedLatency pins the unloaded latency under router
// pipeline delay r: the header pays r at each of the d-1 intermediate
// nodes and at the destination's ejection stage, minus one cycle absorbed
// by the first-hop overlap — d + ml - 1 + (d*r - 1) for r >= 1.
func TestRouteDelayUnloadedLatency(t *testing.T) {
	src, dst := [2]int{0, 0}, [2]int{3, 2} // d = 5
	base := runOneWithDelay(t, "ecube", 0, src, dst)
	if base != 20 { // 5 + 16 - 1
		t.Fatalf("rd=0 latency %d, want 20", base)
	}
	for _, rd := range []int{1, 2, 3} {
		got := runOneWithDelay(t, "ecube", rd, src, dst)
		want := base + int64(5*rd-1)
		if got != want {
			t.Errorf("rd=%d latency %d, want %d", rd, got, want)
		}
	}
}

// TestRouteDelayAppliesToAllAlgorithms: the delay penalizes every
// algorithm identically at zero load (it models the pipeline, not the
// routing function).
func TestRouteDelayAppliesToAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"ecube", "nbc", "2pn"} {
		d0 := runOneWithDelay(t, alg, 0, [2]int{1, 1}, [2]int{4, 5})
		d2 := runOneWithDelay(t, alg, 2, [2]int{1, 1}, [2]int{4, 5})
		if d2 <= d0 {
			t.Errorf("%s: rd=2 latency %d not above rd=0 latency %d", alg, d2, d0)
		}
		if d2-d0 != 13 { // d = 7: 7*2 - 1
			t.Errorf("%s: rd=2 penalty %d, want 13", alg, d2-d0)
		}
	}
}

// TestOnHeaderHopTracesMinimalPaths uses the flight recorder to verify,
// end to end in the simulator, that every delivered worm followed a
// minimal path composed of per-hop-legal moves.
func TestOnHeaderHopTracesMinimalPaths(t *testing.T) {
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"ecube", "nlast", "2pn", "nbc"} {
		alg, _ := routing.Get(algName)
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.02, 7)
		hops := map[int64]int{}
		positions := map[int64]int{}
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, CCLimit: 2, Seed: 7,
			OnHeaderHop: func(m *message.Message, node, dim int, dir topology.Dir) {
				if _, seen := positions[m.ID]; !seen {
					positions[m.ID] = m.Src
				}
				expect := g.Neighbor(positions[m.ID], dim, dir)
				if expect != node {
					t.Fatalf("%s: msg %d hopped to %d, expected neighbour %d", algName, m.ID, node, expect)
				}
				positions[m.ID] = node
				hops[m.ID]++
			},
			OnDeliver: func(m *message.Message) {
				if positions[m.ID] != m.Dst {
					t.Fatalf("%s: msg %d delivered at recorded position %d, dst %d", algName, m.ID, positions[m.ID], m.Dst)
				}
				if hops[m.ID] != m.HopsTotal {
					t.Fatalf("%s: msg %d took %d hops, minimal is %d", algName, m.ID, hops[m.ID], m.HopsTotal)
				}
				delete(hops, m.ID)
				delete(positions, m.ID)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(3000); err != nil {
			t.Fatalf("%s: %v", algName, err)
		}
		if n.Total().Delivered == 0 {
			t.Fatalf("%s: nothing delivered", algName)
		}
	}
}

// TestRouteDelayThroughputCost: under load, router delay costs saturation
// throughput — the hardware-cost counterargument the paper raises against
// complex adaptive routers, made measurable.
func TestRouteDelayThroughputCost(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func(rd int) float64 {
		g := topology.NewTorus(8, 2)
		alg, _ := routing.Get("nbc")
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.04, 5)
		n, _ := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, RouteDelay: rd, Seed: 5})
		if err := n.Run(6000); err != nil {
			t.Fatal(err)
		}
		return n.Total().Utilization(g.NumChannels())
	}
	fast, slow := run(0), run(4)
	if slow >= fast {
		t.Errorf("router delay should cost throughput: rd=0 %.3f, rd=4 %.3f", fast, slow)
	}
}
