package network

import (
	"fmt"
	"testing"

	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// poolRun executes one traced 8x8 run and returns a fingerprint of
// everything observable: counters, the per-delivery latency sequence, and
// the lifecycle trace.
func poolRun(t *testing.T, pool *message.Pool) string {
	t.Helper()
	g := topology.NewTorus(8, 2)
	alg, err := routing.Get("nbc")
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 42)
	tel := telemetry.New(telemetry.Options{Trace: true, TraceCap: 1 << 16}, g.ChannelSlots(), alg.NumVCs(g))
	var latencies []int64
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 42,
		MsgPool: pool, Telemetry: tel,
		OnDeliver: func(m *message.Message) { latencies = append(latencies, m.Latency()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(2000); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v\n%v\n%s", n.Total(), latencies, telemetry.FormatEvents(tel.Events()))
}

// TestPooledRunsAreBitIdentical: a message pool carried from one run into
// the next must not leak any state through recycled worms — the second run
// is bit-identical to a run on a fresh pool, observed through counters, the
// delivery latency sequence, and the full lifecycle trace.
func TestPooledRunsAreBitIdentical(t *testing.T) {
	fresh := poolRun(t, nil)
	shared := message.NewPool()
	first := poolRun(t, shared)
	if shared.Len() == 0 {
		t.Fatal("first run returned no messages to the shared pool")
	}
	second := poolRun(t, shared)
	if first != fresh {
		t.Error("run on an empty shared pool diverged from a private-pool run")
	}
	if second != fresh {
		t.Error("run on a recycled pool diverged from a private-pool run")
	}
	if _, reuses := shared.Stats(); reuses == 0 {
		t.Error("second run reused nothing from the pool")
	}
}

// TestSteadyStateZeroAlloc: once warmed up, the engine cycle allocates
// nothing for any routing algorithm — the pool, scratch buffers, and
// struct-of-arrays layout absorb all steady-state work.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, algName := range []string{"ecube", "nlast", "2pn", "phop", "nhop", "nbc"} {
		g := topology.NewTorus(8, 2)
		alg, err := routing.Get(algName)
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 7)
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		// Warm up past the transient so pools and scratch reach steady size.
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(2000, func() {
			if err := n.Step(); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: %.3f allocs per steady-state cycle, want 0", algName, avg)
		}
	}
}
