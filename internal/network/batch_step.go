package network

import (
	"fmt"
	"sort"
	"strings"

	"wormsim/internal/message"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Step advances every live replica one cycle through a fused sweep: one
// batched arrival draw, then each replica's inject, allocate and transfer
// phases run back to back while its lines are hot. Each replica's control
// flow reproduces the scalar Network.Step decisions exactly, so its results
// are bit-identical to a scalar run of the same config and seed. Replicas
// whose deadlock watchdog fires are returned as faults; they keep stepping
// until the caller Deactivates them (the scalar engine has the same
// property — Step after a watchdog report keeps simulating). The returned
// slice is nil in the common no-fault case.
//
//lint:parity draws every replica's arrival draw is hoisted into one ArrivalsBatch sweep before the phase loop; each replica still consumes its own stream in scalar order
//lint:parity hooks the fused sweep brackets its phases with one timer-mark ordering, so EndCycle lands before the last mark instead of after it
//lint:parity reads cfg.Observer is checked up front so observer rows are staged only when a sink is installed
//lint:parity writes arrival, observer-row and watchdog staging buffers (arrivals, arrScratch, batchOut, batchWs) are batch-only scratch shared across replicas
func (b *BatchNetwork) Step() []ReplicaFault {
	if b.prof != nil {
		b.prof.Begin()
	}
	if b.fore != nil && b.IsLive(b.cfg.Observer) {
		// A converged (deactivated) observer no longer advances, so its
		// analyzer must stop counting cycles too — a scalar run of the
		// observer's seed would have returned by now.
		obs := &b.reps[b.cfg.Observer]
		if obs.fore != nil {
			b.foreSampling = b.fore.StartCycle(obs.now)
		}
	}
	b.drawArrivals()
	// One fully fused pass per replica: its injected, routed and transferred
	// state is touched once per cycle while its lines are hot, instead of
	// re-fetched by three phase sweeps. Replicas share no mutable state, so
	// fusing across them cannot change any replica's outcome; the phase
	// profiler marks per replica and sub-phase, which accumulates into the
	// same phase buckets the scalar engine reports.
	for _, r := range b.live {
		rep := &b.reps[r]
		b.injectR(rep)
		if b.prof != nil {
			b.prof.Mark(telemetry.PhaseInject)
		}
		b.allocateR(rep)
		if rep.fore != nil && b.foreSampling {
			// Resolve within the cycle, while the captured slot ids are live.
			rep.fore.Resolve(rep.now)
		}
		if b.prof != nil {
			b.prof.Mark(telemetry.PhaseRoute)
		}
		if b.transferR(rep) {
			rep.lastMotion = rep.now
		}
		rep.now++
		rep.window.Cycles++
		if rep.tel != nil {
			rep.tel.EndCycle()
		}
		if b.prof != nil {
			b.prof.Mark(telemetry.PhaseTransfer)
		}
	}
	var faults []ReplicaFault
	if b.watchdog > 0 {
		for _, r := range b.live {
			rep := &b.reps[r]
			if rep.inFlight > 0 && rep.now-rep.lastMotion > b.watchdog {
				faults = append(faults, ReplicaFault{Replica: rep.idx, Err: b.deadlockErrR(rep)})
			}
		}
	}
	if b.prof != nil {
		b.prof.Mark(telemetry.PhaseWatchdog)
	}
	return faults
}

// drawArrivals fills every live replica's arrival scratch for this cycle.
// When all workloads are Bernoulli replicas the per-node trials of all
// replicas issue as one interleaved grid of PCG draws (R-way ILP on the
// engine's hottest serial chain); each replica's streams still consume
// draws in exactly the order its own Arrivals call would.
func (b *BatchNetwork) drawArrivals() {
	if b.allBern && len(b.live) > 1 {
		ws := b.batchWs[:0]
		outs := b.batchOut[:0]
		for _, r := range b.live {
			rep := &b.reps[r]
			ws = append(ws, rep.bern)
			outs = append(outs, rep.arrivals[:0])
		}
		b.batchWs, b.batchOut = ws, outs
		b.arrScratch = traffic.ArrivalsBatch(ws, b.arrScratch, b.arrStreams, outs)
		for i, r := range b.live {
			b.reps[r].arrivals = outs[i]
		}
		return
	}
	for _, r := range b.live {
		rep := &b.reps[r]
		rep.arrivals = rep.wl.Arrivals(rep.now, rep.arrivals[:0])
	}
}

// injectR admits replica rep's arrivals onto injection slots (scalar
// Network.inject).
//
//lint:parity draws the arrival draw happens once in Step's batched sweep; injectR consumes the staged arrivals
//lint:parity writes the scalar engine refills its arrivals scratch and seeds the new slot's counters inline; the batch engine seeds slots through setActive and records fresh headers in headerIDs
func (b *BatchNetwork) injectR(rep *batchReplica) {
	for _, a := range rep.arrivals {
		rep.window.Generated++
		m := rep.pool.Get(b.g, rep.nextMsgID, a.Src, a.Dst, int(b.msgLen), rep.now, rep.tieFn)
		rep.nextMsgID++
		b.alg.Init(b.g, m)
		if !rep.limiter.Admit(a.Src, m.Class) {
			rep.window.Dropped++
			if rep.tel != nil {
				rep.tel.Drop(rep.now, m.ID, a.Src, a.Dst)
			}
			rep.pool.Put(m)
			continue
		}
		rep.window.Admitted++
		rep.inFlight++
		id := b.newInjSlotR(rep)
		rep.setActive(id, vcHot{out: outRoute{ch: outNone}, flits: int32(m.Len), node: int32(a.Src)}, m)
		rep.headerIDs = append(rep.headerIDs, id)
		if rep.tel != nil {
			rep.tel.Inject(rep.now, m.ID, a.Src, a.Dst)
			rep.tel.InjEnqueue()
		}
	}
}

// newInjSlotR returns a free injection-slot id for rep, growing the shared
// slot-id space when every id is in use. Per-replica ids are allocated with
// the same free-list-then-append discipline as the scalar engine, so a
// replica's slot ids match its scalar run's exactly.
//
//lint:parity writes the scalar helper seeds the fresh slot's VC state inline; the batch helper only allocates the id — setActive seeds state — and grows the shared slot space (numSlots, active)
func (b *BatchNetwork) newInjSlotR(rep *batchReplica) int32 {
	if k := len(rep.injFree); k > 0 {
		id := rep.injFree[k-1]
		rep.injFree = rep.injFree[:k-1]
		return id
	}
	id := rep.nextSlot
	rep.nextSlot++
	for int(id) >= b.numSlots {
		b.growSlots()
	}
	return id
}

// growSlots widens the shared slot-id space by one, extending every
// replica's id-indexed maps (position-indexed state needs nothing — it is
// sized by live slots, not by ids). The id space stabilizes at the batch's
// peak concurrent injections, after which inject allocates nothing.
func (b *BatchNetwork) growSlots() {
	b.numSlots++
	words := (b.numSlots + 63) / 64
	for r := range b.reps {
		rep := &b.reps[r]
		rep.aIdx = append(rep.aIdx, -1)
		for len(rep.occ) < words {
			rep.occ = append(rep.occ, 0)
		}
	}
}

// allocateR routes rep's arrived, unrouted headers (scalar
// Network.allocate). The rotation draw is consumed unconditionally — it is
// part of the replica's RNG sequence — but instead of the scalar engine's
// full active scan from the rotated start, the headers come straight off
// rep.headerIDs, visited in the position order the rotated scan would reach
// them; slots that are not headers are skipped by that scan without side
// effects, so the shortlist routes exactly what the scan routes.
//
//lint:parity calls tryRouteR is expanded at both the single-header and sorted-shortlist call sites, so the scalar scan's one route/foreBlocked sequence appears once per site
//lint:parity hooks the same duplication: each expanded tryRouteR carries its own HeadBlocked emission
//lint:parity writes the rotated header shortlist (headerIDs, hdrOrd) is batch-only staging
func (b *BatchNetwork) allocateR(rep *batchReplica) {
	count := len(rep.active)
	if count == 0 {
		return
	}
	start := rep.rt.Intn(count)
	switch len(rep.headerIDs) {
	case 0:
		return
	case 1:
		b.tryRouteR(rep, rep.headerIDs[0])
	default:
		ord := b.hdrOrd[:0]
		for _, id := range rep.headerIDs {
			rel := int(rep.aIdx[id]) - start
			if rel < 0 {
				rel += count
			}
			ord = append(ord, int64(rel)<<32|int64(uint32(id)))
		}
		// Insertion sort: the shortlist is a handful of entries.
		for i := 1; i < len(ord); i++ {
			v := ord[i]
			j := i - 1
			for j >= 0 && ord[j] > v {
				ord[j+1] = ord[j]
				j--
			}
			ord[j+1] = v
		}
		b.hdrOrd = ord
		for _, o := range ord {
			//lint:allow indexdiscipline hdrOrd packs rel<<32|slot-id sort keys; the uint32 truncation here is the one decode back to a slot id
			b.tryRouteR(rep, int32(uint32(o)))
		}
	}
}

// tryRouteR applies the scalar allocation scan's per-header gates (router
// pipeline readiness, injection-port budget) and routes the header, exactly
// as the scan does when it reaches this slot.
func (b *BatchNetwork) tryRouteR(rep *batchReplica, id int32) {
	pos := rep.aIdx[id]
	h := &rep.hotA[pos]
	if rep.now < h.ready {
		return
	}
	if id >= b.chanVCs && b.ports > 0 && int(rep.injecting[h.node]) >= b.ports {
		return // all injection ports busy; wait for one to free up
	}
	m := rep.msgA[pos]
	if b.routeR(rep, id, pos, m) {
		rep.dropHeaderID(id)
	} else {
		if rep.tel != nil {
			rep.tel.HeadBlocked(m.Class)
		}
		if rep.fore != nil {
			b.foreBlockedR(rep, id, m)
		}
	}
}

// routeR attempts virtual-channel allocation for the header in rep's slot
// id at active position pos and reports whether it is routed afterwards
// (scalar Network.route).
//
//lint:parity writes the batch vcHot literal leaves the zero-valued counters (flits, ready, recvd, sent) implicit and records the downstream node at claim time; the scalar engine zero-seeds them explicitly and stores the node on header arrival
func (b *BatchNetwork) routeR(rep *batchReplica, id int32, pos int32, m *message.Message) bool {
	node := int(rep.hotA[pos].node)
	if m.Dst == node {
		rep.hotA[pos].out = outRoute{ch: outEject}
		return true
	}
	b.cands = b.alg.Candidates(b.g, m, node, b.cands[:0])
	b.freeCands = b.freeCands[:0]
	b.freeScores = b.freeScores[:0]
	occ := rep.occ
	for _, c := range b.cands {
		ch := (node*b.nDims+c.Dim)*2 + int(c.Dir)
		if b.tbl.down[ch] < 0 {
			continue
		}
		t := ch*b.numVCs + c.VC
		if occ[t>>6]>>(uint(t)&63)&1 != 0 {
			continue
		}
		b.freeCands = append(b.freeCands, c)
		b.freeScores = append(b.freeScores, int(rep.owners[ch]))
	}
	if len(b.freeCands) == 0 {
		return false
	}
	pick := b.policy.Select(b.freeCands, b.freeScores, rep.rt)
	c := b.freeCands[pick]
	ch := (node*b.nDims+c.Dim)*2 + int(c.Dir)
	t := int32(ch*b.numVCs + c.VC)
	rep.owners[ch]++
	rep.setActive(t, vcHot{out: outRoute{ch: outNone}, node: b.tbl.down[ch]}, m)
	rep.hotA[pos].out = outRoute{ch: int32(ch), vc: int16(c.VC), dim: int8(c.Dim), dir: int8(c.Dir)}
	if id >= b.chanVCs {
		rep.injecting[node]++
		m.FirstAlloc = rep.now
	}
	b.alg.Allocated(b.g, m, node, c)
	if rep.tel != nil {
		rep.tel.VCAlloc(rep.now, m.ID, node, ch, c.VC)
		rep.tel.VCAcquired(c.VC)
	}
	return true
}

// transferR performs rep's ejection, channel arbitration and flit movement
// (scalar Network.transfer). It reports whether any flit moved across a
// channel. The dense pass collects movers and resolves channel contention as
// it scans: a channel's requesters are the worms holding its virtual
// channels, so there are at most numVCs of them, and in two-VC configs the
// second requester settles the channel on the spot — the same round-robin
// choice over the same scan-ordered pair the scalar arbitration makes,
// without materializing request lists. Wider VC configs fall back to the
// full request-list arbitration.
//
//lint:parity writes mover staging and generation-stamped arbitration scratch (moveChs, chSlot, reqGen, chReqGen) replace the scalar request lists
func (b *BatchNetwork) transferR(rep *batchReplica) bool {
	bufDepth := b.bufDepth
	numVCs := int32(b.numVCs)
	pairArb := numVCs == 2
	b.reqGen++
	gen := b.reqGen
	chGen := b.chReqGen
	chSlot := b.chSlot
	moves := b.moves[:0]
	chs := b.moveChs[:0]
	conflict := false
	active, hotA, aIdx := rep.active, rep.hotA, rep.aIdx
	rr := rep.rr
	for i := 0; i < len(active); i++ {
		h := &hotA[i]
		out := h.out
		if out.ch < 0 {
			if out.ch == outEject && h.flits != 0 && active[i] < b.chanVCs {
				h.sent += h.flits
				h.flits = 0
				rep.lastMotion = rep.now
				if h.sent == b.msgLen {
					b.deliverR(rep, active[i], i)
					active, hotA = rep.active, rep.hotA
					i-- // the swapped-in element must be visited too
				}
			}
			continue
		}
		if h.flits == 0 {
			continue
		}
		t := out.ch*numVCs + int32(out.vc)
		ht := &hotA[aIdx[t]]
		if ht.flits >= bufDepth && ht.out.ch != outEject {
			continue // no credit downstream (full consuming buffers drain)
		}
		if chGen[out.ch] == gen {
			if pairArb {
				// Second (and by the VC-ownership bound, last) requester:
				// the scalar arbitration picks reqs[rr%2] from the
				// scan-ordered pair, so an odd pointer flips the win to
				// this one. The pointer itself advances once per touched
				// channel, below.
				if rr[out.ch]&1 == 1 {
					moves[chSlot[out.ch]] = active[i]
				}
				continue
			}
			conflict = true
		} else {
			chGen[out.ch] = gen
			chSlot[out.ch] = int32(len(moves))
		}
		moves = append(moves, active[i])
		chs = append(chs, out.ch)
	}
	if conflict {
		moves = b.arbitrateR(rep, moves, chs)
	} else {
		// Winners are settled; the round-robin pointer advances once per
		// requested channel, as the scalar arbitration does.
		for _, ch := range chs {
			rr[ch]++
		}
	}
	b.moves, b.moveChs = moves, chs
	if b.halfDuplex && len(moves) > 1 {
		b.moves = b.dropReverseConflictsR(rep, moves)
	}
	for _, id := range b.moves {
		b.applyMoveR(rep, id)
	}
	return len(b.moves) > 0
}

// arbitrateR resolves contended channels for configs with more than two
// virtual channels per physical channel, where the scan's pairwise inline
// resolution doesn't apply: requesters group per channel in scan order and
// each channel picks one winner round-robin (scalar Network.transfer's
// arbitration loop, verbatim).
func (b *BatchNetwork) arbitrateR(rep *batchReplica, cand, chs []int32) []int32 {
	touched := b.touched[:0]
	for i, id := range cand {
		ch := chs[i]
		if len(b.reqs[ch]) == 0 {
			touched = append(touched, ch)
		}
		b.reqs[ch] = append(b.reqs[ch], id)
	}
	b.touched = touched
	// Winners overwrite cand in channel-touch order; reqs holds the copies.
	winners := cand[:0]
	for _, ch := range b.touched {
		req := b.reqs[ch]
		winner := req[0]
		if len(req) > 1 {
			winner = req[int(rep.rr[ch])%len(req)]
		}
		rep.rr[ch]++
		winners = append(winners, winner)
		b.reqs[ch] = req[:0]
	}
	return winners
}

// dropReverseConflictsR enforces half-duplex links for rep (scalar
// Network.dropReverseConflicts; the generation-stamped scratch is shared
// across replicas, the round-robin state is rep's own).
func (b *BatchNetwork) dropReverseConflictsR(rep *batchReplica, moves []int32) []int32 {
	b.revGen++
	gen := b.revGen
	for _, id := range moves {
		b.chMoverGen[rep.hotA[rep.aIdx[id]].out.ch] = gen
	}
	dropped := 0
	for _, id := range moves {
		ch := rep.hotA[rep.aIdx[id]].out.ch
		rev := b.tbl.rev[ch]
		if ch > rev {
			continue // each conflicting pair is handled from its lower side
		}
		if b.chMoverGen[rev] != gen {
			continue
		}
		// Alternate the winner per link across cycles.
		rep.rr[ch]++
		if rep.rr[ch]%2 == 0 {
			b.chDropGen[ch] = gen
		} else {
			b.chDropGen[rev] = gen
		}
		dropped++
	}
	if dropped == 0 {
		return moves
	}
	kept := moves[:0]
	for _, id := range moves {
		if b.chDropGen[rep.hotA[rep.aIdx[id]].out.ch] != gen {
			kept = append(kept, id)
		}
	}
	return kept
}

// applyMoveR transfers one flit from rep's slot id across its output
// channel (scalar Network.applyMove).
//
//lint:parity writes a completed header hop re-registers the downstream slot in headerIDs for the next allocate shortlist; the scalar engine rediscovers headers by scanning
func (b *BatchNetwork) applyMoveR(rep *batchReplica, id int32) {
	pos := rep.aIdx[id]
	h := &rep.hotA[pos]
	out := h.out
	ch := int(out.ch)
	t := int32(ch*b.numVCs + int(out.vc))
	ht := &rep.hotA[rep.aIdx[t]]
	h.flits--
	h.sent++
	ht.flits++
	ht.recvd++
	rep.window.FlitMoves++
	rep.window.FlitMovesByClass[out.vc]++
	rep.flitsByChannel[ch]++
	if rep.tel != nil {
		rep.tel.FlitMove(ch)
	}
	if ht.recvd == 1 {
		// Header hop completed: update the message's routing state from the
		// upstream node's viewpoint (precomputed in the channel tables).
		m := rep.msgA[pos]
		dim, dir := int(out.dim), topology.Dir(out.dir)
		m.Advance(b.g, dim, dir, int(b.tbl.coord[ch]), int(b.tbl.parity[ch]))
		ht.ready = rep.now + 1 + int64(b.routeDelay)
		rep.headerIDs = append(rep.headerIDs, t)
		if b.onHeaderHop != nil {
			// Zero-copy handoff by contract: m is engine-owned and valid only
			// for the duration of the callback (see BatchConfig.OnHeaderHop).
			b.onHeaderHop(rep.idx, m, int(ht.node), dim, dir) //lint:allow hookescape (documented borrow, copying would allocate per hop)
		}
		if rep.tel != nil {
			rep.tel.Hop(rep.now, m.ID, int(ht.node), ch, int(out.vc))
		}
	}
	if h.sent == b.msgLen {
		// Tail has left this buffer: release it.
		if id >= b.chanVCs {
			rep.limiter.Release(int(h.node), rep.msgA[pos].Class)
			rep.injecting[h.node]--
			if rep.tel != nil {
				rep.tel.InjDequeue()
			}
			rep.injFree = append(rep.injFree, id)
			rep.clearActive(id)
		} else {
			rep.owners[id/int32(b.numVCs)]--
			if rep.tel != nil {
				rep.tel.VCReleased(int(id % int32(b.numVCs)))
			}
			rep.clearActive(id)
		}
	}
}

// deliverR completes message consumption at rep's slot id, at active
// position pos (scalar Network.deliver).
//
//lint:parity reads the freed slot's physical channel is decoded from its id through numVCs; the scalar engine reads the stored vcCh entry instead
func (b *BatchNetwork) deliverR(rep *batchReplica, id int32, pos int) {
	m := rep.msgA[pos]
	m.DeliverTime = rep.now
	rep.owners[id/int32(b.numVCs)]--
	rep.clearActive(id)
	rep.inFlight--
	rep.window.Delivered++
	if rep.tel != nil {
		rep.tel.VCReleased(int(id % int32(b.numVCs)))
		rep.tel.Deliver(rep.now, m.ID, m.Dst)
	}
	if rep.fore != nil {
		// The drain component is the unloaded latency of eq. (2), ml + d - 1,
		// plus the router pipeline delay the header paid at each hop.
		ideal := int64(m.HopsTotal)*int64(1+b.routeDelay) + int64(b.msgLen) - 1
		rep.fore.Delivered(m.Class, m.HopsTotal, m.GenTime, m.FirstAlloc, m.DeliverTime, m.HeadStalls, ideal)
	}
	if b.onDeliver != nil {
		// Zero-copy handoff by contract: m is pooled and valid only for the
		// duration of the callback (see BatchConfig.OnDeliver) — it is
		// recycled on the next line.
		b.onDeliver(rep.idx, m) //lint:allow hookescape (documented borrow, copying would defeat the message pool)
	}
	rep.pool.Put(m)
}

// foreBlockedR feeds the observer replica's forensics analyzer after a
// failed routeR (scalar Network.foreBlocked). Slot ids are per-replica and
// match the replica's scalar run, so the analyzer sees the same graph.
func (b *BatchNetwork) foreBlockedR(rep *batchReplica, id int32, m *message.Message) {
	if rep.fore == nil {
		return
	}
	if id < b.chanVCs {
		m.HeadStalls++
	}
	if !b.foreSampling {
		return
	}
	node := int(rep.hotA[rep.aIdx[id]].node)
	var width int32
	first := int32(-1)
	var firstVC int16
	for _, c := range b.cands {
		ch := int32((node*b.nDims+c.Dim)*2 + int(c.Dir))
		if b.tbl.down[ch] < 0 {
			continue
		}
		width++
		if first < 0 {
			first, firstVC = ch, int16(c.VC)
		}
	}
	if first < 0 {
		rep.fore.BlockedUnattributable()
		return
	}
	t := first*int32(b.numVCs) + int32(firstVC)
	var holder *message.Message
	if rep.occ[t>>6]>>(uint(t)&63)&1 != 0 {
		holder = rep.msgA[rep.aIdx[t]]
	}
	holderHead := int32(-1)
	holderID := int64(-1)
	if holder != nil && holder != m {
		holderHead = b.headSlotOfR(rep, t)
		holderID = holder.ID
	}
	rep.fore.Blocked(id, m.ID, m.Class, first, firstVC, width, holderHead, holderID)
	if rep.tel != nil {
		rep.tel.Block(rep.now, m.ID, node, int(first), int(firstVC), holderID)
	}
}

// headSlotOfR walks a worm's channel chain to its head slot in replica rep
// (scalar Network.headSlotOf).
func (b *BatchNetwork) headSlotOfR(rep *batchReplica, t int32) int32 {
	m := rep.msgA[rep.aIdx[t]]
	for {
		out := rep.hotA[rep.aIdx[t]].out
		if out.ch == outNone {
			return t
		}
		if out.ch == outEject {
			return -1
		}
		next := out.ch*int32(b.numVCs) + int32(out.vc)
		if rep.occ[next>>6]>>(uint(next)&63)&1 == 0 || rep.msgA[rep.aIdx[next]] != m {
			return t // defensive: never happens while the chain is intact
		}
		t = next
	}
}

// deadlockErrR builds replica rep's watchdog report (scalar Step's deadlock
// branch).
func (b *BatchNetwork) deadlockErrR(rep *batchReplica) *DeadlockError {
	err := &DeadlockError{Cycle: rep.now - rep.lastMotion, InFlight: rep.inFlight, Detail: b.describeStuckR(rep.idx, 8)}
	if rep.fore != nil {
		// Lead with causality: the blame root and any wait-for cycle witness
		// come before the raw stuck-worm dump.
		if blame := rep.fore.StallReport(); blame != "" {
			err.Blame = blame
			err.Detail = blame + err.Detail
		}
	}
	if rep.tel != nil && rep.tel.Tracing() {
		for i, w := range b.WormStatesOf(rep.idx) {
			if i >= 8 {
				break
			}
			rep.tel.Kill(rep.now, w.ID, w.HeadNode)
		}
		err.Trace = rep.tel.LastEvents(32)
		err.Detail += "last trace events:\n" + telemetry.FormatEvents(err.Trace)
	}
	return err
}

// WormStatesOf returns replica r's canonical in-flight state (scalar
// Network.WormStates): one telemetry.WormState per live worm, sorted by
// message ID, buffers ordered injection slot first then upstream to
// downstream.
//
//lint:parity reads slot ids decode to channel and class through numVCs; the scalar engine stores ch and class per VC
func (b *BatchNetwork) WormStatesOf(r int) []telemetry.WormState {
	rep := &b.reps[r]
	numVCs := int32(b.numVCs)
	refs := b.wormRefs[:0]
	for pos, id := range rep.active {
		ch := int32(-1)
		if id < b.chanVCs {
			ch = id / numVCs
		}
		refs = append(refs, wormRef{id: rep.msgA[pos].ID, vc: id, ch: ch, recvd: rep.hotA[pos].recvd})
	}
	b.wormRefs = refs
	b.wormSort.refs = refs
	sort.Sort(&b.wormSort)
	states := make([]telemetry.WormState, 0, rep.inFlight)
	for i := 0; i < len(refs); {
		j := i
		for j < len(refs) && refs[j].id == refs[i].id {
			j++
		}
		m := rep.msgA[rep.aIdx[refs[i].vc]]
		w := telemetry.WormState{
			ID: m.ID, Src: m.Src, Dst: m.Dst, Len: m.Len,
			HopsTaken: m.HopsTaken, HopsTotal: m.HopsTotal,
			Holding: make([]telemetry.VCHold, j-i),
		}
		for k := i; k < j; k++ {
			id := refs[k].vc
			h := &rep.hotA[rep.aIdx[id]]
			ch, class := -1, 0
			if id < b.chanVCs {
				ch, class = int(id/numVCs), int(id%numVCs)
			}
			w.Holding[k-i] = telemetry.VCHold{
				Ch: ch, Class: class,
				Node: int(h.node), Flits: int(h.flits),
			}
			// The header sits in the buffer that has forwarded nothing yet:
			// the injection slot before the first hop, or the deepest buffer
			// that has received at least one flit.
			if h.sent == 0 && (h.recvd > 0 || id >= b.chanVCs) {
				w.Routed = h.out.ch != outNone
				w.HeadNode = int(h.node)
			}
		}
		states = append(states, w)
		i = j
	}
	return states
}

// describeStuckR renders up to limit of replica r's stuck worms for the
// watchdog report.
func (b *BatchNetwork) describeStuckR(r, limit int) string {
	states := b.WormStatesOf(r)
	var sb strings.Builder
	for i, w := range states {
		if i >= limit {
			fmt.Fprintf(&sb, "  ... and %d more\n", len(states)-limit)
			break
		}
		fmt.Fprintf(&sb, "  %v head at %s\n", w, nodeName(b.g, w.HeadNode))
	}
	return sb.String()
}
