package network

import (
	"fmt"
	"strings"
	"testing"

	"wormsim/internal/forensics"
	"wormsim/internal/message"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// batchGrids are the bit-identity test topologies: every shape the CDG
// certification suite covers.
var batchGrids = []struct {
	name string
	k, n int
	mesh bool
}{
	{"4x4-torus", 4, 2, false},
	{"4x4-mesh", 4, 2, true},
	{"8x8-torus", 8, 2, false},
	{"8x8-mesh", 8, 2, true},
	{"4x4x4-torus", 4, 3, false},
	{"4x4x4-mesh", 4, 3, true},
}

func batchGrid(k, n int, mesh bool) *topology.Grid {
	if mesh {
		return topology.NewMesh(k, n)
	}
	return topology.NewTorus(k, n)
}

// scalarFingerprint runs a scalar Network for cycles (with a mid-run reseed
// and window reset at half time, mirroring the core sampling loop) and
// fingerprints everything observable: counters, the delivery sequence, the
// header-hop trace and the final in-flight state.
func scalarFingerprint(t *testing.T, g *topology.Grid, alg routing.Algorithm, rate float64, seed uint64, cycles int64) string {
	t.Helper()
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, seed)
	var events []string
	n, err := New(Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, CCLimit: 2, Seed: seed,
		OnDeliver: func(m *message.Message) {
			events = append(events, fmt.Sprintf("d %d %d %d %d", m.ID, m.Src, m.Dst, m.Latency()))
		},
		OnHeaderHop: func(m *message.Message, node, dim int, dir topology.Dir) {
			events = append(events, fmt.Sprintf("h %d %d %d %v", m.ID, node, dim, dir))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	half := cycles / 2
	if err := n.Run(half); err != nil {
		t.Fatal(err)
	}
	n.ResetWindow()
	n.Reseed(seed + 0x9e3779b97f4a7c15)
	if err := n.Run(cycles - half); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v\n%+v\n%v\n%v\n%v", n.Window(), n.Total(), n.ChannelFlitCounts(), n.WormStates(), strings.Join(events, "\n"))
}

// batchFingerprints runs a BatchNetwork over seeds with the same schedule
// as scalarFingerprint and returns one fingerprint per replica.
func batchFingerprints(t *testing.T, g *topology.Grid, alg routing.Algorithm, rate float64, seeds []uint64, cycles int64) []string {
	t.Helper()
	wls := make([]traffic.Workload, len(seeds))
	base := traffic.NewBernoulli(g, traffic.NewUniform(g), rate, seeds[0])
	for r, seed := range seeds {
		wls[r] = base.Replicate(seed)
	}
	events := make([][]string, len(seeds))
	bn, err := NewBatch(BatchConfig{
		Grid: g, Algorithm: alg, Workloads: wls, Seeds: seeds, MsgLen: 8, CCLimit: 2,
		OnDeliver: func(r int, m *message.Message) {
			events[r] = append(events[r], fmt.Sprintf("d %d %d %d %d", m.ID, m.Src, m.Dst, m.Latency()))
		},
		OnHeaderHop: func(r int, m *message.Message, node, dim int, dir topology.Dir) {
			events[r] = append(events[r], fmt.Sprintf("h %d %d %d %v", m.ID, node, dim, dir))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	half := cycles / 2
	run := func(cycles int64) {
		for i := int64(0); i < cycles; i++ {
			if faults := bn.Step(); faults != nil {
				t.Fatalf("unexpected watchdog fault: %+v", faults)
			}
		}
	}
	run(half)
	for r, seed := range seeds {
		bn.ResetWindow(r)
		bn.Reseed(r, seed+0x9e3779b97f4a7c15)
	}
	run(cycles - half)
	prints := make([]string, len(seeds))
	for r := range seeds {
		prints[r] = fmt.Sprintf("%+v\n%+v\n%v\n%v\n%v", bn.Window(r), bn.Total(r), bn.ChannelFlitCounts(r), bn.WormStatesOf(r), strings.Join(events[r], "\n"))
	}
	return prints
}

// TestBatchScalarBitIdentity: every replica of a batch run is bit-identical
// to a scalar run of the same config and seed, across all algorithms and
// the certification grid shapes.
func TestBatchScalarBitIdentity(t *testing.T) {
	seeds := []uint64{11, 7, 23}
	for _, gc := range batchGrids {
		g := batchGrid(gc.k, gc.n, gc.mesh)
		for _, algName := range routing.Names() {
			alg, err := routing.Get(algName)
			if err != nil {
				t.Fatal(err)
			}
			if alg.Compatible(g) != nil {
				continue
			}
			t.Run(gc.name+"/"+algName, func(t *testing.T) {
				cycles := int64(1200)
				if testing.Short() && gc.k > 4 {
					cycles = 400
				}
				got := batchFingerprints(t, g, alg, 0.02, seeds, cycles)
				for r, seed := range seeds {
					want := scalarFingerprint(t, g, alg, 0.02, seed, cycles)
					if got[r] != want {
						t.Errorf("replica %d (seed %d) diverged from scalar run", r, seed)
					}
				}
			})
		}
	}
}

// TestBatchObserverBitIdentity: the observer replica with telemetry and
// forensics attached matches a scalar run with the same instruments —
// identical counters, lifecycle trace and analyzer summary — and the
// instruments do not perturb the other replicas.
func TestBatchObserverBitIdentity(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, err := routing.Get("nbc")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{42, 43}
	scalarRun := func(seed uint64) (string, string, string) {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seed)
		tel := telemetry.New(telemetry.Options{Trace: true, TraceCap: 1 << 16}, g.ChannelSlots(), alg.NumVCs(g))
		fore := forensics.New(forensics.Options{SampleEvery: 16}, g.ChannelSlots())
		n, err := New(Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: seed,
			Telemetry: tel, Forensics: fore,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(1500); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", n.Total()), telemetry.FormatEvents(tel.Events()), fmt.Sprintf("%+v", fore.Summary())
	}
	wantCnt, wantTrace, wantFore := scalarRun(seeds[0])
	wantPlain, _, _ := func() (string, string, string) {
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seeds[1])
		n, err := New(Config{Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: seeds[1]})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(1500); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", n.Total()), "", ""
	}()

	base := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seeds[0])
	tel := telemetry.New(telemetry.Options{Trace: true, TraceCap: 1 << 16}, g.ChannelSlots(), alg.NumVCs(g))
	fore := forensics.New(forensics.Options{SampleEvery: 16}, g.ChannelSlots())
	bn, err := NewBatch(BatchConfig{
		Grid: g, Algorithm: alg,
		Workloads: []traffic.Workload{base.Replicate(seeds[0]), base.Replicate(seeds[1])},
		Seeds:     seeds, MsgLen: 16, CCLimit: 2,
		Telemetry: tel, Forensics: fore,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if faults := bn.Step(); faults != nil {
			t.Fatalf("unexpected fault: %+v", faults)
		}
	}
	if got := fmt.Sprintf("%+v", bn.Total(0)); got != wantCnt {
		t.Error("observer counters diverged from an instrumented scalar run")
	}
	if got := telemetry.FormatEvents(tel.Events()); got != wantTrace {
		t.Error("observer lifecycle trace diverged from an instrumented scalar run")
	}
	if got := fmt.Sprintf("%+v", fore.Summary()); got != wantFore {
		t.Error("observer forensics summary diverged from an instrumented scalar run")
	}
	if got := fmt.Sprintf("%+v", bn.Total(1)); got != wantPlain {
		t.Error("non-observer replica perturbed by the observer's instruments")
	}
}

// TestBatchReplicaDropout: deactivating a replica mid-run must not perturb
// the survivors — they stay bit-identical to a full-width batch (and so to
// their scalar runs).
func TestBatchReplicaDropout(t *testing.T) {
	g := topology.NewTorus(8, 2)
	alg, err := routing.Get("phop")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{5, 6, 7, 8}
	build := func() *BatchNetwork {
		base := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seeds[0])
		wls := make([]traffic.Workload, len(seeds))
		for r, seed := range seeds {
			wls[r] = base.Replicate(seed)
		}
		bn, err := NewBatch(BatchConfig{Grid: g, Algorithm: alg, Workloads: wls, Seeds: seeds, MsgLen: 16, CCLimit: 2})
		if err != nil {
			t.Fatal(err)
		}
		return bn
	}
	step := func(bn *BatchNetwork, cycles int) {
		for i := 0; i < cycles; i++ {
			if faults := bn.Step(); faults != nil {
				t.Fatalf("unexpected fault: %+v", faults)
			}
		}
	}
	full := build()
	step(full, 1600)

	drop := build()
	step(drop, 700)
	drop.Deactivate(1)
	if drop.IsLive(1) || drop.Live() != 3 {
		t.Fatalf("after Deactivate(1): IsLive=%v Live=%d", drop.IsLive(1), drop.Live())
	}
	drop.Deactivate(1) // idempotent
	step(drop, 900)
	for _, r := range []int{0, 2, 3} {
		if got, want := fmt.Sprintf("%+v", drop.Total(r)), fmt.Sprintf("%+v", full.Total(r)); got != want {
			t.Errorf("survivor %d diverged after replica 1 dropped out:\n got %s\nwant %s", r, got, want)
		}
	}
	if got := drop.Now(1); got != 700 {
		t.Errorf("deactivated replica advanced to cycle %d, want frozen at 700", got)
	}
	if got, want := fmt.Sprintf("%+v", drop.Window(1).Cycles), "700"; got != want {
		t.Errorf("deactivated replica window cycles = %s, want %s", got, want)
	}
}

// TestBatchSteadyStateZeroAlloc: once warmed up, a batch step allocates
// nothing for any routing algorithm, with the observer instrumented.
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	g := topology.NewTorus(8, 2)
	for _, algName := range []string{"ecube", "nlast", "2pn", "phop", "nhop", "nbc"} {
		alg, err := routing.Get(algName)
		if err != nil {
			t.Fatal(err)
		}
		seeds := []uint64{3, 5, 9, 17}
		base := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, seeds[0])
		wls := make([]traffic.Workload, len(seeds))
		for r, seed := range seeds {
			wls[r] = base.Replicate(seed)
		}
		fore := forensics.New(forensics.Options{SampleEvery: 16}, g.ChannelSlots())
		bn, err := NewBatch(BatchConfig{Grid: g, Algorithm: alg, Workloads: wls, Seeds: seeds, MsgLen: 16, CCLimit: 2, Forensics: fore})
		if err != nil {
			t.Fatal(err)
		}
		// Warm up past the transient so pools and scratch reach steady size.
		for i := 0; i < 3000; i++ {
			if faults := bn.Step(); faults != nil {
				t.Fatalf("%s: unexpected fault: %+v", algName, faults)
			}
		}
		avg := testing.AllocsPerRun(2000, func() {
			if faults := bn.Step(); faults != nil {
				t.Fatal(faults)
			}
		})
		if avg != 0 {
			t.Errorf("%s: %.3f allocs per steady-state batch cycle, want 0", algName, avg)
		}
	}
}

// TestBatchWatchdogFault: a replica that wedges is reported as a fault with
// the scalar engine's diagnostics, and a healthy replica sharing the batch
// is unaffected.
func TestBatchWatchdogFault(t *testing.T) {
	g := topology.NewTorus(8, 1)
	var cycles []int64
	var arrs []traffic.Arrival
	for src := 0; src < 8; src++ {
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: (src + 2) % 8})
	}
	wedge := traffic.NewTrace(g, "cycle", cycles, arrs)
	quiet := traffic.NewBernoulli(g, traffic.NewUniform(g), 0, 2)
	bn, err := NewBatch(BatchConfig{
		Grid: g, Algorithm: cyclicAlg{}, Workloads: []traffic.Workload{wedge, quiet},
		Seeds: []uint64{1, 2}, MsgLen: 16, BufDepth: 1, WatchdogCycles: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fault *ReplicaFault
	for i := 0; i < 5000 && fault == nil; i++ {
		for _, f := range bn.Step() {
			f := f
			fault = &f
		}
	}
	if fault == nil {
		t.Fatal("wedged replica never faulted")
	}
	if fault.Replica != 0 {
		t.Errorf("fault on replica %d, want 0", fault.Replica)
	}
	if fault.Err == nil || fault.Err.InFlight == 0 || fault.Err.Detail == "" {
		t.Errorf("fault diagnostics incomplete: %+v", fault.Err)
	}
	bn.Deactivate(0)
	for i := 0; i < 100; i++ {
		if faults := bn.Step(); faults != nil {
			t.Fatalf("healthy replica faulted: %+v", faults)
		}
	}
	if bn.InFlight(1) != 0 {
		t.Errorf("idle replica has %d in flight", bn.InFlight(1))
	}
}
