// Package network is the flit-level discrete-event simulator at the heart
// of the reproduction: wormhole-switched k-ary n-cubes and meshes with
// virtual channels time-multiplexed on unidirectional physical channels,
// header-driven virtual-channel allocation, credit-based flit flow control,
// injection-side congestion control and a deadlock watchdog.
//
// # Model
//
// Every physical channel carries one flit per cycle (the paper's ft = 1) and
// hosts V virtual channels, each with a small flit buffer at its receiving
// node. A message (worm) advances as a pipeline: its header allocates one
// virtual channel per hop, chosen by the routing algorithm among the
// admissible candidates that are currently free; body flits follow the
// header's path; the tail releases each virtual channel as it passes.
// Blocked worms hold their channels, which is precisely what distinguishes
// wormhole from virtual cut-through: with BufDepth >= message length a
// blocked worm instead fits entirely in one node's buffer and frees its
// upstream channels, so the same engine simulates the paper's sec. 3.4
// virtual cut-through experiment.
//
// Flits of one message are indistinguishable and FIFO, so buffers track
// counts rather than flit objects: each virtual channel records how many
// flits it currently buffers and how many it has received and forwarded in
// total. The header is "present" when one flit has been received and none
// forwarded; the tail "passes" when the forwarded count reaches the message
// length.
//
// The simulator is cycle-driven with a two-phase transfer step (decide all
// moves from start-of-cycle state, then apply), which makes a cycle
// equivalent to the event-driven simulation of the paper at ft = 1 while
// staying deterministic for a given seed.
package network

import (
	"fmt"
	"sort"
	"strings"

	"wormsim/internal/congestion"
	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Config describes one simulated network.
type Config struct {
	// Grid is the topology (required).
	Grid *topology.Grid
	// Algorithm is the wormhole routing algorithm (required).
	Algorithm routing.Algorithm
	// Policy selects among free candidate output virtual channels; nil means
	// routing.RandomPolicy.
	Policy routing.SelectionPolicy
	// Workload generates arrivals (required).
	Workload traffic.Workload
	// MsgLen is the message length in flits (paper: 16).
	MsgLen int
	// BufDepth is the per-virtual-channel flit buffer depth. The default 2
	// lets an unblocked worm sustain one flit per cycle per channel;
	// >= MsgLen yields virtual cut-through behaviour.
	BufDepth int
	// CCLimit is the congestion-control per-class message limit at each
	// source (0 disables congestion control).
	CCLimit int
	// InjectionPorts caps how many messages per node may be actively
	// injecting (holding a first-hop virtual channel) at once; queued
	// messages wait their turn. 0 means unlimited.
	InjectionPorts int
	// Seed drives direction tie-breaking and adaptive selection.
	Seed uint64
	// RouteDelay models router pipeline latency: a header that arrives at a
	// node waits this many cycles before it may bid for an output virtual
	// channel. 0 (the default, the paper's idealization) routes in the
	// arrival cycle. The paper's discussion notes adaptive routing logic
	// "could increase the node delay per hop" — this knob quantifies that
	// claim (bench A-RTD).
	RouteDelay int
	// HalfDuplex couples each pair of opposite channels into one
	// bidirectional link carrying one flit per cycle in total — the channel
	// model of Song's study that the paper's footnote 5 compares against
	// ("the use of two unidirectional channels ... results in lower
	// throughputs"). Utilization should then be normalized by half the
	// channel count (see EffectiveChannels).
	HalfDuplex bool
	// WatchdogCycles is how long the network may go without any flit
	// movement while messages are in flight before Step reports a deadlock
	// (default 20000; < 0 disables).
	WatchdogCycles int64
	// OnDeliver, if set, is called for every delivered message with the
	// delivery cycle already recorded.
	OnDeliver func(*message.Message)
	// OnHeaderHop, if set, is called whenever a header flit completes a hop
	// into the given node over (dim, dir) — a flight recorder for path
	// verification and visualization.
	OnHeaderHop func(m *message.Message, node int, dim int, dir topology.Dir)
	// Telemetry, if set, receives per-cycle metrics and sampled worm
	// lifecycle events. It must be sized for this network (telemetry.New
	// with the grid's channel slots and the algorithm's NumVCs). nil
	// disables collection at near-zero cost: every hook is a nil check.
	Telemetry *telemetry.Collector
	// Phases, if set, attributes wall-clock time to the engine's pipeline
	// stages (inject, route, eject, transfer, watchdog) — the self-profiling
	// feed behind the CLIs' -phaseprof flag and the observatory's
	// wormsim_phase_seconds_total metric. Like Telemetry, nil costs one
	// branch per hook and an attached profiler never alters results.
	Phases *telemetry.PhaseProfiler
}

// vc is the state of one input virtual-channel buffer (or injection slot).
type vc struct {
	msg *message.Message
	// node is where this buffer's flits reside: the downstream node of the
	// channel, or the source node for an injection slot.
	node int
	// ch is the owning physical channel index, or -1 for an injection slot.
	ch int
	// class is the virtual-channel class on ch (0 for injection slots).
	class int
	// flits currently buffered; recvd/sent are lifetime totals. Injection
	// slots start with flits = msg.Len (the whole message is available at
	// the source).
	flits int
	recvd int
	sent  int
	// routed reports whether the header has been assigned an output.
	routed bool
	// outCh/outVC identify the allocated output virtual channel; outCh is
	// -1 for ejection at the destination.
	outCh int
	outVC int
	// outDim/outDir cache the decoded direction of outCh.
	outDim int
	outDir topology.Dir
	// routeReadyAt is the earliest cycle the header may bid for an output
	// (arrival cycle + RouteDelay).
	routeReadyAt int64
	// activeIdx is the position in Network.active, for swap-removal.
	activeIdx int
}

// Counters is a snapshot of a measurement window.
type Counters struct {
	// Cycles covered by the window.
	Cycles int64
	// FlitMoves counts flit transfers across physical channels.
	FlitMoves int64
	// Generated, Admitted, Dropped and Delivered count messages.
	Generated int64
	Admitted  int64
	Dropped   int64
	Delivered int64
	// FlitMovesByClass breaks FlitMoves down by virtual-channel class, the
	// paper's virtual-channel load-balance observable.
	FlitMovesByClass []int64
}

// Utilization returns achieved normalized throughput: flit moves per cycle
// per physical channel (eq. (3) of the paper).
func (c Counters) Utilization(channels int) float64 {
	if c.Cycles == 0 || channels == 0 {
		return 0
	}
	return float64(c.FlitMoves) / (float64(c.Cycles) * float64(channels))
}

// Network is a running simulation. Create with New; advance with Step or
// Run.
type Network struct {
	cfg     Config
	g       *topology.Grid
	alg     routing.Algorithm
	policy  routing.SelectionPolicy
	wl      traffic.Workload
	numVCs  int
	limiter *congestion.Limiter
	rt      *rng.Stream
	tel     *telemetry.Collector
	prof    *telemetry.PhaseTimer

	now        int64
	nextMsgID  int64
	inFlight   int
	lastMotion int64

	// vcs[ch*numVCs+class] is the input buffer of that virtual channel at
	// the channel's downstream node.
	vcs []vc
	// active lists every live vc (owned buffers and injection slots).
	active []*vc

	// Per-channel round-robin pointer and owner count (congestion score).
	rr     []uint32
	owners []int32
	// flitsByChannel counts lifetime flit transfers per physical channel
	// slot, for load-balance analysis.
	flitsByChannel []int64
	// injecting counts actively injecting messages per node (InjectionPorts
	// enforcement).
	injecting []int32

	// Scratch, reused across cycles.
	arrivals   []traffic.Arrival
	cands      []routing.Candidate
	freeCands  []routing.Candidate
	freeScores []int
	moves      []*vc
	reqs       [][]*vc
	touched    []int

	window Counters
	total  Counters
}

// New validates cfg and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Grid == nil || cfg.Algorithm == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("network: Grid, Algorithm and Workload are required")
	}
	if err := cfg.Algorithm.Compatible(cfg.Grid); err != nil {
		return nil, err
	}
	if cfg.MsgLen <= 0 {
		cfg.MsgLen = 16
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 2
	}
	if cfg.BufDepth < 1 {
		return nil, fmt.Errorf("network: BufDepth %d must be >= 1", cfg.BufDepth)
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 20000
	}
	if cfg.Policy == nil {
		cfg.Policy = routing.RandomPolicy{}
	}
	g := cfg.Grid
	n := &Network{
		cfg:     cfg,
		g:       g,
		alg:     cfg.Algorithm,
		policy:  cfg.Policy,
		wl:      cfg.Workload,
		numVCs:  cfg.Algorithm.NumVCs(g),
		limiter: congestion.NewLimiter(g.Nodes(), cfg.CCLimit),
		rt:      rng.NewStream(cfg.Seed, 0x90f7),
		tel:     cfg.Telemetry,
		prof:    cfg.Phases.Timer(),
	}
	slots := g.ChannelSlots()
	if n.tel != nil {
		if chs, classes := n.tel.Dims(); chs != slots || classes != n.numVCs {
			return nil, fmt.Errorf("network: telemetry collector sized for %d channels / %d classes, need %d / %d",
				chs, classes, slots, n.numVCs)
		}
	}
	n.vcs = make([]vc, slots*n.numVCs)
	for ch := 0; ch < slots; ch++ {
		up, dim, dir := g.ChannelInfo(ch)
		down := g.Neighbor(up, dim, dir)
		for class := 0; class < n.numVCs; class++ {
			s := &n.vcs[ch*n.numVCs+class]
			s.ch = ch
			s.class = class
			s.node = down // -1 on mesh boundaries; such slots stay unused
		}
	}
	n.rr = make([]uint32, slots)
	n.owners = make([]int32, slots)
	n.injecting = make([]int32, g.Nodes())
	n.flitsByChannel = make([]int64, slots)
	n.reqs = make([][]*vc, slots)
	n.window.FlitMovesByClass = make([]int64, n.numVCs)
	n.total.FlitMovesByClass = make([]int64, n.numVCs)
	return n, nil
}

// Grid returns the topology.
func (n *Network) Grid() *topology.Grid { return n.g }

// NumVCs returns the virtual channels per physical channel in use.
func (n *Network) NumVCs() int { return n.numVCs }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// InFlight returns the number of admitted messages not yet delivered.
func (n *Network) InFlight() int { return n.inFlight }

// Window returns the counters accumulated since the last ResetWindow.
func (n *Network) Window() Counters {
	w := n.window
	w.FlitMovesByClass = append([]int64(nil), n.window.FlitMovesByClass...)
	return w
}

// Total returns the counters accumulated since construction.
func (n *Network) Total() Counters {
	t := n.total
	t.FlitMovesByClass = append([]int64(nil), n.total.FlitMovesByClass...)
	return t
}

// ResetWindow zeroes the window counters (e.g. at a sampling-period
// boundary).
func (n *Network) ResetWindow() {
	n.window = Counters{FlitMovesByClass: make([]int64, n.numVCs)}
}

// Reseed hands fresh random streams to the workload and the router's
// tie-breaking, per the paper's sampling methodology.
func (n *Network) Reseed(seed uint64) {
	n.wl.Reseed(seed)
	n.rt = rng.NewStream(seed, 0x90f7)
}

// DeadlockError reports that the watchdog saw no flit motion for its window
// while messages were in flight.
type DeadlockError struct {
	Cycle    int64
	InFlight int
	Detail   string
	// Trace holds the most recent lifecycle events when telemetry tracing
	// was enabled — the flight recorder of the cycles leading into the
	// stall (also rendered into Detail).
	Trace []telemetry.Event
}

// Error describes the deadlock.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("network: no flit motion for %d cycles with %d messages in flight (possible deadlock)\n%s",
		e.Cycle, e.InFlight, e.Detail)
}

// Step advances the simulation one cycle: arrivals, virtual-channel
// allocation, ejection of flits that arrived in earlier cycles, then
// channel arbitration and flit transfer. Ejecting before transferring makes
// consumption take one cycle, so an unloaded message's latency is exactly
// eq. (2)'s (ml + d - 1) cycles.
func (n *Network) Step() error {
	if n.prof != nil {
		n.prof.Begin()
	}
	n.inject()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseInject)
	}
	n.allocate()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseRoute)
	}
	n.eject()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseEject)
	}
	moved := n.transfer()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseTransfer)
	}
	if moved {
		n.lastMotion = n.now
	}
	n.now++
	n.window.Cycles++
	n.total.Cycles++
	if n.tel != nil {
		n.tel.EndCycle()
	}
	if n.cfg.WatchdogCycles > 0 && n.inFlight > 0 && n.now-n.lastMotion > n.cfg.WatchdogCycles {
		err := &DeadlockError{Cycle: n.now - n.lastMotion, InFlight: n.inFlight, Detail: n.describeStuck(8)}
		if n.tel != nil && n.tel.Tracing() {
			for i, w := range n.WormStates() {
				if i >= 8 {
					break
				}
				n.tel.Kill(n.now, w.ID, w.HeadNode)
			}
			err.Trace = n.tel.LastEvents(32)
			err.Detail += "last trace events:\n" + telemetry.FormatEvents(err.Trace)
		}
		if n.prof != nil {
			n.prof.Mark(telemetry.PhaseWatchdog)
		}
		return err
	}
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseWatchdog)
	}
	return nil
}

// Run advances the simulation the given number of cycles.
func (n *Network) Run(cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// inject generates this cycle's arrivals and admits them through congestion
// control onto injection slots.
func (n *Network) inject() {
	n.arrivals = n.wl.Arrivals(n.now, n.arrivals[:0])
	for _, a := range n.arrivals {
		n.window.Generated++
		n.total.Generated++
		m := message.New(n.g, n.nextMsgID, a.Src, a.Dst, n.cfg.MsgLen, n.now, func(int) bool { return n.rt.Bernoulli(0.5) })
		n.nextMsgID++
		n.alg.Init(n.g, m)
		if !n.limiter.Admit(a.Src, m.Class) {
			n.window.Dropped++
			n.total.Dropped++
			if n.tel != nil {
				n.tel.Drop(n.now, m.ID, a.Src, a.Dst)
			}
			continue
		}
		n.window.Admitted++
		n.total.Admitted++
		n.inFlight++
		s := &vc{msg: m, node: a.Src, ch: -1, flits: m.Len}
		n.addActive(s)
		if n.tel != nil {
			n.tel.Inject(n.now, m.ID, a.Src, a.Dst)
			n.tel.InjEnqueue()
		}
	}
}

// addActive appends s to the active list.
func (n *Network) addActive(s *vc) {
	s.activeIdx = len(n.active)
	n.active = append(n.active, s)
}

// removeActive swap-removes s from the active list.
func (n *Network) removeActive(s *vc) {
	last := len(n.active) - 1
	i := s.activeIdx
	n.active[i] = n.active[last]
	n.active[i].activeIdx = i
	n.active = n.active[:last]
	s.activeIdx = -1
}

// allocate routes headers: every live vc holding an unrouted header tries to
// acquire an output virtual channel.
func (n *Network) allocate() {
	count := len(n.active)
	if count == 0 {
		return
	}
	// Rotate the scan start each cycle so no node gets a standing priority
	// in virtual-channel contention.
	start := n.rt.Intn(count)
	for i := 0; i < count; i++ {
		s := n.active[(start+i)%count]
		if s.routed || s.recvd == 0 && s.ch != -1 {
			continue
		}
		if s.msg == nil || n.now < s.routeReadyAt {
			continue
		}
		if s.ch == -1 && n.cfg.InjectionPorts > 0 && int(n.injecting[s.node]) >= n.cfg.InjectionPorts {
			continue // all injection ports busy; wait for one to free up
		}
		if !n.route(s) && n.tel != nil {
			n.tel.HeadBlocked(s.msg.Class)
		}
	}
}

// route attempts virtual-channel allocation for the header in s and reports
// whether the header is routed afterwards.
func (n *Network) route(s *vc) bool {
	m := s.msg
	node := s.node
	if m.Dst == node {
		s.routed = true
		s.outCh = -1
		return true
	}
	n.cands = n.alg.Candidates(n.g, m, node, n.cands[:0])
	n.freeCands = n.freeCands[:0]
	n.freeScores = n.freeScores[:0]
	for _, c := range n.cands {
		ch := n.g.ChannelIndex(node, c.Dim, c.Dir)
		if !n.g.HasChannel(node, c.Dim, c.Dir) {
			continue
		}
		t := &n.vcs[ch*n.numVCs+c.VC]
		if t.msg != nil {
			continue
		}
		n.freeCands = append(n.freeCands, c)
		n.freeScores = append(n.freeScores, int(n.owners[ch]))
	}
	if len(n.freeCands) == 0 {
		return false
	}
	pick := n.policy.Select(n.freeCands, n.freeScores, n.rt)
	c := n.freeCands[pick]
	ch := n.g.ChannelIndex(node, c.Dim, c.Dir)
	t := &n.vcs[ch*n.numVCs+c.VC]
	t.msg = m
	t.flits, t.recvd, t.sent = 0, 0, 0
	t.routed = false
	t.routeReadyAt = 0
	t.outCh = 0
	n.owners[ch]++
	n.addActive(t)
	s.routed = true
	s.outCh = ch
	s.outVC = c.VC
	s.outDim = c.Dim
	s.outDir = c.Dir
	if s.ch == -1 {
		n.injecting[s.node]++
	}
	n.alg.Allocated(n.g, m, node, c)
	if n.tel != nil {
		n.tel.VCAlloc(n.now, m.ID, node, ch, c.VC)
		n.tel.VCAcquired(c.VC)
	}
	return true
}

// transfer performs channel arbitration and moves at most one flit per
// physical channel, two-phase: all decisions are made against start-of-cycle
// state, then applied. It reports whether any flit moved (including
// ejection-side drains recorded by eject, which calls back via markMotion).
func (n *Network) transfer() bool {
	// Phase 1: collect requesters per physical channel.
	n.touched = n.touched[:0]
	for _, s := range n.active {
		if !s.routed || s.outCh < 0 || s.flits == 0 {
			continue
		}
		t := &n.vcs[s.outCh*n.numVCs+s.outVC]
		if t.flits >= n.cfg.BufDepth {
			continue // no credit downstream
		}
		if len(n.reqs[s.outCh]) == 0 {
			n.touched = append(n.touched, s.outCh)
		}
		n.reqs[s.outCh] = append(n.reqs[s.outCh], s)
	}
	// Phase 2: pick one winner per channel (rotating priority) and move its
	// flit.
	n.moves = n.moves[:0]
	for _, ch := range n.touched {
		req := n.reqs[ch]
		winner := req[int(n.rr[ch])%len(req)]
		n.rr[ch]++
		n.moves = append(n.moves, winner)
		n.reqs[ch] = req[:0]
	}
	if n.cfg.HalfDuplex && len(n.moves) > 1 {
		n.moves = n.dropReverseConflicts(n.moves)
	}
	for _, s := range n.moves {
		n.applyMove(s)
	}
	return len(n.moves) > 0

}

// dropReverseConflicts enforces half-duplex links: when both directions of
// a link won arbitration this cycle, only one (alternating per link) keeps
// its grant.
func (n *Network) dropReverseConflicts(moves []*vc) []*vc {
	byCh := make(map[int]*vc, len(moves))
	for _, s := range moves {
		byCh[s.outCh] = s
	}
	dropped := map[*vc]bool{}
	for _, s := range moves {
		up, dim, dir := n.g.ChannelInfo(s.outCh)
		down := n.g.Neighbor(up, dim, dir)
		rev := n.g.ChannelIndex(down, dim, dir.Opposite())
		if s.outCh > rev {
			continue // each conflicting pair is handled from its lower side
		}
		r, both := byCh[rev]
		if !both {
			continue
		}
		// Alternate the winner per link across cycles.
		n.rr[s.outCh]++
		if n.rr[s.outCh]%2 == 0 {
			dropped[s] = true
		} else {
			dropped[r] = true
		}
	}
	if len(dropped) == 0 {
		return moves
	}
	kept := moves[:0]
	for _, s := range moves {
		if !dropped[s] {
			kept = append(kept, s)
		}
	}
	return kept
}

// applyMove transfers one flit from s across its output channel.
func (n *Network) applyMove(s *vc) {
	m := s.msg
	t := &n.vcs[s.outCh*n.numVCs+s.outVC]
	s.flits--
	s.sent++
	t.flits++
	t.recvd++
	n.window.FlitMoves++
	n.total.FlitMoves++
	n.window.FlitMovesByClass[s.outVC]++
	n.total.FlitMovesByClass[s.outVC]++
	n.flitsByChannel[s.outCh]++
	if n.tel != nil {
		n.tel.FlitMove(s.outCh)
	}
	if t.recvd == 1 {
		// Header hop completed: update the message's routing state from the
		// upstream node's viewpoint.
		up, dim, dir := n.g.ChannelInfo(s.outCh)
		m.Advance(n.g, dim, dir, n.g.Coord(up, dim), n.g.Parity(up))
		t.routeReadyAt = n.now + 1 + int64(n.cfg.RouteDelay)
		if n.cfg.OnHeaderHop != nil {
			n.cfg.OnHeaderHop(m, t.node, dim, dir)
		}
		if n.tel != nil {
			n.tel.Hop(n.now, m.ID, t.node, s.outCh, s.outVC)
		}
	}
	if s.sent == m.Len {
		// Tail has left this buffer: release it.
		if s.ch == -1 {
			n.limiter.Release(s.node, m.Class)
			n.injecting[s.node]--
			if n.tel != nil {
				n.tel.InjDequeue()
			}
		} else {
			n.owners[s.ch]--
			if n.tel != nil {
				n.tel.VCReleased(s.class)
			}
		}
		n.removeActive(s)
		s.msg = nil
	}
}

// eject drains every buffer whose message has reached its destination; the
// paper's node model consumes arriving flits without competing for network
// channels.
func (n *Network) eject() {
	for i := 0; i < len(n.active); i++ {
		s := n.active[i]
		if !s.routed || s.outCh != -1 || s.flits == 0 || s.ch == -1 {
			continue
		}
		m := s.msg
		s.sent += s.flits
		s.flits = 0
		n.lastMotion = n.now
		if s.sent == m.Len {
			m.DeliverTime = n.now
			n.owners[s.ch]--
			n.removeActive(s)
			s.msg = nil
			i-- // the swapped-in element must be visited too
			n.inFlight--
			n.window.Delivered++
			n.total.Delivered++
			if n.tel != nil {
				n.tel.VCReleased(s.class)
				n.tel.Deliver(n.now, m.ID, m.Dst)
			}
			if n.cfg.OnDeliver != nil {
				n.cfg.OnDeliver(m)
			}
		}
	}
}

// Drain runs until no messages are in flight or maxCycles pass; it reports
// an error on deadlock or if the deadline is hit with messages still
// in flight. The workload keeps injecting during a drain only if it still
// has arrivals (use a zero-rate or exhausted workload to quiesce).
func (n *Network) Drain(maxCycles int64) error {
	for i := int64(0); i < maxCycles; i++ {
		if n.inFlight == 0 {
			return nil
		}
		if err := n.Step(); err != nil {
			return err
		}
	}
	if n.inFlight > 0 {
		return fmt.Errorf("network: %d messages still in flight after %d drain cycles", n.inFlight, maxCycles)
	}
	return nil
}

// Limiter exposes the congestion limiter (nil when disabled).
func (n *Network) Limiter() *congestion.Limiter { return n.limiter }

// EffectiveChannels returns the channel count to normalize utilization by:
// the grid's unidirectional channel count, halved under half-duplex links.
func (n *Network) EffectiveChannels() int {
	if n.cfg.HalfDuplex {
		return n.g.NumChannels() / 2
	}
	return n.g.NumChannels()
}

// ChannelFlitCounts returns lifetime flit transfers per physical channel,
// indexed by the grid's dense channel index (mesh boundary slots stay 0).
func (n *Network) ChannelFlitCounts() []int64 {
	return append([]int64(nil), n.flitsByChannel...)
}

// OccupiedVCsByClass returns how many virtual channels of each class are
// currently owned by a worm.
func (n *Network) OccupiedVCsByClass() []int {
	counts := make([]int, n.numVCs)
	for _, s := range n.active {
		if s.ch >= 0 && s.msg != nil {
			counts[s.class]++
		}
	}
	return counts
}

// WormStates returns the canonical in-flight state: one telemetry.WormState
// per live worm, sorted by message ID, with each worm's held buffers ordered
// injection slot first and then upstream to downstream. Snapshot, the
// deadlock report and external tooling all render from this single model, so
// a worm whose *message.Message is shared across several virtual channels
// appears exactly once, deterministically.
func (n *Network) WormStates() []telemetry.WormState {
	slots := map[int64][]*vc{}
	ids := make([]int64, 0, n.inFlight)
	for _, s := range n.active {
		if s.msg == nil {
			continue
		}
		if _, ok := slots[s.msg.ID]; !ok {
			ids = append(ids, s.msg.ID)
		}
		slots[s.msg.ID] = append(slots[s.msg.ID], s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	states := make([]telemetry.WormState, 0, len(ids))
	for _, id := range ids {
		held := slots[id]
		// Injection slot first, then upstream to downstream: lifetime
		// received-flit counts are non-increasing along a worm's channel
		// chain (a buffer cannot receive more than its upstream forwarded),
		// with the channel index as a deterministic tie-break.
		sort.Slice(held, func(i, j int) bool {
			a, b := held[i], held[j]
			if (a.ch == -1) != (b.ch == -1) {
				return a.ch == -1
			}
			if a.recvd != b.recvd {
				return a.recvd > b.recvd
			}
			return a.ch < b.ch
		})
		m := held[0].msg
		w := telemetry.WormState{
			ID: m.ID, Src: m.Src, Dst: m.Dst, Len: m.Len,
			HopsTaken: m.HopsTaken, HopsTotal: m.HopsTotal,
			Holding: make([]telemetry.VCHold, len(held)),
		}
		for i, s := range held {
			w.Holding[i] = telemetry.VCHold{Ch: s.ch, Class: s.class, Node: s.node, Flits: s.flits}
			// The header sits in the buffer that has forwarded nothing yet:
			// the injection slot before the first hop, or the deepest buffer
			// that has received at least one flit.
			if s.sent == 0 && (s.recvd > 0 || s.ch == -1) {
				w.Routed = s.routed
				w.HeadNode = s.node
			}
		}
		states = append(states, w)
	}
	return states
}

// describeStuck renders up to limit stuck worms for deadlock diagnostics.
func (n *Network) describeStuck(limit int) string {
	states := n.WormStates()
	var b strings.Builder
	for i, w := range states {
		if i >= limit {
			fmt.Fprintf(&b, "  ... and %d more\n", len(states)-limit)
			break
		}
		fmt.Fprintf(&b, "  %v head at %s\n", w, nodeName(n.g, w.HeadNode))
	}
	return b.String()
}

// nodeName renders a node id with coordinates for diagnostics.
func nodeName(g *topology.Grid, id int) string {
	if id < 0 {
		return "edge"
	}
	coords := make([]int, g.N())
	return fmt.Sprintf("%d%v", id, g.Coords(id, coords))
}
