// Package network is the flit-level discrete-event simulator at the heart
// of the reproduction: wormhole-switched k-ary n-cubes and meshes with
// virtual channels time-multiplexed on unidirectional physical channels,
// header-driven virtual-channel allocation, credit-based flit flow control,
// injection-side congestion control and a deadlock watchdog.
//
// # Model
//
// Every physical channel carries one flit per cycle (the paper's ft = 1) and
// hosts V virtual channels, each with a small flit buffer at its receiving
// node. A message (worm) advances as a pipeline: its header allocates one
// virtual channel per hop, chosen by the routing algorithm among the
// admissible candidates that are currently free; body flits follow the
// header's path; the tail releases each virtual channel as it passes.
// Blocked worms hold their channels, which is precisely what distinguishes
// wormhole from virtual cut-through: with BufDepth >= message length a
// blocked worm instead fits entirely in one node's buffer and frees its
// upstream channels, so the same engine simulates the paper's sec. 3.4
// virtual cut-through experiment.
//
// Flits of one message are indistinguishable and FIFO, so buffers track
// counts rather than flit objects: each virtual channel records how many
// flits it currently buffers and how many it has received and forwarded in
// total. The header is "present" when one flit has been received and none
// forwarded; the tail "passes" when the forwarded count reaches the message
// length.
//
// The simulator is cycle-driven with a two-phase transfer step (decide all
// moves from start-of-cycle state, then apply), which makes a cycle
// equivalent to the event-driven simulation of the paper at ft = 1 while
// staying deterministic for a given seed.
//
// # Data layout
//
// Virtual-channel state lives in parallel struct-of-arrays slices indexed by
// a dense vc id (ch*numVCs+class for channel buffers, ids past that for
// injection slots), and the per-channel topology facts the cycle path needs
// (endpoints, direction, reverse channel, Advance inputs) are precomputed
// into flat tables at construction (see tables.go). The steady-state cycle
// allocates nothing: messages come from a free-list pool, arbitration and
// rendering use reusable scratch buffers, and every closure the hot path
// calls is created once in New.
package network

import (
	"fmt"

	"wormsim/internal/congestion"
	"wormsim/internal/forensics"
	"wormsim/internal/message"
	"wormsim/internal/rng"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Config describes one simulated network.
type Config struct {
	// Grid is the topology (required).
	Grid *topology.Grid
	// Algorithm is the wormhole routing algorithm (required).
	Algorithm routing.Algorithm
	// Policy selects among free candidate output virtual channels; nil means
	// routing.RandomPolicy.
	Policy routing.SelectionPolicy
	// Workload generates arrivals (required).
	Workload traffic.Workload
	// MsgLen is the message length in flits (paper: 16).
	MsgLen int
	// BufDepth is the per-virtual-channel flit buffer depth. The default 2
	// lets an unblocked worm sustain one flit per cycle per channel;
	// >= MsgLen yields virtual cut-through behaviour.
	BufDepth int
	// CCLimit is the congestion-control per-class message limit at each
	// source (0 disables congestion control).
	CCLimit int
	// InjectionPorts caps how many messages per node may be actively
	// injecting (holding a first-hop virtual channel) at once; queued
	// messages wait their turn. 0 means unlimited.
	InjectionPorts int
	// Seed drives direction tie-breaking and adaptive selection.
	Seed uint64
	// RouteDelay models router pipeline latency: a header that arrives at a
	// node waits this many cycles before it may bid for an output virtual
	// channel. 0 (the default, the paper's idealization) routes in the
	// arrival cycle. The paper's discussion notes adaptive routing logic
	// "could increase the node delay per hop" — this knob quantifies that
	// claim (bench A-RTD).
	RouteDelay int
	// HalfDuplex couples each pair of opposite channels into one
	// bidirectional link carrying one flit per cycle in total — the channel
	// model of Song's study that the paper's footnote 5 compares against
	// ("the use of two unidirectional channels ... results in lower
	// throughputs"). Utilization should then be normalized by half the
	// channel count (see EffectiveChannels).
	HalfDuplex bool
	// WatchdogCycles is how long the network may go without any flit
	// movement while messages are in flight before Step reports a deadlock
	// (default 20000; < 0 disables).
	WatchdogCycles int64
	// MsgPool, if set, supplies the message free list; sharing one across
	// back-to-back runs lets later runs start warm. nil gives the network a
	// private pool. Pooling never changes results: recycled messages are
	// reinitialized through the same code path message.New uses, consuming
	// identical RNG draws (see message.Pool).
	MsgPool *message.Pool
	// OnDeliver, if set, is called for every delivered message with the
	// delivery cycle already recorded. The *message.Message is recycled
	// after the callback returns: copy what you need, do not retain the
	// pointer across cycles.
	OnDeliver func(*message.Message)
	// OnHeaderHop, if set, is called whenever a header flit completes a hop
	// into the given node over (dim, dir) — a flight recorder for path
	// verification and visualization. Like OnDeliver, m is engine-owned and
	// valid only for the duration of the callback: copy what you need, do
	// not retain the pointer.
	OnHeaderHop func(m *message.Message, node int, dim int, dir topology.Dir)
	// Telemetry, if set, receives per-cycle metrics and sampled worm
	// lifecycle events. It must be sized for this network (telemetry.New
	// with the grid's channel slots and the algorithm's NumVCs). nil
	// disables collection at near-zero cost: every hook is a nil check.
	Telemetry *telemetry.Collector
	// Phases, if set, attributes wall-clock time to the engine's pipeline
	// stages (inject, route, eject, transfer, watchdog) — the self-profiling
	// feed behind the CLIs' -phaseprof flag and the observatory's
	// wormsim_phase_seconds_total metric. Like Telemetry, nil costs one
	// branch per hook and an attached profiler never alters results.
	Phases *telemetry.PhaseProfiler
	// Forensics, if set, receives sampled wait-for graph captures and
	// per-worm latency anatomy (forensics.New with the grid's channel
	// slots). Like Telemetry, nil costs one branch per hook, the analyzer
	// consumes no random draws, and an attached analyzer is bit-identical to
	// a detached one.
	Forensics *forensics.Analyzer
}

// outRoute is the output allocation of a routed header: the output physical
// channel (outEject for ejection at the destination, outNone while the
// header is unrouted), the virtual channel on it, and the decoded direction
// of travel. Folding "unrouted" into the channel field lets the transfer and
// eject scans classify a vc from this one record instead of also loading the
// routed flag.
type outRoute struct {
	ch  int32
	vc  int16
	dim int8
	dir int8
}

const (
	// outEject marks a routed header consuming at its destination.
	outEject = -1
	// outNone marks an unallocated output (header not yet routed).
	outNone = -2
)

// Counters is a snapshot of a measurement window.
type Counters struct {
	// Cycles covered by the window.
	Cycles int64
	// FlitMoves counts flit transfers across physical channels.
	FlitMoves int64
	// Generated, Admitted, Dropped and Delivered count messages.
	Generated int64
	Admitted  int64
	Dropped   int64
	Delivered int64
	// FlitMovesByClass breaks FlitMoves down by virtual-channel class, the
	// paper's virtual-channel load-balance observable.
	FlitMovesByClass []int64
}

// Utilization returns achieved normalized throughput: flit moves per cycle
// per physical channel (eq. (3) of the paper).
func (c Counters) Utilization(channels int) float64 {
	if c.Cycles == 0 || channels == 0 {
		return 0
	}
	return float64(c.FlitMoves) / (float64(c.Cycles) * float64(channels))
}

// Network is a running simulation. Create with New; advance with Step or
// Run.
type Network struct {
	cfg    Config
	g      *topology.Grid
	alg    routing.Algorithm
	policy routing.SelectionPolicy
	wl     traffic.Workload
	numVCs int
	nDims  int
	// msgLen mirrors cfg.MsgLen: every message has this length, so the
	// tail-passed tests compare against it without loading the message.
	msgLen  int32
	limiter *congestion.Limiter
	rt      *rng.Stream
	tel     *telemetry.Collector
	prof    *telemetry.PhaseTimer
	fore    *forensics.Analyzer
	// foreSampling caches StartCycle's verdict for the current cycle so the
	// allocation loop tests a bool instead of re-deriving the sample phase.
	foreSampling bool
	pool         *message.Pool
	// tieFn is the half-ring tie-break passed to the message pool — a method
	// value bound once here so inject closes over nothing per call.
	tieFn func(int) bool

	now        int64
	nextMsgID  int64
	inFlight   int
	lastMotion int64

	// tbl holds the per-channel topology tables (tables.go).
	tbl chanTable

	// Virtual-channel state, struct-of-arrays: index ch*numVCs+class is the
	// input buffer of that virtual channel at the channel's downstream node;
	// indices >= chanVCs are injection slots, recycled through injFree.
	// vcNode is where a buffer's flits reside (the downstream node, or the
	// source node for an injection slot); vcCh is the owning physical
	// channel (-1 for injection slots); vcFlits counts currently buffered
	// flits while vcRecvd/vcSent are lifetime totals (an injection slot
	// starts with vcFlits = message length); vcRouted marks headers with an
	// assigned output; vcReady is the earliest cycle a header may bid for an
	// output (arrival + RouteDelay); vcAIdx is the slot's position in active
	// for swap-removal.
	chanVCs  int32
	vcMsg    []*message.Message
	vcNode   []int32
	vcCh     []int32
	vcClass  []int16
	vcFlits  []int32
	vcRecvd  []int32
	vcSent   []int32
	vcRouted []bool
	vcOut    []outRoute
	vcReady  []int64
	vcAIdx   []int32

	// active lists every live vc id (owned buffers and injection slots);
	// injFree is the free list of injection-slot ids.
	active  []int32
	injFree []int32

	// Per-channel round-robin pointer and owner count (congestion score).
	rr     []uint32
	owners []int32
	// flitsByChannel counts lifetime flit transfers per physical channel
	// slot, for load-balance analysis.
	flitsByChannel []int64
	// injecting counts actively injecting messages per node (InjectionPorts
	// enforcement).
	injecting []int32

	// Scratch, reused across cycles.
	arrivals   []traffic.Arrival
	cands      []routing.Candidate
	freeCands  []routing.Candidate
	freeScores []int
	moves      []int32
	reqs       [][]int32
	touched    []int32
	// Half-duplex arbitration scratch: generation-stamped per-channel marks
	// replace the per-cycle maps a naive implementation would build. A slot
	// is valid only when its generation equals revGen, so clearing is one
	// counter increment.
	revGen     uint32
	chMoverGen []uint32
	chDropGen  []uint32
	// Worm-state rendering scratch (snapshot.go).
	wormRefs []wormRef
	wormSort wormRefSort

	// window holds the live counters; base accumulates closed windows.
	// Lifetime totals are base+window, materialized in Total, so the hot
	// path increments each counter once instead of twice.
	window Counters
	base   Counters
}

// New validates cfg and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Grid == nil || cfg.Algorithm == nil || cfg.Workload == nil {
		return nil, fmt.Errorf("network: Grid, Algorithm and Workload are required")
	}
	if err := cfg.Algorithm.Compatible(cfg.Grid); err != nil {
		return nil, err
	}
	if cfg.MsgLen <= 0 {
		cfg.MsgLen = 16
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 2
	}
	if cfg.BufDepth < 1 {
		return nil, fmt.Errorf("network: BufDepth %d must be >= 1", cfg.BufDepth)
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 20000
	}
	if cfg.Policy == nil {
		cfg.Policy = routing.RandomPolicy{}
	}
	g := cfg.Grid
	n := &Network{
		cfg:     cfg,
		g:       g,
		alg:     cfg.Algorithm,
		policy:  cfg.Policy,
		wl:      cfg.Workload,
		numVCs:  cfg.Algorithm.NumVCs(g),
		nDims:   g.N(),
		msgLen:  int32(cfg.MsgLen),
		limiter: congestion.NewLimiter(g.Nodes(), cfg.CCLimit),
		rt:      rng.NewStream(cfg.Seed, 0x90f7),
		tel:     cfg.Telemetry,
		prof:    cfg.Phases.Timer(),
		fore:    cfg.Forensics,
		pool:    cfg.MsgPool,
	}
	if n.pool == nil {
		n.pool = message.NewPool()
	}
	n.tieFn = n.tieBreak
	slots := g.ChannelSlots()
	if n.tel != nil {
		if chs, classes := n.tel.Dims(); chs != slots || classes != n.numVCs {
			return nil, fmt.Errorf("network: telemetry collector sized for %d channels / %d classes, need %d / %d",
				chs, classes, slots, n.numVCs)
		}
	}
	if n.fore != nil {
		if chs := n.fore.Channels(); chs != slots {
			return nil, fmt.Errorf("network: forensics analyzer sized for %d channels, need %d", chs, slots)
		}
	}
	n.tbl = buildChanTable(g)
	n.chanVCs = int32(slots * n.numVCs)
	size := int(n.chanVCs)
	n.vcMsg = make([]*message.Message, size)
	n.vcNode = make([]int32, size)
	n.vcCh = make([]int32, size)
	n.vcClass = make([]int16, size)
	n.vcFlits = make([]int32, size)
	n.vcRecvd = make([]int32, size)
	n.vcSent = make([]int32, size)
	n.vcRouted = make([]bool, size)
	n.vcOut = make([]outRoute, size)
	n.vcReady = make([]int64, size)
	n.vcAIdx = make([]int32, size)
	for ch := 0; ch < slots; ch++ {
		for class := 0; class < n.numVCs; class++ {
			id := ch*n.numVCs + class
			n.vcCh[id] = int32(ch)
			n.vcClass[id] = int16(class)
			// -1 on mesh boundaries; such slots stay unused.
			n.vcNode[id] = n.tbl.down[ch]
			n.vcAIdx[id] = -1
			n.vcOut[id] = outRoute{ch: outNone}
		}
	}
	n.rr = make([]uint32, slots)
	n.owners = make([]int32, slots)
	n.injecting = make([]int32, g.Nodes())
	n.flitsByChannel = make([]int64, slots)
	n.reqs = make([][]int32, slots)
	n.chMoverGen = make([]uint32, slots)
	n.chDropGen = make([]uint32, slots)
	n.window.FlitMovesByClass = make([]int64, n.numVCs)
	n.base.FlitMovesByClass = make([]int64, n.numVCs)
	return n, nil
}

// tieBreak resolves half-ring direction ties at injection; bound as a method
// value (tieFn) so the hot path never allocates a closure for it.
func (n *Network) tieBreak(int) bool { return n.rt.Bernoulli(0.5) }

// Grid returns the topology.
func (n *Network) Grid() *topology.Grid { return n.g }

// NumVCs returns the virtual channels per physical channel in use.
func (n *Network) NumVCs() int { return n.numVCs }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// InFlight returns the number of admitted messages not yet delivered.
func (n *Network) InFlight() int { return n.inFlight }

// Pool returns the message free list in use (for sharing across runs and for
// reuse diagnostics).
func (n *Network) Pool() *message.Pool { return n.pool }

// Window returns the counters accumulated since the last ResetWindow.
func (n *Network) Window() Counters {
	w := n.window
	w.FlitMovesByClass = append([]int64(nil), n.window.FlitMovesByClass...)
	return w
}

// Total returns the counters accumulated since construction: the closed
// windows plus the live one.
func (n *Network) Total() Counters {
	t := n.base
	t.Cycles += n.window.Cycles
	t.FlitMoves += n.window.FlitMoves
	t.Generated += n.window.Generated
	t.Admitted += n.window.Admitted
	t.Dropped += n.window.Dropped
	t.Delivered += n.window.Delivered
	t.FlitMovesByClass = append([]int64(nil), n.base.FlitMovesByClass...)
	for i, v := range n.window.FlitMovesByClass {
		t.FlitMovesByClass[i] += v
	}
	return t
}

// ResetWindow folds the window counters into the lifetime base and zeroes
// them (e.g. at a sampling-period boundary).
func (n *Network) ResetWindow() {
	n.base.Cycles += n.window.Cycles
	n.base.FlitMoves += n.window.FlitMoves
	n.base.Generated += n.window.Generated
	n.base.Admitted += n.window.Admitted
	n.base.Dropped += n.window.Dropped
	n.base.Delivered += n.window.Delivered
	for i, v := range n.window.FlitMovesByClass {
		n.base.FlitMovesByClass[i] += v
		n.window.FlitMovesByClass[i] = 0
	}
	byClass := n.window.FlitMovesByClass
	n.window = Counters{FlitMovesByClass: byClass}
}

// Reseed hands fresh random streams to the workload and the router's
// tie-breaking, per the paper's sampling methodology.
func (n *Network) Reseed(seed uint64) {
	n.wl.Reseed(seed)
	n.rt = rng.NewStream(seed, 0x90f7)
}

// DeadlockError reports that the watchdog saw no flit motion for its window
// while messages were in flight.
type DeadlockError struct {
	Cycle    int64
	InFlight int
	Detail   string
	// Blame is the forensics stall report (dominant congestion-tree root
	// and wait-for cycle witness) when an analyzer was attached — also the
	// first lines of Detail.
	Blame string
	// Trace holds the most recent lifecycle events when telemetry tracing
	// was enabled — the flight recorder of the cycles leading into the
	// stall (also rendered into Detail).
	Trace []telemetry.Event
}

// Error describes the deadlock.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("network: no flit motion for %d cycles with %d messages in flight (possible deadlock)\n%s",
		e.Cycle, e.InFlight, e.Detail)
}

// Step advances the simulation one cycle: arrivals, virtual-channel
// allocation, ejection of flits that arrived in earlier cycles, then
// channel arbitration and flit transfer. Ejecting before transferring makes
// consumption take one cycle, so an unloaded message's latency is exactly
// eq. (2)'s (ml + d - 1) cycles.
func (n *Network) Step() error {
	if n.prof != nil {
		n.prof.Begin()
	}
	if n.fore != nil {
		n.foreSampling = n.fore.StartCycle(n.now)
	}
	n.inject()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseInject)
	}
	n.allocate()
	if n.fore != nil && n.foreSampling {
		// Resolve within the cycle, while the captured slot ids are live.
		n.fore.Resolve(n.now)
	}
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseRoute)
	}
	moved := n.transfer()
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseTransfer)
	}
	if moved {
		n.lastMotion = n.now
	}
	n.now++
	n.window.Cycles++
	if n.tel != nil {
		n.tel.EndCycle()
	}
	if n.cfg.WatchdogCycles > 0 && n.inFlight > 0 && n.now-n.lastMotion > n.cfg.WatchdogCycles {
		err := &DeadlockError{Cycle: n.now - n.lastMotion, InFlight: n.inFlight, Detail: n.describeStuck(8)}
		if n.fore != nil {
			// Lead with causality: the blame root and any wait-for cycle
			// witness come before the raw stuck-worm dump.
			if blame := n.fore.StallReport(); blame != "" {
				err.Blame = blame
				err.Detail = blame + err.Detail
			}
		}
		if n.tel != nil && n.tel.Tracing() {
			for i, w := range n.WormStates() {
				if i >= 8 {
					break
				}
				n.tel.Kill(n.now, w.ID, w.HeadNode)
			}
			err.Trace = n.tel.LastEvents(32)
			err.Detail += "last trace events:\n" + telemetry.FormatEvents(err.Trace)
		}
		if n.prof != nil {
			n.prof.Mark(telemetry.PhaseWatchdog)
		}
		return err
	}
	if n.prof != nil {
		n.prof.Mark(telemetry.PhaseWatchdog)
	}
	return nil
}

// Run advances the simulation the given number of cycles.
func (n *Network) Run(cycles int64) error {
	for i := int64(0); i < cycles; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// inject generates this cycle's arrivals and admits them through congestion
// control onto injection slots.
func (n *Network) inject() {
	n.arrivals = n.wl.Arrivals(n.now, n.arrivals[:0])
	for _, a := range n.arrivals {
		n.window.Generated++
		m := n.pool.Get(n.g, n.nextMsgID, a.Src, a.Dst, n.cfg.MsgLen, n.now, n.tieFn)
		n.nextMsgID++
		n.alg.Init(n.g, m)
		if !n.limiter.Admit(a.Src, m.Class) {
			n.window.Dropped++
			if n.tel != nil {
				n.tel.Drop(n.now, m.ID, a.Src, a.Dst)
			}
			n.pool.Put(m)
			continue
		}
		n.window.Admitted++
		n.inFlight++
		id := n.newInjSlot()
		n.vcMsg[id] = m
		n.vcNode[id] = int32(a.Src)
		n.vcFlits[id] = int32(m.Len)
		n.vcRecvd[id] = 0
		n.vcSent[id] = 0
		n.vcRouted[id] = false
		n.vcOut[id] = outRoute{ch: outNone}
		n.vcReady[id] = 0
		n.addActive(id)
		if n.tel != nil {
			n.tel.Inject(n.now, m.ID, a.Src, a.Dst)
			n.tel.InjEnqueue()
		}
	}
}

// newInjSlot returns a free injection-slot id, growing the state arrays when
// the free list is empty. Slot count stabilizes at the run's peak concurrent
// injections, after which inject allocates nothing.
func (n *Network) newInjSlot() int32 {
	if k := len(n.injFree); k > 0 {
		id := n.injFree[k-1]
		n.injFree = n.injFree[:k-1]
		return id
	}
	id := int32(len(n.vcMsg))
	n.vcMsg = append(n.vcMsg, nil)
	n.vcNode = append(n.vcNode, 0)
	n.vcCh = append(n.vcCh, -1)
	n.vcClass = append(n.vcClass, 0)
	n.vcFlits = append(n.vcFlits, 0)
	n.vcRecvd = append(n.vcRecvd, 0)
	n.vcSent = append(n.vcSent, 0)
	n.vcRouted = append(n.vcRouted, false)
	n.vcOut = append(n.vcOut, outRoute{ch: outNone})
	n.vcReady = append(n.vcReady, 0)
	n.vcAIdx = append(n.vcAIdx, -1)
	return id
}

// addActive appends the vc id to the active list.
func (n *Network) addActive(id int32) {
	n.vcAIdx[id] = int32(len(n.active))
	n.active = append(n.active, id)
}

// removeActive swap-removes the vc id from the active list.
func (n *Network) removeActive(id int32) {
	last := len(n.active) - 1
	i := n.vcAIdx[id]
	moved := n.active[last]
	n.active[i] = moved
	n.vcAIdx[moved] = i
	n.active = n.active[:last]
	n.vcAIdx[id] = -1
}

// allocate routes headers: every live vc holding an unrouted header tries to
// acquire an output virtual channel.
func (n *Network) allocate() {
	count := len(n.active)
	if count == 0 {
		return
	}
	ports := n.cfg.InjectionPorts
	// Rotate the scan start each cycle so no node gets a standing priority
	// in virtual-channel contention. The wrap is a branch, not a modulo:
	// an integer division per active vc would dominate this scan.
	idx := n.rt.Intn(count)
	// route may append to n.active (allocating a downstream vc), but growth
	// never disturbs the first count entries, so the snapshot stays valid.
	active := n.active
	vcRouted, vcRecvd, vcCh := n.vcRouted, n.vcRecvd, n.vcCh
	for i := 0; i < count; i++ {
		id := active[idx]
		idx++
		if idx == count {
			idx = 0
		}
		if vcRouted[id] || vcRecvd[id] == 0 && vcCh[id] != -1 {
			continue
		}
		m := n.vcMsg[id]
		if m == nil || n.now < n.vcReady[id] {
			continue
		}
		if n.vcCh[id] == -1 && ports > 0 && int(n.injecting[n.vcNode[id]]) >= ports {
			continue // all injection ports busy; wait for one to free up
		}
		if !n.route(id) {
			if n.tel != nil {
				n.tel.HeadBlocked(m.Class)
			}
			if n.fore != nil {
				n.foreBlocked(id, m)
			}
		}
	}
}

// route attempts virtual-channel allocation for the header in vc id and
// reports whether the header is routed afterwards.
func (n *Network) route(id int32) bool {
	m := n.vcMsg[id]
	node := int(n.vcNode[id])
	if m.Dst == node {
		n.vcRouted[id] = true
		n.vcOut[id] = outRoute{ch: outEject}
		return true
	}
	n.cands = n.alg.Candidates(n.g, m, node, n.cands[:0])
	n.freeCands = n.freeCands[:0]
	n.freeScores = n.freeScores[:0]
	for _, c := range n.cands {
		// Dense channel index, inlined (topology.Grid.ChannelIndex); the
		// down table doubles as the HasChannel test.
		ch := (node*n.nDims+c.Dim)*2 + int(c.Dir)
		if n.tbl.down[ch] < 0 {
			continue
		}
		if n.vcMsg[ch*n.numVCs+c.VC] != nil {
			continue
		}
		n.freeCands = append(n.freeCands, c)
		n.freeScores = append(n.freeScores, int(n.owners[ch]))
	}
	if len(n.freeCands) == 0 {
		return false
	}
	pick := n.policy.Select(n.freeCands, n.freeScores, n.rt)
	c := n.freeCands[pick]
	ch := (node*n.nDims+c.Dim)*2 + int(c.Dir)
	t := int32(ch*n.numVCs + c.VC)
	n.vcMsg[t] = m
	n.vcFlits[t], n.vcRecvd[t], n.vcSent[t] = 0, 0, 0
	n.vcRouted[t] = false
	n.vcReady[t] = 0
	n.vcOut[t] = outRoute{ch: outNone}
	n.owners[ch]++
	n.addActive(t)
	n.vcRouted[id] = true
	n.vcOut[id] = outRoute{ch: int32(ch), vc: int16(c.VC), dim: int8(c.Dim), dir: int8(c.Dir)}
	if n.vcCh[id] == -1 {
		n.injecting[n.vcNode[id]]++
		m.FirstAlloc = n.now
	}
	n.alg.Allocated(n.g, m, node, c)
	if n.tel != nil {
		n.tel.VCAlloc(n.now, m.ID, node, ch, c.VC)
		n.tel.VCAcquired(c.VC)
	}
	return true
}

// transfer performs ejection, channel arbitration, and flit movement in one
// pass over the active list, two-phase: all arbitration decisions are made
// against start-of-cycle state, then applied. Ejection — the paper's node
// model consumes arriving flits without competing for network channels — is
// fused into the requester scan: draining a consuming buffer in scan order
// is equivalent to a separate prior ejection pass because (a) a removal's
// swap-and-revisit reproduces exactly the element order a post-ejection scan
// would have seen, and (b) a full downstream buffer that is consuming always
// drains this cycle, so the credit check treats it as empty. It reports
// whether any flit moved across a channel (ejection drains update lastMotion
// directly).
func (n *Network) transfer() bool {
	// Phase 1: drain consuming buffers and collect requesters per physical
	// channel. An unrouted header (outNone) and a consuming one (outEject)
	// both fail the single out.ch sign test.
	touched := n.touched[:0]
	bufDepth := int32(n.cfg.BufDepth)
	numVCs := int32(n.numVCs)
	vcOut, vcFlits, reqs := n.vcOut, n.vcFlits, n.reqs
	for i := 0; i < len(n.active); i++ {
		id := n.active[i]
		out := vcOut[id]
		if out.ch < 0 {
			if out.ch == outEject && vcFlits[id] != 0 && n.vcCh[id] != -1 {
				n.vcSent[id] += vcFlits[id]
				vcFlits[id] = 0
				n.lastMotion = n.now
				if n.vcSent[id] == n.msgLen {
					n.deliver(id)
					i-- // the swapped-in element must be visited too
				}
			}
			continue
		}
		if vcFlits[id] == 0 {
			continue
		}
		t := out.ch*numVCs + int32(out.vc)
		if vcFlits[t] >= bufDepth && vcOut[t].ch != outEject {
			continue // no credit downstream (full consuming buffers drain)
		}
		if len(reqs[out.ch]) == 0 {
			touched = append(touched, out.ch)
		}
		reqs[out.ch] = append(reqs[out.ch], id)
	}
	n.touched = touched
	// Phase 2: pick one winner per channel (rotating priority) and move its
	// flit. Uncontended channels — the common case — skip the rotation
	// modulo.
	n.moves = n.moves[:0]
	for _, ch := range n.touched {
		req := n.reqs[ch]
		winner := req[0]
		if len(req) > 1 {
			winner = req[int(n.rr[ch])%len(req)]
		}
		n.rr[ch]++
		n.moves = append(n.moves, winner)
		n.reqs[ch] = req[:0]
	}
	if n.cfg.HalfDuplex && len(n.moves) > 1 {
		n.moves = n.dropReverseConflicts(n.moves)
	}
	for _, id := range n.moves {
		n.applyMove(id)
	}
	return len(n.moves) > 0

}

// dropReverseConflicts enforces half-duplex links: when both directions of
// a link won arbitration this cycle, only one (alternating per link) keeps
// its grant. Conflict detection and the drop set use generation-stamped
// per-channel scratch (valid only when the stamp equals revGen), so the
// per-cycle cost is proportional to the number of winners, with no map or
// slice allocation.
func (n *Network) dropReverseConflicts(moves []int32) []int32 {
	n.revGen++
	gen := n.revGen
	for _, id := range moves {
		n.chMoverGen[n.vcOut[id].ch] = gen
	}
	dropped := 0
	for _, id := range moves {
		ch := n.vcOut[id].ch
		rev := n.tbl.rev[ch]
		if ch > rev {
			continue // each conflicting pair is handled from its lower side
		}
		if n.chMoverGen[rev] != gen {
			continue
		}
		// Alternate the winner per link across cycles.
		n.rr[ch]++
		if n.rr[ch]%2 == 0 {
			n.chDropGen[ch] = gen
		} else {
			n.chDropGen[rev] = gen
		}
		dropped++
	}
	if dropped == 0 {
		return moves
	}
	kept := moves[:0]
	for _, id := range moves {
		if n.chDropGen[n.vcOut[id].ch] != gen {
			kept = append(kept, id)
		}
	}
	return kept
}

// applyMove transfers one flit from vc id across its output channel.
func (n *Network) applyMove(id int32) {
	out := n.vcOut[id]
	ch := int(out.ch)
	t := int32(ch*n.numVCs + int(out.vc))
	n.vcFlits[id]--
	n.vcSent[id]++
	n.vcFlits[t]++
	n.vcRecvd[t]++
	n.window.FlitMoves++
	n.window.FlitMovesByClass[out.vc]++
	n.flitsByChannel[ch]++
	if n.tel != nil {
		n.tel.FlitMove(ch)
	}
	if n.vcRecvd[t] == 1 {
		// Header hop completed: update the message's routing state from the
		// upstream node's viewpoint (precomputed in the channel tables).
		m := n.vcMsg[id]
		dim, dir := int(out.dim), topology.Dir(out.dir)
		m.Advance(n.g, dim, dir, int(n.tbl.coord[ch]), int(n.tbl.parity[ch]))
		n.vcReady[t] = n.now + 1 + int64(n.cfg.RouteDelay)
		if n.cfg.OnHeaderHop != nil {
			// Zero-copy handoff by contract: m is engine-owned and valid only
			// for the duration of the callback (see Config.OnHeaderHop).
			n.cfg.OnHeaderHop(m, int(n.vcNode[t]), dim, dir) //lint:allow hookescape (documented borrow, copying would allocate per hop)
		}
		if n.tel != nil {
			n.tel.Hop(n.now, m.ID, int(n.vcNode[t]), ch, int(out.vc))
		}
	}
	if n.vcSent[id] == n.msgLen {
		// Tail has left this buffer: release it.
		if n.vcCh[id] == -1 {
			n.limiter.Release(int(n.vcNode[id]), n.vcMsg[id].Class)
			n.injecting[n.vcNode[id]]--
			if n.tel != nil {
				n.tel.InjDequeue()
			}
			n.removeActive(id)
			n.vcMsg[id] = nil
			n.injFree = append(n.injFree, id)
		} else {
			n.owners[n.vcCh[id]]--
			if n.tel != nil {
				n.tel.VCReleased(int(n.vcClass[id]))
			}
			n.removeActive(id)
			n.vcMsg[id] = nil
		}
	}
}

// deliver completes message consumption at vc id: the tail flit has been
// drained, so the buffer is released and the message recycled.
func (n *Network) deliver(id int32) {
	m := n.vcMsg[id]
	m.DeliverTime = n.now
	n.owners[n.vcCh[id]]--
	n.removeActive(id)
	n.vcMsg[id] = nil
	n.inFlight--
	n.window.Delivered++
	if n.tel != nil {
		n.tel.VCReleased(int(n.vcClass[id]))
		n.tel.Deliver(n.now, m.ID, m.Dst)
	}
	if n.fore != nil {
		// The drain component is the unloaded latency of eq. (2), ml + d - 1,
		// plus the router pipeline delay the header paid at each hop.
		ideal := int64(m.HopsTotal)*int64(1+n.cfg.RouteDelay) + int64(n.msgLen) - 1
		n.fore.Delivered(m.Class, m.HopsTotal, m.GenTime, m.FirstAlloc, m.DeliverTime, m.HeadStalls, ideal)
	}
	if n.cfg.OnDeliver != nil {
		// Zero-copy handoff by contract: m is pooled and valid only for the
		// duration of the callback (see Config.OnDeliver) — it is recycled on
		// the next line.
		n.cfg.OnDeliver(m) //lint:allow hookescape (documented borrow, copying would defeat the message pool)
	}
	n.pool.Put(m)
}

// Drain runs until no messages are in flight or maxCycles pass; it reports
// an error on deadlock or if the deadline is hit with messages still
// in flight. The workload keeps injecting during a drain only if it still
// has arrivals (use a zero-rate or exhausted workload to quiesce).
func (n *Network) Drain(maxCycles int64) error {
	for i := int64(0); i < maxCycles; i++ {
		if n.inFlight == 0 {
			return nil
		}
		if err := n.Step(); err != nil {
			return err
		}
	}
	if n.inFlight > 0 {
		return fmt.Errorf("network: %d messages still in flight after %d drain cycles", n.inFlight, maxCycles)
	}
	return nil
}

// Limiter exposes the congestion limiter (nil when disabled).
func (n *Network) Limiter() *congestion.Limiter { return n.limiter }

// EffectiveChannels returns the channel count to normalize utilization by:
// the grid's unidirectional channel count, halved under half-duplex links.
func (n *Network) EffectiveChannels() int {
	if n.cfg.HalfDuplex {
		return n.g.NumChannels() / 2
	}
	return n.g.NumChannels()
}

// ChannelFlitCounts returns lifetime flit transfers per physical channel,
// indexed by the grid's dense channel index (mesh boundary slots stay 0).
func (n *Network) ChannelFlitCounts() []int64 {
	return append([]int64(nil), n.flitsByChannel...)
}

// OccupiedVCsByClass returns how many virtual channels of each class are
// currently owned by a worm.
func (n *Network) OccupiedVCsByClass() []int {
	counts := make([]int, n.numVCs)
	for _, id := range n.active {
		if n.vcCh[id] >= 0 && n.vcMsg[id] != nil {
			counts[n.vcClass[id]]++
		}
	}
	return counts
}
