package core

import (
	"fmt"

	"wormsim/internal/message"
	"wormsim/internal/network"
	"wormsim/internal/rng"
	"wormsim/internal/routing"
	"wormsim/internal/saf"
	"wormsim/internal/stats"
	"wormsim/internal/telemetry"
	"wormsim/internal/traffic"
)

// BatchResult reports a finite-workload (trace or permutation burst)
// simulation run to completion, measured by makespan rather than
// steady-state sampling.
type BatchResult struct {
	Algorithm string
	Switching Switching
	// Delivered counts completed messages; Dropped those refused by
	// congestion control.
	Delivered int64
	Dropped   int64
	// Makespan is the cycle the last message was delivered.
	Makespan int64
	// Latency statistics over delivered messages (cycles).
	MeanLatency float64
	LatencyP95  float64
	MaxLatency  float64
	// FlitMoves is the total channel traffic.
	FlitMoves int64
	// Telemetry aggregates the run's collector when Config.Telemetry was
	// set (wormhole/vct only).
	Telemetry *telemetry.Summary `json:",omitempty"`
	// TraceEvents is the retained lifecycle trace, kept out of JSON.
	TraceEvents []telemetry.Event `json:"-"`
}

// String renders a one-line summary.
func (r BatchResult) String() string {
	return fmt.Sprintf("%-6s makespan=%d delivered=%d mean=%.1f p95=%.0f max=%.0f",
		r.Algorithm, r.Makespan, r.Delivered, r.MeanLatency, r.LatencyP95, r.MaxLatency)
}

// RunBatch drives the given finite workload (typically a traffic.Trace) to
// completion under cfg's network settings and returns makespan statistics.
// The workload must stop generating eventually; drainBudget caps the cycles
// spent waiting for the network to empty after the last arrival (default
// 1e6).
func RunBatch(cfg Config, wl traffic.Workload, lastArrival int64, drainBudget int64) (BatchResult, error) {
	cfg.ApplyDefaults()
	if drainBudget <= 0 {
		drainBudget = 1_000_000
	}
	g := cfg.Grid()
	alg, err := routing.Get(cfg.Algorithm)
	if err != nil {
		return BatchResult{}, err
	}
	policy, err := routing.GetPolicy(cfg.Policy)
	if err != nil {
		return BatchResult{}, err
	}
	res := BatchResult{Algorithm: cfg.Algorithm, Switching: cfg.Switching}
	var hist stats.Histogram
	onDeliver := func(m *message.Message) {
		hist.Add(float64(m.Latency()))
		if m.DeliverTime > res.Makespan {
			res.Makespan = m.DeliverTime
		}
	}
	switch cfg.Switching {
	case Wormhole, CutThrough:
		var tel *telemetry.Collector
		if cfg.Telemetry != nil {
			tel = telemetry.New(*cfg.Telemetry, g.ChannelSlots(), alg.NumVCs(g))
		}
		n, err := network.New(network.Config{
			Grid: g, Algorithm: alg, Policy: policy, Workload: wl,
			MsgLen: cfg.MsgLen, BufDepth: cfg.BufDepth, CCLimit: cfg.CCLimit,
			InjectionPorts: cfg.InjectionPorts,
			Seed:           cfg.Seed, OnDeliver: onDeliver, Telemetry: tel,
		})
		if err != nil {
			return res, err
		}
		if err := n.Run(lastArrival + 1); err != nil {
			return res, err
		}
		if err := n.Drain(drainBudget); err != nil {
			return res, err
		}
		t := n.Total()
		res.Delivered, res.Dropped, res.FlitMoves = t.Delivered, t.Dropped, t.FlitMoves
		if tel != nil {
			res.Telemetry = tel.Summary()
			res.TraceEvents = tel.Events()
		}
	case StoreFwd:
		n, err := saf.New(saf.Config{
			Grid: g, Algorithm: alg, Policy: policy, Workload: wl,
			MsgLen: cfg.MsgLen, CCLimit: cfg.CCLimit,
			Seed: cfg.Seed, OnDeliver: onDeliver,
		})
		if err != nil {
			return res, err
		}
		if err := n.Run(lastArrival + 1); err != nil {
			return res, err
		}
		if err := n.Drain(drainBudget); err != nil {
			return res, err
		}
		_, _, res.Dropped, res.Delivered = n.Counts()
		res.FlitMoves = n.FlitMoves()
	default:
		return res, fmt.Errorf("core: unknown switching %q", cfg.Switching)
	}
	res.MeanLatency = hist.Mean()
	res.LatencyP95 = hist.Quantile(0.95)
	res.MaxLatency = hist.Max()
	return res, nil
}

// ReplicateBatch runs the permutation-burst experiment once per seed and
// returns the replicas in seed order — the spread of makespans across seeds
// is the batch experiments' error bar. Wormhole and vct configs ride the
// batch lockstep engine in chunks of up to replicaChunk seeds (shared
// tables, one fused sweep per cycle), spread across the work-stealing
// scheduler; results are identical to running each seed sequentially.
// Telemetry-carrying configs fall back to the scalar per-seed path (the
// batch engine meters its observer replica only), as does saf.
func ReplicateBatch(cfg Config, patternSpec string, seeds []uint64, workers int, drainBudget int64) ([]BatchResult, error) {
	if cfg.Switching == StoreFwd || cfg.Telemetry != nil {
		return replicateBatchScalar(cfg, patternSpec, seeds, workers, drainBudget)
	}
	out := make([]BatchResult, len(seeds))
	nChunks := (len(seeds) + replicaChunk - 1) / replicaChunk
	errs := make([]error, nChunks)
	s := NewScheduler(workers)
	for lo := 0; lo < len(seeds); lo += replicaChunk {
		lo := lo
		hi := lo + replicaChunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		s.Submit(func(int) {
			rs, err := runBurstReplicas(cfg, patternSpec, seeds[lo:hi], drainBudget)
			copy(out[lo:hi], rs)
			errs[lo/replicaChunk] = err
		})
	}
	s.Close()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// replicateBatchScalar is ReplicateBatch's one-engine-per-seed path.
func replicateBatchScalar(cfg Config, patternSpec string, seeds []uint64, workers int, drainBudget int64) ([]BatchResult, error) {
	out := make([]BatchResult, len(seeds))
	errs := make([]error, len(seeds))
	s := NewScheduler(workers)
	for j := range seeds {
		j := j
		s.Submit(func(int) {
			c := cfg
			c.Seed = seeds[j]
			burst, err := PermutationBurst(c, patternSpec)
			if err != nil {
				errs[j] = err
				return
			}
			r, err := RunBatch(c, burst, burst.LastCycle(), drainBudget)
			out[j] = r
			if err != nil {
				errs[j] = fmt.Errorf("core: batch replica seed=%#x: %w", seeds[j], err)
			}
		})
	}
	s.Close()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// runBurstReplicas drives one chunk of permutation-burst seeds to
// completion on the batch engine. Each replica is stepped through the burst
// window and then drained; a replica whose network empties drops out of the
// live set (swap-remove) while its siblings keep draining. Per-replica
// results mirror RunBatch exactly, including its partial fill on a watchdog
// or drain-budget error.
func runBurstReplicas(cfg Config, patternSpec string, seeds []uint64, drainBudget int64) ([]BatchResult, error) {
	cfg.ApplyDefaults()
	if drainBudget <= 0 {
		drainBudget = 1_000_000
	}
	g := cfg.Grid()
	out := make([]BatchResult, len(seeds))
	for r := range out {
		out[r] = BatchResult{Algorithm: cfg.Algorithm, Switching: cfg.Switching}
	}
	alg, err := routing.Get(cfg.Algorithm)
	if err != nil {
		return out, err
	}
	policy, err := routing.GetPolicy(cfg.Policy)
	if err != nil {
		return out, err
	}
	wls := make([]traffic.Workload, len(seeds))
	last := int64(0)
	for r, seed := range seeds {
		c := cfg
		c.Seed = seed
		burst, err := PermutationBurst(c, patternSpec)
		if err != nil {
			return out, err
		}
		wls[r] = burst
		if lc := burst.LastCycle(); lc > last {
			last = lc
		}
	}
	hists := make([]stats.Histogram, len(seeds))
	bn, err := network.NewBatch(network.BatchConfig{
		Grid: g, Algorithm: alg, Policy: policy, Workloads: wls, Seeds: seeds,
		MsgLen: cfg.MsgLen, BufDepth: cfg.BufDepth, CCLimit: cfg.CCLimit,
		InjectionPorts: cfg.InjectionPorts,
		OnDeliver: func(r int, m *message.Message) {
			hists[r].Add(float64(m.Latency()))
			if m.DeliverTime > out[r].Makespan {
				out[r].Makespan = m.DeliverTime
			}
		},
	})
	if err != nil {
		return out, err
	}
	errs := make([]error, len(seeds))
	step := func() {
		for _, f := range bn.Step() {
			errs[f.Replica] = f.Err
			bn.Deactivate(f.Replica)
		}
	}
	// The burst window, then the drain: a replica leaves the live set the
	// moment its network empties, exactly when its scalar Drain would have
	// returned.
	for i := int64(0); i <= last && bn.Live() > 0; i++ {
		step()
	}
	for i := int64(0); i < drainBudget && bn.Live() > 0; i++ {
		for r := range seeds {
			if bn.IsLive(r) && bn.InFlight(r) == 0 {
				bn.Deactivate(r)
			}
		}
		if bn.Live() == 0 {
			break
		}
		step()
	}
	for r := range seeds {
		if bn.IsLive(r) && bn.InFlight(r) > 0 && errs[r] == nil {
			errs[r] = fmt.Errorf("network: %d messages still in flight after %d drain cycles", bn.InFlight(r), drainBudget)
		}
	}
	var firstErr error
	for r := range seeds {
		if errs[r] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch replica seed=%#x: %w", seeds[r], errs[r])
			}
			continue // RunBatch leaves totals unfilled on error
		}
		t := bn.Total(r)
		out[r].Delivered, out[r].Dropped, out[r].FlitMoves = t.Delivered, t.Dropped, t.FlitMoves
		out[r].MeanLatency = hists[r].Mean()
		out[r].LatencyP95 = hists[r].Quantile(0.95)
		out[r].MaxLatency = hists[r].Max()
	}
	return out, firstErr
}

// PermutationBurst builds a trace that injects every source's message for
// the named permutation pattern at cycle 0 — the "how fast does one
// all-at-once permutation complete" experiment.
func PermutationBurst(cfg Config, patternSpec string) (*traffic.Trace, error) {
	cfg.ApplyDefaults()
	g := cfg.Grid()
	pattern, err := traffic.Parse(g, patternSpec)
	if err != nil {
		return nil, err
	}
	var cycles []int64
	var arrs []traffic.Arrival
	r := rng.NewStream(cfg.Seed, 0xb135)
	for src := 0; src < g.Nodes(); src++ {
		dst := pattern.Dest(src, r)
		if dst < 0 {
			continue
		}
		cycles = append(cycles, 0)
		arrs = append(arrs, traffic.Arrival{Src: src, Dst: dst})
	}
	return traffic.NewTrace(g, patternSpec+"-burst", cycles, arrs), nil
}
