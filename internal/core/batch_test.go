package core

import (
	"strings"
	"testing"

	"wormsim/internal/traffic"
)

func TestPermutationBurst(t *testing.T) {
	cfg := Config{K: 8, N: 2}
	tr, err := PermutationBurst(cfg, "transpose")
	if err != nil {
		t.Fatal(err)
	}
	// 8x8: 8 diagonal nodes idle -> 56 messages, all at cycle 0.
	if tr.Len() != 56 {
		t.Fatalf("transpose burst has %d messages, want 56", tr.Len())
	}
	if tr.LastCycle() != 0 {
		t.Fatalf("burst last cycle %d, want 0", tr.LastCycle())
	}
	if _, err := PermutationBurst(cfg, "bogus"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestRunBatchTranspose(t *testing.T) {
	cfg := Config{K: 8, N: 2, Algorithm: "nbc", Seed: 3}
	tr, err := PermutationBurst(cfg, "transpose")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(cfg, tr, tr.LastCycle(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 56 {
		t.Fatalf("delivered %d, want 56", res.Delivered)
	}
	if res.Makespan <= 0 || res.MeanLatency <= 0 {
		t.Fatalf("degenerate batch result: %+v", res)
	}
	if res.MaxLatency < res.LatencyP95 || res.LatencyP95 < res.MeanLatency*0.5 {
		t.Errorf("latency statistics inconsistent: %+v", res)
	}
	// Flit conservation: every message travels its exact distance.
	g := cfg.Grid()
	var want int64
	for src := 0; src < g.Nodes(); src++ {
		coords := []int{src % 8, src / 8}
		dst := g.ID([]int{coords[1], coords[0]})
		if dst == src {
			continue
		}
		want += int64(g.Distance(src, dst)) * 16
	}
	if res.FlitMoves != want {
		t.Errorf("flit moves %d, want %d", res.FlitMoves, want)
	}
	if !strings.Contains(res.String(), "makespan=") {
		t.Errorf("String = %q", res.String())
	}
}

// TestRunBatchOrderings: adaptive routing should complete a contended burst
// no slower than dimension-order routing.
func TestRunBatchOrderings(t *testing.T) {
	cfg := Config{K: 8, N: 2, Seed: 3}
	tr, err := PermutationBurst(cfg, "complement")
	if err != nil {
		t.Fatal(err)
	}
	makespan := map[string]int64{}
	for _, alg := range []string{"ecube", "nbc"} {
		c := cfg
		c.Algorithm = alg
		tr.Reseed(0)
		res, err := RunBatch(c, tr, tr.LastCycle(), 200000)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Delivered != 64 {
			t.Fatalf("%s delivered %d, want 64", alg, res.Delivered)
		}
		makespan[alg] = res.Makespan
	}
	if makespan["nbc"] > makespan["ecube"] {
		t.Errorf("nbc makespan %d should not exceed ecube's %d on the complement burst",
			makespan["nbc"], makespan["ecube"])
	}
}

func TestRunBatchSAF(t *testing.T) {
	cfg := Config{K: 8, N: 2, Algorithm: "phop", Switching: StoreFwd, Seed: 1}
	g := cfg.Grid()
	tr := traffic.NewTrace(g, "two", []int64{0, 0},
		[]traffic.Arrival{{Src: 0, Dst: 9}, {Src: 5, Dst: 60}})
	res, err := RunBatch(cfg, tr, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// SAF: latency = hops * msglen with no contention.
	if res.MaxLatency < 32 {
		t.Errorf("saf max latency %v suspiciously small", res.MaxLatency)
	}
}

func TestRunBatchValidation(t *testing.T) {
	cfg := Config{K: 8, N: 2, Algorithm: "bogus"}
	g := cfg.Grid()
	tr := traffic.NewTrace(g, "x", []int64{0}, []traffic.Arrival{{Src: 0, Dst: 1}})
	if _, err := RunBatch(cfg, tr, 0, 1000); err == nil {
		t.Error("unknown algorithm accepted")
	}
	cfg.Algorithm = "ecube"
	cfg.Switching = "teleport"
	if _, err := RunBatch(cfg, tr, 0, 1000); err == nil {
		t.Error("unknown switching accepted")
	}
}
