package core

import (
	"strings"
	"testing"
)

func TestWriteMarkdown(t *testing.T) {
	fr := FigureResult{
		Spec: FigureSpec{
			ID: "figX", Title: "synthetic", Pattern: "uniform", Switching: Wormhole,
			Loads: []float64{0.2, 0.4},
		},
		Series: []Series{
			{Algorithm: "fast", Results: []Result{
				{OfferedLoad: 0.2, Throughput: 0.2, AvgLatency: 25},
				{OfferedLoad: 0.4, Throughput: 0.39, AvgLatency: 40},
			}},
			{Algorithm: "slow", Results: []Result{
				{OfferedLoad: 0.2, Throughput: 0.2, AvgLatency: 30},
				{OfferedLoad: 0.4, Throughput: 0.25, AvgLatency: 300, Deadlocked: false},
			}},
		},
	}
	var b strings.Builder
	fr.WriteMarkdown(&b)
	out := b.String()
	for _, want := range []string{
		"## figX — synthetic",
		"| offered | fast | slow |",
		"| 0.40 | 40.0 | 300.0 |",
		"| 0.40 | 0.390 | 0.250 |",
		"### Peaks",
		"| fast | 0.390 | 0.40 | - |",
		"| slow | 0.250 | 0.40 | 0.40 |", // saturates at 0.4 (0.4 - 0.25 > 0.02)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdownDeadlockCell(t *testing.T) {
	fr := FigureResult{
		Spec: FigureSpec{ID: "figY", Title: "t", Pattern: "uniform", Switching: Wormhole, Loads: []float64{0.5}},
		Series: []Series{{Algorithm: "bad", Results: []Result{
			{OfferedLoad: 0.5, Deadlocked: true},
		}}},
	}
	var b strings.Builder
	fr.WriteMarkdown(&b)
	if !strings.Contains(b.String(), "deadlock") {
		t.Errorf("deadlocked point not marked:\n%s", b.String())
	}
}

func TestWriteMarkdownShortSeries(t *testing.T) {
	fr := FigureResult{
		Spec: FigureSpec{ID: "figZ", Title: "t", Pattern: "uniform", Switching: Wormhole, Loads: []float64{0.1, 0.2}},
		Series: []Series{{Algorithm: "partial", Results: []Result{
			{OfferedLoad: 0.1, Throughput: 0.1, AvgLatency: 20},
		}}},
	}
	var b strings.Builder
	fr.WriteMarkdown(&b)
	if !strings.Contains(b.String(), "| - |") {
		t.Errorf("missing placeholder for absent point:\n%s", b.String())
	}
}
