package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseLoads parses an offered-load axis specification: either a range
// "lo:hi:step" (inclusive of hi within floating slack) or a comma-separated
// list "0.1,0.25,0.4".
func ParseLoads(spec string) ([]float64, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("core: load range must be lo:hi:step, got %q", spec)
		}
		var lo, hi, step float64
		for i, dst := range []*float64{&lo, &hi, &step} {
			v, err := strconv.ParseFloat(parts[i], 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad load range component %q: %w", parts[i], err)
			}
			*dst = v
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("core: bad load range %q", spec)
		}
		var loads []float64
		for x := lo; x <= hi+1e-9; x += step {
			loads = append(loads, x)
		}
		return loads, nil
	}
	var loads []float64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad load %q: %w", s, err)
		}
		loads = append(loads, v)
	}
	return loads, nil
}
