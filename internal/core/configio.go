package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// LoadConfig reads a Config from a JSON file. Unset fields keep their zero
// values and are defaulted by ApplyDefaults at Run time, so a file needs
// only the fields it wants to pin. Unknown fields are rejected to catch
// typos.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: read config: %w", err)
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("core: parse config %s: %w", path, err)
	}
	return cfg, nil
}

// Canonical returns the configuration in its canonical form: defaults
// applied, runtime-only hooks cleared, and the observatory publication
// period zeroed (it changes what an attached observer sees, never the
// Result). Two Configs that canonicalize identically describe the same
// simulation point and produce bit-identical Results, so the canonical form
// is what Hash digests and what the run store records.
func (c Config) Canonical() Config {
	c.ApplyDefaults()
	c.OnSample, c.OnTick, c.PhaseProf, c.Cache = nil, nil, nil, nil
	c.TickCycles = 0
	if c.Telemetry != nil {
		// Normalize the pointer so "no options" and "zero options" hash alike
		// only when they produce the same Result (a non-nil collector fills
		// Result.Telemetry even with every option off, so nil-ness stays
		// significant; the copy just detaches the caller's pointer).
		t := *c.Telemetry
		c.Telemetry = &t
	}
	if c.Forensics != nil {
		// Same contract as Telemetry: a non-nil analyzer fills
		// Result.Forensics, so nil-ness stays hash-significant; configs
		// without forensics keep their pre-forensics hashes (the field
		// marshals as omitempty).
		f := *c.Forensics
		c.Forensics = &f
	}
	return c
}

// Hash returns the canonical content address of the simulation point this
// config describes: the SHA-256 of the canonicalized JSON encoding, in hex.
// encoding/json emits struct fields in declaration order and the canonical
// form contains no maps, so the encoding — and therefore the hash — is
// deterministic across processes and platforms. Configs differing only in
// hooks, cache attachment or observatory tick period hash identically;
// anything that changes the Result (including the Telemetry options, which
// select what Result.Telemetry carries) changes the hash.
func (c Config) Hash() string {
	data, err := json.Marshal(c.Canonical())
	if err != nil {
		// Every persisted Config field is a plain value; Marshal cannot fail.
		panic(fmt.Sprintf("core: canonical config does not marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// PairKey is Hash with the algorithm identity masked out: configs that
// differ only in routing algorithm share a PairKey. The observatory's
// comparison endpoints use it to align the points of an A-vs-B overlay —
// two stored runs belong on the same x-axis position exactly when their
// PairKeys match and their offered loads differ by algorithm choice alone.
func (c Config) PairKey() string {
	n := c.Canonical()
	n.Algorithm = "*"
	data, err := json.Marshal(n)
	if err != nil {
		panic(fmt.Sprintf("core: canonical config does not marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Save writes the config as indented JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: write config: %w", err)
	}
	return nil
}
