package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// LoadConfig reads a Config from a JSON file. Unset fields keep their zero
// values and are defaulted by ApplyDefaults at Run time, so a file needs
// only the fields it wants to pin. Unknown fields are rejected to catch
// typos.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: read config: %w", err)
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("core: parse config %s: %w", path, err)
	}
	return cfg, nil
}

// Save writes the config as indented JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: write config: %w", err)
	}
	return nil
}
