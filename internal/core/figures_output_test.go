package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFiguresOutputArtifact cross-checks the committed full-methodology run
// (testdata/figures_output.txt, produced by cmd/figures) against the live
// Figures() spec: every figure appears in order with its exact title, the
// latency and utilization tables carry one column per algorithm in the
// spec's presentation order and one parseable row per paper load, and the
// peaks block names each algorithm exactly once. When the spec or the
// report format changes, regenerate with `go run ./cmd/figures`.
func TestFiguresOutputArtifact(t *testing.T) {
	path := filepath.Join("testdata", "figures_output.txt")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Split the artifact into "# <id>: <title>" sections, preserving order.
	type section struct {
		header string
		body   []string
	}
	var sections []section
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# ") {
			sections = append(sections, section{header: ln})
			continue
		}
		if len(sections) == 0 {
			t.Fatalf("content before first section header: %q", ln)
		}
		sections[len(sections)-1].body = append(sections[len(sections)-1].body, ln)
	}

	specs := Figures()
	if len(sections) != len(specs) {
		t.Fatalf("artifact has %d sections, spec has %d figures", len(sections), len(specs))
	}
	for i, spec := range specs {
		sec := sections[i]
		want := fmt.Sprintf("# %s: %s", spec.ID, spec.Title)
		if sec.header != want {
			t.Errorf("section %d header = %q, want %q", i, sec.header, want)
			continue
		}
		checkFigureSection(t, spec, sec.body)
	}
}

// checkFigureSection validates one figure's body: two data tables and the
// peaks block.
func checkFigureSection(t *testing.T, spec FigureSpec, body []string) {
	t.Helper()
	rest := body
	for _, table := range []string{"average latency (cycles)", "achieved channel utilization"} {
		if len(rest) == 0 || rest[0] != "## "+table {
			t.Errorf("%s: expected %q, got %q", spec.ID, "## "+table, first(rest))
			return
		}
		header := strings.Fields(rest[1])
		wantHeader := append([]string{"offered"}, spec.Algorithms...)
		if strings.Join(header, " ") != strings.Join(wantHeader, " ") {
			t.Errorf("%s/%s: header %v, want %v", spec.ID, table, header, wantHeader)
			return
		}
		rest = rest[2:]
		for _, load := range spec.Loads {
			fields := strings.Fields(first(rest))
			if len(fields) != 1+len(spec.Algorithms) {
				t.Errorf("%s/%s: row %q has %d fields, want %d", spec.ID, table, first(rest), len(fields), 1+len(spec.Algorithms))
				return
			}
			for j, fld := range fields {
				v, err := strconv.ParseFloat(fld, 64)
				if err != nil || v < 0 {
					t.Errorf("%s/%s: bad value %q in row %q", spec.ID, table, fld, first(rest))
					return
				}
				if j == 0 && v != load {
					t.Errorf("%s/%s: row offered %g, want %g", spec.ID, table, v, load)
					return
				}
			}
			rest = rest[1:]
		}
	}
	if first(rest) != "## peaks" {
		t.Errorf("%s: expected %q, got %q", spec.ID, "## peaks", first(rest))
		return
	}
	rest = rest[1:]
	seen := map[string]bool{}
	for range spec.Algorithms {
		fields := strings.Fields(first(rest))
		// "  nbc     0.730 at offered 1.00"
		if len(fields) != 5 || fields[2] != "at" || fields[3] != "offered" {
			t.Errorf("%s/peaks: malformed line %q", spec.ID, first(rest))
			return
		}
		if seen[fields[0]] {
			t.Errorf("%s/peaks: algorithm %s listed twice", spec.ID, fields[0])
		}
		seen[fields[0]] = true
		rest = rest[1:]
	}
	for _, alg := range spec.Algorithms {
		if !seen[alg] {
			t.Errorf("%s/peaks: algorithm %s missing", spec.ID, alg)
		}
	}
	if len(rest) != 0 {
		t.Errorf("%s: %d trailing lines after peaks, starting %q", spec.ID, len(rest), rest[0])
	}
}

// first returns the head of lines, or "" at end of section.
func first(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return lines[0]
}
