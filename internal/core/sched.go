package core

import (
	"fmt"
	"sync"

	"wormsim/internal/stats"
)

// Scheduler is a work-stealing pool for simulation work items. Each worker
// owns a deque: it pushes and pops spawned work at the tail (children run
// first, preserving locality of a load's replications) while idle workers
// steal from the head (the oldest, typically largest pieces of work). This
// keeps every core busy even when per-item costs are wildly skewed — near
// saturation one offered load can cost an order of magnitude more than the
// rest of its sweep.
//
// Work items are whole simulation runs (milliseconds to minutes), so the
// deques share one mutex: contention on it is unmeasurable at that
// granularity, and a single lock keeps the scheduler trivially race-clean.
// Each simulation itself stays single-threaded and seeded, so any schedule
// produces results identical to a sequential pass.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	// deques[w] is worker w's deque; head indexes the next stealable item
	// (the slice is compacted when drained).
	deques []dequeOf
	// live counts submitted-but-unfinished items; next round-robins external
	// submissions across deques.
	live   int
	next   int
	closed bool
	wg     sync.WaitGroup
}

type dequeOf struct {
	head  int
	items []func(worker int)
}

// NewScheduler starts a pool of workers (minimum 1). Close it when done.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{deques: make([]dequeOf, workers)}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker(w) //lint:allow purity (worker pool; completion order never escapes — results land by point index)
	}
	return s
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return len(s.deques) }

// Submit enqueues one work item from outside the pool, distributing
// round-robin across the worker deques. The item receives the id of the
// worker that runs it, which it may pass to Spawn.
func (s *Scheduler) Submit(fn func(worker int)) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("core: Submit on closed Scheduler")
	}
	w := s.next % len(s.deques)
	s.next++
	s.push(w, fn)
	s.mu.Unlock()
}

// Spawn enqueues a child item at the tail of worker's own deque: the
// spawning worker picks it up next (LIFO) unless an idle worker steals it
// from the head first. Call it only from inside a running item, with the
// worker id that item received.
func (s *Scheduler) Spawn(worker int, fn func(worker int)) {
	s.mu.Lock()
	s.push(worker, fn)
	s.mu.Unlock()
}

// push appends to worker w's deque and wakes a sleeper. Callers hold mu.
func (s *Scheduler) push(w int, fn func(worker int)) {
	s.deques[w].items = append(s.deques[w].items, fn)
	s.live++
	s.cond.Signal()
}

// pop takes worker w's newest own item, else steals the oldest item from
// another deque, scanning victims round-robin from w+1. Callers hold mu.
func (s *Scheduler) pop(w int) func(worker int) {
	if d := &s.deques[w]; d.head < len(d.items) {
		fn := d.items[len(d.items)-1]
		d.items = d.items[:len(d.items)-1]
		d.compact()
		return fn
	}
	for i := 1; i < len(s.deques); i++ {
		if d := &s.deques[(w+i)%len(s.deques)]; d.head < len(d.items) {
			fn := d.items[d.head]
			d.items[d.head] = nil
			d.head++
			d.compact()
			return fn
		}
	}
	return nil
}

// compact resets a drained deque so its backing array is reused.
func (d *dequeOf) compact() {
	if d.head == len(d.items) {
		d.head, d.items = 0, d.items[:0]
	}
}

func (s *Scheduler) worker(w int) {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if fn := s.pop(w); fn != nil {
			s.mu.Unlock()
			fn(w)
			s.mu.Lock()
			if s.live--; s.live == 0 {
				s.cond.Broadcast()
			}
			continue
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.cond.Wait()
	}
}

// Wait blocks until every submitted item (including spawned children) has
// finished. Never call it from inside a work item — a worker waiting on its
// own pool deadlocks it.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	for s.live > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close waits for outstanding work and stops the workers. The scheduler
// cannot be reused afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	for s.live > 0 {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// ReplicatedResult aggregates the replications of one offered load.
type ReplicatedResult struct {
	OfferedLoad float64
	// Replicas holds one Result per seed, in seed order.
	Replicas []Result
	// MeanLatency and MeanThroughput average the non-deadlocked replicas;
	// LatencySpread is the sample standard deviation of their latencies.
	MeanLatency    float64
	LatencySpread  float64
	MeanThroughput float64
	// Deadlocks counts replicas terminated by the watchdog.
	Deadlocks int
}

// replicaChunk is the batch width SweepReplicated hands to each scheduler
// task: wide enough to amortize the shared tables and interleave the RNG
// chains of the lockstep engine, narrow enough that one load's replicas
// still spread across idle workers.
const replicaChunk = 16

// SweepReplicated runs cfg at every load once per seed, fanning the (load,
// replica-chunk) matrix through one work-stealing scheduler: each load is
// submitted as an item that spawns chunks of up to replicaChunk seeds onto
// the running worker's deque, so a cheap load's worker finishes and steals
// chunks from the expensive loads near saturation. Each chunk runs on the
// batch lockstep engine (RunReplicas), which makes its seeds share tables
// and one fused sweep per cycle. Results are aggregated per load, in load
// order; they are identical to running every (load, seed) pair sequentially.
// Deadlocked replicas are recorded, not fatal; any other error aborts.
func SweepReplicated(cfg Config, loads []float64, seeds []uint64, workers int) ([]ReplicatedResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: SweepReplicated needs at least one seed")
	}
	out := make([]ReplicatedResult, len(loads))
	errs := make([]error, len(loads)*len(seeds))
	s := NewScheduler(workers)
	for i := range loads {
		out[i] = ReplicatedResult{OfferedLoad: loads[i], Replicas: make([]Result, len(seeds))}
		i := i
		s.Submit(func(w int) {
			// Fan the seeds out in replica chunks: each chunk rides the batch
			// lockstep engine (one fused sweep per cycle across its seeds,
			// shared tables), and chunks of one load spread across idle
			// workers like any other stolen task.
			for lo := 0; lo < len(seeds); lo += replicaChunk {
				lo := lo
				hi := lo + replicaChunk
				if hi > len(seeds) {
					hi = len(seeds)
				}
				s.Spawn(w, func(int) {
					c := cfg
					c.OfferedLoad = loads[i]
					rs, err := RunReplicas(c, seeds[lo:hi])
					copy(out[i].Replicas[lo:hi], rs)
					if err != nil {
						errs[i*len(seeds)+lo] = fmt.Errorf("core: replicated sweep at rho=%.3g: %w", loads[i], err)
					}
				})
			}
		})
	}
	s.Close()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	for i := range out {
		var lat, thr stats.Welford
		for _, r := range out[i].Replicas {
			if r.Deadlocked {
				out[i].Deadlocks++
				continue
			}
			lat.Add(r.AvgLatency)
			thr.Add(r.Throughput)
		}
		out[i].MeanLatency = lat.Mean()
		out[i].LatencySpread = lat.StdDev()
		out[i].MeanThroughput = thr.Mean()
	}
	return out, nil
}
