package core

import (
	"encoding/json"
	"testing"

	"wormsim/internal/forensics"
	"wormsim/internal/telemetry"
)

// quickForeCfg is quickTelCfg with metrics-only telemetry plus an
// every-cycle forensics analyzer, so blame attribution is exact.
func quickForeCfg() Config {
	cfg := quickTelCfg()
	cfg.Telemetry = &telemetry.Options{Metrics: true}
	cfg.Forensics = &forensics.Options{SampleEvery: 1}
	return cfg
}

// TestForensicsBitIdenticalResult pins the standing guarantee: attaching a
// forensics analyzer changes nothing about the simulation — every Result
// field except the Forensics summary itself is byte-identical to the
// detached run. (The -race variant with observatory clients hammering
// /blame lives in internal/observatory.)
func TestForensicsBitIdenticalResult(t *testing.T) {
	base := quickForeCfg()
	base.Forensics = nil
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withFore, err := Run(quickForeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if withFore.Forensics == nil {
		t.Fatal("Result.Forensics not filled")
	}
	withFore.Forensics = nil
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(withFore)
	if string(a) != string(b) {
		t.Errorf("forensics perturbed the run:\nwithout: %s\nwith:    %s", a, b)
	}
}

// TestBlameAttributesHotspotRoots is the acceptance scenario: on a
// saturated 8x8 hot-spot run, every-cycle forensics must attribute >= 95%
// of telemetry's head-blocked cycles to a root channel, and the top-4 blame
// roots must be the known hot-node feed channels (mirroring
// TestHotspotSaturatesHotChannels).
func TestBlameAttributesHotspotRoots(t *testing.T) {
	cfg := quickForeCfg()
	hot := 27 // node (3,3) on the 8x8 torus
	cfg.Pattern = "hotspot:0.2:27"
	cfg.OfferedLoad = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forensics
	if f == nil {
		t.Fatal("no forensics summary")
	}
	headBlocked := res.Telemetry.TotalHeadBlocked()
	if headBlocked == 0 {
		t.Fatal("hotspot run saw no head-blocked cycles")
	}
	if f.BlockedObserved != headBlocked {
		t.Errorf("every-cycle forensics observed %d blocked cycles, telemetry counted %d",
			f.BlockedObserved, headBlocked)
	}
	if frac := float64(f.Attributed) / float64(headBlocked); frac < 0.95 {
		t.Errorf("attributed %.1f%% of head-blocked cycles, want >= 95%%", 100*frac)
	}
	g := cfg.Grid()
	into := 0
	top := f.TopRoots(4)
	if len(top) < 4 {
		t.Fatalf("fewer than 4 blame roots: %+v", top)
	}
	for _, r := range top {
		up, dim, dir := g.ChannelInfo(r.Ch)
		if g.Neighbor(up, dim, dir) == hot {
			into++
		}
	}
	if into < 3 {
		t.Errorf("only %d of the top-4 blame roots feed the hot node %d (top: %+v)", into, hot, top)
	}
	if f.Trees == 0 || f.MeanTreeSize < 1 {
		t.Errorf("implausible tree stats: %+v", f)
	}
}

// TestForensicsAnatomyDecomposes checks the latency anatomy bookkeeping:
// components are non-negative, the drain component is at least the unloaded
// minimum, and the component means sum back to the class's total mean.
func TestForensicsAnatomyDecomposes(t *testing.T) {
	res, err := Run(quickForeCfg())
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forensics
	var delivered int64
	for _, ca := range f.Anatomy {
		delivered += ca.Delivered
		if ca.Delivered == 0 {
			continue
		}
		sum := ca.Inject.Mean + ca.Alloc.Mean + ca.Behind.Mean + ca.Drain.Mean
		if diff := sum - ca.MeanTotal; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("class %d: components sum to %.3f, total mean %.3f", ca.Class, sum, ca.MeanTotal)
		}
		// Unloaded latency is ml + d - 1 >= MsgLen cycles for any worm with
		// at least one hop.
		if ca.Drain.Mean < float64(16) {
			t.Errorf("class %d: drain mean %.1f below the 16-flit minimum", ca.Class, ca.Drain.Mean)
		}
		if ca.Inject.Mean < 0 || ca.Alloc.Mean < 0 || ca.Behind.Mean < 0 {
			t.Errorf("class %d: negative component: %+v", ca.Class, ca)
		}
	}
	if delivered == 0 {
		t.Fatal("anatomy saw no deliveries")
	}
}

// TestForensicsSampledEstimates checks that sparse sampling still lands in
// the right ballpark: sampled blame totals should be within a factor of the
// exact count, and attribution stays complete.
func TestForensicsSampledEstimates(t *testing.T) {
	exactCfg := quickForeCfg()
	exact, err := Run(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	sampledCfg := quickForeCfg()
	sampledCfg.Forensics = &forensics.Options{SampleEvery: 16}
	sampled, err := Run(sampledCfg)
	if err != nil {
		t.Fatal(err)
	}
	se, ss := exact.Forensics, sampled.Forensics
	if ss.Samples == 0 || ss.SampleEvery != 16 {
		t.Fatalf("sampled summary %+v", ss)
	}
	if ss.AttributedFraction() < 0.999 {
		t.Errorf("sampled attribution fraction %.3f", ss.AttributedFraction())
	}
	if se.BlockedObserved == 0 {
		t.Fatal("exact run saw no blocking")
	}
	ratio := float64(ss.BlockedObserved) / float64(se.BlockedObserved)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("sampled estimate %d vs exact %d (ratio %.2f) out of range",
			ss.BlockedObserved, se.BlockedObserved, ratio)
	}
}

// TestSafIgnoresForensics: the saf engine has no virtual channels; a
// forensics request must not break it.
func TestSafIgnoresForensics(t *testing.T) {
	cfg := quickForeCfg()
	cfg.Algorithm = "phop"
	cfg.Switching = StoreFwd
	cfg.OfferedLoad = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forensics != nil {
		t.Error("saf run filled Forensics")
	}
}
