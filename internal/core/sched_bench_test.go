package core

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSweepWorkers is the scheduler's scaling benchmark: one fixed
// multi-load sweep per iteration, at 1 and 4 workers with GOMAXPROCS pinned
// to 4 so the two sub-benchmarks are comparable. Every sweep point is an
// independent single-threaded simulation, so on a host with >=4 cores the
// w=4 entry should run the sweep more than 1.8x faster than w=1; on fewer
// cores the workers timeshare and the ratio degrades toward 1.0.
//
//	go test -run=^$ -bench BenchmarkSweepWorkers ./internal/core
func BenchmarkSweepWorkers(b *testing.B) {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
			cfg := quick("nbc")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SweepN(cfg, loads, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
