// Package core runs the paper's experiments end to end: it assembles a
// topology, routing algorithm, traffic workload and switching technique
// into a simulation, applies the warmup / sampling / convergence
// methodology of section 3, and reports average message latency and
// normalized throughput for a given offered load.
package core

import (
	"fmt"
	"math"
	"runtime"

	"wormsim/internal/forensics"
	"wormsim/internal/message"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/saf"
	"wormsim/internal/stats"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

// Switching selects the switching technique.
type Switching string

// The three switching techniques of the paper: wormhole everywhere,
// virtual cut-through in sec. 3.4, store-and-forward as the substrate the
// hop schemes derive from.
const (
	Wormhole   Switching = "wormhole"
	CutThrough Switching = "vct"
	StoreFwd   Switching = "saf"
)

// Config specifies one simulation point. The zero value is completed by
// ApplyDefaults to the paper's setup: a 16-ary 2-cube with 16-flit worms.
type Config struct {
	// K and N set the radix and dimension; Mesh selects a mesh instead of a
	// torus.
	K, N int
	Mesh bool
	// Algorithm is one of ecube, nlast, 2pn, phop, nhop, nbc.
	Algorithm string
	// Pattern is a traffic.Parse spec: uniform, hotspot[:frac[:node]],
	// local[:radius], transpose, bitrev, complement.
	Pattern string
	// Policy selects among free output VCs: random (default), first,
	// leastcongested.
	Policy string
	// Switching is wormhole (default), vct or saf.
	Switching Switching

	// OfferedLoad is the offered channel utilization rho (fraction of
	// capacity); the per-node injection rate lambda is derived from eq. (4):
	// lambda = rho * 2n / (MsgLen * meanDistance). If InjectionRate is set
	// it overrides the derivation.
	OfferedLoad   float64
	InjectionRate float64

	// MsgLen is the message length in flits (default 16).
	MsgLen int
	// BufDepth is the per-VC flit buffer depth for wormhole (default 2);
	// vct forces MsgLen.
	BufDepth int
	// CCLimit is the congestion-control per-class limit (default 2;
	// negative disables).
	CCLimit int
	// InjectionPorts caps concurrently injecting messages per node
	// (wormhole/vct only; default 2, negative = unlimited).
	InjectionPorts int
	// RouteDelay is the router pipeline latency in cycles per header hop
	// (wormhole/vct only; default 0, the paper's idealization).
	RouteDelay int

	Seed uint64

	// Methodology knobs, defaulted to match the paper's description scaled
	// to quick runs: WarmupCycles before measurement, SampleCycles per
	// sampling period, GapCycles of unmeasured traffic between periods with
	// fresh random streams.
	WarmupCycles int64
	SampleCycles int64
	GapCycles    int64
	MinSamples   int
	MaxSamples   int
	// Tolerance is the relative error bound of both convergence criteria
	// (default 0.05).
	Tolerance float64

	// Telemetry, when set, attaches a metrics/trace collector to the run and
	// fills Result.Telemetry / Result.TraceEvents (wormhole and vct engines
	// only; the saf engine has no flit-level channels to meter). Each Run
	// builds its own collector from these options, so a shared Config stays
	// safe for parallel sweeps.
	Telemetry *telemetry.Options `json:",omitempty"`
	// Forensics, when set, attaches the congestion forensics analyzer —
	// sampled wait-for graphs, root-cause blame attribution and per-worm
	// latency anatomy — and fills Result.Forensics (wormhole and vct
	// engines only). Like Telemetry, each Run builds its own analyzer from
	// these options, and attaching one is bit-identical to not
	// (TestForensicsRunIsBitIdentical).
	Forensics *forensics.Options `json:",omitempty"`
	// OnSample, if set, is called after every completed sampling period —
	// the live-progress hook behind the CLIs' -progress flag. Not part of
	// the persisted config.
	OnSample func(SampleEvent) `json:"-"`
	// OnTick, if set, is called every TickCycles simulated cycles (and once
	// more at the end of the run with Final set) with a self-contained copy
	// of the live engine state — the publication feed behind the CLIs'
	// -http observatory server. The hook only receives copies and must not
	// (and cannot, through the event) touch engine state, so an attached
	// observer never perturbs results. Wormhole and vct engines only.
	OnTick func(TickEvent) `json:"-"`
	// TickCycles is the publication period for OnTick (default 1000).
	TickCycles int64 `json:",omitempty"`
	// PhaseProf, if set, attributes engine wall time per pipeline phase
	// (see telemetry.PhaseProfiler). Shared across the runs of a sweep; its
	// accumulators are atomic. Not part of the persisted config.
	PhaseProf *telemetry.PhaseProfiler `json:"-"`
	// Cache, if set, is consulted by RunCached (and so by Sweep,
	// SweepObserved and SweepReplicated) before simulating: a hit returns
	// the stored Result without burning a single engine cycle, a miss runs
	// the point and records it. Simulations are pure functions of the
	// canonical config, so the cached and fresh paths are interchangeable —
	// see runstore.Store, the persistent implementation. Must be safe for
	// concurrent use by sweep workers. Not part of the persisted config.
	Cache ResultCache `json:"-"`
}

// ResultCache is the admission-control hook Sweep and friends consult
// before simulating: converged Results keyed by Config.Hash. Implementations
// must be safe for concurrent use (sweep workers hit them in parallel) and
// must return stored Results verbatim — the contract, pinned by
// runstore's bit-identity tests, is that a cache hit is indistinguishable
// from re-running the simulation.
type ResultCache interface {
	// Lookup returns the Result stored under hash, if any.
	Lookup(hash string) (Result, bool)
	// Store records a completed run under hash. cfg is the canonical config
	// the hash digests, for later inspection and comparison queries.
	Store(hash string, cfg Config, r Result) error
}

// TickEvent is one OnTick publication: the run's identity plus a deep copy
// of the observable engine state at one cycle. Everything in it is owned by
// the receiver — handing it to another goroutine is safe.
type TickEvent struct {
	// Identity of the run (the sweep CLI shares one hook across points).
	Algorithm   string
	Pattern     string
	Switching   Switching
	K, N        int
	Mesh        bool
	OfferedLoad float64
	Seed        uint64

	// Cycle is the engine clock; InFlight the number of live worms.
	Cycle    int64
	InFlight int
	// Counters are the run's cumulative totals.
	Counters network.Counters
	// Worms is the canonical in-flight model (network.WormStates).
	Worms []telemetry.WormState
	// ChannelFlits is the lifetime per-channel-slot flit transfer vector.
	ChannelFlits []int64
	// Telemetry is the collector summary when Config.Telemetry is set.
	Telemetry *telemetry.Summary
	// Forensics is the analyzer summary when Config.Forensics is set.
	Forensics *forensics.Summary
	// Events holds the lifecycle events recorded since the previous tick
	// (bounded to the most recent 64), when tracing is on.
	Events []telemetry.Event
	// Final marks the closing publication after the measurement loop.
	Final bool
}

// SampleEvent reports one completed sampling period to Config.OnSample.
type SampleEvent struct {
	// Sample counts completed periods; MaxSamples is the configured cap.
	Sample     int
	MaxSamples int
	// Mean and Bound are the period's stratified latency estimate and its
	// 95% error bound, in cycles.
	Mean  float64
	Bound float64
	// Done reports that the convergence rule terminated the run here.
	Done bool
}

// ApplyDefaults fills unset fields with the paper's defaults.
func (c *Config) ApplyDefaults() {
	if c.K == 0 {
		c.K = 16
	}
	if c.N == 0 {
		c.N = 2
	}
	if c.Algorithm == "" {
		c.Algorithm = "ecube"
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.Policy == "" {
		c.Policy = "random" // GetPolicy treats "" and "random" alike; normalizing keeps Hash canonical
	}
	if c.Switching == "" {
		c.Switching = Wormhole
	}
	if c.MsgLen == 0 {
		c.MsgLen = 16
	}
	if c.BufDepth == 0 {
		c.BufDepth = 4
	}
	if c.Switching == CutThrough && c.BufDepth < c.MsgLen {
		c.BufDepth = c.MsgLen
	}
	if c.CCLimit == 0 {
		c.CCLimit = 2
	}
	if c.CCLimit < 0 {
		c.CCLimit = 0
	}
	if c.InjectionPorts == 0 {
		c.InjectionPorts = 2
	}
	if c.InjectionPorts < 0 {
		c.InjectionPorts = 0
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 5000
	}
	if c.SampleCycles == 0 {
		c.SampleCycles = 2000
	}
	if c.GapCycles == 0 {
		c.GapCycles = 500
	}
	if c.MinSamples == 0 {
		c.MinSamples = 3
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 12
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
}

// Grid builds the configured topology.
func (c *Config) Grid() *topology.Grid {
	if c.Mesh {
		return topology.NewMesh(c.K, c.N)
	}
	return topology.NewTorus(c.K, c.N)
}

// Result reports one simulation point. It marshals cleanly to JSON for
// external tooling.
type Result struct {
	// Echoes of the run's identity.
	Algorithm string
	Pattern   string
	Switching Switching
	K, N      int
	Mesh      bool

	// OfferedLoad is the requested rho; InjectionRate the lambda used;
	// MeanDistance the workload's exact mean hops.
	OfferedLoad   float64
	InjectionRate float64
	MeanDistance  float64

	// AvgLatency is the across-sample mean of the stratified per-sample
	// latency estimates, in cycles; LatencyBound the larger of the two
	// convergence bounds at termination.
	AvgLatency   float64
	LatencyBound float64
	// Throughput is the achieved normalized channel utilization, averaged
	// over samples.
	Throughput float64

	// Samples actually taken and whether both criteria were met before
	// MaxSamples.
	Samples   int
	Converged bool
	// Deadlocked is set when the watchdog fired; the other fields then
	// describe the run up to that point.
	Deadlocked bool
	Cycles     int64

	// Message accounting over the measured windows.
	Generated int64
	Admitted  int64
	Dropped   int64
	Delivered int64

	// Latency tail quantiles over all measured deliveries (cycles).
	LatencyP50 float64
	LatencyP95 float64
	LatencyP99 float64
	LatencyMax float64

	// HopClassLatency[i] is the mean latency of messages needing i hops
	// (-1 where unobserved); VCFlitShare[v] the fraction of flit transfers
	// on virtual-channel class v (wormhole/vct only).
	HopClassLatency []float64
	VCFlitShare     []float64
	// ChannelFlits holds lifetime flit transfers per dense channel slot
	// (wormhole/vct only); feed it to analysis.ChannelBalance or
	// viz.ChannelHeatmap.
	ChannelFlits []int64 `json:",omitempty"`

	// Telemetry aggregates the run's collector when Config.Telemetry was
	// set: per-channel utilization, head-blocked cycles, occupancy gauges.
	Telemetry *telemetry.Summary `json:",omitempty"`
	// Forensics aggregates the run's congestion forensics when
	// Config.Forensics was set: blame mass per channel, congestion-tree
	// shapes, wait-for cycle witnesses and per-class latency anatomy.
	Forensics *forensics.Summary `json:",omitempty"`
	// TraceEvents is the retained lifecycle trace (Config.Telemetry.Trace);
	// kept out of JSON — export with telemetry.WriteChromeTrace or
	// telemetry.WriteJSONL.
	TraceEvents []telemetry.Event `json:"-"`
}

// String renders a one-line summary.
func (r Result) String() string {
	state := "ok"
	if r.Deadlocked {
		state = "DEADLOCK"
	} else if !r.Converged {
		state = "max-samples"
	}
	return fmt.Sprintf("%-5s %-9s rho=%.2f lat=%7.1f+-%-5.1f thr=%.3f drops=%d [%s]",
		r.Algorithm, r.Pattern, r.OfferedLoad, r.AvgLatency, r.LatencyBound, r.Throughput, r.Dropped, state)
}

// stepper abstracts the two engines for the measurement loop.
type stepper interface {
	Step() error
	Reseed(seed uint64)
}

// safAdapter adds Reseed to the saf engine.
type safAdapter struct {
	*saf.Network
	wl traffic.Workload
}

func (a safAdapter) Reseed(seed uint64) { a.wl.Reseed(seed) }

// Run executes one simulation point.
func Run(cfg Config) (Result, error) {
	cfg.ApplyDefaults()
	g := cfg.Grid()
	alg, err := routing.Get(cfg.Algorithm)
	if err != nil {
		return Result{}, err
	}
	if err := alg.Compatible(g); err != nil {
		return Result{}, err
	}
	pattern, err := traffic.Parse(g, cfg.Pattern)
	if err != nil {
		return Result{}, err
	}
	policy, err := routing.GetPolicy(cfg.Policy)
	if err != nil {
		return Result{}, err
	}

	// Probe the pattern's mean distance with a zero-rate workload, then
	// derive lambda via eq. (4): rho = lambda * msgLen * meanDist / 2n.
	probe := traffic.NewBernoulli(g, pattern, 0, cfg.Seed)
	meanDist := probe.MeanDistance()
	lambda := cfg.InjectionRate
	if lambda == 0 {
		if meanDist == 0 {
			return Result{}, fmt.Errorf("core: pattern %s generates no traffic", cfg.Pattern)
		}
		lambda = cfg.OfferedLoad * float64(2*g.N()) / (float64(cfg.MsgLen) * meanDist)
	}
	if lambda > 1 {
		return Result{}, fmt.Errorf("core: offered load %.3g needs injection rate %.3g > 1 message/node/cycle", cfg.OfferedLoad, lambda)
	}
	wl := traffic.NewBernoulli(g, pattern, lambda, cfg.Seed)

	res := Result{
		Algorithm:     cfg.Algorithm,
		Pattern:       cfg.Pattern,
		Switching:     cfg.Switching,
		K:             cfg.K,
		N:             cfg.N,
		Mesh:          cfg.Mesh,
		OfferedLoad:   cfg.OfferedLoad,
		InjectionRate: lambda,
		MeanDistance:  meanDist,
	}

	// The delivery hook routes latencies into the current sample's
	// stratified estimator (nil outside measured windows).
	var sample *stats.Stratified
	hopStats := make([]stats.Welford, g.Diameter()+1)
	var latHist stats.Histogram
	onDeliver := func(m *message.Message) {
		if sample != nil {
			sample.Add(m.HopsTotal, float64(m.Latency()))
			hopStats[m.HopsTotal].Add(float64(m.Latency()))
			latHist.Add(float64(m.Latency()))
		}
	}

	var st stepper
	var wn *network.Network
	var sn *saf.Network
	var tel *telemetry.Collector
	if cfg.Telemetry != nil && cfg.Switching != StoreFwd {
		tel = telemetry.New(*cfg.Telemetry, g.ChannelSlots(), alg.NumVCs(g))
	}
	var fore *forensics.Analyzer
	if cfg.Forensics != nil && cfg.Switching != StoreFwd {
		fore = forensics.New(*cfg.Forensics, g.ChannelSlots())
	}
	switch cfg.Switching {
	case Wormhole, CutThrough:
		wn, err = network.New(network.Config{
			Grid: g, Algorithm: alg, Policy: policy, Workload: wl,
			MsgLen: cfg.MsgLen, BufDepth: cfg.BufDepth, CCLimit: cfg.CCLimit,
			InjectionPorts: cfg.InjectionPorts, RouteDelay: cfg.RouteDelay,
			Seed: cfg.Seed, OnDeliver: onDeliver, Telemetry: tel, Phases: cfg.PhaseProf,
			Forensics: fore,
		})
		if err != nil {
			return res, err
		}
		st = wn
	case StoreFwd:
		sn, err = saf.New(saf.Config{
			Grid: g, Algorithm: alg, Policy: policy, Workload: wl,
			MsgLen: cfg.MsgLen, CCLimit: cfg.CCLimit,
			Seed: cfg.Seed, OnDeliver: onDeliver,
		})
		if err != nil {
			return res, err
		}
		st = safAdapter{sn, wl}
	default:
		return res, fmt.Errorf("core: unknown switching %q", cfg.Switching)
	}

	// The tick publication: every tickGap cycles OnTick receives a deep copy
	// of the observable state (wormhole/vct only — the saf engine has no
	// flit-level channels to publish).
	var tickGap, sinceTick, lastRecorded int64
	if cfg.OnTick != nil && wn != nil {
		tickGap = cfg.TickCycles
		if tickGap <= 0 {
			tickGap = 1000
		}
	}
	emitTick := func(final bool) {
		ev := TickEvent{
			Algorithm: cfg.Algorithm, Pattern: cfg.Pattern, Switching: cfg.Switching,
			K: cfg.K, N: cfg.N, Mesh: cfg.Mesh, OfferedLoad: cfg.OfferedLoad, Seed: cfg.Seed,
			Cycle: wn.Now(), InFlight: wn.InFlight(),
			Counters:     wn.Total(),
			Worms:        wn.WormStates(),
			ChannelFlits: wn.ChannelFlitCounts(),
			Final:        final,
		}
		if fore != nil {
			ev.Forensics = fore.Summary()
		}
		if tel != nil {
			ev.Telemetry = tel.Summary()
			if fresh := tel.Recorded() - lastRecorded; fresh > 0 {
				if fresh > 64 {
					fresh = 64
				}
				ev.Events = tel.LastEvents(int(fresh))
			}
			lastRecorded = tel.Recorded()
		}
		cfg.OnTick(ev)
	}
	runFor := func(cycles int64) error {
		for i := int64(0); i < cycles; i++ {
			if err := st.Step(); err != nil {
				return err
			}
			if tickGap > 0 {
				if sinceTick++; sinceTick >= tickGap {
					sinceTick = 0
					emitTick(false)
				}
			}
		}
		return nil
	}

	weights := wl.HopClassWeights()
	conv := &stats.Convergence{MinSamples: cfg.MinSamples, MaxSamples: cfg.MaxSamples, Tolerance: cfg.Tolerance}
	var thr stats.Welford
	var deadlock error

	finish := func() {
		res.Cycles = cfgCycles(cfg, conv.Samples())
		if wn != nil {
			t := wn.Total()
			res.Generated, res.Admitted, res.Dropped, res.Delivered = t.Generated, t.Admitted, t.Dropped, t.Delivered
			if t.FlitMoves > 0 {
				res.VCFlitShare = make([]float64, len(t.FlitMovesByClass))
				for i, f := range t.FlitMovesByClass {
					res.VCFlitShare[i] = float64(f) / float64(t.FlitMoves)
				}
			}
		} else {
			res.Generated, res.Admitted, res.Dropped, res.Delivered = sn.Counts()
		}
		res.HopClassLatency = make([]float64, len(hopStats))
		for i := range hopStats {
			if hopStats[i].Count() == 0 {
				res.HopClassLatency[i] = -1 // unobserved (JSON has no NaN)
			} else {
				res.HopClassLatency[i] = hopStats[i].Mean()
			}
		}
		if wn != nil {
			res.ChannelFlits = wn.ChannelFlitCounts()
		}
		res.Samples = conv.Samples()
		res.Throughput = thr.Mean()
		if latHist.Count() > 0 {
			q := latHist.Quantiles(0.5, 0.95, 0.99)
			res.LatencyP50, res.LatencyP95, res.LatencyP99 = q[0], q[1], q[2]
			res.LatencyMax = latHist.Max()
		}
		if tel != nil {
			res.Telemetry = tel.Summary()
			res.TraceEvents = tel.Events()
		}
		if fore != nil {
			res.Forensics = fore.Summary()
		}
		if tickGap > 0 {
			emitTick(true)
		}
	}

	if err := runFor(cfg.WarmupCycles); err != nil {
		deadlock = err
	}
	var lastBound float64
	for deadlock == nil {
		sample = stats.NewStratified(weights)
		if wn != nil {
			wn.ResetWindow()
		}
		startMoves, startCycles := engineWindow(wn, sn)
		if err := runFor(cfg.SampleCycles); err != nil {
			deadlock = err
			break
		}
		endMoves, endCycles := engineWindow(wn, sn)
		if endCycles > startCycles {
			thr.Add(float64(endMoves-startMoves) / (float64(endCycles-startCycles) * float64(g.NumChannels())))
		}
		conv.Record(sample.Mean())
		lastBound = sample.ErrorBound()
		done := conv.Done(sample)
		if cfg.OnSample != nil {
			cfg.OnSample(SampleEvent{
				Sample: conv.Samples(), MaxSamples: cfg.MaxSamples,
				Mean: sample.Mean(), Bound: lastBound, Done: done,
			})
		}
		sample = nil
		if done {
			res.Converged = conv.Samples() < cfg.MaxSamples
			break
		}
		// Unmeasured gap with fresh random streams, per the paper.
		st.Reseed(cfg.Seed + uint64(conv.Samples())*0x9e3779b97f4a7c15)
		if err := runFor(cfg.GapCycles); err != nil {
			deadlock = err
			break
		}
	}

	acrossBound, acrossMean := conv.AcrossSampleBound()
	res.AvgLatency = acrossMean
	res.LatencyBound = math.Max(lastBound, acrossBound)
	if math.IsInf(res.LatencyBound, 1) {
		res.LatencyBound = lastBound
	}
	finish()
	if deadlock != nil {
		res.Deadlocked = true
		res.Converged = false
		return res, deadlock
	}
	return res, nil
}

// engineWindow reads cumulative flit moves and cycles from whichever engine
// is active.
func engineWindow(wn *network.Network, sn *saf.Network) (moves, cycles int64) {
	if wn != nil {
		t := wn.Total()
		return t.FlitMoves, t.Cycles
	}
	return sn.FlitMoves(), sn.Now()
}

// cfgCycles estimates cycles simulated for reporting.
func cfgCycles(cfg Config, samples int) int64 {
	return cfg.WarmupCycles + int64(samples)*(cfg.SampleCycles+cfg.GapCycles)
}

// RunCached executes one simulation point through cfg.Cache: a hit returns
// the stored Result with zero engine cycles, a miss runs the point and
// stores it. hit reports which path was taken. With no cache attached it is
// exactly Run. Configs that retain a lifecycle trace bypass the cache both
// ways (TraceEvents are deliberately not persisted, so a cached Result
// could not honor them).
//
// Cached deadlocked points return their recorded Result with a nil error:
// the deadlock is a deterministic property of the config, already fully
// described by Result.Deadlocked, and the original engine error (a
// network.DeadlockError with live worm state) cannot outlive the run that
// produced it. Callers following the Sweep convention — check
// Result.Deadlocked, not just err — behave identically on both paths.
func RunCached(cfg Config) (r Result, hit bool, err error) {
	if cfg.Cache == nil || (cfg.Telemetry != nil && cfg.Telemetry.Trace) {
		r, err = Run(cfg)
		return r, false, err
	}
	hash := cfg.Hash()
	if r, ok := cfg.Cache.Lookup(hash); ok {
		return r, true, nil
	}
	r, err = Run(cfg)
	if err != nil && !r.Deadlocked {
		return r, false, err
	}
	if serr := cfg.Cache.Store(hash, cfg.Canonical(), r); serr != nil {
		return r, false, fmt.Errorf("core: record run %s: %w", hash[:12], serr)
	}
	return r, false, err
}

// Sweep runs cfg at each offered load, in parallel across the machine's
// cores (each individual simulation is single-threaded and deterministic,
// so the results are identical to a sequential sweep). Results come back in
// load order. Deadlocks are recorded in their Result rather than aborting
// the sweep; any other error aborts.
func Sweep(cfg Config, loads []float64) ([]Result, error) {
	return SweepN(cfg, loads, runtime.GOMAXPROCS(0)) //lint:allow purity (worker count only sets parallelism; results are bit-identical at any width, test-pinned)
}

// SweepN is Sweep with an explicit worker count (minimum 1).
func SweepN(cfg Config, loads []float64, workers int) ([]Result, error) {
	return SweepObserved(cfg, loads, workers, nil)
}

// SweepObserved is SweepN with a completion callback: onDone is invoked once
// per finished point with its load index and result, from the finishing
// worker's goroutine (the callback must be safe for concurrent use —
// telemetry.Progress is). It backs the CLIs' -progress flag. The points run
// on a work-stealing Scheduler; Config hooks (OnSample, OnTick, a shared
// PhaseProf) fire from whichever worker runs the point, so shared hooks must
// be safe for concurrent use.
func SweepObserved(cfg Config, loads []float64, workers int, onDone func(i int, r Result)) ([]Result, error) {
	if workers > len(loads) {
		workers = len(loads)
	}
	results := make([]Result, len(loads))
	errs := make([]error, len(loads))
	s := NewScheduler(workers)
	for i := range loads {
		i := i
		s.Submit(func(int) {
			c := cfg
			c.OfferedLoad = loads[i]
			r, _, err := RunCached(c)
			results[i] = r
			if err != nil && !r.Deadlocked {
				errs[i] = fmt.Errorf("core: sweep at rho=%.3g: %w", loads[i], err)
			}
			if onDone != nil {
				onDone(i, r)
			}
		})
	}
	s.Close()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// PeakThroughput returns the maximum achieved throughput in results and the
// offered load where it occurred.
func PeakThroughput(results []Result) (peak, atLoad float64) {
	for _, r := range results {
		if r.Throughput > peak {
			peak, atLoad = r.Throughput, r.OfferedLoad
		}
	}
	return peak, atLoad
}
