package core

import (
	"reflect"
	"testing"

	"wormsim/internal/telemetry"
)

func TestRunEmitsTicks(t *testing.T) {
	cfg := quickTelCfg()
	cfg.TickCycles = 100
	var ticks []TickEvent
	cfg.OnTick = func(ev TickEvent) { ticks = append(ticks, ev) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) < 2 {
		t.Fatalf("only %d ticks for a %d-cycle run", len(ticks), res.Cycles)
	}
	last := ticks[len(ticks)-1]
	if !last.Final {
		t.Error("closing tick not marked Final")
	}
	for i, ev := range ticks {
		if ev.Algorithm != cfg.Algorithm || ev.K != cfg.K || ev.OfferedLoad != cfg.OfferedLoad {
			t.Fatalf("tick %d lost run identity: %+v", i, ev)
		}
		if i > 0 && ev.Cycle < ticks[i-1].Cycle {
			t.Fatalf("tick cycles went backwards: %d then %d", ticks[i-1].Cycle, ev.Cycle)
		}
		if ev.Telemetry == nil {
			t.Fatalf("tick %d missing telemetry summary", i)
		}
		if len(ev.ChannelFlits) == 0 {
			t.Fatalf("tick %d missing channel flits", i)
		}
	}
	// The final tick's totals must agree with the result's accounting.
	if last.Counters.Delivered != res.Delivered {
		t.Errorf("final tick delivered %d, result says %d", last.Counters.Delivered, res.Delivered)
	}
	// Fresh-event streaming: ticks never replay events (each event is
	// recorded once, so the concatenation is at most everything recorded).
	total := 0
	for _, ev := range ticks {
		total += len(ev.Events)
	}
	if rec := int(res.Telemetry.TraceEvicted) + res.Telemetry.TraceEvents; total > rec {
		t.Errorf("ticks carried %d events, only %d were recorded", total, rec)
	}
}

// TestObserversDoNotPerturb pins the determinism contract for the two new
// hooks: attaching OnTick and a phase profiler must leave the Result
// bit-identical to a bare run.
func TestObserversDoNotPerturb(t *testing.T) {
	cfg := quickTelCfg()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := cfg
	obs.TickCycles = 50
	obs.OnTick = func(TickEvent) {}
	obs.PhaseProf = telemetry.NewPhaseProfiler()
	got, err := Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("observed run diverged from bare run:\nbase %+v\ngot  %+v", base, got)
	}
	if s := obs.PhaseProf.Snapshot(); s.Cycles == 0 || s.Total() == 0 {
		t.Errorf("phase profiler saw nothing: %+v", s)
	}
}
