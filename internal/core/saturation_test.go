package core

import "testing"

func TestFindSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := Config{
		K: 8, N: 2,
		Algorithm:    "ecube",
		Seed:         5,
		WarmupCycles: 1200,
		SampleCycles: 600,
		GapCycles:    150,
		MaxSamples:   4,
	}
	load, at, err := FindSaturation(cfg, 0.1, 1.0, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// e-cube on an 8x8 torus saturates somewhere in the 0.3-0.6 band; the
	// point is the bracket invariants, not the exact knee.
	if load < 0.15 || load > 0.7 {
		t.Errorf("ecube saturation at %.3f, expected mid-range", load)
	}
	if at.OfferedLoad != load {
		t.Errorf("result echoes load %.3f, want %.3f", at.OfferedLoad, load)
	}
	if load-at.Throughput > 0.03 {
		t.Errorf("knee result not tracking: offered %.3f achieved %.3f", load, at.Throughput)
	}

	// A hop scheme saturates strictly later than e-cube.
	cfg.Algorithm = "nbc"
	nbcLoad, _, err := FindSaturation(cfg, 0.1, 1.0, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if nbcLoad <= load {
		t.Errorf("nbc saturates at %.3f, should be beyond ecube's %.3f", nbcLoad, load)
	}
}

func TestFindSaturationBracketErrors(t *testing.T) {
	cfg := Config{K: 8, N: 2, Algorithm: "ecube", WarmupCycles: 200, SampleCycles: 200, MaxSamples: 3}
	if _, _, err := FindSaturation(cfg, 0.5, 0.5, 0.05, 0.02); err == nil {
		t.Error("degenerate bracket accepted")
	}
	if _, _, err := FindSaturation(cfg, -1, 0.5, 0.05, 0.02); err == nil {
		t.Error("negative bracket accepted")
	}
}

func TestFindSaturationNeverSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Within a tiny load bracket nothing saturates: the search reports hi.
	cfg := Config{
		K: 8, N: 2, Algorithm: "nbc", Seed: 5,
		WarmupCycles: 800, SampleCycles: 400, GapCycles: 100, MaxSamples: 3,
	}
	load, _, err := FindSaturation(cfg, 0.05, 0.15, 0.05, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if load != 0.15 {
		t.Errorf("unsaturated bracket should return hi, got %.3f", load)
	}
}
