package core

import (
	"strings"
	"testing"

	"wormsim/internal/telemetry"
)

// TestHashCanonicalization pins the content-address contract: the hash is a
// pure function of the simulation point, not of how the Config was spelled
// or what runtime hooks ride along.
func TestHashCanonicalization(t *testing.T) {
	zero := Config{}
	explicit := Config{
		K: 16, N: 2, Algorithm: "ecube", Pattern: "uniform", Switching: Wormhole,
		MsgLen: 16, BufDepth: 4, CCLimit: 2, InjectionPorts: 2,
		WarmupCycles: 5000, SampleCycles: 2000, GapCycles: 500,
		MinSamples: 3, MaxSamples: 12, Tolerance: 0.05, Seed: 0x5eed,
	}
	if zero.Hash() != explicit.Hash() {
		t.Errorf("zero config and its spelled-out defaults hash differently:\n%s\n%s", zero.Hash(), explicit.Hash())
	}

	hooked := explicit
	hooked.OnSample = func(SampleEvent) {}
	hooked.OnTick = func(TickEvent) {}
	hooked.TickCycles = 250
	hooked.PhaseProf = telemetry.NewPhaseProfiler()
	hooked.Cache = nopCache{}
	if hooked.Hash() != explicit.Hash() {
		t.Error("runtime hooks, tick period or cache attachment changed the hash")
	}

	if h := explicit.Hash(); len(h) != 64 || strings.ToLower(h) != h {
		t.Errorf("hash %q is not lowercase hex sha256", h)
	}
}

// TestHashDistinguishesSimulationPoints: any field that changes the Result
// must change the hash.
func TestHashDistinguishesSimulationPoints(t *testing.T) {
	base := Config{}
	mutations := map[string]func(*Config){
		"K":           func(c *Config) { c.K = 8 },
		"N":           func(c *Config) { c.N = 3 },
		"Mesh":        func(c *Config) { c.Mesh = true },
		"Algorithm":   func(c *Config) { c.Algorithm = "nbc" },
		"Pattern":     func(c *Config) { c.Pattern = "transpose" },
		"Policy":      func(c *Config) { c.Policy = "first" },
		"Switching":   func(c *Config) { c.Switching = CutThrough },
		"OfferedLoad": func(c *Config) { c.OfferedLoad = 0.42 },
		"MsgLen":      func(c *Config) { c.MsgLen = 32 },
		"BufDepth":    func(c *Config) { c.BufDepth = 8 },
		"CCLimit":     func(c *Config) { c.CCLimit = 1 },
		"Seed":        func(c *Config) { c.Seed = 99 },
		"MaxSamples":  func(c *Config) { c.MaxSamples = 5 },
		"Telemetry":   func(c *Config) { c.Telemetry = &telemetry.Options{Metrics: true} },
	}
	seen := map[string]string{base.Hash(): "base"}
	names := make([]string, 0, len(mutations))
	for name := range mutations { //lint:allow simdeterminism (sorted below)
		names = append(names, name)
	}
	// Sorted so a collision report is deterministic.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		c := base
		mutations[name](&c)
		h := c.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collides with %s (hash %s)", name, prev, h[:12])
		}
		seen[h] = name
	}
}

// TestPairKeyAlignsAcrossAlgorithms: PairKey masks only the algorithm, so
// A-vs-B comparison points align exactly when everything else matches.
func TestPairKeyAlignsAcrossAlgorithms(t *testing.T) {
	a := Config{Algorithm: "nbc", OfferedLoad: 0.5}
	b := Config{Algorithm: "ecube", OfferedLoad: 0.5}
	if a.PairKey() != b.PairKey() {
		t.Error("configs differing only in algorithm have different PairKeys")
	}
	if a.Hash() == b.Hash() {
		t.Error("configs differing in algorithm share a Hash")
	}
	c := b
	c.OfferedLoad = 0.6
	if a.PairKey() == c.PairKey() {
		t.Error("PairKey ignored the offered load")
	}
}

// nopCache is the smallest ResultCache: never hits, remembers nothing.
type nopCache struct{}

func (nopCache) Lookup(string) (Result, bool)       { return Result{}, false }
func (nopCache) Store(string, Config, Result) error { return nil }
