package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FigureSpec defines one of the paper's evaluation figures as code: the
// traffic pattern, switching technique, algorithms and offered-load axis
// whose sweep regenerates its latency and throughput curves.
type FigureSpec struct {
	// ID is the experiment id from DESIGN.md (fig3, fig4, fig5, vct).
	ID string
	// Title is the paper's caption.
	Title string
	// Pattern, Switching and Algorithms identify the sweep.
	Pattern    string
	Switching  Switching
	Algorithms []string
	// Loads is the offered-channel-utilization axis.
	Loads []float64
}

// paperLoads is the offered-load axis of Figures 3-5 (fraction of
// capacity).
var paperLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// paperAlgs is the paper's presentation order: the three hop schemes, 2pn,
// then the non- and partially-adaptive baselines.
var paperAlgs = []string{"nbc", "phop", "nhop", "2pn", "ecube", "nlast"}

// Figures returns the paper's experiments in order: Figures 3, 4, 5 and the
// sec. 3.4 virtual cut-through comparison.
func Figures() []FigureSpec {
	return []FigureSpec{
		{
			ID:         "fig3",
			Title:      "Performance of the routing algorithms for uniform traffic (16-flit worms)",
			Pattern:    "uniform",
			Switching:  Wormhole,
			Algorithms: paperAlgs,
			Loads:      paperLoads,
		},
		{
			ID:         "fig4",
			Title:      "Performance for 4% hotspot traffic (hot node (15,15))",
			Pattern:    "hotspot:0.04:255",
			Switching:  Wormhole,
			Algorithms: paperAlgs,
			Loads:      paperLoads,
		},
		{
			ID:         "fig5",
			Title:      "Performance for local traffic with 0.4 locality fraction (7x7 box)",
			Pattern:    "local:3",
			Switching:  Wormhole,
			Algorithms: paperAlgs,
			Loads:      paperLoads,
		},
		{
			ID:         "vct",
			Title:      "Sec 3.4: virtual cut-through routing of 16-flit packets, uniform traffic",
			Pattern:    "uniform",
			Switching:  CutThrough,
			Algorithms: []string{"nbc", "2pn", "ecube"},
			Loads:      paperLoads,
		},
	}
}

// FigureByID returns the spec with the given id.
func FigureByID(id string) (FigureSpec, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	ids := make([]string, 0, 4)
	for _, f := range Figures() {
		ids = append(ids, f.ID)
	}
	return FigureSpec{}, fmt.Errorf("core: unknown figure %q (have %s)", id, strings.Join(ids, ", "))
}

// Series is one algorithm's curve within a figure.
type Series struct {
	Algorithm string
	Results   []Result
}

// FigureResult is a fully evaluated figure.
type FigureResult struct {
	Spec   FigureSpec
	Series []Series
}

// RunFigure sweeps every algorithm of the spec over its load axis. base
// supplies shared settings (sizes, seeds, methodology); its Algorithm,
// Pattern, Switching and OfferedLoad fields are overridden by the spec.
// Deadlocked points are recorded in their Result and do not abort the
// figure.
func RunFigure(spec FigureSpec, base Config) (FigureResult, error) {
	fr := FigureResult{Spec: spec}
	for _, alg := range spec.Algorithms {
		cfg := base
		cfg.Algorithm = alg
		cfg.Pattern = spec.Pattern
		cfg.Switching = spec.Switching
		results, err := Sweep(cfg, spec.Loads)
		if err != nil {
			return fr, fmt.Errorf("core: figure %s, algorithm %s: %w", spec.ID, alg, err)
		}
		fr.Series = append(fr.Series, Series{Algorithm: alg, Results: results})
	}
	return fr, nil
}

// WriteTable renders the figure as two aligned text tables (latency, then
// achieved throughput), one row per offered load, one column per algorithm
// — the textual equivalent of the paper's two plots per figure.
func (fr FigureResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", fr.Spec.ID, fr.Spec.Title)
	writeGrid(w, "average latency (cycles)", fr, func(r Result) string {
		if r.Deadlocked {
			return "dlock"
		}
		return fmt.Sprintf("%.1f", r.AvgLatency)
	})
	writeGrid(w, "achieved channel utilization", fr, func(r Result) string {
		if r.Deadlocked {
			return "dlock"
		}
		return fmt.Sprintf("%.3f", r.Throughput)
	})
}

// writeGrid renders one metric grid.
func writeGrid(w io.Writer, title string, fr FigureResult, cell func(Result) string) {
	fmt.Fprintf(w, "## %s\n", title)
	fmt.Fprintf(w, "%-8s", "offered")
	for _, s := range fr.Series {
		fmt.Fprintf(w, "%10s", s.Algorithm)
	}
	fmt.Fprintln(w)
	for i, load := range fr.Spec.Loads {
		fmt.Fprintf(w, "%-8.2f", load)
		for _, s := range fr.Series {
			if i < len(s.Results) {
				fmt.Fprintf(w, "%10s", cell(s.Results[i]))
			} else {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the figure as CSV rows:
// figure,algorithm,offered,latency,bound,throughput,drops,state.
func (fr FigureResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,algorithm,offered,latency,latency_bound,throughput,injection_rate,dropped,delivered,state")
	for _, s := range fr.Series {
		for _, r := range s.Results {
			state := "ok"
			switch {
			case r.Deadlocked:
				state = "deadlock"
			case !r.Converged:
				state = "max-samples"
			}
			fmt.Fprintf(w, "%s,%s,%.3f,%.2f,%.2f,%.4f,%.5f,%d,%d,%s\n",
				fr.Spec.ID, s.Algorithm, r.OfferedLoad, r.AvgLatency, r.LatencyBound,
				r.Throughput, r.InjectionRate, r.Dropped, r.Delivered, state)
		}
	}
}

// Peaks summarizes each series' peak throughput, sorted descending — the
// scalar claims of experiment S-PEAK.
func (fr FigureResult) Peaks() []Peak {
	peaks := make([]Peak, 0, len(fr.Series))
	for _, s := range fr.Series {
		p, at := PeakThroughput(s.Results)
		peaks = append(peaks, Peak{Algorithm: s.Algorithm, Throughput: p, AtLoad: at})
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Throughput > peaks[j].Throughput })
	return peaks
}

// Peak is one algorithm's peak achieved throughput.
type Peak struct {
	Algorithm  string
	Throughput float64
	AtLoad     float64
}
