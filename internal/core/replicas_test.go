package core

import (
	"reflect"
	"sync"
	"testing"

	"wormsim/internal/forensics"
	"wormsim/internal/telemetry"
)

// mapCache is a minimal in-memory ResultCache for exercising the per-seed
// cache consult without a disk store.
type mapCache struct {
	mu sync.Mutex
	m  map[string]Result
}

func newMapCache() *mapCache { return &mapCache{m: map[string]Result{}} }

func (c *mapCache) Lookup(hash string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[hash]
	return r, ok
}

func (c *mapCache) Store(hash string, _ Config, r Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[hash] = r
	return nil
}

// TestRunReplicasMatchesRun pins the batch plumbing's contract: every
// replica's Result is equal — field for field — to a scalar Run of the same
// config and seed, across switching techniques and algorithms.
func TestRunReplicasMatchesRun(t *testing.T) {
	seeds := []uint64{5, 19, 77}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"phop", quick("phop")},
		{"nbc", quick("nbc")},
		{"ecube-mesh", func() Config {
			c := quick("ecube")
			c.Mesh = true
			return c
		}()},
		{"nlast-vct", func() Config {
			c := quick("nlast")
			c.Switching = CutThrough
			return c
		}()},
		{"phop-saf-fallback", func() Config {
			c := quick("phop")
			c.Switching = StoreFwd
			c.OfferedLoad = 0.1
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := RunReplicas(tc.cfg, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(seeds) {
				t.Fatalf("got %d results for %d seeds", len(got), len(seeds))
			}
			for i, seed := range seeds {
				c := tc.cfg
				c.Seed = seed
				want, err := Run(c)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("seed %d: replica result diverges from scalar Run\n got: %+v\nwant: %+v", seed, got[i], want)
				}
			}
		})
	}
}

// TestRunReplicasObserverInstruments: telemetry and forensics attach to the
// first replica only, whose summaries match an instrumented scalar Run; the
// sibling replicas' numbers match bare scalar runs (instrumentation is
// observation, never perturbation).
func TestRunReplicasObserverInstruments(t *testing.T) {
	cfg := quick("nbc")
	cfg.Telemetry = &telemetry.Options{Trace: true, TraceCap: 1 << 14}
	cfg.Forensics = &forensics.Options{SampleEvery: 16}
	seeds := []uint64{5, 19}
	got, err := RunReplicas(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	obs := cfg
	obs.Seed = seeds[0]
	want0, err := Run(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want0) {
		t.Errorf("observer replica diverges from instrumented scalar Run\n got: %+v\nwant: %+v", got[0], want0)
	}
	if got[0].Telemetry == nil || got[0].Forensics == nil || len(got[0].TraceEvents) == 0 {
		t.Fatal("observer replica missing instrument output")
	}

	bare := quick("nbc")
	bare.Seed = seeds[1]
	want1, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Telemetry != nil || got[1].Forensics != nil || got[1].TraceEvents != nil {
		t.Error("non-observer replica carries instrument output")
	}
	if !reflect.DeepEqual(got[1], want1) {
		t.Errorf("sibling replica diverges from bare scalar Run\n got: %+v\nwant: %+v", got[1], want1)
	}
}

// TestRunReplicasCache: the per-seed cache consult serves hits without
// engine work, fills misses, and mixes freely with scalar RunCached entries
// (same hashes, same stored bits).
func TestRunReplicasCache(t *testing.T) {
	cfg := quick("phop")
	cfg.Cache = newMapCache()
	seeds := []uint64{5, 19, 77}

	// Pre-populate one seed via the scalar path.
	pre := cfg
	pre.Seed = seeds[1]
	preRes, hit, err := RunCached(pre)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("empty cache reported a hit")
	}

	first, err := RunReplicas(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first[1], preRes) {
		t.Error("cache hit differs from stored scalar result")
	}

	// Every seed is now stored; a second call must be all hits, and a
	// scalar RunCached must hit the batch-stored entries.
	mc := cfg.Cache.(*mapCache)
	stored := len(mc.m)
	if stored != len(seeds) {
		t.Fatalf("cache holds %d entries, want %d", stored, len(seeds))
	}
	second, err := RunReplicas(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached replay differs from first run")
	}
	sc := cfg
	sc.Seed = seeds[2]
	r2, hit, err := RunCached(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("scalar RunCached missed a batch-stored entry")
	}
	if !reflect.DeepEqual(r2, first[2]) {
		t.Error("scalar hit differs from batch result")
	}
}

// TestRunReplicasEmptyAndSingle: degenerate widths work — zero seeds is a
// no-op, one seed matches scalar Run exactly.
func TestRunReplicasEmptyAndSingle(t *testing.T) {
	if rs, err := RunReplicas(quick("ecube"), nil); err != nil || len(rs) != 0 {
		t.Fatalf("empty seeds: %v, %d results", err, len(rs))
	}
	cfg := quick("ecube")
	got, err := RunReplicas(cfg, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("single replica diverges from scalar Run\n got: %+v\nwant: %+v", got[0], want)
	}
}
