package core

import (
	"math"
	"testing"
)

func TestParseLoadsRange(t *testing.T) {
	loads, err := ParseLoads("0.1:0.5:0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.3, 0.5}
	if len(loads) != len(want) {
		t.Fatalf("loads = %v, want %v", loads, want)
	}
	for i := range want {
		if math.Abs(loads[i]-want[i]) > 1e-9 {
			t.Errorf("loads[%d] = %v, want %v", i, loads[i], want[i])
		}
	}
	// The upper bound is included despite floating accumulation.
	loads, err = ParseLoads("0.1:1.0:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 10 {
		t.Errorf("0.1:1.0:0.1 gave %d points, want 10", len(loads))
	}
}

func TestParseLoadsList(t *testing.T) {
	loads, err := ParseLoads("0.25, 0.5,0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 3 || loads[0] != 0.25 || loads[2] != 0.9 {
		t.Errorf("loads = %v", loads)
	}
}

func TestParseLoadsErrors(t *testing.T) {
	for _, bad := range []string{"0.1:0.5", "a:b:c", "0.5:0.1:0.1", "0.1:0.5:0", "x,y", ""} {
		if _, err := ParseLoads(bad); err == nil {
			t.Errorf("ParseLoads(%q) succeeded", bad)
		}
	}
}
