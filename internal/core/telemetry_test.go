package core

import (
	"sync/atomic"
	"testing"

	"wormsim/internal/telemetry"
)

// quickTelCfg is a small fast configuration with telemetry on.
func quickTelCfg() Config {
	return Config{
		K: 8, N: 2, Algorithm: "nbc", Pattern: "uniform", OfferedLoad: 0.5,
		Seed: 3, WarmupCycles: 500, SampleCycles: 500, GapCycles: 100, MaxSamples: 3,
		Telemetry: &telemetry.Options{Metrics: true, Trace: true},
	}
}

func TestRunFillsTelemetry(t *testing.T) {
	var samples int32
	cfg := quickTelCfg()
	cfg.OnSample = func(ev SampleEvent) {
		atomic.AddInt32(&samples, 1)
		if ev.Sample <= 0 || ev.MaxSamples != cfg.MaxSamples || ev.Mean <= 0 {
			t.Errorf("bad sample event %+v", ev)
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry not filled")
	}
	if got, want := int(atomic.LoadInt32(&samples)), res.Samples; got != want {
		t.Errorf("OnSample called %d times, %d samples taken", got, want)
	}
	s := res.Telemetry
	if s.Cycles == 0 || len(s.ChannelBusy) == 0 {
		t.Errorf("empty summary %+v", s)
	}
	if len(res.TraceEvents) == 0 {
		t.Error("no trace events retained")
	}
	if s.TotalHeadBlocked() == 0 {
		t.Error("no head-blocked cycles at 0.5 offered load")
	}
	// The summary's busy counts are the engine's channel flit counts.
	for ch, b := range s.ChannelBusy {
		if b != res.ChannelFlits[ch] {
			t.Fatalf("channel %d: telemetry busy %d != ChannelFlits %d", ch, b, res.ChannelFlits[ch])
		}
	}
}

// TestHotspotSaturatesHotChannels is the acceptance scenario: under hotspot
// traffic the channels into the hot node must top the utilization ranking.
func TestHotspotSaturatesHotChannels(t *testing.T) {
	cfg := quickTelCfg()
	hot := 27 // node (3,3) on the 8x8 torus
	cfg.Pattern = "hotspot:0.2:27"
	cfg.OfferedLoad = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Grid()
	top := res.Telemetry.BusiestChannels(4)
	into := 0
	for _, ch := range top {
		up, dim, dir := g.ChannelInfo(ch)
		if g.Neighbor(up, dim, dir) == hot {
			into++
		}
	}
	if into < 3 {
		t.Errorf("only %d of the top-4 busiest channels feed the hot node %d (top: %v)", into, hot, top)
	}
}

func TestRunBatchFillsTelemetry(t *testing.T) {
	cfg := Config{K: 8, N: 2, Algorithm: "ecube", Seed: 5,
		Telemetry: &telemetry.Options{Metrics: true, Trace: true}}
	cfg.ApplyDefaults()
	wl, err := PermutationBurst(cfg, "transpose")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(cfg, wl, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil || res.Telemetry.Cycles == 0 {
		t.Fatalf("batch telemetry missing: %+v", res.Telemetry)
	}
	if len(res.TraceEvents) == 0 {
		t.Error("batch trace empty")
	}
}

func TestSweepObservedCallback(t *testing.T) {
	cfg := quickTelCfg()
	cfg.Telemetry = nil
	loads := []float64{0.1, 0.3, 0.5}
	var done int32
	results, err := SweepObserved(cfg, loads, 2, func(i int, r Result) {
		atomic.AddInt32(&done, 1)
		if r.OfferedLoad != loads[i] {
			t.Errorf("callback index %d got load %g", i, r.OfferedLoad)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(done) != len(loads) || len(results) != len(loads) {
		t.Errorf("callback fired %d times for %d loads", done, len(loads))
	}
}

// TestSafIgnoresTelemetry: the saf engine has no flit channels; a telemetry
// request must not break it.
func TestSafIgnoresTelemetry(t *testing.T) {
	cfg := quickTelCfg()
	cfg.Algorithm = "phop"
	cfg.Switching = StoreFwd
	cfg.OfferedLoad = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Error("saf run filled Telemetry")
	}
}
