package core

import (
	"fmt"
	"io"
)

// WriteMarkdown renders the figure as a markdown report section: latency
// and throughput tables, the peak summary, and per-series saturation notes
// — the machine-generated counterpart of EXPERIMENTS.md.
func (fr FigureResult) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", fr.Spec.ID, fr.Spec.Title)
	fmt.Fprintf(w, "Pattern `%s`, %s switching.\n\n", fr.Spec.Pattern, fr.Spec.Switching)

	writeMarkdownGrid(w, "Average latency (cycles)", fr, func(r Result) string {
		if r.Deadlocked {
			return "deadlock"
		}
		return fmt.Sprintf("%.1f", r.AvgLatency)
	})
	writeMarkdownGrid(w, "Achieved channel utilization", fr, func(r Result) string {
		if r.Deadlocked {
			return "deadlock"
		}
		return fmt.Sprintf("%.3f", r.Throughput)
	})

	fmt.Fprintf(w, "### Peaks\n\n")
	fmt.Fprintf(w, "| algorithm | peak throughput | at offered | saturates near |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	for _, p := range fr.Peaks() {
		sat := "-"
		for _, s := range fr.Series {
			if s.Algorithm != p.Algorithm {
				continue
			}
			for _, r := range s.Results {
				if r.OfferedLoad-r.Throughput > 0.02 {
					sat = fmt.Sprintf("%.2f", r.OfferedLoad)
					break
				}
			}
		}
		fmt.Fprintf(w, "| %s | %.3f | %.2f | %s |\n", p.Algorithm, p.Throughput, p.AtLoad, sat)
	}
	fmt.Fprintln(w)
}

// writeMarkdownGrid renders one metric as a markdown table.
func writeMarkdownGrid(w io.Writer, title string, fr FigureResult, cell func(Result) string) {
	fmt.Fprintf(w, "### %s\n\n", title)
	fmt.Fprintf(w, "| offered |")
	for _, s := range fr.Series {
		fmt.Fprintf(w, " %s |", s.Algorithm)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range fr.Series {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for i, load := range fr.Spec.Loads {
		fmt.Fprintf(w, "| %.2f |", load)
		for _, s := range fr.Series {
			if i < len(s.Results) {
				fmt.Fprintf(w, " %s |", cell(s.Results[i]))
			} else {
				fmt.Fprintf(w, " - |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
