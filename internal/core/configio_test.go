package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wormsim/internal/telemetry"
)

func TestConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	orig := Config{
		K: 8, N: 2,
		Algorithm:   "nbc",
		Pattern:     "hotspot:0.08",
		OfferedLoad: 0.45,
		CCLimit:     3,
		RouteDelay:  1,
		Seed:        99,
		Telemetry:   &telemetry.Options{Metrics: true, Trace: true, TraceCap: 1024},
	}
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, orig)
	}
}

func TestLoadConfigPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"Algorithm":"phop","OfferedLoad":0.6}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algorithm != "phop" || cfg.OfferedLoad != 0.6 {
		t.Errorf("loaded %+v", cfg)
	}
	cfg.ApplyDefaults()
	if cfg.K != 16 || cfg.MsgLen != 16 {
		t.Errorf("defaults not applied after load: %+v", cfg)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/cfg.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"Algoritm":"typo"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("unknown field accepted (typo protection broken)")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`{{{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(garbage); err == nil {
		t.Error("malformed JSON accepted")
	}
}
