package core

import (
	"math"
	"strings"
	"testing"
)

// quick returns a config with short methodology windows for tests.
func quick(alg string) Config {
	return Config{
		K: 8, N: 2,
		Algorithm:    alg,
		OfferedLoad:  0.3,
		Seed:         5,
		WarmupCycles: 500,
		SampleCycles: 500,
		GapCycles:    100,
		MaxSamples:   4,
	}
}

func TestApplyDefaultsMatchesPaperSetup(t *testing.T) {
	var c Config
	c.ApplyDefaults()
	if c.K != 16 || c.N != 2 || c.MsgLen != 16 {
		t.Errorf("paper defaults wrong: %+v", c)
	}
	if c.Algorithm != "ecube" || c.Pattern != "uniform" || c.Switching != Wormhole {
		t.Errorf("default identity wrong: %+v", c)
	}
	if c.MinSamples != 3 || c.MaxSamples != 12 || c.Tolerance != 0.05 {
		t.Errorf("convergence defaults wrong: %+v", c)
	}
	vct := Config{Switching: CutThrough}
	vct.ApplyDefaults()
	if vct.BufDepth != vct.MsgLen {
		t.Errorf("vct should force BufDepth=MsgLen, got %d", vct.BufDepth)
	}
	off := Config{CCLimit: -1, InjectionPorts: -1}
	off.ApplyDefaults()
	if off.CCLimit != 0 || off.InjectionPorts != 0 {
		t.Errorf("negative knobs should disable: %+v", off)
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(quick("phop"))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 0 {
		t.Errorf("latency %v", res.AvgLatency)
	}
	if res.Throughput <= 0 || res.Throughput > 1 {
		t.Errorf("throughput %v", res.Throughput)
	}
	if res.Samples < 3 {
		t.Errorf("samples %d < MinSamples", res.Samples)
	}
	if res.Delivered == 0 || res.Generated < res.Delivered {
		t.Errorf("accounting: %+v", res)
	}
	if res.Algorithm != "phop" || res.Pattern != "uniform" || res.Switching != Wormhole {
		t.Errorf("identity echo wrong: %+v", res)
	}
	if res.Deadlocked {
		t.Error("unexpected deadlock")
	}
	if !strings.Contains(res.String(), "phop") {
		t.Errorf("String() = %q", res.String())
	}
}

// TestInjectionRateDerivation: eq. (4) backwards — the derived lambda must
// reproduce the offered load.
func TestInjectionRateDerivation(t *testing.T) {
	c := quick("ecube")
	c.K = 16
	c.OfferedLoad = 0.4
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// lambda = rho * 2n / (ml * dbar) with dbar = 8.031.
	want := 0.4 * 4 / (16 * res.MeanDistance)
	if math.Abs(res.InjectionRate-want) > 1e-12 {
		t.Errorf("lambda = %v, want %v", res.InjectionRate, want)
	}
	if math.Abs(res.MeanDistance-8.031) > 0.001 {
		t.Errorf("mean distance %v", res.MeanDistance)
	}
	// At a low load the achieved throughput approximates the offered load.
	c.OfferedLoad = 0.2
	res, err = Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.2) > 0.03 {
		t.Errorf("achieved %v at offered 0.2", res.Throughput)
	}
}

func TestExplicitInjectionRateOverrides(t *testing.T) {
	c := quick("ecube")
	c.InjectionRate = 0.005
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectionRate != 0.005 {
		t.Errorf("rate %v, want 0.005", res.InjectionRate)
	}
}

// TestUnloadedLatencyMatchesEquationTwo at the experiment level: eq. (2)
// with negligible waiting.
func TestUnloadedLatencyNearFormula(t *testing.T) {
	c := quick("ecube")
	c.K = 16
	c.OfferedLoad = 0.02
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	want := res.MeanDistance + 16 - 1
	if math.Abs(res.AvgLatency-want) > 2 {
		t.Errorf("unloaded latency %v, want about %v", res.AvgLatency, want)
	}
}

func TestRunValidation(t *testing.T) {
	c := quick("bogus")
	if _, err := Run(c); err == nil {
		t.Error("unknown algorithm accepted")
	}
	c = quick("ecube")
	c.Pattern = "bogus"
	if _, err := Run(c); err == nil {
		t.Error("unknown pattern accepted")
	}
	c = quick("ecube")
	c.Policy = "bogus"
	if _, err := Run(c); err == nil {
		t.Error("unknown policy accepted")
	}
	c = quick("nhop")
	c.K = 5 // odd torus
	if _, err := Run(c); err == nil {
		t.Error("nhop on odd torus accepted")
	}
	c = quick("ecube")
	c.Switching = "teleport"
	if _, err := Run(c); err == nil {
		t.Error("unknown switching accepted")
	}
	c = quick("ecube")
	c.OfferedLoad = 50 // lambda > 1
	if _, err := Run(c); err == nil {
		t.Error("impossible offered load accepted")
	}
	c = quick("ecube")
	c.Pattern = "transpose"
	c.InjectionRate = 0 // derivation needs traffic; transpose generates some
	if _, err := Run(c); err != nil {
		t.Errorf("transpose run failed: %v", err)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quick("nbc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick("nbc"))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency || a.Throughput != b.Throughput || a.Delivered != b.Delivered {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestRunSAFSwitching(t *testing.T) {
	c := quick("phop")
	c.Switching = StoreFwd
	c.OfferedLoad = 0.1
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switching != StoreFwd {
		t.Error("switching echo wrong")
	}
	// SAF latency is far above the wormhole latency at the same low load.
	cw := quick("phop")
	cw.OfferedLoad = 0.1
	resW, err := Run(cw)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency < 2*resW.AvgLatency {
		t.Errorf("saf latency %v should dwarf wormhole %v", res.AvgLatency, resW.AvgLatency)
	}
}

func TestRunSAFRejectsChannelAlgorithms(t *testing.T) {
	c := quick("ecube")
	c.Switching = StoreFwd
	if _, err := Run(c); err == nil {
		t.Error("saf with ecube should be rejected (no deadlock-free buffer form)")
	}
}

func TestRunVCTSwitching(t *testing.T) {
	c := quick("2pn")
	c.Switching = CutThrough
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switching != CutThrough || res.Throughput <= 0 {
		t.Errorf("vct run broken: %+v", res)
	}
}

func TestVCFlitShareSumsToOne(t *testing.T) {
	res, err := Run(quick("nhop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VCFlitShare) == 0 {
		t.Fatal("no VC share recorded")
	}
	sum := 0.0
	for _, s := range res.VCFlitShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("VC shares sum to %v", sum)
	}
	// nhop loads lower classes more than higher ones (the imbalance nbc
	// exists to fix).
	if res.VCFlitShare[0] <= res.VCFlitShare[len(res.VCFlitShare)-1] {
		t.Errorf("nhop class 0 share %v should exceed top class %v",
			res.VCFlitShare[0], res.VCFlitShare[len(res.VCFlitShare)-1])
	}
}

func TestHopClassLatencyMonotoneTrend(t *testing.T) {
	res, err := Run(quick("phop"))
	if err != nil {
		t.Fatal(err)
	}
	// Distance-1 messages must be faster than diameter messages.
	first, last := -1.0, -1.0
	for d := 1; d < len(res.HopClassLatency); d++ {
		if res.HopClassLatency[d] >= 0 {
			if first < 0 {
				first = res.HopClassLatency[d]
			}
			last = res.HopClassLatency[d]
		}
	}
	if first < 0 || last < 0 || first >= last {
		t.Errorf("hop-class latencies not increasing: near %v far %v", first, last)
	}
}

func TestSweep(t *testing.T) {
	c := quick("ecube")
	loads := []float64{0.1, 0.3}
	results, err := Sweep(c, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.OfferedLoad != loads[i] {
			t.Errorf("result %d has load %v", i, r.OfferedLoad)
		}
	}
	if results[0].AvgLatency >= results[1].AvgLatency {
		t.Errorf("latency should rise with load: %v vs %v", results[0].AvgLatency, results[1].AvgLatency)
	}
	peak, at := PeakThroughput(results)
	if peak <= 0 || (at != 0.1 && at != 0.3) {
		t.Errorf("peak %v at %v", peak, at)
	}
	if p, a := PeakThroughput(nil); p != 0 || a != 0 {
		t.Error("empty peak should be zero")
	}
}

func TestMeshRun(t *testing.T) {
	c := quick("nlast")
	c.Mesh = true
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("mesh run delivered nothing")
	}
}

func TestHigherDimensionRun(t *testing.T) {
	c := quick("phop")
	c.K, c.N = 4, 3
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("4-ary 3-cube run delivered nothing")
	}
}
