package core

import (
	"fmt"
	"math"

	"wormsim/internal/forensics"
	"wormsim/internal/message"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/stats"
	"wormsim/internal/telemetry"
	"wormsim/internal/traffic"
)

// replicaRun is one replica's measurement state inside RunReplicas: the
// same estimators Run keeps as locals, held per replica so the batch
// engine's fused sweep can feed all of them from one pass.
type replicaRun struct {
	res       Result
	sample    *stats.Stratified
	hopStats  []stats.Welford
	latHist   stats.Histogram
	thr       stats.Welford
	conv      *stats.Convergence
	lastBound float64
	deadlock  error
	startMove int64
	startCyc  int64
}

// RunReplicas executes one simulation point at each seed, in lockstep on
// the batch engine (network.BatchNetwork): the replicas share precomputed
// tables and draw their arrival trials through one interleaved sweep per
// cycle, and every replica's Result is bit-identical to a scalar
// Run of the same config and seed. Replicas follow the paper's sampling
// methodology in phase (the warmup/sample/gap schedule is a config
// constant); a replica whose convergence rule fires drops out of the live
// set and stops costing anything while the stragglers finish.
//
// Deadlocked replicas are recorded in their Result (Deadlocked set, the
// other fields describing the run up to the stall) rather than returned as
// an error — the Sweep convention. The error return covers setup failures
// only.
//
// Config.Telemetry, Forensics and OnSample attach to the first replica
// only (the batch engine's observer); Config.Cache is consulted per seed,
// but only for uninstrumented configs, where a stored Result carries
// everything a run produces. Configs the batch engine does not cover
// (store-and-forward switching, OnTick publication) fall back to
// sequential scalar runs with identical results.
func RunReplicas(cfg Config, seeds []uint64) ([]Result, error) {
	cfg.ApplyDefaults()
	results := make([]Result, len(seeds))
	if len(seeds) == 0 {
		return results, nil
	}
	if cfg.Switching == StoreFwd || cfg.OnTick != nil {
		for i, seed := range seeds {
			c := cfg
			c.Seed = seed
			r, _, err := RunCached(c)
			results[i] = r
			if err != nil && !r.Deadlocked {
				return results, fmt.Errorf("core: replica seed=%#x: %w", seed, err)
			}
		}
		return results, nil
	}

	// Per-seed cache consult. Instrumented configs bypass it: the batch
	// engine attaches the collector/analyzer to the observer replica only,
	// so storing the bare siblings under an instrumented hash would poison
	// later instrumented lookups.
	useCache := cfg.Cache != nil && cfg.Telemetry == nil && cfg.Forensics == nil
	missIdx := make([]int, 0, len(seeds))
	missSeeds := make([]uint64, 0, len(seeds))
	for i, seed := range seeds {
		if useCache {
			c := cfg
			c.Seed = seed
			if r, ok := cfg.Cache.Lookup(c.Hash()); ok {
				results[i] = r
				continue
			}
		}
		missIdx = append(missIdx, i)
		missSeeds = append(missSeeds, seed)
	}
	if len(missSeeds) == 0 {
		return results, nil
	}

	g := cfg.Grid()
	alg, err := routing.Get(cfg.Algorithm)
	if err != nil {
		return results, err
	}
	if err := alg.Compatible(g); err != nil {
		return results, err
	}
	pattern, err := traffic.Parse(g, cfg.Pattern)
	if err != nil {
		return results, err
	}
	policy, err := routing.GetPolicy(cfg.Policy)
	if err != nil {
		return results, err
	}
	// Probe the pattern's mean distance with a zero-rate workload, then
	// derive lambda via eq. (4) — identical for every seed, so one probe
	// serves the whole batch.
	probe := traffic.NewBernoulli(g, pattern, 0, cfg.Seed)
	meanDist := probe.MeanDistance()
	lambda := cfg.InjectionRate
	if lambda == 0 {
		if meanDist == 0 {
			return results, fmt.Errorf("core: pattern %s generates no traffic", cfg.Pattern)
		}
		lambda = cfg.OfferedLoad * float64(2*g.N()) / (float64(cfg.MsgLen) * meanDist)
	}
	if lambda > 1 {
		return results, fmt.Errorf("core: offered load %.3g needs injection rate %.3g > 1 message/node/cycle", cfg.OfferedLoad, lambda)
	}
	base := traffic.NewBernoulli(g, pattern, lambda, missSeeds[0])
	wls := make([]traffic.Workload, len(missSeeds))
	for r, seed := range missSeeds {
		// Replicate shares the O(nodes^2) distance statistics: a replica
		// fleet pays the workload construction cost once.
		wls[r] = base.Replicate(seed)
	}

	sts := make([]replicaRun, len(missSeeds))
	for r := range sts {
		st := &sts[r]
		st.res = Result{
			Algorithm:     cfg.Algorithm,
			Pattern:       cfg.Pattern,
			Switching:     cfg.Switching,
			K:             cfg.K,
			N:             cfg.N,
			Mesh:          cfg.Mesh,
			OfferedLoad:   cfg.OfferedLoad,
			InjectionRate: lambda,
			MeanDistance:  meanDist,
		}
		st.hopStats = make([]stats.Welford, g.Diameter()+1)
		st.conv = &stats.Convergence{MinSamples: cfg.MinSamples, MaxSamples: cfg.MaxSamples, Tolerance: cfg.Tolerance}
	}

	var tel *telemetry.Collector
	if cfg.Telemetry != nil {
		tel = telemetry.New(*cfg.Telemetry, g.ChannelSlots(), alg.NumVCs(g))
	}
	var fore *forensics.Analyzer
	if cfg.Forensics != nil {
		fore = forensics.New(*cfg.Forensics, g.ChannelSlots())
	}
	bn, err := network.NewBatch(network.BatchConfig{
		Grid: g, Algorithm: alg, Policy: policy, Workloads: wls, Seeds: missSeeds,
		MsgLen: cfg.MsgLen, BufDepth: cfg.BufDepth, CCLimit: cfg.CCLimit,
		InjectionPorts: cfg.InjectionPorts, RouteDelay: cfg.RouteDelay,
		Telemetry: tel, Phases: cfg.PhaseProf, Forensics: fore,
		OnDeliver: func(r int, m *message.Message) {
			st := &sts[r]
			if st.sample != nil {
				st.sample.Add(m.HopsTotal, float64(m.Latency()))
				st.hopStats[m.HopsTotal].Add(float64(m.Latency()))
				st.latHist.Add(float64(m.Latency()))
			}
		},
	})
	if err != nil {
		return results, err
	}

	runFor := func(cycles int64) {
		for i := int64(0); i < cycles && bn.Live() > 0; i++ {
			for _, f := range bn.Step() {
				// The scalar loop stops at the watchdog's report; freeze the
				// faulted replica at the same cycle.
				sts[f.Replica].deadlock = f.Err
				bn.Deactivate(f.Replica)
			}
		}
	}

	weights := base.HopClassWeights()
	runFor(cfg.WarmupCycles)
	for bn.Live() > 0 {
		for r := range sts {
			if !bn.IsLive(r) {
				continue
			}
			st := &sts[r]
			st.sample = stats.NewStratified(weights)
			bn.ResetWindow(r)
			t := bn.Total(r)
			st.startMove, st.startCyc = t.FlitMoves, t.Cycles
		}
		runFor(cfg.SampleCycles)
		for r := range sts {
			if !bn.IsLive(r) {
				continue // faulted mid-sample: the period is discarded, as in Run
			}
			st := &sts[r]
			t := bn.Total(r)
			if t.Cycles > st.startCyc {
				st.thr.Add(float64(t.FlitMoves-st.startMove) / (float64(t.Cycles-st.startCyc) * float64(g.NumChannels())))
			}
			st.conv.Record(st.sample.Mean())
			st.lastBound = st.sample.ErrorBound()
			done := st.conv.Done(st.sample)
			if r == 0 && cfg.OnSample != nil {
				cfg.OnSample(SampleEvent{
					Sample: st.conv.Samples(), MaxSamples: cfg.MaxSamples,
					Mean: st.sample.Mean(), Bound: st.lastBound, Done: done,
				})
			}
			st.sample = nil
			if done {
				st.res.Converged = st.conv.Samples() < cfg.MaxSamples
				bn.Deactivate(r)
				continue
			}
			// Unmeasured gap with fresh random streams, per the paper.
			bn.Reseed(r, missSeeds[r]+uint64(st.conv.Samples())*0x9e3779b97f4a7c15)
		}
		runFor(cfg.GapCycles)
	}

	for r := range sts {
		st := &sts[r]
		acrossBound, acrossMean := st.conv.AcrossSampleBound()
		st.res.AvgLatency = acrossMean
		st.res.LatencyBound = math.Max(st.lastBound, acrossBound)
		if math.IsInf(st.res.LatencyBound, 1) {
			st.res.LatencyBound = st.lastBound
		}
		st.res.Cycles = cfgCycles(cfg, st.conv.Samples())
		t := bn.Total(r)
		st.res.Generated, st.res.Admitted, st.res.Dropped, st.res.Delivered = t.Generated, t.Admitted, t.Dropped, t.Delivered
		if t.FlitMoves > 0 {
			st.res.VCFlitShare = make([]float64, len(t.FlitMovesByClass))
			for i, f := range t.FlitMovesByClass {
				st.res.VCFlitShare[i] = float64(f) / float64(t.FlitMoves)
			}
		}
		st.res.HopClassLatency = make([]float64, len(st.hopStats))
		for i := range st.hopStats {
			if st.hopStats[i].Count() == 0 {
				st.res.HopClassLatency[i] = -1 // unobserved (JSON has no NaN)
			} else {
				st.res.HopClassLatency[i] = st.hopStats[i].Mean()
			}
		}
		st.res.ChannelFlits = bn.ChannelFlitCounts(r)
		st.res.Samples = st.conv.Samples()
		st.res.Throughput = st.thr.Mean()
		if st.latHist.Count() > 0 {
			q := st.latHist.Quantiles(0.5, 0.95, 0.99)
			st.res.LatencyP50, st.res.LatencyP95, st.res.LatencyP99 = q[0], q[1], q[2]
			st.res.LatencyMax = st.latHist.Max()
		}
		if r == 0 && tel != nil {
			st.res.Telemetry = tel.Summary()
			st.res.TraceEvents = tel.Events()
		}
		if r == 0 && fore != nil {
			st.res.Forensics = fore.Summary()
		}
		if st.deadlock != nil {
			st.res.Deadlocked = true
			st.res.Converged = false
		}
		results[missIdx[r]] = st.res
		if useCache {
			c := cfg
			c.Seed = missSeeds[r]
			if serr := cfg.Cache.Store(c.Hash(), c.Canonical(), st.res); serr != nil {
				return results, fmt.Errorf("core: record replica %s: %w", c.Hash()[:12], serr)
			}
		}
	}
	return results, nil
}
