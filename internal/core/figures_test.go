package core

import (
	"strings"
	"testing"
)

func TestFiguresSpecIntegrity(t *testing.T) {
	specs := Figures()
	if len(specs) != 4 {
		t.Fatalf("want 4 experiments (fig3, fig4, fig5, vct), got %d", len(specs))
	}
	wantIDs := []string{"fig3", "fig4", "fig5", "vct"}
	for i, spec := range specs {
		if spec.ID != wantIDs[i] {
			t.Errorf("spec %d id = %q, want %q", i, spec.ID, wantIDs[i])
		}
		if len(spec.Loads) != 10 {
			t.Errorf("%s: %d loads, want the paper's 10-point axis", spec.ID, len(spec.Loads))
		}
		if spec.Title == "" || spec.Pattern == "" {
			t.Errorf("%s: missing title or pattern", spec.ID)
		}
	}
	// Figures 3-5 carry all six paper algorithms; the VCT experiment the
	// three of sec. 3.4.
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		spec, err := FigureByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Algorithms) != 6 {
			t.Errorf("%s has %d algorithms, want 6", id, len(spec.Algorithms))
		}
		if spec.Switching != Wormhole {
			t.Errorf("%s switching = %v", id, spec.Switching)
		}
	}
	vct, _ := FigureByID("vct")
	if len(vct.Algorithms) != 3 || vct.Switching != CutThrough {
		t.Errorf("vct spec wrong: %+v", vct)
	}
	if _, err := FigureByID("fig9"); err == nil {
		t.Error("unknown figure id accepted")
	}
}

func TestFigurePatternsMatchPaper(t *testing.T) {
	f3, _ := FigureByID("fig3")
	if f3.Pattern != "uniform" {
		t.Errorf("fig3 pattern %q", f3.Pattern)
	}
	f4, _ := FigureByID("fig4")
	if f4.Pattern != "hotspot:0.04:255" {
		t.Errorf("fig4 pattern %q, want the 4%% hotspot at node (15,15)", f4.Pattern)
	}
	f5, _ := FigureByID("fig5")
	if f5.Pattern != "local:3" {
		t.Errorf("fig5 pattern %q, want the 7x7 box", f5.Pattern)
	}
}

// TestRunFigureTiny drives the full figure machinery on a reduced spec.
func TestRunFigureTiny(t *testing.T) {
	spec := FigureSpec{
		ID:         "tiny",
		Title:      "reduced fig3",
		Pattern:    "uniform",
		Switching:  Wormhole,
		Algorithms: []string{"ecube", "nbc"},
		Loads:      []float64{0.1, 0.4},
	}
	base := Config{
		K: 8, N: 2, Seed: 3,
		WarmupCycles: 400, SampleCycles: 400, GapCycles: 100, MaxSamples: 4,
	}
	fr, err := RunFigure(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) != 2 {
		t.Fatalf("series = %d", len(fr.Series))
	}
	for _, s := range fr.Series {
		if len(s.Results) != 2 {
			t.Fatalf("%s has %d results", s.Algorithm, len(s.Results))
		}
	}

	var table strings.Builder
	fr.WriteTable(&table)
	out := table.String()
	for _, want := range []string{"tiny", "average latency", "achieved channel utilization", "ecube", "nbc", "0.10", "0.40"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	var csv strings.Builder
	fr.WriteCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+4 {
		t.Errorf("csv has %d lines, want header + 4 rows:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "figure,algorithm,offered") {
		t.Errorf("csv header %q", lines[0])
	}

	peaks := fr.Peaks()
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0].Throughput < peaks[1].Throughput {
		t.Error("peaks not sorted descending")
	}
	// At 8x8 with these loads, nbc must beat ecube on peak throughput.
	if peaks[0].Algorithm != "nbc" {
		t.Errorf("expected nbc on top, got %+v", peaks)
	}
}
