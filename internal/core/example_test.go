package core_test

import (
	"fmt"

	"wormsim/internal/core"
)

// Example runs one small converged simulation point end to end. (Examples
// that run the simulator keep the network small and the windows short; see
// cmd/figures for publication-length sweeps.)
func Example() {
	res, err := core.Run(core.Config{
		K: 8, N: 2,
		Algorithm:    "nbc",
		Pattern:      "uniform",
		OfferedLoad:  0.3,
		Seed:         1,
		WarmupCycles: 1000,
		SampleCycles: 500,
		GapCycles:    100,
		MaxSamples:   4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered messages: %v over %d samples\n", res.Delivered > 0, res.Samples)
	fmt.Printf("latency above unloaded floor: %v\n", res.AvgLatency > res.MeanDistance+15)
	fmt.Printf("throughput within 10%% of offered: %v\n",
		res.Throughput > 0.27 && res.Throughput < 0.33)
	// Output:
	// delivered messages: true over 4 samples
	// latency above unloaded floor: true
	// throughput within 10% of offered: true
}

// ExampleSweep shows the parallel load sweep used to regenerate the
// paper's curves.
func ExampleSweep() {
	cfg := core.Config{
		K: 8, N: 2,
		Algorithm:    "ecube",
		Seed:         1,
		WarmupCycles: 800,
		SampleCycles: 400,
		GapCycles:    100,
		MaxSamples:   3,
	}
	results, err := core.Sweep(cfg, []float64{0.1, 0.3})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("rho=%.1f achieved within 15%%: %v\n",
			r.OfferedLoad, r.Throughput > 0.85*r.OfferedLoad)
	}
	// Output:
	// rho=0.1 achieved within 15%: true
	// rho=0.3 achieved within 15%: true
}

// ExampleFigures lists the paper's experiment specs.
func ExampleFigures() {
	for _, spec := range core.Figures() {
		fmt.Printf("%s: %s algorithms on %s traffic\n", spec.ID, spec.Switching, spec.Pattern)
	}
	// Output:
	// fig3: wormhole algorithms on uniform traffic
	// fig4: wormhole algorithms on hotspot:0.04:255 traffic
	// fig5: wormhole algorithms on local:3 traffic
	// vct: vct algorithms on uniform traffic
}
