package core

import (
	"math"
	"testing"
)

// These tests exercise the paper's measurement methodology end to end:
// warmup, sampling periods with fresh streams, stratified convergence, and
// the interaction between load and the stopping rule.

// TestConvergenceFasterAtLowLoad: below saturation the 5% bounds are met in
// few samples; deep in saturation the run uses more (the paper: "longer
// warmup and sampling times are needed ... near and beyond saturation").
func TestConvergenceFasterAtLowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	base := Config{
		K: 8, N: 2,
		Algorithm:    "ecube",
		Seed:         13,
		WarmupCycles: 1500,
		SampleCycles: 700,
		GapCycles:    150,
		MaxSamples:   10,
	}
	low := base
	low.OfferedLoad = 0.15
	lowRes, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	if !lowRes.Converged {
		t.Errorf("low load did not converge in %d samples", lowRes.Samples)
	}
	high := base
	high.OfferedLoad = 0.9
	highRes, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	if highRes.Samples < lowRes.Samples {
		t.Errorf("saturated run used %d samples, unsaturated %d — expected at least as many",
			highRes.Samples, lowRes.Samples)
	}
}

// TestBoundsCoverTruth: for a low-load run, eq. (2)'s prediction must fall
// within the reported 95% bound of the measured mean (with generous slack
// for the w term).
func TestBoundsCoverTruth(t *testing.T) {
	cfg := Config{
		K: 8, N: 2,
		Algorithm:    "nbc",
		OfferedLoad:  0.05,
		Seed:         17,
		WarmupCycles: 1000,
		SampleCycles: 800,
		GapCycles:    150,
		MaxSamples:   6,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	floor := res.MeanDistance + 16 - 1
	if res.AvgLatency < floor-res.LatencyBound-0.5 {
		t.Errorf("measured %v below the physical floor %v", res.AvgLatency, floor)
	}
	if res.AvgLatency > floor+5 {
		t.Errorf("measured %v far above the near-unloaded prediction %v", res.AvgLatency, floor)
	}
	if res.LatencyBound <= 0 || res.LatencyBound > 5 {
		t.Errorf("bound %v implausible for a low-load run", res.LatencyBound)
	}
}

// TestSeedSensitivityWithinBounds: two seeds must agree within their
// combined 95% bounds at low load (the statistics are honest).
func TestSeedSensitivityWithinBounds(t *testing.T) {
	run := func(seed uint64) Result {
		res, err := Run(Config{
			K: 8, N: 2,
			Algorithm:    "phop",
			OfferedLoad:  0.2,
			Seed:         seed,
			WarmupCycles: 1200,
			SampleCycles: 800,
			GapCycles:    150,
			MaxSamples:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(9999)
	diff := math.Abs(a.AvgLatency - b.AvgLatency)
	allowance := a.LatencyBound + b.LatencyBound + 1
	if diff > allowance {
		t.Errorf("seeds disagree by %.2f cycles, bounds only allow %.2f (a=%v b=%v)",
			diff, allowance, a.AvgLatency, b.AvgLatency)
	}
}

// TestThroughputMatchesDeliveryRate: achieved utilization, recomputed from
// delivered messages and mean distance, agrees with the channel-counter
// value at an unsaturated load (eq. 3 two ways).
func TestThroughputMatchesDeliveryRate(t *testing.T) {
	cfg := Config{
		K: 8, N: 2,
		Algorithm:    "nbc",
		OfferedLoad:  0.3,
		Seed:         23,
		WarmupCycles: 1500,
		SampleCycles: 1000,
		GapCycles:    200,
		MaxSamples:   4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All measured cycles: warmup + samples + gaps; using totals is only
	// approximate, so allow 10%.
	g := cfg.Grid()
	cyclesTotal := float64(res.Cycles)
	fromDeliveries := float64(res.Delivered) * res.MeanDistance * 16 / (cyclesTotal * float64(g.NumChannels()))
	if math.Abs(fromDeliveries-res.Throughput) > 0.1*res.Throughput {
		t.Errorf("throughput from deliveries %.4f vs counter %.4f", fromDeliveries, res.Throughput)
	}
}

// TestGapReseedDecorrelatesSamples: with gaps and reseeds, consecutive
// sample means are not identical (fresh streams per sampling period, as the
// paper prescribes).
func TestGapReseedDecorrelatesSamples(t *testing.T) {
	// Run twice with the same seed but different MaxSamples; if reseeding
	// works, the extra samples change the across-sample mean slightly.
	base := Config{
		K: 8, N: 2,
		Algorithm:    "ecube",
		OfferedLoad:  0.25,
		Seed:         29,
		WarmupCycles: 800,
		SampleCycles: 400,
		GapCycles:    100,
		MinSamples:   3,
		MaxSamples:   3,
		Tolerance:    1e-9, // force MaxSamples to bind
	}
	three, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.MinSamples, base.MaxSamples = 6, 6
	six, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if three.AvgLatency == six.AvgLatency {
		t.Error("3- and 6-sample runs report identical means; sampling machinery suspicious")
	}
	if six.Samples != 6 || three.Samples != 3 {
		t.Errorf("sample counts %d/%d, want 3/6", three.Samples, six.Samples)
	}
}
