package core

import "fmt"

// FindSaturation locates the saturation load of a configuration by binary
// search: the largest offered load (within tol) whose achieved throughput
// stays within slack of offered. It refines between lo and hi (fractions of
// capacity) and returns the bracketing result at the saturation knee.
//
// This automates reading the "knee" off the paper's throughput curves: the
// offered load where achieved stops tracking offered is where the latency
// curves turn vertical.
func FindSaturation(cfg Config, lo, hi, tol, slack float64) (load float64, at Result, err error) {
	cfg.ApplyDefaults()
	if !(lo >= 0 && hi > lo) {
		return 0, Result{}, fmt.Errorf("core: bad saturation bracket [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 0.02
	}
	if slack <= 0 {
		slack = 0.02
	}
	tracks := func(rho float64) (bool, Result, error) {
		c := cfg
		c.OfferedLoad = rho
		// Probe through the batch engine at width one: the same Result as
		// Run (TestRunReplicasMatchesRun), on the code path the sweeps use,
		// with RunReplicas' per-seed cache consult when cfg.Cache is set.
		rs, err := RunReplicas(c, []uint64{c.Seed})
		if err != nil {
			return false, Result{}, err
		}
		r := rs[0]
		if r.Deadlocked {
			return false, r, nil
		}
		return rho-r.Throughput <= slack, r, nil
	}
	// Establish the bracket: lo must track, hi must not. Grow/shrink as
	// needed within [0, 1].
	ok, r, err := tracks(lo)
	if err != nil {
		return 0, r, err
	}
	if !ok {
		return lo, r, nil // saturated below the bracket already
	}
	best := r
	load = lo
	if ok, r, err = tracks(hi); err != nil {
		return 0, r, err
	} else if ok {
		return hi, r, nil // never saturates within the bracket
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, r, err := tracks(mid)
		if err != nil {
			return 0, r, err
		}
		if ok {
			lo, load, best = mid, mid, r
		} else {
			hi = mid
		}
	}
	return load, best, nil
}

// SaturationPoint is one algorithm's saturation knee.
type SaturationPoint struct {
	Algorithm string
	Load      float64
	At        Result
}

// FindSaturationSet locates the saturation load of several algorithms under
// the same configuration, running the searches concurrently on one
// work-stealing scheduler (each search's bisection is inherently sequential,
// but the searches are independent and their costs skew with how early each
// algorithm saturates). Results come back in algorithm order and are
// identical to calling FindSaturation per algorithm.
func FindSaturationSet(cfg Config, algorithms []string, lo, hi, tol, slack float64, workers int) ([]SaturationPoint, error) {
	out := make([]SaturationPoint, len(algorithms))
	errs := make([]error, len(algorithms))
	s := NewScheduler(workers)
	for i, alg := range algorithms {
		i, alg := i, alg
		s.Submit(func(int) {
			c := cfg
			c.Algorithm = alg
			load, at, err := FindSaturation(c, lo, hi, tol, slack)
			out[i] = SaturationPoint{Algorithm: alg, Load: load, At: at}
			if err != nil {
				errs[i] = fmt.Errorf("core: saturation search for %s: %w", alg, err)
			}
		})
	}
	s.Close()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
