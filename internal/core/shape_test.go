package core

import "testing"

// Shape tests assert the paper's qualitative findings end to end on a
// reduced 8-ary 2-cube with shortened methodology windows. Margins are
// generous: these are ordering checks, not magnitude checks (EXPERIMENTS.md
// holds the full-size numbers).

// shapeRun runs one point on the reduced network.
func shapeRun(t *testing.T, alg, pattern string, load float64, sw Switching) Result {
	t.Helper()
	res, err := Run(Config{
		K: 8, N: 2,
		Algorithm:    alg,
		Pattern:      pattern,
		Switching:    sw,
		OfferedLoad:  load,
		Seed:         101,
		WarmupCycles: 1500,
		SampleCycles: 800,
		GapCycles:    200,
		MaxSamples:   5,
	})
	if err != nil {
		t.Fatalf("%s/%s at %.2f: %v", alg, pattern, load, err)
	}
	return res
}

// TestShapeHopSchemesBeatECube: the paper's central result — at saturating
// uniform load every hop scheme sustains well above e-cube.
func TestShapeHopSchemesBeatECube(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	ecube := shapeRun(t, "ecube", "uniform", 0.7, Wormhole)
	for _, alg := range []string{"phop", "nhop", "nbc"} {
		hop := shapeRun(t, alg, "uniform", 0.7, Wormhole)
		if hop.Throughput < 1.4*ecube.Throughput {
			t.Errorf("%s throughput %.3f should far exceed ecube %.3f", alg, hop.Throughput, ecube.Throughput)
		}
	}
}

// TestShapeECubeBeatsNlast: partial adaptivity is not a win (uniform).
func TestShapeECubeBeatsNlast(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	ecube := shapeRun(t, "ecube", "uniform", 0.6, Wormhole)
	nlast := shapeRun(t, "nlast", "uniform", 0.6, Wormhole)
	if nlast.Throughput >= ecube.Throughput {
		t.Errorf("nlast %.3f should trail ecube %.3f under uniform traffic", nlast.Throughput, ecube.Throughput)
	}
}

// TestShapeHopSchemesBoundedLatency: congestion control keeps hop-scheme
// latencies bounded (small multiples of the unloaded latency) even far past
// saturation, while e-cube's saturation latency blows up.
func TestShapeHopSchemesBoundedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	unloaded := 4.06 + 16 - 1 // mean distance of 8^2 torus + ml - 1
	phop := shapeRun(t, "phop", "uniform", 0.9, Wormhole)
	if phop.AvgLatency > 6*unloaded {
		t.Errorf("phop saturation latency %.1f not bounded (unloaded %.1f)", phop.AvgLatency, unloaded)
	}
	ecube := shapeRun(t, "ecube", "uniform", 0.9, Wormhole)
	if ecube.AvgLatency < phop.AvgLatency {
		t.Errorf("ecube saturation latency %.1f should exceed phop's %.1f", ecube.AvgLatency, phop.AvgLatency)
	}
}

// TestShapeLocalTraffic2pnBeatsECube: the paper's one wormhole win for 2pn.
func TestShapeLocalTraffic2pnBeatsECube(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	twopn := shapeRun(t, "2pn", "local:2", 0.7, Wormhole)
	ecube := shapeRun(t, "ecube", "local:2", 0.7, Wormhole)
	if twopn.Throughput <= ecube.Throughput {
		t.Errorf("2pn %.3f should beat ecube %.3f under local traffic", twopn.Throughput, ecube.Throughput)
	}
}

// TestShapeHotspotDegradesECubeMost: hotspot traffic saturates e-cube far
// below the hop schemes.
func TestShapeHotspotDegradesECubeMost(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	nbc := shapeRun(t, "nbc", "hotspot:0.04:63", 0.5, Wormhole)
	ecube := shapeRun(t, "ecube", "hotspot:0.04:63", 0.5, Wormhole)
	if nbc.Throughput < 1.5*ecube.Throughput {
		t.Errorf("nbc %.3f should far exceed ecube %.3f under hotspot traffic", nbc.Throughput, ecube.Throughput)
	}
}

// TestShapeVCTRecovers2pn: sec. 3.4 — cut-through lifts 2pn much more than
// e-cube.
func TestShapeVCTRecovers2pn(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	wh := shapeRun(t, "2pn", "uniform", 0.8, Wormhole)
	vct := shapeRun(t, "2pn", "uniform", 0.8, CutThrough)
	if vct.Throughput <= wh.Throughput {
		t.Errorf("vct 2pn %.3f should beat wormhole 2pn %.3f", vct.Throughput, wh.Throughput)
	}
	ecubeWh := shapeRun(t, "ecube", "uniform", 0.8, Wormhole)
	ecubeVct := shapeRun(t, "ecube", "uniform", 0.8, CutThrough)
	gain2pn := vct.Throughput / wh.Throughput
	gainEcube := ecubeVct.Throughput / ecubeWh.Throughput
	if gain2pn <= gainEcube {
		t.Errorf("vct gain for 2pn (%.2fx) should exceed ecube's (%.2fx)", gain2pn, gainEcube)
	}
}

// TestShapeBonusCardsBalanceVCs: nbc spreads flit traffic across VC classes
// far more evenly than nhop (the imbalance the bonus cards exist to fix).
func TestShapeBonusCardsBalanceVCs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	spread := func(shares []float64) float64 {
		max, min := 0.0, 1.0
		for _, s := range shares {
			if s > max {
				max = s
			}
			if s < min {
				min = s
			}
		}
		return max - min
	}
	nhop := shapeRun(t, "nhop", "uniform", 0.5, Wormhole)
	nbc := shapeRun(t, "nbc", "uniform", 0.5, Wormhole)
	if spread(nbc.VCFlitShare) >= spread(nhop.VCFlitShare) {
		t.Errorf("nbc VC share spread %.3f should be tighter than nhop's %.3f",
			spread(nbc.VCFlitShare), spread(nhop.VCFlitShare))
	}
}

// TestShapeMoreVCsHelpECube: the A-VC ablation's direction, in miniature.
func TestShapeMoreVCsHelpECube(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	one := shapeRun(t, "ecube", "uniform", 0.6, Wormhole)
	four := shapeRun(t, "ecube4x", "uniform", 0.6, Wormhole)
	if four.Throughput <= one.Throughput {
		t.Errorf("4-lane ecube %.3f should beat plain ecube %.3f", four.Throughput, one.Throughput)
	}
}
