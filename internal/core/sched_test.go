package core

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		s := NewScheduler(workers)
		var ran atomic.Int64
		for i := 0; i < 100; i++ {
			s.Submit(func(int) { ran.Add(1) })
		}
		s.Wait()
		s.Close()
		if ran.Load() != 100 {
			t.Errorf("workers=%d: ran %d of 100 items", workers, ran.Load())
		}
	}
}

// TestSchedulerSpawnedChildrenComplete: Close must cover work spawned by
// running items, not just direct submissions.
func TestSchedulerSpawnedChildrenComplete(t *testing.T) {
	s := NewScheduler(4)
	var mu sync.Mutex
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		i := i
		s.Submit(func(w int) {
			for j := 0; j < 10; j++ {
				j := j
				s.Spawn(w, func(int) {
					mu.Lock()
					seen[i*10+j] = true
					mu.Unlock()
				})
			}
		})
	}
	s.Close()
	if len(seen) != 100 {
		t.Fatalf("spawned children ran %d of 100", len(seen))
	}
}

// TestSchedulerRunsItemsConcurrently proves four workers really dispatch
// four items at once, independent of core count: each item rendezvouses
// with the other three before any is released, which only completes when
// all four are in flight simultaneously (blocked goroutines yield the CPU,
// so this holds even on a single-core host where wall-clock speedup can't).
func TestSchedulerRunsItemsConcurrently(t *testing.T) {
	const workers = 4
	s := NewScheduler(workers)
	defer s.Close()
	var arrived atomic.Int64
	ready := make(chan struct{})
	release := make(chan struct{})
	for i := 0; i < workers; i++ {
		s.Submit(func(int) {
			if arrived.Add(1) == workers {
				close(ready)
			}
			<-release
		})
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d of %d items entered concurrently", arrived.Load(), workers)
	}
	close(release)
	s.Wait()
}

// TestSchedulerDequeDiscipline drives push/pop directly (no worker
// goroutines): a worker pops its own newest item first, while a thief takes
// the victim's oldest — the work-stealing order that keeps spawned
// replications local and hands stragglers the biggest remaining pieces.
func TestSchedulerDequeDiscipline(t *testing.T) {
	s := &Scheduler{deques: make([]dequeOf, 2)}
	s.cond = sync.NewCond(&s.mu)
	var log []string
	item := func(name string) func(int) {
		return func(int) { log = append(log, name) }
	}
	s.push(0, item("a"))
	s.push(0, item("b"))
	s.push(0, item("c"))
	for _, step := range []struct {
		worker int
		want   string
	}{
		{0, "c"}, // own deque: newest first
		{1, "a"}, // steal: victim's oldest
		{0, "b"},
	} {
		fn := s.pop(step.worker)
		if fn == nil {
			t.Fatalf("pop(%d): empty, want %q", step.worker, step.want)
		}
		fn(step.worker)
		if got := log[len(log)-1]; got != step.want {
			t.Fatalf("pop(%d) ran %q, want %q", step.worker, got, step.want)
		}
	}
	if s.pop(0) != nil || s.pop(1) != nil {
		t.Fatal("deques should be empty")
	}
}

// TestSweepSchedulerMatchesSequential: any worker count must reproduce the
// one-worker sweep exactly (each point is an independent seeded simulation).
func TestSweepSchedulerMatchesSequential(t *testing.T) {
	cfg := quick("2pn")
	loads := []float64{0.1, 0.2, 0.3, 0.4}
	seq, err := SweepN(cfg, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepN(cfg, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestSweepReplicatedMatchesIndividualRuns: every (load, replication) cell
// must equal the same config run directly.
func TestSweepReplicatedMatchesIndividualRuns(t *testing.T) {
	cfg := quick("ecube")
	loads := []float64{0.15, 0.3}
	seeds := []uint64{3, 11, 29}
	reps, err := SweepReplicated(cfg, loads, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(loads) {
		t.Fatalf("got %d loads, want %d", len(reps), len(loads))
	}
	for i, load := range loads {
		if len(reps[i].Replicas) != len(seeds) {
			t.Fatalf("load %g: %d replicas, want %d", load, len(reps[i].Replicas), len(seeds))
		}
		for j, seed := range seeds {
			c := cfg
			c.OfferedLoad = load
			c.Seed = seed
			want, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reps[i].Replicas[j], want) {
				t.Errorf("load %g seed %d diverged from direct run", load, seed)
			}
		}
		if reps[i].MeanLatency <= 0 || reps[i].MeanThroughput <= 0 {
			t.Errorf("load %g: empty aggregate %+v", load, reps[i])
		}
	}
}

func TestReplicateBatchMatchesSequential(t *testing.T) {
	cfg := Config{K: 4, N: 2, Algorithm: "nbc", Seed: 1}
	seeds := []uint64{7, 13}
	got, err := ReplicateBatch(cfg, "transpose", seeds, 2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for j, seed := range seeds {
		c := cfg
		c.Seed = seed
		burst, err := PermutationBurst(c, "transpose")
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunBatch(c, burst, burst.LastCycle(), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[j], want) {
			t.Errorf("seed %d: replica diverged from sequential run:\ngot:  %+v\nwant: %+v", seed, got[j], want)
		}
	}
}

func TestFindSaturationSetMatchesIndividualSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation bisection is slow")
	}
	cfg := quick("ecube")
	cfg.MaxSamples = 2
	algs := []string{"ecube", "nbc"}
	set, err := FindSaturationSet(cfg, algs, 0.1, 1.0, 0.1, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, alg := range algs {
		c := cfg
		c.Algorithm = alg
		load, at, err := FindSaturation(c, 0.1, 1.0, 0.1, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if set[i].Load != load || !reflect.DeepEqual(set[i].At, at) {
			t.Errorf("%s: set search found %g, individual %g", alg, set[i].Load, load)
		}
	}
}

// TestSchedulerZeroTasks: Wait and Close on an idle pool must return
// immediately instead of parking forever on the condition variable.
func TestSchedulerZeroTasks(t *testing.T) {
	s := NewScheduler(4)
	done := make(chan struct{})
	go func() {
		s.Wait()
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait/Close with zero tasks did not return")
	}
}

// TestSchedulerSingleWorker: with one worker there is nobody to steal from;
// submissions and spawns must still all run, in some order, exactly once.
func TestSchedulerSingleWorker(t *testing.T) {
	s := NewScheduler(1)
	var runs [40]atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		s.Submit(func(w int) {
			runs[i].Add(1)
			s.Spawn(w, func(int) { runs[20+i].Add(1) })
		})
	}
	s.Close()
	for i := range runs {
		if got := runs[i].Load(); got != 1 {
			t.Errorf("task %d ran %d times, want exactly once", i, got)
		}
	}
}

// TestSchedulerMoreWorkersThanTasks: idle workers must park and shut down
// cleanly when the pool is wider than the workload.
func TestSchedulerMoreWorkersThanTasks(t *testing.T) {
	s := NewScheduler(16)
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		s.Submit(func(int) { ran.Add(1) })
	}
	s.Close()
	if ran.Load() != 3 {
		t.Errorf("ran %d of 3 tasks", ran.Load())
	}
}

// TestSchedulerStealHeavyExactlyOnce funnels all submissions through one
// producer while every worker's own spawns pile onto its local deque, so
// most dispatch happens by stealing; each task must still run exactly once.
func TestSchedulerStealHeavyExactlyOnce(t *testing.T) {
	const tasks = 2000
	s := NewScheduler(8)
	var runs [tasks]atomic.Int64
	for i := 0; i < tasks/2; i++ {
		i := i
		s.Submit(func(w int) {
			runs[i].Add(1)
			j := tasks/2 + i
			s.Spawn(w, func(int) { runs[j].Add(1) })
		})
	}
	s.Close()
	for i := range runs {
		if got := runs[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", i, got)
		}
	}
}
