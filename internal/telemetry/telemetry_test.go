package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCollectorMetrics(t *testing.T) {
	c := New(Options{Metrics: true}, 4, 2)
	// Cycle 1: one VC of class 0 owned, channel 2 busy, one blocked header.
	c.VCAcquired(0)
	c.InjEnqueue()
	c.FlitMove(2)
	c.HeadBlocked(3)
	c.EndCycle()
	// Cycle 2: class-0 VC released, class-1 acquired.
	c.VCReleased(0)
	c.VCAcquired(1)
	c.FlitMove(2)
	c.FlitMove(0)
	c.InjDequeue()
	c.Drop(2, 7, 1, 3)
	c.EndCycle()

	s := c.Summary()
	if s.Cycles != 2 {
		t.Errorf("Cycles = %d, want 2", s.Cycles)
	}
	if got := s.ChannelBusy[2]; got != 2 {
		t.Errorf("ChannelBusy[2] = %d, want 2", got)
	}
	if got := s.ChannelUtilization(2); got != 1.0 {
		t.Errorf("ChannelUtilization(2) = %g, want 1", got)
	}
	if got := s.HeadBlockedByClass[3]; got != 1 {
		t.Errorf("HeadBlockedByClass[3] = %d, want 1", got)
	}
	if s.TotalHeadBlocked() != 1 {
		t.Errorf("TotalHeadBlocked = %d, want 1", s.TotalHeadBlocked())
	}
	if s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
	if got := s.VCOccupancyMean[0]; got != 0.5 {
		t.Errorf("VCOccupancyMean[0] = %g, want 0.5", got)
	}
	if got := s.VCOccupancyMax[1]; got != 1 {
		t.Errorf("VCOccupancyMax[1] = %g, want 1", got)
	}
	if got := s.InjQueueMax; got != 1 {
		t.Errorf("InjQueueMax = %g, want 1", got)
	}
	if got := s.BusiestChannels(2); got[0] != 2 || got[1] != 0 {
		t.Errorf("BusiestChannels(2) = %v, want [2 0]", got)
	}
	// Ties break by index.
	if got := s.BusiestChannels(4); got[2] != 1 || got[3] != 3 {
		t.Errorf("BusiestChannels(4) = %v, want tail [1 3]", got)
	}
	ms := s.Metrics()
	byName := map[string]Metric{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if m := byName["channel_busy_cycles"]; m.Value != 3 || m.Kind != "counter" {
		t.Errorf("channel_busy_cycles = %+v", m)
	}
	if m := byName["vc_occupancy_class_1"]; m.Kind != "gauge" || m.Max != 1 {
		t.Errorf("vc_occupancy_class_1 = %+v", m)
	}
}

func TestRingEvictionAndSampling(t *testing.T) {
	c := New(Options{Trace: true, TraceCap: 4, SampleEvery: 2}, 1, 1)
	for i := int64(0); i < 10; i++ {
		c.Inject(i, i, int(i), 0) // odd IDs are not sampled
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4 (capacity)", len(evs))
	}
	// Only even IDs kept, oldest evicted: 5 sampled injections, cap 4.
	want := []int64{2, 4, 6, 8}
	for i, e := range evs {
		if e.Msg != want[i] {
			t.Errorf("event %d: msg %d, want %d", i, e.Msg, want[i])
		}
		if e.Type != EvInject {
			t.Errorf("event %d: type %v", i, e.Type)
		}
	}
	if s := c.Summary(); s.TraceEvicted != 1 || s.TraceEvents != 4 {
		t.Errorf("evicted/retained = %d/%d, want 1/4", s.TraceEvicted, s.TraceEvents)
	}
	last := c.LastEvents(2)
	if len(last) != 2 || last[0].Msg != 6 || last[1].Msg != 8 {
		t.Errorf("LastEvents(2) = %v", last)
	}
	if got := c.LastEvents(100); len(got) != 4 {
		t.Errorf("LastEvents(100) returned %d events", len(got))
	}
}

func TestDisabledTraceRecordsNothing(t *testing.T) {
	c := New(Options{Metrics: true}, 1, 1)
	c.Inject(0, 0, 0, 1)
	c.Hop(1, 0, 1, 0, 0)
	c.Deliver(2, 0, 1)
	if evs := c.Events(); evs != nil {
		t.Errorf("metrics-only collector recorded %d events", len(evs))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 0, Msg: 3, Type: EvInject, Node: 1, Ch: -1, VC: -1, Src: 1, Dst: 9},
		{Cycle: 2, Msg: 3, Type: EvVCAlloc, Node: 1, Ch: 4, VC: 0, Src: -1, Dst: -1},
		{Cycle: 3, Msg: 3, Type: EvHop, Node: 2, Ch: 4, VC: 0, Src: -1, Dst: -1},
		{Cycle: 9, Msg: 3, Type: EvDeliver, Node: 9, Ch: -1, VC: -1, Src: -1, Dst: -1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != len(events) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	if !strings.Contains(FormatEvents(events), "msg 3") {
		t.Errorf("FormatEvents missing msg id:\n%s", FormatEvents(events))
	}
}

func TestWormState(t *testing.T) {
	w := WormState{
		ID: 5, Src: 0, Dst: 7, Len: 16, HopsTaken: 2, HopsTotal: 4, Routed: true,
		Holding: []VCHold{
			{Ch: -1, Class: 0, Node: 0, Flits: 10},
			{Ch: 3, Class: 1, Node: 1, Flits: 2},
			{Ch: 8, Class: 1, Node: 2, Flits: 4},
		},
	}
	if w.HeldVCs() != 2 {
		t.Errorf("HeldVCs = %d, want 2 (injection slot excluded)", w.HeldVCs())
	}
	if w.BufferedFlits() != 6 {
		t.Errorf("BufferedFlits = %d, want 6", w.BufferedFlits())
	}
	if s := w.String(); !strings.Contains(s, "msg 5 0->7") || !strings.Contains(s, "holds 2 VCs") {
		t.Errorf("String = %q", s)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	p := NewProgress(&buf, "sweep", 4)
	p.now = func() time.Time { return clock }
	p.start = clock

	clock = clock.Add(2 * time.Second)
	p.Step("alg=ecube rho=0.10")
	out := buf.String()
	if !strings.Contains(out, "[1/4] sweep alg=ecube rho=0.10") {
		t.Errorf("first line = %q", out)
	}
	// 1 of 4 done in 2s -> 6s to go.
	if !strings.Contains(out, "eta 6s") {
		t.Errorf("missing eta in %q", out)
	}
	clock = clock.Add(6 * time.Second)
	buf.Reset()
	p.Step("a")
	p.Step("b")
	p.Step("c")
	p.Finish()
	out = buf.String()
	if !strings.Contains(out, "[4/4] sweep done in 8s") {
		t.Errorf("finish line missing from %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("Finish did not terminate the line: %q", out)
	}
}
