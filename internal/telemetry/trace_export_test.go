package telemetry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wormsim/internal/forensics"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite golden files")

// traceFrom4x4 runs the deterministic tiny scenario every export test
// shares: a 4x4 torus under light uniform traffic for 200 cycles.
func traceFrom4x4(t *testing.T) []telemetry.Event {
	t.Helper()
	g := topology.NewTorus(4, 2)
	alg, err := routing.Get("ecube")
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.03, 9)
	tel := telemetry.New(telemetry.Options{Trace: true}, g.ChannelSlots(), alg.NumVCs(g))
	n, err := network.New(network.Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 4, Seed: 9, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(200); err != nil {
		t.Fatal(err)
	}
	evs := tel.Events()
	if len(evs) == 0 {
		t.Fatal("tiny run produced no events")
	}
	return evs
}

// TestChromeTraceGolden pins the exporter's output byte-for-byte (the
// simulator is deterministic for a fixed seed) and verifies the structural
// contract: valid JSON, and per worm (tid) the complete-event timestamps
// never decrease. Regenerate with: go test ./internal/telemetry -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	evs := traceFrom4x4(t)
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_4x4.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file %s (run with -update if intended); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}

	// Structural contract, independent of the exact bytes.
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			PID  int    `json:"pid"`
			TID  int64  `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	lastTS := map[int64]int64{}
	slices, meta := 0, 0
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
				t.Fatalf("worm %d: ts %d after %d — not monotonically non-decreasing", e.TID, e.TS, prev)
			}
			lastTS[e.TID] = e.TS
			if e.Dur <= 0 {
				t.Errorf("worm %d: non-positive duration %d at ts %d", e.TID, e.Dur, e.TS)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if slices != len(evs) {
		t.Errorf("%d slice events for %d lifecycle events", slices, len(evs))
	}
	if meta == 0 {
		t.Error("no thread-name metadata events")
	}
}

// traceFrom4x4Blocked is the forensics variant of the tiny scenario: enough
// load that worms block, an every-cycle analyzer attached, so the trace
// carries block events and the Chrome export carries flow arrows.
func traceFrom4x4Blocked(t *testing.T) []telemetry.Event {
	t.Helper()
	g := topology.NewTorus(4, 2)
	alg, err := routing.Get("ecube")
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.1, 9)
	tel := telemetry.New(telemetry.Options{Trace: true}, g.ChannelSlots(), alg.NumVCs(g))
	fore := forensics.New(forensics.Options{SampleEvery: 1}, g.ChannelSlots())
	n, err := network.New(network.Config{
		Grid: g, Algorithm: alg, Workload: wl, MsgLen: 8, Seed: 9,
		Telemetry: tel, Forensics: fore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(200); err != nil {
		t.Fatal(err)
	}
	evs := tel.Events()
	blocks := 0
	for _, e := range evs {
		if e.Type == telemetry.EvBlock {
			blocks++
		}
	}
	if blocks == 0 {
		t.Fatal("blocked scenario recorded no block events; the flow test exercises nothing")
	}
	return evs
}

// TestChromeTraceFlowGolden pins the flow-event export byte-for-byte and
// verifies the arrows' structural contract: every block event becomes one
// "s"/"f" pair sharing an id, started on the blocked worm's track and bound
// to the blocking worm's. Regenerate with:
// go test ./internal/telemetry -run FlowGolden -update
func TestChromeTraceFlowGolden(t *testing.T) {
	evs := traceFrom4x4Blocked(t)
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_4x4_flow.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flow trace drifted from golden file %s (run with -update if intended); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}

	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			TID  int64  `json:"tid"`
			ID   int64  `json:"id"`
			BP   string `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	starts := map[int64]int64{} // flow id -> blocked worm's track
	finishes := 0
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "s":
			if e.Name != "waits-for" || e.Cat != "block" {
				t.Errorf("flow start named %q cat %q", e.Name, e.Cat)
			}
			if _, dup := starts[e.ID]; dup {
				t.Errorf("flow id %d started twice", e.ID)
			}
			starts[e.ID] = e.TID
		case "f":
			finishes++
			if e.BP != "e" {
				t.Errorf("flow finish id %d missing bp=e", e.ID)
			}
			src, ok := starts[e.ID]
			if !ok {
				t.Errorf("flow finish id %d without a start", e.ID)
			} else if src == e.TID {
				t.Errorf("flow id %d binds worm %d to itself", e.ID, e.TID)
			}
		}
	}
	blocks := 0
	for _, e := range evs {
		if e.Type == telemetry.EvBlock && e.Blocker >= 0 {
			blocks++
		}
	}
	if len(starts) != blocks || finishes != blocks {
		t.Errorf("%d starts / %d finishes for %d attributable block events", len(starts), finishes, blocks)
	}
}

// TestJSONLExportParses checks every line of the JSONL export is an
// independent valid JSON object round-tripping to the same event.
func TestJSONLExportParses(t *testing.T) {
	evs := traceFrom4x4(t)
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(evs) {
		t.Fatalf("%d lines for %d events", len(lines), len(evs))
	}
	for i, line := range lines {
		var e telemetry.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e != evs[i] {
			t.Errorf("line %d: %+v != %+v", i, e, evs[i])
		}
	}
}
