package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders live completion status with an ETA to a terminal-ish
// writer (stderr), one carriage-return-rewritten line. It is safe for
// concurrent Step calls (core.Sweep completes points from worker
// goroutines).
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
	start time.Time
	// now is swappable for tests.
	now      func() time.Time
	lastLine int
}

// NewProgress returns a tracker for total units of work, labelled in front
// of every line.
func NewProgress(w io.Writer, label string, total int) *Progress {
	// The ETA display genuinely wants the wall clock; it never feeds
	// simulation state, and tests swap the clock out.
	p := &Progress{w: w, label: label, total: total, now: time.Now}
	p.start = p.now()
	return p
}

// Step records one completed unit and redraws the line; desc annotates the
// unit just finished (e.g. "nbc rho=0.60 lat=245.1").
func (p *Progress) Step(desc string) {
	wall := p.now() // clock read stays outside the critical section
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	elapsed := wall.Sub(p.start)
	line := fmt.Sprintf("[%d/%d] %s %s | %s elapsed", p.done, p.total, p.label, desc, round(elapsed))
	if p.done < p.total && p.done > 0 {
		remaining := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", eta %s", round(remaining))
	}
	p.redraw(line)
}

// Finish clears the rewrite cycle with a final newline and a summary.
func (p *Progress) Finish() {
	wall := p.now() // clock read stays outside the critical section
	p.mu.Lock()
	defer p.mu.Unlock()
	line := fmt.Sprintf("[%d/%d] %s done in %s", p.done, p.total, p.label, round(wall.Sub(p.start)))
	p.redraw(line)
	fmt.Fprintln(p.w)
}

// redraw overwrites the previous line, padding out stale characters.
func (p *Progress) redraw(line string) {
	pad := ""
	if n := p.lastLine - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLine = len(line)
}

// round trims durations to one decimal of seconds for stable display.
func round(d time.Duration) time.Duration { return d.Round(100 * time.Millisecond) }
