package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// EventType labels one stage of a worm's lifecycle.
type EventType uint8

// The lifecycle stages, in the order a healthy worm passes through them
// (EvDrop and EvKill are the two unhappy endings).
const (
	EvInject EventType = iota
	EvDrop
	EvVCAlloc
	EvHop
	EvDeliver
	EvKill
	// EvBlock records a sampled head-blocked observation from the forensics
	// analyzer: the worm's header wanted virtual channel (Ch, VC) and found
	// it held by worm Blocker. Appended after the lifecycle stages so the
	// original wire numbering stays stable.
	EvBlock
)

// eventNames maps EventType to its wire name.
var eventNames = [...]string{"inject", "drop", "vcalloc", "hop", "deliver", "kill", "block"}

// String returns the wire name.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// MarshalJSON emits the wire name, keeping JSONL traces self-describing.
func (t EventType) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON accepts the wire name.
func (t *EventType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range eventNames {
		if n == s {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event type %q", s)
}

// Event is one structured lifecycle observation. Ch and VC identify the
// virtual channel involved (-1 when not applicable); Src and Dst are set on
// inject/drop events only (-1 otherwise).
type Event struct {
	Cycle int64     `json:"cycle"`
	Msg   int64     `json:"msg"`
	Type  EventType `json:"type"`
	Node  int       `json:"node"`
	Ch    int       `json:"ch"`
	VC    int       `json:"vc"`
	Src   int       `json:"src"`
	Dst   int       `json:"dst"`
	// Blocker is the worm holding the wanted virtual channel on EvBlock
	// events (-1 when the holder is unknown; 0 and omitted otherwise, so
	// pre-existing trace formats are byte-identical).
	Blocker int64 `json:"blocker,omitempty"`
}

// String renders the event for diagnostics (the watchdog report).
func (e Event) String() string {
	switch e.Type {
	case EvInject, EvDrop:
		return fmt.Sprintf("c%-6d msg %-4d %-7s %d->%d", e.Cycle, e.Msg, e.Type, e.Src, e.Dst)
	case EvVCAlloc, EvHop:
		return fmt.Sprintf("c%-6d msg %-4d %-7s node %d ch %d vc %d", e.Cycle, e.Msg, e.Type, e.Node, e.Ch, e.VC)
	case EvBlock:
		return fmt.Sprintf("c%-6d msg %-4d %-7s node %d wants ch %d vc %d held by worm %d", e.Cycle, e.Msg, e.Type, e.Node, e.Ch, e.VC, e.Blocker)
	default:
		return fmt.Sprintf("c%-6d msg %-4d %-7s node %d", e.Cycle, e.Msg, e.Type, e.Node)
	}
}

// FormatEvents renders events one per line, for attaching to error reports.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://chromium.googlesource.com/catapult: "X" complete events with
// microsecond timestamps, "M" metadata events naming the threads). Worms map
// to threads of one process, so chrome://tracing draws each worm's lifecycle
// as a labelled horizontal track.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	// ID pairs flow start ("s") and finish ("f") events; BP is the flow
	// binding point ("e" binds the finish to the enclosing slice).
	ID   int64       `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	TS   int64       `json:"ts"`
	Dur  int64       `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int64       `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the event detail into the trace viewer's inspector.
type chromeArgs struct {
	Name string `json:"name,omitempty"`
	Node *int   `json:"node,omitempty"`
	Ch   *int   `json:"ch,omitempty"`
	VC   *int   `json:"vc,omitempty"`
}

// chromeTrace is the trace_event JSON object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports events as Chrome trace_event JSON, loadable in
// chrome://tracing (or ui.perfetto.dev). Each worm becomes one thread; each
// lifecycle stage becomes a complete ("X") event whose duration runs to the
// worm's next event, so a stalled header shows up as one long "hop" slice.
// Cycles are mapped 1:1 to microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// nextSame[i] is the index of the next event of the same worm, or -1.
	nextSame := make([]int, len(events))
	lastSeen := map[int64]int{}
	for i := len(events) - 1; i >= 0; i-- {
		if j, ok := lastSeen[events[i].Msg]; ok {
			nextSame[i] = j
		} else {
			nextSame[i] = -1
		}
		lastSeen[events[i].Msg] = i
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+len(lastSeen))}
	named := map[int64]bool{}
	var flowID int64
	for i, e := range events {
		if !named[e.Msg] {
			named[e.Msg] = true
			label := fmt.Sprintf("worm %d", e.Msg)
			if e.Type == EvInject || e.Type == EvDrop {
				label = fmt.Sprintf("worm %d %d->%d", e.Msg, e.Src, e.Dst)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", TS: e.Cycle, PID: 0, TID: e.Msg,
				Args: &chromeArgs{Name: label},
			})
		}
		dur := int64(1)
		if j := nextSame[i]; j >= 0 && events[j].Cycle > e.Cycle {
			dur = events[j].Cycle - e.Cycle
		}
		name := e.Type.String()
		if e.Type == EvHop || e.Type == EvVCAlloc {
			name = fmt.Sprintf("%s node %d", e.Type, e.Node)
		}
		if e.Type == EvBlock {
			name = fmt.Sprintf("blocked node %d", e.Node)
		}
		node, ch, vc := e.Node, e.Ch, e.VC
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: e.Type.String(), Ph: "X", TS: e.Cycle, Dur: dur,
			PID: 0, TID: e.Msg,
			Args: &chromeArgs{Node: &node, Ch: &ch, VC: &vc},
		})
		if e.Type == EvBlock && e.Blocker >= 0 {
			// A flow arrow from the blocked worm's track to its blocker's:
			// chrome://tracing and Perfetto render the wait-for edge across
			// the two threads.
			flowID++
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "waits-for", Cat: "block", Ph: "s", ID: flowID, TS: e.Cycle, PID: 0, TID: e.Msg},
				chromeEvent{Name: "waits-for", Cat: "block", Ph: "f", BP: "e", ID: flowID, TS: e.Cycle, PID: 0, TID: e.Blocker},
			)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// VCHold describes one virtual-channel buffer a worm currently owns.
type VCHold struct {
	// Ch is the physical channel slot, -1 for the source injection slot.
	Ch int
	// Class is the virtual-channel class (0 for injection slots).
	Class int
	// Node is where the buffer's flits reside.
	Node int
	// Flits currently buffered there.
	Flits int
}

// WormState is the canonical view of one in-flight worm — the single source
// of truth behind network.Snapshot, the deadlock report and external
// inspection. Holding is ordered injection slot first, then by channel slot.
type WormState struct {
	ID        int64
	Src, Dst  int
	Len       int
	HopsTaken int
	HopsTotal int
	// Routed reports whether the buffer currently holding the header has an
	// output virtual channel allocated (or is draining at the destination).
	Routed bool
	// HeadNode is the node whose buffer currently holds the header flit.
	HeadNode int
	// Holding lists every buffer the worm occupies, upstream to downstream.
	Holding []VCHold
}

// HeldVCs counts owned network virtual channels (the injection slot is not
// a network resource).
func (w WormState) HeldVCs() int {
	n := 0
	for _, h := range w.Holding {
		if h.Ch >= 0 {
			n++
		}
	}
	return n
}

// BufferedFlits sums flits currently buffered in network virtual channels.
func (w WormState) BufferedFlits() int {
	n := 0
	for _, h := range w.Holding {
		if h.Ch >= 0 {
			n += h.Flits
		}
	}
	return n
}

// String renders the worm for diagnostics.
func (w WormState) String() string {
	return fmt.Sprintf("msg %d %d->%d len %d hops %d/%d holds %d VCs (%d flits in-network) routed=%v",
		w.ID, w.Src, w.Dst, w.Len, w.HopsTaken, w.HopsTotal, w.HeldVCs(), w.BufferedFlits(), w.Routed)
}
