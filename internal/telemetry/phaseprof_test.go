package telemetry

import (
	"strings"
	"testing"
)

// tickClock advances a fixed step per read, so phase attributions are exact.
func tickClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestPhaseProfilerAttribution(t *testing.T) {
	pp := NewPhaseProfilerClock(tickClock(10))
	tm := pp.Timer()
	for cycle := 0; cycle < 3; cycle++ {
		tm.Begin()
		tm.Mark(PhaseInject)
		tm.Mark(PhaseRoute)
		tm.Mark(PhaseEject)
		tm.Mark(PhaseTransfer)
		tm.Mark(PhaseWatchdog)
	}
	s := pp.Snapshot()
	if s.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", s.Cycles)
	}
	if len(s.Phases) != int(NumPhases) {
		t.Fatalf("phases = %d, want %d", len(s.Phases), NumPhases)
	}
	for i, p := range s.Phases {
		if p.Phase != Phase(i).String() {
			t.Errorf("phase %d named %q, want %q", i, p.Phase, Phase(i))
		}
		// Every Mark is one 10ns clock step away from the previous read.
		if p.Nanos != 30 {
			t.Errorf("phase %s accumulated %dns, want 30", p.Phase, p.Nanos)
		}
		if got, want := p.Share, 1.0/float64(NumPhases); got != want {
			t.Errorf("phase %s share = %g, want %g", p.Phase, got, want)
		}
	}
	if s.Total() != 150 {
		t.Errorf("total = %v, want 150ns", s.Total())
	}
}

func TestPhaseProfilerReport(t *testing.T) {
	pp := NewPhaseProfilerClock(tickClock(1000))
	tm := pp.Timer()
	tm.Begin()
	tm.Mark(PhaseRoute)
	out := pp.Snapshot().String()
	for _, want := range []string{"phase profile: 1 cycles", "inject", "route", "transfer", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseProfilerRealClock(t *testing.T) {
	pp := NewPhaseProfiler()
	tm := pp.Timer()
	tm.Begin()
	tm.Mark(PhaseInject)
	s := pp.Snapshot()
	if s.Cycles != 1 {
		t.Errorf("cycles = %d", s.Cycles)
	}
	if s.Phases[PhaseInject].Nanos < 0 {
		t.Errorf("monotonic clock went backwards: %d", s.Phases[PhaseInject].Nanos)
	}
}

func TestCollectorRecordedCursor(t *testing.T) {
	c := New(Options{Trace: true, TraceCap: 4}, 2, 1)
	if c.Recorded() != 0 {
		t.Errorf("fresh collector recorded %d", c.Recorded())
	}
	for i := int64(0); i < 6; i++ {
		c.Inject(i, i, 0, 1)
	}
	// 6 recorded in a 4-slot ring: 2 evicted, 4 retained.
	if got := c.Recorded(); got != 6 {
		t.Errorf("recorded = %d, want 6", got)
	}
	if got := len(c.Events()); got != 4 {
		t.Errorf("retained = %d, want 4", got)
	}
	var nilc *Collector
	if nilc.Recorded() != 0 {
		t.Error("nil collector recorded != 0")
	}
}
