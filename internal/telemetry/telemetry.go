// Package telemetry is the simulator's observability layer: a low-overhead
// metrics collector (per-channel busy cycles, per-virtual-channel-class
// occupancy, head-blocked cycles per routing class, injection-queue depth,
// congestion drops) plus a worm lifecycle tracer that captures structured
// events (inject, VC allocation, per-hop advance, delivery, watchdog kill)
// into a bounded sampled ring buffer, exportable as JSONL or Chrome
// trace_event JSON for chrome://tracing.
//
// The network engine holds a *Collector and guards every hook with a nil
// check, so a disabled collector costs one predictable branch per hook —
// BenchmarkTelemetryOverhead at the repository root keeps that claim honest.
package telemetry

import (
	"sort"
	"strconv"

	"wormsim/internal/stats"
)

// Options selects what a Collector records. The zero value records metrics
// only; Trace additionally captures lifecycle events.
type Options struct {
	// Metrics requests the per-channel / per-class counters. Collection is
	// cheap, so a Collector always gathers them; the flag records the
	// caller's intent (CLIs print the report only when set).
	Metrics bool
	// Trace enables lifecycle event capture.
	Trace bool
	// TraceCap bounds the event ring buffer (default 65536); the oldest
	// events are evicted on overflow and counted in Summary.TraceEvicted.
	TraceCap int
	// SampleEvery traces only worms whose ID is a multiple of it (default 1:
	// every worm). Raising it thins the trace at high load while keeping
	// every kept worm's lifecycle complete.
	SampleEvery int64
}

// withDefaults fills unset option fields.
func (o Options) withDefaults() Options {
	if o.TraceCap <= 0 {
		o.TraceCap = 1 << 16
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	return o
}

// Collector accumulates metrics and trace events for one simulation run. It
// is not safe for concurrent use; each run owns its collector (core.Sweep
// builds one per point from shared Options).
type Collector struct {
	opts Options

	cycles int64

	// channelBusy counts cycles each physical channel slot moved a flit
	// (1 flit/cycle capacity makes busy cycles == flit moves).
	channelBusy []int64
	// headBlocked counts cycles a present header failed virtual-channel
	// allocation, by the message's routing class (grown on demand: class
	// numbering is algorithm-specific).
	headBlocked []int64
	// occupied is the current number of owned virtual channels per class;
	// occupancy samples it once per cycle.
	occupied  []int64
	occupancy []stats.Gauge
	// injQueue is the current number of messages admitted but not fully
	// injected; injDepth samples it once per cycle.
	injQueue int64
	injDepth stats.Gauge
	drops    int64

	ring    []Event
	head    int // index of the oldest event
	n       int // events currently in the ring
	evicted int64
}

// New returns a collector for a network with the given number of physical
// channel slots and virtual-channel classes.
func New(opts Options, channelSlots, classes int) *Collector {
	return &Collector{
		opts:        opts.withDefaults(),
		channelBusy: make([]int64, channelSlots),
		occupied:    make([]int64, classes),
		occupancy:   make([]stats.Gauge, classes),
	}
}

// Tracing reports whether lifecycle events are being captured.
func (c *Collector) Tracing() bool { return c != nil && c.opts.Trace }

// Dims returns the channel-slot and class counts the collector was sized
// for, so an engine can validate a caller-supplied collector.
func (c *Collector) Dims() (channelSlots, classes int) {
	return len(c.channelBusy), len(c.occupied)
}

// sampled reports whether events of worm msg are kept.
func (c *Collector) sampled(msg int64) bool {
	return c.opts.Trace && msg%c.opts.SampleEvery == 0
}

// record appends ev to the ring, evicting the oldest event when full.
func (c *Collector) record(ev Event) {
	if len(c.ring) < c.opts.TraceCap {
		c.ring = append(c.ring, ev)
		c.n++
		return
	}
	c.ring[c.head] = ev
	c.head = (c.head + 1) % len(c.ring)
	c.evicted++
}

// EndCycle closes one simulation cycle: it samples the occupancy and
// injection-queue gauges against the cycle's final state.
func (c *Collector) EndCycle() {
	c.cycles++
	for i := range c.occupied {
		c.occupancy[i].Observe(float64(c.occupied[i]))
	}
	c.injDepth.Observe(float64(c.injQueue))
}

// FlitMove records a flit transfer on physical channel ch.
func (c *Collector) FlitMove(ch int) { c.channelBusy[ch]++ }

// HeadBlocked records one cycle in which a header of the given routing class
// bid for an output virtual channel and found none free.
func (c *Collector) HeadBlocked(class int) {
	for len(c.headBlocked) <= class {
		c.headBlocked = append(c.headBlocked, 0)
	}
	c.headBlocked[class]++
}

// VCAcquired / VCReleased track current virtual-channel ownership per class.
func (c *Collector) VCAcquired(class int) { c.occupied[class]++ }

// VCReleased is the inverse of VCAcquired.
func (c *Collector) VCReleased(class int) { c.occupied[class]-- }

// InjEnqueue / InjDequeue track the admitted-but-not-fully-injected count.
func (c *Collector) InjEnqueue() { c.injQueue++ }

// InjDequeue is the inverse of InjEnqueue.
func (c *Collector) InjDequeue() { c.injQueue-- }

// Inject records admission of worm msg at src bound for dst.
func (c *Collector) Inject(cycle, msg int64, src, dst int) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvInject, Node: src, Ch: -1, VC: -1, Src: src, Dst: dst})
	}
}

// Drop records a congestion-control drop of worm msg at src.
func (c *Collector) Drop(cycle, msg int64, src, dst int) {
	c.drops++
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvDrop, Node: src, Ch: -1, VC: -1, Src: src, Dst: dst})
	}
}

// VCAlloc records worm msg acquiring virtual channel (ch, vc) while its
// header sits at node.
func (c *Collector) VCAlloc(cycle, msg int64, node, ch, vc int) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvVCAlloc, Node: node, Ch: ch, VC: vc, Src: -1, Dst: -1})
	}
}

// Hop records worm msg's header completing a hop into node over (ch, vc).
func (c *Collector) Hop(cycle, msg int64, node, ch, vc int) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvHop, Node: node, Ch: ch, VC: vc, Src: -1, Dst: -1})
	}
}

// Deliver records worm msg's tail being consumed at node.
func (c *Collector) Deliver(cycle, msg int64, node int) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvDeliver, Node: node, Ch: -1, VC: -1, Src: -1, Dst: -1})
	}
}

// Block records a sampled head-blocked observation from the forensics
// analyzer: worm msg's header at node wants virtual channel (ch, vc), held
// by worm blocker (-1 when unknown). Only sampled forensics cycles emit
// these, so they cannot flood the ring at saturation.
func (c *Collector) Block(cycle, msg int64, node, ch, vc int, blocker int64) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvBlock, Node: node, Ch: ch, VC: vc, Src: -1, Dst: -1, Blocker: blocker})
	}
}

// Kill records the deadlock watchdog giving up on worm msg stuck at node.
func (c *Collector) Kill(cycle, msg int64, node int) {
	if c.sampled(msg) {
		c.record(Event{Cycle: cycle, Msg: msg, Type: EvKill, Node: node, Ch: -1, VC: -1, Src: -1, Dst: -1})
	}
}

// Recorded returns the lifetime count of trace events recorded, including
// ones the ring has since evicted — a monotone cursor that lets periodic
// consumers (the observatory's tick publication) fetch only events newer
// than their previous read via LastEvents.
func (c *Collector) Recorded() int64 {
	if c == nil {
		return 0
	}
	return c.evicted + int64(c.n)
}

// Events returns the retained trace events in chronological order.
func (c *Collector) Events() []Event {
	if c == nil || c.n == 0 {
		return nil
	}
	out := make([]Event, 0, c.n)
	for i := 0; i < c.n; i++ {
		out = append(out, c.ring[(c.head+i)%len(c.ring)])
	}
	return out
}

// LastEvents returns up to k of the most recent trace events in
// chronological order — the flight recorder the deadlock watchdog attaches
// to its report.
func (c *Collector) LastEvents(k int) []Event {
	if c == nil || c.n == 0 || k <= 0 {
		return nil
	}
	if k > c.n {
		k = c.n
	}
	out := make([]Event, 0, k)
	for i := c.n - k; i < c.n; i++ {
		out = append(out, c.ring[(c.head+i)%len(c.ring)])
	}
	return out
}

// Summary is the JSON-friendly aggregation of a run's metrics, attached to
// core.Result and core.BatchResult.
type Summary struct {
	// Cycles the collector observed.
	Cycles int64
	// Drops counts congestion-control discards.
	Drops int64
	// ChannelBusy[ch] is the busy-cycle count of physical channel slot ch;
	// divide by Cycles for utilization (ChannelUtilization does).
	ChannelBusy []int64
	// HeadBlockedByClass[k] counts header-blocked cycles of routing class k.
	HeadBlockedByClass []int64
	// VCOccupancyMean/Max summarize owned virtual channels per class,
	// sampled each cycle.
	VCOccupancyMean []float64
	VCOccupancyMax  []float64
	// InjQueueMean/Max summarize the admitted-but-not-injected backlog
	// across all nodes.
	InjQueueMean float64
	InjQueueMax  float64
	// TraceEvents is the number of retained events; TraceEvicted how many
	// the ring discarded.
	TraceEvents  int
	TraceEvicted int64
}

// Summary snapshots the collector's metrics.
func (c *Collector) Summary() *Summary {
	s := &Summary{
		Cycles:             c.cycles,
		Drops:              c.drops,
		ChannelBusy:        append([]int64(nil), c.channelBusy...),
		HeadBlockedByClass: append([]int64(nil), c.headBlocked...),
		VCOccupancyMean:    make([]float64, len(c.occupancy)),
		VCOccupancyMax:     make([]float64, len(c.occupancy)),
		InjQueueMean:       c.injDepth.Mean(),
		InjQueueMax:        c.injDepth.Max(),
		TraceEvents:        c.n,
		TraceEvicted:       c.evicted,
	}
	for i := range c.occupancy {
		s.VCOccupancyMean[i] = c.occupancy[i].Mean()
		s.VCOccupancyMax[i] = c.occupancy[i].Max()
	}
	return s
}

// ChannelUtilization returns busy cycles / observed cycles for channel ch.
func (s *Summary) ChannelUtilization(ch int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ChannelBusy[ch]) / float64(s.Cycles)
}

// BusiestChannels returns the k busiest channel slots, most-busy first,
// ties broken by channel index for determinism.
func (s *Summary) BusiestChannels(k int) []int {
	idx := make([]int, len(s.ChannelBusy))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if s.ChannelBusy[ia] != s.ChannelBusy[ib] {
			return s.ChannelBusy[ia] > s.ChannelBusy[ib]
		}
		return ia < ib
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TotalHeadBlocked sums header-blocked cycles over all routing classes.
func (s *Summary) TotalHeadBlocked() int64 {
	var t int64
	for _, v := range s.HeadBlockedByClass {
		t += v
	}
	return t
}

// Metric is one named observable, for generic rendering of a Summary as a
// registry of counters and gauges.
type Metric struct {
	Name string
	// Kind is "counter" or "gauge".
	Kind string
	// Value is the counter total or gauge mean.
	Value float64
	// Max is the gauge maximum (0 for counters).
	Max float64
}

// Metrics flattens the summary into a deterministic metric list.
func (s *Summary) Metrics() []Metric {
	out := []Metric{
		{Name: "cycles", Kind: "counter", Value: float64(s.Cycles)},
		{Name: "congestion_drops", Kind: "counter", Value: float64(s.Drops)},
		{Name: "head_blocked_cycles", Kind: "counter", Value: float64(s.TotalHeadBlocked())},
		{Name: "injection_queue_depth", Kind: "gauge", Value: s.InjQueueMean, Max: s.InjQueueMax},
	}
	var busy int64
	for _, b := range s.ChannelBusy {
		busy += b
	}
	out = append(out, Metric{Name: "channel_busy_cycles", Kind: "counter", Value: float64(busy)})
	for i := range s.VCOccupancyMean {
		out = append(out, Metric{
			Name: "vc_occupancy_class_" + strconv.Itoa(i), Kind: "gauge",
			Value: s.VCOccupancyMean[i], Max: s.VCOccupancyMax[i],
		})
	}
	return out
}
