package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Phase labels one stage of the network engine's per-cycle pipeline, in
// execution order. The route phase covers both the routing decision and
// virtual-channel allocation (the engine performs them together per header);
// transfer is switch traversal (channel arbitration plus flit movement);
// watchdog covers stall detection and end-of-cycle bookkeeping. The eject
// phase is retained for wire compatibility, but the engine fuses ejection
// into its transfer scan, so its share reads zero there.
type Phase uint8

// The engine phases, in the order Step executes them.
const (
	PhaseInject Phase = iota
	PhaseRoute
	PhaseEject
	PhaseTransfer
	PhaseWatchdog
	// NumPhases sizes per-phase arrays.
	NumPhases
)

// phaseNames maps Phase to its wire name.
var phaseNames = [NumPhases]string{"inject", "route", "eject", "transfer", "watchdog"}

// String returns the wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// PhaseProfiler attributes wall-clock time to engine phases. One profiler
// may be shared by the engines of a parallel sweep: its accumulators are
// atomics, so concurrent engines add to them through per-engine Timers and
// the observatory's HTTP handlers may Snapshot at any moment — all without
// perturbing any run. The profiler observes only the wall clock; it feeds
// nothing back into the simulation, so results stay bit-identical with and
// without it.
type PhaseProfiler struct {
	// now returns monotonic nanoseconds; injectable for deterministic tests.
	now func() int64
	// stride is the sampling period: a timer reads the clock on one cycle in
	// stride and scales that cycle's attributions by stride, so totals and
	// shares remain unbiased estimates while the other cycles cost two
	// predictable branches instead of seven clock reads and six atomic adds.
	stride int64

	nanos  [NumPhases]atomic.Int64
	cycles atomic.Int64
}

// sampleStride is the real-clock sampling period. Engine cycles run in the
// low microseconds while a monotonic clock read costs tens of nanoseconds;
// sampling one cycle in eight keeps the profiler's overhead below the noise
// floor of what it measures.
const sampleStride = 8

// NewPhaseProfiler returns a profiler on the real (monotonic) clock,
// stride-sampling one cycle in eight.
func NewPhaseProfiler() *PhaseProfiler {
	// Profiling genuinely wants the wall clock; it never feeds simulation
	// state, and tests inject a counter instead.
	base := time.Now()                                                           //lint:allow simdeterminism (profiler clock, observe-only)
	pp := NewPhaseProfilerClock(func() int64 { return int64(time.Since(base)) }) //lint:allow simdeterminism (profiler clock, observe-only)
	pp.stride = sampleStride
	return pp
}

// NewPhaseProfilerClock returns a profiler reading the given monotonic
// nanosecond clock on every cycle (stride 1), so injected-clock tests see
// exact attribution.
func NewPhaseProfilerClock(now func() int64) *PhaseProfiler {
	return &PhaseProfiler{now: now, stride: 1}
}

// Timer returns a cursor for one engine's use of the profiler. The engine
// holds a *PhaseTimer exactly like it holds a *Collector: nil means
// profiling is off and every hook site is one predictable branch, a contract
// wormlint's hookguard pass enforces. The cursor's last-mark state is
// engine-local (Begin and Mark run on the single simulation goroutine);
// only the accumulation into the shared profiler is atomic.
func (pp *PhaseProfiler) Timer() *PhaseTimer {
	if pp == nil {
		return nil
	}
	return &PhaseTimer{pp: pp}
}

// PhaseTimer is one engine's private cursor into a shared PhaseProfiler.
type PhaseTimer struct {
	pp   *PhaseProfiler
	last int64
	// countdown cycles remain until the next sampled cycle; sampling marks
	// whether the current cycle is being timed. pending batches the cycle
	// count between samples so unsampled cycles touch no atomics.
	countdown int64
	sampling  bool
	pending   int64
}

// Begin opens one engine cycle: subsequent Marks attribute time since the
// previous Mark (or this Begin). On unsampled cycles (see the profiler's
// stride) Begin only decrements a counter and Marks are no-ops.
func (t *PhaseTimer) Begin() {
	t.pending++
	if t.countdown > 0 {
		t.countdown--
		t.sampling = false
		return
	}
	t.countdown = t.pp.stride - 1
	t.sampling = true
	t.pp.cycles.Add(t.pending) //lint:allow purity (observe-only profile accumulator; results never read it)
	t.pending = 0
	t.last = t.pp.now()
}

// Mark attributes the time elapsed since the last Begin/Mark to phase p,
// scaled by the profiler's sampling stride.
func (t *PhaseTimer) Mark(p Phase) {
	if !t.sampling {
		return
	}
	now := t.pp.now()
	t.pp.nanos[p].Add((now - t.last) * t.pp.stride) //lint:allow purity (observe-only profile accumulator; results never read it)
	t.last = now
}

// PhaseStat is one phase's share of a PhaseSnapshot.
type PhaseStat struct {
	// Phase is the wire name ("inject", "route", ...).
	Phase string
	// Nanos is accumulated wall time in nanoseconds.
	Nanos int64
	// Share is Nanos over the snapshot total (0 when the total is zero).
	Share float64
}

// PhaseSnapshot is a point-in-time reading of a profiler, safe to take from
// any goroutine. It marshals cleanly to JSON for BENCH artifacts and the
// observatory's /metrics.
type PhaseSnapshot struct {
	// Cycles is how many engine cycles the profiler has opened.
	Cycles int64
	// Phases lists the stages in execution order.
	Phases []PhaseStat
}

// Snapshot reads the accumulators.
func (pp *PhaseProfiler) Snapshot() PhaseSnapshot {
	s := PhaseSnapshot{Cycles: pp.cycles.Load(), Phases: make([]PhaseStat, NumPhases)}
	var total int64
	for i := range s.Phases {
		n := pp.nanos[i].Load()
		s.Phases[i] = PhaseStat{Phase: Phase(i).String(), Nanos: n}
		total += n
	}
	if total > 0 {
		for i := range s.Phases {
			s.Phases[i].Share = float64(s.Phases[i].Nanos) / float64(total)
		}
	}
	return s
}

// Total sums the per-phase wall time.
func (s PhaseSnapshot) Total() time.Duration {
	var total int64
	for _, p := range s.Phases {
		total += p.Nanos
	}
	return time.Duration(total)
}

// String renders the end-of-run report behind the CLIs' -phaseprof flag.
func (s PhaseSnapshot) String() string {
	var b strings.Builder
	total := s.Total()
	fmt.Fprintf(&b, "phase profile: %d cycles, %v total engine time", s.Cycles, total.Round(time.Microsecond))
	if s.Cycles > 0 && total > 0 {
		fmt.Fprintf(&b, " (%v/cycle)", (total / time.Duration(s.Cycles)).Round(time.Nanosecond))
	}
	b.WriteByte('\n')
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "  %-9s %10v %5.1f%% %s\n",
			p.Phase, time.Duration(p.Nanos).Round(time.Microsecond), 100*p.Share,
			strings.Repeat("#", int(p.Share*40)))
	}
	return b.String()
}
