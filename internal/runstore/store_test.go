package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wormsim/internal/core"
)

func testConfig(load float64) core.Config {
	return core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", OfferedLoad: load,
		Seed: 11, WarmupCycles: 200, SampleCycles: 100, GapCycles: 50,
		MinSamples: 2, MaxSamples: 3,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg := testConfig(0.3)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hash := cfg.Hash()
	if err := s.Store(hash, cfg.Canonical(), res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup(hash)
	if !ok {
		t.Fatal("stored run not found")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("lookup diverged from stored result:\nwant %+v\ngot  %+v", res, got)
	}
	if s.Hits() != 1 || s.Misses() != 0 {
		t.Errorf("counters hits=%d misses=%d, want 1/0", s.Hits(), s.Misses())
	}
	if _, ok := s.Lookup("no-such-hash"); ok {
		t.Error("lookup of unknown hash succeeded")
	}
	if s.Misses() != 1 {
		t.Errorf("miss not counted: %d", s.Misses())
	}

	rec, ok := s.Get(hash)
	if !ok || rec.Hash != hash || rec.Schema != Schema {
		t.Errorf("Get: %+v", rec)
	}
	if rec.Config.Hash() != hash {
		t.Error("stored config does not re-hash to its key")
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(0.2)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Lookup(cfg.Hash())
	if !ok {
		t.Fatal("record lost across reopen")
	}
	// Bit-identity across the persistence round trip, at the JSON level the
	// store actually speaks.
	want, _ := json.Marshal(res)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Errorf("result not byte-identical across reopen:\nwant %s\ngot  %s", want, have)
	}
}

// TestRecoverTruncatedTail simulates a crash mid-append: a partial final
// line must be discarded, everything before it preserved, and the store
// writable afterwards.
func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.2, 0.4} {
		cfg := testConfig(load)
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the last record.
	cut := len(data) - 37
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (tail dropped)", s2.Len())
	}
	if _, ok := s2.Lookup(testConfig(0.2).Hash()); !ok {
		t.Error("first record lost in recovery")
	}
	// The store must be appendable again, and a third open sees everything.
	cfg := testConfig(0.6)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Errorf("after recovery+append reopen sees %d records, want 2", s3.Len())
	}
}

// TestRecoverMissingNewline: the record survived the crash whole but its
// terminator did not; recovery keeps it and restores the line boundary.
func TestRecoverMissingNewline(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(0.2)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", s2.Len())
	}
	cfg2 := testConfig(0.4)
	res2, err := core.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Store(cfg2.Hash(), cfg2.Canonical(), res2); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("log corrupted by append after newline-less recovery: %v", err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Errorf("reopen sees %d records, want 2", s3.Len())
	}
}

func TestCorruptMiddleIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(0.2)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, FileName)
	data, _ := os.ReadFile(path)
	data = append([]byte("{garbage\n"), data...)
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Errorf("mid-file corruption not reported: %v", err)
	}
}

func TestSchemaMismatchIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, []byte(`{"Schema":"wormsim-runstore/999","Hash":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not reported: %v", err)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var hashes []string
	for _, load := range []float64{0.2, 0.4, 0.6} {
		cfg := testConfig(load)
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, cfg.Hash())
	}
	// Duplicate puts are no-ops, so compaction here proves idempotence and
	// the post-compact append path.
	cfg := testConfig(0.2)
	res, _ := core.Run(cfg)
	if err := s.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("compacted store has %d records, want 3", s.Len())
	}
	// Append after compact, then reload everything.
	cfg2 := testConfig(0.8)
	res2, err := core.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(cfg2.Hash(), cfg2.Canonical(), res2); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 4 {
		t.Errorf("after compact+append reopen sees %d records, want 4", s2.Len())
	}
	for _, h := range hashes {
		if _, ok := s2.Get(h); !ok {
			t.Errorf("record %s lost by compaction", h[:12])
		}
	}
	// List order is first-stored order, preserved across compaction.
	list := s2.List()
	if len(list) != 4 || list[0].Hash != hashes[0] || list[1].Hash != hashes[1] {
		t.Errorf("list order drifted: %v", recHashes(list))
	}
}

func recHashes(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Hash[:8]
	}
	return out
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfgs := make([]core.Config, 8)
	ress := make([]core.Result, 8)
	for i := range cfgs {
		cfgs[i] = testConfig(0.1 + 0.05*float64(i))
		r, err := core.Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		ress[i] = r
	}
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Store(cfgs[i].Hash(), cfgs[i].Canonical(), ress[i]); err != nil {
				t.Error(err)
			}
			s.Lookup(cfgs[i].Hash())
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("store has %d records, want 8", s.Len())
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("log corrupted by concurrent appends: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 8 {
		t.Errorf("reopen sees %d records, want 8", s2.Len())
	}
}
