// Package runstore is the simulator's persistent run store: every completed
// experiment, durable and addressable by the canonical hash of its
// configuration (core.Config.Hash), queryable and comparable forever.
//
// The storage format is an append-only, schema-versioned JSONL file
// (runs.jsonl): one Record per line, written atomically under a mutex and
// recovered on open by replaying the log. A crash mid-append leaves at most
// one truncated final line, which Open tolerates by truncating the file
// back to the last complete record; corruption anywhere earlier is an
// error, never a silent skip. Compact rewrites the log keeping one record
// per hash.
//
// The in-memory index (hash → *Record) makes Lookup O(1); Lookup and Store
// implement core.ResultCache, so a Store attached to core.Config.Cache is
// the admission control ROADMAP item 3 asks for: a warm store answers a
// repeated sweep without burning a single engine cycle. Hits and Misses
// count both outcomes for the observatory's /metrics exposition.
//
// Determinism contract: nothing on the Lookup (cache-hit) path reads the
// wall clock or otherwise perturbs results — a cached Result is returned
// verbatim, bit-identical to re-simulating (TestSweepWarmStoreBitIdentical).
package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"wormsim/internal/core"
)

// Schema identifies the record layout; bump it on breaking changes so Open
// can refuse logs this package no longer understands.
const Schema = "wormsim-runstore/1"

// FileName is the log file inside the store directory.
const FileName = "runs.jsonl"

// Record is one stored experiment: the canonical config, its hash, and the
// full Result (TraceEvents excluded — they are json:"-" and deliberately
// not persisted). Seq is the append sequence number, monotonically
// increasing across the life of the log (compaction preserves it).
type Record struct {
	Schema string
	Seq    uint64
	Hash   string
	Config core.Config
	Result core.Result
	// PhaseShares, when the run carried a phase profiler, is the fraction of
	// engine wall time per pipeline phase — store metadata, not part of the
	// Result (wall time is not deterministic, so it must never flow back
	// into one).
	PhaseShares map[string]float64 `json:",omitempty"`
}

// Store is a persistent, concurrency-safe run store. The zero value is not
// usable; call Open.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]*Record
	order []string // insertion order of unique hashes, for deterministic List
	seq   uint64

	hits   atomic.Int64
	misses atomic.Int64
}

// Open loads (or creates) the run store in dir. A truncated final line —
// the signature of a crash mid-append — is discarded and the file truncated
// back to the last complete record; any earlier undecodable or
// wrong-schema line is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string]*Record)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover replays the log into the index, handling the truncated tail.
func (s *Store) recover() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	r := bufio.NewReaderSize(s.f, 1<<20)
	var offset, good int64
	needNewline := false
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			complete := err == nil // a final line without '\n' is incomplete
			var rec Record
			if decodeErr := json.Unmarshal(line, &rec); decodeErr != nil {
				if complete {
					return fmt.Errorf("runstore: %s: corrupt record at offset %d: %w", s.path, offset, decodeErr)
				}
				// Truncated tail from a crash mid-append: drop it.
				break
			}
			if rec.Schema != Schema {
				return fmt.Errorf("runstore: %s: record at offset %d has schema %q, this store speaks %q", s.path, offset, rec.Schema, Schema)
			}
			// A decodable but unterminated final line lost only its trailing
			// newline in the crash; the record is whole. Keep it and restore
			// the terminator below so the next append starts a fresh line.
			needNewline = !complete
			s.insert(&rec)
			offset += int64(len(line))
			good = offset
		}
		if err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("runstore: %s: %w", s.path, err)
		}
	}
	// Truncate away any discarded tail so the next append starts on a clean
	// line boundary.
	if fi, err := s.f.Stat(); err == nil && fi.Size() > good {
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("runstore: truncate recovered log: %w", err)
		}
	}
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if needNewline {
		if _, err := s.f.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("runstore: restore record terminator: %w", err)
		}
	}
	return nil
}

// insert indexes rec, newest record per hash winning, and keeps seq ahead
// of everything seen.
func (s *Store) insert(rec *Record) {
	if _, exists := s.index[rec.Hash]; !exists {
		s.order = append(s.order, rec.Hash)
	}
	s.index[rec.Hash] = rec
	if rec.Seq >= s.seq {
		s.seq = rec.Seq + 1
	}
}

// Close releases the log file. Lookup keeps working from the in-memory
// index; Store calls fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Path returns the log file location.
func (s *Store) Path() string { return s.path }

// Lookup returns the Result stored under hash and counts the outcome in
// Hits/Misses. It is the core.ResultCache read side: nothing here reads a
// clock or mutates the record, so a hit is bit-identical to re-simulating.
func (s *Store) Lookup(hash string) (core.Result, bool) {
	s.mu.Lock()
	rec, ok := s.index[hash]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1) //lint:allow purity (observability counter; never read back into a Result)
		return core.Result{}, false
	}
	s.hits.Add(1) //lint:allow purity (observability counter; never read back into a Result)
	return rec.Result, true
}

// Get returns the full record under hash without touching the hit/miss
// counters — the query path for the observatory API.
func (s *Store) Get(hash string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[hash]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Store appends a completed run to the log and indexes it. A hash already
// present is a no-op (simulations are deterministic, so the stored record
// is already the record). It is the core.ResultCache write side.
func (s *Store) Store(hash string, cfg core.Config, r core.Result) error {
	return s.Put(Record{Hash: hash, Config: cfg, Result: r})
}

// Put appends rec (Schema and Seq are filled in; Hash is computed from the
// config when empty). First write per hash wins.
func (s *Store) Put(rec Record) error {
	if rec.Hash == "" {
		rec.Hash = rec.Config.Hash()
	}
	rec.Schema = Schema
	rec.Config = rec.Config.Canonical()
	rec.Result.TraceEvents = nil
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.index[rec.Hash]; exists {
		return nil
	}
	if s.f == nil {
		return fmt.Errorf("runstore: store is closed")
	}
	rec.Seq = s.seq
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: encode record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil { //lint:allow purity (append-only persistence of a finished Result; never read back within a run)
		return fmt.Errorf("runstore: append %s: %w", s.path, err)
	}
	s.insert(&rec)
	return nil
}

// Len reports the number of distinct runs stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// List returns copies of every record in first-stored order — a
// deterministic enumeration for the API's listing and comparison queries.
func (s *Store) List() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, h := range s.order {
		out = append(out, *s.index[h])
	}
	return out
}

// Select returns, in first-stored order, the records keep reports true for.
func (s *Store) Select(keep func(Record) bool) []Record {
	var out []Record
	for _, rec := range s.List() {
		if keep(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// Hits reports cache-hit lookups since Open.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses reports cache-miss lookups since Open.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Compact rewrites the log keeping exactly one record per hash (the indexed
// one), via a temp file renamed into place — crash-safe: a crash mid-compact
// leaves either the old complete log or the new one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("runstore: store is closed")
	}
	var buf bytes.Buffer
	for _, h := range s.order {
		line, err := json.Marshal(s.index[h])
		if err != nil {
			return fmt.Errorf("runstore: encode record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := s.path + ".compact"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("runstore: compact: %w", err)
	}
	// Reopen the append handle on the new inode, positioned at its end.
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: reopen after compact: %w", err)
	}
	s.f.Close()
	s.f = f
	return nil
}
