package runstore

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"

	"wormsim/internal/core"
	"wormsim/internal/telemetry"
)

// TestSweepWarmStoreBitIdentical is the admission-control acceptance test:
// re-running an identical sweep against a warm store must perform zero
// engine cycles for cached points (proven by an OnTick canary — the engine
// publishes ticks only while it steps) and return Results bit-identical to
// the fresh simulation, field-for-field and byte-for-byte.
func TestSweepWarmStoreBitIdentical(t *testing.T) {
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", Seed: 11,
		WarmupCycles: 300, SampleCycles: 150, GapCycles: 50,
		MinSamples: 2, MaxSamples: 3,
	}
	loads := []float64{0.2, 0.4, 0.6}

	// Reference: no store attached.
	bare, err := core.SweepN(cfg, loads, 2)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Cold pass: every point is a miss, simulated and recorded.
	cold := cfg
	cold.Cache = s
	coldRes, err := core.SweepN(cold, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, coldRes) {
		t.Error("cold-store sweep diverged from bare sweep")
	}
	if s.Hits() != 0 || s.Misses() != int64(len(loads)) {
		t.Errorf("cold pass: hits=%d misses=%d, want 0/%d", s.Hits(), s.Misses(), len(loads))
	}
	if s.Len() != len(loads) {
		t.Errorf("store holds %d records after cold pass, want %d", s.Len(), len(loads))
	}

	// Warm pass: every point must come from the store with zero engine
	// cycles. The tick canary counts engine publications; a cache hit never
	// steps the engine, so it must stay at zero.
	var ticks atomic.Int64
	warm := cfg
	warm.Cache = s
	warm.TickCycles = 1
	warm.OnTick = func(core.TickEvent) { ticks.Add(1) }
	warmRes, err := core.SweepN(warm, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ticks.Load(); got != 0 {
		t.Errorf("warm sweep stepped the engine: %d ticks published, want 0", got)
	}
	if s.Hits() != int64(len(loads)) {
		t.Errorf("warm pass: hits=%d, want %d", s.Hits(), len(loads))
	}
	if !reflect.DeepEqual(bare, warmRes) {
		t.Errorf("warm-store sweep diverged from bare sweep:\nbare %+v\nwarm %+v", bare, warmRes)
	}
	bj, _ := json.Marshal(bare)
	wj, _ := json.Marshal(warmRes)
	if !bytes.Equal(bj, wj) {
		t.Error("warm-store sweep JSON not byte-identical to bare sweep")
	}
}

// TestSweepWarmStoreAcrossReopen: the warm-store guarantee survives
// persistence — a new process (fresh Open) serves the same bytes.
func TestSweepWarmStoreAcrossReopen(t *testing.T) {
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "ecube", Pattern: "transpose", Seed: 5,
		WarmupCycles: 200, SampleCycles: 100, GapCycles: 50,
		MinSamples: 2, MaxSamples: 2,
	}
	loads := []float64{0.3, 0.5}
	dir := t.TempDir()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := cfg
	cold.Cache = s
	first, err := core.SweepN(cold, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := cfg
	warm.Cache = s2
	second, err := core.SweepN(warm, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Misses() != 0 || s2.Hits() != int64(len(loads)) {
		t.Errorf("reopened store: hits=%d misses=%d, want %d/0", s2.Hits(), s2.Misses(), len(loads))
	}
	fj, _ := json.Marshal(first)
	sj, _ := json.Marshal(second)
	if !bytes.Equal(fj, sj) {
		t.Error("results not byte-identical across store reopen")
	}
}

// TestRunCachedTraceBypassesStore: configs retaining a lifecycle trace run
// fresh every time — TraceEvents are not persisted, so serving them from
// the store would silently drop data.
func TestRunCachedTraceBypassesStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", Seed: 3,
		OfferedLoad:  0.3,
		WarmupCycles: 200, SampleCycles: 100, GapCycles: 50,
		MinSamples: 2, MaxSamples: 2,
		Cache: s,
	}
	cfg.Telemetry = &telemetry.Options{Metrics: true, Trace: true, TraceCap: 64}
	for i := 0; i < 2; i++ {
		r, hit, err := core.RunCached(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("trace-collecting run served from the store")
		}
		if len(r.TraceEvents) == 0 {
			t.Fatal("trace run returned no events")
		}
	}
	if s.Len() != 0 {
		t.Errorf("trace run leaked %d records into the store", s.Len())
	}
}

// TestSweepReplicatedUsesStore: the load×seed grid consults the cache too.
func TestSweepReplicatedUsesStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform",
		WarmupCycles: 200, SampleCycles: 100, GapCycles: 50,
		MinSamples: 2, MaxSamples: 2,
		Cache: s,
	}
	loads := []float64{0.2, 0.4}
	seeds := []uint64{1, 2, 3}
	first, err := core.SweepReplicated(cfg, loads, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(loads)*len(seeds) {
		t.Fatalf("store holds %d records, want %d", s.Len(), len(loads)*len(seeds))
	}
	missesAfterCold := s.Misses()
	second, err := core.SweepReplicated(cfg, loads, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Misses() != missesAfterCold {
		t.Errorf("warm replicated sweep missed the cache %d times", s.Misses()-missesAfterCold)
	}
	fj, _ := json.Marshal(first)
	sj, _ := json.Marshal(second)
	if !bytes.Equal(fj, sj) {
		t.Error("replicated sweep not byte-identical against warm store")
	}
}
