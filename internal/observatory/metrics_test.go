package observatory

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wormsim/internal/core"
	"wormsim/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock advances one second per reading, making the cycles/sec gauge a
// pure function of the tick schedule.
func fixedClock() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func testPublisher() *Publisher {
	p := NewPublisher()
	p.now = fixedClock()
	return p
}

// goldenConfig is a small deterministic run: every tick, metric and trace
// event is a pure function of this configuration.
func goldenConfig() core.Config {
	return core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", OfferedLoad: 0.5,
		Seed: 7, WarmupCycles: 400, SampleCycles: 200, GapCycles: 100,
		MinSamples: 2, MaxSamples: 3,
		Telemetry:  &telemetry.Options{Metrics: true, Trace: true, TraceCap: 256},
		TickCycles: 100,
	}
}

func TestMetricsGolden(t *testing.T) {
	pub := testPublisher()
	pp := telemetry.NewPhaseProfilerClock(func() func() int64 {
		var c int64
		return func() int64 { c += 10; return c }
	}())
	pub.SetPhases(pp)
	cfg := goldenConfig()
	cfg.OnTick = pub.PublishTick
	cfg.PhaseProf = pp
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pub.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from %s (re-run with -update if intended)\ngot:\n%s", path, got)
	}
}

func TestMetricsBeforeFirstTick(t *testing.T) {
	var buf bytes.Buffer
	if err := testPublisher().WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wormsim_observatory_up 1") {
		t.Errorf("missing up gauge:\n%s", out)
	}
	if strings.Contains(out, "wormsim_cycles_total") {
		t.Errorf("run metrics exported before any tick:\n%s", out)
	}
}

func TestMetricsExposition(t *testing.T) {
	pub := testPublisher()
	pub.SetSweepTotal(3)
	cfg := goldenConfig()
	cfg.OnTick = pub.PublishTick
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pub.PublishPoint(0, res)

	var buf bytes.Buffer
	if err := pub.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`wormsim_run_info{algorithm="nbc",pattern="uniform",switching="wormhole",k="4",n="2",mesh="false",load="0.5",seed="7"} 1`,
		"wormsim_simulated_cycles_per_second ",
		"wormsim_worms_in_flight ",
		`wormsim_messages_total{event="delivered"} `,
		"wormsim_congestion_drops_total ",
		`wormsim_head_blocked_cycles_total{class="0"} `,
		`wormsim_vc_occupancy_mean{class="0"} `,
		"wormsim_injection_backlog_mean ",
		`wormsim_channel_busy_cycles_total{ch="`,
		`dir="+"`,
		"wormsim_sweep_points_total 3",
		"wormsim_sweep_points_done 1",
		"# TYPE wormsim_messages_total counter",
		"# HELP wormsim_cycles_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// HELP/TYPE headers appear once per family even with many series.
	if got := strings.Count(out, "# TYPE wormsim_messages_total counter"); got != 1 {
		t.Errorf("messages_total TYPE header emitted %d times", got)
	}
}
