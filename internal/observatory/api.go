package observatory

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"wormsim/internal/core"
	"wormsim/internal/runstore"
	"wormsim/internal/viz"
)

// API is the observatory's experiment surface over a persistent run store:
// submit a configuration and get either the recorded Result instantly (the
// store is content-addressed by core.Config.Hash, and simulations are pure
// functions of the canonical config) or an enqueued run whose status can be
// polled and streamed; list and fetch recorded runs; and compare two
// algorithms point-by-point across everything else held equal
// (core.Config.PairKey alignment).
//
// Admission consults the store exactly once per submission (Lookup, which
// also feeds the hit/miss counters on /metrics); a miss enqueues the run on
// a work-stealing core.Scheduler and the completed Result is appended to the
// store before the run is reported done.
type API struct {
	store *runstore.Store
	pub   *Publisher // optional: completed API runs publish ticks to the live feed
	sched *core.Scheduler

	mu      sync.Mutex
	pending map[string]*runState // hash → queued or running submission
}

// runState tracks one in-flight submission and its SSE subscribers.
type runState struct {
	hash  string
	state string // "queued" or "running"
	subs  map[chan []byte]struct{}
}

// NewAPI builds the API over store with its own scheduler of the given
// worker count. pub may be nil; when set, runs submitted through the API
// publish ticks to the shared live feed. Close the API when done.
func NewAPI(store *runstore.Store, pub *Publisher, workers int) *API {
	return &API{
		store:   store,
		pub:     pub,
		sched:   core.NewScheduler(workers),
		pending: make(map[string]*runState),
	}
}

// Close drains and stops the scheduler (in-flight runs complete first).
func (a *API) Close() { a.sched.Close() }

// runStatus is the wire form of a submission's lifecycle. State is one of
// queued, running, failed, done; Cached marks a done answered straight from
// the store; Result rides along on done.
type runStatus struct {
	Hash   string       `json:"hash"`
	State  string       `json:"state"`
	Cached bool         `json:"cached,omitempty"`
	Error  string       `json:"error,omitempty"`
	Result *core.Result `json:"result,omitempty"`
}

// handleRuns serves GET /api/runs (list) and POST /api/runs (submit).
func (a *API) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		a.handleList(w)
	case http.MethodPost:
		a.handleSubmit(w, r)
	default:
		http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
	}
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var cfg core.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode config: %v", err)})
		return
	}
	canonical := cfg.Canonical()
	hash := canonical.Hash()

	// The single admission Lookup: a hit is the whole point of the store —
	// the recorded Result comes back with zero engine cycles spent.
	if _, ok := a.store.Lookup(hash); ok {
		rec, _ := a.store.Get(hash)
		writeJSON(w, http.StatusOK, runStatus{Hash: hash, State: "done", Cached: true, Result: &rec.Result})
		return
	}

	a.mu.Lock()
	if st, ok := a.pending[hash]; ok {
		// A concurrent submission of the same point rides the existing run.
		state := st.state
		a.mu.Unlock()
		writeJSON(w, http.StatusAccepted, runStatus{Hash: hash, State: state})
		return
	}
	st := &runState{hash: hash, state: "queued", subs: make(map[chan []byte]struct{})}
	a.pending[hash] = st
	a.mu.Unlock()

	a.sched.Submit(func(int) { a.run(hash, canonical) })
	writeJSON(w, http.StatusAccepted, runStatus{Hash: hash, State: "queued"})
}

// run executes one queued submission on a scheduler worker and settles its
// state: the Result is stored before "done" is announced, so a client that
// sees done can immediately GET the record.
func (a *API) run(hash string, cfg core.Config) {
	a.setState(hash, "running")
	if a.pub != nil {
		cfg.OnTick = a.pub.PublishTick
	}
	res, err := core.Run(cfg)
	if err != nil && !res.Deadlocked {
		// Invalid configs surface here; drop the pending entry so a corrected
		// resubmission is not shadowed by the failure.
		a.settle(hash, runStatus{Hash: hash, State: "failed", Error: err.Error()})
		return
	}
	// Deadlock is a legitimate experimental outcome: the Result describes it
	// (Result.Deadlocked) and is recorded like any other point.
	if perr := a.store.Put(runstore.Record{Hash: hash, Config: cfg, Result: res}); perr != nil {
		a.settle(hash, runStatus{Hash: hash, State: "failed", Error: perr.Error()})
		return
	}
	a.settle(hash, runStatus{Hash: hash, State: "done", Result: &res})
}

// setState advances a pending run's state and notifies its subscribers.
func (a *API) setState(hash, state string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.pending[hash]
	if !ok {
		return
	}
	st.state = state
	broadcast(st.subs, sseMessage("status", runStatus{Hash: hash, State: state}))
}

// settle finishes a pending run: subscribers get the final status frame and
// their channels close; the pending entry disappears (done runs live in the
// store now, failed ones may be resubmitted).
func (a *API) settle(hash string, final runStatus) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.pending[hash]
	if !ok {
		return
	}
	delete(a.pending, hash)
	frame := sseMessage("status", final)
	for ch := range st.subs { //lint:allow simdeterminism (fan-out; per-subscriber delivery stays FIFO via the channel)
		select {
		case ch <- frame:
		default: // slow client: it still observes completion via the close
		}
		close(ch)
	}
	st.subs = nil
}

// broadcast fans frame out to subscribers, dropping for any full buffer.
func broadcast(subs map[chan []byte]struct{}, frame []byte) {
	for ch := range subs { //lint:allow simdeterminism (fan-out; per-subscriber delivery stays FIFO via the channel)
		select {
		case ch <- frame:
		default:
		}
	}
}

// runSummary is one row of the GET /api/runs listing.
type runSummary struct {
	Hash        string  `json:"hash"`
	State       string  `json:"state"`
	Seq         uint64  `json:"seq,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Pattern     string  `json:"pattern,omitempty"`
	OfferedLoad float64 `json:"load,omitempty"`
	AvgLatency  float64 `json:"latency,omitempty"`
	Throughput  float64 `json:"throughput,omitempty"`
	Deadlocked  bool    `json:"deadlocked,omitempty"`
}

func (a *API) handleList(w http.ResponseWriter) {
	recs := a.store.List()
	out := make([]runSummary, 0, len(recs))
	for _, rec := range recs {
		out = append(out, runSummary{
			Hash: rec.Hash, State: "done", Seq: rec.Seq,
			Algorithm: rec.Result.Algorithm, Pattern: rec.Result.Pattern,
			OfferedLoad: rec.Result.OfferedLoad, AvgLatency: rec.Result.AvgLatency,
			Throughput: rec.Result.Throughput, Deadlocked: rec.Result.Deadlocked,
		})
	}
	a.mu.Lock()
	hashes := make([]string, 0, len(a.pending))
	for h := range a.pending { //lint:allow simdeterminism (sorted below)
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		out = append(out, runSummary{Hash: h, State: a.pending[h].state})
	}
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Runs []runSummary `json:"runs"`
	}{out})
}

// handleRun serves GET /api/runs/{hash} and GET /api/runs/{hash}/events.
func (a *API) handleRun(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/runs/")
	hash, sub, _ := strings.Cut(rest, "/")
	switch {
	case hash == "":
		http.NotFound(w, r)
	case sub == "events":
		a.handleRunEvents(w, r, hash)
	case sub == "":
		a.handleRunGet(w, hash)
	default:
		http.NotFound(w, r)
	}
}

func (a *API) handleRunGet(w http.ResponseWriter, hash string) {
	if rec, ok := a.store.Get(hash); ok {
		writeJSON(w, http.StatusOK, struct {
			State  string          `json:"state"`
			Record runstore.Record `json:"record"`
		}{"done", rec})
		return
	}
	a.mu.Lock()
	st, ok := a.pending[hash]
	var state string
	if ok {
		state = st.state
	}
	a.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, runStatus{Hash: hash, State: state})
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown run " + hash})
}

// handleRunEvents streams one run's status transitions as SSE until it
// settles. A run already in the store yields a single done frame.
func (a *API) handleRunEvents(w http.ResponseWriter, r *http.Request, hash string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	if rec, ok := a.store.Get(hash); ok {
		w.Write(sseMessage("status", runStatus{Hash: hash, State: "done", Cached: true, Result: &rec.Result})) //nolint:errcheck
		fl.Flush()
		return
	}
	a.mu.Lock()
	st, ok := a.pending[hash]
	if !ok {
		a.mu.Unlock()
		w.Write(sseMessage("status", runStatus{Hash: hash, State: "unknown"})) //nolint:errcheck
		fl.Flush()
		return
	}
	ch := make(chan []byte, 16)
	st.subs[ch] = struct{}{}
	state := st.state
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		if st.subs != nil {
			delete(st.subs, ch)
		}
		a.mu.Unlock()
	}()

	w.Write(sseMessage("status", runStatus{Hash: hash, State: state})) //nolint:errcheck
	fl.Flush()
	for {
		select {
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// compareSide is one algorithm's record at a comparison point.
type compareSide struct {
	Hash       string  `json:"hash"`
	AvgLatency float64 `json:"latency"`
	Throughput float64 `json:"throughput"`
	Deadlocked bool    `json:"deadlocked,omitempty"`
}

// comparePoint pairs the two algorithms' records whose canonical configs
// differ only in the algorithm (same PairKey).
type comparePoint struct {
	PairKey     string      `json:"pairKey"`
	OfferedLoad float64     `json:"load"`
	A           compareSide `json:"a"`
	B           compareSide `json:"b"`
}

// comparison is the GET /api/compare response body.
type comparison struct {
	A      string         `json:"a"`
	B      string         `json:"b"`
	Points []comparePoint `json:"points"`
	// AOnly and BOnly count stored runs of each algorithm with no partner at
	// the same comparison point — visible so a sparse comparison is not
	// mistaken for a complete one.
	AOnly int `json:"aOnly"`
	BOnly int `json:"bOnly"`
}

// compare aligns the store's records of algorithms a and b by PairKey and
// orders the paired points by offered load (PairKey breaking ties), a
// deterministic result for both the JSON and the SVG surface.
func (a *API) compare(algA, algB string) comparison {
	cmp := comparison{A: algA, B: algB}
	byKey := make(map[string]map[string]runstore.Record)
	for _, rec := range a.store.List() {
		alg := rec.Result.Algorithm
		if alg != algA && alg != algB {
			continue
		}
		key := rec.Config.PairKey()
		if byKey[key] == nil {
			byKey[key] = make(map[string]runstore.Record)
		}
		if _, dup := byKey[key][alg]; !dup { // first-stored record wins, like the store index
			byKey[key][alg] = rec
		}
	}
	for key, sides := range byKey { //lint:allow simdeterminism (sorted below)
		ra, okA := sides[algA]
		rb, okB := sides[algB]
		switch {
		case okA && okB:
			cmp.Points = append(cmp.Points, comparePoint{
				PairKey:     key,
				OfferedLoad: ra.Config.OfferedLoad,
				A:           compareSide{ra.Hash, ra.Result.AvgLatency, ra.Result.Throughput, ra.Result.Deadlocked},
				B:           compareSide{rb.Hash, rb.Result.AvgLatency, rb.Result.Throughput, rb.Result.Deadlocked},
			})
		case okA:
			cmp.AOnly++
		default:
			cmp.BOnly++
		}
	}
	sort.Slice(cmp.Points, func(i, j int) bool {
		if cmp.Points[i].OfferedLoad != cmp.Points[j].OfferedLoad {
			return cmp.Points[i].OfferedLoad < cmp.Points[j].OfferedLoad
		}
		return cmp.Points[i].PairKey < cmp.Points[j].PairKey
	})
	return cmp
}

func (a *API) handleCompare(w http.ResponseWriter, r *http.Request) {
	algA, algB := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if algA == "" || algB == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "compare needs ?a=ALG&b=ALG"})
		return
	}
	writeJSON(w, http.StatusOK, a.compare(algA, algB))
}

func (a *API) handleCompareSVG(w http.ResponseWriter, r *http.Request) {
	algA, algB := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	w.Header().Set("Content-Type", "image/svg+xml")
	if algA == "" || algB == "" {
		http.Error(w, "compare needs ?a=ALG&b=ALG", http.StatusBadRequest)
		return
	}
	cmp := a.compare(algA, algB)
	title := fmt.Sprintf("%s vs %s — latency vs offered load (%d aligned points)", algA, algB, len(cmp.Points))
	fmt.Fprint(w, viz.CompareSVG(title, compareSeries(cmp))) //nolint:errcheck
}

// compareSeries converts an aligned comparison into the two overlay curves
// /compare.svg draws.
func compareSeries(cmp comparison) []viz.CurveSeries {
	sa := viz.CurveSeries{Name: cmp.A}
	sb := viz.CurveSeries{Name: cmp.B}
	for _, p := range cmp.Points {
		sa.Loads = append(sa.Loads, p.OfferedLoad)
		sa.Latency = append(sa.Latency, p.A.AvgLatency)
		sa.Throughput = append(sa.Throughput, p.A.Throughput)
		sa.Deadlocked = append(sa.Deadlocked, p.A.Deadlocked)
		sb.Loads = append(sb.Loads, p.OfferedLoad)
		sb.Latency = append(sb.Latency, p.B.AvgLatency)
		sb.Throughput = append(sb.Throughput, p.B.Throughput)
		sb.Deadlocked = append(sb.Deadlocked, p.B.Deadlocked)
	}
	return []viz.CurveSeries{sa, sb}
}

// writeJSON writes v as indented JSON with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck
}
