package observatory

import (
	"fmt"
	"io"
	"strconv"

	"wormsim/internal/forensics"
	"wormsim/internal/stats"
	"wormsim/internal/topology"
)

// WriteMetrics renders the current snapshot in the Prometheus text
// exposition format (version 0.0.4). Before the first publication only
// wormsim_observatory_up is exported. Output is a pure function of the
// snapshot, so a deterministic run yields a byte-identical exposition — the
// golden test in metrics_test.go holds it.
func (p *Publisher) WriteMetrics(w io.Writer) error {
	mw := &metricWriter{w: w}
	mw.metric("wormsim_observatory_up", "gauge",
		"Whether the observatory publisher is serving.", "", 1)
	mw.metric("wormsim_sse_dropped_frames_total", "counter",
		"SSE frames dropped because a subscriber's buffer was full (slow clients never stall the simulation).",
		"", float64(p.DroppedFrames()))
	if sc := p.storeCounters(); sc != nil {
		mw.metric("wormsim_runstore_records", "gauge",
			"Distinct runs held by the attached run store.", "", float64(sc.Len()))
		mw.metric("wormsim_runstore_hits_total", "counter",
			"Run-store lookups answered from the store (simulations skipped entirely).", "", float64(sc.Hits()))
		mw.metric("wormsim_runstore_misses_total", "counter",
			"Run-store lookups that had to simulate.", "", float64(sc.Misses()))
	}

	s := p.Snapshot()
	if s == nil {
		return mw.err
	}
	ev := s.Tick
	t := ev.Counters

	mw.metric("wormsim_run_info", "gauge",
		"Identity of the run behind the current snapshot (value is always 1).",
		fmt.Sprintf(`{algorithm=%q,pattern=%q,switching=%q,k="%d",n="%d",mesh="%v",load=%q,seed="%d"}`,
			ev.Algorithm, ev.Pattern, string(ev.Switching), ev.K, ev.N, ev.Mesh,
			formatFloat(ev.OfferedLoad), ev.Seed), 1)
	mw.metric("wormsim_cycles_total", "counter",
		"Simulated cycles completed by the current run.", "", float64(ev.Cycle))
	mw.metric("wormsim_simulated_cycles_per_second", "gauge",
		"Simulated-cycle rate estimated across the last two ticks.", "", s.CyclesPerSec)
	mw.metric("wormsim_worms_in_flight", "gauge",
		"Worms currently occupying network resources.", "", float64(ev.InFlight))
	for _, c := range []struct {
		event string
		v     int64
	}{{"generated", t.Generated}, {"admitted", t.Admitted}, {"dropped", t.Dropped}, {"delivered", t.Delivered}} {
		mw.metric("wormsim_messages_total", "counter",
			"Message lifecycle totals by event.",
			fmt.Sprintf(`{event=%q}`, c.event), float64(c.v))
	}
	mw.metric("wormsim_flit_moves_total", "counter",
		"Flit transfers across physical channels.", "", float64(t.FlitMoves))

	if tel := ev.Telemetry; tel != nil {
		mw.metric("wormsim_congestion_drops_total", "counter",
			"Messages discarded by congestion control.", "", float64(tel.Drops))
		for class, v := range tel.HeadBlockedByClass {
			mw.metric("wormsim_head_blocked_cycles_total", "counter",
				"Cycles a worm header bid for an output virtual channel and found none free, by routing class.",
				fmt.Sprintf(`{class="%d"}`, class), float64(v))
		}
		for class, v := range tel.VCOccupancyMean {
			mw.metric("wormsim_vc_occupancy_mean", "gauge",
				"Mean owned virtual channels per routing class, sampled each cycle.",
				fmt.Sprintf(`{class="%d"}`, class), v)
		}
		for class, v := range tel.VCOccupancyMax {
			mw.metric("wormsim_vc_occupancy_max", "gauge",
				"Peak owned virtual channels per routing class.",
				fmt.Sprintf(`{class="%d"}`, class), v)
		}
		mw.metric("wormsim_injection_backlog_mean", "gauge",
			"Mean admitted-but-not-fully-injected messages across all nodes.", "", tel.InjQueueMean)
		mw.metric("wormsim_injection_backlog_max", "gauge",
			"Peak admitted-but-not-fully-injected messages.", "", tel.InjQueueMax)
		mw.metric("wormsim_trace_events_recorded", "gauge",
			"Lifecycle trace events retained in the collector ring.", "", float64(tel.TraceEvents))

		// Per-channel busy cycles, labeled with the channel's topology
		// coordinates. A 16-ary 2-cube torus has 1024 channel slots; one
		// series each is fine for a scrape.
		g := grid(ev.K, ev.N, ev.Mesh)
		for ch, busy := range tel.ChannelBusy {
			if busy == 0 {
				continue // idle channels stay out of the exposition
			}
			node, dim, dir := g.ChannelInfo(ch)
			mw.metric("wormsim_channel_busy_cycles_total", "counter",
				"Cycles each physical channel slot moved a flit (slots with zero traffic are omitted).",
				fmt.Sprintf(`{ch="%d",node="%d",dim="%d",dir=%q}`, ch, node, dim, dirString(dir)), float64(busy))
		}
	}

	if f := ev.Forensics; f != nil {
		mw.metric("wormsim_forensics_samples_total", "counter",
			"Wait-for graph samples taken by the congestion forensics analyzer.", "", float64(f.Samples))
		mw.metric("wormsim_forensics_blocked_observed_total", "counter",
			"Head-blocked worm-cycles observed by forensics (sampled observations scaled by the sampling period).",
			"", float64(f.BlockedObserved))
		mw.metric("wormsim_forensics_attributed_total", "counter",
			"Head-blocked worm-cycles successfully attributed to a root-cause channel.", "", float64(f.Attributed))
		mw.metric("wormsim_forensics_unattributed_total", "counter",
			"Head-blocked worm-cycles with no admissible output channel to blame.", "", float64(f.Unattributed))
		mw.metric("wormsim_forensics_congestion_trees_total", "counter",
			"Congestion trees (maximal wait-for components) seen across all samples.", "", float64(f.Trees))
		mw.metric("wormsim_forensics_wait_cycles_total", "counter",
			"Runtime wait-for cycles detected (near-deadlock early warning).", "", float64(f.WaitCycles))

		g := grid(ev.K, ev.N, ev.Mesh)
		for ch, v := range f.BlameByChannel {
			if v == 0 {
				continue // channels never blamed stay out of the exposition
			}
			node, dim, dir := g.ChannelInfo(ch)
			mw.metric("wormsim_blame_cycles_total", "counter",
				"Head-blocked worm-cycles attributed to each root-cause channel (zero-blame channels omitted).",
				fmt.Sprintf(`{ch="%d",node="%d",dim="%d",dir=%q}`, ch, node, dim, dirString(dir)), float64(v))
		}

		for _, ca := range f.Anatomy {
			if ca.Delivered == 0 {
				continue
			}
			for _, comp := range []struct {
				name string
				cs   forensics.ComponentStats
			}{{"inject", ca.Inject}, {"alloc", ca.Alloc}, {"behind", ca.Behind}, {"drain", ca.Drain}} {
				mw.histogram("wormsim_latency_component_cycles",
					"Delivered-worm latency decomposition by routing class and component (inject-queue wait, VC-allocation stalls, blocked-behind time, ideal drain).",
					fmt.Sprintf(`class="%d",component="%s"`, ca.Class, comp.name),
					comp.cs.Buckets, ca.Delivered, comp.cs.Mean*float64(ca.Delivered))
			}
		}
	}

	if s.Phases != nil {
		mw.metric("wormsim_phase_cycles_total", "counter",
			"Engine cycles observed by the phase profiler.", "", float64(s.Phases.Cycles))
		for _, ph := range s.Phases.Phases {
			mw.metric("wormsim_phase_seconds_total", "counter",
				"Engine wall time attributed to each pipeline phase.",
				fmt.Sprintf(`{phase=%q}`, ph.Phase), float64(ph.Nanos)/1e9)
		}
	}

	if s.SweepTotal > 0 {
		mw.metric("wormsim_sweep_points_total", "gauge",
			"Points in the running sweep.", "", float64(s.SweepTotal))
		mw.metric("wormsim_sweep_points_done", "gauge",
			"Sweep points completed so far.", "", float64(s.SweepDone))
	}
	return mw.err
}

// metricWriter writes exposition lines, emitting HELP/TYPE headers once per
// metric family and remembering the first error.
type metricWriter struct {
	w        io.Writer
	lastName string
	err      error
}

func (mw *metricWriter) metric(name, kind, help, labels string, v float64) {
	if mw.err != nil {
		return
	}
	if name != mw.lastName {
		_, mw.err = fmt.Fprintf(mw.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		if mw.err != nil {
			return
		}
		mw.lastName = name
	}
	_, mw.err = fmt.Fprintf(mw.w, "%s%s %s\n", name, labels, formatFloat(v))
}

// histogram writes one Prometheus histogram series from pre-cumulated
// buckets: _bucket lines (plus the mandatory le="+Inf"), then _sum and
// _count. The HELP/TYPE header is emitted once per family, keyed on the base
// name like metric's.
func (mw *metricWriter) histogram(name, help, labels string, buckets []stats.CumBucket, count int64, sum float64) {
	if mw.err != nil {
		return
	}
	if name != mw.lastName {
		_, mw.err = fmt.Fprintf(mw.w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		if mw.err != nil {
			return
		}
		mw.lastName = name
	}
	for _, b := range buckets {
		if _, mw.err = fmt.Fprintf(mw.w, "%s_bucket{%s,le=%q} %d\n",
			name, labels, formatFloat(b.UpperBound), b.Count); mw.err != nil {
			return
		}
	}
	if _, mw.err = fmt.Fprintf(mw.w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, count); mw.err != nil {
		return
	}
	if _, mw.err = fmt.Fprintf(mw.w, "%s_sum{%s} %s\n", name, labels, formatFloat(sum)); mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, "%s_count{%s} %d\n", name, labels, count)
}

// formatFloat renders v the way Prometheus clients do: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// grid rebuilds the run's topology for channel labeling.
func grid(k, n int, mesh bool) *topology.Grid {
	if mesh {
		return topology.NewMesh(k, n)
	}
	return topology.NewTorus(k, n)
}

func dirString(d topology.Dir) string {
	if d == topology.Plus {
		return "+"
	}
	return "-"
}
