// Package observatory is the simulator's live inspection surface: an
// embedded HTTP server exposing Prometheus-format metrics, a JSON state
// snapshot, a server-sent-event stream of run progress, a live channel
// heatmap and the net/http/pprof profiling endpoints.
//
// The simulation core stays single-threaded and deterministic; it only ever
// calls Publisher.PublishTick with deep copies of its state (core.TickEvent).
// The publisher stores the latest copy behind an atomic pointer, so HTTP
// handlers read without locks and never touch — let alone perturb — engine
// state. TestObservedRunIsBitIdentical pins that contract under -race.
package observatory

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/telemetry"
)

// Snapshot is the publisher's current view of the simulation: the most
// recent tick plus sweep-level aggregates. Handlers receive it as an
// immutable value; every field is a copy owned by the snapshot.
type Snapshot struct {
	// Tick is the latest engine publication (from whichever run published
	// last, when a sweep runs points in parallel).
	Tick core.TickEvent
	// CyclesPerSec is the simulated-cycle rate estimated across the last two
	// ticks of the same run (0 until two ticks have arrived).
	CyclesPerSec float64
	// SweepTotal and SweepDone track sweep progress (0 total for single runs).
	SweepTotal int
	SweepDone  int
	// Results accumulates completed sweep points in completion order.
	Results []core.Result
	// Phases is the engine phase profile, when a profiler is attached.
	Phases *telemetry.PhaseSnapshot
}

// Publisher receives state publications from the simulation side and serves
// them to concurrent readers. The write side (PublishTick, PublishPoint) is
// safe for concurrent use by sweep workers; the read side (Snapshot,
// WriteMetrics via Server) is lock-free on the hot path.
type Publisher struct {
	// now is the wall clock for rate estimation; injectable so the metrics
	// golden test is deterministic.
	now func() time.Time

	snap atomic.Pointer[Snapshot]

	mu       sync.Mutex // guards the write side: rate state, results, subscribers
	lastWall time.Time
	lastKey  string
	results  []core.Result
	subs     map[chan []byte]struct{}

	sweepTotal atomic.Int64
	sweepDone  atomic.Int64
	phases     atomic.Pointer[telemetry.PhaseProfiler]

	// dropped counts SSE frames discarded because a subscriber's buffer was
	// full — the observable cost of the drop-rather-than-stall policy.
	dropped atomic.Int64

	store atomic.Pointer[storeCountersBox]
}

// StoreCounters is the slice of a run store the metrics exposition needs:
// cache-hit/miss counters and the record count. runstore.Store implements it.
type StoreCounters interface {
	Hits() int64
	Misses() int64
	Len() int
}

// storeCountersBox wraps the interface so it fits an atomic.Pointer.
type storeCountersBox struct{ sc StoreCounters }

// NewPublisher returns a publisher on the real clock.
func NewPublisher() *Publisher {
	return &Publisher{now: time.Now, subs: make(map[chan []byte]struct{})}
}

// SetPhases attaches a phase profiler whose snapshot is exported on /metrics
// and /snapshot.
func (p *Publisher) SetPhases(pp *telemetry.PhaseProfiler) { p.phases.Store(pp) }

// SetSweepTotal declares how many sweep points will run, for progress
// reporting.
func (p *Publisher) SetSweepTotal(n int) { p.sweepTotal.Store(int64(n)) }

// SetStore attaches a run store whose cache counters are exported on
// /metrics (wormsim_runstore_hits_total and friends).
func (p *Publisher) SetStore(sc StoreCounters) { p.store.Store(&storeCountersBox{sc}) }

// storeCounters returns the attached store, or nil.
func (p *Publisher) storeCounters() StoreCounters {
	if box := p.store.Load(); box != nil {
		return box.sc
	}
	return nil
}

// DroppedFrames reports SSE frames dropped because a subscriber was slow.
func (p *Publisher) DroppedFrames() int64 { return p.dropped.Load() }

// runKey identifies a run so rate estimation resets across sweep points.
func runKey(ev core.TickEvent) string {
	return fmt.Sprintf("%s/%s/%v/%d/%d/%v/%g/%d",
		ev.Algorithm, ev.Pattern, ev.Switching, ev.K, ev.N, ev.Mesh, ev.OfferedLoad, ev.Seed)
}

// PublishTick installs ev as the current snapshot and notifies subscribers.
// It is the Config.OnTick hook; ev is already a deep copy owned by the
// publisher.
func (p *Publisher) PublishTick(ev core.TickEvent) {
	wall := p.now() // clock read stays outside the critical section
	p.mu.Lock()
	rate := 0.0
	if prev := p.snap.Load(); prev != nil {
		rate = prev.CyclesPerSec
		if key := runKey(ev); key == p.lastKey && ev.Cycle > prev.Tick.Cycle {
			if dt := wall.Sub(p.lastWall).Seconds(); dt > 0 {
				rate = float64(ev.Cycle-prev.Tick.Cycle) / dt
			}
		}
	}
	p.lastKey = runKey(ev)
	p.lastWall = wall
	s := &Snapshot{
		Tick:         ev,
		CyclesPerSec: rate,
		SweepTotal:   int(p.sweepTotal.Load()),
		SweepDone:    int(p.sweepDone.Load()),
		Results:      p.results,
	}
	if pp := p.phases.Load(); pp != nil {
		ps := pp.Snapshot()
		s.Phases = &ps
	}
	p.snap.Store(s)
	p.broadcastLocked(tickMessage(ev, rate))
	if ev.Forensics != nil {
		p.broadcastLocked(blameMessage(ev))
	}
	for _, e := range ev.Events {
		p.broadcastLocked(sseMessage("worm", e))
	}
	p.mu.Unlock()
}

// PublishPoint records a completed sweep point (the core.SweepObserved
// onDone hook; safe for concurrent workers).
func (p *Publisher) PublishPoint(i int, r core.Result) {
	done := p.sweepDone.Add(1)
	p.mu.Lock()
	r.TraceEvents = nil // trace rings can be large; the stream reports aggregates
	p.results = append(p.results, r)
	// Refresh the snapshot's sweep fields even between ticks.
	if prev := p.snap.Load(); prev != nil {
		s := *prev
		s.SweepTotal = int(p.sweepTotal.Load())
		s.SweepDone = int(done)
		s.Results = p.results
		p.snap.Store(&s)
	}
	p.broadcastLocked(sseMessage("point", struct {
		Index int         `json:"index"`
		Done  int64       `json:"done"`
		Total int64       `json:"total"`
		Point core.Result `json:"point"`
	}{i, done, p.sweepTotal.Load(), r}))
	p.mu.Unlock()
}

// Snapshot returns the current state, or nil before the first publication.
func (p *Publisher) Snapshot() *Snapshot { return p.snap.Load() }

// Subscribe registers an SSE consumer. The returned channel carries
// ready-to-send SSE frames; it is buffered and the publisher drops frames
// rather than block, so a slow client can never stall a publication. cancel
// unregisters and closes the channel.
func (p *Publisher) Subscribe() (frames <-chan []byte, cancel func()) {
	ch := make(chan []byte, 64)
	p.mu.Lock()
	p.subs[ch] = struct{}{}
	p.mu.Unlock()
	return ch, func() {
		p.mu.Lock()
		if _, ok := p.subs[ch]; ok {
			delete(p.subs, ch)
			close(ch)
		}
		p.mu.Unlock()
	}
}

// broadcastLocked fans a frame out to every subscriber, dropping it for any
// whose buffer is full. Callers hold p.mu.
func (p *Publisher) broadcastLocked(frame []byte) {
	for ch := range p.subs { //lint:allow simdeterminism (fan-out; per-subscriber delivery stays FIFO via the channel)
		select {
		case ch <- frame:
		default: // slow client: drop rather than stall the simulation side
			p.dropped.Add(1)
		}
	}
}

// sseMessage formats one server-sent event with an event name and JSON data.
func sseMessage(event string, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + event + "\ndata: " + string(data) + "\n\n")
}

// blameMessage is the SSE frame for the forensics view of one tick: blame
// and attribution totals plus the current top root channels. Clients wanting
// the full anatomy (histograms, per-channel blame vector) poll /blame.
func blameMessage(ev core.TickEvent) []byte {
	f := ev.Forensics
	return sseMessage("blame", struct {
		Cycle      int64            `json:"cycle"`
		Samples    int64            `json:"samples"`
		Observed   int64            `json:"observed"`
		Attributed float64          `json:"attributedFraction"`
		Trees      int64            `json:"trees"`
		WaitCycles int64            `json:"waitCycles"`
		TopRoots   []forensics.Root `json:"topRoots,omitempty"`
	}{ev.Cycle, f.Samples, f.BlockedObserved, f.AttributedFraction(),
		f.Trees, f.WaitCycles, f.TopRoots(4)})
}

// tickMessage is the SSE frame for one engine tick: a compact progress
// summary rather than the full state (clients wanting everything poll
// /snapshot).
func tickMessage(ev core.TickEvent, rate float64) []byte {
	t := ev.Counters
	return sseMessage("tick", struct {
		Algorithm   string  `json:"algorithm"`
		Pattern     string  `json:"pattern"`
		OfferedLoad float64 `json:"load"`
		Cycle       int64   `json:"cycle"`
		InFlight    int     `json:"inflight"`
		Delivered   int64   `json:"delivered"`
		Dropped     int64   `json:"dropped"`
		FlitMoves   int64   `json:"flitMoves"`
		Rate        float64 `json:"cyclesPerSec"`
		Final       bool    `json:"final"`
	}{ev.Algorithm, ev.Pattern, ev.OfferedLoad, ev.Cycle, ev.InFlight,
		t.Delivered, t.Dropped, t.FlitMoves, rate, ev.Final})
}
