package observatory

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wormsim/internal/core"
	"wormsim/internal/runstore"
)

// apiConfig is a small deterministic point for API tests; alg varies the
// algorithm while everything else stays aligned (same PairKey).
func apiConfig(alg string, load float64) core.Config {
	return core.Config{
		K: 4, N: 2, Algorithm: alg, Pattern: "uniform", OfferedLoad: load,
		Seed: 7, WarmupCycles: 200, SampleCycles: 100, GapCycles: 50,
		MinSamples: 2, MaxSamples: 2,
	}
}

// newTestAPI builds a server over a fresh store in a temp dir.
func newTestAPI(t *testing.T) (*Server, *runstore.Store, string) {
	t.Helper()
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	api := NewAPI(store, nil, 2)
	t.Cleanup(api.Close)
	srv, err := Listen("127.0.0.1:0", testPublisher(), api)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store, "http://" + srv.Addr()
}

func postJSON(t *testing.T, url string, v any) (int, string) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.String()
}

// waitDone polls GET /api/runs/{hash} until the run settles into the store.
func waitDone(t *testing.T, base, hash string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, base+"/api/runs/"+hash)
		if code == 200 && strings.Contains(body, `"state": "done"`) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never reached done", hash)
}

// TestAPISubmitPollCompare walks the documented submit → poll → compare
// loop: a cold submission queues and simulates, the identical resubmission
// answers from the store with a bit-identical Result, and the two
// algorithms' points align on /api/compare.
func TestAPISubmitPollCompare(t *testing.T) {
	_, store, base := newTestAPI(t)

	cfg := apiConfig("nbc", 0.3)
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hash := cfg.Hash()

	code, body := postJSON(t, base+"/api/runs", cfg)
	if code != http.StatusAccepted {
		t.Fatalf("cold submit: code %d body %.200s", code, body)
	}
	var st runStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hash != hash || (st.State != "queued" && st.State != "running") {
		t.Fatalf("cold submit status: %+v", st)
	}
	waitDone(t, base, hash)

	// Warm resubmission: instant, cached, bit-identical.
	code, body = postJSON(t, base+"/api/runs", cfg)
	if code != http.StatusOK {
		t.Fatalf("warm submit: code %d body %.200s", code, body)
	}
	var warm runStatus
	if err := json.Unmarshal([]byte(body), &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.State != "done" || warm.Result == nil {
		t.Fatalf("warm submit status: %+v", warm)
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(warm.Result)
	if !bytes.Equal(wj, gj) {
		t.Errorf("cached result not bit-identical to direct run:\nwant %s\ngot  %s", wj, gj)
	}
	if store.Hits() == 0 {
		t.Error("warm submission did not count a store hit")
	}

	// Second algorithm at the same point, then compare.
	other := apiConfig("ecube", 0.3)
	if code, _ := postJSON(t, base+"/api/runs", other); code != http.StatusAccepted {
		t.Fatalf("second submit: code %d", code)
	}
	waitDone(t, base, other.Hash())

	code, body = get(t, base+"/api/runs")
	if code != 200 || !strings.Contains(body, hash) || !strings.Contains(body, other.Hash()) {
		t.Errorf("listing: code %d body %.200s", code, body)
	}

	code, body = get(t, base+"/api/compare?a=nbc&b=ecube")
	if code != 200 {
		t.Fatalf("compare: code %d", code)
	}
	var cmp comparison
	if err := json.Unmarshal([]byte(body), &cmp); err != nil {
		t.Fatal(err)
	}
	if len(cmp.Points) != 1 || cmp.AOnly != 0 || cmp.BOnly != 0 {
		t.Fatalf("compare points: %+v", cmp)
	}
	p := cmp.Points[0]
	if p.OfferedLoad != 0.3 || p.A.Hash != hash || p.B.Hash != other.Hash() {
		t.Errorf("aligned point: %+v", p)
	}
	if p.A.AvgLatency != want.AvgLatency {
		t.Errorf("compare latency %v, direct run %v", p.A.AvgLatency, want.AvgLatency)
	}

	if _, body := get(t, base+"/compare.svg?a=nbc&b=ecube"); !strings.Contains(body, "nbc") || !strings.Contains(body, "ecube") {
		t.Errorf("compare svg: %.200q", body)
	}
}

// TestAPICompareGolden pins the full query surface byte-for-byte: identical
// stores must serve identical /api/compare JSON and /compare.svg documents.
func TestAPICompareGolden(t *testing.T) {
	_, store, base := newTestAPI(t)
	for _, alg := range []string{"nbc", "ecube"} {
		for _, load := range []float64{0.2, 0.4, 0.6} {
			cfg := apiConfig(alg, load)
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Store(cfg.Hash(), cfg.Canonical(), res); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, g := range []struct{ url, file string }{
		{"/api/compare?a=nbc&b=ecube", "compare.json.golden"},
		{"/compare.svg?a=nbc&b=ecube", "compare.svg.golden"},
	} {
		code, body := get(t, base+g.url)
		if code != 200 {
			t.Fatalf("%s: code %d", g.url, code)
		}
		path := filepath.Join("testdata", g.file)
		if *update {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create it)", err)
		}
		if body != string(want) {
			t.Errorf("%s drifted from %s — intentional? regenerate with -update", g.url, path)
		}
	}
}

// TestAPIWithoutStore: every API endpoint answers 503 when no store is
// attached, rather than panicking on a nil API.
func TestAPIWithoutStore(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", testPublisher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/api/runs", "/api/runs/abc", "/api/compare?a=x&b=y", "/compare.svg?a=x&b=y"} {
		if code, _ := get(t, base+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s without store: code %d, want 503", path, code)
		}
	}
}

func TestAPIErrors(t *testing.T) {
	_, _, base := newTestAPI(t)
	resp, err := http.Post(base+"/api/runs", "application/json", strings.NewReader(`{"NoSuchField": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: code %d, want 400", resp.StatusCode)
	}
	if code, _ := get(t, base+"/api/runs/"+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("unknown hash: code %d, want 404", code)
	}
	if code, _ := get(t, base+"/api/compare"); code != http.StatusBadRequest {
		t.Errorf("compare without params: code %d, want 400", code)
	}
	// An invalid config fails asynchronously and frees the slot for
	// resubmission instead of wedging as pending forever.
	bad := apiConfig("nosuchalg", 0.3)
	if code, _ := postJSON(t, base+"/api/runs", bad); code != http.StatusAccepted {
		t.Fatalf("bad config submit not accepted")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := get(t, base+"/api/runs/"+bad.Hash()); code == http.StatusNotFound {
			break // failed runs are forgotten, not stored
		}
		if time.Now().After(deadline) {
			t.Fatal("failed run still pending")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAPIRunEvents: the per-run SSE feed streams status transitions and
// settles with a done frame carrying the Result.
func TestAPIRunEvents(t *testing.T) {
	_, _, base := newTestAPI(t)
	cfg := apiConfig("nbc", 0.25)
	if code, _ := postJSON(t, base+"/api/runs", cfg); code != http.StatusAccepted {
		t.Fatal("submit not accepted")
	}
	resp, err := http.Get(base + "/api/runs/" + cfg.Hash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // reads until the run settles and the stream closes
	body := buf.String()
	if !strings.Contains(body, "event: status") || !strings.Contains(body, `"state":"done"`) {
		t.Errorf("event stream: %.300q", body)
	}
	// A settled run replays a single cached done frame.
	resp2, err := http.Get(base + "/api/runs/" + cfg.Hash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf.Reset()
	buf.ReadFrom(resp2.Body) //nolint:errcheck
	if !strings.Contains(buf.String(), `"cached":true`) {
		t.Errorf("replayed stream: %.300q", buf.String())
	}
}
