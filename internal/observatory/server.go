package observatory

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"wormsim/internal/viz"
)

// Server is the observatory's HTTP front end. It serves on its own
// goroutines; the simulation never blocks on it (all shared state flows
// through the Publisher's atomic snapshot and the drop-on-full SSE hub).
type Server struct {
	pub *Publisher
	api *API
	ln  net.Listener
	srv *http.Server
}

// Listen starts serving pub on addr (e.g. ":8080", or "127.0.0.1:0" to let
// the kernel pick a test port). api may be nil — the /api/* and
// /compare.svg endpoints then answer 503 until a run store is attached
// (start the CLI with -store DIR). It also enables the runtime's block and
// mutex profiles — the cost is only paid when an observatory is actually
// attached.
func Listen(addr string, pub *Publisher, api *API) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("observatory: %w", err)
	}
	runtime.SetBlockProfileRate(1000)
	runtime.SetMutexProfileFraction(100)
	s := &Server{pub: pub, api: api, ln: ln}
	s.srv = &http.Server{Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all handler goroutines.
func (s *Server) Close() error {
	runtime.SetBlockProfileRate(0)
	runtime.SetMutexProfileFraction(0)
	return s.srv.Close()
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/heatmap", s.handleHeatmapPage)
	mux.HandleFunc("/heatmap.svg", s.handleHeatmapSVG)
	mux.HandleFunc("/blame", s.handleBlame)
	mux.HandleFunc("/blame.svg", s.handleBlameSVG)
	mux.HandleFunc("/api/runs", s.withAPI(func(w http.ResponseWriter, r *http.Request) { s.api.handleRuns(w, r) }))
	mux.HandleFunc("/api/runs/", s.withAPI(func(w http.ResponseWriter, r *http.Request) { s.api.handleRun(w, r) }))
	mux.HandleFunc("/api/compare", s.withAPI(func(w http.ResponseWriter, r *http.Request) { s.api.handleCompare(w, r) }))
	mux.HandleFunc("/compare.svg", s.withAPI(func(w http.ResponseWriter, r *http.Request) { s.api.handleCompareSVG(w, r) }))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// withAPI gates a handler on a run store being attached.
func (s *Server) withAPI(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.api == nil {
			w.Header().Set("Content-Type", "application/json")
			http.Error(w, `{"error":"no run store attached (start with -store DIR)"}`, http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	status := "waiting for first tick"
	if snap := s.pub.Snapshot(); snap != nil {
		ev := snap.Tick
		status = fmt.Sprintf("%s %s rho=%.2f — cycle %d, %d worms in flight",
			ev.Algorithm, ev.Pattern, ev.OfferedLoad, ev.Cycle, ev.InFlight)
		if snap.SweepTotal > 0 {
			status += fmt.Sprintf(" — sweep %d/%d points done", snap.SweepDone, snap.SweepTotal)
		}
	}
	fmt.Fprintf(w, `<!doctype html><meta charset="utf-8"><title>wormsim observatory</title>
<body style="font-family:system-ui,sans-serif;background:#fcfcfb;color:#0b0b0b;margin:2rem">
<h1 style="font-size:1.2rem">wormsim observatory</h1>
<p style="color:#52514e">%s</p>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/snapshot">/snapshot</a> — full state as JSON</li>
<li><a href="/events">/events</a> — SSE stream (ticks, sweep points, sampled worm events)</li>
<li><a href="/heatmap">/heatmap</a> — live channel-utilization heatmap</li>
<li><a href="/blame">/blame</a> — congestion forensics: blame summary, top root channels, latency anatomy (needs -forensics)</li>
<li><a href="/blame.svg">/blame.svg</a> — blame-mass heatmap, congestion-tree roots ringed</li>
<li><a href="/api/runs">/api/runs</a> — run store: GET lists recorded runs, POST a JSON config to submit one</li>
<li><a href="/api/compare">/api/compare?a=ALG&amp;b=ALG</a> — aligned A-vs-B curves from the store</li>
<li><a href="/compare.svg">/compare.svg?a=ALG&amp;b=ALG</a> — the comparison as an SVG overlay plot</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — CPU, heap, block and mutex profiles</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
</ul></body>
`, status)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.pub.WriteMetrics(w) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := s.pub.Snapshot()
	if snap == nil {
		http.Error(w, `{"error":"no tick published yet"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(snap) //nolint:errcheck
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	frames, cancel := s.pub.Subscribe()
	defer cancel()
	// Open with the current state so late joiners see something immediately.
	if snap := s.pub.Snapshot(); snap != nil {
		w.Write(tickMessage(snap.Tick, snap.CyclesPerSec)) //nolint:errcheck
	}
	fl.Flush()
	for {
		select {
		case frame, ok := <-frames:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// blameRoot is one labeled entry of /blame's top-roots table: the root
// channel's topology coordinates plus the node it feeds (where the contended
// buffers physically sit).
type blameRoot struct {
	Ch    int     `json:"ch"`
	Node  int     `json:"node"`
	Dim   int     `json:"dim"`
	Dir   string  `json:"dir"`
	Feeds int     `json:"feeds"`
	Blame int64   `json:"blame"`
	Roots int64   `json:"roots"`
	Share float64 `json:"share"`
}

func (s *Server) handleBlame(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.pub.Snapshot()
	if snap == nil || snap.Tick.Forensics == nil {
		http.Error(w, `{"error":"no forensics summary yet (run with -forensics)"}`, http.StatusServiceUnavailable)
		return
	}
	ev := snap.Tick
	f := ev.Forensics
	g := grid(ev.K, ev.N, ev.Mesh)
	roots := []blameRoot{}
	for _, r := range f.TopRoots(8) {
		node, dim, dir := g.ChannelInfo(r.Ch)
		roots = append(roots, blameRoot{
			Ch: r.Ch, Node: node, Dim: dim, Dir: dirString(dir),
			Feeds: g.Neighbor(node, dim, dir),
			Blame: r.Blame, Roots: r.Roots, Share: r.Share,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(struct { //nolint:errcheck
		Algorithm string      `json:"algorithm"`
		Pattern   string      `json:"pattern"`
		Load      float64     `json:"load"`
		Cycle     int64       `json:"cycle"`
		TopRoots  []blameRoot `json:"topRoots"`
		Summary   any         `json:"summary"`
	}{ev.Algorithm, ev.Pattern, ev.OfferedLoad, ev.Cycle, roots, f})
}

func (s *Server) handleBlameSVG(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "image/svg+xml")
	snap := s.pub.Snapshot()
	if snap == nil || snap.Tick.Forensics == nil || snap.Tick.K < 1 || snap.Tick.N < 1 {
		fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="360" height="48"><text x="16" y="28" font-family="system-ui,sans-serif" font-size="13" fill="#52514e">no forensics summary yet (run with -forensics)</text></svg>`)
		return
	}
	ev := snap.Tick
	f := ev.Forensics
	top := f.TopRoots(4)
	rootChs := make([]int, len(top))
	for i, r := range top {
		rootChs[i] = r.Ch
	}
	title := fmt.Sprintf("%s %s rho=%.2f — blame through cycle %d (every %d)",
		ev.Algorithm, ev.Pattern, ev.OfferedLoad, ev.Cycle, f.SampleEvery)
	fmt.Fprint(w, viz.BlameSVG(grid(ev.K, ev.N, ev.Mesh), f.BlameByChannel, rootChs, title))
}

func (s *Server) handleHeatmapPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>wormsim heatmap</title>
<body style="font-family:system-ui,sans-serif;background:#fcfcfb;color:#0b0b0b;margin:2rem">
<p style="color:#52514e"><a href="/">observatory</a> — refreshes every 2s; hover a cell for its flit count</p>
<img src="/heatmap.svg" alt="per-node channel traffic heatmap">
</body>
`)
}

func (s *Server) handleHeatmapSVG(w http.ResponseWriter, _ *http.Request) {
	snap := s.pub.Snapshot()
	w.Header().Set("Content-Type", "image/svg+xml")
	// Zero-cycle or otherwise empty snapshots (no tick yet, a degenerate
	// topology, or an engine that published before moving any flit) get a
	// valid placeholder document, never a malformed grid.
	if snap == nil || snap.Tick.K < 1 || snap.Tick.N < 1 || len(snap.Tick.ChannelFlits) == 0 {
		fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="320" height="48"><text x="16" y="28" font-family="system-ui,sans-serif" font-size="13" fill="#52514e">waiting for first tick</text></svg>`)
		return
	}
	ev := snap.Tick
	title := fmt.Sprintf("%s %s rho=%.2f — cycle %d", ev.Algorithm, ev.Pattern, ev.OfferedLoad, ev.Cycle)
	fmt.Fprint(w, viz.HeatmapSVG(grid(ev.K, ev.N, ev.Mesh), ev.ChannelFlits, title))
}
