package observatory

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wormsim/internal/core"
	"wormsim/internal/network"
	"wormsim/internal/routing"
	"wormsim/internal/telemetry"
	"wormsim/internal/topology"
	"wormsim/internal/traffic"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	pub := testPublisher()
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before the first tick: index up, snapshot unavailable, heatmap empty.
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d, body %.80q", code, body)
	}
	if code, _ := get(t, base+"/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("snapshot before tick: code %d, want 503", code)
	}
	if _, body := get(t, base+"/heatmap.svg"); !strings.Contains(body, "waiting for first tick") {
		t.Errorf("heatmap before tick: %.120q", body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: code %d, want 404", code)
	}

	cfg := goldenConfig()
	cfg.OnTick = pub.PublishTick
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, base+"/snapshot")
	if code != 200 {
		t.Fatalf("snapshot: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if !snap.Tick.Final || snap.Tick.Algorithm != "nbc" || snap.Tick.Cycle == 0 {
		t.Errorf("snapshot tick: %+v", snap.Tick)
	}
	if snap.Tick.Counters.Delivered != res.Delivered {
		t.Errorf("snapshot delivered %d, run says %d", snap.Tick.Counters.Delivered, res.Delivered)
	}

	if _, body := get(t, base+"/metrics"); !strings.Contains(body, "wormsim_cycles_total") {
		t.Errorf("metrics: %.120q", body)
	}
	if _, body := get(t, base+"/heatmap.svg"); !strings.Contains(body, "<svg ") || !strings.Contains(body, "flits</title>") {
		t.Errorf("heatmap svg: %.120q", body)
	}
	if _, body := get(t, base+"/heatmap"); !strings.Contains(body, "/heatmap.svg") {
		t.Errorf("heatmap page: %.120q", body)
	}
	if _, body := get(t, base+"/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof: %.120q", body)
	}
	if _, body := get(t, base+"/debug/vars"); !strings.Contains(body, "memstats") {
		t.Errorf("expvar: %.120q", body)
	}
}

func TestSSEStream(t *testing.T) {
	pub := testPublisher()
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Publish one tick, then connect: the handler replays the current state
	// as its opening frame.
	cfg := goldenConfig()
	cfg.OnTick = pub.PublishTick
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+srv.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frame := make([]byte, 4096)
	n, err := resp.Body.Read(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := string(frame[:n])
	if !strings.Contains(got, "event: tick") || !strings.Contains(got, `"final":true`) {
		t.Errorf("opening frame: %q", got)
	}
}

func TestSubscribeBroadcast(t *testing.T) {
	pub := testPublisher()
	frames, cancel := pub.Subscribe()
	ev := core.TickEvent{Algorithm: "ecube", Pattern: "uniform", K: 4, N: 2, Cycle: 100,
		Events: []telemetry.Event{{Cycle: 99, Msg: 1, Type: telemetry.EvInject}}}
	pub.PublishTick(ev)
	tick := string(<-frames)
	if !strings.Contains(tick, "event: tick") || !strings.Contains(tick, `"cycle":100`) {
		t.Errorf("tick frame: %q", tick)
	}
	worm := string(<-frames)
	if !strings.Contains(worm, "event: worm") {
		t.Errorf("worm frame: %q", worm)
	}
	pub.PublishPoint(2, core.Result{Algorithm: "ecube"})
	point := string(<-frames)
	if !strings.Contains(point, "event: point") || !strings.Contains(point, `"index":2`) {
		t.Errorf("point frame: %q", point)
	}
	cancel()
	if _, ok := <-frames; ok {
		t.Error("channel not closed after cancel")
	}
	// Unsubscribed publishers drop frames rather than block.
	pub.PublishTick(ev)
}

func TestSlowSubscriberNeverBlocks(t *testing.T) {
	pub := testPublisher()
	_, cancel := pub.Subscribe() // never read
	defer cancel()
	ev := core.TickEvent{Algorithm: "ecube", K: 4, N: 2}
	for i := 0; i < 500; i++ {
		ev.Cycle = int64(i)
		pub.PublishTick(ev) // must not deadlock once the buffer fills
	}
}

// TestObservedRunIsBitIdentical is the determinism acceptance test: a sweep
// with the observatory attached and clients hammering every endpoint must
// produce results bit-identical to the same sweep with no observer. Run
// under -race this also proves the publication path is data-race free.
func TestObservedRunIsBitIdentical(t *testing.T) {
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", Seed: 11,
		WarmupCycles: 300, SampleCycles: 150, GapCycles: 50,
		MinSamples: 2, MaxSamples: 3,
		Telemetry: &telemetry.Options{Metrics: true, Trace: true, TraceCap: 128},
	}
	loads := []float64{0.2, 0.5}
	base, err := core.SweepN(cfg, loads, 2)
	if err != nil {
		t.Fatal(err)
	}

	obs := cfg
	obs.TickCycles = 50
	pub := NewPublisher()
	obs.OnTick = pub.PublishTick
	pp := telemetry.NewPhaseProfiler()
	obs.PhaseProf = pp
	pub.SetPhases(pp)
	pub.SetSweepTotal(len(loads))
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	baseURL := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/snapshot", "/heatmap.svg"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(baseURL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(path)
	}
	ctx, cancelSSE := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/events", nil)
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()

	got, err := core.SweepObserved(obs, loads, 2, pub.PublishPoint)
	close(stop)
	cancelSSE()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(base, got) {
		t.Errorf("observed sweep diverged from bare sweep:\nbase %+v\ngot  %+v", base, got)
	}
	bj, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bj, gj) {
		t.Error("observed sweep JSON not byte-identical to bare sweep")
	}
	if snap := pub.Snapshot(); snap == nil || snap.SweepDone != len(loads) || len(snap.Results) != len(loads) {
		t.Errorf("publisher missed sweep completions: %+v", snap)
	}
}

// BenchmarkObservatoryOverhead measures the engine cost of live publication
// on a 16x16 torus: "off" is the bare engine, "publish" adds a tick
// publication every 256 cycles (the full deep-copy TickEvent path), and
// "served" additionally has an HTTP server listening with no clients — the
// configuration the <5% idle-overhead budget applies to.
func BenchmarkObservatoryOverhead(b *testing.B) {
	const tickEvery = 256
	run := func(b *testing.B, pub *Publisher) {
		g := topology.NewTorus(16, 2)
		alg, err := routing.Get("nbc")
		if err != nil {
			b.Fatal(err)
		}
		tel := telemetry.New(telemetry.Options{Metrics: true}, g.ChannelSlots(), alg.NumVCs(g))
		wl := traffic.NewBernoulli(g, traffic.NewUniform(g), 0.01, 1)
		n, err := network.New(network.Config{
			Grid: g, Algorithm: alg, Workload: wl, MsgLen: 16, CCLimit: 2, Seed: 1,
			Telemetry: tel,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := n.Step(); err != nil {
				b.Fatal(err)
			}
			if pub != nil && i%tickEvery == tickEvery-1 {
				pub.PublishTick(core.TickEvent{
					Algorithm: "nbc", Pattern: "uniform", Switching: core.Wormhole,
					K: 16, N: 2, OfferedLoad: 0.3, Seed: 1,
					Cycle: n.Now(), InFlight: n.InFlight(), Counters: n.Total(),
					Worms: n.WormStates(), ChannelFlits: n.ChannelFlitCounts(),
					Telemetry: tel.Summary(),
				})
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("publish", func(b *testing.B) { run(b, NewPublisher()) })
	b.Run("served", func(b *testing.B) {
		pub := NewPublisher()
		srv, err := Listen("127.0.0.1:0", pub, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		run(b, pub)
	})
}
