package observatory

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wormsim/internal/core"
)

// TestStalledSubscriberDropsFramesNotResults pins the backpressure
// contract: a stalled /events client (its handler goroutine stops draining
// the subscription channel, which is exactly what a never-reading
// subscriber is) loses frames — counted on the drop counter and exported on
// /metrics — while the simulation's Result stays bit-identical to a run
// with no observatory attached. Slow consumers cost themselves data, never
// the experiment.
func TestStalledSubscriberDropsFramesNotResults(t *testing.T) {
	cfg := goldenConfig()
	cfg.TickCycles = 5 // hundreds of frames, far beyond the 64-frame buffer
	bare, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pub := testPublisher()
	// A subscriber that never reads: its 64-frame buffer fills and every
	// further frame addressed to it must be dropped.
	_, cancel := pub.Subscribe()
	defer cancel()

	observed := cfg
	observed.OnTick = pub.PublishTick
	res, err := core.Run(observed)
	if err != nil {
		t.Fatal(err)
	}

	if pub.DroppedFrames() == 0 {
		t.Error("stalled subscriber dropped no frames — was the publication volume reduced?")
	}
	bj, _ := json.Marshal(bare)
	rj, _ := json.Marshal(res)
	if !bytes.Equal(bj, rj) {
		t.Errorf("result diverged under a stalled subscriber:\nbare     %s\nobserved %s", bj, rj)
	}

	var buf bytes.Buffer
	if err := pub.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "wormsim_sse_dropped_frames_total ") {
			if strings.TrimPrefix(line, "wormsim_sse_dropped_frames_total ") == "0" {
				t.Errorf("metrics report zero dropped frames: %q", line)
			}
			return
		}
	}
	t.Error("wormsim_sse_dropped_frames_total missing from /metrics")
}
