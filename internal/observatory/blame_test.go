package observatory

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"wormsim/internal/core"
	"wormsim/internal/forensics"
	"wormsim/internal/telemetry"
)

// goldenBlameConfig pushes the golden run hard enough that worms actually
// block, with every-cycle forensics so the blame ledger is exact and the
// golden bytes are a pure function of the config.
func goldenBlameConfig() core.Config {
	cfg := goldenConfig()
	cfg.OfferedLoad = 0.8
	cfg.Forensics = &forensics.Options{SampleEvery: 1}
	return cfg
}

func TestBlameEndpointsGolden(t *testing.T) {
	pub := testPublisher()
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cfg := goldenBlameConfig()
	cfg.OnTick = pub.PublishTick
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}

	code, gotJSON := get(t, base+"/blame")
	if code != 200 {
		t.Fatalf("/blame: code %d, body %.120q", code, gotJSON)
	}
	code, gotSVG := get(t, base+"/blame.svg")
	if code != 200 {
		t.Fatalf("/blame.svg: code %d", code)
	}

	for name, got := range map[string]string{"blame.golden.json": gotJSON, "blame.golden.svg": gotSVG} {
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create it)", err)
		}
		if string(want) != got {
			t.Errorf("%s drifted from golden (re-run with -update if intended)\ngot:\n%.400s", name, got)
		}
	}

	// Shape sanity beyond byte equality, so a bad regen cannot slip through.
	var resp struct {
		TopRoots []blameRoot        `json:"topRoots"`
		Summary  *forensics.Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(gotJSON), &resp); err != nil {
		t.Fatalf("/blame not JSON: %v", err)
	}
	if len(resp.TopRoots) == 0 || resp.Summary == nil || resp.Summary.BlockedObserved == 0 {
		t.Fatalf("blame response carries no attribution: %+v", resp)
	}
	if resp.Summary.Attributed == 0 || len(resp.Summary.Anatomy) == 0 {
		t.Errorf("summary missing attribution or anatomy: %+v", resp.Summary)
	}
	if !strings.Contains(gotSVG, "tree root") || !strings.Contains(gotSVG, "blamed worm-cycles") {
		t.Errorf("blame SVG missing ringed roots or blame cells:\n%.200s", gotSVG)
	}
}

func TestBlameBeforeForensics(t *testing.T) {
	pub := testPublisher()
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before any tick, and after a tick from a run without forensics, both
	// endpoints must answer with explicit "not available" states.
	check := func(stage string) {
		t.Helper()
		if code, _ := get(t, base+"/blame"); code != http.StatusServiceUnavailable {
			t.Errorf("%s: /blame code %d, want 503", stage, code)
		}
		if _, body := get(t, base+"/blame.svg"); !strings.Contains(body, "no forensics summary yet") {
			t.Errorf("%s: /blame.svg placeholder missing: %.120q", stage, body)
		}
	}
	check("before first tick")
	cfg := goldenConfig()
	cfg.OnTick = pub.PublishTick
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	check("forensics-less run")
}

func TestBlameSSEFrame(t *testing.T) {
	pub := testPublisher()
	frames, cancel := pub.Subscribe()
	defer cancel()
	pub.PublishTick(core.TickEvent{Algorithm: "nbc", K: 4, N: 2, Cycle: 50,
		Forensics: &forensics.Summary{
			SampleEvery: 1, Samples: 2, BlockedObserved: 10, Attributed: 10,
			Trees: 2, BlameByChannel: []int64{0, 0, 10}, RootsByChannel: []int64{0, 0, 2},
		}})
	tick := string(<-frames)
	if !strings.Contains(tick, "event: tick") {
		t.Fatalf("first frame not a tick: %q", tick)
	}
	blame := string(<-frames)
	for _, want := range []string{"event: blame", `"observed":10`, `"attributedFraction":1`, `"topRoots":[{"Ch":2`} {
		if !strings.Contains(blame, want) {
			t.Errorf("blame frame missing %q: %q", want, blame)
		}
	}
	// Ticks without a forensics summary must not emit a blame frame.
	pub.PublishTick(core.TickEvent{Algorithm: "nbc", K: 4, N: 2, Cycle: 60})
	if next := string(<-frames); !strings.Contains(next, "event: tick") {
		t.Errorf("expected plain tick, got %q", next)
	}
	select {
	case extra := <-frames:
		t.Errorf("unexpected frame after forensics-less tick: %q", extra)
	default:
	}
}

// TestForensicsRunIsBitIdentical is the forensics variant of the determinism
// acceptance test: a sweep with every-cycle forensics, the observatory
// attached, and clients hammering the blame endpoints must produce results
// bit-identical to the bare, forensics-less sweep — the Forensics summary is
// the only field allowed to differ. Under -race this also proves the blame
// publication path is data-race free.
func TestForensicsRunIsBitIdentical(t *testing.T) {
	cfg := core.Config{
		K: 4, N: 2, Algorithm: "nbc", Pattern: "uniform", Seed: 11,
		WarmupCycles: 300, SampleCycles: 150, GapCycles: 50,
		MinSamples: 2, MaxSamples: 3,
		Telemetry: &telemetry.Options{Metrics: true},
	}
	loads := []float64{0.3, 0.6}
	base, err := core.SweepN(cfg, loads, 2)
	if err != nil {
		t.Fatal(err)
	}

	obs := cfg
	obs.Forensics = &forensics.Options{SampleEvery: 1}
	obs.TickCycles = 50
	pub := NewPublisher()
	obs.OnTick = pub.PublishTick
	pub.SetSweepTotal(len(loads))
	srv, err := Listen("127.0.0.1:0", pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	baseURL := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/blame", "/blame.svg", "/metrics", "/snapshot"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(baseURL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}(path)
	}

	got, err := core.SweepObserved(obs, loads, 2, pub.PublishPoint)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	for i := range got {
		if got[i].Forensics == nil {
			t.Errorf("point %d missing its forensics summary", i)
		}
		got[i].Forensics = nil
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("forensics sweep diverged from bare sweep:\nbase %+v\ngot  %+v", base, got)
	}
	bj, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bj, gj) {
		t.Error("forensics sweep JSON not byte-identical to bare sweep")
	}
}
