package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDiscipline enforces "a memory location is either atomic or it is
// not": mixing sync/atomic operations with plain loads and stores on the
// same field is a data race the race detector only catches when both sides
// fire in one run. The pass flags, program-wide:
//
//   - any variable or field whose address is passed to a sync/atomic
//     function anywhere in the program, when it is also read, written, or
//     address-taken outside a sync/atomic call;
//   - any field or variable of a typed atomic (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], atomic.Value, ..., or an array of them) used as a
//     plain value: assigned over, copied, passed by value, or compared —
//     anything other than calling its methods or taking its address.
//
// The engine's shared accumulators (core.Scheduler bookkeeping, the
// observatory publisher's snapshot pointer, telemetry.PhaseProfiler's
// per-phase counters) are exactly the locations this protects. A
// deliberately unsynchronized read (a stats-only fast path) is annotated in
// place with //lint:allow atomicdiscipline and a reason.
type AtomicDiscipline struct{}

// NewAtomicDiscipline returns the pass.
func NewAtomicDiscipline() *AtomicDiscipline { return &AtomicDiscipline{} }

// Name returns "atomicdiscipline".
func (*AtomicDiscipline) Name() string { return "atomicdiscipline" }

// Doc describes the pass.
func (*AtomicDiscipline) Doc() string {
	return "forbid plain access to fields that are elsewhere accessed via sync/atomic or typed atomics"
}

// RunProgram collects the atomically-accessed variables across the whole
// program, then flags every undisciplined access.
func (a *AtomicDiscipline) RunProgram(prog *Program) []Finding {
	disciplined := make(map[*types.Var]bool)
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgCall(p, call) {
					return true
				}
				for _, arg := range call.Args {
					if v := addressedVar(p, arg); v != nil {
						disciplined[v] = true
					}
				}
				return true
			})
		}
	}

	var out []Finding
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			out = append(out, a.checkFile(p, f, disciplined)...)
		}
	}
	return out
}

// checkFile flags undisciplined accesses in one file.
func (a *AtomicDiscipline) checkFile(p *Package, f *ast.File, disciplined map[*types.Var]bool) []Finding {
	var out []Finding
	walkStack(f, func(n ast.Node, stack []ast.Node) {
		v := accessedVar(p, n, stack)
		if v == nil {
			return
		}
		e := n.(ast.Expr)
		if disciplined[v] {
			if !sanctionedAtomicUse(p, stack, e) {
				out = append(out, p.finding(a.Name(), n,
					"%s is accessed via sync/atomic elsewhere but plainly here; every access must go through sync/atomic", v.Name()))
			}
			return
		}
		if isTypedAtomic(v.Type()) && plainValueContext(stack, e) {
			out = append(out, p.finding(a.Name(), n,
				"typed atomic %s used as a plain value; call its methods (Load/Store/Add/...) instead of copying or assigning it", v.Name()))
		}
	})
	return out
}

// accessedVar resolves n to the variable it reads or writes: a selector
// x.f to its field, a bare identifier to its object. Identifiers that are
// the Sel of an enclosing selector are skipped so each access counts once,
// as are declaration-site and field-declaration identifiers.
func accessedVar(p *Package, n ast.Node, stack []ast.Node) *types.Var {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if len(stack) > 0 {
			if parent, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && parent.Sel == n {
				return nil
			}
		}
		if v, ok := p.Info.Uses[n].(*types.Var); ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// addressedVar resolves an `&x.f` or `&v` argument to the variable whose
// address is taken, or nil.
func addressedVar(p *Package, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(u.X).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
	case *ast.Ident:
		v, _ := p.Info.Uses[e].(*types.Var)
		return v
	}
	return nil
}

// isAtomicPkgCall reports whether call is sync/atomic.F(...).
func isAtomicPkgCall(p *Package, call *ast.CallExpr) bool {
	_, ok := pkgFuncCall(p, call, "sync/atomic")
	return ok
}

// sanctionedAtomicUse reports whether the access at e is `&e` passed
// directly as an argument of a sync/atomic call — the only blessed way to
// touch a disciplined plain-typed variable.
func sanctionedAtomicUse(p *Package, stack []ast.Node, e ast.Expr) bool {
	i := len(stack) - 1
	for ; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	if i < 1 {
		return false
	}
	u, ok := stack[i].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	for i--; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicPkgCall(p, call)
}

// isTypedAtomic reports whether t is a named type from sync/atomic
// (atomic.Int64, atomic.Pointer[T], ...) or an array of one.
func isTypedAtomic(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isTypedAtomic(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// plainValueContext reports whether the atomic-typed expression e is used
// as a plain value. Blessed contexts: receiver of a selector (method
// calls), operand of &, element access into an atomic array (recursively),
// and parentheses.
func plainValueContext(stack []ast.Node, e ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			e = parent
			continue
		case *ast.SelectorExpr:
			return parent.X != e // x.f.Load() is fine; y.(x.f) impossible
		case *ast.UnaryExpr:
			return parent.Op != token.AND
		case *ast.IndexExpr:
			if parent.X == e {
				e = parent
				continue
			}
			return true
		default:
			return true
		}
	}
	return true
}
