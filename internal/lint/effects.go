package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the purity pass's effect-inference layer: a per-function
// scanner that extracts local effect facts (see funcEffects), plus the
// standard-library classification tables those facts rest on. The purity
// pass (purity.go) lifts the local facts to whole-program judgements by
// propagating them over the cross-package call graph.

// effectClass orders the effect lattice: pure < read-only < impure. A pure
// function computes its result from its arguments alone; a read-only
// function additionally observes shared state (package-level vars, atomic
// loads) but never mutates or blocks; an impure function carries at least
// one impurity fact.
type effectClass int

const (
	effectPure effectClass = iota
	effectReadOnly
	effectImpure
)

// String renders the class as it appears in purity certificates.
func (c effectClass) String() string {
	switch c {
	case effectPure:
		return "pure"
	case effectReadOnly:
		return "read_only"
	default:
		return "impure"
	}
}

// Impurity source codes. Each names one way a function can stop being a
// pure function of its inputs; they key certificate exemptions and make
// findings greppable.
const (
	srcGlobalWrite = "global-write"        // assignment to a package-level var
	srcClock       = "wall-clock"          // time.Now/Since/Until/Sleep/timers
	srcRand        = "rand"                // math/rand, crypto/rand
	srcIO          = "io"                  // filesystem, network, process state
	srcMachine     = "machine-state"       // runtime.* queries and knobs
	srcAtomic      = "atomic-write"        // sync/atomic stores, adds, swaps
	srcMapOrder    = "map-order"           // map iteration order escaping
	srcSelect      = "select"              // select races its ready cases
	srcChan        = "chan"                // channel send/receive/close
	srcGoroutine   = "goroutine"           // go statement: scheduling order
	srcStdlib      = "unclassified-stdlib" // stdlib call outside the tables
)

// impurity is one local impurity fact: where, what kind, and a
// human-readable detail.
type impurity struct {
	pos    token.Position
	node   ast.Node
	source string
	detail string
}

// funcEffects holds one declared function's intraprocedural facts.
type funcEffects struct {
	impurities []impurity
	// readsShared is set when the body reads a package-level var (its own
	// package's or an imported one's) — the read-only tier of the lattice.
	readsShared bool
}

// localClass is the function's own effect class, before call-graph
// propagation.
func (fe *funcEffects) localClass() effectClass {
	switch {
	case len(fe.impurities) > 0:
		return effectImpure
	case fe.readsShared:
		return effectReadOnly
	default:
		return effectPure
	}
}

// stdlibPurePkgs lists standard-library packages whose exported functions
// are pure or argument-mediated: they compute over their operands and write
// only through writers the caller passed in. A call into one of these is
// never an impurity by itself (specific exceptions live in
// stdlibFuncClass).
var stdlibPurePkgs = map[string]bool{
	"bufio": true, "bytes": true, "cmp": true, "container/heap": true,
	"container/list": true, "container/ring": true, "context": true,
	"crypto/md5": true, "crypto/sha1": true, "crypto/sha256": true,
	"crypto/sha512": true, "encoding": true, "encoding/base64": true,
	"encoding/binary": true, "encoding/csv": true, "encoding/hex": true,
	"encoding/json": true, "errors": true, "fmt": true, "hash": true,
	"hash/adler32": true, "hash/crc32": true, "hash/crc64": true,
	"hash/fnv": true, "io": true, "maps": true, "math": true,
	"math/big": true, "math/bits": true, "math/cmplx": true, "path": true,
	"path/filepath": true, "regexp": true, "regexp/syntax": true,
	"slices": true, "sort": true, "strconv": true, "strings": true,
	"time": true, "unicode": true, "unicode/utf16": true,
	"unicode/utf8": true,
}

// stdlibImpurePkgs maps standard-library packages whose calls are impure by
// nature to the impurity source they carry.
var stdlibImpurePkgs = map[string]string{
	"crypto/rand":  srcRand,
	"database/sql": srcIO, "flag": srcIO, "io/fs": srcIO,
	"io/ioutil": srcIO, "log": srcIO, "log/slog": srcIO,
	"math/rand": srcRand, "math/rand/v2": srcRand,
	"net": srcIO, "net/http": srcIO, "net/rpc": srcIO, "net/url": srcIO,
	"os": srcIO, "os/exec": srcIO, "os/signal": srcIO, "os/user": srcIO,
	"runtime": srcMachine, "runtime/debug": srcMachine,
	"runtime/metrics": srcMachine, "runtime/pprof": srcMachine,
	"runtime/trace": srcMachine,
	"syscall":       srcIO,
}

// funcClass is a per-function override of the package-level tables.
type funcClass struct {
	class  effectClass
	source string
	detail string
}

// stdlibFuncClass overrides the package tables for specific functions,
// keyed "pkg.Func" for package functions and "pkg.Type.Method" for methods.
// These are the functions whose effect disagrees with their package: the
// clock reads inside otherwise-pure time, the stdout printers inside fmt,
// map-order iterators inside maps, context's timer constructors, and the
// filesystem walkers inside path/filepath.
var stdlibFuncClass = map[string]funcClass{
	"time.Now":       {effectImpure, srcClock, "time.Now reads the wall clock"},
	"time.Since":     {effectImpure, srcClock, "time.Since reads the wall clock"},
	"time.Until":     {effectImpure, srcClock, "time.Until reads the wall clock"},
	"time.Sleep":     {effectImpure, srcClock, "time.Sleep blocks on the wall clock"},
	"time.After":     {effectImpure, srcClock, "time.After starts a wall-clock timer"},
	"time.Tick":      {effectImpure, srcClock, "time.Tick starts a wall-clock ticker"},
	"time.NewTimer":  {effectImpure, srcClock, "time.NewTimer starts a wall-clock timer"},
	"time.NewTicker": {effectImpure, srcClock, "time.NewTicker starts a wall-clock ticker"},

	"fmt.Print":   {effectImpure, srcIO, "fmt.Print writes to stdout"},
	"fmt.Printf":  {effectImpure, srcIO, "fmt.Printf writes to stdout"},
	"fmt.Println": {effectImpure, srcIO, "fmt.Println writes to stdout"},
	"fmt.Scan":    {effectImpure, srcIO, "fmt.Scan reads stdin"},
	"fmt.Scanf":   {effectImpure, srcIO, "fmt.Scanf reads stdin"},
	"fmt.Scanln":  {effectImpure, srcIO, "fmt.Scanln reads stdin"},

	"maps.Keys":   {effectImpure, srcMapOrder, "maps.Keys yields keys in randomized order"},
	"maps.Values": {effectImpure, srcMapOrder, "maps.Values yields values in randomized order"},
	"maps.All":    {effectImpure, srcMapOrder, "maps.All iterates in randomized order"},

	"context.WithTimeout":  {effectImpure, srcClock, "context.WithTimeout arms a wall-clock deadline"},
	"context.WithDeadline": {effectImpure, srcClock, "context.WithDeadline arms a wall-clock deadline"},

	"path/filepath.Walk":         {effectImpure, srcIO, "filepath.Walk reads the filesystem"},
	"path/filepath.WalkDir":      {effectImpure, srcIO, "filepath.WalkDir reads the filesystem"},
	"path/filepath.Glob":         {effectImpure, srcIO, "filepath.Glob reads the filesystem"},
	"path/filepath.Abs":          {effectImpure, srcIO, "filepath.Abs reads the working directory"},
	"path/filepath.EvalSymlinks": {effectImpure, srcIO, "filepath.EvalSymlinks reads the filesystem"},
}

// classifyStdlibCall classifies a call to a function outside the module.
// Resolution order: the per-function override table, then the sync family's
// structural rules, then the package tables, and finally the conservative
// default — an unclassified stdlib call is an impurity, so a new dependency
// must be classified on purpose rather than slip through silently.
func classifyStdlibCall(fn *types.Func) funcClass {
	pkg := fn.Pkg()
	if pkg == nil {
		// Universe-scope methods (error.Error) compute on their receiver.
		return funcClass{class: effectPure}
	}
	path := pkg.Path()
	key := path + "." + fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
			key = path + "." + recv + "." + fn.Name()
		}
	}
	if fc, ok := stdlibFuncClass[key]; ok {
		return fc
	}

	switch path {
	case "sync/atomic":
		// Loads observe shared state; everything else mutates it.
		if strings.HasPrefix(fn.Name(), "Load") {
			return funcClass{class: effectReadOnly}
		}
		return funcClass{
			class:  effectImpure,
			source: srcAtomic,
			detail: "sync/atomic " + fn.Name() + " mutates shared state",
		}
	case "sync":
		// Mutexes, conditions and Once are synchronization, not data
		// effects: read-only. sync.Map is shared mutable state with
		// unordered iteration, so it gets the atomic rules.
		if recv == "Map" {
			switch fn.Name() {
			case "Load", "Len":
				return funcClass{class: effectReadOnly}
			case "Range":
				return funcClass{class: effectImpure, source: srcMapOrder,
					detail: "sync.Map.Range iterates in unspecified order"}
			}
			return funcClass{class: effectImpure, source: srcAtomic,
				detail: "sync.Map." + fn.Name() + " mutates shared state"}
		}
		return funcClass{class: effectReadOnly}
	}

	if src, ok := stdlibImpurePkgs[path]; ok {
		verb := "is impure"
		switch src {
		case srcIO:
			verb = "does I/O"
		case srcRand:
			verb = "draws nondeterministic randomness"
		case srcMachine:
			verb = "reads machine state"
		}
		return funcClass{class: effectImpure, source: src,
			detail: "call to " + displayKey(key) + " " + verb}
	}
	if stdlibPurePkgs[path] {
		return funcClass{class: effectPure}
	}
	return funcClass{class: effectImpure, source: srcStdlib,
		detail: "call to unclassified standard-library function " + displayKey(key) +
			" (classify it in the effect tables)"}
}

// displayKey shortens "path/filepath.Glob"-style keys to their last path
// element for diagnostics.
func displayKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// effectsIndex lazily computes the local effect facts of every declared
// function, shared between the purity pass and CertifyPurity so one Run
// scans each body exactly once.
func (prog *Program) effectsIndex() map[*types.Func]*funcEffects {
	if prog.effects != nil {
		return prog.effects
	}
	prog.effects = make(map[*types.Func]*funcEffects, len(prog.decls))
	modPrefix := prog.modulePrefix()
	for fn, fd := range prog.decls {
		prog.effects[fn] = scanEffects(prog, prog.declPkg[fn], fd, modPrefix)
	}
	return prog.effects
}

// scanEffects extracts one function's local effect facts. Calls to module
// functions are deliberately not facts: the call graph propagates their
// effects instead. Calls through plain function values (hook fields like
// Config.OnTick) have no static callee and produce no fact either — that
// boundary is policed by the hookguard/hookescape passes and stated in the
// certificate's assumptions.
func scanEffects(prog *Program, p *Package, fd *ast.FuncDecl, modPrefix string) *funcEffects {
	fe := &funcEffects{}
	if fd.Body == nil {
		return fe
	}
	addImp := func(n ast.Node, source, detail string) {
		fe.impurities = append(fe.impurities, impurity{
			pos:    p.Fset.Position(n.Pos()),
			node:   n,
			source: source,
			detail: detail,
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				break
			}
			for _, lhs := range n.Lhs {
				if v := pkgLevelTarget(p, lhs); v != nil {
					addImp(lhs, srcGlobalWrite, "write to package-level var "+varDisplay(v))
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelTarget(p, n.X); v != nil {
				addImp(n, srcGlobalWrite, "write to package-level var "+varDisplay(v))
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					addImp(n, srcMapOrder, "iteration over "+t.String()+" has randomized order")
				case *types.Chan:
					addImp(n, srcChan, "range over a channel synchronizes on scheduler state")
				}
			}
		case *ast.SendStmt:
			addImp(n, srcChan, "channel send synchronizes on scheduler state")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				addImp(n, srcChan, "channel receive synchronizes on scheduler state")
			}
		case *ast.SelectStmt:
			addImp(n, srcSelect, "select races its ready cases")
		case *ast.GoStmt:
			addImp(n, srcGoroutine, "go statement hands work to the scheduler")
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					addImp(n, srcChan, "close publishes to channel receivers")
				}
			}
			fn := calleeFunc(p, n)
			if fn == nil {
				break
			}
			if _, isModule := prog.decls[fn]; isModule {
				break // effects arrive via the call graph
			}
			if _, isModule := prog.decls[fn.Origin()]; isModule {
				break
			}
			if fn.Pkg() != nil {
				path := fn.Pkg().Path()
				if path == modPrefix || strings.HasPrefix(path, modPrefix+"/") {
					// A module function outside the loaded set (partial
					// load, or an interface method devirtualized by the
					// graph): not a stdlib fact.
					break
				}
			}
			switch fc := classifyStdlibCall(fn); fc.class {
			case effectImpure:
				addImp(n, fc.source, fc.detail)
			case effectReadOnly:
				fe.readsShared = true
			}
		case *ast.Ident:
			if v, ok := p.Info.Uses[n].(*types.Var); ok && isPkgLevelVar(v) {
				fe.readsShared = true
			}
		}
		return true
	})
	return fe
}

// calleeFunc resolves a call's static callee, or nil for calls through
// plain function values and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// pkgLevelTarget returns the package-level variable an assignment target
// ultimately writes to, or nil. It strips stars, indexes and field
// selections: registry["x"] = v and pkgVar.Field = v both mutate state that
// outlives the call.
func pkgLevelTarget(p *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// pkg.Var: the selector identifier is the var itself.
			if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevelVar(v) {
				return v
			}
			e = x.X
		case *ast.Ident:
			if v, ok := p.Info.Uses[x].(*types.Var); ok && isPkgLevelVar(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isPkgLevelVar reports whether v is declared at package scope (not a
// field, parameter or local).
func isPkgLevelVar(v *types.Var) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// varDisplay renders a package-level var for diagnostics.
func varDisplay(v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	return v.Pkg().Path() + "." + v.Name()
}
