package lint

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Baselines make a new pass adoptable on a repo with existing debt: record
// today's findings once (-writebaseline), gate only on findings NOT in the
// file (-baseline), and burn the file down over time. Entries are keyed by
// the canonical finding line with the path made repository-relative, so the
// file is stable across checkouts. Line numbers are included deliberately:
// moving a suppressed violation invalidates its entry, which keeps baselined
// debt from migrating silently.

// baselineKey is the canonical form of one finding: "file:line: [pass] msg"
// with file relative to root, forward slashes.
func baselineKey(f Finding, root string) string {
	file := f.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	g := f
	g.Pos.Filename = filepath.ToSlash(file)
	return g.String()
}

// WriteBaseline writes one canonical line per finding. Findings arrive
// sorted from Run, so the file is deterministic and diff-friendly.
func WriteBaseline(w io.Writer, findings []Finding, root string) error {
	var buf bytes.Buffer
	buf.WriteString("# wormlint baseline: known findings accepted as debt.\n")
	buf.WriteString("# Regenerate with wormlint -writebaseline; burn down over time.\n")
	for _, f := range findings {
		buf.WriteString(baselineKey(f, root))
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadBaseline loads the set of baselined finding keys from path.
func ReadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	keys := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	return keys, sc.Err()
}

// FilterBaseline drops findings whose canonical key is in the baseline,
// returning the survivors and how many were suppressed.
func FilterBaseline(findings []Finding, baseline map[string]bool, root string) ([]Finding, int) {
	if len(baseline) == 0 {
		return findings, 0
	}
	out := findings[:0:0]
	suppressed := 0
	for _, f := range findings {
		if baseline[baselineKey(f, root)] {
			suppressed++
			continue
		}
		out = append(out, f)
	}
	return out, suppressed
}
