package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the subset GitHub code scanning consumes: one run, one
// driver, a rule per pass, a result per finding. The shape is pinned by a
// golden test so the uploaded schema cannot drift silently.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. File paths are made
// relative to root with forward slashes (the repository-relative URIs code
// scanning expects); findings arrive sorted from Run, so output is
// deterministic.
func WriteSARIF(w io.Writer, findings []Finding, passes []Pass, root string) error {
	rules := make([]sarifRule, 0, len(passes))
	for _, p := range passes {
		rules = append(rules, sarifRule{
			ID:               p.Name(),
			ShortDescription: sarifMessage{Text: p.Doc()},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Pass,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "wormlint",
				InformationURI: "https://github.com/wormsim/wormsim",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
