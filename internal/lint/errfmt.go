package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrFmt enforces the repo's error conventions on errors.New and
// fmt.Errorf:
//
//   - error strings start lower-case (identifiers and acronyms like
//     "Intn" or "JSON" are fine) and do not end with punctuation or a
//     newline — they get embedded mid-sentence by callers;
//   - an error operand to fmt.Errorf is wrapped with %w, not flattened
//     with %v or %s, so callers can errors.Is/As/Unwrap through it. Where
//     flattening is intentional (to cut an Unwrap chain at an API
//     boundary) annotate with //lint:allow errfmt.
type ErrFmt struct{}

// Name returns "errfmt".
func (ErrFmt) Name() string { return "errfmt" }

// Doc describes the pass.
func (ErrFmt) Doc() string {
	return "enforce error-string style and %w wrapping of error operands"
}

// Run reports convention violations.
func (ErrFmt) Run(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var isErrorf bool
			if name, ok := pkgFuncCall(p, call, "errors"); ok && name == "New" {
				isErrorf = false
			} else if name, ok := pkgFuncCall(p, call, "fmt"); ok && name == "Errorf" {
				isErrorf = true
			} else {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			msg, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			out = append(out, checkErrString(p, lit, msg)...)
			if isErrorf {
				out = append(out, checkWrap(p, call, msg)...)
			}
			return true
		})
	}
	return out
}

// checkErrString applies the style rules to one error message literal.
func checkErrString(p *Package, lit *ast.BasicLit, msg string) []Finding {
	var out []Finding
	if msg == "" {
		return nil
	}
	if last, _ := utf8.DecodeLastRuneInString(msg); strings.ContainsRune(".!?: \n", last) {
		out = append(out, p.finding(ErrFmt{}.Name(), lit,
			"error string ends with %q; drop trailing punctuation (callers embed it mid-sentence)", last))
	}
	if word := firstWord(msg); isCapitalizedSentenceWord(word) {
		out = append(out, p.finding(ErrFmt{}.Name(), lit,
			"error string starts with capitalized word %q; error strings start lower-case", word))
	}
	return out
}

// firstWord returns the leading run of letters and digits.
func firstWord(s string) string {
	end := len(s)
	for i, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			end = i
			break
		}
	}
	return s[:end]
}

// isCapitalizedSentenceWord reports whether word looks like the start of a
// capitalized sentence — upper-case first rune, all later runes lower-case.
// Identifier-ish words (Intn, JSON, VCs) have interior upper-case or digits
// and pass.
func isCapitalizedSentenceWord(word string) bool {
	if word == "" {
		return false
	}
	for i, r := range word {
		if i == 0 {
			if !unicode.IsUpper(r) {
				return false
			}
			continue
		}
		if !unicode.IsLower(r) {
			return false
		}
	}
	return utf8.RuneCountInString(word) > 1
}

// checkWrap flags error-typed operands of fmt.Errorf formatted with %v or
// %s instead of %w.
func checkWrap(p *Package, call *ast.CallExpr, format string) []Finding {
	vs, ok := formatVerbs(format)
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for i, arg := range call.Args[1:] {
		if i >= len(vs) {
			break
		}
		v := vs[i]
		if v != 'v' && v != 's' {
			continue
		}
		t := p.Info.TypeOf(arg)
		if t == nil || !types.Implements(t, errType) {
			continue
		}
		out = append(out, p.finding(ErrFmt{}.Name(), arg,
			"error operand formatted with %%%c; use %%w so callers can unwrap it", v))
	}
	return out
}

// formatVerbs returns the verb consuming each successive operand of a
// Printf format. It reports ok=false for formats it cannot map reliably
// (explicit argument indexes).
func formatVerbs(format string) ([]byte, bool) {
	var vs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flags:
		for i < len(format) {
			switch format[i] {
			case '#', '+', '-', ' ', '0', '\'':
				i++
			default:
				break flags
			}
		}
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		for j := 0; j < 2; j++ { // width, then optional .precision
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				vs = append(vs, '*')
				i++
			}
			if j == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		vs = append(vs, format[i])
	}
	return vs, true
}
