package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrFmt enforces the repo's error conventions on errors.New and
// fmt.Errorf:
//
//   - error strings start lower-case (identifiers and acronyms like
//     "Intn" or "JSON" are fine) and do not end with punctuation or a
//     newline — they get embedded mid-sentence by callers;
//   - an error operand to fmt.Errorf is wrapped with %w, not flattened
//     with %v or %s, so callers can errors.Is/As/Unwrap through it. Where
//     flattening is intentional (to cut an Unwrap chain at an API
//     boundary) annotate with //lint:allow errfmt.
type ErrFmt struct{}

// Name returns "errfmt".
func (ErrFmt) Name() string { return "errfmt" }

// Doc describes the pass.
func (ErrFmt) Doc() string {
	return "enforce error-string style and %w wrapping of error operands"
}

// Run reports convention violations.
func (ErrFmt) Run(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var isErrorf bool
			if name, ok := pkgFuncCall(p, call, "errors"); ok && name == "New" {
				isErrorf = false
			} else if name, ok := pkgFuncCall(p, call, "fmt"); ok && name == "Errorf" {
				isErrorf = true
			} else {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			msg, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			out = append(out, checkErrString(p, lit, msg)...)
			if isErrorf {
				out = append(out, checkWrap(p, call, lit, msg)...)
			}
			return true
		})
	}
	return out
}

// checkErrString applies the style rules to one error message literal.
func checkErrString(p *Package, lit *ast.BasicLit, msg string) []Finding {
	var out []Finding
	if msg == "" {
		return nil
	}
	if last, _ := utf8.DecodeLastRuneInString(msg); strings.ContainsRune(".!?: \n", last) {
		out = append(out, p.finding(ErrFmt{}.Name(), lit,
			"error string ends with %q; drop trailing punctuation (callers embed it mid-sentence)", last))
	}
	if word := firstWord(msg); isCapitalizedSentenceWord(word) {
		out = append(out, p.finding(ErrFmt{}.Name(), lit,
			"error string starts with capitalized word %q; error strings start lower-case", word))
	}
	return out
}

// firstWord returns the leading run of letters and digits.
func firstWord(s string) string {
	end := len(s)
	for i, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			end = i
			break
		}
	}
	return s[:end]
}

// isCapitalizedSentenceWord reports whether word looks like the start of a
// capitalized sentence — upper-case first rune, all later runes lower-case.
// Identifier-ish words (Intn, JSON, VCs) have interior upper-case or digits
// and pass.
func isCapitalizedSentenceWord(word string) bool {
	if word == "" {
		return false
	}
	for i, r := range word {
		if i == 0 {
			if !unicode.IsUpper(r) {
				return false
			}
			continue
		}
		if !unicode.IsLower(r) {
			return false
		}
	}
	return utf8.RuneCountInString(word) > 1
}

// checkWrap flags error-typed operands of fmt.Errorf formatted with %v or
// %s instead of %w, with a fix rewriting the verb in place.
func checkWrap(p *Package, call *ast.CallExpr, lit *ast.BasicLit, format string) []Finding {
	vs, ok := formatVerbs(format)
	if !ok {
		return nil
	}
	// A fix must edit the verb byte inside the *source* literal, where
	// escape sequences shift offsets relative to the unquoted text. The raw
	// inner text is scanned with the same scanner; if the two scans disagree
	// on the verb sequence the finding is reported without a fix.
	var rawVerbs []fmtVerb
	if inner, ok := innerLiteral(lit); ok {
		if rvs, rok := formatVerbs(inner); rok && sameVerbs(vs, rvs) {
			rawVerbs = rvs
		}
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for i, arg := range call.Args[1:] {
		if i >= len(vs) {
			break
		}
		v := vs[i].c
		if v != 'v' && v != 's' {
			continue
		}
		t := p.Info.TypeOf(arg)
		if t == nil || !types.Implements(t, errType) {
			continue
		}
		f := p.finding(ErrFmt{}.Name(), arg,
			"error operand formatted with %%%c; use %%w so callers can unwrap it", v)
		if rawVerbs != nil {
			pos := lit.Pos() + 1 + token.Pos(rawVerbs[i].off)
			f.Fix = &Fix{
				Message: "replace %" + string(v) + " with %w",
				Edits:   []TextEdit{{Pos: pos, End: pos + 1, NewText: "w"}},
			}
		}
		out = append(out, f)
	}
	return out
}

// innerLiteral returns the source text between a string literal's quotes.
func innerLiteral(lit *ast.BasicLit) (string, bool) {
	v := lit.Value
	if len(v) < 2 || (v[0] != '"' && v[0] != '`') {
		return "", false
	}
	return v[1 : len(v)-1], true
}

// fmtVerb is one operand-consuming verb: its character and the byte offset
// of that character within the scanned format text.
type fmtVerb struct {
	c   byte
	off int
}

// sameVerbs reports whether two scans consumed the same verb sequence.
func sameVerbs(a, b []fmtVerb) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].c != b[i].c {
			return false
		}
	}
	return true
}

// formatVerbs returns the verb consuming each successive operand of a
// Printf format. It reports ok=false for formats it cannot map reliably
// (explicit argument indexes).
func formatVerbs(format string) ([]fmtVerb, bool) {
	var vs []fmtVerb
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flags:
		for i < len(format) {
			switch format[i] {
			case '#', '+', '-', ' ', '0', '\'':
				i++
			default:
				break flags
			}
		}
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		for j := 0; j < 2; j++ { // width, then optional .precision
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				vs = append(vs, fmtVerb{c: '*', off: i})
				i++
			}
			if j == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		vs = append(vs, fmtVerb{c: format[i], off: i})
	}
	return vs, true
}
