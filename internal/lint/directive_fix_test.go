package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectiveSurvivesFix: applying -fix to a file that mixes fixable
// findings with //lint:allow and //lint:parity directives must rewrite only
// the unsuppressed findings and leave both directives byte-for-byte intact
// (the directivefixfixed fixture is the golden).
func TestDirectiveSurvivesFix(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "directivefix"))
	if err != nil {
		t.Fatalf("LoadDir(directivefix): %v", err)
	}
	findings := Run([]*Package{p}, []Pass{ErrFmt{}})
	if len(findings) != 2 {
		t.Fatalf("directivefix produced %d findings, want 2 (the allow-suppressed line must not fix)", len(findings))
	}
	patched, err := ApplyFixes(l.Fset, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(patched) != 1 {
		t.Fatalf("ApplyFixes touched %d files, want 1", len(patched))
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "src", "directivefixfixed", "directivefix.go"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	for _, got := range patched {
		if !bytes.Equal(got, golden) {
			t.Errorf("fixed output does not match the directivefixfixed golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
		}
		for _, directive := range []string{
			"//lint:allow errfmt kept verbatim for a downstream parser",
			"//lint:parity writes fixture audit that must survive -fix",
		} {
			if !bytes.Contains(got, []byte(directive)) {
				t.Errorf("fix dropped the directive %q", directive)
			}
		}
	}

	// The golden still suppresses: re-running on the fixed fixture finds
	// nothing (the %v under //lint:allow is still there, still suppressed).
	fixed, err := l.LoadDir(filepath.Join("testdata", "src", "directivefixfixed"))
	if err != nil {
		t.Fatalf("LoadDir(directivefixfixed): %v", err)
	}
	if fs := Run([]*Package{fixed}, []Pass{ErrFmt{}}); len(fs) != 0 {
		t.Errorf("directivefixfixed still has findings: %v", fs)
	}
}

// TestDirectiveBaselineInteraction: a baseline adopts only the findings the
// directives let through — suppressed lines never enter it — and filtering
// against that baseline silences exactly the adopted findings.
func TestDirectiveBaselineInteraction(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "directivefix"))
	if err != nil {
		t.Fatalf("LoadDir(directivefix): %v", err)
	}
	findings := Run([]*Package{p}, []Pass{ErrFmt{}})
	if len(findings) != 2 {
		t.Fatalf("directivefix produced %d findings, want 2", len(findings))
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, findings, l.ModRoot); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	if strings.Contains(buf.String(), "legacy format") {
		t.Error("baseline adopted the //lint:allow-suppressed finding; directives must filter before baselining")
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	kept, suppressed := FilterBaseline(findings, base, l.ModRoot)
	if len(kept) != 0 || suppressed != 2 {
		t.Errorf("FilterBaseline kept %d findings and suppressed %d, want 0 kept and 2 suppressed", len(kept), suppressed)
	}
}
