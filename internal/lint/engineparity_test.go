package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path"
	"path/filepath"
	"strings"
	"testing"
)

// parityFixtureModel configures the dataflow layer for the paritybad-shaped
// fixtures: Eng/BEng engines, the engineext collaborators, and the fl→flits
// layout unification.
func parityFixtureModel(p *Package) *EngineModel {
	extPath := path.Dir(p.Path) + "/engineext"
	return &EngineModel{
		TargetPkg:    p.Path,
		ScalarTypes:  []string{"Eng"},
		BatchTypes:   []string{"BEng"},
		CallPrefix:   map[string]string{extPath + ".Stream": "rng", extPath + ".Pool": "pool"},
		HookFields:   map[string]string{"OnEnd": "hook.OnEnd"},
		ConfigFields: map[string]string{"Len": "cfg.Len"},
		StateCanon:   map[string]string{"fl": "flits"},
		DrawPrefixes: map[string]bool{"rng": true},
		HookPrefixes: map[string]bool{"hook": true},
		PoolCalls:    map[string]bool{"pool.Get": true, "pool.Put": true},
	}
}

func parityFixturePass(p *Package) *EngineParity {
	return &EngineParity{
		Model: parityFixtureModel(p),
		Pairs: []ParityPair{
			{Name: "step", Scalar: "(*Eng).step", Batch: "(*BEng).stepB"},
			{Name: "drawTwice", Scalar: "(*Eng).drawTwice", Batch: "(*BEng).drawTwiceB"},
			{Name: "hookOnce", Scalar: "(*Eng).hookOnce", Batch: "(*BEng).hookOnceB"},
			{Name: "stageWrite", Scalar: "(*Eng).stageWrite", Batch: "(*BEng).stageWriteB"},
			{Name: "audited", Scalar: "(*Eng).audited", Batch: "(*BEng).auditedB"},
			{Name: "stale", Scalar: "(*Eng).stale", Batch: "(*BEng).staleB"},
			{Name: "baddir", Scalar: "(*Eng).baddir", Batch: "(*BEng).baddirB"},
		},
	}
}

func TestEngineParityFixture(t *testing.T) {
	p := loadFixture(t, "paritybad")
	checkFixture(t, "paritybad", parityFixturePass(p))
}

// TestEngineParityMissingPair: renaming one side of a pair must surface as
// a configuration finding, not silently drop the pair from the proof.
func TestEngineParityMissingPair(t *testing.T) {
	p := loadFixture(t, "paritybad")
	pass := parityFixturePass(p)
	pass.Pairs = append(pass.Pairs, ParityPair{Name: "ghost", Scalar: "(*Eng).vanished", Batch: "(*BEng).stepB"})
	var conf []Finding
	for _, f := range Run([]*Package{p}, []Pass{pass}) {
		if strings.Contains(f.Msg, "not found") {
			conf = append(conf, f)
		}
	}
	if len(conf) != 1 || !strings.Contains(conf[0].Msg, "(*Eng).vanished") {
		t.Errorf("missing pair function reported as %v, want one configuration finding naming (*Eng).vanished", conf)
	}
}

// TestEngineParityDirectiveNeedsReason: a bare //lint:parity <dim> line is
// rejected — audits without rationale rot.
func TestEngineParityDirectiveNeedsReason(t *testing.T) {
	p := loadFixture(t, "paritynoreason")
	pass := &EngineParity{
		Model: parityFixtureModel(p),
		Pairs: []ParityPair{{Name: "put", Scalar: "(*Eng).put", Batch: "(*BEng).putB"}},
	}
	got := Run([]*Package{p}, []Pass{pass})
	if len(got) != 1 || !strings.Contains(got[0].Msg, "needs a reason") {
		t.Errorf("reason-less directive reported as %v, want exactly one needs-a-reason finding", got)
	}
}

// TestParityCertificatesFixture pins the certificate structure: statuses per
// pair, per-dimension traces, and a deterministic signature.
func TestParityCertificatesFixture(t *testing.T) {
	p := loadFixture(t, "paritybad")
	pass := parityFixturePass(p)
	certs, err := CertifyParity(NewProgram([]*Package{p}), pass, "")
	if err != nil {
		t.Fatalf("CertifyParity: %v", err)
	}
	if certs.Schema != ParitySchema {
		t.Errorf("schema = %q, want %q", certs.Schema, ParitySchema)
	}
	status := make(map[string]string)
	for _, cert := range certs.Pairs {
		status[cert.Pair] = cert.Status
	}
	want := map[string]string{
		"step":       "proven",
		"drawTwice":  "divergent",
		"hookOnce":   "divergent",
		"stageWrite": "divergent",
		"audited":    "audited",
		"stale":      "proven", // the stale audit covers a matching dimension
	}
	for pair, st := range want {
		if status[pair] != st {
			t.Errorf("pair %s status = %q, want %q", pair, status[pair], st)
		}
	}
	for _, cert := range certs.Pairs {
		if len(cert.Dimensions) != len(parityDims) {
			t.Errorf("pair %s has %d dimensions, want %d", cert.Pair, len(cert.Dimensions), len(parityDims))
		}
		if cert.Pair == "audited" {
			for _, d := range cert.Dimensions {
				if d.Name == "writes" {
					if d.Status != "audited" || d.Reason == "" || len(d.BatchTrace) == 0 {
						t.Errorf("audited/writes = %+v, want audited status with reason and traces", d)
					}
				}
			}
		}
		if cert.Pair == "step" {
			for _, d := range cert.Dimensions {
				if d.Status != "proven" {
					t.Errorf("step/%s status = %q, want proven", d.Name, d.Status)
				}
			}
		}
	}
	if !strings.HasPrefix(certs.Signature, "sha256:") {
		t.Errorf("signature = %q, want a sha256: prefix", certs.Signature)
	}
	again, err := CertifyParity(NewProgram([]*Package{loadFixture(t, "paritybad")}), pass, "")
	if err != nil {
		t.Fatalf("CertifyParity (rerun): %v", err)
	}
	if again.Signature != certs.Signature {
		t.Errorf("certification is not deterministic: %s vs %s", again.Signature, certs.Signature)
	}

	// A missing pair is an error, not a thin certificate.
	pass.Pairs = append(pass.Pairs, ParityPair{Name: "ghost", Scalar: "(*Eng).vanished", Batch: "(*BEng).stepB"})
	if _, err := CertifyParity(NewProgram([]*Package{p}), pass, ""); err == nil {
		t.Error("CertifyParity with a missing pair function succeeded, want an error")
	}
}

// TestParityCertificatesGolden is the drift gate CI pins: certifying the
// shipped engines must reproduce the golden byte-for-byte, and no pair may
// be divergent. Regenerate with WORMLINT_UPDATE_GOLDEN=1 after an
// intentional engine change.
func TestParityCertificatesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModRoot + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	certs, err := CertifyParity(NewProgram(pkgs), NewEngineParity(), l.ModRoot)
	if err != nil {
		t.Fatalf("CertifyParity: %v", err)
	}
	proven, audited := 0, 0
	for _, cert := range certs.Pairs {
		switch cert.Status {
		case "divergent":
			t.Errorf("pair %s is divergent: unaudited footprint drift between the engines", cert.Pair)
		case "proven":
			proven++
		case "audited":
			audited++
		}
	}
	if proven == 0 || audited == 0 {
		t.Errorf("certificate mix proven=%d audited=%d; the engines have both fully-proven and audited pairs", proven, audited)
	}
	data, err := json.MarshalIndent(certs, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	goldenPath := filepath.Join("testdata", "parity_certificates.golden.json")
	golden, err := os.ReadFile(goldenPath)
	if err != nil && os.Getenv("WORMLINT_UPDATE_GOLDEN") == "" {
		t.Fatalf("read golden (regenerate with WORMLINT_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(data, golden) {
		if os.Getenv("WORMLINT_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		t.Errorf("parity certificates drifted from the golden; if intentional, regenerate with WORMLINT_UPDATE_GOLDEN=1\n--- got ---\n%s", data)
	}
}
