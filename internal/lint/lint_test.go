package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func position(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// loadFixture type-checks one package under testdata/src with a fresh
// loader. Fixtures live below testdata so the module build and the
// recursive wormlint walk both skip them.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return p
}

// wantLines scans the fixture's files for trailing "// WANT <pass>" markers
// and returns the marked line numbers. Only end-of-line markers count, so
// the fixture header can mention the marker syntax in prose.
func wantLines(t *testing.T, p *Package, pass string) map[int]bool {
	t.Helper()
	want := make(map[int]bool)
	marker := "// WANT " + pass
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read fixture source: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasSuffix(strings.TrimRight(line, " \t"), marker) {
				want[i+1] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture for %s has no WANT markers", pass)
	}
	return want
}

// checkFixture runs one pass over one fixture (through Run, so //lint:allow
// suppression applies exactly as in wormlint) and requires the reported
// lines to equal the WANT-marked lines.
func checkFixture(t *testing.T, fixture string, pass Pass) {
	t.Helper()
	p := loadFixture(t, fixture)
	want := wantLines(t, p, pass.Name())
	got := make(map[int]bool)
	for _, f := range Run([]*Package{p}, []Pass{pass}) {
		got[f.Pos.Line] = true
		if f.Pass != pass.Name() {
			t.Errorf("finding %v attributed to pass %q, want %q", f, f.Pass, pass.Name())
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("%s: no %s finding at line %d, want one", fixture, pass.Name(), line)
		}
	}
	for line := range got {
		if !want[line] {
			t.Errorf("%s: unexpected %s finding at line %d", fixture, pass.Name(), line)
		}
	}
}

func TestSimDeterminismFixture(t *testing.T) {
	p := loadFixture(t, "simdet")
	// The fixture is outside the simulation core, so target it explicitly.
	checkFixture(t, "simdet", &SimDeterminism{Targets: []string{p.Path}})
}

func TestSimDeterminismIgnoresUntargetedPackages(t *testing.T) {
	p := loadFixture(t, "simdet")
	if got := Run([]*Package{p}, []Pass{NewSimDeterminism()}); len(got) != 0 {
		t.Errorf("default targets flagged fixture package %s: %v", p.Path, got)
	}
}

func TestHotAllocFixture(t *testing.T) {
	p := loadFixture(t, "hotallocbad")
	// The fixture lives outside the engine package, so target it explicitly.
	checkFixture(t, "hotallocbad", &HotAlloc{TargetPkg: p.Path, Root: "(*Engine).Step"})
}

func TestHotAllocIgnoresUntargetedPackages(t *testing.T) {
	p := loadFixture(t, "hotallocbad")
	if got := Run([]*Package{p}, []Pass{NewHotAlloc()}); len(got) != 0 {
		t.Errorf("default target flagged fixture package %s: %v", p.Path, got)
	}
}

// TestHotAllocMissingRoot: renaming the entry point must surface as a
// finding, not silently disarm the gate.
func TestHotAllocMissingRoot(t *testing.T) {
	p := loadFixture(t, "hotallocbad")
	got := Run([]*Package{p}, []Pass{&HotAlloc{TargetPkg: p.Path, Root: "(*Engine).Tick"}})
	if len(got) != 1 || !strings.Contains(got[0].Msg, "root (*Engine).Tick not found") {
		t.Errorf("missing root reported as %v, want one configuration finding", got)
	}
}

func TestHookGuardFixture(t *testing.T) {
	checkFixture(t, "hookbad", NewHookGuard())
}

func TestMutexCopyFixture(t *testing.T) {
	checkFixture(t, "mutexbad", MutexCopy{})
}

func TestLoopCaptureFixture(t *testing.T) {
	checkFixture(t, "loopbad", LoopCapture{})
}

func TestErrFmtFixture(t *testing.T) {
	checkFixture(t, "errbad", ErrFmt{})
}

// TestRepoClean is the in-process equivalent of `go run ./cmd/wormlint
// ./...`: the shipped tree must be finding-free, so that any new violation
// fails the ordinary test suite too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModRoot + "/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load matched no packages")
	}
	for _, f := range Run(pkgs, DefaultPasses()) {
		t.Errorf("repo finding: %s", f)
	}
}

func TestFindingString(t *testing.T) {
	p := loadFixture(t, "errbad")
	fs := Run([]*Package{p}, []Pass{ErrFmt{}})
	if len(fs) == 0 {
		t.Fatal("no findings to format")
	}
	s := fs[0].String()
	if !strings.Contains(s, "errbad.go:") || !strings.Contains(s, "[errfmt]") {
		t.Errorf("String() = %q, want file:line: [errfmt] message form", s)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%s: %w", "sw", true},
		{"%d%%%v", "dv", true},
		{"%+8.3f %q", "fq", true},
		{"pad %*d: %w", "*dw", true},
		{"%[1]s", "", false},
	}
	for _, c := range cases {
		vs, ok := formatVerbs(c.format)
		var got []byte
		for _, v := range vs {
			got = append(got, v.c)
		}
		if ok != c.ok || string(got) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, got, ok, c.verbs, c.ok)
		}
	}
}

func TestAllowDirectiveScope(t *testing.T) {
	p := loadFixture(t, "simdet")
	var file string
	for _, f := range p.Files {
		file = p.Fset.Position(f.Pos()).Filename
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var sameLine, lineAbove int
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "//lint:allow simdeterminism (collected then sorted)") {
			sameLine = i + 1
		}
		if strings.Contains(line, "//lint:allow simdeterminism (order-independent sum)") {
			lineAbove = i + 1
		}
	}
	if sameLine == 0 || lineAbove == 0 {
		t.Fatal("fixture directives not found")
	}
	pos := func(line int) bool {
		return p.Allowed("simdeterminism", position(file, line))
	}
	if !pos(sameLine) {
		t.Errorf("directive does not cover its own line %d", sameLine)
	}
	if !pos(lineAbove + 1) {
		t.Errorf("whole-line directive does not cover the line below %d", lineAbove)
	}
	if pos(sameLine) && p.Allowed("errfmt", position(file, sameLine)) {
		t.Error("directive for simdeterminism leaked to errfmt")
	}
}
