// Package engineext supplies the foreign-package collaborators the parity,
// conservation and index fixtures need: a deterministic draw stream and a
// message pool, standing in for internal/rng and internal/message without
// coupling the fixtures to the real engine API.
package engineext

// Stream is a miniature deterministic generator.
type Stream struct{ s uint64 }

// Intn draws the next value in [0, n).
func (r *Stream) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int(r.s>>33) % n
}

// Msg is a pooled message.
type Msg struct{ ID int }

// Pool hands out messages that must come back.
type Pool struct{ free []*Msg }

// Get acquires a message.
func (p *Pool) Get(id int) *Msg {
	if k := len(p.free); k > 0 {
		m := p.free[k-1]
		p.free = p.free[:k-1]
		m.ID = id
		return m
	}
	return &Msg{ID: id}
}

// Put releases a message.
func (p *Pool) Put(m *Msg) { p.free = append(p.free, m) }
