// Package hookbad is a wormlint test fixture for the hookguard pass.
// Lines the pass should report carry a "// WANT hookguard" marker.
package hookbad

import "wormsim/internal/telemetry"

// Sim is a stand-in simulation engine with an optional collector.
type Sim struct {
	tel *telemetry.Collector
}

// Bad calls a hook with no guard at all.
func (s *Sim) Bad() {
	s.tel.EndCycle() // WANT hookguard
}

// WrongGuard checks a different collector than the one it calls.
func (s *Sim) WrongGuard(other *Sim) {
	if other.tel != nil {
		s.tel.EndCycle() // WANT hookguard
	}
}

// ElseBranch guards the wrong arm.
func (s *Sim) ElseBranch() {
	if s.tel != nil {
		_ = s
	} else {
		s.tel.InjEnqueue() // WANT hookguard
	}
}

// Guarded wraps the hook the canonical way.
func (s *Sim) Guarded() {
	if s.tel != nil {
		s.tel.EndCycle()
	}
}

// Conjunct guards within a compound condition.
func (s *Sim) Conjunct(on bool) {
	if on && s.tel != nil {
		s.tel.InjEnqueue()
	}
}

// EarlyExit guards with an up-front return.
func (s *Sim) EarlyExit() {
	if s.tel == nil {
		return
	}
	s.tel.InjDequeue()
}

// NilSafe calls the one method that checks its own receiver.
func (s *Sim) NilSafe() bool { return s.tel.Tracing() }

// Router is a stand-in engine stage holding a phase-timer cursor.
type Router struct {
	prof  *telemetry.PhaseProfiler
	timer *telemetry.PhaseTimer
}

// BadTimer calls the phase timer with no guard.
func (r *Router) BadTimer() {
	r.timer.Begin() // WANT hookguard
}

// BadProfiler reads the shared profiler with no guard.
func (r *Router) BadProfiler() telemetry.PhaseSnapshot {
	return r.prof.Snapshot() // WANT hookguard
}

// GuardedTimer wraps both phase hooks the canonical way.
func (r *Router) GuardedTimer() {
	if r.timer != nil {
		r.timer.Begin()
		r.timer.Mark(telemetry.PhaseRoute)
	}
}

// TimerFromProfiler calls the nil-safe constructor on an unguarded
// profiler; Timer checks its own receiver, so this is fine.
func (r *Router) TimerFromProfiler() {
	r.timer = r.prof.Timer()
}

// ProfilerEarlyExit guards the profiler with an up-front return.
func (r *Router) ProfilerEarlyExit() int64 {
	if r.prof == nil {
		return 0
	}
	return r.prof.Snapshot().Cycles
}
