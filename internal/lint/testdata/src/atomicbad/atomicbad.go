// Package atomicbad is a wormlint test fixture for the atomicdiscipline
// pass: fields touched via sync/atomic must never be accessed plainly, and
// typed atomics must never be used as plain values. Lines the pass should
// report carry a "// WANT atomicdiscipline" marker.
package atomicbad

import "sync/atomic"

// Stats mixes a plain counter driven through sync/atomic with a typed
// atomic.
type Stats struct {
	hits  int64
	flags atomic.Int64
}

// total is a package-level counter driven through sync/atomic.
var total int64

// slots is an array of typed atomics: indexing into it is fine, copying an
// element out is not.
var slots [4]atomic.Int64

// Inc is the disciplined writer that puts hits under the atomic regime.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&total, 1)
}

// Bad reads and writes hits plainly even though Inc uses sync/atomic.
func (s *Stats) Bad() int64 {
	s.hits++      // WANT atomicdiscipline
	return s.hits // WANT atomicdiscipline
}

// BadGlobal increments the package counter plainly.
func BadGlobal() {
	total++ // WANT atomicdiscipline
}

// Peek is the annotated, intentional variant.
func (s *Stats) Peek() int64 {
	return s.hits //lint:allow atomicdiscipline (stats-only racy fast path, documented)
}

// Copy duplicates a typed atomic as a plain value.
func (s *Stats) Copy() atomic.Int64 {
	return s.flags // WANT atomicdiscipline
}

// Snapshot copies a typed atomic out of the array.
func Snapshot() atomic.Int64 {
	return slots[0] // WANT atomicdiscipline
}

// Good stays inside the regime: sync/atomic calls and typed-atomic methods.
func (s *Stats) Good() int64 {
	slots[1].Add(1)
	return atomic.LoadInt64(&s.hits) + s.flags.Load() + slots[0].Load()
}
