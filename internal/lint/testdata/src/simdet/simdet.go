// Package simdet is a wormlint test fixture: the constructs the
// simdeterminism pass must flag, plus intentional variants it must not.
// Lines the pass should report carry a "// WANT simdeterminism" marker.
package simdet

import (
	"math/rand" // WANT simdeterminism
	"sort"
	"time"
)

// Tick absorbs values so the fixture has no unused results.
var Tick int64

// Draw uses the forbidden global generator: the import is flagged and
// so is the call site.
func Draw() int { return rand.Intn(6) } // WANT simdeterminism

// Stamp reads the wall clock twice.
func Stamp() {
	t := time.Now()              // WANT simdeterminism
	Tick += int64(time.Since(t)) // WANT simdeterminism
}

// Keys iterates a map without sorting.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m { // WANT simdeterminism
		ks = append(ks, k)
	}
	return ks
}

// SortedKeys is the annotated, intentional variant: collected then sorted.
func SortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m { //lint:allow simdeterminism (collected then sorted)
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Sum is order-independent but annotated above the loop, exercising the
// directive-on-previous-line form.
func Sum(m map[string]int) int {
	total := 0
	//lint:allow simdeterminism (order-independent sum)
	for _, v := range m {
		total += v
	}
	return total
}
