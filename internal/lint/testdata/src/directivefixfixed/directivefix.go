// Package directivefix is the fixture for directive/-fix/-baseline
// interaction: a fixable finding next to an //lint:allow suppression of the
// same pass, and a //lint:parity audit on a function -fix rewrites. The
// directivefixfixed fixture is the byte-exact golden of applying every
// surviving fix — both directives must come through untouched.
package directivefix

import "fmt"

// WrapFree has no directive: -fix rewrites its %v to %w.
func WrapFree(err error) error {
	return fmt.Errorf("open store: %w", err)
}

// WrapAllowed suppresses the same finding: -fix must leave the line — and
// the directive — exactly as written.
func WrapAllowed(err error) error {
	return fmt.Errorf("legacy format: %v", err) //lint:allow errfmt kept verbatim for a downstream parser
}

// WrapAudited carries a parity audit in its doc comment; the fix applied to
// its body must not disturb the directive.
//
//lint:parity writes fixture audit that must survive -fix
func WrapAudited(err error) error {
	return fmt.Errorf("close store: %w", err)
}
