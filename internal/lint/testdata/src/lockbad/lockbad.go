// Package lockbad is a wormlint test fixture for the lockscope pass:
// blocking operations and hook invocations inside critical sections, and
// broken lock/unlock pairing. Lines the pass should report carry a
// "// WANT lockscope" marker.
package lockbad

import (
	"sync"
	"time"
)

// Q mimics the scheduler/publisher shape: a mutex guarding state next to a
// channel and a hook field.
type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	fn   func(int)
}

// SendHeld blocks on a channel send inside the critical section.
func (q *Q) SendHeld() {
	q.mu.Lock()
	q.ch <- 1 // WANT lockscope
	q.mu.Unlock()
}

// RecvHeld blocks on a channel receive inside the critical section.
func (q *Q) RecvHeld() {
	q.mu.Lock()
	<-q.ch // WANT lockscope
	q.mu.Unlock()
}

// HookHeld invokes a function value the holder cannot see into.
func (q *Q) HookHeld() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.fn(1) // WANT lockscope
}

// SleepHeld parks the critical section on the wall clock.
func (q *Q) SleepHeld() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // WANT lockscope
	q.mu.Unlock()
}

// SelectHeld selects without a default: it can block indefinitely.
func (q *Q) SelectHeld() {
	q.mu.Lock()
	select { // WANT lockscope
	case q.ch <- 1:
	case <-q.ch:
	}
	q.mu.Unlock()
}

// waitForWork blocks; Indirect reaches it while holding the lock, which the
// bottom-up may-block facts must catch.
func (q *Q) waitForWork() {
	<-q.ch
}

// Indirect hides the blocking operation one call deep.
func (q *Q) Indirect() {
	q.mu.Lock()
	q.waitForWork() // WANT lockscope
	q.mu.Unlock()
}

// ForgotUnlock acquires and never releases.
func (q *Q) ForgotUnlock() {
	q.mu.Lock() // WANT lockscope
	q.ch = nil
}

// ReturnHeld leaks the lock on the early-return path.
func (q *Q) ReturnHeld(b bool) bool {
	q.mu.Lock()
	if b {
		return true // WANT lockscope
	}
	q.mu.Unlock()
	return false
}

// TryBroadcast is the observatory pattern: select with a default is
// non-blocking and legal under the lock.
func (q *Q) TryBroadcast() {
	q.mu.Lock()
	select {
	case q.ch <- 1:
	default:
	}
	q.mu.Unlock()
}

// Park is the scheduler's idle pattern: sync.Cond is exempt because Wait
// atomically releases the mutex.
func (q *Q) Park() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cond.Wait()
}

// DeferredFunc releases through a deferred literal: pairing is satisfied.
func (q *Q) DeferredFunc() {
	q.mu.Lock()
	defer func() {
		q.mu.Unlock()
	}()
	q.ch = nil
}

// Allowed is the annotated, intentional variant.
func (q *Q) Allowed() {
	q.mu.Lock()
	q.fn(2) //lint:allow lockscope (handoff under lock is intentional here)
	q.mu.Unlock()
}
