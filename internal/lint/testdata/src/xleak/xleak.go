// Package xleak is a wormlint test fixture for cross-package reachability:
// the hot-path root lives here, the violations live in the dep subpackage —
// one behind a plain cross-package call, one behind an interface call that
// the graph must devirtualize, one behind a function value the root merely
// stores. Constructs in this package are all legal; the WANT markers are in
// dep.
package xleak

import "wormsim/internal/lint/testdata/src/xleak/dep"

// Sink absorbs values so the fixture has no unused results.
var Sink any

// Engine mimics the simulator: it holds its routing algorithm only as an
// interface, so dep.Greedy's body is reachable solely by devirtualization.
type Engine struct {
	alg dep.Algorithm
}

// New wires the only implementation in.
func New() *Engine { return &Engine{alg: dep.Greedy{}} }

// Step is the per-cycle root.
func (e *Engine) Step() {
	dep.Mix(3)            // cross-package direct call
	Sink = e.alg.Route(3) // devirtualized interface call
	Sink = dep.Taken      // a function value that may be invoked later: an edge
}

// Cold is outside Step's call graph: allocating here is legal.
func Cold() {
	Sink = make(map[int]int)
}
