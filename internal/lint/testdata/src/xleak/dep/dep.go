// Package dep holds the violations the xleak fixture's engine reaches
// across the package boundary. Lines the hotalloc and simdeterminism passes
// must report (with the xleak root configured) carry WANT markers.
package dep

import "time"

// Sink absorbs values so the fixture has no unused results.
var Sink any

// Mix is reached from xleak.(*Engine).Step by a plain cross-package call.
func Mix(n int) {
	Sink = make(map[int]int, n) // WANT hotalloc
	Sink = time.Now()           // WANT simdeterminism
}

// Algorithm mirrors routing.Algorithm's shape: the engine calls it only
// through the interface.
type Algorithm interface {
	Route(n int) int
}

// Greedy is the sole implementation; its body is reachable only by
// devirtualizing the interface call in Step.
type Greedy struct{}

// Route allocates on the hot path.
func (Greedy) Route(n int) int {
	m := map[int]bool{n: true} // WANT hotalloc
	return len(m)
}

// Taken is never called, but Step stores it as a function value — it may run
// later, so it is part of the per-cycle graph.
func Taken() {
	Sink = make(map[string]int) // WANT hotalloc
}

// Unreached is not referenced from Step's graph at all: legal.
func Unreached() {
	Sink = make(map[int]int)
	Sink = time.Now()
}
