// Package hotallocbad is a wormlint test fixture for the hotalloc pass:
// map allocations and closures inside the per-cycle call graph rooted at
// (*Engine).Step must be flagged (marked "WANT hotalloc" at line end), while
// identical constructs outside the graph or annotated with //lint:allow
// stay legal.
package hotallocbad

// Engine mimics the simulator's cycle engine.
type Engine struct {
	scratch map[int]int
}

// Sink absorbs values so the fixture has no unused results.
var Sink any

// Step is the per-cycle root, a pointer method like the real engine's.
func (e *Engine) Step() {
	m := make(map[int]int) // WANT hotalloc
	Sink = m
	e.route()
	fn := func() int { return 1 } // WANT hotalloc
	Sink = fn()
	e.rebuild()
	drain()
}

func (e *Engine) route() {
	Sink = map[string]bool{"x": true} // WANT hotalloc
}

func drain() {
	Sink = make(map[int][]int) // WANT hotalloc
}

// rebuild carries the annotated, intentional variant.
func (e *Engine) rebuild() {
	e.scratch = make(map[int]int) //lint:allow hotalloc (rebuilt only on topology change)
}

// ColdPath is outside Step's call graph: the same constructs are fine here.
func ColdPath() {
	Sink = make(map[int]int)
	Sink = func() int { return 2 }
	Sink = make([]int, 8) // slices are amortized scratch, never flagged
}
