// Package hookescapebad is a wormlint test fixture for the hookescape pass:
// arguments handed to hook (function-value) calls must not carry references
// into engine-owned state. Lines the pass should report carry a
// "// WANT hookescape" marker.
package hookescapebad

// Event is a scalar-only payload: safe to hand out by value.
type Event struct {
	Cycle int
	Total int
}

// Frame embeds a reference: handing it out shares engine memory.
type Frame struct {
	Buf []int
}

// Msg mimics the pooled message.
type Msg struct {
	ID int
}

// Trace is a package-level hook with package-level state behind it.
var Trace func([]int)

// state is engine-owned package state.
var state []int

// Engine owns a buffer and the current message; hooks hang off fields.
type Engine struct {
	buf    []int
	cur    *Msg
	count  int
	OnTick func(any)
	OnMsg  func(*Msg)
}

// Tick exercises the escape rules at each hook call site.
func (e *Engine) Tick() {
	e.OnTick(e.buf) // WANT hookescape
	e.OnMsg(e.cur)  // WANT hookescape

	frame := Frame{Buf: e.buf}
	e.OnTick(frame) // WANT hookescape

	// A scalar field, a scalar composite, a call result and a copied slice
	// are all safe.
	e.OnTick(e.count)
	e.OnTick(Event{Cycle: e.count, Total: len(e.buf)})
	e.OnTick(e.snapshot())
	cp := append([]int(nil), e.buf...)
	e.OnTick(cp)

	// A by-value copy of the pooled message is safe too.
	m := *e.cur
	e.OnMsg(&m)

	// The annotated, intentional borrow.
	e.OnMsg(e.cur) //lint:allow hookescape (documented borrow, valid only during the callback)
}

// Fire leaks package-level state through a package-level hook.
func Fire() {
	Trace(state) // WANT hookescape
}

// Relay passes a parameter through: the caller owns it, not the engine.
func Relay(xs []int) {
	Trace(xs)
}

// snapshot returns a fresh copy by contract.
func (e *Engine) snapshot() []int {
	return append([]int(nil), e.buf...)
}
