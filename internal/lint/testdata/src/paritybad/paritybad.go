// Package paritybad exercises the engineparity pass: a miniature scalar
// engine (Eng) and batch engine (BEng) with pairs that prove clean, pairs
// that diverge on each footprint dimension, an audited divergence, a stale
// audit and malformed directives. Expected findings carry trailing
// "// WANT engineparity" markers.
package paritybad

import ext "wormsim/internal/lint/testdata/src/engineext"

// Cfg is the shared configuration surface.
type Cfg struct {
	Len   int
	OnEnd func(int)
}

// Eng is the scalar engine.
type Eng struct {
	cfg     Cfg
	rng     ext.Stream
	flits   []int
	scratch []int
}

// BEng is the batch engine; fl is its layout of the scalar flits array.
type BEng struct {
	cfg   Cfg
	rng   ext.Stream
	fl    []int
	stage []int
}

// step and stepB prove: same config read, same draw, same canonical write.
func (e *Eng) step() {
	n := e.rng.Intn(e.cfg.Len)
	e.flits[n]++
}

func (b *BEng) stepB() {
	n := b.rng.Intn(b.cfg.Len)
	b.fl[n]++
}

// drawTwice draws twice where its twin draws once.
func (e *Eng) drawTwice() int {
	return e.rng.Intn(4) + e.rng.Intn(8)
}

func (b *BEng) drawTwiceB() int { // WANT engineparity
	return b.rng.Intn(4)
}

// hookOnce fires the end hook once where its twin fires it twice.
func (e *Eng) hookOnce(n int) {
	if e.cfg.OnEnd != nil {
		e.cfg.OnEnd(n)
	}
}

func (b *BEng) hookOnceB(n int) { // WANT engineparity
	if b.cfg.OnEnd != nil {
		b.cfg.OnEnd(n)
		b.cfg.OnEnd(n + 1)
	}
}

// stageWrite diverges on writes: the batch side staples results into
// batch-only staging the scalar side does not have.
func (e *Eng) stageWrite(n int) {
	e.flits[n] = n
}

func (b *BEng) stageWriteB(n int) { // WANT engineparity
	b.fl[n] = n
	b.stage = append(b.stage, n)
}

// audited diverges the same way but carries the audit, so no finding.
func (e *Eng) audited(n int) {
	e.flits[n] = n
}

// auditedB staples into batch staging.
//
//lint:parity writes the batch side stages results in stage
func (b *BEng) auditedB(n int) {
	b.fl[n] = n
	b.stage = append(b.stage, n)
}

// stale carries an audit for a dimension that already matches.
func (e *Eng) stale(n int) {
	e.flits[n] = n
}

// staleB matches its twin exactly; the draws audit below is stale.
//
//lint:parity draws legacy audit kept after the engines converged // WANT engineparity
func (b *BEng) staleB(n int) {
	b.fl[n] = n
}

// baddir matches its twin; its directives are malformed.
func (e *Eng) baddir(n int) {
	e.flits[n] = n
}

// baddirB carries an unknown dimension and a reason-less directive.
//
//lint:parity latency spurious dimension name // WANT engineparity
//lint:parity writes // WANT engineparity
func (b *BEng) baddirB(n int) {
	b.fl[n] = n
}
