// Package callshapes pins the call-graph shapes the purity certification
// leans on: method values and deferred calls create edges, while calls
// through function-typed struct fields (the engine's hook boundary) do
// not — from Step, exactly {Step, helper, cleanup} is reachable.
package callshapes

// Engine mirrors core.Config's hook shape.
type Engine struct {
	// OnTick is a hook field: calls through it have no static callee.
	OnTick func(int)
}

func (e *Engine) helper() int { return 1 }

func (e *Engine) cleanup() {}

// Step takes helper as a method value, defers cleanup, and invokes the
// OnTick hook through the field.
func (e *Engine) Step() int {
	f := e.helper
	defer e.cleanup()
	if e.OnTick != nil {
		e.OnTick(1)
	}
	return f()
}

// Tick has the hook's shape but is never referenced; without a static
// assignment the graph must not invent an edge to it.
func Tick(int) {}

// Orphan is referenced by nobody.
func Orphan() {}
