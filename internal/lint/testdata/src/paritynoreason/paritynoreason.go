// Package paritynoreason holds the one parity case a trailing WANT marker
// cannot express: a //lint:parity directive with no reason text at all (any
// trailing comment would parse as the reason).
package paritynoreason

// Eng is the scalar side.
type Eng struct{ flits []int }

// BEng is the batch side with batch-only staging.
type BEng struct {
	fl    []int
	stage []int
}

func (e *Eng) put(n int) { e.flits[n] = n }

//lint:parity writes
func (b *BEng) putB(n int) {
	b.fl[n] = n
	b.stage = append(b.stage, n)
}
