// Package conservationbad exercises the conservation pass: a one-way
// counter, a one-way release, a pool acquire that can leak past an early
// exit, and balanced uses that must stay silent. Expected findings carry
// trailing "// WANT conservation" markers.
package conservationbad

import ext "wormsim/internal/lint/testdata/src/engineext"

// Eng is the miniature engine under audit.
type Eng struct {
	pool    ext.Pool
	owners  []int
	credits []int
	ports   []int
	slots   []*ext.Msg
}

// Step is the audited root.
func (e *Eng) Step() {
	e.acquireOnly(3)
	e.releaseOnly(2)
	e.leaky(4)
	e.balanced(5)
	e.portRoundTrip(6)
}

// acquireOnly moves the ownership counter up with no decrement anywhere on
// the Step graph.
func (e *Eng) acquireOnly(ch int) {
	e.owners[ch]++ // WANT conservation
}

// releaseOnly gives credit back that is never taken.
func (e *Eng) releaseOnly(ch int) {
	e.credits[ch]-- // WANT conservation
}

// leaky forgets the message on the early exit: the pool entry is gone.
func (e *Eng) leaky(id int) {
	m := e.pool.Get(id) // WANT conservation
	if id > 3 {
		return
	}
	e.pool.Put(m)
}

// balanced releases on the early exit and otherwise parks the message in
// engine state — both paths sink it.
func (e *Eng) balanced(id int) {
	m := e.pool.Get(id)
	if id > 9 {
		e.pool.Put(m)
		return
	}
	e.slots[id] = m
}

// portRoundTrip moves the port counter both ways: silent.
func (e *Eng) portRoundTrip(node int) {
	e.ports[node]++
	if node > 4 {
		e.ports[node]--
	}
}
