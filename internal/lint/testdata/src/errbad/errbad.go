// Package errbad is a wormlint test fixture for the errfmt pass. Lines the
// pass should report carry a "// WANT errfmt" marker.
package errbad

import (
	"errors"
	"fmt"
	"os"
)

// ErrClosed ends with a period.
var ErrClosed = errors.New("connection closed.") // WANT errfmt

// ErrBig starts a capitalized sentence.
var ErrBig = errors.New("Too many worms") // WANT errfmt

// ErrJSON starts with an acronym; interior upper-case marks it as an
// identifier, not a capitalized sentence.
var ErrJSON = errors.New("JSON field missing")

// Open flattens the underlying error, hiding it from errors.Is.
func Open(path string) error {
	if _, err := os.Stat(path); err != nil {
		return fmt.Errorf("open %s: %v", path, err) // WANT errfmt
	}
	return nil
}

// Wrap is the good form.
func Wrap(err error) error { return fmt.Errorf("wrap: %w", err) }

// Boundary is annotated intentional flattening.
func Boundary(err error) error {
	return fmt.Errorf("boundary: %v", err) //lint:allow errfmt (deliberate unwrap barrier)
}

// Starred exercises width-star operand counting: the error lands on %w.
func Starred(width int, err error) error {
	return fmt.Errorf("pad %*d: %w", width, 7, err)
}
