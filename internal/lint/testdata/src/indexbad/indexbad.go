// Package indexbad exercises the indexdiscipline pass: dense position
// arrays indexed by slot ids, slot-id arrays indexed by loop positions, and
// blessed uses (active-list iteration, aIdx translation, ch*numVCs+vc
// packing, len-bounded counters) that must stay silent. Expected findings
// carry trailing "// WANT indexdiscipline" markers.
package indexbad

// BEng is the miniature batch engine under audit.
type BEng struct {
	hot    []int
	aIdx   []int32
	act    []int32
	numVCs int32
}

// Step is the audited root.
func (b *BEng) Step() {
	for pos, id := range b.act {
		_ = pos
		b.consume(id)
	}
	b.posLoop()
	b.mixedUp()
	b.pack(3, 1)
}

// consume's id parameter is blessed by name; the aIdx hop translates it to
// a position, but indexing the position array by the raw id is the bug.
func (b *BEng) consume(id int32) {
	b.hot[b.aIdx[id]]++
	b.hot[id]++ // WANT indexdiscipline
}

// posLoop's counter is a position (bounded by the position array), so the
// slot-id array must not be indexed by it.
func (b *BEng) posLoop() {
	for i := 0; i < len(b.hot); i++ {
		b.hot[i]++
		b.aIdx[i]++ // WANT indexdiscipline
	}
}

// mixedUp hands a position to a slot-id parameter.
func (b *BEng) mixedUp() {
	for pos := range b.hot {
		b.consume(int32(pos)) // WANT indexdiscipline
	}
}

// pack builds a slot id the blessed way: ch*numVCs + vc.
func (b *BEng) pack(ch, vc int32) {
	t := ch*b.numVCs + vc
	b.aIdx[t]++
}
