// Package unusedallowbad is a wormlint test fixture for the unusedallow
// pass. ErrLive's directive suppresses a live errfmt finding and must stay;
// the whole-line directive and the mutexcopy half of ErrPartial's directive
// suppress nothing and are findings (with fixes; unusedallowfixed is the
// -fix golden).
package unusedallowbad

import "errors"

// ErrLive is the control: its directive suppresses a real finding.
var ErrLive = errors.New("Capitalized on purpose") //lint:allow errfmt (control: suppresses a live finding)

//lint:allow errfmt (nothing below violates the style) // WANT unusedallow
var ErrClean = errors.New("clean message")

// ErrPartial mixes a live pass with a stale one in one directive.
var ErrPartial = errors.New("Another capital") //lint:allow errfmt,mutexcopy (no mutex in sight) // WANT unusedallow
