// Package loopbad is a wormlint test fixture for the loopcapture pass.
// Lines the pass should report carry a "// WANT loopcapture" marker.
package loopbad

// Launch starts a goroutine per item that observes a variable the loop
// keeps reassigning: every goroutine may see the last value.
func Launch(items []int) {
	var cur int
	done := make(chan struct{}, len(items))
	for _, it := range items {
		cur = it
		go func() {
			_ = cur // WANT loopcapture
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
}

// Cleanup defers over the iteration variable: the calls all run at
// function exit, not per iteration.
func Cleanup(files []string) {
	for _, f := range files {
		defer func() {
			_ = f // WANT loopcapture
		}()
	}
}

// Safe passes the loop value as an argument.
func Safe(items []int) {
	for _, it := range items {
		go func(v int) { _ = v }(it)
	}
}

// SafeGo captures the per-iteration variable in a goroutine, fine since
// Go 1.22 gave every iteration its own variable.
func SafeGo(items []int) {
	for _, it := range items {
		go func() { _ = it }()
	}
}
