// Package mutexbad is a wormlint test fixture for the mutexcopy pass.
// Lines the pass should report carry a "// WANT mutexcopy" marker.
package mutexbad

import "sync"

// Counter guards a count with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Wrapped reaches the lock only through a nested field.
type Wrapped struct{ inner Counter }

// Peek copies its receiver — and with it the lock.
func (c Counter) Peek() int { return c.n } // WANT mutexcopy

// Inspect takes the counter by value.
func Inspect(c Counter) int { return c.n } // WANT mutexcopy

// Snapshot returns a nested lock by value.
func Snapshot(w *Wrapped) Wrapped { return *w } // WANT mutexcopy

// Grow is fine: pointer receiver.
func (c *Counter) Grow() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// View is fine: pointer parameter.
func View(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
