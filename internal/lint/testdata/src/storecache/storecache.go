// Package storecache is a wormlint test fixture for the run-store cache
// path: a Sweep-like root consults a store before simulating, so every
// function on the cache-hit branch — including the store's own Lookup —
// is part of the determinism contract. The violations live in the store
// subpackage; constructs here are all legal. This pins the guarantee that
// a warm-store rerun stays bit-identical: nothing the cache-hit branch
// reaches may read the wall clock.
package storecache

import "wormsim/internal/lint/testdata/src/storecache/store"

// Result mimics a simulation result.
type Result struct{ Latency float64 }

// Sink absorbs values so the fixture has no unused results.
var Sink any

// simulate stands in for the engine: pure, so nothing to flag.
func simulate(load float64) Result { return Result{Latency: 10 * load} }

// Sweep is the determinism root: for each point it first tries the store
// (the cache-hit branch) and only simulates on a miss — exactly the shape
// of core.Sweep with a Config.Cache attached.
func Sweep(s *store.Store, loads []float64) []Result {
	out := make([]Result, 0, len(loads))
	for _, load := range loads {
		if rec, ok := s.Lookup(load); ok { // cache hit: zero cycles simulated
			out = append(out, Result{Latency: rec})
			continue
		}
		r := simulate(load)
		s.Put(load, r.Latency)
		out = append(out, r)
	}
	return out
}
