// Package store is the dep half of the storecache fixture: its Lookup and
// Put sit on Sweep's cache-hit branch, so the wall-clock reads inside them
// must be flagged through the reachability scope even though the package
// itself is untargeted. Maintenance code the sweep never reaches (Vacuum)
// may read the clock freely.
package store

import "time"

// Store mimics a run store keyed by offered load.
type Store struct {
	records map[float64]float64
	stamp   int64
}

// New builds an empty store.
func New() *Store { return &Store{records: make(map[float64]float64)} }

// Lookup returns a cached latency. Stamping the access time poisons the
// cache-hit branch: a warm rerun would observe a different store state.
func (s *Store) Lookup(load float64) (float64, bool) {
	s.stamp = time.Now().UnixNano() // WANT simdeterminism
	r, ok := s.records[load]
	return r, ok
}

// Put records a freshly simulated point on the miss branch.
func (s *Store) Put(load, latency float64) {
	s.stamp = time.Now().UnixNano() // WANT simdeterminism
	s.records[load] = latency
}

// Vacuum is maintenance the sweep never calls: the clock read here is
// legal because the root cannot reach it.
func (s *Store) Vacuum(maxAge time.Duration) {
	cutoff := time.Now().Add(-maxAge).UnixNano()
	if s.stamp < cutoff {
		s.records = make(map[float64]float64)
	}
}
