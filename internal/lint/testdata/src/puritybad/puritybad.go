// Package puritybad is a wormlint test fixture for the purity pass: one of
// every impurity class injected on a certified-pure path. Lines the pass
// should report carry a "// WANT purity" marker; the annotated counter is
// an exemption (recorded in the certificate, not a finding), and orphan's
// clock read is unreachable and must stay silent.
package puritybad

import (
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"wormsim/internal/lint/testdata/src/puritybad/dep"
)

// total is shared mutable state; Run writes it (impure) and readOnly only
// observes it (read-only tier).
var total int

// calls is the accepted observability counter.
var calls atomic.Int64

// weights is package state Run iterates without sorting.
var weights = map[string]int{"dor": 1, "west": 2}

// Run is the certified entry point.
func Run(n int) int {
	total++                    // WANT purity
	go spin()                  // WANT purity
	t := time.Now().Unix()     // WANT purity
	r := rand.Intn(10)         // WANT purity
	host, _ := os.Hostname()   // WANT purity
	w := runtime.GOMAXPROCS(0) // WANT purity
	calls.Add(1)               //lint:allow purity (observe-only counter; never read back into a result)
	sum := 0
	for _, v := range weights { // WANT purity
		sum += v
	}
	ch := make(chan int, 1)
	ch <- sum // WANT purity
	select {  // WANT purity
	case sum = <-ch: // WANT purity
	default:
	}
	return n + readOnly() + int(t) + r + len(host) + w + sum + dep.Leak()
}

// readOnly observes shared state without writing: read-only, never a
// finding.
func readOnly() int { return total }

// spin is reachable only through Run's go statement.
func spin() {}

// orphan is unreachable from Run; its clock read must not be reported.
func orphan() int64 { return time.Now().UnixNano() }
