// Package dep hides an impurity behind a cross-package call, so the purity
// finding's witness chain must span packages.
package dep

import "time"

// Leak reads the wall clock one package away from the entry point.
func Leak() int {
	return int(time.Now().UnixNano()) // WANT purity
}
