// Package allowmulti is a wormlint test fixture for the comma-separated
// //lint:allow form and the lintdirective pass. A single line violates both
// simdeterminism (map iteration) and hotalloc (map literal on the hot path);
// one directive naming both passes suppresses both. The unknown-pass
// directive below must itself become a lintdirective finding.
package allowmulti

// Sink absorbs values so the fixture has no unused results.
var Sink any

// Step is the per-cycle root the test configures hotalloc with.
func Step() {
	for k := range map[int]int{1: 2} { //lint:allow simdeterminism,hotalloc (fixture: both passes suppressed by one directive)
		Sink = k
	}
	for k := range map[int]int{3: 4} { // both passes must still fire here
		Sink = k
	}
}

// Stale carries a directive naming a pass that does not exist.
func Stale() {
	Sink = 1 //lint:allow nosuchpass (typo: this suppresses nothing)
}
