// Package fixme is the -fix input fixture: every finding here carries a
// suggested fix. The fixmefixed fixture is the byte-exact golden output of
// applying them.
package fixme

import (
	"fmt"

	"wormsim/internal/telemetry"
)

// Sink absorbs values so the fixture has no unused results.
var Sink any

// Wrap flattens an error operand with %v.
func Wrap(err error) error {
	return fmt.Errorf("load config: %w", err)
}

// Capture launches goroutines capturing a loop-reassigned variable.
func Capture(items []int) {
	var cur int
	for _, it := range items {
		cur = it
		cur := cur
		go func() {
			Sink = cur
		}()
	}
}

// Observe calls a telemetry hook without a nil guard.
func Observe(c *telemetry.Collector) {
	if c != nil {
		c.InjDequeue()
	}
}
