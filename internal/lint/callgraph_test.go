package lint

import "testing"

// TestCallGraphShapes pins the call-graph shapes the purity certification
// leans on: a method value and a deferred call both make their bodies
// reachable, while a call through a function-typed struct field (the hook
// boundary) does not — so Step's reachable set is exactly
// {Step, helper, cleanup}.
func TestCallGraphShapes(t *testing.T) {
	pkgs := loadFixtures(t, "callshapes")
	prog := NewProgram(pkgs)
	step := prog.FindFunc(pkgs[0].Path, "(*Engine).Step")
	if step == nil {
		t.Fatal("(*Engine).Step not found in the callshapes fixture")
	}
	reach := prog.Graph().ReachableFrom(step)
	got := make(map[string]bool)
	for fn := range reach.Set {
		if fd, _ := prog.Decl(fn); fd != nil {
			got[funcDeclName(fd)] = true
		}
	}
	for _, want := range []string{"(*Engine).Step", "(*Engine).helper", "(*Engine).cleanup"} {
		if !got[want] {
			t.Errorf("%s not reachable from Step; reachable: %v", want, got)
		}
	}
	for _, absent := range []string{"Tick", "Orphan"} {
		if got[absent] {
			t.Errorf("%s reachable from Step; the hook boundary must not invent edges", absent)
		}
	}
	if len(got) != 3 {
		t.Errorf("reachable set has %d functions, want exactly 3: %v", len(got), got)
	}
}
